package spike

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRateEncodeDecodeRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		code := uint64(raw) % 256
		return RateDecode(RateEncode(code, 8)) == code
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRateEncodeSlotCount(t *testing.T) {
	tr := RateEncode(5, 4)
	if len(tr.Slots) != 15 {
		t.Fatalf("unary 4-bit train has %d slots, want 15", len(tr.Slots))
	}
	if CountSpikes(tr) != 5 {
		t.Fatalf("spikes = %d, want 5 (the value itself)", CountSpikes(tr))
	}
}

func TestRateEncodeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RateEncode(16, 4)
}

// Property: the unary dot product computes the same exact integer result as
// the weighted scheme — the ablation is purely about slot/spike cost.
func TestPropertyUnaryMatchesWeighted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		bits := 1 + rng.Intn(6)
		codes := make([]uint64, n)
		cond := make([]float64, n)
		for i := range codes {
			codes[i] = uint64(rng.Intn(1 << uint(bits)))
			cond[i] = float64(rng.Intn(16))
		}
		unary := make([]Train, n)
		weighted := make([]Train, n)
		for i, c := range codes {
			unary[i] = RateEncode(c, bits)
			weighted[i] = Encode(c, bits)
		}
		a, _ := DotProductUnary(unary, cond, NewIntegrateFire(1))
		b, _ := DotProduct(weighted, cond, NewIntegrateFire(1))
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestUnaryCostsMoreSpikes(t *testing.T) {
	// For the worst-case value (all ones), weighted needs `bits` spikes and
	// unary needs 2^bits − 1.
	bits := 8
	v := uint64(255)
	w := CountSpikes(Encode(v, bits))
	u := CountSpikes(RateEncode(v, bits))
	if w != 8 || u != 255 {
		t.Fatalf("spike counts: weighted %d (want 8), unary %d (want 255)", w, u)
	}
	if RateSlots(bits) != 255 {
		t.Fatalf("RateSlots(8) = %d", RateSlots(bits))
	}
}

func TestDotProductUnaryLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DotProductUnary([]Train{RateEncode(1, 2)}, []float64{1, 2}, NewIntegrateFire(1))
}

func TestRateSlotsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RateSlots(0)
}
