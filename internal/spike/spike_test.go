package spike

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		code := uint64(raw)
		return Decode(Encode(code, 16)) == code
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeLSBF(t *testing.T) {
	// 0b0110 = 6: slot0 (LSB) empty, slots 1 and 2 spike, slot 3 empty.
	tr := Encode(6, 4)
	want := []bool{false, true, true, false}
	for i, w := range want {
		if tr.Slots[i] != w {
			t.Fatalf("slot %d = %v, want %v", i, tr.Slots[i], w)
		}
	}
}

func TestEncodeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Encode(16, 4)
}

func TestSlotWeightNondecreasing(t *testing.T) {
	// The paper: "the voltage of output spike increases as time slot
	// progresses" — LSBF means weight 2^k grows with k.
	for k := 1; k < 16; k++ {
		if SlotWeight(k) <= SlotWeight(k-1) {
			t.Fatalf("slot weight not increasing at %d", k)
		}
		if SlotWeight(k) != 2*SlotWeight(k-1) {
			t.Fatalf("slot weight not doubling at %d", k)
		}
	}
}

func TestCountSpikesIsPopcount(t *testing.T) {
	f := func(raw uint16) bool {
		pop := 0
		for v := raw; v != 0; v &= v - 1 {
			pop++
		}
		return CountSpikes(Encode(uint64(raw), 16)) == pop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrateFireExactQuanta(t *testing.T) {
	f := NewIntegrateFire(1)
	if fired := f.Inject(3); fired != 3 {
		t.Fatalf("Inject(3) fired %d", fired)
	}
	if fired := f.Inject(0.5); fired != 0 {
		t.Fatalf("Inject(0.5) fired %d", fired)
	}
	if fired := f.Inject(0.5); fired != 1 {
		t.Fatalf("second Inject(0.5) fired %d, residual should have accumulated", fired)
	}
	if f.Count() != 4 {
		t.Fatalf("total count = %d, want 4", f.Count())
	}
}

func TestIntegrateFireKTimesCurrent(t *testing.T) {
	// "a K times stronger current will make the comparator generate K times
	// of output spikes" (Section 4.2.2).
	a := NewIntegrateFire(1)
	a.Inject(7)
	b := NewIntegrateFire(1)
	b.Inject(7 * 5)
	if b.Count() != 5*a.Count() {
		t.Fatalf("K-times property violated: %d vs %d", b.Count(), a.Count())
	}
}

func TestIntegrateFireReset(t *testing.T) {
	f := NewIntegrateFire(1)
	f.Inject(2.7)
	f.Reset()
	if f.Count() != 0 || f.Residual() != 0 {
		t.Fatal("Reset must clear count and residual")
	}
}

func TestIntegrateFireNegativePanics(t *testing.T) {
	f := NewIntegrateFire(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Inject(-1)
}

func TestIntegrateFireBadThresholdPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIntegrateFire(0)
}

func TestDotProductExact(t *testing.T) {
	// Integer dot product must be exact with threshold 1.
	codes := []uint64{3, 0, 7, 12}
	cond := []float64{2, 5, 1, 3}
	want := 3*2 + 0*5 + 7*1 + 12*3
	trains := EncodeVector(codes, 4)
	count, _ := DotProduct(trains, cond, NewIntegrateFire(1))
	if count != want {
		t.Fatalf("DotProduct = %d, want %d", count, want)
	}
}

// Property: spike-domain dot product equals the arithmetic dot product for
// random integer inputs and conductances.
func TestPropertyDotProductMatchesArithmetic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		bits := 1 + rng.Intn(8)
		codes := make([]uint64, n)
		cond := make([]float64, n)
		want := 0
		for i := range codes {
			codes[i] = uint64(rng.Intn(1 << uint(bits)))
			c := rng.Intn(16) // 4-bit conductance codes
			cond[i] = float64(c)
			want += int(codes[i]) * c
		}
		got, _ := DotProduct(EncodeVector(codes, bits), cond, NewIntegrateFire(1))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDotProductInputSpikeCount(t *testing.T) {
	codes := []uint64{0b101, 0b011}
	trains := EncodeVector(codes, 3)
	_, spikes := DotProduct(trains, []float64{1, 1}, NewIntegrateFire(1))
	if spikes != 4 {
		t.Fatalf("input spikes = %d, want 4", spikes)
	}
}

func TestDotProductLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DotProduct(EncodeVector([]uint64{1}, 2), []float64{1, 2}, NewIntegrateFire(1))
}

func TestUpdateAverageCode(t *testing.T) {
	// With 16 fraction bits, 1/B should be represented to within one LSB.
	for _, b := range []int{1, 2, 4, 8, 64, 100} {
		code := UpdateAverageCode(b, 16)
		got := float64(code) / 65536.0
		want := 1.0 / float64(b)
		if diff := got - want; diff > 1.0/65536 || diff < -1.0/65536 {
			t.Fatalf("B=%d: code %d encodes %g, want %g", b, code, got, want)
		}
	}
}

func TestUpdateAverageCodeNeverZero(t *testing.T) {
	if UpdateAverageCode(1<<20, 8) == 0 {
		t.Fatal("average code must be clamped to ≥ 1")
	}
}

func TestUpdateAverageCodeBadBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UpdateAverageCode(0, 8)
}
