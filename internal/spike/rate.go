package spike

import "fmt"

// Unary (rate) coding — the alternative PipeLayer's weighted scheme is
// implicitly compared against: an N-bit value v is sent as v equal-weight
// spikes over 2^N − 1 time slots. It needs no per-slot reference voltages
// but exponentially more slots, which is why the weighted LSBF scheme wins
// (N slots for the same resolution). Exposed for the coding ablation.

// RateEncode converts an unsigned code into a unary spike train: code
// spikes in the first code slots of a 2^bits − 1 slot window.
func RateEncode(code uint64, bits int) Train {
	if bits <= 0 || bits > 20 {
		panic(fmt.Sprintf("spike: rate-coding bits %d out of range (1..20)", bits))
	}
	slots := uint64(1)<<uint(bits) - 1
	if code > slots {
		panic(fmt.Sprintf("spike: code %d does not fit in %d unary slots", code, slots))
	}
	t := Train{Bits: bits, Slots: make([]bool, slots)}
	for k := uint64(0); k < code; k++ {
		t.Slots[k] = true
	}
	return t
}

// RateDecode counts the spikes of a unary train back into the code.
func RateDecode(t Train) uint64 {
	return uint64(CountSpikes(t))
}

// DotProductUnary runs the unary-coded dot product: every slot's spikes
// carry unit weight, so the integrated charge is Σ code_i·g_i directly.
// Returns the output count and input spikes consumed (for the energy
// comparison: unary needs ≈ value spikes per input versus ≤ bits for the
// weighted scheme).
func DotProductUnary(trains []Train, conductance []float64, f *IntegrateFire) (count, inputSpikes int) {
	if len(trains) != len(conductance) {
		panic(fmt.Sprintf("spike: %d trains vs %d conductances", len(trains), len(conductance)))
	}
	slots := 0
	for _, t := range trains {
		if len(t.Slots) > slots {
			slots = len(t.Slots)
		}
	}
	for k := 0; k < slots; k++ {
		slotCurrent := 0.0
		for i, t := range trains {
			if k < len(t.Slots) && t.Slots[k] {
				slotCurrent += conductance[i]
				inputSpikes++
			}
		}
		f.Inject(slotCurrent)
	}
	return f.Count(), inputSpikes
}

// RateSlots returns the slot count unary coding needs for a bit width —
// 2^bits − 1, versus the weighted scheme's `bits`.
func RateSlots(bits int) int {
	if bits <= 0 || bits > 62 {
		panic("spike: bits out of range")
	}
	return 1<<uint(bits) - 1
}
