// Package spike implements PipeLayer's spike-based data input and output
// scheme (paper Section 4.2): the weighted spike coding of the spike driver
// (N time slots per N-bit value, Least-Significant-Bit-First, non-decreasing
// reference voltages V0/2^N … V0/2), and the Integration-and-Fire circuit
// that converts the accumulated bit-line current into a digital spike count,
// eliminating both DACs (input side) and ADCs (output side).
package spike

import (
	"fmt"
	"math"

	"pipelayer/internal/parallel"
)

// Train is the spike train for one input value: Slots[k] is true when a
// spike is emitted in time slot k. Slot 0 is the least significant (lowest
// reference voltage) slot, per the paper's LSBF ordering.
type Train struct {
	Bits  int
	Slots []bool
}

// Encode converts an unsigned integer code into its weighted spike train.
// code must fit in bits.
func Encode(code uint64, bits int) Train {
	if bits <= 0 || bits > 63 {
		panic(fmt.Sprintf("spike: bits %d out of range", bits))
	}
	if code >= 1<<uint(bits) {
		panic(fmt.Sprintf("spike: code %d does not fit in %d bits", code, bits))
	}
	t := Train{Bits: bits, Slots: make([]bool, bits)}
	for k := 0; k < bits; k++ {
		t.Slots[k] = code&(1<<uint(k)) != 0
	}
	return t
}

// Decode reconstructs the integer code from a spike train.
func Decode(t Train) uint64 {
	var code uint64
	for k, s := range t.Slots {
		if s {
			code |= 1 << uint(k)
		}
	}
	return code
}

// SlotWeight returns the relative weight of a spike in slot k (2^k). The
// physical reference voltage is V0·2^k/2^bits; the normalization constant
// cancels in the Integration-and-Fire threshold, so relative weights are
// used throughout the functional model.
func SlotWeight(k int) float64 { return float64(uint64(1) << uint(k)) }

// CountSpikes returns the number of spikes (1-bits) in the train — the
// quantity the energy model charges per-spike read energy for.
func CountSpikes(t Train) int {
	n := 0
	for _, s := range t.Slots {
		if s {
			n++
		}
	}
	return n
}

// EncodeVector encodes every element of a code vector. Elements encode into
// disjoint slots of the result, so long vectors chunk across the worker pool.
func EncodeVector(codes []uint64, bits int) []Train {
	out := make([]Train, len(codes))
	parallel.Default().For(len(codes), parallel.Grain(bits), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = Encode(codes[i], bits)
		}
	})
	return out
}

// TotalSpikes counts spikes across a whole encoded vector.
func TotalSpikes(trains []Train) int {
	n := 0
	for _, t := range trains {
		n += CountSpikes(t)
	}
	return n
}

// IntegrateFire models the Integration-and-Fire circuit of Figure 9(b): a
// controlled current source mirrors the bit-line current onto a capacitor;
// every time the capacitor voltage crosses the comparator threshold a spike
// is emitted (and counted) and the capacitor resets. A K-times stronger
// charge yields K-times more output spikes, so the final count is the
// integer part of the accumulated charge divided by the threshold quantum.
type IntegrateFire struct {
	// Threshold is the charge quantum per output spike. With relative slot
	// weights and integer conductance codes, Threshold = 1 makes the count
	// exactly equal the integer dot product.
	Threshold float64
	charge    float64
	count     int
}

// NewIntegrateFire creates an IF unit with the given threshold (> 0).
func NewIntegrateFire(threshold float64) *IntegrateFire {
	if threshold <= 0 {
		panic("spike: IntegrateFire threshold must be positive")
	}
	return &IntegrateFire{Threshold: threshold}
}

// Inject accumulates charge q (current × slot duration) and fires as many
// spikes as full thresholds have been crossed, returning the number fired.
func (f *IntegrateFire) Inject(q float64) int {
	if q < 0 {
		panic("spike: negative charge injected (currents are magnitudes; signs are handled by the positive/negative array pair)")
	}
	f.charge += q
	fired := 0
	for f.charge >= f.Threshold-1e-12 {
		f.charge -= f.Threshold
		fired++
	}
	f.count += fired
	return fired
}

// Count returns the total output spike count so far (the counter register).
func (f *IntegrateFire) Count() int { return f.count }

// Residual returns the sub-threshold charge remaining on the capacitor.
func (f *IntegrateFire) Residual() float64 { return f.charge }

// Reset clears the capacitor and the counter for the next logical cycle.
func (f *IntegrateFire) Reset() {
	f.charge = 0
	f.count = 0
}

// DotProduct runs the full spike-domain dot-product of one bit line: for
// every time slot, every input whose train has a spike in that slot drives a
// current proportional to SlotWeight(slot)×conductance into the IF unit.
// With integer conductances and Threshold 1 the result equals the exact
// integer dot product Σ codes[i]·conductance[i].
//
// It returns the output spike count and the total number of input spikes
// consumed (for energy accounting).
func DotProduct(trains []Train, conductance []float64, f *IntegrateFire) (count, inputSpikes int) {
	if len(trains) != len(conductance) {
		panic(fmt.Sprintf("spike: %d trains vs %d conductances", len(trains), len(conductance)))
	}
	bits := 0
	for _, t := range trains {
		if t.Bits > bits {
			bits = t.Bits
		}
	}
	for k := 0; k < bits; k++ {
		w := SlotWeight(k)
		slotCurrent := 0.0
		for i, t := range trains {
			if k < len(t.Slots) && t.Slots[k] {
				slotCurrent += conductance[i]
				inputSpikes++
			}
		}
		f.Inject(w * slotCurrent)
	}
	return f.Count(), inputSpikes
}

// UpdateAverageCode returns the input code that realizes the paper's
// batch-averaging trick (Section 4.4.2): during weight update the input
// spikes represent 1/B so that the bit-line current accumulation yields the
// averaged partial derivative. The value 1/B is quantized to `bits` bits of
// fraction; the returned code is round(2^bits / B), clamped to at least 1.
func UpdateAverageCode(batch, bits int) uint64 {
	if batch <= 0 {
		panic("spike: batch must be positive")
	}
	c := uint64(math.Round(float64(uint64(1)<<uint(bits)) / float64(batch)))
	if c == 0 {
		c = 1
	}
	max := uint64(1)<<uint(bits) - 1
	if c > max {
		c = max
	}
	return c
}
