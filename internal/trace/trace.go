// Package trace renders the PipeLayer training schedule as an ASCII Gantt
// chart — the paper's Figure 6 visualization, generated from the same
// per-image cycle offsets the pipeline simulator validates. Each row is one
// hardware unit (forward arrays A_l, the output-error unit ErrL, error
// arrays A_lE, derivative arrays A_lD and the update unit); each column is
// one logical cycle; the glyph is the image index occupying the unit.
package trace

import (
	"fmt"
	"strings"
)

// Gantt renders the pipelined training schedule of L weighted layers for
// the first `cycles` logical cycles of a run with batch size B. Image
// indices print modulo 10 so the chart stays aligned. Non-positive
// dimensions are an error, not a panic, so CLI callers can report bad
// flags cleanly.
func Gantt(L, B, cycles int) (string, error) {
	if L <= 0 || B <= 0 || cycles <= 0 {
		return "", fmt.Errorf("trace: L, B and cycles must be positive, got L=%d B=%d cycles=%d", L, B, cycles)
	}
	type unit struct {
		name string
		row  []byte
	}
	var units []unit
	mk := func(name string) *unit {
		units = append(units, unit{name: name, row: bytes(cycles)})
		return &units[len(units)-1]
	}
	forward := make([]*unit, L+1)
	for l := 1; l <= L; l++ {
		forward[l] = mk(fmt.Sprintf("A%d", l))
	}
	errL := mk("ErrL")
	errU := make([]*unit, L+1)
	for l := L; l >= 2; l-- {
		errU[l] = mk(fmt.Sprintf("A%dE", l))
	}
	derivU := make([]*unit, L+1)
	for l := L; l >= 1; l-- {
		derivU[l] = mk(fmt.Sprintf("A%dD", l))
	}
	update := mk("Upd")

	put := func(u *unit, cycle, img int) {
		if cycle >= 1 && cycle <= cycles {
			u.row[cycle-1] = byte('0' + img%10)
		}
	}

	period := 2*L + B + 1
	for img := 0; ; img++ {
		b, i := img/B, img%B
		e := b*period + i + 1
		if e > cycles {
			break
		}
		for l := 1; l <= L; l++ {
			put(forward[l], e+l-1, img)
		}
		put(errL, e+L, img)
		for l := L - 1; l >= 1; l-- {
			put(errU[l+1], e+2*L-l, img)
		}
		for l := L; l >= 1; l-- {
			put(derivU[l], e+2*L-l+1, img)
		}
		if (img+1)%B == 0 {
			if c := e + 2*L + 1; c >= 1 && c <= cycles {
				update.row[c-1] = '#'
			}
		}
	}

	var sb strings.Builder
	sb.WriteString("      cycle ")
	for c := 1; c <= cycles; c++ {
		sb.WriteByte(byte('0' + c%10))
	}
	sb.WriteByte('\n')
	for _, u := range units {
		fmt.Fprintf(&sb, "%11s %s\n", u.name, string(u.row))
	}
	return sb.String(), nil
}

func bytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = '.'
	}
	return b
}
