package trace

import (
	"strings"
	"testing"
)

func TestGanttFigure6Shape(t *testing.T) {
	// L=3, B=4 as in the paper's Figure 6: image 0 should occupy A1 at
	// cycle 1, A2 at cycle 2, A3 at cycle 3, ErrL at cycle 4.
	out, err := Gantt(3, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	find := func(name string) string {
		t.Helper()
		for _, l := range lines {
			if strings.Contains(l, name+" ") {
				return l[strings.LastIndex(l, " ")+1:]
			}
		}
		t.Fatalf("unit %s missing from gantt:\n%s", name, out)
		return ""
	}
	a1 := find("A1")
	if a1[0] != '0' || a1[1] != '1' {
		t.Fatalf("A1 row wrong: %q", a1)
	}
	a3 := find("A3")
	if a3[0] != '.' || a3[1] != '.' || a3[2] != '0' {
		t.Fatalf("A3 row wrong: %q", a3)
	}
	errl := find("ErrL")
	if errl[3] != '0' {
		t.Fatalf("ErrL row wrong: %q", errl)
	}
}

func TestGanttUpdateMark(t *testing.T) {
	// L=2, B=2: period = 2·2+2+1 = 7; the batch of images 0,1 enters at
	// cycles 1,2; the last image finishes at 2+2L = 6; update at cycle 7.
	out, err := Gantt(2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "Upd ") {
			row := l[strings.LastIndex(l, " ")+1:]
			if row[6] != '#' {
				t.Fatalf("update mark missing at cycle 7: %q", row)
			}
			return
		}
	}
	t.Fatal("no update row")
}

func TestGanttOneImagePerCycleWithinBatch(t *testing.T) {
	// Within a batch, A1 hosts a new image every cycle (Figure 6's key
	// property).
	out, err := Gantt(3, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, " A1 ") || strings.HasSuffix(strings.Fields(l)[0], "A1") {
			row := strings.Fields(l)[1]
			if row[0] != '0' || row[1] != '1' || row[2] != '2' || row[3] != '3' {
				t.Fatalf("A1 must host images 0..3 in cycles 1..4: %q", row)
			}
			return
		}
	}
	t.Fatal("A1 row not found")
}

func TestGanttValidation(t *testing.T) {
	for _, tc := range []struct{ L, B, cycles int }{
		{0, 2, 5}, {2, 0, 5}, {2, 2, 0}, {-1, 2, 5}, {2, 2, -3},
	} {
		if out, err := Gantt(tc.L, tc.B, tc.cycles); err == nil {
			t.Fatalf("Gantt(%d,%d,%d) = %q, want error", tc.L, tc.B, tc.cycles, out)
		}
	}
}

func TestGanttSecondBatchAfterDrain(t *testing.T) {
	// L=2, B=2, period 7: image 2 (next batch) enters A1 at cycle 8.
	out, err := Gantt(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range strings.Split(out, "\n") {
		fields := strings.Fields(l)
		if len(fields) == 2 && fields[0] == "A1" {
			row := fields[1]
			if row[7] != '2' {
				t.Fatalf("image 2 should enter at cycle 8: %q", row)
			}
			return
		}
	}
	t.Fatal("A1 row not found")
}
