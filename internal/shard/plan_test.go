package shard

import (
	"math"
	"reflect"
	"strconv"
	"testing"
	"time"

	"pipelayer/internal/telemetry"
)

func rangeCost(prefix []float64, r Range) float64 { return prefix[r.Hi] - prefix[r.Lo] }

// bruteBottleneck finds the optimal bottleneck cost by trying every
// contiguous partition — the oracle BalancedRanges must match.
func bruteBottleneck(costs []float64, n int) float64 {
	m := len(costs)
	best := math.Inf(1)
	var rec func(start, parts int, worst float64)
	rec = func(start, parts int, worst float64) {
		if parts == 1 {
			s := 0.0
			for _, c := range costs[start:] {
				s += c
			}
			best = math.Min(best, math.Max(worst, s))
			return
		}
		s := 0.0
		for end := start + 1; end <= m-parts+1; end++ {
			s += costs[end-1]
			rec(end, parts-1, math.Max(worst, s))
		}
	}
	rec(0, n, 0)
	return best
}

func TestBalancedRangesOptimalAndValid(t *testing.T) {
	cases := [][]float64{
		{1, 1, 1, 1, 1},
		{10, 1, 1, 1, 1},
		{1, 1, 1, 1, 10},
		{3, 1, 4, 1, 5, 9, 2, 6},
		{0, 0, 5, 0},
		{2.5, 7.1, 0.3, 0.3, 0.3, 4},
	}
	for ci, costs := range cases {
		prefix := make([]float64, len(costs)+1)
		for i, c := range costs {
			prefix[i+1] = prefix[i] + c
		}
		for n := 1; n <= len(costs); n++ {
			ranges, err := BalancedRanges(costs, n)
			if err != nil {
				t.Fatalf("case %d n=%d: %v", ci, n, err)
			}
			if len(ranges) != n {
				t.Fatalf("case %d n=%d: got %d ranges", ci, n, len(ranges))
			}
			if err := ValidateRanges(ranges, len(costs)); err != nil {
				t.Fatalf("case %d n=%d: invalid partition: %v", ci, n, err)
			}
			worst := 0.0
			for _, r := range ranges {
				worst = math.Max(worst, rangeCost(prefix, r))
			}
			if want := bruteBottleneck(costs, n); worst != want {
				t.Errorf("case %d n=%d: bottleneck %v, optimal %v (ranges %v)", ci, n, worst, want, ranges)
			}
		}
	}
}

func TestBalancedRangesDeterministic(t *testing.T) {
	costs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	a, err := BalancedRanges(costs, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BalancedRanges(costs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs disagree: %v vs %v", a, b)
	}
}

func TestBalancedRangesErrors(t *testing.T) {
	if _, err := BalancedRanges(nil, 1); err == nil {
		t.Error("empty costs must fail")
	}
	if _, err := BalancedRanges([]float64{1, 2}, 0); err == nil {
		t.Error("zero shards must fail")
	}
	if _, err := BalancedRanges([]float64{1, 2}, 3); err == nil {
		t.Error("more shards than engines must fail")
	}
	if _, err := BalancedRanges([]float64{1, -2}, 1); err == nil {
		t.Error("negative cost must fail")
	}
	if _, err := BalancedRanges([]float64{1, math.NaN()}, 1); err == nil {
		t.Error("NaN cost must fail")
	}
}

func TestValidateRanges(t *testing.T) {
	good := []Range{{0, 2}, {2, 3}, {3, 5}}
	if err := ValidateRanges(good, 5); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	bad := []struct {
		name   string
		ranges []Range
	}{
		{"empty list", nil},
		{"gap", []Range{{0, 2}, {3, 5}}},
		{"overlap", []Range{{0, 3}, {2, 5}}},
		{"late start", []Range{{1, 5}}},
		{"short end", []Range{{0, 4}}},
		{"empty range", []Range{{0, 2}, {2, 2}, {2, 5}}},
	}
	for _, tc := range bad {
		if err := ValidateRanges(tc.ranges, 5); err == nil {
			t.Errorf("%s: accepted %v", tc.name, tc.ranges)
		}
	}
}

func TestMeasuredCosts(t *testing.T) {
	reg := telemetry.NewRegistry()
	for i := 1; i <= 3; i++ {
		name := telemetry.Name("core_stage_forward_seconds", map[string]string{"stage": strconv.Itoa(i)})
		reg.Span(name).Add(time.Duration(i) * time.Millisecond)
	}
	costs, ok := MeasuredCosts(reg.Snapshot(), 3)
	if !ok {
		t.Fatal("complete telemetry reported not ok")
	}
	if len(costs) != 3 || costs[0] >= costs[1] || costs[1] >= costs[2] {
		t.Fatalf("costs %v do not reflect the recorded spans", costs)
	}
	// A fourth stage was never timed: partial telemetry must refuse rather
	// than balance on a zero.
	if _, ok := MeasuredCosts(reg.Snapshot(), 4); ok {
		t.Fatal("partial telemetry reported ok")
	}
}
