package shard_test

// The sharded-serving conformance suite: the tentpole invariant is that the
// layer-sharded pipeline is bit-identical to the unsharded path at every
// shard count × worker count × fault config. This is enforced here by
// sweeping the full matrix against the serial single-request reference —
// the same oracle the unsharded serve determinism test pins against.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"pipelayer/internal/core"
	"pipelayer/internal/energy"
	"pipelayer/internal/fault"
	"pipelayer/internal/parallel"
	"pipelayer/internal/serve"
	"pipelayer/internal/shard"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

// loadedCNN builds a weight-loaded TinyDeepCNN — conv, pool, conv, pool, fc:
// five engines, all three engine kinds — optionally with faults attached.
func loadedCNN(t testing.TB, inj *fault.Injector) *core.Accelerator {
	t.Helper()
	a := core.New(energy.DefaultModel())
	if inj != nil {
		if err := a.SetFaults(inj); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.TopologySet(testutil.TinyDeepCNN("conformance-cnn"), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(77))); err != nil {
		t.Fatal(err)
	}
	return a
}

func cnnInputs(t testing.TB, n int) []*tensor.Tensor {
	t.Helper()
	samples := testutil.ImageSamples(n, 9)
	xs := make([]*tensor.Tensor, n)
	for i, s := range samples {
		xs[i] = s.Input
	}
	return xs
}

func serialReference(t testing.TB, a *core.Accelerator, xs []*tensor.Tensor) []*tensor.Tensor {
	t.Helper()
	rep, err := a.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*tensor.Tensor, len(xs))
	for i, x := range xs {
		out[i] = rep.Infer(x)
	}
	return out
}

// faultConfigs is the conformance fault axis: pristine arrays, stuck-cell
// remapping, and remapping with degrade-to-digital fallback — the same
// configs the unsharded serve suite pins.
func faultConfigs() []struct {
	name string
	inj  *fault.Injector
} {
	return []struct {
		name string
		inj  *fault.Injector
	}{
		{"none", nil},
		{"remap", fault.MustNew(fault.Config{Seed: 3, StuckOff: 2e-4, StuckOn: 1e-4, Drift: 0.05, Spares: 4})},
		{"remap+degrade", fault.MustNew(fault.Config{Seed: 3, StuckOff: 2e-4, StuckOn: 1e-4, Drift: 0.05, Spares: 4, Degrade: true})},
	}
}

// TestShardedServeConformance sweeps shards {1, 2, 3, all-layers} × pool
// workers {1, 2, 7, GOMAXPROCS} × fault configs {none, remap,
// remap+degrade}: every response from the sharded server must bit-match the
// serial single-request reference of the same machine. shards=1 runs the
// chain-of-one via an explicit full-stack range, so the chain machinery
// itself — not just the plain-replica fallback — is covered at every point.
func TestShardedServeConformance(t *testing.T) {
	const n = 16
	saved := parallel.Workers()
	defer parallel.SetWorkers(saved)

	engines := 5 // TinyDeepCNN: conv, pool, conv, pool, fc
	shardCounts := []int{1, 2, 3, engines}
	workerCounts := []int{1, 2, 7, runtime.GOMAXPROCS(0)}

	for _, fc := range faultConfigs() {
		a := loadedCNN(t, fc.inj)
		xs := cnnInputs(t, n)
		want := serialReference(t, a, xs)
		for _, shards := range shardCounts {
			for _, workers := range workerCounts {
				t.Run(fmt.Sprintf("faults=%s/shards=%d/workers=%d", fc.name, shards, workers), func(t *testing.T) {
					parallel.SetWorkers(workers)
					cfg := serve.Config{MaxBatch: 4, MaxWait: 200 * time.Microsecond, QueueCap: n}
					if shards == 1 {
						cfg.ShardRanges = []shard.Range{{Lo: 0, Hi: engines}}
					} else {
						cfg.Shards = shards
					}
					s, err := serve.New(a, cfg)
					if err != nil {
						t.Fatal(err)
					}
					defer s.Close()
					var wg sync.WaitGroup
					for i := 0; i < n; i++ {
						wg.Add(1)
						go func(i int) {
							defer wg.Done()
							res, err := s.Predict(context.Background(), xs[i])
							if err != nil {
								t.Errorf("request %d: %v", i, err)
								return
							}
							g, w := res.Scores.Data(), want[i].Data()
							for j := range g {
								if g[j] != w[j] {
									t.Errorf("request %d score %d: %v != %v (bit-identity broken)", i, j, g[j], w[j])
									return
								}
							}
						}(i)
					}
					wg.Wait()
				})
			}
		}
	}
}

// TestShardedServeConformanceMLP covers the dense-only stack too: the
// 3-engine TinyDeepMLP at every shard count, workers fixed at GOMAXPROCS.
func TestShardedServeConformanceMLP(t *testing.T) {
	const n = 24
	a := core.New(energy.DefaultModel())
	if err := a.TopologySet(testutil.TinyDeepMLP("conformance-mlp"), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(78))); err != nil {
		t.Fatal(err)
	}
	samples := testutil.FlatSamples(n, 11)
	xs := make([]*tensor.Tensor, n)
	for i, s := range samples {
		xs[i] = s.Input
	}
	want := serialReference(t, a, xs)
	for shards := 2; shards <= 3; shards++ {
		s, err := serve.New(a, serve.Config{Shards: shards, MaxBatch: 8, MaxWait: 200 * time.Microsecond, QueueCap: n})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := s.Predict(context.Background(), xs[i])
				if err != nil {
					t.Errorf("shards=%d request %d: %v", shards, i, err)
					return
				}
				g, w := res.Scores.Data(), want[i].Data()
				for j := range g {
					if g[j] != w[j] {
						t.Errorf("shards=%d request %d score %d: %v != %v", shards, i, j, g[j], w[j])
						return
					}
				}
			}(i)
		}
		wg.Wait()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
