package shard

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"pipelayer/internal/core"
	"pipelayer/internal/networks"
	"pipelayer/internal/telemetry"
	"pipelayer/internal/telemetry/flight"
	"pipelayer/internal/tensor"
)

// ErrClosed: the chain is draining or closed; callers holding a stale
// reference after a hot swap retire should reload and retry.
var ErrClosed = errors.New("shard: chain closed")

// Config tunes a shard chain. Either Shards (automatic balancing) or Ranges
// (explicit layer assignment) selects the partition; Ranges wins when both
// are set.
type Config struct {
	// Shards is the number of contiguous layer-range shards to balance
	// automatically. Per-engine costs come from measured trainer telemetry
	// (core_stage_forward_seconds spans in Metrics) when every stage has
	// been timed, else from the analytic MAC counts.
	Shards int
	// Ranges assigns engine ranges explicitly; must tile the stack.
	Ranges []Range
	// Depth is each shard's inbox capacity (bounded inter-shard buffer).
	// Depth 1 — the default — means each shard holds at most one waiting
	// batch besides the one it is computing: enough to keep the pipeline
	// full, small enough that a stalled shard backpressures its upstream
	// within one batch.
	Depth int
	// Metrics, when non-nil, receives per-shard instruments:
	// serve_shard_batches_total / serve_shard_busy_seconds /
	// serve_shard_queue_depth, each labeled {shard="k"}.
	Metrics *telemetry.Registry
	// Flight, when non-nil, records one serve_shard_forward span per batch
	// per shard, each shard on its own timeline track — pipeline bubbles
	// show up as gaps between spans in the Perfetto export.
	Flight *flight.Recorder
	// TrackBase is the first flight track; shard k records on TrackBase+k.
	TrackBase uint64
	// TraceDepth extends tracing into the shard's replica when >= 1
	// (core_layer_forward per layer, crossbar readouts at >= 2), exactly as
	// Replica.AttachFlight documents.
	TraceDepth int

	// BeforeStage, when non-nil, runs in shard k's worker before each batch
	// it computes. It exists for tests — stalling a chosen shard is the only
	// deterministic way to exercise the backpressure cascade — and must not
	// be set in production paths.
	BeforeStage func(shard int)
}

// job is one batch in flight through the chain. done is buffered so the
// final shard's hand-off never blocks on a caller that abandoned the wait
// (context cancellation) — the chain can never wedge on a dead caller.
type job struct {
	xs   []*tensor.Tensor
	done chan []*tensor.Tensor
}

// stage is one shard: a sub-replica over its layer range plus the bounded
// inbox its upstream feeds.
type stage struct {
	rng   Range
	rep   *core.Replica
	in    chan *job
	track uint64

	batches *telemetry.Counter
	busy    *telemetry.Span
	depth   *telemetry.Gauge
}

// Chain streams batches through layer-range shards. Forward is safe for
// concurrent use: multiple callers keep multiple batches in flight, which is
// what fills the pipeline (each concurrent batch occupies a different shard
// at any instant). Outputs are bit-identical to running the same batch
// through the unsharded replica, because a shard chain computes the same
// engine sequence with the same kernels — partitioning only changes which
// goroutine runs which contiguous slice.
type Chain struct {
	spec   networks.Spec
	ranges []Range
	stages []*stage
	flight *flight.Recorder
	hook   func(int)

	mu      sync.RWMutex // guards closed against Close
	closed  bool
	closing chan struct{}
	senders sync.WaitGroup // Forward calls between admission and hand-off
	wg      sync.WaitGroup // shard workers
}

// ResolveRanges computes the partition New would use without building the
// chain: explicit cfg.Ranges validated as-is, else cfg.Shards ranges
// balanced over measured per-stage telemetry when available (falling back
// to analytic per-engine costs).
func ResolveRanges(rep *core.Replica, cfg Config) ([]Range, error) {
	if len(cfg.Ranges) > 0 {
		if err := ValidateRanges(cfg.Ranges, rep.Engines()); err != nil {
			return nil, err
		}
		return append([]Range(nil), cfg.Ranges...), nil
	}
	costs := rep.ForwardCosts()
	if cfg.Metrics != nil {
		if measured, ok := MeasuredCosts(cfg.Metrics.Snapshot(), rep.Engines()); ok {
			costs = measured
		}
	}
	return BalancedRanges(costs, cfg.Shards)
}

// New partitions the replica into shards and starts one worker per shard.
// The replica itself is not retained: each shard gets a fresh sub-replica
// clone sharing the programmed arrays, so the caller may discard rep.
func New(rep *core.Replica, cfg Config) (*Chain, error) {
	if rep == nil {
		return nil, errors.New("shard: nil replica")
	}
	ranges, err := ResolveRanges(rep, cfg)
	if err != nil {
		return nil, err
	}
	depth := cfg.Depth
	if depth <= 0 {
		depth = 1
	}
	c := &Chain{
		spec:    rep.Spec(),
		ranges:  ranges,
		flight:  cfg.Flight,
		hook:    cfg.BeforeStage,
		closing: make(chan struct{}),
	}
	for k, rng := range ranges {
		sub, err := rep.Sub(rng.Lo, rng.Hi)
		if err != nil {
			return nil, err
		}
		st := &stage{
			rng:   rng,
			rep:   sub,
			in:    make(chan *job, depth),
			track: cfg.TrackBase + uint64(k),
		}
		if reg := cfg.Metrics; reg != nil {
			lbl := map[string]string{"shard": strconv.Itoa(k)}
			st.batches = reg.Counter(telemetry.Name("serve_shard_batches_total", lbl))
			st.busy = reg.Span(telemetry.Name("serve_shard_busy_seconds", lbl))
			st.depth = reg.Gauge(telemetry.Name("serve_shard_queue_depth", lbl))
		}
		if c.flight.Enabled() {
			c.flight.SetTrackName(st.track, fmt.Sprintf("shard %d: layers %d-%d", k, rng.Lo, rng.Hi-1))
			sub.AttachFlight(c.flight, st.track, cfg.TraceDepth)
		}
		c.stages = append(c.stages, st)
	}
	for k := range c.stages {
		c.wg.Add(1)
		go c.run(k)
	}
	return c, nil
}

// run is shard k's worker: drain the inbox, compute the layer range, hand
// the batch to the next shard (or deliver it). Closing the first shard's
// inbox cascades down the chain, so every accepted job is fully computed and
// delivered before the last worker exits — a drain, never a drop.
func (c *Chain) run(k int) {
	defer c.wg.Done()
	st := c.stages[k]
	var next *stage
	if k+1 < len(c.stages) {
		next = c.stages[k+1]
	}
	for j := range st.in {
		if st.depth != nil {
			st.depth.Set(float64(len(st.in)))
		}
		if c.hook != nil {
			c.hook(k)
		}
		t0 := c.flight.Now()
		var timer telemetry.SpanTimer
		if st.busy != nil {
			timer = st.busy.Start()
		}
		j.xs = st.rep.InferBatch(j.xs)
		if st.busy != nil {
			timer.Stop()
		}
		if st.batches != nil {
			st.batches.Inc()
		}
		c.flight.Record("serve_shard_forward", 0, st.track, t0, int64(len(j.xs)))
		if next != nil {
			next.in <- j
			if next.depth != nil {
				next.depth.Set(float64(len(next.in)))
			}
		} else {
			j.done <- j.xs
		}
	}
	if next != nil {
		close(next.in)
	}
}

// Forward streams one batch through the chain and blocks until the result is
// out the far end. It implements the serving backend contract; admission
// blocks while the first shard's bounded inbox is full, which is exactly how
// a stalled shard backpressures all the way to the serving queue.
func (c *Chain) Forward(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	//pipelayer:allow-ctxflow Forward is the contextless serve.Backend compatibility entry point; callers with a deadline use ForwardContext, and Close's drain covers the uncancelable case
	return c.ForwardContext(context.Background(), xs)
}

// ForwardContext is Forward with cancellation: a context that dies while the
// batch waits for admission abandons the attempt; one that dies while the
// batch is in flight abandons the wait, and the chain delivers the orphaned
// result into the job's buffered channel without blocking — cancellation can
// never wedge the chain.
func (c *Chain) ForwardContext(ctx context.Context, xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil, ErrClosed
	}
	// Registering as a sender under the read lock pairs with Close's write
	// lock: Close waits for every registered sender to finish its hand-off
	// (or bail via closing) before the intake channel closes, so a send can
	// never race the close.
	c.senders.Add(1)
	c.mu.RUnlock()
	defer c.senders.Done()

	head := c.stages[0]
	j := &job{xs: xs, done: make(chan []*tensor.Tensor, 1)}
	select {
	case head.in <- j:
		if head.depth != nil {
			head.depth.Set(float64(len(head.in)))
		}
	case <-c.closing:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case ys := <-j.done:
		return ys, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close drains the chain: no new batches are admitted, every batch already
// accepted flows through its remaining shards and is delivered, and all
// shard workers exit before Close returns. A second Close reports ErrClosed.
func (c *Chain) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	close(c.closing)
	c.mu.Unlock()
	c.senders.Wait()
	close(c.stages[0].in)
	c.wg.Wait()
	return nil
}

// Spec returns the full network geometry the chain serves.
func (c *Chain) Spec() networks.Spec { return c.spec }

// Ranges returns the resolved layer partition, one range per shard.
func (c *Chain) Ranges() []Range { return append([]Range(nil), c.ranges...) }

// Shards returns the number of shards in the chain.
func (c *Chain) Shards() int { return len(c.stages) }
