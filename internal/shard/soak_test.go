package shard_test

// The sharded chaos/soak test: 200 concurrent lanes hammer a layer-sharded
// server while hot swaps promote three new weight versions mid-flight and
// Close finally drains under load. Every response must carry exactly one
// weight version and bit-match that version's serial reference — no lost,
// duplicate, or torn responses — and every goroutine must be joined.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pipelayer/internal/core"
	"pipelayer/internal/energy"
	"pipelayer/internal/serve"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

// mlpMachine builds a weight-loaded TinyMLP from the given seed — each seed
// is one "weight version" for the swap chaos.
func mlpMachine(t testing.TB, seed int64) *core.Accelerator {
	t.Helper()
	a := core.New(energy.DefaultModel())
	if err := a.TopologySet(testutil.TinyMLP("soak-mlp"), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(seed))); err != nil {
		t.Fatal(err)
	}
	return a
}

func assertNoGoroutineLeaksSoak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestShardedSwapSoak(t *testing.T) {
	base := runtime.NumGoroutine()
	const (
		lanes    = 200
		versions = 4
		nInputs  = 8
		replicas = 3
	)

	// One machine per weight version, same spec; version v's serial
	// references are the torn-response oracle.
	machines := make([]*core.Accelerator, versions)
	refs := make([][]*tensor.Tensor, versions)
	samples := testutil.FlatSamples(nInputs, 9)
	xs := make([]*tensor.Tensor, nInputs)
	for i, s := range samples {
		xs[i] = s.Input
	}
	for v := 0; v < versions; v++ {
		machines[v] = mlpMachine(t, 100+int64(v))
		refs[v] = serialReference(t, machines[v], xs)
	}

	s, err := serve.New(machines[0], serve.Config{
		Shards:   2,
		Replicas: replicas,
		MaxBatch: 8,
		MaxWait:  200 * time.Microsecond,
		QueueCap: 256,
	})
	if err != nil {
		t.Fatal(err)
	}

	// HTTP face for the exactly-one-X-Weight-Version check, exercised while
	// the soak runs.
	hs := httptest.NewServer(s.Handler(2 * time.Second))

	type obs struct {
		input   int
		version uint64
		scores  []float64
	}
	var (
		mu        sync.Mutex
		observed  []obs
		successes int64
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(lane) * 7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(nInputs)
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				res, err := s.Predict(ctx, xs[i])
				cancel()
				switch {
				case err == nil:
					mu.Lock()
					observed = append(observed, obs{input: i, version: res.Version, scores: append([]float64(nil), res.Scores.Data()...)})
					successes++
					mu.Unlock()
				case errors.Is(err, serve.ErrOverloaded):
					// shed: back off a hair and keep going
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				case errors.Is(err, serve.ErrClosed):
					return
				case errors.Is(err, context.DeadlineExceeded):
					// drain raced the deadline; fine under chaos
				default:
					t.Errorf("lane %d: unexpected error %v", lane, err)
					return
				}
			}
		}(lane)
	}

	// A few HTTP requests per version window: every 200 must carry the
	// version header exactly once and a body matching that version's
	// reference for its input.
	checkHTTP := func() {
		body := strings.NewReader(fmt.Sprintf(`{"input":%s}`, mustJSON(t, xs[0].Data())))
		resp, err := http.Post(hs.URL+"/predict", "application/json", body)
		if err != nil {
			t.Errorf("http predict: %v", err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			return // overloaded or draining mid-chaos: allowed
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("http predict: status %d", resp.StatusCode)
			return
		}
		hdrs := resp.Header.Values(serve.WeightVersionHeader)
		if len(hdrs) != 1 {
			t.Errorf("response carries %d %s headers, want exactly 1", len(hdrs), serve.WeightVersionHeader)
			return
		}
		v, err := strconv.ParseUint(hdrs[0], 10, 64)
		if err != nil || v < 1 || v > versions {
			t.Errorf("%s = %q, want a version in [1,%d]", serve.WeightVersionHeader, hdrs[0], versions)
			return
		}
		var pr serve.PredictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Errorf("decode response: %v", err)
			return
		}
		want := refs[v-1][0].Data()
		for j := range pr.Scores {
			if pr.Scores[j] != want[j] {
				t.Errorf("http response torn: version %d score %d is %v, want %v", v, j, pr.Scores[j], want[j])
				return
			}
		}
	}

	// Mid-flight promotions: v2, v3, v4 while the lanes hammer.
	for v := 2; v <= versions; v++ {
		time.Sleep(30 * time.Millisecond)
		checkHTTP()
		reps, err := machines[v-1].ReplicaSet(replicas)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Swap(reps, uint64(v)); err != nil {
			t.Fatalf("swap to v%d: %v", v, err)
		}
	}
	time.Sleep(30 * time.Millisecond)
	checkHTTP()

	// Close drain under load: lanes still firing when intake shuts. They
	// exit on ErrClosed; everything already admitted must still be answered.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	hs.Close()

	// Verify: every observed response is attributed to a known version and
	// bit-matches that version's serial reference — no torn or misattributed
	// responses anywhere in the run; response count equals success count —
	// nothing lost or duplicated.
	mu.Lock()
	defer mu.Unlock()
	if int64(len(observed)) != successes {
		t.Fatalf("%d recorded responses for %d successful calls", len(observed), successes)
	}
	if len(observed) == 0 {
		t.Fatal("soak produced no responses")
	}
	seen := map[uint64]int{}
	for _, o := range observed {
		if o.version < 1 || o.version > versions {
			t.Fatalf("response attributed to unknown version %d", o.version)
		}
		seen[o.version]++
		want := refs[o.version-1][o.input].Data()
		for j := range o.scores {
			if o.scores[j] != want[j] {
				t.Fatalf("torn response: version %d input %d score %d is %v, want %v",
					o.version, o.input, j, o.scores[j], want[j])
			}
		}
	}
	if len(seen) < 2 {
		t.Errorf("chaos observed only versions %v; swaps did not land mid-flight", seen)
	}
	t.Logf("soak: %d responses across versions %v", len(observed), seen)

	assertNoGoroutineLeaksSoak(t, base)
}

func mustJSON(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
