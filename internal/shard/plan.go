// Package shard splits a trained core.Replica into contiguous layer-range
// shards and streams batches through the shard chain: shard k computes batch
// i+1 while shard k+1 computes batch i — the paper's Figure 6 inter-layer
// pipeline lifted out of the cycle simulator into the real serving path.
// Each shard owns its own accelerator clone (core.Replica.Sub), inter-shard
// hand-off happens over bounded channels, and the chain's outputs stay
// bit-identical to the unsharded path because every shard runs the very same
// forwardBatch kernels the whole-model replica would.
package shard

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"pipelayer/internal/telemetry"
)

// Range is one shard's contiguous half-open engine range [Lo, Hi) over the
// replica's layer-engine stack.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// ValidateRanges checks that ranges tile [0, engines) exactly: in order,
// non-empty, gapless, starting at 0 and ending at engines.
func ValidateRanges(ranges []Range, engines int) error {
	if len(ranges) == 0 {
		return errors.New("shard: empty range list")
	}
	at := 0
	for i, r := range ranges {
		if r.Lo != at {
			return fmt.Errorf("shard: range %d starts at %d, want %d (ranges must tile the stack gaplessly)", i, r.Lo, at)
		}
		if r.Hi <= r.Lo {
			return fmt.Errorf("shard: range %d [%d,%d) is empty", i, r.Lo, r.Hi)
		}
		at = r.Hi
	}
	if at != engines {
		return fmt.Errorf("shard: ranges end at %d, stack has %d engines", at, engines)
	}
	return nil
}

// BalancedRanges partitions the engine stack into n contiguous ranges
// minimizing the maximum per-range cost — the classic linear-partition
// dynamic program, deterministic with ties broken toward the earliest split.
// A pipeline's throughput is set by its slowest stage, so minimizing the
// bottleneck range is the right objective.
func BalancedRanges(costs []float64, n int) ([]Range, error) {
	m := len(costs)
	if m == 0 {
		return nil, errors.New("shard: no engines to partition")
	}
	if n < 1 || n > m {
		return nil, fmt.Errorf("shard: cannot split %d engines into %d shards", m, n)
	}
	prefix := make([]float64, m+1)
	for i, c := range costs {
		if c < 0 || math.IsNaN(c) {
			return nil, fmt.Errorf("shard: engine %d has invalid cost %v", i, c)
		}
		prefix[i+1] = prefix[i] + c
	}
	// dp[j][i] is the minimal bottleneck cost of splitting the first i
	// engines into j ranges; cut[j][i] the split point achieving it.
	dp := make([][]float64, n+1)
	cut := make([][]int, n+1)
	for j := range dp {
		dp[j] = make([]float64, m+1)
		cut[j] = make([]int, m+1)
		for i := range dp[j] {
			dp[j][i] = math.Inf(1)
		}
	}
	for i := 1; i <= m; i++ {
		dp[1][i] = prefix[i]
	}
	for j := 2; j <= n; j++ {
		for i := j; i <= m; i++ {
			for k := j - 1; k < i; k++ {
				cost := math.Max(dp[j-1][k], prefix[i]-prefix[k])
				if cost < dp[j][i] {
					dp[j][i] = cost
					cut[j][i] = k
				}
			}
		}
	}
	ranges := make([]Range, n)
	hi := m
	for j := n; j >= 1; j-- {
		lo := 0
		if j > 1 {
			lo = cut[j][hi]
		}
		ranges[j-1] = Range{Lo: lo, Hi: hi}
		hi = lo
	}
	return ranges, nil
}

// MeasuredCosts extracts per-engine forward seconds from a telemetry
// snapshot: the trainer's core_stage_forward_seconds{stage="k"} spans
// (1-based over the engine stack). It reports ok only when every engine has
// a strictly positive measured total — partial telemetry falls back to the
// analytic costs rather than skewing the balance.
func MeasuredCosts(snap telemetry.Snapshot, engines int) ([]float64, bool) {
	costs := make([]float64, engines)
	for i := range costs {
		name := telemetry.Name("core_stage_forward_seconds", map[string]string{"stage": strconv.Itoa(i + 1)})
		sp, ok := snap.Spans[name]
		if !ok || sp.TotalSeconds <= 0 {
			return nil, false
		}
		costs[i] = sp.TotalSeconds
	}
	return costs, true
}
