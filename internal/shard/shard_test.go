package shard

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pipelayer/internal/core"
	"pipelayer/internal/energy"
	"pipelayer/internal/telemetry"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

// cnnReplica builds a weight-loaded TinyDeepCNN (5 engines: conv, pool,
// conv, pool, fc) and returns a fresh inference replica of it.
func cnnReplica(t testing.TB) *core.Replica {
	t.Helper()
	a := core.New(energy.DefaultModel())
	if err := a.TopologySet(testutil.TinyDeepCNN("shard-cnn"), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(41))); err != nil {
		t.Fatal(err)
	}
	rep, err := a.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func imageInputs(t testing.TB, n int) []*tensor.Tensor {
	t.Helper()
	samples := testutil.ImageSamples(n, 17)
	xs := make([]*tensor.Tensor, n)
	for i, s := range samples {
		xs[i] = s.Input
	}
	return xs
}

func sameBits(t *testing.T, got, want *tensor.Tensor, what string) {
	t.Helper()
	g, w := got.Data(), want.Data()
	if len(g) != len(w) {
		t.Fatalf("%s: %d elements, want %d", what, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: element %d is %v, want %v (bit-identity broken)", what, i, g[i], w[i])
		}
	}
}

func assertNoGoroutineLeaks(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChainBitIdentity: every shard count over the 5-engine CNN produces
// bit-identical outputs to the unsharded replica, for multi-sample batches
// and the single-sample fast path alike.
func TestChainBitIdentity(t *testing.T) {
	rep := cnnReplica(t)
	xs := imageInputs(t, 6)
	want := rep.InferBatch(append([]*tensor.Tensor(nil), xs...))
	single := rep.Infer(xs[0])
	for shards := 1; shards <= rep.Engines(); shards++ {
		c, err := New(rep, Config{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got, err := c.Forward(append([]*tensor.Tensor(nil), xs...))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for i := range got {
			sameBits(t, got[i], want[i], "batched")
		}
		one, err := c.Forward([]*tensor.Tensor{xs[0]})
		if err != nil {
			t.Fatalf("shards=%d single: %v", shards, err)
		}
		sameBits(t, one[0], single, "single")
		if err := c.Close(); err != nil {
			t.Fatalf("shards=%d close: %v", shards, err)
		}
	}
}

// TestChainExplicitRangesAndTelemetry: explicit uneven ranges work, per-shard
// instruments appear labeled, and Ranges reports the partition used.
func TestChainExplicitRangesAndTelemetry(t *testing.T) {
	rep := cnnReplica(t)
	xs := imageInputs(t, 4)
	want := rep.InferBatch(append([]*tensor.Tensor(nil), xs...))
	reg := telemetry.NewRegistry()
	ranges := []Range{{0, 1}, {1, 4}, {4, 5}}
	c, err := New(rep, Config{Ranges: ranges, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Forward(append([]*tensor.Tensor(nil), xs...))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		sameBits(t, got[i], want[i], "explicit ranges")
	}
	if got := c.Ranges(); len(got) != 3 || got[1] != ranges[1] {
		t.Fatalf("Ranges() = %v, want %v", got, ranges)
	}
	snap := reg.Snapshot()
	for k := 0; k < 3; k++ {
		name := telemetry.Name("serve_shard_batches_total", map[string]string{"shard": []string{"0", "1", "2"}[k]})
		if snap.Counters[name] != 1 {
			t.Errorf("%s = %d, want 1", name, snap.Counters[name])
		}
	}
}

// TestChainAutoBalancePrefersMeasuredTelemetry: with complete per-stage
// forward spans in the registry the planner balances on them instead of the
// analytic costs.
func TestChainAutoBalancePrefersMeasuredTelemetry(t *testing.T) {
	rep := cnnReplica(t)
	reg := telemetry.NewRegistry()
	// Fake a profile where the last engine dominates: the 2-shard split must
	// isolate it.
	for i := 1; i <= rep.Engines(); i++ {
		ms := time.Millisecond
		if i == rep.Engines() {
			ms = 100 * time.Millisecond
		}
		reg.Span(telemetry.Name("core_stage_forward_seconds", map[string]string{"stage": []string{"1", "2", "3", "4", "5"}[i-1]})).Add(ms)
	}
	ranges, err := ResolveRanges(rep, Config{Shards: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	want := []Range{{0, 4}, {4, 5}}
	if ranges[0] != want[0] || ranges[1] != want[1] {
		t.Fatalf("measured-cost split = %v, want %v", ranges, want)
	}
}

// TestChainBoundedBackpressure: with the tail shard stalled, only a bounded
// number of batches fit inside the chain (inboxes + in-compute slots);
// admission of the next batch blocks until the stall clears — backpressure,
// not buffering.
func TestChainBoundedBackpressure(t *testing.T) {
	base := runtime.NumGoroutine()
	rep := cnnReplica(t)
	xs := imageInputs(t, 1)
	gate := make(chan struct{})
	var stalled atomic.Bool
	c, err := New(rep, Config{
		Shards: 2,
		Depth:  1,
		BeforeStage: func(k int) {
			if k == 1 && stalled.Load() {
				<-gate
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stalled.Store(true)

	// Capacity with 2 shards at depth 1: one batch stalled in the tail
	// worker, one in the tail inbox, one stuck in the head worker's hand-off,
	// one in the head inbox = 4. The 5th must block at admission.
	const capacity = 4
	var wg sync.WaitGroup
	results := make(chan error, capacity)
	for i := 0; i < capacity; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Forward([]*tensor.Tensor{xs[0]})
			results <- err
		}()
	}
	// Wait for the pipeline to fill: an admission attempt with a deadline
	// must time out rather than be accepted or buffered.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		_, err := c.ForwardContext(ctx, []*tensor.Tensor{xs[0]})
		cancel()
		if errors.Is(err, context.DeadlineExceeded) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admission never blocked with the tail shard stalled")
		}
	}

	close(gate)
	stalled.Store(false)
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatalf("stalled batch failed after release: %v", err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoGoroutineLeaks(t, base)
}

// TestChainCancellationDoesNotWedge: canceling callers mid-flight abandons
// their waits without wedging the chain — later batches still flow, and
// Close still drains cleanly.
func TestChainCancellationDoesNotWedge(t *testing.T) {
	base := runtime.NumGoroutine()
	rep := cnnReplica(t)
	xs := imageInputs(t, 2)
	want := rep.Infer(xs[1])
	gate := make(chan struct{})
	var stalled atomic.Bool
	c, err := New(rep, Config{
		Shards: 3,
		BeforeStage: func(k int) {
			if k == 2 && stalled.Load() {
				<-gate
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stalled.Store(true)

	// A batch canceled while in flight: Forward returns the context error;
	// the chain later delivers the orphan into the job's buffered channel.
	ctx, cancel := context.WithCancel(context.Background())
	inFlight := make(chan error, 1)
	go func() {
		_, err := c.ForwardContext(ctx, []*tensor.Tensor{xs[0]})
		inFlight <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it get admitted and stall
	cancel()
	select {
	case err := <-inFlight:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled in-flight call returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled in-flight call never returned")
	}

	close(gate)
	stalled.Store(false)
	got, err := c.Forward([]*tensor.Tensor{xs[1]})
	if err != nil {
		t.Fatalf("chain wedged after cancellation: %v", err)
	}
	sameBits(t, got[0], want, "post-cancel")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoGoroutineLeaks(t, base)
}

// TestChainCloseDrains: batches accepted before Close complete and deliver;
// Forward after Close reports ErrClosed; double Close reports ErrClosed.
func TestChainCloseDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	rep := cnnReplica(t)
	xs := imageInputs(t, 3)
	want := rep.InferBatch(append([]*tensor.Tensor(nil), xs...))
	c, err := New(rep, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		ys  []*tensor.Tensor
		err error
	}
	done := make(chan res, 1)
	go func() {
		ys, err := c.Forward(append([]*tensor.Tensor(nil), xs...))
		done <- res{ys, err}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	r := <-done
	// The batch either completed before Close registered it (delivered,
	// bit-identical) or lost the admission race (ErrClosed) — never lost.
	if r.err == nil {
		for i := range r.ys {
			sameBits(t, r.ys[i], want[i], "drained")
		}
	} else if !errors.Is(r.err, ErrClosed) {
		t.Fatalf("in-flight batch got %v", r.err)
	}
	if _, err := c.Forward([]*tensor.Tensor{xs[0]}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Forward after Close = %v, want ErrClosed", err)
	}
	if err := c.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	assertNoGoroutineLeaks(t, base)
}

func TestChainEmptyBatch(t *testing.T) {
	rep := cnnReplica(t)
	c, err := New(rep, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ys, err := c.Forward(nil)
	if err != nil || ys != nil {
		t.Fatalf("empty batch = (%v, %v), want (nil, nil)", ys, err)
	}
}
