// Package networks is the benchmark network zoo of the paper's Section 6.1:
// the four MNIST networks of Table 3 (Mnist-A/B/C/0, reconstructed — see
// DESIGN.md), AlexNet, and the five VGG configurations A–E, plus the five
// resolution-study networks of Figure 13 (M-1, M-2, M-3, M-C, C-4).
//
// Each network is described as a geometry Spec (consumed by the mapper, the
// pipeline simulator, and the energy/GPU models); the MNIST-scale networks
// additionally have trainable nn.Network builders used by the accuracy
// experiments.
package networks

import (
	"fmt"

	"pipelayer/internal/mapping"
)

// Spec describes one benchmark network's geometry.
type Spec struct {
	Name string
	// Layers is the full layer sequence (conv/pool/fc).
	Layers []mapping.Layer
	// InC/InH/InW is the input volume.
	InC, InH, InW int
	// Classes is the output width.
	Classes int
}

// WeightedLayers returns the number of layers holding weights (conv + fc) —
// the L of the paper's cycle formulas. Pooling and activation are fused into
// the preceding weighted layer's logical pipeline stage.
func (s Spec) WeightedLayers() int {
	n := 0
	for _, l := range s.Layers {
		if l.UsesArrays() {
			n++
		}
	}
	return n
}

// TotalWeights returns the number of weight values in the network.
func (s Spec) TotalWeights() int {
	n := 0
	for _, l := range s.Layers {
		n += l.Weights()
	}
	return n
}

// ConvLayers returns the conv layers in order (for Table 5).
func (s Spec) ConvLayers() []mapping.Layer {
	var out []mapping.Layer
	for _, l := range s.Layers {
		if l.Kind == mapping.KindConv {
			out = append(out, l)
		}
	}
	return out
}

// Validate checks that every layer is self-consistent and that the layer
// shapes chain (conv/pool volumes feed the next layer; the first FC layer's
// input width matches the flattened preceding volume).
func (s Spec) Validate() error {
	c, h, w := s.InC, s.InH, s.InW
	flat := false
	for i, l := range s.Layers {
		if err := l.Validate(); err != nil {
			return err
		}
		switch l.Kind {
		case mapping.KindConv, mapping.KindPool:
			if flat {
				return fmt.Errorf("networks: %s layer %d (%s): conv/pool after fc", s.Name, i, l.Name)
			}
			if l.InC != c || l.InH != h || l.InW != w {
				return fmt.Errorf("networks: %s layer %d (%s): input (%d,%d,%d) does not chain from (%d,%d,%d)",
					s.Name, i, l.Name, l.InC, l.InH, l.InW, c, h, w)
			}
			c, h, w = l.OutC, l.OutH(), l.OutW()
		case mapping.KindFC:
			in := l.FCIn
			if !flat {
				if in != c*h*w {
					return fmt.Errorf("networks: %s layer %d (%s): fc input %d != flattened volume %d",
						s.Name, i, l.Name, in, c*h*w)
				}
				flat = true
			} else if in != c {
				return fmt.Errorf("networks: %s layer %d (%s): fc input %d != previous width %d",
					s.Name, i, l.Name, in, c)
			}
			c, h, w = l.FCOut, 1, 1
		}
	}
	if c != s.Classes {
		return fmt.Errorf("networks: %s: final width %d != %d classes", s.Name, c, s.Classes)
	}
	return nil
}

// MnistA is the reconstructed Table 3 MLP 784–100–10.
func MnistA() Spec {
	return Spec{
		Name: "Mnist-A", InC: 1, InH: 28, InW: 28, Classes: 10,
		Layers: []mapping.Layer{
			mapping.FC("fc1", 784, 100),
			mapping.FC("fc2", 100, 10),
		},
	}
}

// MnistB is the reconstructed Table 3 MLP 784–300–10.
func MnistB() Spec {
	return Spec{
		Name: "Mnist-B", InC: 1, InH: 28, InW: 28, Classes: 10,
		Layers: []mapping.Layer{
			mapping.FC("fc1", 784, 300),
			mapping.FC("fc2", 300, 10),
		},
	}
}

// MnistC is the reconstructed Table 3 MLP 784–500–250–10.
func MnistC() Spec {
	return Spec{
		Name: "Mnist-C", InC: 1, InH: 28, InW: 28, Classes: 10,
		Layers: []mapping.Layer{
			mapping.FC("fc1", 784, 500),
			mapping.FC("fc2", 500, 250),
			mapping.FC("fc3", 250, 10),
		},
	}
}

// Mnist0 is the reconstructed Table 3 CNN (LeNet-like, consistent with the
// "conv5x…" fragment): conv5×20 → pool2 → conv5×50 → pool2 → fc500 → fc10.
func Mnist0() Spec {
	return Spec{
		Name: "Mnist-0", InC: 1, InH: 28, InW: 28, Classes: 10,
		Layers: []mapping.Layer{
			mapping.Conv("conv1", 1, 28, 28, 20, 5, 1, 0),  // -> 20×24×24
			mapping.Pool("pool1", 20, 24, 24, 2),           // -> 20×12×12
			mapping.Conv("conv2", 20, 12, 12, 50, 5, 1, 0), // -> 50×8×8
			mapping.Pool("pool2", 50, 8, 8, 2),             // -> 50×4×4
			mapping.FC("fc1", 50*4*4, 500),
			mapping.FC("fc2", 500, 10),
		},
	}
}

// AlexNet is the single-tower AlexNet topology on 3×227×227 ImageNet input.
func AlexNet() Spec {
	return Spec{
		Name: "AlexNet", InC: 3, InH: 227, InW: 227, Classes: 1000,
		Layers: []mapping.Layer{
			mapping.Conv("conv1", 3, 227, 227, 96, 11, 4, 0), // -> 96×55×55
			mapping.PoolStrided("pool1", 96, 55, 55, 3, 2),   // -> 96×27×27
			mapping.Conv("conv2", 96, 27, 27, 256, 5, 1, 2),  // -> 256×27×27
			mapping.PoolStrided("pool2", 256, 27, 27, 3, 2),  // -> 256×13×13
			mapping.Conv("conv3", 256, 13, 13, 384, 3, 1, 1), // -> 384×13×13
			mapping.Conv("conv4", 384, 13, 13, 384, 3, 1, 1), // -> 384×13×13
			mapping.Conv("conv5", 384, 13, 13, 256, 3, 1, 1), // -> 256×13×13
			mapping.PoolStrided("pool5", 256, 13, 13, 3, 2),  // -> 256×6×6
			mapping.FC("fc6", 256*6*6, 4096),
			mapping.FC("fc7", 4096, 4096),
			mapping.FC("fc8", 4096, 1000),
		},
	}
}
