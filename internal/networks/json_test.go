package networks

import (
	"math/rand"
	"strings"
	"testing"

	"pipelayer/internal/mapping"
	"pipelayer/internal/tensor"
)

const lenetJSON = `{
  "name": "lenet-ish",
  "input": {"channels": 1, "height": 28, "width": 28},
  "classes": 10,
  "layers": [
    {"type": "conv", "out": 20, "kernel": 5},
    {"type": "pool", "window": 2},
    {"type": "conv", "out": 50, "kernel": 5},
    {"type": "pool", "window": 2, "mode": "avg"},
    {"type": "fc", "out": 500},
    {"type": "fc", "out": 10}
  ]
}`

func TestSpecFromJSONParsesAndChains(t *testing.T) {
	s, err := SpecFromJSON(strings.NewReader(lenetJSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "lenet-ish" || s.WeightedLayers() != 4 {
		t.Fatalf("spec: %s, %d weighted layers", s.Name, s.WeightedLayers())
	}
	// The fc input must have chained from the flattened 50×4×4 volume.
	var fc mapping.Layer
	for _, l := range s.Layers {
		if l.Kind == mapping.KindFC {
			fc = l
			break
		}
	}
	if fc.FCIn != 50*4*4 {
		t.Fatalf("fc input = %d, want 800", fc.FCIn)
	}
	// Avg pooling mode must be carried.
	if s.Layers[3].Pool != mapping.PoolAvg {
		t.Fatal("avg pool mode lost")
	}
}

func TestSpecFromJSONTrainable(t *testing.T) {
	s, err := SpecFromJSON(strings.NewReader(lenetJSON))
	if err != nil {
		t.Fatal(err)
	}
	net := BuildTrainable(s, rand.New(rand.NewSource(1)))
	if got := net.Forward(tensor.New(1, 28, 28)).Size(); got != 10 {
		t.Fatalf("output size = %d", got)
	}
}

func TestSpecFromJSONActivation(t *testing.T) {
	in := `{
	  "name": "sig",
	  "input": {"channels": 1, "height": 28, "width": 28},
	  "classes": 10,
	  "layers": [
	    {"type": "fc", "out": 32, "activation": "sigmoid"},
	    {"type": "fc", "out": 10}
	  ]
	}`
	s, err := SpecFromJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Layers[0].Act != mapping.ActSigmoid {
		t.Fatal("sigmoid activation lost")
	}
}

func TestSpecFromJSONErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"unknown field":  `{"name":"x","inptu":{}}`,
		"no name":        `{"input":{"channels":1,"height":4,"width":4},"classes":2,"layers":[{"type":"fc","out":2}]}`,
		"no layers":      `{"name":"x","input":{"channels":1,"height":4,"width":4},"classes":2,"layers":[]}`,
		"bad type":       `{"name":"x","input":{"channels":1,"height":4,"width":4},"classes":2,"layers":[{"type":"zap"}]}`,
		"bad pool mode":  `{"name":"x","input":{"channels":1,"height":4,"width":4},"classes":2,"layers":[{"type":"pool","window":2,"mode":"median"},{"type":"fc","out":2}]}`,
		"bad activation": `{"name":"x","input":{"channels":1,"height":4,"width":4},"classes":2,"layers":[{"type":"fc","out":2,"activation":"tanh"}]}`,
		"conv after fc":  `{"name":"x","input":{"channels":1,"height":4,"width":4},"classes":2,"layers":[{"type":"fc","out":8},{"type":"conv","out":2,"kernel":1}]}`,
		"wrong classes":  `{"name":"x","input":{"channels":1,"height":4,"width":4},"classes":3,"layers":[{"type":"fc","out":2}]}`,
		"bad input":      `{"name":"x","input":{"channels":0,"height":4,"width":4},"classes":2,"layers":[{"type":"fc","out":2}]}`,
	}
	for label, in := range cases {
		if _, err := SpecFromJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
}
