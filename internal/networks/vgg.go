package networks

import (
	"fmt"

	"pipelayer/internal/mapping"
)

// vggConv describes one conv of a VGG block: output channels and kernel size
// (3 with pad 1, or VGG-C's 1×1 with pad 0).
type vggConv struct {
	outC, k int
}

// vggBlocks returns the five block definitions of a VGG variant
// (Simonyan & Zisserman, Table 1 of the VGG paper).
func vggBlocks(variant string) [5][]vggConv {
	c3 := func(n int) vggConv { return vggConv{n, 3} }
	c1 := func(n int) vggConv { return vggConv{n, 1} }
	switch variant {
	case "A": // 11 weight layers
		return [5][]vggConv{
			{c3(64)}, {c3(128)}, {c3(256), c3(256)}, {c3(512), c3(512)}, {c3(512), c3(512)},
		}
	case "B": // 13
		return [5][]vggConv{
			{c3(64), c3(64)}, {c3(128), c3(128)}, {c3(256), c3(256)}, {c3(512), c3(512)}, {c3(512), c3(512)},
		}
	case "C": // 16, with 1×1 convs
		return [5][]vggConv{
			{c3(64), c3(64)}, {c3(128), c3(128)},
			{c3(256), c3(256), c1(256)}, {c3(512), c3(512), c1(512)}, {c3(512), c3(512), c1(512)},
		}
	case "D": // 16
		return [5][]vggConv{
			{c3(64), c3(64)}, {c3(128), c3(128)},
			{c3(256), c3(256), c3(256)}, {c3(512), c3(512), c3(512)}, {c3(512), c3(512), c3(512)},
		}
	case "E": // 19
		return [5][]vggConv{
			{c3(64), c3(64)}, {c3(128), c3(128)},
			{c3(256), c3(256), c3(256), c3(256)}, {c3(512), c3(512), c3(512), c3(512)}, {c3(512), c3(512), c3(512), c3(512)},
		}
	default:
		panic(fmt.Sprintf("networks: unknown VGG variant %q", variant))
	}
}

// VGG builds the geometry Spec of VGG-A, -B, -C, -D or -E on 3×224×224 input.
func VGG(variant string) Spec {
	blocks := vggBlocks(variant)
	s := Spec{Name: "VGG-" + variant, InC: 3, InH: 224, InW: 224, Classes: 1000}
	c, h, w := 3, 224, 224
	convIdx := 0
	for bi, block := range blocks {
		for _, conv := range block {
			convIdx++
			pad := 0
			if conv.k == 3 {
				pad = 1
			}
			s.Layers = append(s.Layers,
				mapping.Conv(fmt.Sprintf("conv%d", convIdx), c, h, w, conv.outC, conv.k, 1, pad))
			c = conv.outC
		}
		s.Layers = append(s.Layers, mapping.Pool(fmt.Sprintf("pool%d", bi+1), c, h, w, 2))
		h, w = h/2, w/2
	}
	s.Layers = append(s.Layers,
		mapping.FC("fc1", c*h*w, 4096),
		mapping.FC("fc2", 4096, 4096),
		mapping.FC("fc3", 4096, 1000),
	)
	return s
}

// VGGVariants lists the five evaluated configurations in paper order.
var VGGVariants = []string{"A", "B", "C", "D", "E"}

// EvaluationNetworks returns the ten benchmark networks of Figure 15/16 in
// paper order: the four MNIST networks, AlexNet, then VGG-A…E.
func EvaluationNetworks() []Spec {
	specs := []Spec{MnistA(), MnistB(), MnistC(), Mnist0(), AlexNet()}
	for _, v := range VGGVariants {
		specs = append(specs, VGG(v))
	}
	return specs
}
