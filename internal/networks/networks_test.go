package networks

import (
	"math/rand"
	"testing"

	"pipelayer/internal/dataset"
	"pipelayer/internal/mapping"
	"pipelayer/internal/tensor"
)

func TestAllEvaluationNetworksValidate(t *testing.T) {
	for _, s := range EvaluationNetworks() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestAllResolutionNetworksValidate(t *testing.T) {
	for _, s := range ResolutionStudyNetworks() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestWeightedLayerCounts(t *testing.T) {
	cases := map[string]int{
		"Mnist-A": 2, "Mnist-B": 2, "Mnist-C": 3, "Mnist-0": 4,
		"AlexNet": 8,
		"VGG-A":   11, "VGG-B": 13, "VGG-C": 16, "VGG-D": 16, "VGG-E": 19,
	}
	for _, s := range EvaluationNetworks() {
		want := cases[s.Name]
		if got := s.WeightedLayers(); got != want {
			t.Errorf("%s: %d weighted layers, want %d", s.Name, got, want)
		}
	}
}

func TestAlexNetGeometry(t *testing.T) {
	s := AlexNet()
	conv1 := s.Layers[0]
	if conv1.OutH() != 55 || conv1.OutW() != 55 {
		t.Fatalf("conv1 output %dx%d, want 55x55", conv1.OutH(), conv1.OutW())
	}
	pool1 := s.Layers[1]
	if pool1.OutH() != 27 {
		t.Fatalf("pool1 output %d, want 27 (overlapping 3x3 s2)", pool1.OutH())
	}
}

func TestAlexNetParameterCount(t *testing.T) {
	// AlexNet has ≈ 60M weights (excluding biases); check the well-known
	// ballpark to validate the topology transcription.
	n := AlexNet().TotalWeights()
	if n < 55_000_000 || n > 65_000_000 {
		t.Fatalf("AlexNet weights = %d, expected ≈ 60M", n)
	}
}

func TestVGGParameterCounts(t *testing.T) {
	// VGG-D (VGG-16) has ≈ 138M parameters.
	n := VGG("D").TotalWeights()
	if n < 130_000_000 || n > 145_000_000 {
		t.Fatalf("VGG-D weights = %d, expected ≈ 138M", n)
	}
	// Deeper variants have more weights.
	if VGG("E").TotalWeights() <= VGG("D").TotalWeights() {
		t.Fatal("VGG-E must have more weights than VGG-D")
	}
	if VGG("B").TotalWeights() <= VGG("A").TotalWeights() {
		t.Fatal("VGG-B must have more weights than VGG-A")
	}
}

func TestVGGConvLayerCounts(t *testing.T) {
	wants := map[string]int{"A": 8, "B": 10, "C": 13, "D": 13, "E": 16}
	for v, want := range wants {
		if got := len(VGG(v).ConvLayers()); got != want {
			t.Errorf("VGG-%s: %d conv layers, want %d", v, got, want)
		}
	}
}

func TestVGGUnknownVariantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	VGG("Z")
}

func TestValidateCatchesBrokenChain(t *testing.T) {
	s := MnistA()
	s.Layers[1] = mapping.FC("fc2", 99, 10) // wrong input width
	if err := s.Validate(); err == nil {
		t.Fatal("expected chain error")
	}
}

func TestValidateCatchesWrongClassCount(t *testing.T) {
	s := MnistA()
	s.Classes = 11
	if err := s.Validate(); err == nil {
		t.Fatal("expected class-count error")
	}
}

func TestBuildTrainableMnistNets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, spec := range []Spec{MnistA(), MnistB(), MnistC(), Mnist0(), C4()} {
		net := BuildTrainable(spec, rng)
		var x *tensor.Tensor
		if spec.Layers[0].Kind == mapping.KindFC {
			x = tensor.New(784)
		} else {
			x = tensor.New(1, 28, 28)
		}
		y := net.Forward(x)
		if y.Size() != 10 {
			t.Errorf("%s: output size %d", spec.Name, y.Size())
		}
	}
}

func TestTrainableMnistALearnsSyntheticDigits(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(2))
	net := BuildTrainable(MnistA(), rng)
	train, test := dataset.TrainTest(600, 200, dataset.DefaultOptions(true), 7)
	for epoch := 0; epoch < 8; epoch++ {
		net.TrainEpoch(train, 10, 0.1)
	}
	if acc := net.Accuracy(test); acc < 0.9 {
		t.Fatalf("Mnist-A accuracy on synthetic digits = %g, want ≥ 0.9", acc)
	}
}

func TestResolutionNetworkNames(t *testing.T) {
	names := []string{"M-1", "M-2", "M-3", "M-C", "C-4"}
	nets := ResolutionStudyNetworks()
	for i, want := range names {
		if nets[i].Name != want {
			t.Errorf("network %d = %s, want %s", i, nets[i].Name, want)
		}
	}
}

func TestEvaluationNetworkOrder(t *testing.T) {
	names := []string{"Mnist-A", "Mnist-B", "Mnist-C", "Mnist-0", "AlexNet",
		"VGG-A", "VGG-B", "VGG-C", "VGG-D", "VGG-E"}
	nets := EvaluationNetworks()
	if len(nets) != 10 {
		t.Fatalf("want 10 networks, got %d", len(nets))
	}
	for i, want := range names {
		if nets[i].Name != want {
			t.Errorf("network %d = %s, want %s", i, nets[i].Name, want)
		}
	}
}
