package networks

import (
	"fmt"
	"math/rand"

	"pipelayer/internal/mapping"
	"pipelayer/internal/nn"
)

// BuildTrainable assembles a runnable nn.Network from a geometry Spec:
// every conv and hidden fc layer is followed by ReLU (the paper's default
// activation), pooling layers become max pooling, and the final fc layer
// feeds a softmax loss. Only non-overlapping pooling is supported (the
// MNIST-scale networks; the ImageNet networks are simulated, not trained).
func BuildTrainable(s Spec, rng *rand.Rand) *nn.Network {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	var layers []nn.Layer
	lastFC := -1
	for i, l := range s.Layers {
		if l.Kind == mapping.KindFC {
			lastFC = i
		}
	}
	activation := func(l mapping.Layer) nn.Layer {
		if l.Act == mapping.ActSigmoid {
			return nn.NewSigmoid(l.Name + ".sigmoid")
		}
		return nn.NewReLU(l.Name + ".relu")
	}
	for i, l := range s.Layers {
		switch l.Kind {
		case mapping.KindConv:
			layers = append(layers,
				nn.NewConv(l.Name, l.InC, l.InH, l.InW, l.OutC, l.K, l.Stride, l.Pad, rng),
				activation(l))
		case mapping.KindPool:
			if l.K != l.Stride {
				panic(fmt.Sprintf("networks: BuildTrainable: overlapping pool %q not supported in the trainable path", l.Name))
			}
			if l.Pool == mapping.PoolAvg {
				layers = append(layers, nn.NewAvgPool(l.Name, l.InC, l.InH, l.InW, l.K))
			} else {
				layers = append(layers, nn.NewMaxPool(l.Name, l.InC, l.InH, l.InW, l.K))
			}
		case mapping.KindFC:
			layers = append(layers, nn.NewDense(l.Name, l.FCIn, l.FCOut, rng))
			if i != lastFC {
				layers = append(layers, activation(l))
			}
		}
	}
	var inShape []int
	if s.Layers[0].Kind == mapping.KindFC {
		inShape = []int{s.Layers[0].FCIn}
	} else {
		inShape = []int{s.InC, s.InH, s.InW}
	}
	return nn.NewNetwork(s.Name, inShape, s.Classes, nn.SoftmaxLoss{}, layers...)
}

// Resolution-study networks of Figure 13. M-1/M-2/M-3 are the three MLPs,
// M-C the MNIST CNN, and C-4 a four-convolution-layer CNN whose accuracy is
// markedly more sensitive to weight resolution.

// M1 is the Figure 13 MLP M-1 (= Mnist-A geometry).
func M1() Spec { s := MnistA(); s.Name = "M-1"; return s }

// M2 is the Figure 13 MLP M-2 (= Mnist-B geometry).
func M2() Spec { s := MnistB(); s.Name = "M-2"; return s }

// M3 is the Figure 13 MLP M-3 (= Mnist-C geometry).
func M3() Spec { s := MnistC(); s.Name = "M-3"; return s }

// MC is the Figure 13 CNN M-C (= Mnist-0 geometry).
func MC() Spec { s := Mnist0(); s.Name = "M-C"; return s }

// C4 is the Figure 13 four-convolution-layer CNN.
func C4() Spec {
	return Spec{
		Name: "C-4", InC: 1, InH: 28, InW: 28, Classes: 10,
		Layers: []mapping.Layer{
			mapping.Conv("conv1", 1, 28, 28, 8, 3, 1, 1),  // -> 8×28×28
			mapping.Pool("pool1", 8, 28, 28, 2),           // -> 8×14×14
			mapping.Conv("conv2", 8, 14, 14, 16, 3, 1, 1), // -> 16×14×14
			mapping.Pool("pool2", 16, 14, 14, 2),          // -> 16×7×7
			mapping.Conv("conv3", 16, 7, 7, 32, 3, 1, 1),  // -> 32×7×7
			mapping.Conv("conv4", 32, 7, 7, 32, 3, 1, 1),  // -> 32×7×7
			mapping.FC("fc", 32*7*7, 10),
		},
	}
}

// ResolutionStudyNetworks returns the five Figure 13 networks in paper order.
func ResolutionStudyNetworks() []Spec {
	return []Spec{M1(), M2(), M3(), MC(), C4()}
}
