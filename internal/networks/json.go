package networks

import (
	"encoding/json"
	"fmt"
	"io"

	"pipelayer/internal/mapping"
)

// JSON topology descriptions let users simulate custom networks without
// recompiling. Example:
//
//	{
//	  "name": "my-net",
//	  "input": {"channels": 1, "height": 28, "width": 28},
//	  "classes": 10,
//	  "layers": [
//	    {"type": "conv", "out": 8, "kernel": 3, "stride": 1, "pad": 1},
//	    {"type": "pool", "window": 2, "mode": "max"},
//	    {"type": "fc", "out": 10}
//	  ]
//	}
//
// Layer input shapes chain automatically from the input volume; conv/fc
// activations default to ReLU ("activation": "sigmoid" overrides).

// jsonSpec mirrors the document structure.
type jsonSpec struct {
	Name  string `json:"name"`
	Input struct {
		Channels int `json:"channels"`
		Height   int `json:"height"`
		Width    int `json:"width"`
	} `json:"input"`
	Classes int         `json:"classes"`
	Layers  []jsonLayer `json:"layers"`
}

type jsonLayer struct {
	Type       string `json:"type"`
	Out        int    `json:"out"`
	Kernel     int    `json:"kernel"`
	Stride     int    `json:"stride"`
	Pad        int    `json:"pad"`
	Window     int    `json:"window"`
	Mode       string `json:"mode"`
	Activation string `json:"activation"`
}

// SpecFromJSON parses a topology document and returns a validated Spec.
func SpecFromJSON(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc jsonSpec
	if err := dec.Decode(&doc); err != nil {
		return Spec{}, fmt.Errorf("networks: parsing topology: %w", err)
	}
	if doc.Name == "" {
		return Spec{}, fmt.Errorf("networks: topology needs a name")
	}
	if doc.Input.Channels <= 0 || doc.Input.Height <= 0 || doc.Input.Width <= 0 {
		return Spec{}, fmt.Errorf("networks: %s: input volume must be positive", doc.Name)
	}
	if doc.Classes <= 0 {
		return Spec{}, fmt.Errorf("networks: %s: classes must be positive", doc.Name)
	}
	if len(doc.Layers) == 0 {
		return Spec{}, fmt.Errorf("networks: %s: no layers", doc.Name)
	}

	s := Spec{
		Name: doc.Name,
		InC:  doc.Input.Channels, InH: doc.Input.Height, InW: doc.Input.Width,
		Classes: doc.Classes,
	}
	c, h, w := s.InC, s.InH, s.InW
	flatWidth := 0
	flat := false
	for i, jl := range doc.Layers {
		name := fmt.Sprintf("%s%d", jl.Type, i+1)
		switch jl.Type {
		case "conv":
			if flat {
				return Spec{}, fmt.Errorf("networks: %s layer %d: conv after fc", doc.Name, i+1)
			}
			stride := jl.Stride
			if stride == 0 {
				stride = 1
			}
			l := mapping.Conv(name, c, h, w, jl.Out, jl.Kernel, stride, jl.Pad)
			if act, err := parseActivation(jl.Activation); err != nil {
				return Spec{}, fmt.Errorf("networks: %s layer %d: %w", doc.Name, i+1, err)
			} else {
				l = l.WithActivation(act)
			}
			s.Layers = append(s.Layers, l)
			c, h, w = l.OutC, l.OutH(), l.OutW()
		case "pool":
			if flat {
				return Spec{}, fmt.Errorf("networks: %s layer %d: pool after fc", doc.Name, i+1)
			}
			var l mapping.Layer
			switch jl.Mode {
			case "", "max":
				l = mapping.Pool(name, c, h, w, jl.Window)
			case "avg":
				l = mapping.AvgPool(name, c, h, w, jl.Window)
			default:
				return Spec{}, fmt.Errorf("networks: %s layer %d: unknown pool mode %q", doc.Name, i+1, jl.Mode)
			}
			s.Layers = append(s.Layers, l)
			h, w = l.OutH(), l.OutW()
		case "fc":
			in := flatWidth
			if !flat {
				in = c * h * w
				flat = true
			}
			l := mapping.FC(name, in, jl.Out)
			if act, err := parseActivation(jl.Activation); err != nil {
				return Spec{}, fmt.Errorf("networks: %s layer %d: %w", doc.Name, i+1, err)
			} else {
				l = l.WithActivation(act)
			}
			s.Layers = append(s.Layers, l)
			flatWidth = jl.Out
		default:
			return Spec{}, fmt.Errorf("networks: %s layer %d: unknown type %q", doc.Name, i+1, jl.Type)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func parseActivation(s string) (mapping.Activation, error) {
	switch s {
	case "", "relu":
		return mapping.ActReLU, nil
	case "sigmoid":
		return mapping.ActSigmoid, nil
	default:
		return 0, fmt.Errorf("unknown activation %q", s)
	}
}
