package nn

import (
	"fmt"

	"pipelayer/internal/tensor"
)

// MaxPool implements max pooling over non-overlapping KxK windows.
// Forward records the argmax position of every window; Backward copies each
// error element to that position and zeroes the rest — exactly the error
// backward of the paper's Figure 10(b), realized in PipeLayer's activation
// component using the stored d_{l-1} to locate the window maximum.
type MaxPool struct {
	name          string
	inC, inH, inW int
	k             int
	argmax        []int // flat input index of the max for each output element
	outShape      []int
}

// NewMaxPool creates a max-pooling layer with window and stride k.
func NewMaxPool(name string, inC, inH, inW, k int) *MaxPool {
	if inH%k != 0 || inW%k != 0 {
		panic(fmt.Sprintf("nn: NewMaxPool(%s): input %dx%d not divisible by window %d", name, inH, inW, k))
	}
	return &MaxPool{name: name, inC: inC, inH: inH, inW: inW, k: k}
}

// Name implements Layer.
func (p *MaxPool) Name() string { return p.name }

// Params implements Layer.
func (p *MaxPool) Params() []*Param { return nil }

// Window returns the pooling window size.
func (p *MaxPool) Window() int { return p.k }

// Geometry returns (inC, inH, inW, window).
func (p *MaxPool) Geometry() (inC, inH, inW, k int) { return p.inC, p.inH, p.inW, p.k }

// OutShape implements Layer.
func (p *MaxPool) OutShape(in []int) []int {
	mustShape(p.name, "input", in, []int{p.inC, p.inH, p.inW})
	return []int{p.inC, p.inH / p.k, p.inW / p.k}
}

// Forward implements Layer.
func (p *MaxPool) Forward(x *tensor.Tensor) *tensor.Tensor {
	mustShape(p.name, "input", x.Shape(), []int{p.inC, p.inH, p.inW})
	oh, ow := p.inH/p.k, p.inW/p.k
	out := tensor.New(p.inC, oh, ow)
	p.argmax = make([]int, p.inC*oh*ow)
	for c := 0; c < p.inC; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := 0.0
				bestIdx := -1
				for ky := 0; ky < p.k; ky++ {
					for kx := 0; kx < p.k; kx++ {
						iy, ix := oy*p.k+ky, ox*p.k+kx
						idx := c*p.inH*p.inW + iy*p.inW + ix
						v := x.Data()[idx]
						if bestIdx < 0 || v > best {
							best, bestIdx = v, idx
						}
					}
				}
				oidx := c*oh*ow + oy*ow + ox
				out.Data()[oidx] = best
				p.argmax[oidx] = bestIdx
			}
		}
	}
	p.outShape = out.Shape()
	return out
}

// Backward implements Layer.
func (p *MaxPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", p.name))
	}
	mustShape(p.name, "grad", grad.Shape(), p.outShape)
	dx := tensor.New(p.inC, p.inH, p.inW)
	for oidx, iidx := range p.argmax {
		dx.Data()[iidx] += grad.Data()[oidx]
	}
	return dx
}

// AvgPool implements average pooling (Equation (2) of the paper) over
// non-overlapping KxK windows. When K·K is a power of two the division is a
// shift in hardware, as the paper notes.
type AvgPool struct {
	name          string
	inC, inH, inW int
	k             int
	outShape      []int
	did           bool
}

// NewAvgPool creates an average-pooling layer with window and stride k.
func NewAvgPool(name string, inC, inH, inW, k int) *AvgPool {
	if inH%k != 0 || inW%k != 0 {
		panic(fmt.Sprintf("nn: NewAvgPool(%s): input %dx%d not divisible by window %d", name, inH, inW, k))
	}
	return &AvgPool{name: name, inC: inC, inH: inH, inW: inW, k: k}
}

// Name implements Layer.
func (p *AvgPool) Name() string { return p.name }

// Params implements Layer.
func (p *AvgPool) Params() []*Param { return nil }

// Window returns the pooling window size.
func (p *AvgPool) Window() int { return p.k }

// Geometry returns (inC, inH, inW, window).
func (p *AvgPool) Geometry() (inC, inH, inW, k int) { return p.inC, p.inH, p.inW, p.k }

// OutShape implements Layer.
func (p *AvgPool) OutShape(in []int) []int {
	mustShape(p.name, "input", in, []int{p.inC, p.inH, p.inW})
	return []int{p.inC, p.inH / p.k, p.inW / p.k}
}

// Forward implements Layer.
func (p *AvgPool) Forward(x *tensor.Tensor) *tensor.Tensor {
	mustShape(p.name, "input", x.Shape(), []int{p.inC, p.inH, p.inW})
	oh, ow := p.inH/p.k, p.inW/p.k
	out := tensor.New(p.inC, oh, ow)
	inv := 1.0 / float64(p.k*p.k)
	for c := 0; c < p.inC; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for ky := 0; ky < p.k; ky++ {
					for kx := 0; kx < p.k; kx++ {
						s += x.At(c, oy*p.k+ky, ox*p.k+kx)
					}
				}
				out.Set(s*inv, c, oy, ox)
			}
		}
	}
	p.outShape = out.Shape()
	p.did = true
	return out
}

// Backward implements Layer: the error is distributed uniformly over the
// window, scaled by 1/K².
func (p *AvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if !p.did {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", p.name))
	}
	mustShape(p.name, "grad", grad.Shape(), p.outShape)
	dx := tensor.New(p.inC, p.inH, p.inW)
	oh, ow := p.inH/p.k, p.inW/p.k
	inv := 1.0 / float64(p.k*p.k)
	for c := 0; c < p.inC; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := grad.At(c, oy, ox) * inv
				for ky := 0; ky < p.k; ky++ {
					for kx := 0; kx < p.k; kx++ {
						dx.Set(dx.At(c, oy*p.k+ky, ox*p.k+kx)+g, c, oy*p.k+ky, ox*p.k+kx)
					}
				}
			}
		}
	}
	return dx
}
