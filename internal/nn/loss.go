package nn

import (
	"fmt"
	"math"

	"pipelayer/internal/tensor"
)

// Loss is a cost function J(y, t) together with its gradient δ_L = ∂J/∂y.
// The paper defines two (Section 2.2): the L2 norm loss and softmax loss.
type Loss interface {
	// Name identifies the loss for diagnostics.
	Name() string
	// Loss evaluates J for network output y and target t.
	Loss(y, t *tensor.Tensor) float64
	// Grad returns ∂J/∂y for the same pair.
	Grad(y, t *tensor.Tensor) *tensor.Tensor
}

// L2Loss is J(W,b) = ½‖y − t‖₂², with gradient (y − t).
type L2Loss struct{}

// Name implements Loss.
func (L2Loss) Name() string { return "l2" }

// Loss implements Loss.
func (L2Loss) Loss(y, t *tensor.Tensor) float64 {
	mustSame(y, t)
	s := 0.0
	for i, v := range y.Data() {
		d := v - t.Data()[i]
		s += d * d
	}
	return 0.5 * s
}

// Grad implements Loss.
func (L2Loss) Grad(y, t *tensor.Tensor) *tensor.Tensor {
	mustSame(y, t)
	return tensor.Sub(y, t)
}

// SoftmaxLoss is the softmax cross-entropy loss
// J = −Σ_i t_i log p_i with p = softmax(y); its gradient with respect to the
// pre-softmax scores is the numerically convenient (p − t).
type SoftmaxLoss struct{}

// Name implements Loss.
func (SoftmaxLoss) Name() string { return "softmax" }

// Softmax returns the softmax distribution of a score vector, computed with
// the max-subtraction trick for numerical stability.
func Softmax(y *tensor.Tensor) *tensor.Tensor {
	m, _ := y.Max()
	p := tensor.New(y.Shape()...)
	sum := 0.0
	for i, v := range y.Data() {
		e := math.Exp(v - m)
		p.Data()[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range p.Data() {
		p.Data()[i] *= inv
	}
	return p
}

// Loss implements Loss.
func (SoftmaxLoss) Loss(y, t *tensor.Tensor) float64 {
	mustSame(y, t)
	p := Softmax(y)
	s := 0.0
	for i, ti := range t.Data() {
		if ti != 0 {
			s -= ti * math.Log(math.Max(p.Data()[i], 1e-300))
		}
	}
	return s
}

// Grad implements Loss: ∂J/∂y = p − t.
func (SoftmaxLoss) Grad(y, t *tensor.Tensor) *tensor.Tensor {
	mustSame(y, t)
	return Softmax(y).SubInPlace(t)
}

func mustSame(y, t *tensor.Tensor) {
	if y.Size() != t.Size() {
		panic(fmt.Sprintf("nn: loss operands differ in size: %d vs %d", y.Size(), t.Size()))
	}
}

// OneHot builds a one-hot target vector of length n with class set.
func OneHot(class, n int) *tensor.Tensor {
	if class < 0 || class >= n {
		panic(fmt.Sprintf("nn: OneHot class %d out of [0,%d)", class, n))
	}
	t := tensor.New(n)
	t.Set(1, class)
	return t
}
