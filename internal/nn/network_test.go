package nn

import (
	"math"
	"math/rand"
	"testing"

	"pipelayer/internal/tensor"
)

// xorSamples is a classic non-linearly-separable task: a network that learns
// it must be doing real backpropagation through the hidden layer.
func xorSamples() []Sample {
	mk := func(a, b float64, label int) Sample {
		return Sample{Input: tensor.FromSlice([]float64{a, b}, 2), Label: label}
	}
	return []Sample{mk(0, 0, 0), mk(0, 1, 1), mk(1, 0, 1), mk(1, 1, 0)}
}

func TestNetworkLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork("xor", []int{2}, 2, SoftmaxLoss{},
		NewDense("fc1", 2, 8, rng),
		NewReLU("r1"),
		NewDense("fc2", 8, 2, rng),
	)
	samples := xorSamples()
	for epoch := 0; epoch < 2000; epoch++ {
		net.TrainEpoch(samples, 4, 0.5)
	}
	if acc := net.Accuracy(samples); acc != 1.0 {
		t.Fatalf("XOR accuracy = %g, want 1.0", acc)
	}
}

func TestTrainBatchReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewNetwork("toy", []int{4}, 2, SoftmaxLoss{},
		NewDense("fc", 4, 2, rng),
	)
	s := Sample{Input: tensor.New(4).RandNormal(rng, 0, 1), Label: 1}
	first := net.TrainBatch([]Sample{s}, 0.1)
	var last float64
	for i := 0; i < 50; i++ {
		last = net.TrainBatch([]Sample{s}, 0.1)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %g, last %g", first, last)
	}
}

func TestBatchSemanticsFrozenWeights(t *testing.T) {
	// Within a batch, every image must be processed with the same weights:
	// processing [a, b] as one batch of 2 must give the same accumulated
	// gradient as processing a then b without an intermediate update.
	rng := rand.New(rand.NewSource(9))
	mkNet := func() *Network {
		r := rand.New(rand.NewSource(77))
		return NewNetwork("toy", []int{3}, 2, SoftmaxLoss{},
			NewDense("fc", 3, 2, r),
		)
	}
	a := Sample{Input: tensor.New(3).RandNormal(rng, 0, 1), Label: 0}
	b := Sample{Input: tensor.New(3).RandNormal(rng, 0, 1), Label: 1}

	n1 := mkNet()
	n1.ZeroGrads()
	n1.TrainStep(a)
	n1.TrainStep(b)
	g1 := n1.Params()[0].Grad.Clone()

	n2 := mkNet()
	n2.ZeroGrads()
	n2.TrainStep(b)
	n2.TrainStep(a)
	g2 := n2.Params()[0].Grad.Clone()

	if !tensor.Equal(g1, g2, 1e-12) {
		t.Fatal("batch gradient must be order-independent when weights are frozen")
	}
}

func TestApplyUpdateAverages(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewNetwork("toy", []int{2}, 2, L2Loss{}, NewDense("fc", 2, 2, rng))
	p := net.Params()[0]
	before := p.Value.Clone()
	p.Grad.Fill(4) // pretend batch of 4 accumulated gradient 4 everywhere
	net.ApplyUpdate(0.5, 4)
	// update = -0.5 * 4/4 = -0.5 per element
	diff := tensor.Sub(p.Value, before)
	for _, v := range diff.Data() {
		if math.Abs(v+0.5) > 1e-12 {
			t.Fatalf("update per element = %g, want -0.5", v)
		}
	}
}

func TestApplyUpdateZeroBatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewNetwork("toy", []int{2}, 2, L2Loss{}, NewDense("fc", 2, 2, rng))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.ApplyUpdate(0.1, 0)
}

func TestNewNetworkShapeMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: output size != classes")
		}
	}()
	NewNetwork("bad", []int{4}, 3, SoftmaxLoss{}, NewDense("fc", 4, 2, rng))
}

func TestSnapshotRestoreWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewNetwork("toy", []int{3}, 2, SoftmaxLoss{}, NewDense("fc", 3, 2, rng))
	snap := net.SnapshotWeights()
	s := Sample{Input: tensor.New(3).RandNormal(rng, 0, 1), Label: 0}
	net.TrainBatch([]Sample{s}, 1.0)
	changed := false
	for i, p := range net.Params() {
		if !tensor.Equal(p.Value, snap[i], 0) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("training should change weights")
	}
	net.RestoreWeights(snap)
	for i, p := range net.Params() {
		if !tensor.Equal(p.Value, snap[i], 0) {
			t.Fatal("RestoreWeights did not restore")
		}
	}
}

func TestTrainEpochPartialBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewNetwork("toy", []int{2}, 2, SoftmaxLoss{}, NewDense("fc", 2, 2, rng))
	samples := make([]Sample, 5) // 5 samples with batch 2 => trailing batch of 1
	for i := range samples {
		samples[i] = Sample{Input: tensor.New(2).RandNormal(rng, 0, 1), Label: i % 2}
	}
	loss := net.TrainEpoch(samples, 2, 0.1)
	if math.IsNaN(loss) || loss <= 0 {
		t.Fatalf("epoch loss = %g", loss)
	}
}

func TestAccuracyEmptySet(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	net := NewNetwork("toy", []int{2}, 2, SoftmaxLoss{}, NewDense("fc", 2, 2, rng))
	if acc := net.Accuracy(nil); acc != 0 {
		t.Fatalf("Accuracy(nil) = %g", acc)
	}
}

func TestPredictDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	net := NewNetwork("toy", []int{4}, 3, SoftmaxLoss{}, NewDense("fc", 4, 3, rng))
	x := tensor.New(4).RandNormal(rng, 0, 1)
	a := net.Predict(x)
	b := net.Predict(x)
	if a != b {
		t.Fatal("Predict must be deterministic")
	}
}
