package nn

import (
	"fmt"
	"time"

	"pipelayer/internal/tensor"
)

// Observer receives per-epoch training statistics from a Solver. The
// interface is deliberately flat (no package-local argument types) so
// implementations — e.g. telemetry.EpochRecorder — satisfy it structurally
// without importing this package, keeping both sides import-cycle-free.
type Observer interface {
	// ObserveEpoch is called after each completed TrainEpoch with the
	// 1-based epoch number, the epoch's mean loss, the training-set
	// accuracy after the epoch, and the training throughput in images per
	// second (0 when the epoch completed too fast to time).
	ObserveEpoch(epoch int, meanLoss, accuracy, imagesPerSec float64)
}

// Solver implements the stochastic-gradient-descent family the paper's GPU
// baseline (Caffe) trains with: plain SGD, classical momentum, and L2
// weight decay. PipeLayer's hardware update realizes the plain-SGD case
// (Section 4.4.2); the solver exists so software baselines can be trained
// with the full Caffe recipe.
type Solver struct {
	// LearningRate is the base step size.
	LearningRate float64
	// Momentum is the classical momentum coefficient μ (0 disables).
	Momentum float64
	// WeightDecay is the L2 regularization coefficient (0 disables).
	WeightDecay float64
	// Observer, when non-nil, is notified after every TrainEpoch. The
	// training-set accuracy it receives costs one extra forward pass over
	// the samples per epoch — only paid when an observer is attached.
	Observer Observer

	velocity map[*Param]*tensor.Tensor
	epochs   int
}

// NewSolver creates a solver with the given hyper-parameters.
func NewSolver(lr, momentum, weightDecay float64) *Solver {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: learning rate must be positive, got %g", lr))
	}
	if momentum < 0 || momentum >= 1 {
		panic(fmt.Sprintf("nn: momentum must be in [0,1), got %g", momentum))
	}
	if weightDecay < 0 {
		panic(fmt.Sprintf("nn: weight decay must be non-negative, got %g", weightDecay))
	}
	return &Solver{
		LearningRate: lr,
		Momentum:     momentum,
		WeightDecay:  weightDecay,
		velocity:     make(map[*Param]*tensor.Tensor),
	}
}

// Step applies one update using the gradients accumulated over a batch:
//
//	g       = ∂J/∂θ / batch + λ·θ
//	v       = μ·v − lr·g
//	θ       = θ + v
//
// With μ = λ = 0 this is exactly Network.ApplyUpdate.
func (s *Solver) Step(net *Network, batch int) {
	if batch <= 0 {
		panic("nn: Step batch must be positive")
	}
	inv := 1.0 / float64(batch)
	for _, p := range net.Params() {
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[p] = v
		}
		for i := range p.Value.Data() {
			g := p.Grad.Data()[i]*inv + s.WeightDecay*p.Value.Data()[i]
			v.Data()[i] = s.Momentum*v.Data()[i] - s.LearningRate*g
			p.Value.Data()[i] += v.Data()[i]
		}
	}
}

// TrainBatch runs one batch through the network and applies a solver step,
// returning the mean loss.
func (s *Solver) TrainBatch(net *Network, batch []Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	net.ZeroGrads()
	total := 0.0
	for _, sample := range batch {
		total += net.TrainStep(sample)
	}
	s.Step(net, len(batch))
	return total / float64(len(batch))
}

// TrainEpoch trains over all samples in batches, returning the mean loss.
// With an Observer attached, the epoch is timed and reported.
func (s *Solver) TrainEpoch(net *Network, samples []Sample, batch int) float64 {
	if batch <= 0 {
		panic("nn: TrainEpoch batch must be positive")
	}
	start := time.Now()
	total := 0.0
	count := 0
	for i := 0; i < len(samples); i += batch {
		j := i + batch
		if j > len(samples) {
			j = len(samples)
		}
		total += s.TrainBatch(net, samples[i:j]) * float64(j-i)
		count += j - i
	}
	if count == 0 {
		return 0
	}
	mean := total / float64(count)
	s.epochs++
	if s.Observer != nil {
		ips := 0.0
		if elapsed := time.Since(start).Seconds(); elapsed > 0 {
			ips = float64(count) / elapsed
		}
		s.Observer.ObserveEpoch(s.epochs, mean, net.Accuracy(samples), ips)
	}
	return mean
}

// Epochs returns the number of completed TrainEpoch calls.
func (s *Solver) Epochs() int { return s.epochs }

// Reset clears accumulated velocity and the epoch counter (e.g. between
// restarts).
func (s *Solver) Reset() {
	s.velocity = make(map[*Param]*tensor.Tensor)
	s.epochs = 0
}
