// Package nn is the from-scratch CNN training/inference framework the
// PipeLayer reproduction is built on. It implements the three layer kinds of
// the paper's Section 2.1 (convolution, pooling, inner product), the ReLU and
// sigmoid activation functions, the L2 and softmax loss functions of Section
// 2.2, and the exact forward/backward data flow of Figure 2:
//
//	forward:  u_l = W_l d_{l-1} + b_l ;  d_l = f(u_l)
//	backward: δ_{l-1} = (W_l)ᵀ δ_l ∘ f'(u_{l-1}) ;  ∂W_l = d_{l-1} δ_lᵀ ;  ∂b_l = δ_l
//
// Training uses the paper's batch semantics: all images in a batch are
// processed with the weights frozen at the start of the batch, per-image
// partial derivatives are accumulated, and the averaged update is applied
// once at the end of the batch — the property PipeLayer's inter-layer
// pipeline exploits (Section 3.3).
package nn

import (
	"fmt"

	"pipelayer/internal/tensor"
)

// Param is a learnable tensor together with its accumulated gradient.
// Gradients accumulate across the images of a batch and are averaged by the
// trainer when the update is applied, mirroring the paper's ∂W buffers.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// newParam allocates a parameter with a zeroed gradient of matching shape.
func newParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one stage of a network. Forward consumes the previous layer's
// output d_{l-1} and produces d_l; Backward consumes δ_l (the gradient of the
// loss with respect to this layer's output) and produces δ_{l-1}, adding any
// parameter gradients into Params().Grad.
//
// Layers are stateful between Forward and Backward (they retain the
// activations needed for the backward pass), exactly as PipeLayer retains
// intermediate d_l values in its memory subarrays.
type Layer interface {
	// Name identifies the layer for diagnostics and the architecture mapper.
	Name() string
	// Forward computes d_l from d_{l-1}.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward computes δ_{l-1} from δ_l and accumulates parameter grads.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the learnable parameters (possibly empty).
	Params() []*Param
	// OutShape reports the output shape for a given input shape, enabling
	// static shape checking when a network is assembled.
	OutShape(in []int) []int
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func mustShape(layer, what string, got, want []int) {
	if !shapeEq(got, want) {
		panic(fmt.Sprintf("nn: %s: %s shape %v, want %v", layer, what, got, want))
	}
}
