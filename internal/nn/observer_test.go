package nn

import (
	"testing"

	"pipelayer/internal/telemetry"
)

// The telemetry epoch recorder must satisfy the Observer contract purely
// structurally — neither package imports the other's types.
var _ Observer = (*telemetry.EpochRecorder)(nil)

// captureObserver records every notification for assertions.
type captureObserver struct {
	epochs []int
	losses []float64
	accs   []float64
	ips    []float64
}

func (c *captureObserver) ObserveEpoch(epoch int, meanLoss, accuracy, imagesPerSec float64) {
	c.epochs = append(c.epochs, epoch)
	c.losses = append(c.losses, meanLoss)
	c.accs = append(c.accs, accuracy)
	c.ips = append(c.ips, imagesPerSec)
}

func TestSolverObserverReceivesEpochStats(t *testing.T) {
	net := solverToyNet(12)
	s := NewSolver(0.3, 0.9, 0)
	obs := &captureObserver{}
	s.Observer = obs
	samples := xorSamples()
	for epoch := 0; epoch < 5; epoch++ {
		s.TrainEpoch(net, samples, 4)
	}
	if len(obs.epochs) != 5 {
		t.Fatalf("observer saw %d epochs, want 5", len(obs.epochs))
	}
	for i, e := range obs.epochs {
		if e != i+1 {
			t.Fatalf("epoch numbering wrong: %v", obs.epochs)
		}
	}
	for i, l := range obs.losses {
		if l <= 0 {
			t.Fatalf("epoch %d loss %g not positive", i+1, l)
		}
	}
	for i, a := range obs.accs {
		if a < 0 || a > 1 {
			t.Fatalf("epoch %d accuracy %g outside [0,1]", i+1, a)
		}
	}
	for i, v := range obs.ips {
		if v < 0 {
			t.Fatalf("epoch %d images/s %g negative", i+1, v)
		}
	}
	if s.Epochs() != 5 {
		t.Fatalf("Epochs() = %d", s.Epochs())
	}
	s.Reset()
	if s.Epochs() != 0 {
		t.Fatal("Reset must clear the epoch counter")
	}
}

func TestSolverObserverLossMatchesReturn(t *testing.T) {
	net := solverToyNet(13)
	s := NewSolver(0.1, 0, 0)
	obs := &captureObserver{}
	s.Observer = obs
	got := s.TrainEpoch(net, xorSamples(), 2)
	if len(obs.losses) != 1 || obs.losses[0] != got {
		t.Fatalf("observer loss %v != returned loss %v", obs.losses, got)
	}
}

func TestSolverNoObserverNoNotification(t *testing.T) {
	net := solverToyNet(14)
	s := NewSolver(0.1, 0, 0)
	// No observer: must not panic, and the epoch counter still advances.
	s.TrainEpoch(net, xorSamples(), 2)
	if s.Epochs() != 1 {
		t.Fatalf("Epochs() = %d", s.Epochs())
	}
}

func TestSolverObserverIntoRegistry(t *testing.T) {
	// End-to-end: solver → EpochRecorder → registry gauges.
	net := solverToyNet(15)
	reg := telemetry.NewRegistry()
	s := NewSolver(0.3, 0.9, 0)
	s.Observer = &telemetry.EpochRecorder{Registry: reg}
	s.TrainEpoch(net, xorSamples(), 4)
	s.TrainEpoch(net, xorSamples(), 4)
	snap := reg.Snapshot()
	if snap.Gauges["train_epochs"] != 2 {
		t.Fatalf("train_epochs = %v", snap.Gauges["train_epochs"])
	}
	if _, ok := snap.Gauges[`train_epoch_loss{epoch="1"}`]; !ok {
		t.Fatalf("per-epoch loss gauge missing: %v", snap.Gauges)
	}
	if _, ok := snap.Gauges[`train_epoch_accuracy{epoch="2"}`]; !ok {
		t.Fatalf("per-epoch accuracy gauge missing: %v", snap.Gauges)
	}
}
