package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipelayer/internal/tensor"
)

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU("relu")
	x := tensor.FromSlice([]float64{-2, 0, 3, -0.5}, 4)
	y := r.Forward(x)
	want := []float64{0, 0, 3, 0}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("relu forward[%d] = %g, want %g", i, y.Data()[i], v)
		}
	}
	g := tensor.FromSlice([]float64{1, 1, 1, 1}, 4)
	dx := r.Backward(g)
	wantdx := []float64{0, 0, 1, 0}
	for i, v := range wantdx {
		if dx.Data()[i] != v {
			t.Fatalf("relu backward[%d] = %g, want %g", i, dx.Data()[i], v)
		}
	}
}

func TestReLUBackwardBeforeForwardSizeMismatch(t *testing.T) {
	r := NewReLU("relu")
	r.Forward(tensor.New(4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	r.Backward(tensor.New(5))
}

func TestSigmoidRange(t *testing.T) {
	s := NewSigmoid("sig")
	x := tensor.FromSlice([]float64{-100, 0, 100}, 3)
	y := s.Forward(x)
	if y.At(0) > 1e-10 || math.Abs(y.At(1)-0.5) > 1e-12 || y.At(2) < 1-1e-10 {
		t.Fatalf("sigmoid values: %v", y.Data())
	}
}

func TestMaxPoolForwardKnown(t *testing.T) {
	p := NewMaxPool("pool", 1, 4, 4, 2)
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 4, 4)
	y := p.Forward(x)
	want := []float64{4, 8, 12, 16}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("maxpool[%d] = %g, want %g", i, y.Data()[i], v)
		}
	}
}

func TestMaxPoolBackwardRouting(t *testing.T) {
	// The error must be copied to the argmax position only — paper Fig 10(b).
	p := NewMaxPool("pool", 1, 2, 2, 2)
	x := tensor.FromSlice([]float64{1, 9, 2, 3}, 1, 2, 2)
	p.Forward(x)
	dx := p.Backward(tensor.FromSlice([]float64{5}, 1, 1, 1))
	want := []float64{0, 5, 0, 0}
	for i, v := range want {
		if dx.Data()[i] != v {
			t.Fatalf("maxpool backward[%d] = %g, want %g", i, dx.Data()[i], v)
		}
	}
}

func TestAvgPoolForwardKnown(t *testing.T) {
	p := NewAvgPool("pool", 1, 2, 2, 2)
	x := tensor.FromSlice([]float64{1, 2, 3, 6}, 1, 2, 2)
	y := p.Forward(x)
	if y.At(0, 0, 0) != 3 {
		t.Fatalf("avgpool = %g, want 3", y.At(0, 0, 0))
	}
}

func TestAvgPoolBackwardUniform(t *testing.T) {
	p := NewAvgPool("pool", 1, 2, 2, 2)
	p.Forward(tensor.New(1, 2, 2))
	dx := p.Backward(tensor.FromSlice([]float64{8}, 1, 1, 1))
	for i := 0; i < 4; i++ {
		if dx.Data()[i] != 2 {
			t.Fatalf("avgpool backward[%d] = %g, want 2", i, dx.Data()[i])
		}
	}
}

func TestPoolIndivisiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMaxPool("bad", 1, 5, 5, 2)
}

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("fc", 2, 2, rng)
	copy(d.weights.Value.Data(), []float64{1, 2, 3, 4})
	copy(d.bias.Value.Data(), []float64{0.5, -0.5})
	y := d.Forward(tensor.FromSlice([]float64{1, 1}, 2))
	if y.At(0) != 3.5 || y.At(1) != 6.5 {
		t.Fatalf("dense forward = %v", y.Data())
	}
}

func TestDenseFlattensConvInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense("fc", 12, 3, rng)
	y := d.Forward(tensor.New(3, 2, 2))
	if y.Size() != 3 {
		t.Fatalf("dense output size = %d", y.Size())
	}
	// Backward must restore the original input shape for upstream layers.
	dx := d.Backward(tensor.New(3))
	sh := dx.Shape()
	if len(sh) != 3 || sh[0] != 3 || sh[1] != 2 || sh[2] != 2 {
		t.Fatalf("dense backward shape = %v", sh)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		y := tensor.New(n).RandNormal(rng, 0, 5)
		p := Softmax(y)
		s := p.Sum()
		if math.Abs(s-1) > 1e-9 {
			return false
		}
		for _, v := range p.Data() {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	y := tensor.FromSlice([]float64{1, 2, 3}, 3)
	y2 := y.Map(func(v float64) float64 { return v + 1000 })
	if !tensor.Equal(Softmax(y), Softmax(y2), 1e-9) {
		t.Fatal("softmax must be shift-invariant")
	}
}

func TestL2LossKnown(t *testing.T) {
	y := tensor.FromSlice([]float64{1, 2}, 2)
	tt := tensor.FromSlice([]float64{0, 0}, 2)
	if got := (L2Loss{}).Loss(y, tt); got != 2.5 {
		t.Fatalf("L2 loss = %g, want 2.5", got)
	}
	g := (L2Loss{}).Grad(y, tt)
	if g.At(0) != 1 || g.At(1) != 2 {
		t.Fatalf("L2 grad = %v", g.Data())
	}
}

func TestSoftmaxLossGradMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	y := tensor.New(5).RandNormal(rng, 0, 1)
	tt := OneHot(3, 5)
	g := (SoftmaxLoss{}).Grad(y, tt)
	const h = 1e-6
	for i := 0; i < 5; i++ {
		y.Data()[i] += h
		lp := (SoftmaxLoss{}).Loss(y, tt)
		y.Data()[i] -= 2 * h
		lm := (SoftmaxLoss{}).Loss(y, tt)
		y.Data()[i] += h
		num := (lp - lm) / (2 * h)
		if math.Abs(num-g.At(i)) > 1e-5 {
			t.Fatalf("softmax grad[%d]: analytic %g vs numerical %g", i, g.At(i), num)
		}
	}
}

func TestOneHot(t *testing.T) {
	v := OneHot(2, 4)
	if v.At(2) != 1 || v.Sum() != 1 {
		t.Fatalf("OneHot = %v", v.Data())
	}
}

func TestOneHotOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneHot(4, 4)
}

func TestConvOutShapeChecksInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewConv("c", 3, 8, 8, 4, 3, 1, 1, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input shape")
		}
	}()
	c.OutShape([]int{3, 9, 9})
}
