package nn

import (
	"fmt"
	"math"

	"pipelayer/internal/tensor"
)

// ReLU is the rectified linear activation max(0, x). Its backward pass ANDs
// the incoming error with f'(u) ∈ {0, 1}; because f'(u_l) = f'(d_l) for ReLU
// (the paper's Section 4.3 observation), only the sign mask of the forward
// output needs to be stored — PipeLayer exploits this to avoid buffering u_l.
type ReLU struct {
	name string
	mask []bool
	n    int
}

// NewReLU creates a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	r.n = x.Size()
	if cap(r.mask) < r.n {
		r.mask = make([]bool, r.n)
	}
	r.mask = r.mask[:r.n]
	out := tensor.New(x.Shape()...)
	for i, v := range x.Data() {
		if v > 0 {
			out.Data()[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if grad.Size() != r.n {
		panic(fmt.Sprintf("nn: %s: grad size %d, want %d", r.name, grad.Size(), r.n))
	}
	dx := tensor.New(grad.Shape()...)
	for i, v := range grad.Data() {
		if r.mask[i] {
			dx.Data()[i] = v
		}
	}
	return dx
}

// Sigmoid is the logistic activation 1/(1+e^{-x}). PipeLayer realizes it with
// a configurable LUT in the activation component (Section 4.2.3); here it is
// exact, with an optional LUT-quantized variant in internal/reram.
type Sigmoid struct {
	name string
	out  *tensor.Tensor
}

// NewSigmoid creates a sigmoid activation layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return s.name }

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// OutShape implements Layer.
func (s *Sigmoid) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor) *tensor.Tensor {
	s.out = x.Map(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	return s.out.Clone()
}

// Backward implements Layer: f'(u) = f(u)(1-f(u)).
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if s.out == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", s.name))
	}
	dx := tensor.New(grad.Shape()...)
	for i, g := range grad.Data() {
		y := s.out.Data()[i]
		dx.Data()[i] = g * y * (1 - y)
	}
	return dx
}
