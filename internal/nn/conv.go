package nn

import (
	"fmt"
	"math/rand"

	"pipelayer/internal/tensor"
)

// Conv is a convolution layer implementing Equation (1) of the paper:
//
//	d_{l}[x,y,c] = Σ_{c'} Σ_{kx} Σ_{ky} K[kx,ky,c',c] · d_{l-1}[x+kx, y+ky, c']
//
// with optional stride and zero padding. The forward pass is computed with
// im2col + matmul — the same data layout PipeLayer maps onto ReRAM crossbars
// (each im2col column is one spike-coded input vector, each kernel one
// bit-line of the array; Section 3.2.1).
type Conv struct {
	name            string
	inC, inH, inW   int
	outC            int
	kernel          int
	stride, pad     int
	weights         *Param // (OutC, InC, K, K)
	bias            *Param // (OutC)
	lastCols        *tensor.Tensor
	lastInputShape  []int
	lastOutputShape []int
}

// NewConv creates a convolution layer for (inC,inH,inW) inputs with outC
// output channels, square kernel size k, the given stride and padding, and
// Xavier-initialized weights drawn from rng.
func NewConv(name string, inC, inH, inW, outC, k, stride, pad int, rng *rand.Rand) *Conv {
	if inC <= 0 || outC <= 0 || k <= 0 {
		panic(fmt.Sprintf("nn: NewConv(%s): invalid dims inC=%d outC=%d k=%d", name, inC, outC, k))
	}
	oh := tensor.ConvOutDim(inH, k, stride, pad)
	ow := tensor.ConvOutDim(inW, k, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: NewConv(%s): empty output for input %dx%d kernel %d stride %d pad %d", name, inH, inW, k, stride, pad))
	}
	w := tensor.New(outC, inC, k, k)
	fanIn := inC * k * k
	fanOut := outC * k * k
	w.XavierInit(rng, fanIn, fanOut)
	return &Conv{
		name: name, inC: inC, inH: inH, inW: inW, outC: outC,
		kernel: k, stride: stride, pad: pad,
		weights: newParam(name+".W", w),
		bias:    newParam(name+".b", tensor.New(outC)),
	}
}

// Name implements Layer.
func (c *Conv) Name() string { return c.name }

// Params implements Layer.
func (c *Conv) Params() []*Param { return []*Param{c.weights, c.bias} }

// Kernel returns the kernel size.
func (c *Conv) Kernel() int { return c.kernel }

// Geometry returns (inC, inH, inW, outC, kernel, stride, pad) for mappers
// that rebuild the layer on ReRAM arrays.
func (c *Conv) Geometry() (inC, inH, inW, outC, k, stride, pad int) {
	return c.inC, c.inH, c.inW, c.outC, c.kernel, c.stride, c.pad
}

// Weights returns the kernel parameter (OutC, InC, K, K).
func (c *Conv) Weights() *Param { return c.weights }

// Bias returns the bias parameter (OutC).
func (c *Conv) Bias() *Param { return c.bias }

// OutShape implements Layer.
func (c *Conv) OutShape(in []int) []int {
	mustShape(c.name, "input", in, []int{c.inC, c.inH, c.inW})
	oh := tensor.ConvOutDim(c.inH, c.kernel, c.stride, c.pad)
	ow := tensor.ConvOutDim(c.inW, c.kernel, c.stride, c.pad)
	return []int{c.outC, oh, ow}
}

// Forward implements Layer.
func (c *Conv) Forward(x *tensor.Tensor) *tensor.Tensor {
	mustShape(c.name, "input", x.Shape(), []int{c.inC, c.inH, c.inW})
	cols := tensor.Im2Col(x, c.kernel, c.kernel, c.stride, c.pad)
	c.lastCols = cols
	c.lastInputShape = x.Shape()
	oh := tensor.ConvOutDim(c.inH, c.kernel, c.stride, c.pad)
	ow := tensor.ConvOutDim(c.inW, c.kernel, c.stride, c.pad)
	wmat := c.weights.Value.Reshape(c.outC, c.inC*c.kernel*c.kernel)
	out := tensor.MatMul(wmat, cols).Reshape(c.outC, oh, ow)
	plane := oh * ow
	for o := 0; o < c.outC; o++ {
		b := c.bias.Value.At(o)
		seg := out.Data()[o*plane : (o+1)*plane]
		for i := range seg {
			seg[i] += b
		}
	}
	c.lastOutputShape = out.Shape()
	return out
}

// Backward implements Layer. Given δ_l of shape (OutC,OH,OW) it accumulates
// ∂W (computed as the convolution of stored inputs with the errors — the
// paper's Figure 12 datapath) and ∂b (the error sum per channel), and returns
// δ_{l-1}, which the paper computes as conv2(δ_l, rot180(K), 'full')
// (Figure 11); here both are realized through the im2col adjoint.
func (c *Conv) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastCols == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", c.name))
	}
	mustShape(c.name, "grad", grad.Shape(), c.lastOutputShape)
	oh, ow := c.lastOutputShape[1], c.lastOutputShape[2]
	n := oh * ow
	gmat := grad.Reshape(c.outC, n)

	// ∂b[o] = Σ_{x,y} δ[o,x,y]
	for o := 0; o < c.outC; o++ {
		s := 0.0
		row := gmat.Data()[o*n : (o+1)*n]
		for _, v := range row {
			s += v
		}
		c.bias.Grad.Data()[o] += s
	}

	// ∂W = δ_mat · colsᵀ  (OC, C·K·K)
	dW := tensor.MatMulTransB(gmat, c.lastCols)
	c.weights.Grad.AddInPlace(dW.Reshape(c.weights.Grad.Shape()...))

	// δ_{l-1} = col2im(Wᵀ · δ_mat)
	wmat := c.weights.Value.Reshape(c.outC, c.inC*c.kernel*c.kernel)
	dcols := tensor.MatMulTransA(wmat, gmat)
	return tensor.Col2Im(dcols, c.inC, c.inH, c.inW, c.kernel, c.kernel, c.stride, c.pad)
}
