package nn

import (
	"math"
	"math/rand"
	"testing"

	"pipelayer/internal/tensor"
)

func solverToyNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork("toy", []int{2}, 2, SoftmaxLoss{},
		NewDense("fc1", 2, 8, rng),
		NewReLU("r"),
		NewDense("fc2", 8, 2, rng),
	)
}

func TestSolverPlainSGDMatchesApplyUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Sample{Input: tensor.New(2).RandNormal(rng, 0, 1), Label: 1}

	a := solverToyNet(9)
	a.ZeroGrads()
	a.TrainStep(s)
	a.ApplyUpdate(0.1, 1)

	b := solverToyNet(9)
	solver := NewSolver(0.1, 0, 0)
	solver.TrainBatch(b, []Sample{s})

	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if !tensor.Equal(pa[i].Value, pb[i].Value, 1e-15) {
			t.Fatalf("param %s differs between ApplyUpdate and zero-momentum solver", pa[i].Name)
		}
	}
}

func TestSolverMomentumAccelerates(t *testing.T) {
	// On a fixed quadratic-ish objective, momentum should reduce the loss
	// faster than plain SGD over the same number of steps.
	rng := rand.New(rand.NewSource(2))
	samples := make([]Sample, 8)
	for i := range samples {
		samples[i] = Sample{Input: tensor.New(2).RandNormal(rng, 0, 1), Label: i % 2}
	}
	plain := solverToyNet(4)
	mom := solverToyNet(4)
	sp := NewSolver(0.02, 0, 0)
	sm := NewSolver(0.02, 0.9, 0)
	var lp, lm float64
	for i := 0; i < 60; i++ {
		lp = sp.TrainEpoch(plain, samples, 8)
		lm = sm.TrainEpoch(mom, samples, 8)
	}
	if lm >= lp {
		t.Fatalf("momentum loss %g not below plain SGD loss %g", lm, lp)
	}
}

func TestSolverWeightDecayShrinksWeights(t *testing.T) {
	// With zero gradients, weight decay alone must shrink the weights.
	net := solverToyNet(5)
	s := NewSolver(0.1, 0, 0.5)
	before := net.Params()[0].Value.Norm2()
	net.ZeroGrads()
	s.Step(net, 1)
	after := net.Params()[0].Value.Norm2()
	if after >= before {
		t.Fatalf("weight decay did not shrink weights: %g -> %g", before, after)
	}
}

func TestSolverVelocityPersistence(t *testing.T) {
	net := solverToyNet(6)
	s := NewSolver(0.1, 0.9, 0)
	p := net.Params()[0]
	p.Grad.Fill(1)
	s.Step(net, 1)
	first := p.Value.Clone()
	p.Grad.Fill(0) // no new gradient: velocity alone should keep moving θ
	s.Step(net, 1)
	moved := tensor.Sub(p.Value, first).Norm2()
	if moved == 0 {
		t.Fatal("velocity must persist across steps")
	}
	s.Reset()
	p.Grad.Fill(0)
	before := p.Value.Clone()
	s.Step(net, 1)
	if !tensor.Equal(p.Value, before, 0) {
		t.Fatal("after Reset with zero grads, weights must not move")
	}
}

func TestSolverValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSolver(0, 0, 0) },
		func() { NewSolver(0.1, 1.0, 0) },
		func() { NewSolver(0.1, -0.1, 0) },
		func() { NewSolver(0.1, 0, -1) },
		func() { NewSolver(0.1, 0, 0).Step(solverToyNet(1), 0) },
		func() { NewSolver(0.1, 0, 0).TrainEpoch(solverToyNet(1), nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSolverTrainEpochLearnsXOR(t *testing.T) {
	net := solverToyNet(7)
	s := NewSolver(0.3, 0.9, 0)
	samples := xorSamples()
	for epoch := 0; epoch < 800; epoch++ {
		s.TrainEpoch(net, samples, 4)
	}
	if acc := net.Accuracy(samples); acc != 1.0 {
		t.Fatalf("XOR accuracy with momentum solver = %g", acc)
	}
}

func TestSolverEmptyBatchNoop(t *testing.T) {
	net := solverToyNet(8)
	s := NewSolver(0.1, 0.5, 0)
	if loss := s.TrainBatch(net, nil); loss != 0 {
		t.Fatalf("empty batch loss = %g", loss)
	}
	if l := s.TrainEpoch(net, nil, 4); !(l == 0 || math.IsNaN(l) == false && l == 0) {
		t.Fatalf("empty epoch loss = %g", l)
	}
}
