package nn

import (
	"fmt"

	"pipelayer/internal/tensor"
)

// Sample is one labeled training/testing example.
type Sample struct {
	Input *tensor.Tensor
	Label int
}

// Network is an ordered stack of layers with a loss function.
// It executes the exact forward/backward flow of the paper's Figure 2 and
// the batch-update discipline of Section 3.3: within a batch the weights are
// frozen, gradients accumulate per image, and ApplyUpdate applies the
// averaged gradient once.
type Network struct {
	Name    string
	Layers  []Layer
	LossFn  Loss
	Classes int
}

// NewNetwork assembles a network and statically checks that the layer shapes
// chain correctly from inShape to a vector of `classes` scores.
func NewNetwork(name string, inShape []int, classes int, loss Loss, layers ...Layer) *Network {
	shape := append([]int(nil), inShape...)
	for _, l := range layers {
		shape = l.OutShape(shape)
	}
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != classes {
		panic(fmt.Sprintf("nn: network %s: final shape %v (%d elems) does not match %d classes", name, shape, n, classes))
	}
	return &Network{Name: name, Layers: layers, LossFn: loss, Classes: classes}
}

// Forward runs the testing-phase data flow and returns the raw output scores.
func (n *Network) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates δ_L backward through every layer, accumulating
// parameter gradients. It must follow a Forward with the same input.
func (n *Network) Backward(lossGrad *tensor.Tensor) {
	g := lossGrad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
}

// Params returns every learnable parameter in the network.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears all accumulated gradients (start of a batch).
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// ApplyUpdate performs the end-of-batch weight update
// W ← W − lr · (accumulated ∂W)/batch, the paper's Section 4.4.2 step where
// the averaged partial derivatives (averaging realized by 1/B input spikes)
// are subtracted from the old weights.
func (n *Network) ApplyUpdate(lr float64, batch int) {
	if batch <= 0 {
		panic("nn: ApplyUpdate: batch must be positive")
	}
	scale := -lr / float64(batch)
	for _, p := range n.Params() {
		p.Value.AxpyInPlace(scale, p.Grad)
	}
}

// TrainStep processes one image: forward, loss, backward. Gradients
// accumulate; the caller applies the update at the batch boundary.
// It returns the loss value for the sample.
func (n *Network) TrainStep(s Sample) float64 {
	y := n.Forward(s.Input)
	t := OneHot(s.Label, n.Classes)
	loss := n.LossFn.Loss(y, t)
	n.Backward(n.LossFn.Grad(y, t))
	return loss
}

// TrainBatch runs one full batch (zero grads, accumulate over every sample,
// apply the averaged update) and returns the mean loss.
func (n *Network) TrainBatch(batch []Sample, lr float64) float64 {
	if len(batch) == 0 {
		return 0
	}
	n.ZeroGrads()
	total := 0.0
	for _, s := range batch {
		total += n.TrainStep(s)
	}
	n.ApplyUpdate(lr, len(batch))
	return total / float64(len(batch))
}

// TrainEpoch trains over all samples in order, in batches of size batch, and
// returns the mean loss across the epoch. A trailing partial batch is
// processed with its own (smaller) averaging divisor.
func (n *Network) TrainEpoch(samples []Sample, batch int, lr float64) float64 {
	if batch <= 0 {
		panic("nn: TrainEpoch: batch must be positive")
	}
	total := 0.0
	count := 0
	for i := 0; i < len(samples); i += batch {
		j := i + batch
		if j > len(samples) {
			j = len(samples)
		}
		total += n.TrainBatch(samples[i:j], lr) * float64(j-i)
		count += j - i
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// Predict returns the argmax class for one input.
func (n *Network) Predict(x *tensor.Tensor) int {
	y := n.Forward(x)
	_, idx := y.Max()
	return idx
}

// Accuracy evaluates top-1 accuracy over a sample set.
func (n *Network) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if n.Predict(s.Input) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// SnapshotWeights returns deep copies of every parameter value, for
// save/restore around quantization experiments.
func (n *Network) SnapshotWeights() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, p := range n.Params() {
		out = append(out, p.Value.Clone())
	}
	return out
}

// RestoreWeights restores a snapshot taken with SnapshotWeights.
func (n *Network) RestoreWeights(snap []*tensor.Tensor) {
	ps := n.Params()
	if len(snap) != len(ps) {
		panic(fmt.Sprintf("nn: RestoreWeights: %d tensors for %d params", len(snap), len(ps)))
	}
	for i, p := range ps {
		copy(p.Value.Data(), snap[i].Data())
	}
}
