package nn

import (
	"fmt"
	"math/rand"

	"pipelayer/internal/tensor"
)

// Dense is an inner-product (fully connected) layer implementing Equation (3)
// of the paper: d_{l} = W·d_{l-1} + b, where W is (n×m). The input tensor is
// flattened, so a Dense layer can directly follow a convolution or pooling
// layer (size m = X·Y·C) or another inner-product layer.
type Dense struct {
	name    string
	in, out int
	weights *Param // (out, in)
	bias    *Param // (out)
	lastIn  *tensor.Tensor
	inShape []int
}

// NewDense creates a fully connected layer with Xavier-initialized weights.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: NewDense(%s): invalid dims in=%d out=%d", name, in, out))
	}
	w := tensor.New(out, in).XavierInit(rng, in, out)
	return &Dense{
		name: name, in: in, out: out,
		weights: newParam(name+".W", w),
		bias:    newParam(name+".b", tensor.New(out)),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.weights, d.bias} }

// In returns the input width m; Out returns the output width n.
func (d *Dense) In() int { return d.in }

// Out returns the number of output neurons.
func (d *Dense) Out() int { return d.out }

// Weights returns the weight parameter (out, in).
func (d *Dense) Weights() *Param { return d.weights }

// Bias returns the bias parameter (out).
func (d *Dense) Bias() *Param { return d.bias }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int {
	n := 1
	for _, v := range in {
		n *= v
	}
	if n != d.in {
		panic(fmt.Sprintf("nn: %s: input shape %v has %d elems, want %d", d.name, in, n, d.in))
	}
	return []int{d.out}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Size() != d.in {
		panic(fmt.Sprintf("nn: %s: input has %d elems, want %d", d.name, x.Size(), d.in))
	}
	d.inShape = x.Shape()
	flat := x.Reshape(d.in)
	d.lastIn = flat.Clone()
	y := tensor.MatVec(d.weights.Value, flat)
	y.AddInPlace(d.bias.Value)
	return y
}

// Backward implements Layer. It accumulates ∂W = δ·d_{l-1}ᵀ (outer product,
// as in the paper's Figure 2) and ∂b = δ, and returns δ_{l-1} = Wᵀ·δ shaped
// like the original input.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.lastIn == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", d.name))
	}
	if grad.Size() != d.out {
		panic(fmt.Sprintf("nn: %s: grad has %d elems, want %d", d.name, grad.Size(), d.out))
	}
	g := grad.Reshape(d.out)

	d.bias.Grad.AddInPlace(g)
	d.weights.Grad.AddInPlace(tensor.Outer(g, d.lastIn))

	// δ_{l-1} = Wᵀ δ
	dx := tensor.New(d.in)
	w := d.weights.Value.Data()
	for i := 0; i < d.out; i++ {
		gv := g.At(i)
		if gv == 0 {
			continue
		}
		row := w[i*d.in : (i+1)*d.in]
		for j, wv := range row {
			dx.Data()[j] += wv * gv
		}
	}
	return dx.Reshape(d.inShape...)
}
