package nn

import (
	"math"
	"math/rand"
	"testing"

	"pipelayer/internal/tensor"
)

// numericalGrad estimates ∂loss/∂θ for one parameter element by central
// difference, re-running the full forward pass.
func numericalGrad(n *Network, s Sample, p *Param, idx int) float64 {
	const h = 1e-5
	orig := p.Value.Data()[idx]
	t := OneHot(s.Label, n.Classes)

	p.Value.Data()[idx] = orig + h
	lp := n.LossFn.Loss(n.Forward(s.Input), t)
	p.Value.Data()[idx] = orig - h
	lm := n.LossFn.Loss(n.Forward(s.Input), t)
	p.Value.Data()[idx] = orig
	return (lp - lm) / (2 * h)
}

// checkGradients verifies analytic vs numerical gradients on a handful of
// randomly chosen parameter elements.
func checkGradients(t *testing.T, n *Network, s Sample, rng *rand.Rand, probes int, tol float64) {
	t.Helper()
	n.ZeroGrads()
	n.TrainStep(s)
	for _, p := range n.Params() {
		for k := 0; k < probes; k++ {
			idx := rng.Intn(p.Value.Size())
			got := p.Grad.Data()[idx]
			want := numericalGrad(n, s, p, idx)
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %g vs numerical %g", p.Name, idx, got, want)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := NewNetwork("mlp", []int{6}, 3, SoftmaxLoss{},
		NewDense("fc1", 6, 8, rng),
		NewReLU("relu1"),
		NewDense("fc2", 8, 3, rng),
	)
	x := tensor.New(6).RandNormal(rng, 0, 1)
	checkGradients(t, net, Sample{Input: x, Label: 1}, rng, 10, 1e-4)
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	net := NewNetwork("cnn", []int{2, 6, 6}, 4, SoftmaxLoss{},
		NewConv("conv1", 2, 6, 6, 3, 3, 1, 0, rng), // -> (3,4,4)
		NewReLU("relu1"),
		NewDense("fc", 3*4*4, 4, rng),
	)
	x := tensor.New(2, 6, 6).RandNormal(rng, 0, 1)
	checkGradients(t, net, Sample{Input: x, Label: 2}, rng, 8, 1e-4)
}

func TestConvWithPadStrideGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	net := NewNetwork("cnn-ps", []int{1, 8, 8}, 2, SoftmaxLoss{},
		NewConv("conv1", 1, 8, 8, 2, 3, 2, 1, rng), // -> (2,4,4)
		NewReLU("relu1"),
		NewDense("fc", 2*4*4, 2, rng),
	)
	x := tensor.New(1, 8, 8).RandNormal(rng, 0, 1)
	checkGradients(t, net, Sample{Input: x, Label: 0}, rng, 8, 1e-4)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	net := NewNetwork("cnn-mp", []int{1, 8, 8}, 3, SoftmaxLoss{},
		NewConv("conv1", 1, 8, 8, 2, 3, 1, 1, rng), // -> (2,8,8)
		NewReLU("relu1"),
		NewMaxPool("pool1", 2, 8, 8, 2), // -> (2,4,4)
		NewDense("fc", 2*4*4, 3, rng),
	)
	x := tensor.New(1, 8, 8).RandNormal(rng, 0, 1)
	checkGradients(t, net, Sample{Input: x, Label: 1}, rng, 6, 1e-3)
}

func TestAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	net := NewNetwork("cnn-ap", []int{1, 4, 4}, 2, L2Loss{},
		NewAvgPool("pool", 1, 4, 4, 2), // -> (1,2,2)
		NewDense("fc", 4, 2, rng),
	)
	x := tensor.New(1, 4, 4).RandNormal(rng, 0, 1)
	checkGradients(t, net, Sample{Input: x, Label: 0}, rng, 8, 1e-4)
}

func TestSigmoidGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	net := NewNetwork("mlp-sig", []int{5}, 2, L2Loss{},
		NewDense("fc1", 5, 6, rng),
		NewSigmoid("sig1"),
		NewDense("fc2", 6, 2, rng),
	)
	x := tensor.New(5).RandNormal(rng, 0, 1)
	checkGradients(t, net, Sample{Input: x, Label: 1}, rng, 10, 1e-4)
}

func TestDeepStackGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	net := NewNetwork("deep", []int{1, 8, 8}, 3, SoftmaxLoss{},
		NewConv("c1", 1, 8, 8, 4, 3, 1, 1, rng),
		NewReLU("r1"),
		NewMaxPool("p1", 4, 8, 8, 2),
		NewConv("c2", 4, 4, 4, 6, 3, 1, 1, rng),
		NewReLU("r2"),
		NewMaxPool("p2", 6, 4, 4, 2),
		NewDense("fc1", 6*2*2, 10, rng),
		NewReLU("r3"),
		NewDense("fc2", 10, 3, rng),
	)
	x := tensor.New(1, 8, 8).RandNormal(rng, 0, 1)
	checkGradients(t, net, Sample{Input: x, Label: 2}, rng, 4, 1e-3)
}
