package arch

import (
	"math/rand"
	"testing"

	"pipelayer/internal/dataset"
	"pipelayer/internal/networks"
	"pipelayer/internal/tensor"
)

func TestCloneSharedPredictsIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := networks.BuildTrainable(networks.Mnist0(), rng)
	m := BuildMachine(net, 16)
	c := m.CloneShared()
	for i := 0; i < 10; i++ {
		x := tensor.New(1, 28, 28).RandUniform(rng, 0, 1)
		if m.Predict(x) != c.Predict(x) {
			t.Fatal("clone predicts differently")
		}
	}
}

func TestAccuracyParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := networks.BuildTrainable(networks.MnistA(), rng)
	m := BuildMachine(net, 16)
	samples := dataset.Generate(120, dataset.DefaultOptions(true), 4)
	seq := m.Accuracy(samples)
	for _, workers := range []int{0, 1, 2, 4, 7} {
		if par := m.AccuracyParallel(samples, workers); par != seq {
			t.Fatalf("workers=%d: parallel accuracy %g != sequential %g", workers, par, seq)
		}
	}
}

func TestAccuracyParallelEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := networks.BuildTrainable(networks.MnistA(), rng)
	m := BuildMachine(net, 16)
	if m.AccuracyParallel(nil, 4) != 0 {
		t.Fatal("empty set must score 0")
	}
}

func TestAccuracyParallelMoreWorkersThanSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := networks.BuildTrainable(networks.MnistA(), rng)
	m := BuildMachine(net, 16)
	samples := dataset.Generate(3, dataset.DefaultOptions(true), 5)
	if got, want := m.AccuracyParallel(samples, 16), m.Accuracy(samples); got != want {
		t.Fatalf("tiny set: %g vs %g", got, want)
	}
}

func TestCloneSharedDoesNotShareBank(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := networks.BuildTrainable(networks.MnistA(), rng)
	m := BuildMachine(net, 16)
	c := m.CloneShared()
	m.Forward(tensor.New(784).RandUniform(rng, 0, 1))
	if c.Bank.Len() != 0 {
		t.Fatal("clone's memory bank must be independent")
	}
}
