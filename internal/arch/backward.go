package arch

import (
	"pipelayer/internal/parallel"
	"pipelayer/internal/tensor"
)

// Error-backward datapaths of the paper's Section 4.3 (Figure 10/11).

// ReluBackward is the activation error backward of Figure 10(a): with ReLU,
// f'(u) ∈ {0,1} and f'(u_l) = f'(d_l), so the error is ANDed with the sign
// of the stored forward output — no u_l needs to be buffered.
func ReluBackward(delta, d *tensor.Tensor) *tensor.Tensor {
	if delta.Size() != d.Size() {
		panic("arch: ReluBackward operands differ in size")
	}
	out := tensor.New(delta.Shape()...)
	parallel.Default().For(delta.Size(), parallel.Grain(1), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if d.Data()[i] > 0 {
				out.Data()[i] = delta.Data()[i]
			}
		}
	})
	return out
}

// MaxPoolBackward is the pooling error backward of Figure 10(b): each error
// element is copied to the position of the window maximum of the stored
// d_{l-1} (found with the index logic of the activation component) and the
// other positions get zero.
func MaxPoolBackward(delta, dPrev *tensor.Tensor, k int) *tensor.Tensor {
	c, oh, ow := delta.Dim(0), delta.Dim(1), delta.Dim(2)
	ih, iw := dPrev.Dim(1), dPrev.Dim(2)
	if dPrev.Dim(0) != c || ih != oh*k || iw != ow*k {
		panic("arch: MaxPoolBackward shapes inconsistent")
	}
	out := tensor.New(c, ih, iw)
	// Channels scatter into disjoint planes of out, so they chunk safely.
	parallel.Default().For(c, parallel.Grain(oh*ow*k*k), func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestY, bestX := oy*k, ox*k
					best := dPrev.At(ci, bestY, bestX)
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							if v := dPrev.At(ci, oy*k+ky, ox*k+kx); v > best {
								best, bestY, bestX = v, oy*k+ky, ox*k+kx
							}
						}
					}
					out.Set(delta.At(ci, oy, ox), ci, bestY, bestX)
				}
			}
		}
	})
	return out
}

// BackwardKernels builds the reordered kernel bank (W^l)* of Figure 11: the
// error backward through a convolution is itself a convolution,
// δ_{l-1} = conv2(δ_l, rot180(K), 'full'), whose kernels swap the in/out
// channel roles of K and rotate each plane by 180°. The result can be mapped
// to ReRAM arrays with the ordinary forward mapping scheme.
func BackwardKernels(k *tensor.Tensor) *tensor.Tensor {
	oc, ic, kh, kw := k.Dim(0), k.Dim(1), k.Dim(2), k.Dim(3)
	r := tensor.Rot180(k)
	out := tensor.New(ic, oc, kh, kw)
	for o := 0; o < oc; o++ {
		for i := 0; i < ic; i++ {
			for y := 0; y < kh; y++ {
				for x := 0; x < kw; x++ {
					out.Set(r.At(o, i, y, x), i, o, y, x)
				}
			}
		}
	}
	return out
}

// ConvErrorBackward computes δ_{l-1} from δ_l exactly as PipeLayer does:
// zero-pad the error by K−1 on each edge (Figure 11) and convolve with the
// reordered kernels using the standard forward datapath. Valid for unit
// stride (the zoo's convolution layers).
func ConvErrorBackward(delta, kernels *tensor.Tensor, pad int) *tensor.Tensor {
	k := kernels.Dim(2)
	back := BackwardKernels(kernels)
	// 'full' correlation with rot180 kernels: pad by K−1; the layer's own
	// forward padding shrinks the result back via cropping.
	full := tensor.Conv2D(delta, back, nil, 1, k-1)
	if pad > 0 {
		full = tensor.Crop2D(full, pad)
	}
	return full
}

// ConvDerivative computes the partial derivative ∂W of one convolution layer
// as the paper's Figure 12 describes: the stored input d_{l-1} acts as the
// convolution data and the error δ_l as the kernel — each (inC, outC) plane
// of ∂W is the valid correlation of the input channel with the error
// channel. Valid for unit stride.
func ConvDerivative(dPrev, delta *tensor.Tensor, k, pad int) *tensor.Tensor {
	inC := dPrev.Dim(0)
	outC := delta.Dim(0)
	oh, ow := delta.Dim(1), delta.Dim(2)
	x := tensor.Pad2D(dPrev, pad)
	dW := tensor.New(outC, inC, k, k)
	// Each output-channel plane of ∂W is independent (its own error channel
	// correlated against every input channel), so outC is the parallel unit;
	// every (o,c,ky,kx) reduction keeps its serial y/x accumulation order.
	parallel.Default().For(outC, parallel.Grain(inC*k*k*oh*ow), func(lo, hi int) {
		for o := lo; o < hi; o++ {
			for c := 0; c < inC; c++ {
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						s := 0.0
						for y := 0; y < oh; y++ {
							for xx := 0; xx < ow; xx++ {
								s += x.At(c, y+ky, xx+kx) * delta.At(o, y, xx)
							}
						}
						dW.Set(s, o, c, ky, kx)
					}
				}
			}
		}
	})
	return dW
}
