package arch

import (
	"math"

	"pipelayer/internal/fixed"
	"pipelayer/internal/spike"
	"pipelayer/internal/tensor"
)

// Weight update datapath of the paper's Section 4.4.2 and Figure 14(b): the
// averaged partial derivative is read out of the gradient buffers with input
// spikes representing 1/B (the bit-line current accumulation performs the
// averaging); the old weights are read as four shifted 4-bit segments and
// composed; the activation component's subtractor — LUT bypassed — computes
// (old − averaged gradient); and the result is decomposed back into four
// segments and programmed into the morphable subarrays.

// UpdateUnit applies batch-averaged gradient updates to 16-bit quantized
// weights through the hardware flow.
type UpdateUnit struct {
	// Bits is the fraction resolution of the 1/B averaging spikes.
	Bits int
}

// NewUpdateUnit creates an update unit with the given averaging resolution.
func NewUpdateUnit(bits int) *UpdateUnit { return &UpdateUnit{Bits: bits} }

// AverageFactor returns the hardware approximation of 1/B realized by the
// averaging input spikes.
func (u *UpdateUnit) AverageFactor(batch int) float64 {
	code := spike.UpdateAverageCode(batch, u.Bits)
	return float64(code) / float64(uint64(1)<<uint(u.Bits))
}

// Apply updates a float weight tensor in place through the quantized
// read–modify–write: for each weight, the accumulated gradient is averaged
// by the spike-coded 1/B factor and scaled by lr, the old weight's 16-bit
// code is read and composed from its segments, the subtractor computes the
// new code, and the new segments are written back. scale is the weight
// array's full-scale magnitude. It returns the maximum per-weight deviation
// from the ideal float update (bounded by one quantization step).
func (u *UpdateUnit) Apply(w, grad *tensor.Tensor, lr float64, batch int, scale float64) float64 {
	if w.Size() != grad.Size() {
		panic("arch: UpdateUnit.Apply size mismatch")
	}
	if scale <= 0 {
		panic("arch: UpdateUnit.Apply requires positive scale")
	}
	avg := u.AverageFactor(batch)
	step := scale / math.MaxUint16
	maxDev := 0.0
	for i, old := range w.Data() {
		// Ideal float update for the deviation bound.
		ideal := old - lr*grad.Data()[i]/float64(batch)

		// Hardware path: signed 16-bit code of the old weight…
		oldCode := int(math.Round(math.Abs(old) / scale * math.MaxUint16))
		if oldCode > math.MaxUint16 {
			oldCode = math.MaxUint16
		}
		segs := fixed.Decompose16(uint16(oldCode))
		composed := int(fixed.Compose16(segs))
		if old < 0 {
			composed = -composed
		}
		// …minus the averaged, scaled gradient code…
		deltaCode := int(math.Round(lr * avg * grad.Data()[i] / step))
		newCode := composed - deltaCode
		if newCode > math.MaxUint16 {
			newCode = math.MaxUint16
		} else if newCode < -math.MaxUint16 {
			newCode = -math.MaxUint16
		}
		// …then decompose/recompose the magnitude for the write-back.
		mag := newCode
		if mag < 0 {
			mag = -mag
		}
		back := int(fixed.Compose16(fixed.Decompose16(uint16(mag))))
		if newCode < 0 {
			back = -back
		}
		nw := float64(back) * step
		w.Data()[i] = nw
		if dev := math.Abs(nw - ideal); dev > maxDev {
			maxDev = dev
		}
	}
	return maxDev
}
