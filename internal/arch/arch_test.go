package arch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipelayer/internal/dataset"
	"pipelayer/internal/networks"
	"pipelayer/internal/nn"
	"pipelayer/internal/reram"
	"pipelayer/internal/tensor"
)

func TestQuantizedMatVecAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows, cols := 64, 16
	w := tensor.New(rows*cols).RandNormal(rng, 0, 1)
	q := NewQuantized(w, rows, cols, 16)
	x := tensor.New(rows).RandNormal(rng, 0, 1)
	got := q.MatVec(x)
	for j := 0; j < cols; j++ {
		s := 0.0
		for i := 0; i < rows; i++ {
			s += x.At(i) * w.Data()[i*cols+j]
		}
		if math.Abs(got.At(j)-s) > 1e-3*(1+math.Abs(s)) {
			t.Fatalf("col %d: %g vs %g", j, got.At(j), s)
		}
	}
}

// The quantized fast path must agree bit-for-bit with the exact spike-domain
// crossbar simulation (they use identical code assignment).
func TestQuantizedMatchesSpikePath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(6)
		w := tensor.New(rows*cols).RandNormal(rng, 0, 1)
		x := tensor.New(rows).RandNormal(rng, 0, 1)
		bits := 4 + rng.Intn(8)

		q := NewQuantized(w, rows, cols, bits)
		fast := q.MatVec(x)

		ra := reram.NewResolutionArray(w, rows, cols, 0, nil)
		exact := ra.MatVecFloat(x, bits)

		return tensor.Equal(fast, exact, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizedZeroInput(t *testing.T) {
	q := NewQuantized(tensor.FromSlice([]float64{1, -1}, 2), 2, 1, 8)
	if q.MatVec(tensor.New(2)).At(0) != 0 {
		t.Fatal("zero input must give zero")
	}
}

func TestQuantizedSegments(t *testing.T) {
	w := tensor.FromSlice([]float64{-1.0, 1.0}, 2)
	q := NewQuantized(w, 2, 1, 8)
	segs, neg := q.Segments(0, 0)
	if !neg {
		t.Fatal("first weight is negative")
	}
	for _, s := range segs {
		if s != 0xF {
			t.Fatalf("full-scale segments = %v", segs)
		}
	}
}

func trainSmallCNN(t *testing.T, rng *rand.Rand) (*nn.Network, []nn.Sample) {
	t.Helper()
	net := networks.BuildTrainable(networks.Mnist0(), rng)
	train, test := dataset.TrainTest(300, 120, dataset.DefaultOptions(false), 5)
	for epoch := 0; epoch < 3; epoch++ {
		net.TrainEpoch(train, 10, 0.05)
	}
	return net, test
}

func TestMachineMatchesFloatNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("machine fidelity test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(2))
	net, test := trainSmallCNN(t, rng)
	m := BuildMachine(net, 16)
	floatAcc := net.Accuracy(test)
	analogAcc := m.Accuracy(test)
	if math.Abs(floatAcc-analogAcc) > 0.05 {
		t.Fatalf("analog accuracy %g deviates from float accuracy %g", analogAcc, floatAcc)
	}
	if analogAcc < 0.5 {
		t.Fatalf("analog accuracy %g suspiciously low", analogAcc)
	}
}

func TestMachineEnginesFuseActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := networks.BuildTrainable(networks.MnistA(), rng)
	m := BuildMachine(net, 16)
	// Mnist-A: fc1(+relu fused), fc2 → exactly 2 engines.
	if got := len(m.Engines()); got != 2 {
		t.Fatalf("engines = %v", m.Engines())
	}
}

func TestMachineForwardScoresCloseToFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := networks.BuildTrainable(networks.MnistA(), rng)
	m := BuildMachine(net, 16)
	x := tensor.New(784).RandUniform(rng, 0, 1)
	yf := net.Forward(x)
	ya := m.Forward(x)
	for i := 0; i < 10; i++ {
		if math.Abs(yf.At(i)-ya.At(i)) > 0.02*(1+math.Abs(yf.At(i))) {
			t.Fatalf("score %d: float %g vs analog %g", i, yf.At(i), ya.At(i))
		}
	}
	// The memory bank must hold every stage's intermediate.
	if m.Bank.Len() != len(m.Engines()) {
		t.Fatal("memory bank missing intermediates")
	}
}

func TestReluBackwardMatchesFramework(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := nn.NewReLU("r")
	x := tensor.New(32).RandNormal(rng, 0, 1)
	d := r.Forward(x)
	g := tensor.New(32).RandNormal(rng, 0, 1)
	want := r.Backward(g)
	got := ReluBackward(g, d)
	if !tensor.Equal(got, want, 0) {
		t.Fatal("ReluBackward != framework backward")
	}
}

func TestMaxPoolBackwardMatchesFramework(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := nn.NewMaxPool("p", 3, 8, 8, 2)
	x := tensor.New(3, 8, 8).RandNormal(rng, 0, 1)
	p.Forward(x)
	g := tensor.New(3, 4, 4).RandNormal(rng, 0, 1)
	want := p.Backward(g)
	got := MaxPoolBackward(g, x, 2)
	if !tensor.Equal(got, want, 0) {
		t.Fatal("MaxPoolBackward != framework backward")
	}
}

// The Figure 11 claim: conv error backward equals 'full' convolution with
// reordered, 180°-rotated kernels — verified against the autograd framework.
func TestConvErrorBackwardMatchesFramework(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inC := 1 + rng.Intn(3)
		outC := 1 + rng.Intn(3)
		h := 5 + rng.Intn(4)
		k := 1 + rng.Intn(3)
		pad := rng.Intn(2)
		if h+2*pad < k {
			return true
		}
		conv := nn.NewConv("c", inC, h, h, outC, k, 1, pad, rng)
		x := tensor.New(inC, h, h).RandNormal(rng, 0, 1)
		y := conv.Forward(x)
		g := tensor.New(y.Shape()...).RandNormal(rng, 0, 1)
		want := conv.Backward(g)
		got := ConvErrorBackward(g, conv.Weights().Value, pad)
		return tensor.Equal(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The Figure 12 claim: ∂W is the correlation of stored inputs with errors.
func TestConvDerivativeMatchesFramework(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inC := 1 + rng.Intn(3)
		outC := 1 + rng.Intn(3)
		h := 5 + rng.Intn(4)
		k := 1 + rng.Intn(3)
		pad := rng.Intn(2)
		if h+2*pad < k {
			return true
		}
		conv := nn.NewConv("c", inC, h, h, outC, k, 1, pad, rng)
		x := tensor.New(inC, h, h).RandNormal(rng, 0, 1)
		y := conv.Forward(x)
		g := tensor.New(y.Shape()...).RandNormal(rng, 0, 1)
		conv.Weights().ZeroGrad()
		conv.Bias().ZeroGrad()
		conv.Backward(g)
		want := conv.Weights().Grad
		got := ConvDerivative(x, g, k, pad)
		return tensor.Equal(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardKernelsShape(t *testing.T) {
	k := tensor.New(4, 3, 5, 5)
	b := BackwardKernels(k)
	sh := b.Shape()
	if sh[0] != 3 || sh[1] != 4 || sh[2] != 5 || sh[3] != 5 {
		t.Fatalf("BackwardKernels shape = %v", sh)
	}
	// Involution up to the channel swap: applying twice restores K.
	if !tensor.Equal(BackwardKernels(b), k, 0) {
		t.Fatal("BackwardKernels twice must restore the original bank")
	}
}

func TestUpdateUnitMatchesFloatUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := NewUpdateUnit(16)
	n := 256
	w := tensor.New(n).RandNormal(rng, 0, 0.5)
	grad := tensor.New(n).RandNormal(rng, 0, 1)
	scale := 2.0
	ideal := w.Clone()
	ideal.AxpyInPlace(-0.1/64.0, grad)
	dev := u.Apply(w, grad, 0.1, 64, scale)
	step := scale / 65535.0
	if dev > 3*step {
		t.Fatalf("hardware update deviates %g, > 3 quantization steps (%g)", dev, step)
	}
	for i := 0; i < n; i++ {
		if math.Abs(w.At(i)-ideal.At(i)) > 3*step {
			t.Fatalf("weight %d: hw %g vs ideal %g", i, w.At(i), ideal.At(i))
		}
	}
}

func TestUpdateUnitAverageFactor(t *testing.T) {
	u := NewUpdateUnit(16)
	for _, b := range []int{1, 2, 16, 64} {
		got := u.AverageFactor(b)
		want := 1.0 / float64(b)
		if math.Abs(got-want) > 1.0/65536 {
			t.Fatalf("B=%d: factor %g vs %g", b, got, want)
		}
	}
}

func TestUpdateUnitValidation(t *testing.T) {
	u := NewUpdateUnit(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive scale")
		}
	}()
	u.Apply(tensor.New(1), tensor.New(1), 0.1, 4, 0)
}

func TestTable1Cases(t *testing.T) {
	cases := Table1(3)
	if len(cases) != 4 {
		t.Fatalf("Table 1 has %d cases, want 4", len(cases))
	}
	longest := LongestCase(cases)
	if longest.Name != "backward-inner" {
		t.Fatalf("longest cycle case = %s, want backward-inner (two array passes)", longest.Name)
	}
	// Forward must follow the Figure 9 component order.
	fwd := cases[0].Ops
	if fwd[0] != OpMemoryRead || fwd[len(fwd)-1] != OpMemoryWrite {
		t.Fatal("forward cycle must start with memory read and end with memory write")
	}
}
