package arch

import (
	"testing"

	"pipelayer/internal/telemetry/flight"
	"pipelayer/internal/tensor"
)

// TestWithFlightRecordsReadouts checks the depth-2 instrumentation: a
// WithFlight clone shares the programmed codes (bit-identical outputs) and
// attributes one span per readout to its track, while the original stays
// silent.
func TestWithFlightRecordsReadouts(t *testing.T) {
	w := tensor.New(4, 3)
	for i := range w.Data() {
		w.Data()[i] = float64(i%5) - 2
	}
	q := NewQuantized(w, 4, 3, 8)
	rec := flight.New(flight.Config{Capacity: 16})
	traced := q.WithFlight(rec, 7)

	x := tensor.New(4)
	copy(x.Data(), []float64{1, -0.5, 0.25, 2})
	want := q.MatVec(x)
	got := traced.MatVec(x)
	for i := range want.Data() {
		if want.Data()[i] != got.Data()[i] {
			t.Fatalf("traced clone diverged at %d: %g vs %g", i, got.Data()[i], want.Data()[i])
		}
	}
	traced.MatVecCols(PackCols([]*tensor.Tensor{x, x}))

	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d spans, want 2 (one per traced readout): %+v", len(evs), evs)
	}
	if evs[0].Name != "arch_readout" || evs[0].Track != 7 || evs[0].Arg != 3 {
		t.Fatalf("MatVec span wrong: %+v", evs[0])
	}
	if evs[1].Name != "arch_readout_cols" || evs[1].Track != 7 || evs[1].Arg != 2 {
		t.Fatalf("MatVecCols span wrong: %+v", evs[1])
	}
}

func TestWithFlightNilRecorderReturnsOriginal(t *testing.T) {
	w := tensor.New(2, 2)
	q := NewQuantized(w, 2, 2, 8)
	if got := q.WithFlight(nil, 1); got != q {
		t.Fatal("nil recorder must return the original array untouched")
	}
}
