package arch

import (
	"fmt"
	"math"

	"pipelayer/internal/parallel"
	"pipelayer/internal/reram"
	"pipelayer/internal/tensor"
)

// MatVecCols is the batched readout of the quantized array: x packs N input
// vectors as the columns of a (Rows × N) tensor and the result packs the N
// output vectors as the columns of a (Cols × N) tensor. Column n of the
// result is bit-identical to MatVec applied to column n alone — each input
// column is quantized against its own absolute maximum (the word-line driver
// calibration is per vector, exactly as in the single-vector path) and every
// (output, input) pair accumulates over the rows in ascending order.
//
// The point of the batched form is throughput: one pass over the programmed
// conductances serves every in-flight column, so each weight load from
// memory is amortized over N multiply-accumulates instead of one, and the
// branchy per-element zero test of the single-vector loop disappears. That
// drops the per-sample cost well below N independent MatVec calls even on a
// single core; the output-column fan-out still scales across the worker pool
// on top.
//
// Bit-identity with the zero-skipping MatVec loop holds because the only
// terms the serial path skips are exact ±0 products, and adding ±0 to a
// round-to-nearest accumulation never changes the stored value (the
// accumulator starts at +0, and +0 + ±0 = +0).
func (q *Quantized) MatVecCols(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(0) != q.Rows {
		panic(fmt.Sprintf("arch: MatVecCols input is %v for %d rows (array is %dx%d)", x.Shape(), q.Rows, q.Rows, q.Cols))
	}
	n := x.Dim(1)
	t0 := q.flightRec.Now()
	out := tensor.New(q.Cols, n)
	if n == 0 {
		return out
	}
	maxIn := float64(uint64(1)<<uint(q.Bits) - 1)
	// Quantize every input column against its own scale, keeping the
	// column-interleaved layout (xq[i*n+c] is row i of column c) so the
	// readout's inner loop streams contiguously across columns. Both passes
	// walk the input row-major — strided per-column scans would take a cache
	// miss on nearly every element.
	xq := make([]float64, q.Rows*n)
	ks := make([]float64, n)
	scales := make([]float64, n)
	xd := x.Data()
	for i := 0; i < q.Rows; i++ {
		row := xd[i*n : (i+1)*n : (i+1)*n]
		for c, v := range row {
			if a := math.Abs(v); a > scales[c] {
				scales[c] = a
			}
		}
	}
	for c, xScale := range scales {
		if xScale != 0 {
			ks[c] = xScale / maxIn * q.scale / math.MaxUint16
		}
	}
	for i := 0; i < q.Rows; i++ {
		row := xd[i*n : (i+1)*n : (i+1)*n]
		dst := xq[i*n : (i+1)*n : (i+1)*n]
		for c, v := range row {
			if v == 0 {
				continue // Round(0) is 0: the code stays zero without computing it
			}
			xScale := scales[c]
			if xScale == 0 {
				continue // zero column: codes stay zero, output stays zero, as in MatVec
			}
			code := math.Round(math.Abs(v) / xScale * maxIn)
			if v < 0 {
				code = -code
			}
			dst[c] = code
		}
	}
	f := q.faults
	parallel.Default().For(q.Cols, parallel.Grain(q.Rows*n), func(lo, hi int) {
		if f == nil {
			readoutExact(q.colCodes, xq, ks, out.Data(), q.Rows, n, lo, hi)
			return
		}
		for j := lo; j < hi; j++ {
			col := f.eff[j*q.Rows : (j+1)*q.Rows]
			drift := 1.0
			if f.drift != 1 && f.class[j] != reram.ColDegraded {
				drift = f.drift
			}
			od := out.Data()[j*n : (j+1)*n]
			// Fault path: effective conductances may be fractional, so every
			// partial sum rounds. Match the serial path's arithmetic exactly —
			// ascending-row mul-then-add per column — and fold the drift in
			// before the scale, as MatVec does.
			// Block the batch dimension in eights so the running sums live
			// in registers across the whole row sweep; the weight column is
			// at most a few KB, so re-reading it per block stays in L1.
			c := 0
			for ; c+8 <= n; c += 8 {
				var a0, a1, a2, a3, a4, a5, a6, a7 float64
				for i, w := range col {
					if w == 0 {
						continue // ±0 terms cannot change any accumulator
					}
					r := xq[i*n+c : i*n+c+8]
					a0 += r[0] * w
					a1 += r[1] * w
					a2 += r[2] * w
					a3 += r[3] * w
					a4 += r[4] * w
					a5 += r[5] * w
					a6 += r[6] * w
					a7 += r[7] * w
				}
				od[c] = a0 * drift * ks[c]
				od[c+1] = a1 * drift * ks[c+1]
				od[c+2] = a2 * drift * ks[c+2]
				od[c+3] = a3 * drift * ks[c+3]
				od[c+4] = a4 * drift * ks[c+4]
				od[c+5] = a5 * drift * ks[c+5]
				od[c+6] = a6 * drift * ks[c+6]
				od[c+7] = a7 * drift * ks[c+7]
			}
			for ; c < n; c++ {
				var a float64
				for i, w := range col {
					if w == 0 {
						continue
					}
					a += xq[i*n+c] * w
				}
				od[c] = a * drift * ks[c]
			}
		}
	})
	q.flightRec.Record("arch_readout_cols", 0, q.flightTrack, t0, int64(n))
	return out
}

// readoutExact accumulates the fault-free output columns lo..hi over all
// input columns. Both operands are integer codes held exactly in float64
// (|code| < 2^16, so a product is < 2^32 and a sum over any realistic row
// count stays far below 2^53), which makes the whole accumulation exact: no
// partial sum ever rounds, so the result is independent of both summation
// order and whether the multiply-add is fused. That licenses two things the
// rounding-sensitive fault path cannot do while staying bit-identical to
// MatVec's sequential mul-then-add loop: math.FMA (one fused instruction per
// term) and row tiling, which keeps a 16 KB slab of the quantized inputs
// resident in L1 while every output column sweeps over it, instead of
// streaming the whole input block from L2 once per output column.
func readoutExact(codes, xq, ks, od []float64, rows, n, lo, hi int) {
	const tile = 128 // rows per slab: 128 rows × 8 cols × 8 B = 8 KB of xq per c-block
	acc := make([]float64, (hi-lo)*n)
	for i0 := 0; i0 < rows; i0 += tile {
		i1 := i0 + tile
		if i1 > rows {
			i1 = rows
		}
		for j := lo; j < hi; j++ {
			col := codes[j*rows+i0 : j*rows+i1]
			base := (j - lo) * n
			c := 0
			for ; c+8 <= n; c += 8 {
				a := acc[base+c : base+c+8 : base+c+8]
				a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
				a4, a5, a6, a7 := a[4], a[5], a[6], a[7]
				rb := i0*n + c
				// No zero-weight test here: adding an exact ±0 product
				// cannot change any accumulator, and the branch costs more
				// than the arithmetic it would skip.
				for _, w := range col {
					r := xq[rb : rb+8 : rb+8]
					rb += n
					a0 = math.FMA(r[0], w, a0)
					a1 = math.FMA(r[1], w, a1)
					a2 = math.FMA(r[2], w, a2)
					a3 = math.FMA(r[3], w, a3)
					a4 = math.FMA(r[4], w, a4)
					a5 = math.FMA(r[5], w, a5)
					a6 = math.FMA(r[6], w, a6)
					a7 = math.FMA(r[7], w, a7)
				}
				a[0], a[1], a[2], a[3] = a0, a1, a2, a3
				a[4], a[5], a[6], a[7] = a4, a5, a6, a7
			}
			for ; c < n; c++ {
				a := acc[base+c]
				rb := i0*n + c
				for _, w := range col {
					a = math.FMA(xq[rb], w, a)
					rb += n
				}
				acc[base+c] = a
			}
		}
	}
	for j := lo; j < hi; j++ {
		for c := 0; c < n; c++ {
			od[j*n+c] = acc[(j-lo)*n+c] * ks[c]
		}
	}
}

// PackCols packs the given equally-sized vectors as the columns of a new
// (len(vec) × len(vecs)) tensor — the input form MatVecCols consumes.
func PackCols(vecs []*tensor.Tensor) *tensor.Tensor {
	if len(vecs) == 0 {
		return tensor.New(0, 0)
	}
	rows := vecs[0].Size()
	out := tensor.New(rows, len(vecs))
	od := out.Data()
	for c, v := range vecs {
		if v.Size() != rows {
			panic(fmt.Sprintf("arch: PackCols vector %d has %d elems, want %d", c, v.Size(), rows))
		}
		for i, val := range v.Data() {
			od[i*len(vecs)+c] = val
		}
	}
	return out
}
