package arch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipelayer/internal/mapping"
	"pipelayer/internal/tensor"
)

func TestTiledQuantizedMatchesExactProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows, cols := 300, 70 // forces 3×... tiles with a 128×64 array
	array := mapping.ArraySpec{Rows: 128, Cols: 64}
	w := tensor.New(rows*cols).RandNormal(rng, 0, 1)
	tq := NewTiledQuantized(w, rows, cols, array, 16)
	rt, ct := tq.TileCount()
	if rt != 3 || ct != 2 {
		t.Fatalf("tile grid = %dx%d, want 3x2", rt, ct)
	}
	x := tensor.New(rows).RandNormal(rng, 0, 1)
	got := tq.MatVec(x)
	for j := 0; j < cols; j++ {
		s := 0.0
		for i := 0; i < rows; i++ {
			s += x.At(i) * w.Data()[i*cols+j]
		}
		if math.Abs(got.At(j)-s) > 2e-3*(1+math.Abs(s)) {
			t.Fatalf("col %d: tiled %g vs exact %g", j, got.At(j), s)
		}
	}
}

// Property: the Figure 5 claim — partitioning into tiles and summing
// vertically matches the single-array result up to per-tile quantization
// scale differences (each tile quantizes against its own maximum, so the
// tolerance reflects 16-bit steps, not exact equality).
func TestPropertyTiledMatchesUntiled(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 10 + rng.Intn(80)
		cols := 1 + rng.Intn(20)
		array := mapping.ArraySpec{Rows: 8 + rng.Intn(32), Cols: 4 + rng.Intn(16)}
		w := tensor.New(rows*cols).RandNormal(rng, 0, 1)
		x := tensor.New(rows).RandNormal(rng, 0, 1)
		tiled := NewTiledQuantized(w, rows, cols, array, 16).MatVec(x)
		whole := NewQuantized(w, rows, cols, 16).MatVec(x)
		for j := 0; j < cols; j++ {
			if math.Abs(tiled.At(j)-whole.At(j)) > 5e-3*(1+math.Abs(whole.At(j))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTiledSingleTileDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := tensor.New(10*5).RandNormal(rng, 0, 1)
	tq := NewTiledQuantized(w, 10, 5, mapping.DefaultArray, 16)
	rt, ct := tq.TileCount()
	if rt != 1 || ct != 1 {
		t.Fatalf("small matrix should fit one tile, got %dx%d", rt, ct)
	}
	// A single tile must be bit-identical to the untiled path.
	x := tensor.New(10).RandNormal(rng, 0, 1)
	whole := NewQuantized(w, 10, 5, 16).MatVec(x)
	if !tensor.Equal(tq.MatVec(x), whole, 0) {
		t.Fatal("single-tile result must match untiled exactly")
	}
}

func TestTiledValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTiledQuantized(tensor.New(4), 2, 3, mapping.DefaultArray, 16) },
		func() { NewTiledQuantized(tensor.New(6), 2, 3, mapping.ArraySpec{}, 16) },
		func() {
			tq := NewTiledQuantized(tensor.New(6), 2, 3, mapping.DefaultArray, 16)
			tq.MatVec(tensor.New(5))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
