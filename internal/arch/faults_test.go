package arch

import (
	"math/rand"
	"testing"

	"pipelayer/internal/fault"
	"pipelayer/internal/networks"
	"pipelayer/internal/reram"
	"pipelayer/internal/tensor"
)

func randTensor(n int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	w := tensor.New(n)
	for i := range w.Data() {
		w.Data()[i] = rng.NormFloat64()
	}
	return w
}

// TestQuantizedZeroDensityIdentical: an attached zero-density injector leaves
// MatVec bit-identical to the plain array — the regression gate for the
// functional-model fault path.
func TestQuantizedZeroDensityIdentical(t *testing.T) {
	const rows, cols, bits = 23, 11, 16
	w := randTensor(rows*cols, 1)
	x := randTensor(rows, 2)

	plain := NewQuantized(w, rows, cols, bits)
	want := plain.MatVec(x)

	inj := fault.MustNew(fault.Config{Seed: 3, Spares: 4, Degrade: true})
	faulty := NewQuantized(w, rows, cols, bits)
	faulty.AttachFaults(inj, 9)
	got := faulty.MatVec(x)

	if !tensor.Equal(got, want, 0) {
		t.Fatalf("zero-density MatVec diverged:\n got %v\nwant %v", got, want)
	}
	if c := inj.Counters(); c != (fault.Counters{}) {
		t.Errorf("zero-density injector counted events: %+v", c)
	}
	// Reprogramming keeps the equivalence.
	w2 := randTensor(rows*cols, 7)
	plain.Program(w2)
	faulty.Program(w2)
	if !tensor.Equal(faulty.MatVec(x), plain.MatVec(x), 0) {
		t.Fatal("zero-density MatVec diverged after reprogram")
	}
}

// TestQuantizedRemapExact: stuck nibbles with enough spares are fully
// repaired — the remapped array computes the exact ideal result even across
// reprograms (training keeps rewriting the array).
func TestQuantizedRemapExact(t *testing.T) {
	const rows, cols, bits = 12, 8, 16
	w := randTensor(rows*cols, 4)
	x := randTensor(rows, 5)

	ideal := NewQuantized(w, rows, cols, bits)
	inj := fault.MustNew(fault.Config{Seed: 11, StuckOff: 0.002, StuckOn: 0.001, Spares: cols, Degrade: true})
	faulty := NewQuantized(w, rows, cols, bits)
	faulty.AttachFaults(inj, 1)

	c := inj.Counters()
	if c.Injected == 0 {
		t.Fatal("no nibbles injected; the stuck map is not wired in")
	}
	if c.Remapped == 0 {
		t.Fatal("no columns remapped despite stuck nibbles")
	}
	if c.Degraded != 0 || c.Corrupted != 0 {
		t.Fatalf("spares should have covered every faulty column: %+v", c)
	}
	if !tensor.Equal(faulty.MatVec(x), ideal.MatVec(x), 0) {
		t.Fatal("remapped array diverged from ideal")
	}
	w2 := randTensor(rows*cols, 6)
	ideal.Program(w2)
	faulty.Program(w2)
	if !tensor.Equal(faulty.MatVec(x), ideal.MatVec(x), 0) {
		t.Fatal("remapped array diverged from ideal after reprogram")
	}
}

// TestQuantizedDegradeExact: zero spares with degrade enabled falls back to
// digital emulation and stays exact.
func TestQuantizedDegradeExact(t *testing.T) {
	const rows, cols, bits = 12, 8, 16
	w := randTensor(rows*cols, 4)
	x := randTensor(rows, 5)

	ideal := NewQuantized(w, rows, cols, bits)
	inj := fault.MustNew(fault.Config{Seed: 11, StuckOff: 0.01, StuckOn: 0.005, Spares: 0, Degrade: true})
	faulty := NewQuantized(w, rows, cols, bits)
	faulty.AttachFaults(inj, 1)

	if c := inj.Counters(); c.Degraded == 0 {
		t.Fatalf("no columns degraded: %+v", c)
	}
	if !tensor.Equal(faulty.MatVec(x), ideal.MatVec(x), 0) {
		t.Fatal("degraded array diverged from ideal")
	}
	states := faulty.ColumnStates()
	sawDegraded := false
	for _, s := range states {
		if s == reram.ColDegraded {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Errorf("ColumnStates reports no degraded column: %v", states)
	}
}

// TestQuantizedCorruptDiverges: no spares, no degrade — stuck nibbles corrupt
// the output.
func TestQuantizedCorruptDiverges(t *testing.T) {
	const rows, cols, bits = 12, 8, 16
	w := randTensor(rows*cols, 4)
	x := randTensor(rows, 5)

	ideal := NewQuantized(w, rows, cols, bits)
	inj := fault.MustNew(fault.Config{Seed: 11, StuckOff: 0.01, StuckOn: 0.005})
	faulty := NewQuantized(w, rows, cols, bits)
	faulty.AttachFaults(inj, 1)

	if c := inj.Counters(); c.Corrupted == 0 {
		t.Fatalf("no columns corrupt: %+v", c)
	}
	if tensor.Equal(faulty.MatVec(x), ideal.MatVec(x), 0) {
		t.Fatal("corrupt array computed the ideal result; faults are not reaching the readout")
	}
}

// TestQuantizedDriftAndReprogram: ticks shrink analog outputs by the drift
// factor; a reprogram restores them.
func TestQuantizedDriftAndReprogram(t *testing.T) {
	const rows, cols, bits = 10, 4, 16
	w := randTensor(rows*cols, 8)
	x := randTensor(rows, 9)

	inj := fault.MustNew(fault.Config{Seed: 1, Drift: 0.2})
	q := NewQuantized(w, rows, cols, bits)
	q.AttachFaults(inj, 1)
	fresh := q.MatVec(x)

	q.Tick(500)
	drifted := q.MatVec(x)
	factor := inj.DriftFactor(500)
	for j := 0; j < cols; j++ {
		// The implementation applies drift before the rescale constant, so
		// allow the one-ulp reassociation difference.
		want := fresh.At(j) * factor
		if diff := drifted.At(j) - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("col %d: drifted=%g want %g (factor %g)", j, drifted.At(j), want, factor)
		}
	}

	q.Program(w)
	restored := q.MatVec(x)
	if !tensor.Equal(restored, fresh, 0) {
		t.Fatal("reprogram did not reset drift")
	}
}

// TestQuantizedEnduranceFreezesWeights: once a cell exceeds its write budget
// it stops following reprograms.
func TestQuantizedEnduranceFreezesWeights(t *testing.T) {
	const rows, cols, bits = 6, 3, 16
	inj := fault.MustNew(fault.Config{Seed: 1, Endurance: 2, Spares: 0, Degrade: false})
	q := NewQuantized(randTensor(rows*cols, 1), rows, cols, bits)
	q.AttachFaults(inj, 1)
	for round := int64(2); round <= 5; round++ {
		q.Program(randTensor(rows*cols, round))
	}
	c := inj.Counters()
	if c.WornOut != rows*cols {
		t.Fatalf("worn-out cells = %d, want %d", c.WornOut, rows*cols)
	}
	if c.Corrupted != cols {
		t.Errorf("corrupt columns = %d, want %d", c.Corrupted, cols)
	}
	// All cells froze at the round-2 codes (writes 1 and 2 succeeded,
	// write 3 exceeded the budget), so the output matches that epoch.
	frozen := NewQuantized(randTensor(rows*cols, 2), rows, cols, bits)
	// Scales differ (Program refreshed q.scale from the round-5 weights),
	// so compare the effective codes instead of MatVec outputs.
	for r := 0; r < rows; r++ {
		for j := 0; j < cols; j++ {
			if got, want := q.faults.effCode(r*q.faults.physCols+j), float64(frozen.WeightCode(r, j)); got != want {
				t.Fatalf("cell (%d,%d): frozen code %g, want %g", r, j, got, want)
			}
		}
	}
}

// TestBuildMachineFaultsZeroDensity: a machine built with a zero-density
// injector scores identically to the ideal machine.
func TestBuildMachineFaultsZeroDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := networks.BuildTrainable(networks.Mnist0(), rng)
	x := randTensor(28*28, 10).Reshape(1, 28, 28)

	ideal := BuildMachine(net, 16)
	inj := fault.MustNew(fault.Config{Seed: 5, Spares: 2, Degrade: true})
	faulty := BuildMachineFaults(net, 16, inj)

	if !tensor.Equal(faulty.Forward(x), ideal.Forward(x), 0) {
		t.Fatal("zero-density machine diverged from ideal")
	}
}
