package arch

import (
	"math/rand"
	"runtime"
	"testing"

	"pipelayer/internal/mapping"
	"pipelayer/internal/parallel"
	"pipelayer/internal/tensor"
)

func withWorkersArch(t *testing.T, n int, f func()) {
	t.Helper()
	old := parallel.Workers()
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(old)
	f()
}

// TestParallelDeterminismQuantized asserts the column-parallel quantized
// readout — plain and tiled — is bit-identical to serial across worker
// counts and an odd, non-tile-aligned shape.
func TestParallelDeterminismQuantized(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const rows, cols = 131, 77
	w := tensor.New(rows, cols).RandNormal(rng, 0, 1)
	x := tensor.New(rows).RandNormal(rng, 0, 1)
	// Exact zeros exercise the sparse input-code skip.
	x.Data()[3] = 0

	q := NewQuantized(w, rows, cols, 8)
	tiled := NewTiledQuantized(w, rows, cols, mapping.ArraySpec{Rows: 32, Cols: 32}, 8)

	var refQ, refT *tensor.Tensor
	withWorkersArch(t, 1, func() {
		refQ = q.MatVec(x)
		refT = tiled.MatVec(x)
	})
	for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		withWorkersArch(t, workers, func() {
			got := q.MatVec(x)
			for j, v := range got.Data() {
				if v != refQ.Data()[j] {
					t.Errorf("Quantized.MatVec col %d differs at %d workers: %g vs %g", j, workers, v, refQ.Data()[j])
				}
			}
			gotT := tiled.MatVec(x)
			for j, v := range gotT.Data() {
				if v != refT.Data()[j] {
					t.Errorf("TiledQuantized.MatVec col %d differs at %d workers: %g vs %g", j, workers, v, refT.Data()[j])
				}
			}
		})
	}
}

// TestParallelDeterminismBackward asserts the backward datapaths are
// bit-identical to serial across worker counts.
func TestParallelDeterminismBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	delta := tensor.New(5, 9, 9).RandNormal(rng, 0, 1)
	d := tensor.New(5, 9, 9).RandNormal(rng, 0, 1)
	poolDelta := tensor.New(3, 5, 5).RandNormal(rng, 0, 1)
	poolPrev := tensor.New(3, 10, 10).RandNormal(rng, 0, 1)
	dPrev := tensor.New(4, 11, 11).RandNormal(rng, 0, 1)
	convDelta := tensor.New(6, 11, 11).RandNormal(rng, 0, 1)

	var refRelu, refPool, refDW *tensor.Tensor
	withWorkersArch(t, 1, func() {
		refRelu = ReluBackward(delta, d)
		refPool = MaxPoolBackward(poolDelta, poolPrev, 2)
		refDW = ConvDerivative(dPrev, convDelta, 3, 1)
	})
	same := func(a, b *tensor.Tensor) bool {
		for i, v := range a.Data() {
			if v != b.Data()[i] {
				return false
			}
		}
		return true
	}
	for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		withWorkersArch(t, workers, func() {
			if !same(ReluBackward(delta, d), refRelu) {
				t.Errorf("ReluBackward differs at %d workers", workers)
			}
			if !same(MaxPoolBackward(poolDelta, poolPrev, 2), refPool) {
				t.Errorf("MaxPoolBackward differs at %d workers", workers)
			}
			if !same(ConvDerivative(dPrev, convDelta, 3, 1), refDW) {
				t.Errorf("ConvDerivative differs at %d workers", workers)
			}
		})
	}
}
