package arch

import (
	"fmt"

	"pipelayer/internal/mapping"
	"pipelayer/internal/parallel"
	"pipelayer/internal/tensor"
)

// TiledQuantized realizes the balanced mapping of Figure 5 functionally: a
// weight matrix larger than one crossbar is decomposed into a grid of
// array-sized tiles; an input vector is sliced across the row tiles, each
// tile computes its partial products, and "we can get the right results by
// collecting array outputs horizontally and summing them vertically."
type TiledQuantized struct {
	Rows, Cols int
	Array      mapping.ArraySpec
	// tiles[r][c] covers rows [r·Array.Rows, …) × cols [c·Array.Cols, …).
	tiles    [][]*Quantized
	rowTiles int
	colTiles int
	bits     int
}

// NewTiledQuantized programs a (rows×cols) float weight matrix onto a grid
// of crossbar-sized Quantized tiles.
func NewTiledQuantized(w *tensor.Tensor, rows, cols int, array mapping.ArraySpec, bits int) *TiledQuantized {
	if w.Size() != rows*cols {
		panic(fmt.Sprintf("arch: weight tensor has %d elems for %dx%d", w.Size(), rows, cols))
	}
	if array.Rows <= 0 || array.Cols <= 0 {
		panic("arch: invalid array spec")
	}
	t := &TiledQuantized{
		Rows: rows, Cols: cols, Array: array, bits: bits,
		rowTiles: (rows + array.Rows - 1) / array.Rows,
		colTiles: (cols + array.Cols - 1) / array.Cols,
	}
	t.tiles = make([][]*Quantized, t.rowTiles)
	for r := 0; r < t.rowTiles; r++ {
		t.tiles[r] = make([]*Quantized, t.colTiles)
		r0 := r * array.Rows
		r1 := min(r0+array.Rows, rows)
		for c := 0; c < t.colTiles; c++ {
			c0 := c * array.Cols
			c1 := min(c0+array.Cols, cols)
			sub := tensor.New((r1 - r0) * (c1 - c0))
			for i := r0; i < r1; i++ {
				for j := c0; j < c1; j++ {
					sub.Data()[(i-r0)*(c1-c0)+(j-c0)] = w.Data()[i*cols+j]
				}
			}
			t.tiles[r][c] = NewQuantized(sub, r1-r0, c1-c0, bits)
		}
	}
	return t
}

// TileCount returns (rowTiles, colTiles) — Figure 5's partition shape.
func (t *TiledQuantized) TileCount() (int, int) { return t.rowTiles, t.colTiles }

// MatVec computes out_j = Σ_i x_i·w_ij across the tile grid: each row-tile
// slice of the input drives its row of arrays; per output column the
// row-tile partial counts are summed. Column tiles own disjoint output
// ranges, so they chunk across the worker pool; within a column tile the
// row-tile partials sum in ascending order — the serial accumulation order —
// keeping the result bit-identical for every worker count.
func (t *TiledQuantized) MatVec(x *tensor.Tensor) *tensor.Tensor {
	if x.Size() != t.Rows {
		panic(fmt.Sprintf("arch: MatVec input has %d elems for %d rows (matrix is %dx%d)", x.Size(), t.Rows, t.Rows, t.Cols))
	}
	out := tensor.New(t.Cols)
	// One input slice per row tile, shared read-only by every column tile.
	slices := make([]*tensor.Tensor, t.rowTiles)
	for r := 0; r < t.rowTiles; r++ {
		r0 := r * t.Array.Rows
		r1 := min(r0+t.Array.Rows, t.Rows)
		slices[r] = tensor.FromSlice(x.Data()[r0:r1], r1-r0)
	}
	parallel.Default().For(t.colTiles, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			c0 := c * t.Array.Cols
			for r := 0; r < t.rowTiles; r++ {
				part := t.tiles[r][c].MatVec(slices[r])
				for j, v := range part.Data() {
					out.Data()[c0+j] += v
				}
			}
		}
	})
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
