package arch

import "pipelayer/internal/telemetry/flight"

// WithFlight returns a shallow clone of the quantized array that records its
// crossbar readouts as flight-recorder spans on the given track. The clone
// shares the programmed code arrays (and fault state) with the original —
// programming is done once, per the paper's weight-stationary design — so
// each serving replica can carry its own recorder/track attribution over the
// same conductances at zero memory cost. A nil recorder returns q unchanged.
//
// The clone never reads wall-clock time itself: timestamps come from the
// recorder's injected clock, which is how this package stays clean under the
// nondeterminism analyzer while still emitting per-readout spans.
func (q *Quantized) WithFlight(rec *flight.Recorder, track uint64) *Quantized {
	if rec == nil || q == nil {
		return q
	}
	c := *q
	c.flightRec = rec
	c.flightTrack = track
	return &c
}
