// Package arch assembles the PipeLayer machine from its substrates: tiled
// crossbar engines per layer (Figure 9's overall architecture), the
// error-backward datapaths of Section 4.3 (Figure 10/11), the weight-update
// read–modify–write of Section 4.4 (Figure 14b), and the Table 1 cycle
// operation breakdown. A Machine runs full-network analog inference and
// exposes the same accuracy interface as the float framework, so functional
// fidelity is directly measurable.
package arch

import (
	"fmt"
	"math"

	"pipelayer/internal/fixed"
	"pipelayer/internal/parallel"
	"pipelayer/internal/reram"
	"pipelayer/internal/telemetry/flight"
	"pipelayer/internal/tensor"
)

// Quantized is the fast functional model of a programmed ResolutionArray:
// weights and inputs are reduced to the same integer codes the crossbars
// hold, but the integer dot products are evaluated numerically instead of
// spike-by-spike. The two paths are provably identical (the spike package's
// DotProduct property test shows count == exact integer product), so the
// fast model preserves bit-exact functional behaviour at a fraction of the
// simulation cost; TestQuantizedMatchesSpikePath cross-checks them.
type Quantized struct {
	Rows, Cols int
	// codes holds the signed 16-bit weight codes (row-major).
	codes []int32
	// colCodes holds the same codes column-major, so the per-bit-line
	// (per-output-column) readout streams contiguously — the layout the
	// worker pool parallelizes over.
	colCodes []float64
	// scale maps code ±65535 to the analog magnitude ±wMax.
	scale float64
	// Bits is the input spike resolution.
	Bits int
	// faults is the optional fault-injection state (see faults.go); nil
	// means the ideal model with zero overhead on the read path.
	faults *qFaults
	// flightRec/flightTrack are the optional per-readout span attribution
	// (see WithFlight); a nil recorder costs one pointer test per readout.
	flightRec   *flight.Recorder
	flightTrack uint64
}

// NewQuantized programs a (rows×cols) float weight matrix at 16-bit signed
// resolution with the given input bit width.
func NewQuantized(w *tensor.Tensor, rows, cols, bits int) *Quantized {
	if w.Size() != rows*cols {
		panic(fmt.Sprintf("arch: weight tensor has %d elems for %dx%d", w.Size(), rows, cols))
	}
	q := &Quantized{Rows: rows, Cols: cols, Bits: bits, codes: make([]int32, rows*cols)}
	q.Program(w)
	return q
}

// Program (re)writes the weights, refreshing the scale — the same code
// assignment as reram.ResolutionArray.Program. Both the row-major and the
// column-major code layouts are refreshed.
func (q *Quantized) Program(w *tensor.Tensor) {
	q.scale = w.AbsMax()
	if q.scale == 0 {
		q.scale = 1
	}
	if len(q.colCodes) != q.Rows*q.Cols {
		q.colCodes = make([]float64, q.Rows*q.Cols)
	}
	for i, v := range w.Data() {
		mag := math.Round(math.Abs(v) / q.scale * math.MaxUint16)
		if v >= 0 {
			q.codes[i] = int32(mag)
		} else {
			q.codes[i] = -int32(mag)
		}
		// float64(int32) is exact, so the transposed float mirror produces
		// bit-identical products to the int32 path.
		q.colCodes[(i%q.Cols)*q.Rows+i/q.Cols] = float64(q.codes[i])
	}
	if q.faults != nil {
		q.faults.refresh(q)
	}
}

// Scale returns the analog magnitude of the full-scale code.
func (q *Quantized) Scale() float64 { return q.scale }

// WeightCode returns the signed 16-bit code of one weight.
func (q *Quantized) WeightCode(row, col int) int32 { return q.codes[row*q.Cols+col] }

// MatVec computes out_j = Σ_i x_i·w_ij through the quantized datapath:
// inputs quantized to Bits-bit codes (signed inputs via the two-pass
// positive/negative mechanism), integer accumulation, rescale. Output
// columns are the parallel unit — each bit line integrates its own dot
// product, exactly the per-column independence the spike-domain hardware
// has — and every column accumulates over rows in ascending order, so the
// result is bit-identical for any worker count.
func (q *Quantized) MatVec(x *tensor.Tensor) *tensor.Tensor {
	if x.Size() != q.Rows {
		panic(fmt.Sprintf("arch: MatVec input has %d elems for %d rows (array is %dx%d)", x.Size(), q.Rows, q.Rows, q.Cols))
	}
	t0 := q.flightRec.Now()
	out := tensor.New(q.Cols)
	xScale := x.AbsMax()
	if xScale == 0 {
		return out
	}
	maxIn := float64(uint64(1)<<uint(q.Bits) - 1)
	// Quantize the input vector once (shared across every bit line, like the
	// physical word-line drivers), then integrate the columns in parallel.
	xc := make([]float64, q.Rows)
	for i, v := range x.Data() {
		code := math.Round(math.Abs(v) / xScale * maxIn)
		if v < 0 {
			code = -code
		}
		xc[i] = code
	}
	k := xScale / maxIn * q.scale / math.MaxUint16
	f := q.faults
	parallel.Default().For(q.Cols, parallel.Grain(q.Rows), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			col := q.colCodes[j*q.Rows : (j+1)*q.Rows]
			if f != nil {
				// The effective readout folds in stuck cells, remap and
				// degrade; drift scales every analog column (degraded
				// columns are computed digitally and do not drift).
				col = f.eff[j*q.Rows : (j+1)*q.Rows]
			}
			s := 0.0
			for i, w := range col {
				if xc[i] == 0 {
					continue
				}
				s += xc[i] * w
			}
			if f != nil && f.drift != 1 && f.class[j] != reram.ColDegraded {
				s *= f.drift
			}
			out.Data()[j] = s * k
		}
	})
	q.flightRec.Record("arch_readout", 0, q.flightTrack, t0, int64(q.Cols))
	return out
}

// Segments returns the four 4-bit cell codes for one weight (positive or
// negative array per sign), for inspection and the update unit.
func (q *Quantized) Segments(row, col int) (segs [fixed.Groups]uint8, negative bool) {
	c := q.codes[row*q.Cols+col]
	negative = c < 0
	if negative {
		c = -c
	}
	return fixed.Decompose16(uint16(c)), negative
}
