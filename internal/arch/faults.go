package arch

import (
	"pipelayer/internal/fault"
	"pipelayer/internal/fixed"
	"pipelayer/internal/reram"
)

// Fault support for the fast functional model. A Quantized array with an
// attached fault.Injector mirrors the device-level fault semantics of
// internal/reram at the resolution the functional model works at: every
// 16-bit weight is physically 8 nibble cells (4 resolution groups × pos/neg
// array), so the stuck-at map is drawn per nibble slot and corrupted weights
// are recomposed nibble-wise. Endurance and transient write failures act on
// the weight cell (the 8-nibble group programs as one unit); a dead cell
// freezes at the codes it last held. Spare columns, remapping and the
// digital-emulation degrade follow the same policy as reram.SignedPair, and
// the two layers share the reram.ColumnState classification.
//
// All fault state mutates inside Program/AttachFaults/Tick only — serial in
// every execution path — so the parallel MatVec readout stays race-free and
// bit-identical across worker counts.

// nibblesPerCell is the number of physical ReRAM cells behind one 16-bit
// weight: fixed.Groups 4-bit slices in each of the pos/neg arrays.
const nibblesPerCell = fixed.Groups * 2

// qFaults is the fault state of one Quantized array.
type qFaults struct {
	inj      *fault.Injector
	id       uint64
	physCols int // Cols + spares
	// stuck forces a nibble slot to 0 (stuck-off) or 15 (stuck-on);
	// stuckCells marks weight cells owning at least one stuck nibble.
	stuck      map[int]uint8
	stuckCells map[int]bool
	// frozen marks weight cells dead from wear-out or retry exhaustion;
	// phys holds the signed code every physical weight cell actually
	// carries (frozen cells stop tracking new programs).
	frozen map[int]bool
	phys   []int32
	writes []int64
	// remap/class/nextSpare implement spare-column repair per logical column.
	remap     []int
	class     []reram.ColumnState
	nextSpare int
	// eff is the column-major effective readout (stuck overrides applied,
	// remap resolved, degraded columns ideal) the MatVec hot loop consumes.
	eff   []float64
	age   int64
	drift float64
}

// AttachFaults wires the injector into the array under the given array id,
// builds the static stuck-at map, and re-programs the current weights through
// the fault path. Returns the number of stuck nibble cells. A nil injector
// detaches. Callers must pick a unique id per array.
func (q *Quantized) AttachFaults(inj *fault.Injector, id uint64) int {
	if inj == nil {
		q.faults = nil
		return 0
	}
	cfg := inj.Config()
	f := &qFaults{
		inj:        inj,
		id:         id,
		physCols:   q.Cols + cfg.Spares,
		stuck:      make(map[int]uint8),
		stuckCells: make(map[int]bool),
		frozen:     make(map[int]bool),
		remap:      make([]int, q.Cols),
		class:      make([]reram.ColumnState, q.Cols),
		eff:        make([]float64, q.Rows*q.Cols),
		drift:      1,
	}
	f.phys = make([]int32, q.Rows*f.physCols)
	f.writes = make([]int64, q.Rows*f.physCols)
	for j := range f.remap {
		f.remap[j] = j
	}
	n := 0
	for cell := 0; cell < q.Rows*f.physCols; cell++ {
		for k := 0; k < nibblesPerCell; k++ {
			slot := cell*nibblesPerCell + k
			switch inj.StuckAt(id, slot) {
			case fault.StuckOff:
				f.stuck[slot] = 0
			case fault.StuckOn:
				f.stuck[slot] = reram.MaxCellCode
			default:
				continue
			}
			f.stuckCells[cell] = true
			n++
		}
	}
	inj.NoteInjected(int64(n))
	q.faults = f
	f.refresh(q)
	return n
}

// Faulty reports whether a fault injector is attached.
func (q *Quantized) Faulty() bool { return q.faults != nil }

// ColumnStates returns the per-logical-column fault classification (all
// healthy without an injector).
func (q *Quantized) ColumnStates() []reram.ColumnState {
	out := make([]reram.ColumnState, q.Cols)
	if q.faults != nil {
		copy(out, q.faults.class)
	}
	return out
}

// Tick advances the array's drift age by n compute cycles. Call only from
// serial sections, never concurrently with MatVec.
func (q *Quantized) Tick(n int64) {
	if f := q.faults; f != nil && f.inj.Config().Drift > 0 && n > 0 {
		f.age += n
		f.drift = f.inj.DriftFactor(f.age)
	}
}

// refresh pushes the array's intended codes through the fault model: every
// live column is (re)written to its mapped physical column, damage found by
// the writes triggers remapping/degrading, the effective readout is rebuilt,
// and the drift clock restarts (a full reprogram restores conductances).
func (f *qFaults) refresh(q *Quantized) {
	for j := 0; j < q.Cols; j++ {
		if f.class[j] == reram.ColDegraded {
			continue // emulated digitally; no point wearing dead silicon
		}
		f.programColumn(q, j, f.remap[j])
	}
	f.reclassify(q)
	f.rebuild(q)
	f.age, f.drift = 0, 1
}

// programColumn writes logical column j into physical column phys, one
// weight cell at a time through the endurance/transient-failure model.
func (f *qFaults) programColumn(q *Quantized, j, phys int) {
	cfg := f.inj.Config()
	for r := 0; r < q.Rows; r++ {
		cell := r*f.physCols + phys
		if f.frozen[cell] {
			continue
		}
		code := q.codes[r*q.Cols+j]
		for attempt := 1; ; attempt++ {
			f.writes[cell]++
			if cfg.Endurance > 0 && f.writes[cell] > cfg.Endurance {
				f.frozen[cell] = true
				f.inj.NoteWornOut(1)
				break
			}
			if !f.inj.WriteFails(f.id, cell, f.writes[cell]) {
				f.phys[cell] = code
				break
			}
			if attempt > cfg.Retries {
				f.frozen[cell] = true
				f.inj.NoteWriteFailed(1)
				break
			}
			f.inj.NoteRetried(1)
		}
	}
}

// cellDamaged reports whether a physical weight cell cannot faithfully hold
// arbitrary codes.
func (f *qFaults) cellDamaged(cell int) bool {
	return f.stuckCells[cell] || f.frozen[cell]
}

// columnFaulty reports whether any weight cell of the physical column is
// damaged — the repair trigger.
func (f *qFaults) columnFaulty(q *Quantized, phys int) bool {
	for r := 0; r < q.Rows; r++ {
		if f.cellDamaged(r*f.physCols + phys) {
			return true
		}
	}
	return false
}

// reclassify applies the spare-column repair policy after a program: faulty
// live columns move to the next healthy spare (and are written there); once
// spares run out the column degrades to digital emulation or — with degrade
// disabled — is left corrupt. Degraded/corrupt are terminal; a remapped
// column whose spare later dies is rerouted again.
func (f *qFaults) reclassify(q *Quantized) {
	spares := f.physCols - q.Cols
	for j := 0; j < q.Cols; j++ {
		if f.class[j] == reram.ColDegraded || f.class[j] == reram.ColCorrupt {
			continue
		}
		if !f.columnFaulty(q, f.remap[j]) {
			continue
		}
		remapped := false
		for f.nextSpare < spares {
			phys := q.Cols + f.nextSpare
			f.nextSpare++
			if f.columnFaulty(q, phys) {
				continue // spare born bad — skip it for good
			}
			f.remap[j] = phys
			f.class[j] = reram.ColRemapped
			f.inj.NoteRemapped(1)
			f.programColumn(q, j, phys)
			remapped = true
			break
		}
		if remapped {
			continue
		}
		if f.inj.Config().Degrade {
			f.class[j] = reram.ColDegraded
			f.inj.NoteDegraded(1)
		} else {
			f.class[j] = reram.ColCorrupt
			f.inj.NoteCorrupted(1)
		}
	}
}

// effCode returns the effective signed code a physical weight cell reads as:
// the code it holds, with any stuck nibbles forced in the recomposition.
func (f *qFaults) effCode(cell int) float64 {
	c := f.phys[cell]
	if !f.stuckCells[cell] {
		return float64(c)
	}
	neg := c < 0
	mag := c
	if neg {
		mag = -mag
	}
	segs := fixed.Decompose16(uint16(mag))
	var posN, negN [fixed.Groups]uint8
	if neg {
		negN = segs
	} else {
		posN = segs
	}
	base := cell * nibblesPerCell
	e := int32(0)
	for g := 0; g < fixed.Groups; g++ {
		if v, ok := f.stuck[base+2*g]; ok {
			posN[g] = v
		}
		if v, ok := f.stuck[base+2*g+1]; ok {
			negN[g] = v
		}
		e += (int32(posN[g]) - int32(negN[g])) << uint(fixed.CellBits*g)
	}
	return float64(e)
}

// rebuild refreshes the column-major effective readout: degraded columns use
// the ideal intended codes (digital emulation), everything else reads its
// mapped physical column through the stuck overrides.
func (f *qFaults) rebuild(q *Quantized) {
	for j := 0; j < q.Cols; j++ {
		col := f.eff[j*q.Rows : (j+1)*q.Rows]
		if f.class[j] == reram.ColDegraded {
			for r := range col {
				col[r] = float64(q.codes[r*q.Cols+j])
			}
			continue
		}
		phys := f.remap[j]
		for r := 0; r < q.Rows; r++ {
			col[r] = f.effCode(r*f.physCols + phys)
		}
	}
}
