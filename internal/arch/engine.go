package arch

import (
	"fmt"

	"pipelayer/internal/fault"
	"pipelayer/internal/nn"
	"pipelayer/internal/parallel"
	"pipelayer/internal/reram"
	"pipelayer/internal/tensor"
)

// Machine is a PipeLayer inference machine: the layer engines of Figure 9
// assembled from a trained float network, with weights programmed into
// quantized crossbar models, activation components applying ReLU, max
// registers realizing max pooling, and memory subarrays carrying the
// intermediate d values between layers.
type Machine struct {
	Name    string
	engines []engine
	// Bank holds the inter-layer intermediates, keyed by engine name.
	Bank *reram.MemoryBank
}

// engine is one pipeline stage.
type engine interface {
	name() string
	forward(x *tensor.Tensor) *tensor.Tensor
}

// convEngine maps one convolution layer onto crossbars: the im2col columns
// are the spike-coded input vectors, the kernel matrix is the programmed
// weight array (Figure 4/5 mapping), bias is accumulated digitally, and the
// activation component applies ReLU.
type convEngine struct {
	id                  string
	inC, inH, inW, outC int
	k, stride, pad      int
	arrays              *Quantized // (inC·k·k) × outC
	bias                []float64
	act                 *reram.ActivationUnit
}

func (e *convEngine) name() string { return e.id }

func (e *convEngine) forward(x *tensor.Tensor) *tensor.Tensor {
	cols := tensor.Im2Col(x, e.k, e.k, e.stride, e.pad)
	oh := tensor.ConvOutDim(e.inH, e.k, e.stride, e.pad)
	ow := tensor.ConvOutDim(e.inW, e.k, e.stride, e.pad)
	nwin := oh * ow
	out := tensor.New(e.outC, oh, ow)
	rows := cols.Dim(0)
	// Windows are the paper's intra-layer duplicates (Section 3.2.3): each
	// chunk owns a private input-vector buffer and activation-unit clone, and
	// every window writes a disjoint slice of out, so results are
	// bit-identical to the serial scan.
	parallel.Default().For(nwin, parallel.Grain(rows*e.outC), func(lo, hi int) {
		vec := tensor.New(rows)
		act := e.act.Clone()
		for w := lo; w < hi; w++ {
			for i := 0; i < rows; i++ {
				vec.Data()[i] = cols.At(i, w)
			}
			y := e.arrays.MatVec(vec)
			for c := 0; c < e.outC; c++ {
				v := act.Process(y.At(c)+e.bias[c], 0)
				out.Data()[c*nwin+w] = v
			}
		}
	})
	return out
}

// denseEngine maps an inner-product layer onto one logical weight array.
type denseEngine struct {
	id      string
	in, out int
	arrays  *Quantized // in × out
	bias    []float64
	act     *reram.ActivationUnit
	relu    bool
}

func (e *denseEngine) name() string { return e.id }

func (e *denseEngine) forward(x *tensor.Tensor) *tensor.Tensor {
	y := e.arrays.MatVec(x.Reshape(e.in))
	out := tensor.New(e.out)
	for j := 0; j < e.out; j++ {
		v := y.At(j) + e.bias[j]
		if e.relu {
			v = e.act.Process(v, 0)
		}
		out.Data()[j] = v
	}
	return out
}

// poolEngine realizes max pooling with the activation component's max
// register (Section 4.2.3): the window's values stream through Process and
// MaxAndReset emits the pooled value.
type poolEngine struct {
	id            string
	inC, inH, inW int
	k             int
	act           *reram.ActivationUnit
}

func (e *poolEngine) name() string { return e.id }

func (e *poolEngine) forward(x *tensor.Tensor) *tensor.Tensor {
	oh, ow := e.inH/e.k, e.inW/e.k
	out := tensor.New(e.inC, oh, ow)
	// Channels pool independently; each chunk streams through its own
	// activation-unit clone so the max registers never interleave.
	parallel.Default().For(e.inC, parallel.Grain(oh*ow*e.k*e.k), func(lo, hi int) {
		act := e.act.Clone()
		for c := lo; c < hi; c++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					for ky := 0; ky < e.k; ky++ {
						for kx := 0; kx < e.k; kx++ {
							act.Process(x.At(c, oy*e.k+ky, ox*e.k+kx), 0)
						}
					}
					out.Set(act.MaxAndReset(), c, oy, ox)
				}
			}
		}
	})
	return out
}

// BuildMachine programs a trained float network onto the PipeLayer machine.
// Supported layer sequence: Conv (+ReLU), MaxPool, Dense (+ReLU); this
// covers every trainable network in the zoo. spikeBits is the input
// resolution (16 by default, Section 5.1).
func BuildMachine(net *nn.Network, spikeBits int) *Machine {
	return BuildMachineFaults(net, spikeBits, nil)
}

// BuildMachineFaults is BuildMachine with a fault injector wired into every
// weight array: the k-th weighted layer's array gets array id k in the
// injector's deterministic draw space. A nil injector yields the ideal
// machine.
func BuildMachineFaults(net *nn.Network, spikeBits int, inj *fault.Injector) *Machine {
	m := &Machine{Name: net.Name, Bank: reram.NewMemoryBank()}
	arrayID := uint64(0)
	attach := func(q *Quantized) *Quantized {
		if inj != nil {
			q.AttachFaults(inj, arrayID)
			arrayID++
		}
		return q
	}
	layers := net.Layers
	for i := 0; i < len(layers); i++ {
		switch l := layers[i].(type) {
		case *nn.Conv:
			inC, inH, inW, outC, k, stride, pad := l.Geometry()
			wmat := l.Weights().Value.Reshape(outC, inC*k*k)
			// Fuse a directly following ReLU into the activation unit;
			// any other activation gets its own LUT stage, so the conv
			// engine's unit runs in bypass.
			act := reram.NewActivationUnit(nil)
			if i+1 < len(layers) {
				if _, ok := layers[i+1].(*nn.ReLU); ok {
					act = reram.NewActivationUnit(reram.ReLULUT())
					i++
				}
			}
			// Crossbar layout is (inputs × bit lines): transpose to rows=CKK.
			e := &convEngine{
				id:  l.Name(),
				inC: inC, inH: inH, inW: inW, outC: outC,
				k: k, stride: stride, pad: pad,
				arrays: attach(NewQuantized(tensor.Transpose(wmat), inC*k*k, outC, spikeBits)),
				bias:   append([]float64(nil), l.Bias().Value.Data()...),
				act:    act,
			}
			m.engines = append(m.engines, e)
		case *nn.Dense:
			relu := false
			if i+1 < len(layers) {
				if _, ok := layers[i+1].(*nn.ReLU); ok {
					relu = true
				}
			}
			e := &denseEngine{
				id: l.Name(), in: l.In(), out: l.Out(),
				arrays: attach(NewQuantized(tensor.Transpose(l.Weights().Value), l.In(), l.Out(), spikeBits)),
				bias:   append([]float64(nil), l.Bias().Value.Data()...),
				act:    reram.NewActivationUnit(reram.ReLULUT()),
				relu:   relu,
			}
			m.engines = append(m.engines, e)
			if relu {
				i++
			}
		case *nn.MaxPool:
			inC, inH, inW, k := l.Geometry()
			m.engines = append(m.engines, &poolEngine{
				id: l.Name(), inC: inC, inH: inH, inW: inW, k: k,
				act: reram.NewActivationUnit(nil),
			})
		case *nn.AvgPool:
			inC, inH, inW, k := l.Geometry()
			m.engines = append(m.engines, newAvgPoolEngine(l.Name(), inC, inH, inW, k))
		case *nn.Sigmoid:
			// The configurable LUT of Section 4.2.3 realizes the sigmoid.
			m.engines = append(m.engines, newLUTEngine(l.Name(), reram.SigmoidLUT(4096)))
		case *nn.ReLU:
			// A ReLU not directly after a weighted layer (should not occur in
			// the zoo) gets its own activation pass.
			id := l.Name()
			m.engines = append(m.engines, &funcEngine{id: id, f: func(x *tensor.Tensor) *tensor.Tensor {
				act := reram.NewActivationUnit(reram.ReLULUT())
				out := tensor.New(x.Shape()...)
				for i, v := range x.Data() {
					out.Data()[i] = act.Process(v, 0)
				}
				return out
			}})
		default:
			panic(fmt.Sprintf("arch: unsupported layer type %T in %s", l, net.Name))
		}
	}
	return m
}

// funcEngine wraps a plain function as a stage.
type funcEngine struct {
	id string
	f  func(*tensor.Tensor) *tensor.Tensor
}

func (e *funcEngine) name() string                            { return e.id }
func (e *funcEngine) forward(x *tensor.Tensor) *tensor.Tensor { return e.f(x) }

// newLUTEngine builds an elementwise activation stage from a LUT — the
// hardware path for non-rectifier activations.
func newLUTEngine(id string, lut *reram.LUT) *funcEngine {
	act := reram.NewActivationUnit(lut)
	return &funcEngine{id: id, f: func(x *tensor.Tensor) *tensor.Tensor {
		out := tensor.New(x.Shape()...)
		for i, v := range x.Data() {
			out.Data()[i] = act.Activate(v)
		}
		return out
	}}
}

// newAvgPoolEngine builds an average-pooling stage (Equation 2): window
// sums divided by K², a shift when K² is a power of two.
func newAvgPoolEngine(id string, inC, inH, inW, k int) *funcEngine {
	return &funcEngine{id: id, f: func(x *tensor.Tensor) *tensor.Tensor {
		oh, ow := inH/k, inW/k
		out := tensor.New(inC, oh, ow)
		inv := 1.0 / float64(k*k)
		for c := 0; c < inC; c++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							s += x.At(c, oy*k+ky, ox*k+kx)
						}
					}
					out.Set(s*inv, c, oy, ox)
				}
			}
		}
		return out
	}}
}

// Forward runs analog inference, staging every intermediate through the
// memory bank exactly as the connection component does between cycles.
func (m *Machine) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, e := range m.engines {
		x = e.forward(x)
		m.Bank.Write(e.name(), x)
	}
	return x
}

// Predict returns the argmax class of the analog output scores.
func (m *Machine) Predict(x *tensor.Tensor) int {
	y := m.Forward(x)
	_, idx := y.Max()
	return idx
}

// Accuracy evaluates top-1 accuracy over samples.
func (m *Machine) Accuracy(samples []nn.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if m.Predict(s.Input) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// Engines returns the stage names in order.
func (m *Machine) Engines() []string {
	var names []string
	for _, e := range m.engines {
		names = append(names, e.name())
	}
	return names
}
