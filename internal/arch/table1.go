package arch

// Table 1 of the paper: the break of operations within one logical cycle for
// the four cycle cases. The cycle time must fit the longest sequence
// (Section 3.1); the pipeline simulator's TrainingCycleFactor reflects the
// longer backward chains.

// CycleOp is one micro-operation of a cycle.
type CycleOp string

// The component sequence of Figure 9.
const (
	OpMemoryRead      CycleOp = "memory-read"
	OpSpikeDrive      CycleOp = "spike-drive"
	OpMorphableMMV    CycleOp = "morphable-matrix-vector"
	OpIntegrateFire   CycleOp = "integrate-and-fire"
	OpActivation      CycleOp = "activation"
	OpMemoryWrite     CycleOp = "memory-write"
	OpWeightReadOld   CycleOp = "weight-read-old"
	OpSubtractorWrite CycleOp = "subtract-and-program"
)

// CycleCase is one row of Table 1.
type CycleCase struct {
	// Name identifies the case.
	Name string
	// Reads / Writes name the data each case touches (in terms of the
	// paper's d, δ, ∂ symbols).
	Reads, Writes string
	// Ops is the in-cycle operation sequence.
	Ops []CycleOp
}

// Table1 returns the four cycle cases: forward, backward error for the last
// layer, backward error + partial derivative for inner layers, and the
// weight-update cycle.
func Table1(L int) []CycleCase {
	return []CycleCase{
		{
			Name:  "forward",
			Reads: "d_{l-1}", Writes: "d_l",
			Ops: []CycleOp{OpMemoryRead, OpSpikeDrive, OpMorphableMMV, OpIntegrateFire, OpActivation, OpMemoryWrite},
		},
		{
			Name:  "backward-last",
			Reads: "d_L, labels", Writes: "δ_L, ∂b_L",
			Ops: []CycleOp{OpMemoryRead, OpActivation, OpMemoryWrite},
		},
		{
			Name:  "backward-inner",
			Reads: "δ_{l+1}; d_l and δ_{l+1}", Writes: "δ_l; ∂W_{l+1}, ∂b_{l+1}",
			Ops: []CycleOp{
				OpMemoryRead, OpSpikeDrive, OpMorphableMMV, OpIntegrateFire, OpActivation, OpMemoryWrite,
				// The derivative computation A_l2(d_l, δ) runs in the same
				// cycle through a second array pass.
				OpSpikeDrive, OpMorphableMMV, OpIntegrateFire, OpMemoryWrite,
			},
		},
		{
			Name:  "update",
			Reads: "∂W_l (averaged by 1/B spikes), old W_l", Writes: "new W_l",
			Ops: []CycleOp{OpMemoryRead, OpWeightReadOld, OpSubtractorWrite},
		},
	}
}

// LongestCase returns the case with the most operations — the one the cycle
// time must accommodate.
func LongestCase(cases []CycleCase) CycleCase {
	best := cases[0]
	for _, c := range cases[1:] {
		if len(c.Ops) > len(best.Ops) {
			best = c
		}
	}
	return best
}
