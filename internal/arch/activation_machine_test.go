package arch

import (
	"math"
	"math/rand"
	"testing"

	"pipelayer/internal/mapping"
	"pipelayer/internal/networks"
	"pipelayer/internal/nn"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

// trainDigits generates a flat training set for the sigmoid sanity test.
func trainDigits(n int) []nn.Sample {
	return testutil.FlatSamples(n, 44)
}

// sigmoidSpec is an MLP with sigmoid hidden activation — exercising the
// configurable-LUT path of the activation component (Section 4.2.3).
func sigmoidSpec() networks.Spec {
	return networks.Spec{
		Name: "sig-mlp", InC: 1, InH: 28, InW: 28, Classes: 10,
		Layers: []mapping.Layer{
			mapping.FC("fc1", 784, 32).WithActivation(mapping.ActSigmoid),
			mapping.FC("fc2", 32, 10),
		},
	}
}

func TestMachineSigmoidLUTFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := networks.BuildTrainable(sigmoidSpec(), rng)
	m := BuildMachine(net, 16)
	// fc1 (no fusion) + sigmoid LUT stage + fc2 = 3 engines.
	if got := len(m.Engines()); got != 3 {
		t.Fatalf("engines = %v", m.Engines())
	}
	x := tensor.New(784).RandUniform(rng, 0, 1)
	yf := net.Forward(x)
	ya := m.Forward(x)
	for i := 0; i < 10; i++ {
		if math.Abs(yf.At(i)-ya.At(i)) > 0.03*(1+math.Abs(yf.At(i))) {
			t.Fatalf("score %d: float %g vs LUT machine %g", i, yf.At(i), ya.At(i))
		}
	}
}

// avgSpec uses average pooling — Equation 2's datapath.
func avgSpec() networks.Spec {
	return networks.Spec{
		Name: "avg-cnn", InC: 1, InH: 28, InW: 28, Classes: 10,
		Layers: []mapping.Layer{
			mapping.Conv("conv1", 1, 28, 28, 6, 5, 1, 0), // -> 6×24×24
			mapping.AvgPool("pool1", 6, 24, 24, 2),       // -> 6×12×12
			mapping.FC("fc", 6*12*12, 10),
		},
	}
}

func TestMachineAvgPoolFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	net := networks.BuildTrainable(avgSpec(), rng)
	m := BuildMachine(net, 16)
	x := tensor.New(1, 28, 28).RandUniform(rng, 0, 1)
	yf := net.Forward(x)
	ya := m.Forward(x)
	for i := 0; i < 10; i++ {
		if math.Abs(yf.At(i)-ya.At(i)) > 0.03*(1+math.Abs(yf.At(i))) {
			t.Fatalf("score %d: float %g vs machine %g", i, yf.At(i), ya.At(i))
		}
	}
}

func TestSigmoidNetworkTrains(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(23))
	net := networks.BuildTrainable(sigmoidSpec(), rng)
	// XOR-style sanity: the sigmoid MLP must learn the synthetic digits at
	// least moderately.
	first := 0.0
	var last float64
	for e := 0; e < 6; e++ {
		loss := net.TrainEpoch(trainDigits(300), 10, 0.3)
		if e == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("sigmoid net loss did not decrease: %g -> %g", first, last)
	}
}
