package arch

import (
	"testing"

	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

func digitVecs(n int) []*tensor.Tensor {
	samples := testutil.FlatSamples(n, 44)
	vecs := make([]*tensor.Tensor, n)
	for i, s := range samples {
		vecs[i] = s.Input
	}
	return vecs
}

// BenchmarkMatVecSerial16 and BenchmarkMatVecCols16 are the kernel-level half
// of the serving throughput story: sixteen synthetic-digit inputs through the
// 784×48 array one at a time versus one batched readout.
func BenchmarkMatVecSerial16(b *testing.B) {
	q := NewQuantized(randTensor(784*48, 1), 784, 48, 16)
	vecs := digitVecs(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vecs {
			q.MatVec(v)
		}
	}
}

func BenchmarkMatVecCols16(b *testing.B) {
	q := NewQuantized(randTensor(784*48, 1), 784, 48, 16)
	x := PackCols(digitVecs(16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.MatVecCols(x)
	}
}
