package arch

import (
	"math/rand"
	"testing"

	"pipelayer/internal/nn"
	"pipelayer/internal/reram"
	"pipelayer/internal/tensor"
)

// The capstone fidelity check: a whole (tiny) network inferred through the
// true spike-by-spike crossbar simulation — weighted spike trains driven
// into ResolutionArrays, Integration-and-Fire counting, shift-add of the
// four 4-bit groups, D_P − D_N subtraction — must match the fast quantized
// machine bit for bit at every layer, end to end.
func TestSpikeExactEndToEndInference(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const bits = 8

	// A 2-layer MLP small enough for the O(rows·cols·bits·8) spike path.
	in, hid, out := 16, 6, 4
	net := nn.NewNetwork("tiny", []int{in}, out, nn.SoftmaxLoss{},
		nn.NewDense("fc1", in, hid, rng),
		nn.NewReLU("r1"),
		nn.NewDense("fc2", hid, out, rng),
	)
	fast := BuildMachine(net, bits)

	// Spike-exact path: one ResolutionArray per dense layer.
	dense1 := net.Layers[0].(*nn.Dense)
	dense2 := net.Layers[2].(*nn.Dense)
	ra1 := reram.NewResolutionArray(tensor.Transpose(dense1.Weights().Value), in, hid, 0, nil)
	ra2 := reram.NewResolutionArray(tensor.Transpose(dense2.Weights().Value), hid, out, 0, nil)
	act := reram.NewActivationUnit(reram.ReLULUT())

	spikeForward := func(x *tensor.Tensor) *tensor.Tensor {
		h := ra1.MatVecFloat(x, bits)
		h.AddInPlace(dense1.Bias().Value)
		for i, v := range h.Data() {
			h.Data()[i] = act.Activate(v)
		}
		y := ra2.MatVecFloat(h, bits)
		y.AddInPlace(dense2.Bias().Value)
		return y
	}

	for trial := 0; trial < 5; trial++ {
		x := tensor.New(in).RandUniform(rng, 0, 1)
		spikeY := spikeForward(x)
		fastY := fast.Forward(x)
		if !tensor.Equal(spikeY, fastY, 1e-12) {
			t.Fatalf("trial %d: spike-exact %v vs fast machine %v", trial, spikeY.Data(), fastY.Data())
		}
	}

	// The spike path actually fired: energy-relevant event counts are live.
	s := ra1.Stats()
	if s.InputSpikes == 0 || s.OutputSpikes == 0 || s.CellWrites == 0 {
		t.Fatalf("spike statistics empty: %+v", s)
	}
}
