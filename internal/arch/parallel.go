package arch

import (
	"sync/atomic"

	"pipelayer/internal/nn"
	"pipelayer/internal/parallel"
	"pipelayer/internal/reram"
)

// CloneShared returns a machine that shares the (read-only) programmed
// weight arrays with the receiver but owns fresh activation units and a
// fresh memory bank — the software analogue of replicating only the
// peripheral state so independent inputs can stream through copies of the
// same crossbars (the essence of the paper's weight replication, Section
// 3.2.3, applied to evaluation throughput).
func (m *Machine) CloneShared() *Machine {
	c := &Machine{Name: m.Name, Bank: reram.NewMemoryBank()}
	for _, e := range m.engines {
		switch t := e.(type) {
		case *convEngine:
			clone := *t // shares arrays (read-only) and bias slice
			clone.act = t.act.Clone()
			c.engines = append(c.engines, &clone)
		case *denseEngine:
			clone := *t
			clone.act = t.act.Clone()
			c.engines = append(c.engines, &clone)
		case *poolEngine:
			clone := *t
			clone.act = t.act.Clone()
			c.engines = append(c.engines, &clone)
		default:
			// funcEngine and future stateless stages can be shared as-is.
			c.engines = append(c.engines, e)
		}
	}
	return c
}

// AccuracyParallel evaluates top-1 accuracy across the samples using machine
// clones fanned out on the worker pool (workers ≤ 0 selects the process-wide
// pool, otherwise a dedicated pool of that size). The result is identical to
// Accuracy — the clones share immutable weight arrays and keep all mutable
// state private, and a correct-prediction count is order-independent.
func (m *Machine) AccuracyParallel(samples []nn.Sample, workers int) float64 {
	if len(samples) == 0 {
		return 0
	}
	pool := parallel.Default()
	if workers > 0 {
		pool = parallel.NewPool(workers)
	}
	if pool.Workers() == 1 {
		return m.Accuracy(samples)
	}
	var correct atomic.Int64
	pool.For(len(samples), 1, func(lo, hi int) {
		clone := m.CloneShared()
		n := 0
		for _, s := range samples[lo:hi] {
			if clone.Predict(s.Input) == s.Label {
				n++
			}
		}
		correct.Add(int64(n))
	})
	return float64(correct.Load()) / float64(len(samples))
}
