package arch

import (
	"runtime"
	"sync"

	"pipelayer/internal/nn"
	"pipelayer/internal/reram"
)

// CloneShared returns a machine that shares the (read-only) programmed
// weight arrays with the receiver but owns fresh activation units and a
// fresh memory bank — the software analogue of replicating only the
// peripheral state so independent inputs can stream through copies of the
// same crossbars (the essence of the paper's weight replication, Section
// 3.2.3, applied to evaluation throughput).
func (m *Machine) CloneShared() *Machine {
	c := &Machine{Name: m.Name, Bank: reram.NewMemoryBank()}
	for _, e := range m.engines {
		switch t := e.(type) {
		case *convEngine:
			clone := *t // shares arrays (read-only) and bias slice
			clone.act = reram.NewActivationUnit(reram.ReLULUT())
			c.engines = append(c.engines, &clone)
		case *denseEngine:
			clone := *t
			clone.act = reram.NewActivationUnit(reram.ReLULUT())
			c.engines = append(c.engines, &clone)
		case *poolEngine:
			clone := *t
			clone.act = reram.NewActivationUnit(nil)
			c.engines = append(c.engines, &clone)
		default:
			// funcEngine and future stateless stages can be shared as-is.
			c.engines = append(c.engines, e)
		}
	}
	return c
}

// AccuracyParallel evaluates top-1 accuracy across the samples using up to
// `workers` machine clones in parallel (workers ≤ 0 selects GOMAXPROCS).
// The result is identical to Accuracy — the clones share immutable weight
// arrays and keep all mutable state private.
func (m *Machine) AccuracyParallel(samples []nn.Sample, workers int) float64 {
	if len(samples) == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(samples) {
		workers = len(samples)
	}
	if workers == 1 {
		return m.Accuracy(samples)
	}

	var wg sync.WaitGroup
	correct := make([]int, workers)
	chunk := (len(samples) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(samples) {
			hi = len(samples)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			clone := m.CloneShared()
			for _, s := range samples[lo:hi] {
				if clone.Predict(s.Input) == s.Label {
					correct[w]++
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range correct {
		total += c
	}
	return float64(total) / float64(len(samples))
}
