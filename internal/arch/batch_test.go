package arch

import (
	"math/rand"
	"runtime"
	"testing"

	"pipelayer/internal/fault"
	"pipelayer/internal/parallel"
	"pipelayer/internal/tensor"
)

// TestMatVecColsBitIdentical: every column of the batched readout must match
// MatVec on that column alone, bit for bit — this is the contract the serving
// layer's "batched == serial" guarantee rests on. Covers zero columns (the
// serial path short-circuits them) and ragged shapes.
func TestMatVecColsBitIdentical(t *testing.T) {
	cases := []struct{ rows, cols, n int }{
		{1, 1, 1},
		{23, 11, 1},
		{23, 11, 5},
		{64, 17, 16},
		{7, 31, 3},
	}
	for _, tc := range cases {
		w := randTensor(tc.rows*tc.cols, int64(tc.rows*1000+tc.n))
		q := NewQuantized(w, tc.rows, tc.cols, 16)

		vecs := make([]*tensor.Tensor, tc.n)
		rng := rand.New(rand.NewSource(int64(tc.cols)))
		for c := range vecs {
			if c == 1 {
				vecs[c] = tensor.New(tc.rows) // all-zero input column
				continue
			}
			v := tensor.New(tc.rows)
			for i := range v.Data() {
				x := rng.NormFloat64()
				if rng.Intn(3) == 0 {
					x = 0 // exercise the zero-skip terms too
				}
				v.Data()[i] = x
			}
			vecs[c] = v
		}

		got := q.MatVecCols(PackCols(vecs))
		if got.Dim(0) != tc.cols || got.Dim(1) != tc.n {
			t.Fatalf("%dx%d n=%d: batched shape %v", tc.rows, tc.cols, tc.n, got.Shape())
		}
		for c, v := range vecs {
			want := q.MatVec(v)
			for j := 0; j < tc.cols; j++ {
				if got.At(j, c) != want.At(j) {
					t.Fatalf("%dx%d n=%d: out[%d] of column %d = %v, serial %v",
						tc.rows, tc.cols, tc.n, j, c, got.At(j, c), want.At(j))
				}
			}
		}
	}
}

// TestMatVecColsFaultyBitIdentical: the batched readout must consume the same
// effective conductances, drift factor and column states as the serial path,
// so batching composes with fault injection without changing a single bit.
func TestMatVecColsFaultyBitIdentical(t *testing.T) {
	const rows, cols, bits, n = 24, 13, 16, 6
	inj := fault.MustNew(fault.Config{
		Seed: 17, StuckOff: 0.002, StuckOn: 0.001,
		Drift: 0.05, Spares: 2, Degrade: true,
	})
	q := NewQuantized(randTensor(rows*cols, 21), rows, cols, bits)
	q.AttachFaults(inj, 1)
	q.Tick(1000) // age the array so drift != 1

	vecs := make([]*tensor.Tensor, n)
	for c := range vecs {
		vecs[c] = randTensor(rows, int64(100+c))
	}
	got := q.MatVecCols(PackCols(vecs))
	for c, v := range vecs {
		want := q.MatVec(v)
		for j := 0; j < cols; j++ {
			if got.At(j, c) != want.At(j) {
				t.Fatalf("faulty column %d out[%d] = %v, serial %v", c, j, got.At(j, c), want.At(j))
			}
		}
	}
}

// TestMatVecColsWorkersDeterministic: the batched readout is bit-identical
// across worker counts, like every other hot path in the repo.
func TestMatVecColsWorkersDeterministic(t *testing.T) {
	const rows, cols, n = 48, 29, 8
	q := NewQuantized(randTensor(rows*cols, 5), rows, cols, 16)
	x := PackCols(func() []*tensor.Tensor {
		vs := make([]*tensor.Tensor, n)
		for c := range vs {
			vs[c] = randTensor(rows, int64(c+1))
		}
		return vs
	}())

	saved := parallel.Workers()
	defer parallel.SetWorkers(saved)

	parallel.SetWorkers(1)
	want := q.MatVecCols(x)
	for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		parallel.SetWorkers(workers)
		if got := q.MatVecCols(x); !tensor.Equal(got, want, 0) {
			t.Fatalf("workers=%d: batched readout diverged from workers=1", workers)
		}
	}
}

// TestMatVecColsShapePanic: a row-count mismatch must fail loudly with the
// array geometry in the message, matching MatVec's contract.
func TestMatVecColsShapePanic(t *testing.T) {
	q := NewQuantized(randTensor(6, 1), 3, 2, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("MatVecCols accepted a mismatched input")
		}
	}()
	q.MatVecCols(tensor.New(4, 2))
}
