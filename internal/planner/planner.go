// Package planner is the granularity compiler of the paper's Section 5.2:
// "G can be set by programmer or automatically optimized by compiler". It
// chooses a per-layer parallelism granularity that minimizes the logical
// cycle time subject to an area budget — the balance the paper's Section
// 6.5 sweeps by hand with the λ knob.
//
// The algorithm is greedy critical-path relief: starting from G = 1
// everywhere, it repeatedly doubles the granularity of the layer that
// currently bounds the cycle time, as long as the training-configuration
// area stays within budget and the increase still helps. Because each
// layer's cycle time is convex non-increasing in G and the area is linear
// in G, the greedy schedule is within one doubling of the optimum on the
// critical layer.
package planner

import (
	"errors"

	"pipelayer/internal/energy"
	"pipelayer/internal/mapping"
	"pipelayer/internal/networks"
)

// Result is an optimized mapping with its cost summary.
type Result struct {
	Plans []mapping.Plan
	// CycleTime is the achieved logical cycle duration (seconds).
	CycleTime float64
	// AreaMM2 is the training-configuration area of the mapping.
	AreaMM2 float64
	// Iterations counts greedy steps taken.
	Iterations int
}

// Optimize chooses per-layer granularities for the network under the given
// area budget (mm², training configuration with the given batch). It
// returns an error only if even the all-G=1 mapping exceeds the budget.
func Optimize(model energy.Model, spec networks.Spec, array mapping.ArraySpec, batch int, areaBudget float64) (Result, error) {
	gs := make([]int, len(spec.Layers))
	for i, l := range spec.Layers {
		if l.UsesArrays() {
			gs[i] = 1
		}
	}
	build := func() []mapping.Plan {
		plans := make([]mapping.Plan, len(spec.Layers))
		for i, l := range spec.Layers {
			plans[i] = mapping.NewPlan(l, array, gs[i])
		}
		return plans
	}
	plans := build()
	area := model.Area(spec, plans, batch)
	if area > areaBudget {
		return Result{}, errors.New("planner: area budget below the minimum G=1 mapping")
	}

	iterations := 0
	for {
		// Find the critical layer.
		crit, worst := -1, model.CycleTime(nil) // floor: one array pass
		for i, p := range plans {
			if !p.Layer.UsesArrays() {
				continue
			}
			if t := model.LayerCycleTime(p); t > worst {
				worst, crit = t, i
			}
		}
		if crit < 0 {
			break // cycle time already at the non-array floor
		}
		l := spec.Layers[crit]
		if gs[crit] >= l.Windows() {
			break // critical layer fully replicated; cannot improve
		}
		// Double the critical layer's granularity (clamped).
		candidate := gs[crit] * 2
		if candidate > l.Windows() {
			candidate = l.Windows()
		}
		old := gs[crit]
		gs[crit] = candidate
		newPlans := build()
		newArea := model.Area(spec, newPlans, batch)
		if newArea > areaBudget {
			gs[crit] = old
			break
		}
		// Accept only if it actually helps the critical layer (Steps can
		// plateau when already 1).
		if model.LayerCycleTime(newPlans[crit]) >= worst {
			gs[crit] = old
			break
		}
		plans = newPlans
		area = newArea
		iterations++
		if iterations > 10000 {
			break // safety against pathological configs
		}
	}
	return Result{
		Plans:      plans,
		CycleTime:  model.CycleTime(plans),
		AreaMM2:    area,
		Iterations: iterations,
	}, nil
}
