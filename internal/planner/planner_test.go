package planner

import (
	"math"
	"testing"

	"pipelayer/internal/energy"
	"pipelayer/internal/mapping"
	"pipelayer/internal/networks"
)

func TestOptimizeRespectsBudget(t *testing.T) {
	m := energy.DefaultModel()
	spec := networks.VGG("A")
	for _, budget := range []float64{220, 240, 300, 500} {
		res, err := Optimize(m, spec, mapping.DefaultArray, 64, budget)
		if err != nil {
			t.Fatalf("budget %g: %v", budget, err)
		}
		if res.AreaMM2 > budget {
			t.Fatalf("budget %g: area %g exceeds it", budget, res.AreaMM2)
		}
	}
}

func TestOptimizeMonotoneInBudget(t *testing.T) {
	m := energy.DefaultModel()
	spec := networks.VGG("A")
	prev := math.Inf(1)
	for _, budget := range []float64{220, 260, 320, 500, 1500} {
		res, err := Optimize(m, spec, mapping.DefaultArray, 64, budget)
		if err != nil {
			t.Fatal(err)
		}
		if res.CycleTime > prev*1.0001 {
			t.Fatalf("budget %g: cycle time %g worse than smaller budget's %g", budget, res.CycleTime, prev)
		}
		prev = res.CycleTime
	}
}

func TestOptimizeBeatsUniformLambdaAtSameArea(t *testing.T) {
	// Give the optimizer exactly the area the uniform λ=1 mapping uses; it
	// must achieve a cycle time at least as good.
	m := energy.DefaultModel()
	spec := networks.AlexNet()
	uniform := m.BalancedPlans(spec.Layers, mapping.DefaultArray, 1)
	budget := m.Area(spec, uniform, 64)
	res, err := Optimize(m, spec, mapping.DefaultArray, 64, budget)
	if err != nil {
		t.Fatal(err)
	}
	if res.CycleTime > m.CycleTime(uniform)*1.05 {
		t.Fatalf("optimizer cycle %g much worse than uniform λ=1 %g at equal area",
			res.CycleTime, m.CycleTime(uniform))
	}
}

func TestOptimizeLargeBudgetApproachesFloor(t *testing.T) {
	m := energy.DefaultModel()
	spec := networks.MnistC() // tiny: fully replicable cheaply
	res, err := Optimize(m, spec, mapping.DefaultArray, 64, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// All-FC network with windows=1: the floor is one array pass + moves.
	maxG := m.BalancedPlans(spec.Layers, mapping.DefaultArray, math.Inf(1))
	if res.CycleTime > m.CycleTime(maxG)*1.001 {
		t.Fatalf("unbounded budget cycle %g above the λ=∞ floor %g", res.CycleTime, m.CycleTime(maxG))
	}
}

func TestOptimizeTightBudgetFails(t *testing.T) {
	m := energy.DefaultModel()
	if _, err := Optimize(m, networks.VGG("E"), mapping.DefaultArray, 64, 1.0); err == nil {
		t.Fatal("impossible budget must error")
	}
}

func TestOptimizeSpreadsGByCriticality(t *testing.T) {
	// The optimizer should give the big early conv layers (huge window
	// counts) much larger G than the small late ones.
	m := energy.DefaultModel()
	spec := networks.VGG("A")
	res, err := Optimize(m, spec, mapping.DefaultArray, 64, 400)
	if err != nil {
		t.Fatal(err)
	}
	var firstConvG, lastConvG int
	for _, p := range res.Plans {
		if p.Layer.Kind != mapping.KindConv {
			continue
		}
		if firstConvG == 0 {
			firstConvG = p.G
		}
		lastConvG = p.G
	}
	if firstConvG <= lastConvG {
		t.Fatalf("conv1 G (%d) should exceed the last conv's G (%d)", firstConvG, lastConvG)
	}
}
