package mapping

import (
	"fmt"
	"math"
)

// ArraySpec is the physical crossbar geometry used for tiling. The default
// matches the 128×128 arrays common to ReRAM accelerator proposals.
type ArraySpec struct {
	Rows, Cols int
}

// DefaultArray is the default crossbar geometry.
var DefaultArray = ArraySpec{Rows: 128, Cols: 128}

// PhysicalPerLogical is the number of physical crossbars behind one logical
// weight array: a positive/negative pair (Section 4.2.3) for each of the
// four 4-bit resolution groups (Section 5.1).
const PhysicalPerLogical = 8

// BalancedSteps is the per-cycle window budget the default granularity is
// balanced against. It reproduces the paper's Figure 5 example, where the
// 2544 windows of the 14×14→(with G=52 copies) layer are processed in
// 49 = ⌈2544/52⌉ sequential steps per logical cycle.
const BalancedSteps = 49

// Plan is the mapping of one layer onto crossbars at a chosen granularity.
type Plan struct {
	Layer Layer
	Array ArraySpec
	// G is the parallelism granularity: copies of the weight arrays.
	G int
	// RowTiles × ColTiles arrays hold one weight copy (Figure 5 partition).
	RowTiles, ColTiles int
	// Steps is the number of sequential input vectors each copy processes
	// per image: ⌈Windows / G⌉ (1 for FC, 0 for pooling).
	Steps int
}

// ArraysPerCopy returns the number of logical arrays per weight copy.
func (p Plan) ArraysPerCopy() int { return p.RowTiles * p.ColTiles }

// LogicalArrays returns the number of logical arrays including replication.
func (p Plan) LogicalArrays() int { return p.ArraysPerCopy() * p.G }

// PhysicalArrays returns the number of physical crossbars (×8: pos/neg ×
// four resolution groups).
func (p Plan) PhysicalArrays() int { return p.LogicalArrays() * PhysicalPerLogical }

// NewPlan tiles a layer onto arrays with granularity g. Pooling layers yield
// a zero-array plan. g is clamped to [1, Windows].
func NewPlan(l Layer, array ArraySpec, g int) Plan {
	if err := l.Validate(); err != nil {
		panic(err)
	}
	if array.Rows <= 0 || array.Cols <= 0 {
		panic(fmt.Sprintf("mapping: invalid array spec %+v", array))
	}
	p := Plan{Layer: l, Array: array}
	if !l.UsesArrays() {
		return p
	}
	w := l.Windows()
	if g < 1 {
		g = 1
	}
	if g > w {
		g = w
	}
	p.G = g
	p.RowTiles = ceilDiv(l.InputVecLen()+1, array.Rows) // +1 row for the bias
	p.ColTiles = ceilDiv(l.OutputLen(), array.Cols)
	p.Steps = ceilDiv(w, g)
	return p
}

// NaivePlan is the naive scheme of Figure 4: G = 1, so all windows feed one
// copy sequentially.
func NaivePlan(l Layer, array ArraySpec) Plan { return NewPlan(l, array, 1) }

// MaxPlan is the fully parallel extreme: G = Windows, one step per cycle.
func MaxPlan(l Layer, array ArraySpec) Plan { return NewPlan(l, array, l.Windows()) }

// DefaultG returns the paper's balanced default granularity for a layer:
// the smallest G whose per-cycle step count does not exceed BalancedSteps
// (Table 5's defaults are derived with this rule; see DESIGN.md).
func DefaultG(l Layer) int {
	if !l.UsesArrays() {
		return 0
	}
	return ceilDiv(l.Windows(), BalancedSteps)
}

// ScaleG applies the paper's λ scaling of Figure 17/18 to a default
// granularity: λ = 0 means G = 1 for every layer; λ = +Inf means the maximum
// G = Windows; otherwise G = clamp(round(λ·G₀), 1, Windows).
func ScaleG(l Layer, lambda float64) int {
	return ScaleGFrom(l, DefaultG(l), lambda)
}

// ScaleGFrom is ScaleG around an arbitrary base granularity g0 (used by the
// energy-aware balanced planner, which derives its own per-layer defaults).
func ScaleGFrom(l Layer, g0 int, lambda float64) int {
	if !l.UsesArrays() {
		return 0
	}
	w := l.Windows()
	switch {
	case lambda == 0:
		return 1
	case math.IsInf(lambda, 1):
		return w
	case lambda < 0:
		panic(fmt.Sprintf("mapping: negative λ %g", lambda))
	}
	g := int(math.Round(lambda * float64(g0)))
	if g < 1 {
		g = 1
	}
	if g > w {
		g = w
	}
	return g
}

// PlanNetwork maps every layer of a network at λ-scaled default granularity.
func PlanNetwork(layers []Layer, array ArraySpec, lambda float64) []Plan {
	plans := make([]Plan, len(layers))
	for i, l := range layers {
		plans[i] = NewPlan(l, array, ScaleG(l, lambda))
	}
	return plans
}

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int) int {
	if b <= 0 {
		panic("mapping: ceilDiv by non-positive divisor")
	}
	return (a + b - 1) / b
}
