package mapping

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func fig4Layer() Layer {
	// Figure 4: layer l is 14×14×128, kernels 2×2×128×256, layer l+1 13×13×256.
	return Conv("fig4", 128, 14, 14, 256, 2, 1, 0)
}

func TestLayerGeometryFigure4(t *testing.T) {
	l := fig4Layer()
	if got := l.InputVecLen(); got != 512 {
		t.Fatalf("input vector length = %d, want 512 (2·2·128)", got)
	}
	if got := l.OutputLen(); got != 256 {
		t.Fatalf("bit lines = %d, want 256", got)
	}
	if got := l.Windows(); got != 169 {
		t.Fatalf("windows = %d, want 13·13 = 169", got)
	}
}

func TestPoolLayerGeometry(t *testing.T) {
	l := Pool("p", 64, 8, 8, 2)
	if l.UsesArrays() {
		t.Fatal("pooling must not use arrays")
	}
	if l.OutH() != 4 || l.OutW() != 4 || l.Windows() != 0 || l.InputVecLen() != 0 {
		t.Fatalf("pool geometry wrong: %d %d %d", l.OutH(), l.Windows(), l.InputVecLen())
	}
}

func TestFCLayerGeometry(t *testing.T) {
	l := FC("fc", 784, 100)
	if l.InputVecLen() != 784 || l.OutputLen() != 100 || l.Windows() != 1 {
		t.Fatal("fc geometry wrong")
	}
	if l.Weights() != 78400 {
		t.Fatalf("fc weights = %d", l.Weights())
	}
}

func TestValidateRejectsBadLayers(t *testing.T) {
	bad := []Layer{
		Conv("c", 0, 8, 8, 4, 3, 1, 0),
		Conv("c", 1, 2, 2, 4, 5, 1, 0), // kernel larger than input
		Pool("p", 1, 5, 5, 2),
		FC("f", 0, 10),
		{Name: "x", Kind: LayerKind(9)},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNaivePlanMatchesPaperExample(t *testing.T) {
	// The naive scheme of Figure 4 processes all windows sequentially.
	p := NaivePlan(fig4Layer(), ArraySpec{Rows: 1024, Cols: 1024})
	if p.G != 1 {
		t.Fatalf("naive G = %d", p.G)
	}
	if p.Steps != 169 {
		t.Fatalf("naive steps = %d, want 169", p.Steps)
	}
	if p.ArraysPerCopy() != 1 {
		t.Fatalf("one huge array should hold the whole kernel matrix, got %d tiles", p.ArraysPerCopy())
	}
}

func TestPlanPartitionFigure5(t *testing.T) {
	// Figure 5 partitions the 512×256 matrix into 128-row tiles: with
	// 128×128 arrays we need ⌈513/128⌉ = 5 row tiles × 2 col tiles.
	p := NewPlan(fig4Layer(), DefaultArray, 1)
	if p.RowTiles != 5 {
		t.Fatalf("row tiles = %d, want 5 (bias row forces 513 rows)", p.RowTiles)
	}
	if p.ColTiles != 2 {
		t.Fatalf("col tiles = %d, want 2", p.ColTiles)
	}
}

func TestMaxPlanOneStep(t *testing.T) {
	p := MaxPlan(fig4Layer(), DefaultArray)
	if p.Steps != 1 {
		t.Fatalf("max plan steps = %d, want 1", p.Steps)
	}
	if p.G != 169 {
		t.Fatalf("max plan G = %d, want 169", p.G)
	}
}

func TestPlanClampsG(t *testing.T) {
	p := NewPlan(fig4Layer(), DefaultArray, 10_000)
	if p.G != 169 {
		t.Fatalf("G must clamp to window count, got %d", p.G)
	}
	p = NewPlan(fig4Layer(), DefaultArray, -3)
	if p.G != 1 {
		t.Fatalf("G must clamp to 1, got %d", p.G)
	}
}

func TestPlanPoolingZeroArrays(t *testing.T) {
	p := NewPlan(Pool("p", 16, 8, 8, 2), DefaultArray, 7)
	if p.LogicalArrays() != 0 || p.Steps != 0 {
		t.Fatal("pooling plan must consume no arrays")
	}
}

func TestPhysicalArraysFactor(t *testing.T) {
	p := NewPlan(FC("fc", 100, 10), DefaultArray, 1)
	if p.PhysicalArrays() != p.LogicalArrays()*8 {
		t.Fatal("physical arrays must be 8× logical (pos/neg × 4 groups)")
	}
}

// Property: G·Steps ≥ Windows ≥ (G−1)·Steps-ish; precisely Steps = ⌈W/G⌉.
func TestPropertyStepsCeil(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := Conv("c", 1+rng.Intn(64), 4+rng.Intn(28), 4+rng.Intn(28), 1+rng.Intn(64), 1+rng.Intn(3), 1, 0)
		if l.Validate() != nil {
			return true
		}
		g := 1 + rng.Intn(2*l.Windows())
		p := NewPlan(l, DefaultArray, g)
		w := l.Windows()
		return p.Steps == (w+p.G-1)/p.G && p.G >= 1 && p.G <= w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultGBalances(t *testing.T) {
	l := fig4Layer()
	g := DefaultG(l)
	p := NewPlan(l, DefaultArray, g)
	if p.Steps > BalancedSteps {
		t.Fatalf("default G yields %d steps > budget %d", p.Steps, BalancedSteps)
	}
	// And G-1 would exceed the budget (minimality) unless G==1.
	if g > 1 {
		if q := NewPlan(l, DefaultArray, g-1); q.Steps <= BalancedSteps {
			t.Fatalf("default G not minimal: G-1 also meets budget")
		}
	}
}

func TestScaleGLambdaExtremes(t *testing.T) {
	l := fig4Layer()
	if g := ScaleG(l, 0); g != 1 {
		t.Fatalf("λ=0 must give G=1, got %d", g)
	}
	if g := ScaleG(l, math.Inf(1)); g != l.Windows() {
		t.Fatalf("λ=∞ must give G=Windows, got %d", g)
	}
	if g := ScaleG(l, 1); g != DefaultG(l) {
		t.Fatalf("λ=1 must give default G, got %d vs %d", g, DefaultG(l))
	}
}

func TestScaleGMonotone(t *testing.T) {
	l := Conv("c", 64, 56, 56, 128, 3, 1, 1)
	lambdas := []float64{0, 0.25, 0.5, 1, 2, 4, math.Inf(1)}
	prev := 0
	for _, lam := range lambdas {
		g := ScaleG(l, lam)
		if g < prev {
			t.Fatalf("G not monotone in λ: %d after %d", g, prev)
		}
		prev = g
	}
}

func TestScaleGNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScaleG(fig4Layer(), -1)
}

func TestPlanNetwork(t *testing.T) {
	layers := []Layer{
		Conv("c1", 1, 28, 28, 8, 5, 1, 0),
		Pool("p1", 8, 24, 24, 2),
		FC("fc", 8*12*12, 10),
	}
	plans := PlanNetwork(layers, DefaultArray, 1)
	if len(plans) != 3 {
		t.Fatalf("plan count = %d", len(plans))
	}
	if plans[1].LogicalArrays() != 0 {
		t.Fatal("pool plan should be empty")
	}
	if plans[0].G != DefaultG(layers[0]) {
		t.Fatal("λ=1 should use default G")
	}
}

func TestTable2CycleFormulas(t *testing.T) {
	// The worked numbers of Section 3.3: L layers, batch B, N images.
	L, B, N := 3, 64, 64*10
	np := NonPipelinedTrainingCycles(L, B, N)
	if np != (2*L+1)*N+N/B {
		t.Fatalf("non-pipelined = %d", np)
	}
	p := PipelinedTrainingCycles(L, B, N)
	if p != (N/B)*(2*L+B+1) {
		t.Fatalf("pipelined = %d", p)
	}
	if p >= np {
		t.Fatal("pipelined must be faster than non-pipelined for B > 1")
	}
	if NonPipelinedForwardCycles(L, N)+NonPipelinedBackwardCycles(L, B, N) != np {
		t.Fatal("forward+backward must sum to total")
	}
}

func TestTable2BatchOneDegenerate(t *testing.T) {
	// With B = 1 the pipeline degenerates: (2L+2) per image vs (2L+1)+1 — equal.
	L, N := 5, 100
	if PipelinedTrainingCycles(L, 1, N) != NonPipelinedTrainingCycles(L, 1, N) {
		t.Fatal("B=1 pipelined and non-pipelined cycle counts must coincide")
	}
}

func TestTestingCycleFormulas(t *testing.T) {
	L, N := 8, 1000
	if NonPipelinedTestingCycles(L, N) != L*N {
		t.Fatal("non-pipelined testing")
	}
	if PipelinedTestingCycles(L, N) != N+L-1 {
		t.Fatal("pipelined testing")
	}
}

func TestArrayCostFormulas(t *testing.T) {
	G, L, B := 4, 6, 64
	np := NonPipelinedMorphArrays(G, L)
	p := PipelinedMorphArrays(G, L, B)
	if np != G*L+G*(L-1) {
		t.Fatalf("non-pipelined arrays = %d", np)
	}
	if p != np+B*L {
		t.Fatalf("pipelined arrays = %d, want np + BL", p)
	}
}

func TestBufferDepthRule(t *testing.T) {
	// Section 3.3 worked example: L = 3, the buffer between A1 and A2
	// (layer 1) needs 2(3−1)+1 = 5 entries.
	if got := BufferDepth(3, 1); got != 5 {
		t.Fatalf("BufferDepth(3,1) = %d, want 5", got)
	}
	if got := BufferDepth(3, 3); got != 1 {
		t.Fatalf("BufferDepth(3,3) = %d, want 1", got)
	}
}

func TestBufferDepthOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BufferDepth(3, 4)
}

func TestPipelinedMemBuffersIsSumOfDepths(t *testing.T) {
	for L := 1; L <= 12; L++ {
		sum := 0
		for l := 1; l <= L; l++ {
			sum += BufferDepth(L, l)
		}
		if got := PipelinedMemBuffers(L); got != sum+L+1 {
			t.Fatalf("L=%d: PipelinedMemBuffers = %d, want Σdepths(%d) + L+1", L, got, sum)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindConv.String() != "conv" || KindPool.String() != "pool" || KindFC.String() != "fc" {
		t.Fatal("LayerKind strings broken")
	}
	if LayerKind(42).String() == "" {
		t.Fatal("unknown kind must render")
	}
}
