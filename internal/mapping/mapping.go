// Package mapping implements PipeLayer's data-input and kernel-mapping
// schemes (paper Section 3.2): the naive scheme of Figure 4 (one giant array,
// sequential window feed), the balanced scheme of Figure 5 (partitioning the
// kernel matrix into crossbar-sized tiles), the parallelism-granularity knob
// G (the number of replicated array copies holding the same weights), and
// the array-count cost model of Table 2.
//
// The package also defines the layer-geometry description (Layer) consumed
// by the pipeline simulator, the energy model and the network zoo.
package mapping

import (
	"fmt"

	"pipelayer/internal/tensor"
)

// LayerKind enumerates the paper's three layer types plus activation, which
// is fused into the preceding layer's array group in hardware.
type LayerKind int

const (
	// KindConv is a convolution layer (Equation 1).
	KindConv LayerKind = iota
	// KindPool is a pooling layer (Equation 2); MaxPool or AvgPool.
	KindPool
	// KindFC is an inner-product layer (Equation 3).
	KindFC
)

// String implements fmt.Stringer.
func (k LayerKind) String() string {
	switch k {
	case KindConv:
		return "conv"
	case KindPool:
		return "pool"
	case KindFC:
		return "fc"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// PoolMode distinguishes the paper's two pooling variants (Section 2.1).
type PoolMode int

const (
	// PoolMax selects max pooling (realized by the activation component's
	// max register, Section 4.2.3).
	PoolMax PoolMode = iota
	// PoolAvg selects average pooling (Equation 2; the 1/K² multiply is a
	// shift when K² is a power of two).
	PoolAvg
)

// Activation selects the activation function fused after a weighted layer
// (the activation component is LUT-configurable, Section 4.2.3).
type Activation int

const (
	// ActReLU is the rectifier (the paper's default; exact in hardware).
	ActReLU Activation = iota
	// ActSigmoid is the logistic function (realized by a sampled LUT).
	ActSigmoid
)

// Layer describes the geometry of one network layer, the unit both the
// mapper and the pipeline simulator operate on.
type Layer struct {
	Name string
	Kind LayerKind

	// Convolution/pooling geometry (CHW input).
	InC, InH, InW int
	OutC          int
	K             int // kernel / pooling window (square)
	Stride, Pad   int

	// Pool selects max vs average pooling for KindPool layers.
	Pool PoolMode

	// Act selects the fused activation for weighted layers.
	Act Activation

	// Inner-product geometry.
	FCIn, FCOut int
}

// Conv builds a convolution layer description.
func Conv(name string, inC, inH, inW, outC, k, stride, pad int) Layer {
	return Layer{Name: name, Kind: KindConv, InC: inC, InH: inH, InW: inW, OutC: outC, K: k, Stride: stride, Pad: pad}
}

// Pool builds a non-overlapping pooling layer description (window k, stride k).
func Pool(name string, inC, inH, inW, k int) Layer {
	return PoolStrided(name, inC, inH, inW, k, k)
}

// PoolStrided builds a pooling layer with an explicit stride (AlexNet's
// overlapping 3×3 stride-2 pools).
func PoolStrided(name string, inC, inH, inW, k, stride int) Layer {
	return Layer{Name: name, Kind: KindPool, InC: inC, InH: inH, InW: inW, OutC: inC, K: k, Stride: stride}
}

// AvgPool builds a non-overlapping average-pooling layer (Equation 2).
func AvgPool(name string, inC, inH, inW, k int) Layer {
	l := Pool(name, inC, inH, inW, k)
	l.Pool = PoolAvg
	return l
}

// WithActivation returns a copy of a weighted layer with the given fused
// activation.
func (l Layer) WithActivation(a Activation) Layer {
	l.Act = a
	return l
}

// FC builds an inner-product layer description.
func FC(name string, in, out int) Layer {
	return Layer{Name: name, Kind: KindFC, FCIn: in, FCOut: out}
}

// OutH returns the output height of a conv/pool layer.
func (l Layer) OutH() int {
	switch l.Kind {
	case KindConv:
		return tensor.ConvOutDim(l.InH, l.K, l.Stride, l.Pad)
	case KindPool:
		return (l.InH-l.K)/l.Stride + 1
	default:
		return 1
	}
}

// OutW returns the output width of a conv/pool layer.
func (l Layer) OutW() int {
	switch l.Kind {
	case KindConv:
		return tensor.ConvOutDim(l.InW, l.K, l.Stride, l.Pad)
	case KindPool:
		return (l.InW-l.K)/l.Stride + 1
	default:
		return 1
	}
}

// InputVecLen is the length of one array input vector: the flattened
// receptive field K·K·C for convolution (the paper's "yellow bar", 512 in
// Figure 4's example), or the full input width for an inner-product layer.
// Pooling layers do not use crossbars.
func (l Layer) InputVecLen() int {
	switch l.Kind {
	case KindConv:
		return l.K * l.K * l.InC
	case KindFC:
		return l.FCIn
	default:
		return 0
	}
}

// OutputLen is the number of bit lines one weight copy must provide: the
// output channel count for convolution, the neuron count for inner product.
func (l Layer) OutputLen() int {
	switch l.Kind {
	case KindConv:
		return l.OutC
	case KindFC:
		return l.FCOut
	default:
		return 0
	}
}

// Windows is the number of sliding-window positions per image (the paper's
// 2544-cycle sequential feed of Figure 4 comes from this count). It is 1 for
// inner-product layers and 0 for pooling (no array pass).
func (l Layer) Windows() int {
	switch l.Kind {
	case KindConv:
		return l.OutH() * l.OutW()
	case KindFC:
		return 1
	default:
		return 0
	}
}

// UsesArrays reports whether the layer occupies morphable subarrays.
func (l Layer) UsesArrays() bool { return l.Kind == KindConv || l.Kind == KindFC }

// Weights returns the number of weight values in the layer.
func (l Layer) Weights() int {
	switch l.Kind {
	case KindConv:
		return l.OutC * l.InC * l.K * l.K
	case KindFC:
		return l.FCIn * l.FCOut
	default:
		return 0
	}
}

// Validate checks internal consistency of the description.
func (l Layer) Validate() error {
	switch l.Kind {
	case KindConv:
		if l.InC <= 0 || l.InH <= 0 || l.InW <= 0 || l.OutC <= 0 || l.K <= 0 || l.Stride <= 0 {
			return fmt.Errorf("mapping: conv layer %q has non-positive dims", l.Name)
		}
		if l.OutH() <= 0 || l.OutW() <= 0 {
			return fmt.Errorf("mapping: conv layer %q produces empty output", l.Name)
		}
	case KindPool:
		if l.InC <= 0 || l.K <= 0 || l.Stride <= 0 {
			return fmt.Errorf("mapping: pool layer %q has non-positive dims", l.Name)
		}
		if l.InH < l.K || l.InW < l.K || (l.InH-l.K)%l.Stride != 0 || (l.InW-l.K)%l.Stride != 0 {
			return fmt.Errorf("mapping: pool layer %q window %d stride %d does not tile %dx%d", l.Name, l.K, l.Stride, l.InH, l.InW)
		}
	case KindFC:
		if l.FCIn <= 0 || l.FCOut <= 0 {
			return fmt.Errorf("mapping: fc layer %q has non-positive dims", l.Name)
		}
	default:
		return fmt.Errorf("mapping: layer %q has unknown kind %d", l.Name, l.Kind)
	}
	return nil
}
