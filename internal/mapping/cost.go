package mapping

// Table 2 of the paper: cycle counts and array/buffer costs of the
// non-pipelined and pipelined PipeLayer architectures, as closed forms.
// G: parallelism granularity, L: number of weighted layers, B: batch size,
// N: total number of input images.

// NonPipelinedTrainingCycles is (2L+1)·N + N/B: per image, L forward cycles
// and L+1 backward cycles, plus one weight-update cycle per batch
// (Figure 7a).
func NonPipelinedTrainingCycles(L, B, N int) int {
	mustPos(L, B, N)
	return (2*L+1)*N + N/B
}

// PipelinedTrainingCycles is (N/B)·(2L+B+1): per batch, the first update is
// ready after 2L+1 cycles, B−1 further inputs stream in one per cycle, and
// one cycle applies the batched update (Figure 7b). N must be a multiple of
// B (the paper's batches are full).
func PipelinedTrainingCycles(L, B, N int) int {
	mustPos(L, B, N)
	return (N / B) * (2*L + B + 1)
}

// NonPipelinedForwardCycles is L·N (Table 2, forward row).
func NonPipelinedForwardCycles(L, N int) int {
	mustPos(L, 1, N)
	return L * N
}

// NonPipelinedBackwardCycles is (L+1)·N + N/B (Table 2, backward row).
func NonPipelinedBackwardCycles(L, B, N int) int {
	mustPos(L, B, N)
	return (L+1)*N + N/B
}

// PipelinedTestingCycles is N + L − 1: in testing there are no batch
// boundaries, so after L−1 fill cycles one result emerges per cycle.
func PipelinedTestingCycles(L, N int) int {
	mustPos(L, 1, N)
	return N + L - 1
}

// NonPipelinedTestingCycles is L·N: each image occupies the whole machine
// for L cycles.
func NonPipelinedTestingCycles(L, N int) int {
	mustPos(L, 1, N)
	return L * N
}

// NonPipelinedMorphArrays is the Table 2 morphable-array cost without
// pipelining: G·L array groups hold the forward weights and G·(L−1) hold the
// reordered kernels (W)* for error backward (no errors are propagated past
// layer 1).
func NonPipelinedMorphArrays(G, L int) int {
	mustPos(G, L, 1)
	return G*L + G*(L-1)
}

// PipelinedMorphArrays is the Table 2 morphable-array cost with pipelining:
// the non-pipelined arrays plus B·L array groups that hold the in-flight
// d values of the B images in the pipeline, morphed to compute partial
// derivatives (Section 4.4.1).
func PipelinedMorphArrays(G, L, B int) int {
	mustPos(G, L, B)
	return G*L + G*(L-1) + B*L
}

// NonPipelinedMemBuffers is the Table 2 memory-subarray cost without
// pipelining: 2·L buffers (one d and one δ per layer).
func NonPipelinedMemBuffers(L int) int {
	mustPos(L, 1, 1)
	return 2 * L
}

// BufferDepth is the per-layer circular-buffer depth of Section 3.3: the
// entry layer l writes at cycle t is consumed 2(L−l) cycles later, so
// 2(L−l)+1 entries suffice and are necessary (Figure 8). Layers are indexed
// 1..L.
func BufferDepth(L, l int) int {
	if l < 1 || l > L {
		panic("mapping: BufferDepth layer index out of range")
	}
	return 2*(L-l) + 1
}

// PipelinedMemBuffers sums the circular-buffer depths over all layers,
// Σ_{l=1..L} (2(L−l)+1) = L², plus L+1 duplicated buffers for the
// same-cycle read+write at d_L and each δ_l (Section 3.3).
func PipelinedMemBuffers(L int) int {
	mustPos(L, 1, 1)
	return L*L + L + 1
}

func mustPos(vals ...int) {
	for _, v := range vals {
		if v <= 0 {
			panic("mapping: parameters must be positive")
		}
	}
}
