// Package benchscenario is the declarative scenario-benchmark harness:
// checked-in scenario directories (benchmarks/scenarios/<name>/scenario.json)
// describe points in the sweep space PipeLayer's claims live in — network ×
// batch size × fault density × worker count × replica count × load pattern,
// including sustained overload — and one runner executes them against the
// real serve/train/fault paths, emitting a uniform report schema with full
// provenance (scenario id, commit, go version, timestamp, effective config).
//
// The companion differ compares two reports field-by-field, normalizes
// timing metrics by a per-host calibration constant so same-commit runs on
// different machines stay comparable, refuses reports whose provenance
// describes incompatible configurations, and fails on any gated metric that
// regresses beyond a threshold — which is what lets CI turn "measurably
// faster" claims into an enforced gate instead of an anecdote.
package benchscenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"

	"pipelayer/internal/serve"
)

// Scenario kinds: which execution path the runner drives.
const (
	// KindServe trains a network and load-tests the batching inference
	// server with the configured pattern.
	KindServe = "serve"
	// KindFault runs the accuracy-vs-fault-density sweep (deterministic:
	// its gated metrics are accuracies, not timings).
	KindFault = "fault"
	// KindOnline runs the train-while-serve supervisor: closed-loop request
	// lanes keep predicting while the trainer promotes new weight versions
	// underneath them, and every accepted response is verified bit-identical
	// to its version's checkpointed weights.
	KindOnline = "online"
)

// Load patterns for KindServe scenarios.
const (
	// PatternSteady fires Requests total from Concurrency closed-loop lanes;
	// the queue must absorb the lanes, so nothing is shed and every
	// response is digest-checked.
	PatternSteady = "steady"
	// PatternBurst fires all Requests concurrently at once; the queue must
	// hold the whole burst, so nothing is shed.
	PatternBurst = "burst"
	// PatternOverload fires Requests from Concurrency closed-loop lanes into
	// a deliberately undersized queue: ErrOverloaded sheds are expected,
	// counted into error_rate, and every *accepted* response is still
	// verified bit-identical to the serial reference.
	PatternOverload = "overload"
)

// Scenario is one checked-in benchmark definition. JSON decoding is strict:
// unknown fields are rejected so a typoed knob can never silently become a
// no-op benchmark.
type Scenario struct {
	// Name must equal the scenario directory's base name (lower-case
	// letters, digits, dashes) and becomes the report's scenario id.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Kind selects the execution path: KindServe or KindFault.
	Kind string `json:"kind"`
	// Network names the topology: tiny-mlp / tiny-deep-mlp / tiny-cnn
	// (the shared testutil fixtures) or a servable evaluation network
	// (Mnist-A, Mnist-B, Mnist-C, Mnist-0).
	Network string `json:"network"`
	// Seed feeds weight init and the synthetic dataset; a fixed seed is
	// what makes the digest reproducible across runs and hosts.
	Seed int64 `json:"seed"`
	// Workers pins the parallel compute backend's pool size for the run
	// (0 keeps the process default). Pinning it is what makes provenance
	// comparable across hosts with different core counts.
	Workers int `json:"workers"`

	Train TrainSpec `json:"train"`

	// Serve and Load configure KindServe scenarios (required for them,
	// forbidden for KindFault).
	Serve *ServeSpec `json:"serve,omitempty"`
	Load  *LoadSpec  `json:"load,omitempty"`

	// Faults configures KindFault scenarios (required for them, forbidden
	// for KindServe).
	Faults *FaultSpec `json:"faults,omitempty"`

	// Online configures KindOnline scenarios (required for them, forbidden
	// for the other kinds; pairs with a Serve section).
	Online *OnlineSpec `json:"online,omitempty"`
}

// TrainSpec sizes the synthetic training run that precedes measurement.
type TrainSpec struct {
	Images     int     `json:"images"`
	TestImages int     `json:"test_images"`
	Epochs     int     `json:"epochs"`
	Batch      int     `json:"batch"`
	LR         float64 `json:"lr"`
}

// ServeSpec mirrors serve.Config; zero fields take the server's documented
// defaults, and the *effective* values land in report provenance.
type ServeSpec struct {
	Replicas  int     `json:"replicas,omitempty"`
	MaxBatch  int     `json:"max_batch,omitempty"`
	MaxWaitMS float64 `json:"max_wait_ms,omitempty"`
	Queue     int     `json:"queue,omitempty"`
	// Shards >= 2 serves through the layer-sharded pipeline backend instead
	// of independent replicas: the network is split into Shards contiguous
	// layer ranges, each on its own pipeline stage. Replicas then means
	// pipeline fill (concurrent in-flight batches), defaulting to Shards.
	Shards int `json:"shards,omitempty"`
	// CompareSerial additionally runs the whole request set through a
	// batch-of-1 server, verifies bit-identity, and reports serial_rps +
	// speedup — the batched-vs-serial scenario.
	CompareSerial bool `json:"compare_serial,omitempty"`
}

// ToConfig converts the spec into a serve.Config (without defaults applied).
func (s ServeSpec) ToConfig() serve.Config {
	return serve.Config{
		Replicas: s.Replicas,
		MaxBatch: s.MaxBatch,
		MaxWait:  time.Duration(s.MaxWaitMS * float64(time.Millisecond)),
		QueueCap: s.Queue,
		Shards:   s.Shards,
	}
}

// LoadSpec shapes the request stream of a KindServe scenario.
type LoadSpec struct {
	Pattern     string `json:"pattern"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency,omitempty"`
}

// OnlineSpec shapes a KindOnline run: closed-loop lanes predict
// continuously while the supervisor trains and promotes until Promotions
// versions have been hot-swapped in.
type OnlineSpec struct {
	// Promotions is how many promoted versions the run waits for.
	Promotions int `json:"promotions"`
	// Concurrency is the number of closed-loop request lanes kept open
	// while training runs (default 16). The queue must absorb all lanes so
	// nothing is shed and every response is bit-verified.
	Concurrency int `json:"concurrency,omitempty"`
	// SnapshotEvery snapshots a candidate every N training rounds
	// (default 1).
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// Tolerance is the supervisor's allowed eval-accuracy drop before a
	// candidate rolls back; 0 means 1.0 (never roll back), so the run
	// always reaches its promotion target.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// lanes is the number of concurrent request lanes the run keeps open.
func (o OnlineSpec) lanes() int {
	if o.Concurrency <= 0 {
		return 16
	}
	return o.Concurrency
}

// FaultSpec parameterizes the fault-density sweep.
type FaultSpec struct {
	Densities []float64 `json:"densities"`
	Spares    int       `json:"spares,omitempty"`
	Drift     float64   `json:"drift,omitempty"`
	Refresh   int       `json:"refresh,omitempty"`
}

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// Validation bounds. Scenario files are checked-in config, but they are
// also parsed from fuzzed and third-party bytes, so every count is bounded:
// a hostile value can waste at most a small, fixed amount of work.
const (
	maxName        = 64
	maxTrainImages = 10000
	maxEpochs      = 50
	maxTrainBatch  = 256
	maxReplicas    = 16
	maxShards      = 16
	maxMaxBatch    = 256
	maxWaitMSCap   = 1000
	maxQueue       = 65536
	maxRequests    = 100000
	maxConcurrency = 4096
	maxDensities   = 16
	maxPromotions  = 32
	maxSnapEvery   = 100
)

// Validate checks the scenario against the schema's bounds and cross-field
// rules. It is the only gate between a JSON file and the runner.
func (sc Scenario) Validate() error {
	if sc.Name == "" || len(sc.Name) > maxName || !nameRE.MatchString(sc.Name) {
		return fmt.Errorf("scenario name %q: need 1-%d chars of [a-z0-9-], starting alphanumeric", sc.Name, maxName)
	}
	if _, err := resolveNetwork(sc.Network); err != nil {
		return fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	if sc.Workers < 0 || sc.Workers > 64 {
		return fmt.Errorf("scenario %s: workers %d out of range [0,64]", sc.Name, sc.Workers)
	}
	if err := sc.Train.validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	switch sc.Kind {
	case KindServe:
		if sc.Faults != nil || sc.Online != nil {
			return fmt.Errorf("scenario %s: kind %q does not take faults/online sections", sc.Name, sc.Kind)
		}
		if sc.Serve == nil || sc.Load == nil {
			return fmt.Errorf("scenario %s: kind %q needs both serve and load sections", sc.Name, sc.Kind)
		}
		if err := sc.Serve.validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		if err := sc.Load.validate(sc.Serve.ToConfig().WithDefaults()); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	case KindFault:
		if sc.Serve != nil || sc.Load != nil || sc.Online != nil {
			return fmt.Errorf("scenario %s: kind %q does not take serve/load/online sections", sc.Name, sc.Kind)
		}
		if sc.Faults == nil {
			return fmt.Errorf("scenario %s: kind %q needs a faults section", sc.Name, sc.Kind)
		}
		if err := sc.Faults.validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	case KindOnline:
		if sc.Faults != nil || sc.Load != nil {
			return fmt.Errorf("scenario %s: kind %q does not take faults/load sections", sc.Name, sc.Kind)
		}
		if sc.Serve == nil || sc.Online == nil {
			return fmt.Errorf("scenario %s: kind %q needs both serve and online sections", sc.Name, sc.Kind)
		}
		if sc.Serve.CompareSerial {
			return fmt.Errorf("scenario %s: kind %q does not take serve.compare_serial", sc.Name, sc.Kind)
		}
		if sc.Train.Epochs != 1 {
			// Training length is driven by the promotion target, not epochs;
			// any other value would be a silent no-op knob.
			return fmt.Errorf("scenario %s: kind %q requires train.epochs = 1 (rounds are driven by online.promotions)", sc.Name, sc.Kind)
		}
		if err := sc.Serve.validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		if err := sc.Online.validate(sc.Serve.ToConfig().WithDefaults()); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	default:
		return fmt.Errorf("scenario %s: unknown kind %q (want %q, %q or %q)", sc.Name, sc.Kind, KindServe, KindFault, KindOnline)
	}
	return nil
}

func (t TrainSpec) validate() error {
	if t.Images < 1 || t.Images > maxTrainImages {
		return fmt.Errorf("train.images %d out of range [1,%d]", t.Images, maxTrainImages)
	}
	if t.TestImages < 1 || t.TestImages > maxTrainImages {
		return fmt.Errorf("train.test_images %d out of range [1,%d]", t.TestImages, maxTrainImages)
	}
	if t.Epochs < 1 || t.Epochs > maxEpochs {
		return fmt.Errorf("train.epochs %d out of range [1,%d]", t.Epochs, maxEpochs)
	}
	if t.Batch < 1 || t.Batch > maxTrainBatch {
		return fmt.Errorf("train.batch %d out of range [1,%d]", t.Batch, maxTrainBatch)
	}
	if !(t.LR > 0 && t.LR <= 1) {
		return fmt.Errorf("train.lr %v out of range (0,1]", t.LR)
	}
	return nil
}

func (s ServeSpec) validate() error {
	if s.Replicas < 0 || s.Replicas > maxReplicas {
		return fmt.Errorf("serve.replicas %d out of range [0,%d]", s.Replicas, maxReplicas)
	}
	if s.MaxBatch < 0 || s.MaxBatch > maxMaxBatch {
		return fmt.Errorf("serve.max_batch %d out of range [0,%d]", s.MaxBatch, maxMaxBatch)
	}
	if !(s.MaxWaitMS >= 0 && s.MaxWaitMS <= maxWaitMSCap) { // negated form also rejects NaN
		return fmt.Errorf("serve.max_wait_ms %v out of range [0,%d]", s.MaxWaitMS, maxWaitMSCap)
	}
	if s.Queue < 0 || s.Queue > maxQueue {
		return fmt.Errorf("serve.queue %d out of range [0,%d]", s.Queue, maxQueue)
	}
	if s.Shards < 0 || s.Shards > maxShards {
		return fmt.Errorf("serve.shards %d out of range [0,%d]", s.Shards, maxShards)
	}
	return nil
}

// validate cross-checks the load shape against the *effective* server
// config: the no-shed patterns must be physically unable to shed, or the
// digest (and the determinism claim it carries) would be a lie.
func (l LoadSpec) validate(effective serve.Config) error {
	if l.Requests < 1 || l.Requests > maxRequests {
		return fmt.Errorf("load.requests %d out of range [1,%d]", l.Requests, maxRequests)
	}
	if l.Concurrency < 0 || l.Concurrency > maxConcurrency {
		return fmt.Errorf("load.concurrency %d out of range [0,%d]", l.Concurrency, maxConcurrency)
	}
	switch l.Pattern {
	case PatternSteady:
		if c := l.lanes(); c > effective.QueueCap {
			return fmt.Errorf("load: steady needs queue >= concurrency (%d < %d) so nothing is shed", effective.QueueCap, c)
		}
	case PatternBurst:
		if l.Requests > maxConcurrency {
			return fmt.Errorf("load: burst fires all requests at once; requests %d > %d", l.Requests, maxConcurrency)
		}
		if l.Requests > effective.QueueCap {
			return fmt.Errorf("load: burst needs queue >= requests (%d < %d) so nothing is shed", effective.QueueCap, l.Requests)
		}
	case PatternOverload:
		if c := l.lanes(); c <= effective.QueueCap {
			return fmt.Errorf("load: overload needs concurrency > queue (%d <= %d) to actually overload", c, effective.QueueCap)
		}
	default:
		return fmt.Errorf("load.pattern %q: want %q, %q or %q", l.Pattern, PatternSteady, PatternBurst, PatternOverload)
	}
	return nil
}

// validate cross-checks the online shape against the *effective* server
// config: all lanes must fit in the queue so nothing is shed and every
// response can be bit-verified against its weight version.
func (o OnlineSpec) validate(effective serve.Config) error {
	if o.Promotions < 1 || o.Promotions > maxPromotions {
		return fmt.Errorf("online.promotions %d out of range [1,%d]", o.Promotions, maxPromotions)
	}
	if o.Concurrency < 0 || o.Concurrency > maxConcurrency {
		return fmt.Errorf("online.concurrency %d out of range [0,%d]", o.Concurrency, maxConcurrency)
	}
	if c := o.lanes(); c > effective.QueueCap {
		return fmt.Errorf("online: needs queue >= concurrency (%d < %d) so nothing is shed", effective.QueueCap, c)
	}
	if o.SnapshotEvery < 0 || o.SnapshotEvery > maxSnapEvery {
		return fmt.Errorf("online.snapshot_every %d out of range [0,%d]", o.SnapshotEvery, maxSnapEvery)
	}
	if !(o.Tolerance >= 0 && o.Tolerance <= 1) { // negated form also rejects NaN
		return fmt.Errorf("online.tolerance %v out of range [0,1]", o.Tolerance)
	}
	return nil
}

func (f FaultSpec) validate() error {
	if len(f.Densities) < 1 || len(f.Densities) > maxDensities {
		return fmt.Errorf("faults.densities: need 1-%d entries, got %d", maxDensities, len(f.Densities))
	}
	for i, d := range f.Densities {
		if !(d >= 0 && d < 1) {
			return fmt.Errorf("faults.densities[%d] %v out of range [0,1)", i, d)
		}
	}
	if f.Spares < 0 || f.Spares > 64 {
		return fmt.Errorf("faults.spares %d out of range [0,64]", f.Spares)
	}
	if !(f.Drift >= 0 && f.Drift <= 10) { // negated form also rejects NaN
		return fmt.Errorf("faults.drift %v out of range [0,10]", f.Drift)
	}
	if f.Refresh < 0 || f.Refresh > 1000000 {
		return fmt.Errorf("faults.refresh %d out of range [0,1000000]", f.Refresh)
	}
	return nil
}

// lanes is the number of concurrent closed-loop request lanes the pattern
// drives: Concurrency (default 16) for steady/overload, everything at once
// for burst.
func (l LoadSpec) lanes() int {
	if l.Pattern == PatternBurst {
		return l.Requests
	}
	if l.Concurrency <= 0 {
		return 16
	}
	return l.Concurrency
}

// Parse decodes one scenario from r, rejecting unknown fields, then
// validates it.
func Parse(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("benchscenario: parse: %w", err)
	}
	// Trailing garbage after the object is a malformed file, not an
	// extension point.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return Scenario{}, fmt.Errorf("benchscenario: parse: trailing data after scenario object")
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("benchscenario: %w", err)
	}
	return sc, nil
}

// ScenarioFile is the file each scenario directory must contain.
const ScenarioFile = "scenario.json"

// LoadDir reads and validates <dir>/scenario.json, additionally requiring
// the scenario's name to equal the directory's base name so globs, report
// ids, and artifact names can never drift apart.
func LoadDir(dir string) (Scenario, error) {
	f, err := os.Open(filepath.Join(dir, ScenarioFile))
	if err != nil {
		return Scenario{}, fmt.Errorf("benchscenario: %w", err)
	}
	defer f.Close()
	sc, err := Parse(f)
	if err != nil {
		return Scenario{}, fmt.Errorf("%w (in %s)", err, dir)
	}
	if base := filepath.Base(filepath.Clean(dir)); sc.Name != base {
		return Scenario{}, fmt.Errorf("benchscenario: scenario name %q != directory name %q", sc.Name, base)
	}
	return sc, nil
}

// Discover loads every scenario directory matching the glob (e.g.
// "benchmarks/scenarios/*"), sorted by name. A glob matching nothing is an
// error — an empty benchmark suite passing CI silently is worse than a
// loud one.
func Discover(glob string) ([]Scenario, error) {
	matches, err := filepath.Glob(glob)
	if err != nil {
		return nil, fmt.Errorf("benchscenario: glob %q: %w", glob, err)
	}
	var out []Scenario
	for _, m := range matches {
		info, err := os.Stat(m)
		if err != nil {
			return nil, fmt.Errorf("benchscenario: %w", err)
		}
		if !info.IsDir() {
			// Stray files next to scenario dirs (README.md, baselines) are
			// not scenarios.
			continue
		}
		sc, err := LoadDir(m)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchscenario: glob %q matched no scenario directories", glob)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	for i := 1; i < len(out); i++ {
		if out[i].Name == out[i-1].Name {
			return nil, fmt.Errorf("benchscenario: duplicate scenario name %q", out[i].Name)
		}
	}
	return out, nil
}

// sanitizeMetric lowers a free-form token (a fault mode like
// "remap+degrade") into the [a-z0-9_] namespace metric names live in.
func sanitizeMetric(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
