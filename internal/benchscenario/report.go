package benchscenario

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"pipelayer/internal/telemetry"
)

// SchemaVersion is bumped whenever the report shape changes incompatibly;
// the differ refuses to compare across versions.
const SchemaVersion = 1

// Provenance pins a report to the configuration and build that produced
// it. The config half (scenario, kind, network, seed, workers, replicas,
// max batch) must match between two reports for a diff to be meaningful —
// the differ refuses otherwise. The build half (commit, go version,
// timestamp) is *expected* to differ across commits; that is the point.
type Provenance struct {
	Scenario string `json:"scenario"`
	Kind     string `json:"kind"`
	Network  string `json:"network"`
	Seed     int64  `json:"seed"`
	Workers  int    `json:"workers"`
	Replicas int    `json:"replicas,omitempty"`
	MaxBatch int    `json:"max_batch,omitempty"`
	// Shards is the layer-pipeline shard count of a sharded serve run (0 for
	// the plain replicated backend). Part of the config half: a sharded and
	// an unsharded run of the same scenario are not comparable.
	Shards int `json:"shards,omitempty"`
	// Pattern is the serve scenario's load pattern. The differ consults it:
	// an overload run's shed fraction is timing-dependent by design, so its
	// error_rate is reported but not gated.
	Pattern string `json:"pattern,omitempty"`

	telemetry.BuildInfo

	// CalibMFLOPS is the host-speed calibration constant measured right
	// before the suite ran (a fixed serial matmul's MFLOP/s). The differ
	// divides timing metrics by it so a faster or slower host does not
	// masquerade as a code-level speedup or regression.
	CalibMFLOPS float64 `json:"calib_mflops,omitempty"`
}

// CompatibleWith reports whether two provenances describe the same
// benchmark configuration — the gate the differ enforces before comparing
// a single number.
func (p Provenance) CompatibleWith(q Provenance) error {
	mismatch := func(field string, a, b any) error {
		return fmt.Errorf("provenance mismatch on %s: %v vs %v", field, a, b)
	}
	switch {
	case p.Scenario != q.Scenario:
		return mismatch("scenario", p.Scenario, q.Scenario)
	case p.Kind != q.Kind:
		return mismatch("kind", p.Kind, q.Kind)
	case p.Network != q.Network:
		return mismatch("network", p.Network, q.Network)
	case p.Seed != q.Seed:
		return mismatch("seed", p.Seed, q.Seed)
	case p.Workers != q.Workers:
		return mismatch("workers", p.Workers, q.Workers)
	case p.Replicas != q.Replicas:
		return mismatch("replicas", p.Replicas, q.Replicas)
	case p.MaxBatch != q.MaxBatch:
		return mismatch("max_batch", p.MaxBatch, q.MaxBatch)
	case p.Shards != q.Shards:
		return mismatch("shards", p.Shards, q.Shards)
	case p.Pattern != q.Pattern:
		return mismatch("pattern", p.Pattern, q.Pattern)
	}
	return nil
}

// Report is the uniform per-scenario result schema: every scenario kind
// emits exactly this shape, so the differ and CI tooling never special-case
// a scenario.
type Report struct {
	SchemaVersion int        `json:"schema_version"`
	Provenance    Provenance `json:"provenance"`
	// Metrics hold the scenario's headline numbers (rps, p50_ms/p90_ms/
	// p99_ms, error_rate, acc_*...). Names determine how the differ gates
	// them; see metricGate.
	Metrics map[string]float64 `json:"metrics"`
	// Telemetry is the scraped serve_* counter snapshot — raw material for
	// regression forensics, reported but not gated.
	Telemetry map[string]float64 `json:"telemetry,omitempty"`
	// Noise records each timing metric's observed measurement spread across
	// the run's repeats, as a fraction of the best value ((max-min)/best).
	// The differ widens its threshold by the combined noise of the two runs
	// being compared, so a gate tuned on a quiet host does not flake on a
	// contended one — and a quiet host keeps the tight gate.
	Noise map[string]float64 `json:"noise,omitempty"`
	// Digest fingerprints the run's bit-exact outputs (FNV-1a over every
	// response's class and score bits, in request order). Only emitted by
	// deterministic runs (no-shed serve patterns and fault sweeps); the
	// differ treats a digest change as a regression, because bit-identity
	// is this repo's core contract.
	Digest string `json:"output_digest,omitempty"`
}

// Suite aggregates one run of every scenario — the single-file artifact CI
// caches, uploads, and diffs.
type Suite struct {
	SchemaVersion int      `json:"schema_version"`
	Reports       []Report `json:"reports"`
}

// WriteFile writes indented JSON to path (0644).
func (s Suite) WriteFile(path string) error {
	return writeJSON(path, s)
}

// WriteFile writes the single report as indented JSON to path (0644) — the
// per-scenario report.json.
func (r Report) WriteFile(path string) error {
	return writeJSON(path, r)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("benchscenario: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReports loads path as either a Suite or a single Report, returning
// the reports in file order. Schema-version mismatches are refused here,
// before any field is compared.
func ReadReports(path string) ([]Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchscenario: %w", err)
	}
	var s Suite
	if err := json.Unmarshal(data, &s); err == nil && len(s.Reports) > 0 {
		if s.SchemaVersion != SchemaVersion {
			return nil, fmt.Errorf("benchscenario: %s: suite schema v%d, this tool speaks v%d", path, s.SchemaVersion, SchemaVersion)
		}
		return s.Reports, nil
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchscenario: %s: not a suite or report: %w", path, err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchscenario: %s: report schema v%d, this tool speaks v%d", path, r.SchemaVersion, SchemaVersion)
	}
	if r.Provenance.Scenario == "" {
		return nil, fmt.Errorf("benchscenario: %s: report has no provenance.scenario", path)
	}
	return []Report{r}, nil
}

// Env is the run-wide provenance collected once per suite invocation: the
// build identity and the host-speed calibration constant.
type Env struct {
	Build       telemetry.BuildInfo
	CalibMFLOPS float64
}

// CollectEnv resolves the build info and measures the calibration constant
// (~30 ms of serial matmul).
func CollectEnv() Env {
	return Env{Build: telemetry.CollectBuildInfo(), CalibMFLOPS: calibrate()}
}

// calibrate measures the host's serial float64 matmul rate on a fixed
// 64×64×64 kernel, in MFLOP/s. It runs on one goroutine regardless of the
// worker-pool size, so the constant tracks single-core speed — the main
// axis hosts differ on — and the differ can compare rps-per-MFLOPS across
// machines. Best of several short windows: background load on a shared host
// only ever slows a window down, so the max is the host's real rate.
func calibrate() float64 {
	const n = 64
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%13) * 0.25
		b[i] = float64(i%7) * 0.5
	}
	const windows = 5
	const minDur = 10 * time.Millisecond
	best := 0.0
	for w := 0; w < windows; w++ {
		iters := 0
		start := time.Now()
		for time.Since(start) < minDur {
			for i := 0; i < n; i++ {
				for k := 0; k < n; k++ {
					aik := a[i*n+k]
					for j := 0; j < n; j++ {
						c[i*n+j] += aik * b[k*n+j]
					}
				}
			}
			iters++
		}
		elapsed := time.Since(start).Seconds()
		if elapsed <= 0 || c[0] < 0 { // c[0] read keeps the kernel from being dead code
			continue
		}
		if rate := float64(iters) * 2 * n * n * n / elapsed / 1e6; rate > best {
			best = rate
		}
	}
	return best
}
