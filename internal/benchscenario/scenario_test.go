package benchscenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validServeJSON is the smallest serve scenario the schema accepts; tests
// derive hostile variants from it.
const validServeJSON = `{
  "name": "tiny-serve",
  "kind": "serve",
  "network": "tiny-mlp",
  "seed": 1,
  "workers": 1,
  "train": {"images": 32, "test_images": 16, "epochs": 1, "batch": 8, "lr": 0.1},
  "serve": {"replicas": 1, "max_batch": 4, "queue": 64},
  "load": {"pattern": "steady", "requests": 24, "concurrency": 6}
}`

const validOnlineJSON = `{
  "name": "train-while-serve",
  "kind": "online",
  "network": "tiny-mlp",
  "seed": 7,
  "workers": 1,
  "train": {"images": 32, "test_images": 16, "epochs": 1, "batch": 8, "lr": 0.1},
  "serve": {"replicas": 1, "max_batch": 4, "queue": 64},
  "online": {"promotions": 2, "concurrency": 4}
}`

const validFaultJSON = `{
  "name": "fault-density",
  "kind": "fault",
  "network": "tiny-mlp",
  "seed": 11,
  "workers": 1,
  "train": {"images": 24, "test_images": 16, "epochs": 1, "batch": 8, "lr": 0.08},
  "faults": {"densities": [0, 0.0005], "spares": 4}
}`

func TestParseTable(t *testing.T) {
	cases := []struct {
		name    string
		json    string
		wantErr string // substring; empty means must parse
	}{
		{"valid serve", validServeJSON, ""},
		{"valid fault", validFaultJSON, ""},
		{"valid online", validOnlineJSON, ""},
		{"online missing online section", strings.Replace(validOnlineJSON, `"online": {"promotions": 2, "concurrency": 4}`, `"online": null`, 1), "needs both serve and online"},
		{"online with load", strings.Replace(validOnlineJSON, `"online":`, `"load": {"pattern": "steady", "requests": 1}, "online":`, 1), "does not take faults/load"},
		{"online zero promotions", strings.Replace(validOnlineJSON, `"promotions": 2`, `"promotions": 0`, 1), "online.promotions"},
		{"online too many promotions", strings.Replace(validOnlineJSON, `"promotions": 2`, `"promotions": 1000`, 1), "online.promotions"},
		{"online lanes outrun queue", strings.Replace(validOnlineJSON, `"concurrency": 4`, `"concurrency": 100`, 1), "queue >= concurrency"},
		{"online bad tolerance", strings.Replace(validOnlineJSON, `"concurrency": 4`, `"concurrency": 4, "tolerance": 2`, 1), "online.tolerance"},
		{"online epochs not one", strings.Replace(validOnlineJSON, `"epochs": 1,`, `"epochs": 2,`, 1), "train.epochs = 1"},
		{"online compare_serial", strings.Replace(validOnlineJSON, `"replicas": 1,`, `"replicas": 1, "compare_serial": true,`, 1), "compare_serial"},
		{"unknown top-level field", strings.Replace(validServeJSON, `"seed": 1,`, `"seed": 1, "spee": 9,`, 1), "unknown field"},
		{"unknown nested field", strings.Replace(validServeJSON, `"max_batch": 4,`, `"max_batch": 4, "maxbatch": 4,`, 1), "unknown field"},
		{"trailing garbage", validServeJSON + `{"again": true}`, "trailing data"},
		{"not json", "pipelayer", "parse"},
		{"empty object", "{}", "scenario name"},
		{"bad kind", strings.Replace(validServeJSON, `"kind": "serve"`, `"kind": "turbo"`, 1), "unknown kind"},
		{"uppercase name", strings.Replace(validServeJSON, `"name": "tiny-serve"`, `"name": "Tiny-Serve"`, 1), "scenario name"},
		{"path-traversal name", strings.Replace(validServeJSON, `"name": "tiny-serve"`, `"name": "../../etc"`, 1), "scenario name"},
		{"unknown network", strings.Replace(validServeJSON, `"network": "tiny-mlp"`, `"network": "skynet"`, 1), "unknown network"},
		{"negative seed ok", strings.Replace(validServeJSON, `"seed": 1,`, `"seed": -7,`, 1), ""},
		{"workers too big", strings.Replace(validServeJSON, `"workers": 1,`, `"workers": 9999,`, 1), "workers"},
		{"zero train images", strings.Replace(validServeJSON, `"images": 32,`, `"images": 0,`, 1), "train.images"},
		{"huge train images", strings.Replace(validServeJSON, `"images": 32,`, `"images": 1000000000,`, 1), "train.images"},
		{"negative epochs", strings.Replace(validServeJSON, `"epochs": 1,`, `"epochs": -3,`, 1), "train.epochs"},
		{"lr zero", strings.Replace(validServeJSON, `"lr": 0.1`, `"lr": 0`, 1), "train.lr"},
		{"lr huge", strings.Replace(validServeJSON, `"lr": 0.1`, `"lr": 50`, 1), "train.lr"},
		{"negative queue", strings.Replace(validServeJSON, `"queue": 64`, `"queue": -1`, 1), "serve.queue"},
		{"replicas out of range", strings.Replace(validServeJSON, `"replicas": 1,`, `"replicas": 128,`, 1), "serve.replicas"},
		{"max_wait negative", strings.Replace(validServeJSON, `"max_batch": 4,`, `"max_batch": 4, "max_wait_ms": -2,`, 1), "serve.max_wait_ms"},
		{"huge requests", strings.Replace(validServeJSON, `"requests": 24,`, `"requests": 100000000,`, 1), "load.requests"},
		{"bad pattern", strings.Replace(validServeJSON, `"pattern": "steady"`, `"pattern": "stampede"`, 1), "load.pattern"},
		{"steady outruns queue", strings.Replace(validServeJSON, `"concurrency": 6`, `"concurrency": 100`, 1), "queue >= concurrency"},
		{
			"burst outruns queue",
			strings.Replace(strings.Replace(validServeJSON, `"pattern": "steady"`, `"pattern": "burst"`, 1), `"requests": 24,`, `"requests": 100,`, 1),
			"queue >= requests",
		},
		{"overload must overload", strings.Replace(validServeJSON, `"pattern": "steady"`, `"pattern": "overload"`, 1), "concurrency > queue"},
		{"serve kind with faults", strings.Replace(validServeJSON, `"load":`, `"faults": {"densities": [0]}, "load":`, 1), "does not take faults/online"},
		{"fault kind missing faults", strings.Replace(validFaultJSON, `"faults": {"densities": [0, 0.0005], "spares": 4}`, `"faults": null`, 1), "needs a faults"},
		{"fault kind with load", strings.Replace(validFaultJSON, `"faults":`, `"load": {"pattern": "steady", "requests": 1}, "faults":`, 1), "does not take serve/load"},
		{"density out of range", strings.Replace(validFaultJSON, `[0, 0.0005]`, `[0, 1.5]`, 1), "densities[1]"},
		{"negative density", strings.Replace(validFaultJSON, `[0, 0.0005]`, `[-0.1]`, 1), "densities[0]"},
		{"no densities", strings.Replace(validFaultJSON, `[0, 0.0005]`, `[]`, 1), "densities"},
		{"spares out of range", strings.Replace(validFaultJSON, `"spares": 4`, `"spares": 1000`, 1), "faults.spares"},
		{"serve kind missing load", strings.Replace(validServeJSON, `"load": {"pattern": "steady", "requests": 24, "concurrency": 6}`, `"load": null`, 1), "needs both serve and load"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.json))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Parse() = %v, want ok", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Parse() accepted invalid scenario, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Parse() error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseDefaultsAndEffectiveConfig(t *testing.T) {
	sc, err := Parse(strings.NewReader(validServeJSON))
	if err != nil {
		t.Fatal(err)
	}
	eff := sc.Serve.ToConfig().WithDefaults()
	if eff.Replicas != 1 || eff.MaxBatch != 4 || eff.QueueCap != 64 {
		t.Fatalf("effective config = %+v, want replicas=1 max_batch=4 queue=64", eff)
	}
	if eff.MaxWait <= 0 {
		t.Fatalf("effective MaxWait %v not defaulted", eff.MaxWait)
	}
}

func writeScenarioDir(t *testing.T, root, name, body string) string {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ScenarioFile), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestLoadDirNameMustMatchDirectory(t *testing.T) {
	root := t.TempDir()
	dir := writeScenarioDir(t, root, "renamed-dir", validServeJSON)
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "directory name") {
		t.Fatalf("LoadDir() = %v, want directory-name mismatch error", err)
	}
}

func TestDiscover(t *testing.T) {
	root := t.TempDir()
	writeScenarioDir(t, root, "tiny-serve", validServeJSON)
	writeScenarioDir(t, root, "fault-density", validFaultJSON)
	// Stray files next to scenario dirs are ignored; files inside matching
	// the glob are skipped as non-directories.
	if err := os.WriteFile(filepath.Join(root, "README.md"), []byte("not a scenario"), 0o644); err != nil {
		t.Fatal(err)
	}

	scs, err := Discover(filepath.Join(root, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("Discover() = %d scenarios, want 2", len(scs))
	}
	// Sorted by name.
	if scs[0].Name != "fault-density" || scs[1].Name != "tiny-serve" {
		t.Fatalf("Discover() order = %s, %s; want fault-density, tiny-serve", scs[0].Name, scs[1].Name)
	}

	// Glob selection narrows the suite.
	scs, err = Discover(filepath.Join(root, "tiny-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 || scs[0].Name != "tiny-serve" {
		t.Fatalf("Discover(tiny-*) = %+v, want just tiny-serve", scs)
	}

	// An empty suite is an error, not a silent pass.
	if _, err := Discover(filepath.Join(root, "nope-*")); err == nil {
		t.Fatal("Discover() accepted a glob matching nothing")
	}

	// One bad scenario fails the whole discovery.
	writeScenarioDir(t, root, "broken", `{"name": "broken"`)
	if _, err := Discover(filepath.Join(root, "*")); err == nil {
		t.Fatal("Discover() ignored a malformed scenario")
	}
}

// TestCheckedInScenarios parses every scenario shipped in the repo, so a
// config typo fails unit tests before it fails the CI bench job.
func TestCheckedInScenarios(t *testing.T) {
	glob := filepath.Join("..", "..", "benchmarks", "scenarios", "*")
	scs, err := Discover(glob)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) < 4 {
		t.Fatalf("checked-in suite has %d scenarios, want >= 4", len(scs))
	}
	kinds := map[string]bool{}
	patterns := map[string]bool{}
	for _, sc := range scs {
		kinds[sc.Kind] = true
		if sc.Load != nil {
			patterns[sc.Load.Pattern] = true
		}
	}
	if !kinds[KindServe] || !kinds[KindFault] {
		t.Fatalf("checked-in suite kinds = %v, want both serve and fault", kinds)
	}
	if !patterns[PatternOverload] {
		t.Fatal("checked-in suite has no sustained-overload scenario")
	}
}

func TestSanitizeMetric(t *testing.T) {
	if got := sanitizeMetric("remap+degrade"); got != "remap_degrade" {
		t.Fatalf("sanitizeMetric = %q, want remap_degrade", got)
	}
}
