package benchscenario

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"pipelayer/internal/core"
	"pipelayer/internal/dataset"
	"pipelayer/internal/energy"
	"pipelayer/internal/experiments"
	"pipelayer/internal/mapping"
	"pipelayer/internal/networks"
	"pipelayer/internal/nn"
	"pipelayer/internal/parallel"
	"pipelayer/internal/serve"
	"pipelayer/internal/telemetry"
	"pipelayer/internal/telemetry/flight"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

// Options tunes one Run. The zero value is fully usable: build info and
// calibration are collected on demand and the runner keeps its own
// telemetry registry.
type Options struct {
	// Env carries the suite-wide build info + calibration so a multi-
	// scenario run stamps every report identically; nil collects fresh.
	Env *Env
	// Metrics, when non-nil, receives the serve_* instruments instead of a
	// private registry (the -smoke wrapper threads its -metrics registry
	// through here).
	Metrics *telemetry.Registry
	// Flight/TraceDepth are forwarded to the measured (batched) server so a
	// scenario run can leave a Perfetto trace behind.
	Flight     *flight.Recorder
	TraceDepth int
	// Repeats is how many times the timed passes run; the fastest repeat is
	// reported (0 means 1). Interference from a shared host only ever slows
	// a run down, so best-of-k is the low-variance estimator of what the
	// code can do — and the no-shed digest must agree across every repeat,
	// which turns the repetition into a free determinism check.
	Repeats int
}

// Run executes one scenario end to end — train, measure, scrape — and
// returns its uniform report. ctx bounds the whole run: every request the
// load generator issues threads it, so canceling ctx drains the scenario
// instead of orphaning in-flight work.
func Run(ctx context.Context, sc Scenario, opt Options) (Report, error) {
	if err := sc.Validate(); err != nil {
		return Report{}, err
	}
	if opt.Env == nil {
		env := CollectEnv()
		opt.Env = &env
	}
	if sc.Workers > 0 {
		prev := parallel.Workers()
		parallel.SetWorkers(sc.Workers)
		defer parallel.SetWorkers(prev)
	}
	switch sc.Kind {
	case KindServe:
		acc, test, err := trainAccelerator(sc)
		if err != nil {
			return Report{}, err
		}
		return RunServeOn(ctx, acc, test, sc, opt)
	case KindFault:
		return runFault(sc, *opt.Env), nil
	case KindOnline:
		return runOnline(ctx, sc, opt)
	}
	return Report{}, fmt.Errorf("benchscenario: unknown kind %q", sc.Kind) // unreachable after Validate
}

// resolveNetwork maps a scenario's network name to its spec: the shared
// testutil fixtures by their kebab names, or a servable evaluation network
// case-insensitively.
func resolveNetwork(name string) (networks.Spec, error) {
	switch strings.ToLower(name) {
	case "tiny-mlp":
		return testutil.TinyMLP("tiny-mlp"), nil
	case "tiny-deep-mlp":
		return testutil.TinyDeepMLP("tiny-deep-mlp"), nil
	case "tiny-cnn":
		return testutil.TinyDeepCNN("tiny-cnn"), nil
	}
	for _, s := range []networks.Spec{networks.MnistA(), networks.MnistB(), networks.MnistC(), networks.Mnist0()} {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	return networks.Spec{}, fmt.Errorf("unknown network %q (want tiny-mlp, tiny-deep-mlp, tiny-cnn, or a servable Mnist-* spec)", name)
}

// trainAccelerator builds and trains the scenario's machine, returning it
// with the held-out samples that feed the load generator.
func trainAccelerator(sc Scenario) (*core.Accelerator, []nn.Sample, error) {
	spec, err := resolveNetwork(sc.Network)
	if err != nil {
		return nil, nil, fmt.Errorf("benchscenario: %w", err)
	}
	acc := core.New(energy.DefaultModel())
	if err := acc.TopologySet(spec, 1); err != nil {
		return nil, nil, fmt.Errorf("benchscenario: %w", err)
	}
	if err := acc.WeightLoad(nil, rand.New(rand.NewSource(sc.Seed))); err != nil {
		return nil, nil, fmt.Errorf("benchscenario: %w", err)
	}
	flat := spec.Layers[0].Kind == mapping.KindFC
	train, test := dataset.TrainTest(sc.Train.Images, sc.Train.TestImages, dataset.DefaultOptions(flat), sc.Seed)
	for e := 0; e < sc.Train.Epochs; e++ {
		if _, err := acc.Train(train, sc.Train.Batch, sc.Train.LR); err != nil {
			return nil, nil, fmt.Errorf("benchscenario: train: %w", err)
		}
	}
	return acc, test, nil
}

// RunServeOn measures a serve scenario against an already-trained machine.
// It is the entry point pipelayer-serve's -smoke wraps, so the ad-hoc smoke
// flags and the checked-in scenarios exercise the same runner and emit the
// same schema. Only the serve/load halves of sc are consulted (and
// re-validated): training already happened.
func RunServeOn(ctx context.Context, acc *core.Accelerator, samples []nn.Sample, sc Scenario, opt Options) (Report, error) {
	if sc.Serve == nil || sc.Load == nil {
		return Report{}, fmt.Errorf("benchscenario: scenario %s: serve and load sections required", sc.Name)
	}
	if err := sc.Serve.validate(); err != nil {
		return Report{}, fmt.Errorf("benchscenario: scenario %s: %w", sc.Name, err)
	}
	effective := sc.Serve.ToConfig().WithDefaults()
	if err := sc.Load.validate(effective); err != nil {
		return Report{}, fmt.Errorf("benchscenario: scenario %s: %w", sc.Name, err)
	}
	if len(samples) == 0 {
		return Report{}, fmt.Errorf("benchscenario: scenario %s: no samples", sc.Name)
	}
	if opt.Env == nil {
		env := CollectEnv()
		opt.Env = &env
	}
	n := sc.Load.Requests
	input := func(i int) *tensor.Tensor { return samples[i%len(samples)].Input }

	// Bit-exact reference: one serial inference per distinct sample. Every
	// accepted response — batched, replicated, overloaded or not — must
	// match these bits; that is the repo's determinism contract, measured.
	ref, err := referenceOutputs(acc, samples)
	if err != nil {
		return Report{}, err
	}

	repeats := opt.Repeats
	if repeats < 1 {
		repeats = 1
	}

	metrics := map[string]float64{}
	spread := newSpreadTracker()

	if sc.Serve.CompareSerial {
		bestSerial := 0.0
		for r := 0; r < repeats; r++ {
			serialRPS, err := runSerialPass(ctx, acc, ref, input, n)
			if err != nil {
				return Report{}, fmt.Errorf("benchscenario: scenario %s: %w", sc.Name, err)
			}
			spread.observe("serial_rps", serialRPS)
			if serialRPS > bestSerial {
				bestSerial = serialRPS
			}
		}
		metrics["serial_rps"] = bestSerial
	}

	// Each repeat gets a fresh server (and, unless the caller threaded a
	// registry through, a fresh registry, so its percentiles describe that
	// repeat alone). Timing metrics merge per metric across repeats — max
	// for throughput, min for latency — because interference noise is
	// one-sided per metric, not per run: the repeat with the best rps is not
	// necessarily the one with the cleanest p99.
	var best Report
	digest := ""
	for r := 0; r < repeats; r++ {
		rep, runDigest, err := runBatchedPass(ctx, acc, ref, input, sc, opt, effective, metrics)
		if err != nil {
			return Report{}, err
		}
		if runDigest != "" {
			if digest != "" && digest != runDigest {
				return Report{}, fmt.Errorf("benchscenario: scenario %s: repeats produced different digests %s vs %s — determinism broke", sc.Name, digest, runDigest)
			}
			digest = runDigest
		}
		spread.observe("rps", rep.Metrics["rps"])
		for _, q := range []string{"p50_ms", "p90_ms", "p99_ms"} {
			spread.observe(q, rep.Metrics[q])
		}
		if r == 0 {
			best = rep
			continue
		}
		if rep.Metrics["rps"] > best.Metrics["rps"] {
			// Non-timing fields (error_rate, telemetry, shard utilization)
			// follow the cleanest throughput measurement.
			best.Metrics["rps"] = rep.Metrics["rps"]
			best.Metrics["error_rate"] = rep.Metrics["error_rate"]
			for k, v := range rep.Metrics {
				if strings.HasPrefix(k, "shard_") {
					best.Metrics[k] = v
				}
			}
			best.Telemetry = rep.Telemetry
		}
		for _, q := range []string{"p50_ms", "p90_ms", "p99_ms"} {
			if rep.Metrics[q] < best.Metrics[q] {
				best.Metrics[q] = rep.Metrics[q]
			}
		}
	}
	if s, ok := best.Metrics["serial_rps"]; ok && s > 0 {
		best.Metrics["speedup"] = best.Metrics["rps"] / s
	}
	best.Digest = digest
	best.Noise = spread.noise()
	// speedup inherits both of its operands' uncertainties.
	if _, ok := best.Metrics["speedup"]; ok {
		best.Noise["speedup"] = best.Noise["rps"] + best.Noise["serial_rps"]
	}
	return best, nil
}

// spreadTracker accumulates per-metric min/max over repeated measurements to
// quantify how noisy this run of the benchmark actually was.
type spreadTracker struct {
	min, max map[string]float64
}

func newSpreadTracker() *spreadTracker {
	return &spreadTracker{min: map[string]float64{}, max: map[string]float64{}}
}

func (s *spreadTracker) observe(metric string, v float64) {
	if lo, ok := s.min[metric]; !ok || v < lo {
		s.min[metric] = v
	}
	if hi, ok := s.max[metric]; !ok || v > hi {
		s.max[metric] = v
	}
}

// noise reports each observed metric's (max-min)/max. A single repeat yields
// zeros: one sample has no measurable spread (the differ then gates at the
// bare threshold, exactly the pre-noise behavior).
func (s *spreadTracker) noise() map[string]float64 {
	out := map[string]float64{}
	for metric, hi := range s.max {
		if hi > 0 {
			out[metric] = (hi - s.min[metric]) / hi
		}
	}
	return out
}

// runBatchedPass is one timed measurement of the batching server under the
// scenario's load: verify every accepted response against the reference,
// then assemble the uniform report. The digest is returned separately so the
// repeat loop can cross-check it; base carries pre-measured metrics
// (serial_rps) into the report.
func runBatchedPass(ctx context.Context, acc *core.Accelerator, ref []refOutput, input func(int) *tensor.Tensor, sc Scenario, opt Options, effective serve.Config, base map[string]float64) (Report, string, error) {
	n := sc.Load.Requests
	reg := opt.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	cfg := effective
	cfg.Metrics = reg
	cfg.Flight = opt.Flight
	cfg.TraceDepth = opt.TraceDepth
	srv, err := serve.New(acc, cfg)
	if err != nil {
		return Report{}, "", fmt.Errorf("benchscenario: scenario %s: %w", sc.Name, err)
	}
	// Pre-pass span baseline: the registry may be shared across repeats (or
	// threaded in by the caller), so per-shard busy time is the delta over
	// this pass, not the absolute total.
	pre := reg.Snapshot()
	results, errs, elapsed := fire(ctx, srv, input, n, sc.Load.lanes())
	if err := srv.Close(); err != nil {
		return Report{}, "", fmt.Errorf("benchscenario: scenario %s: close: %w", sc.Name, err)
	}

	shed := 0
	accepted := 0
	for i := 0; i < n; i++ {
		switch {
		case errs[i] == nil:
			accepted++
			want := ref[i%len(ref)]
			if results[i].Class != want.class || !equalBits(results[i].Scores, want.scores) {
				return Report{}, "", fmt.Errorf("benchscenario: scenario %s: request %d diverged from the serial reference", sc.Name, i)
			}
		case sc.Load.Pattern == PatternOverload && errors.Is(errs[i], serve.ErrOverloaded):
			shed++
		default:
			return Report{}, "", fmt.Errorf("benchscenario: scenario %s: request %d: %w", sc.Name, i, errs[i])
		}
	}
	if accepted == 0 {
		return Report{}, "", fmt.Errorf("benchscenario: scenario %s: every request was shed", sc.Name)
	}
	if sc.Load.Pattern == PatternOverload && shed == 0 {
		// An overload scenario that never overloads is measuring the wrong
		// thing; its config needs more lanes or a smaller queue.
		return Report{}, "", fmt.Errorf("benchscenario: scenario %s: overload pattern shed nothing — not actually overloaded", sc.Name)
	}

	metrics := map[string]float64{}
	for k, v := range base {
		metrics[k] = v
	}
	metrics["rps"] = float64(accepted) / elapsed.Seconds()
	metrics["error_rate"] = float64(shed) / float64(n)
	if s, ok := metrics["serial_rps"]; ok && s > 0 {
		metrics["speedup"] = metrics["rps"] / s
	}
	snap := reg.Snapshot()
	hist, ok := snap.Histograms["serve_request_latency_seconds"]
	if !ok {
		return Report{}, "", fmt.Errorf("benchscenario: scenario %s: serve_request_latency_seconds not registered", sc.Name)
	}
	metrics["p50_ms"] = hist.Quantile(0.50) * 1e3
	metrics["p90_ms"] = hist.Quantile(0.90) * 1e3
	metrics["p99_ms"] = hist.Quantile(0.99) * 1e3
	// Per-shard pipeline utilization: fraction of the measured window each
	// shard spent computing. Reported (not gated) — the balance across shards
	// is the forensic signal when a sharded scenario's rps moves.
	for k := 0; k < effective.Shards; k++ {
		name := telemetry.Name("serve_shard_busy_seconds", map[string]string{"shard": strconv.Itoa(k)})
		if busy := snap.Spans[name].TotalSeconds - pre.Spans[name].TotalSeconds; busy > 0 && elapsed > 0 {
			metrics[fmt.Sprintf("shard_%d_util", k)] = busy / elapsed.Seconds()
		}
	}

	rep := Report{
		SchemaVersion: SchemaVersion,
		Provenance:    provenanceFor(sc, *opt.Env, effective),
		Metrics:       metrics,
		Telemetry:     snap.ScrapeCounters("serve_"),
	}
	// The digest only exists when the run is closed under determinism: an
	// overload pattern sheds a timing-dependent subset, so its output set
	// is not comparable bit-for-bit across runs.
	digest := ""
	if sc.Load.Pattern != PatternOverload {
		digest = digestResults(results)
	}
	return rep, digest, nil
}

type refOutput struct {
	scores *tensor.Tensor
	class  int
}

func referenceOutputs(acc *core.Accelerator, samples []nn.Sample) ([]refOutput, error) {
	rep, err := acc.NewReplica()
	if err != nil {
		return nil, fmt.Errorf("benchscenario: reference replica: %w", err)
	}
	out := make([]refOutput, len(samples))
	for i, sm := range samples {
		y := rep.Infer(sm.Input)
		_, class := y.Max()
		out[i] = refOutput{scores: y, class: class}
	}
	return out, nil
}

// runSerialPass pushes all n requests one at a time through a batch-of-1
// server, verifying bit-identity against the reference, and returns the
// serial throughput — the denominator of the batched-vs-serial speedup.
func runSerialPass(ctx context.Context, acc *core.Accelerator, ref []refOutput, input func(int) *tensor.Tensor, n int) (float64, error) {
	srv, err := serve.New(acc, serve.Config{Replicas: 1, MaxBatch: 1, QueueCap: 32})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	start := time.Now()
	for i := 0; i < n; i++ {
		r, err := srv.Predict(ctx, input(i))
		if err != nil {
			return 0, fmt.Errorf("serial request %d: %w", i, err)
		}
		want := ref[i%len(ref)]
		if r.Class != want.class || !equalBits(r.Scores, want.scores) {
			return 0, fmt.Errorf("serial request %d diverged from the reference replica", i)
		}
	}
	return float64(n) / time.Since(start).Seconds(), nil
}

// fire drives the closed-loop load: `lanes` concurrent lanes each issue its
// share of the n requests back to back, so at most `lanes` requests are
// outstanding at any instant (for burst, lanes == n — everything at once).
// Results and errors land at the request's index; timing covers first send
// to last response.
func fire(ctx context.Context, srv *serve.Server, input func(int) *tensor.Tensor, n, lanes int) ([]serve.Result, []error, time.Duration) {
	if lanes > n {
		lanes = n
	}
	results := make([]serve.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	// All lanes arm before any fires: without the barrier, the server can
	// drain the early lanes' requests while later lanes are still being
	// spawned, so "concurrency 64" quietly degrades into a ramp.
	release := make(chan struct{})
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		//pipelayer:allow-spawn bounded load-generator fan-out (≤ validated lane cap), joined right below before any result is read
		go func(lane int) {
			defer wg.Done()
			<-release
			for i := lane; i < n; i += lanes {
				results[i], errs[i] = srv.Predict(ctx, input(i))
			}
		}(lane)
	}
	start := time.Now()
	close(release)
	wg.Wait()
	return results, errs, time.Since(start)
}

// runFault executes the fault-density sweep and flattens it into the
// uniform metric map: baseline_acc plus acc_<mode>_d<i> per (tolerance
// mode, density index). All of these are deterministic given the seed, so
// the whole report is digest-gated.
func runFault(sc Scenario, env Env) Report {
	cfg := experiments.FaultSweepConfig{
		TrainSamples: sc.Train.Images,
		TestSamples:  sc.Train.TestImages,
		Epochs:       sc.Train.Epochs,
		Batch:        sc.Train.Batch,
		LearningRate: sc.Train.LR,
		Hidden:       32,
		Seed:         sc.Seed,
		Densities:    sc.Faults.Densities,
		Spares:       sc.Faults.Spares,
		Drift:        sc.Faults.Drift,
		Refresh:      sc.Faults.Refresh,
	}
	res := experiments.FaultSweep(cfg)

	metrics := map[string]float64{"baseline_acc": res.BaselineAcc}
	h := fnv.New64a()
	hashFloat(h, res.BaselineAcc)
	for _, row := range res.Rows {
		mode := sanitizeMetric(row.Mode)
		for di, acc := range row.Accuracies {
			metrics[fmt.Sprintf("acc_%s_d%d", mode, di)] = acc
			hashFloat(h, acc)
		}
	}
	return Report{
		SchemaVersion: SchemaVersion,
		Provenance:    provenanceFor(sc, env, serve.Config{}),
		Metrics:       metrics,
		Digest:        fmt.Sprintf("%016x", h.Sum64()),
	}
}

// provenanceFor stamps the report with the scenario's identity, the
// *effective* serving shape, and the suite environment.
func provenanceFor(sc Scenario, env Env, effective serve.Config) Provenance {
	p := Provenance{
		Scenario:    sc.Name,
		Kind:        sc.Kind,
		Network:     sc.Network,
		Seed:        sc.Seed,
		Workers:     parallel.Workers(),
		BuildInfo:   env.Build,
		CalibMFLOPS: env.CalibMFLOPS,
	}
	switch sc.Kind {
	case KindServe:
		p.Replicas = effective.Replicas
		p.MaxBatch = effective.MaxBatch
		p.Shards = effective.Shards
		p.Pattern = sc.Load.Pattern
	case KindOnline:
		p.Replicas = effective.Replicas
		p.MaxBatch = effective.MaxBatch
		p.Shards = effective.Shards
		p.Pattern = KindOnline
	}
	return p
}

func equalBits(a, b *tensor.Tensor) bool {
	if a.Size() != b.Size() {
		return false
	}
	for i := 0; i < a.Size(); i++ {
		if a.At(i) != b.At(i) {
			return false
		}
	}
	return true
}

// digestResults fingerprints the responses' exact bits in request order:
// FNV-1a over each class and every score's IEEE-754 representation.
func digestResults(results []serve.Result) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, r := range results {
		binary.LittleEndian.PutUint64(buf[:], uint64(r.Class))
		h.Write(buf[:])
		for i := 0; i < r.Scores.Size(); i++ {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(r.Scores.At(i)))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func hashFloat(h interface{ Write([]byte) (int, error) }, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	h.Write(buf[:])
}
