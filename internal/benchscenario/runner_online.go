package benchscenario

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"pipelayer/internal/checkpoint"
	"pipelayer/internal/core"
	"pipelayer/internal/dataset"
	"pipelayer/internal/energy"
	"pipelayer/internal/mapping"
	"pipelayer/internal/networks"
	"pipelayer/internal/online"
	"pipelayer/internal/telemetry"
	"pipelayer/internal/tensor"
)

// runOnline measures the train-while-serve path: Concurrency closed-loop
// lanes predict continuously while the supervisor trains and hot-swaps
// until the promotion target lands. Every response must carry a weight
// version and be bit-identical to that version's checkpointed weights —
// the scenario fails on any torn, versionless, or shed response. No output
// digest is emitted: which requests land on which version is scheduler
// timing, not code determinism.
func runOnline(ctx context.Context, sc Scenario, opt Options) (Report, error) {
	spec, err := resolveNetwork(sc.Network)
	if err != nil {
		return Report{}, fmt.Errorf("benchscenario: %w", err)
	}
	flat := spec.Layers[0].Kind == mapping.KindFC
	dir, err := os.MkdirTemp("", "pipelayer-online-")
	if err != nil {
		return Report{}, fmt.Errorf("benchscenario: scenario %s: %w", sc.Name, err)
	}
	defer os.RemoveAll(dir)

	reg := opt.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	effective := sc.Serve.ToConfig().WithDefaults()
	tol := sc.Online.Tolerance
	if tol == 0 {
		tol = 1 // never roll back: the run must reach its promotion target
	}
	serveCfg := sc.Serve.ToConfig()
	serveCfg.Metrics = reg
	serveCfg.Flight = opt.Flight
	serveCfg.TraceDepth = opt.TraceDepth
	cfg := online.Config{
		Spec:          spec,
		Seed:          sc.Seed,
		Dir:           dir,
		Eval:          dataset.Generate(sc.Train.TestImages, dataset.DefaultOptions(flat), sc.Seed+1),
		Serve:         serveCfg,
		Batch:         sc.Train.Batch,
		RoundImages:   sc.Train.Images,
		LR:            sc.Train.LR,
		SnapshotEvery: sc.Online.SnapshotEvery,
		Tolerance:     tol,
		Metrics:       reg,
		Flight:        opt.Flight,
	}
	sup, err := online.New(online.NewSyntheticFeed(flat, sc.Seed), cfg)
	if err != nil {
		return Report{}, fmt.Errorf("benchscenario: scenario %s: %w", sc.Name, err)
	}

	inputs := make([]*tensor.Tensor, len(cfg.Eval))
	for i, sm := range cfg.Eval {
		inputs[i] = sm.Input
	}
	type obs struct {
		input   int
		version uint64
		scores  []float64
	}
	lanes := sc.Online.lanes()
	perLane := make([][]obs, lanes)
	laneErr := make([]error, lanes)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		//pipelayer:allow-spawn bounded load-generator fan-out (≤ validated lane cap), joined below before any result is read
		go func(lane int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				in := (lane + i) % len(inputs)
				res, err := sup.Server().Predict(ctx, inputs[in])
				if err != nil {
					laneErr[lane] = fmt.Errorf("lane %d request %d: %w", lane, i, err)
					return
				}
				if res.Version == 0 {
					laneErr[lane] = fmt.Errorf("lane %d request %d: response without a weight version", lane, i)
					return
				}
				perLane[lane] = append(perLane[lane], obs{in, res.Version, res.Scores.Data()})
			}
		}(lane)
	}

	var stepErr error
	for sup.Promotions() < int64(sc.Online.Promotions) {
		if stepErr = sup.Step(); stepErr != nil {
			break
		}
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if stepErr != nil {
		sup.Close()
		return Report{}, fmt.Errorf("benchscenario: scenario %s: %w", sc.Name, stepErr)
	}
	for _, err := range laneErr {
		if err != nil {
			sup.Close()
			return Report{}, fmt.Errorf("benchscenario: scenario %s: %w", sc.Name, err)
		}
	}

	// Bit-verify every response against its version's checkpoint. The store
	// is reopened read-only style after training stopped; references are
	// rebuilt once per observed version.
	refs := map[uint64][][]float64{}
	seen := map[uint64]int{}
	total := 0
	for _, lane := range perLane {
		for _, o := range lane {
			ref, ok := refs[o.version]
			if !ok {
				ref, err = onlineReference(dir, spec, o.version, inputs)
				if err != nil {
					sup.Close()
					return Report{}, fmt.Errorf("benchscenario: scenario %s: %w", sc.Name, err)
				}
				refs[o.version] = ref
			}
			if !equalFloats(o.scores, ref[o.input]) {
				sup.Close()
				return Report{}, fmt.Errorf("benchscenario: scenario %s: torn response — input %d under v%d does not match that version's checkpoint", sc.Name, o.input, o.version)
			}
			seen[o.version]++
			total++
		}
	}
	if total == 0 {
		sup.Close()
		return Report{}, fmt.Errorf("benchscenario: scenario %s: no responses observed", sc.Name)
	}
	if err := sup.Close(); err != nil {
		return Report{}, fmt.Errorf("benchscenario: scenario %s: close: %w", sc.Name, err)
	}

	metrics := map[string]float64{
		"rps":               float64(total) / elapsed.Seconds(),
		"error_rate":        0, // validation sized the queue: nothing may shed
		"promotions":        float64(sup.Promotions()),
		"rounds":            float64(sup.Rounds()),
		"rollbacks":         float64(sup.Rollbacks()),
		"versions_observed": float64(len(seen)),
	}
	hist, ok := reg.Snapshot().Histograms["serve_request_latency_seconds"]
	if !ok {
		return Report{}, fmt.Errorf("benchscenario: scenario %s: serve_request_latency_seconds not registered", sc.Name)
	}
	metrics["p50_ms"] = hist.Quantile(0.50) * 1e3
	metrics["p90_ms"] = hist.Quantile(0.90) * 1e3
	metrics["p99_ms"] = hist.Quantile(0.99) * 1e3

	return Report{
		SchemaVersion: SchemaVersion,
		Provenance:    provenanceFor(sc, *opt.Env, effective),
		Metrics:       metrics,
		Telemetry:     reg.Snapshot().ScrapeCounters("serve_"),
	}, nil
}

// onlineReference rebuilds version v from the checkpoint directory and runs
// every input through a fresh replica — the ground truth the scenario holds
// each response to.
func onlineReference(dir string, spec networks.Spec, v uint64, inputs []*tensor.Tensor) ([][]float64, error) {
	store, err := checkpoint.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	net := networks.BuildTrainable(spec, rand.New(rand.NewSource(0)))
	if _, err := store.Load(v, net); err != nil {
		return nil, fmt.Errorf("reference for v%d: %w", v, err)
	}
	machine, err := core.NewFromSnapshot(energy.DefaultModel(), spec, 1, net)
	if err != nil {
		return nil, err
	}
	rep, err := machine.NewReplica()
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(inputs))
	for i, x := range inputs {
		out[i] = rep.Infer(x).Data()
	}
	return out, nil
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
