package benchscenario

import (
	"path/filepath"
	"strings"
	"testing"
)

// mkRep builds a well-formed report for one scenario with matching config
// provenance, so diff tests only vary what they mean to vary.
func mkRep(scenario string, calib float64, digest string, metrics map[string]float64) Report {
	return Report{
		SchemaVersion: SchemaVersion,
		Provenance: Provenance{
			Scenario: scenario, Kind: KindServe, Network: "tiny-mlp",
			Seed: 1, Workers: 1, Replicas: 2, MaxBatch: 4,
			CalibMFLOPS: calib,
		},
		Metrics: metrics,
		Digest:  digest,
	}
}

func diffOne(t *testing.T, oldRep, newRep Report, threshold float64) DiffResult {
	t.Helper()
	res, err := Diff([]Report{oldRep}, []Report{newRep}, DiffOptions{ThresholdPct: threshold})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDiffInjectedRegression is the gate's core promise: a 20% throughput
// drop fails a 15% threshold, and 5% noise does not.
func TestDiffInjectedRegression(t *testing.T) {
	oldRep := mkRep("s", 100, "", map[string]float64{"rps": 100})

	res := diffOne(t, oldRep, mkRep("s", 100, "", map[string]float64{"rps": 80}), 15)
	if !res.Regressed() {
		t.Fatal("20%% rps drop passed a 15%% gate")
	}
	if len(res.Deltas) != 1 || !res.Deltas[0].Regressed || res.Deltas[0].Metric != "rps" {
		t.Fatalf("deltas = %+v, want rps regressed", res.Deltas)
	}
	if !strings.Contains(res.Render(), "REGRESSED") {
		t.Fatalf("Render() does not flag the regression:\n%s", res.Render())
	}

	if res := diffOne(t, oldRep, mkRep("s", 100, "", map[string]float64{"rps": 95}), 15); res.Regressed() {
		t.Fatalf("5%% noise failed a 15%% gate: %+v", res.Deltas)
	}
	// Improvements never regress, however large.
	if res := diffOne(t, oldRep, mkRep("s", 100, "", map[string]float64{"rps": 500}), 15); res.Regressed() {
		t.Fatal("a 5x speedup was reported as a regression")
	}
}

func TestDiffLatencyIsLowerBetter(t *testing.T) {
	oldRep := mkRep("s", 100, "", map[string]float64{"p90_ms": 10})
	if res := diffOne(t, oldRep, mkRep("s", 100, "", map[string]float64{"p90_ms": 12}), 15); !res.Regressed() {
		t.Fatal("20%% latency increase passed a 15%% gate")
	}
	if res := diffOne(t, oldRep, mkRep("s", 100, "", map[string]float64{"p90_ms": 5}), 15); res.Regressed() {
		t.Fatal("a latency improvement was reported as a regression")
	}
}

// TestDiffTailPercentileIsInformational: p99 of a short run is its sample
// max; it is reported but never gates, no matter how far it moves.
func TestDiffTailPercentileIsInformational(t *testing.T) {
	oldRep := mkRep("s", 100, "", map[string]float64{"p99_ms": 1})
	res := diffOne(t, oldRep, mkRep("s", 100, "", map[string]float64{"p99_ms": 50}), 15)
	if res.Regressed() {
		t.Fatalf("p99 gated: %+v", res.Deltas)
	}
	if len(res.Deltas) != 1 || res.Deltas[0].Gated {
		t.Fatalf("p99 delta not reported as informational: %+v", res.Deltas)
	}
}

// TestDiffHostCalibration: the new host is half as fast (calib 200 -> 100),
// so raw rps falling 45% is actually a 10% improvement per unit of host
// speed, and latency nearly doubling is within budget.
func TestDiffHostCalibration(t *testing.T) {
	oldRep := mkRep("s", 200, "", map[string]float64{"rps": 100, "p50_ms": 10})
	newRep := mkRep("s", 100, "", map[string]float64{"rps": 55, "p50_ms": 18})
	res := diffOne(t, oldRep, newRep, 15)
	if res.Regressed() {
		t.Fatalf("host-speed change was mistaken for a code regression: %+v", res.Deltas)
	}
	// Without calibration the same numbers must fail: that is the flake the
	// calibration exists to kill.
	oldRep.Provenance.CalibMFLOPS = 0
	newRep.Provenance.CalibMFLOPS = 0
	if res := diffOne(t, oldRep, newRep, 15); !res.Regressed() {
		t.Fatal("uncalibrated 45%% drop passed — calibration test is vacuous")
	}
}

// TestDiffNoiseWidensTimingGate: each report carries its measured repeat
// spread; the gate cannot resolve changes finer than the combined noise.
func TestDiffNoiseWidensTimingGate(t *testing.T) {
	oldRep := mkRep("s", 100, "", map[string]float64{"rps": 100})
	newRep := mkRep("s", 100, "", map[string]float64{"rps": 70})
	oldRep.Noise = map[string]float64{"rps": 0.20}
	newRep.Noise = map[string]float64{"rps": 0.15}
	// -30% against 15% + max(20%, 15%) noise = 35% effective: passes.
	if res := diffOne(t, oldRep, newRep, 15); res.Regressed() {
		t.Fatalf("drop within measurement noise failed the gate: %+v", res.Deltas)
	}
	// -40% exceeds even the widened gate.
	newRep.Metrics["rps"] = 60
	if res := diffOne(t, oldRep, newRep, 15); !res.Regressed() {
		t.Fatal("40%% drop passed a 35%% effective gate")
	}
	// Absurd noise is capped: the gate never widens past threshold+30, so a
	// halving of throughput fails no matter how junky the host.
	oldRep.Noise = map[string]float64{"rps": 5.0}
	newRep.Noise = map[string]float64{"rps": 5.0}
	newRep.Metrics["rps"] = 50
	if res := diffOne(t, oldRep, newRep, 15); !res.Regressed() {
		t.Fatal("catastrophic regression hidden by uncapped noise widening")
	}
	// Latency widening is uncapped: a real regression shifts every repeat
	// and clears any band, while tail chaos on a contended host does not.
	oldRep = mkRep("s", 100, "", map[string]float64{"p90_ms": 4})
	newRep = mkRep("s", 100, "", map[string]float64{"p90_ms": 7})
	oldRep.Noise = map[string]float64{"p90_ms": 0.70}
	newRep.Noise = map[string]float64{"p90_ms": 0.10}
	if res := diffOne(t, oldRep, newRep, 15); res.Regressed() {
		t.Fatalf("+75%% within a measured 70%% latency spread failed the gate: %+v", res.Deltas)
	}
	// speedup is a ratio of two timed passes, so its recorded noise widens
	// its gate too.
	oldRep = mkRep("s", 100, "", map[string]float64{"speedup": 1.85})
	newRep = mkRep("s", 100, "", map[string]float64{"speedup": 1.48})
	oldRep.Noise = map[string]float64{"speedup": 0.12}
	newRep.Noise = map[string]float64{"speedup": 0.10}
	if res := diffOne(t, oldRep, newRep, 15); res.Regressed() {
		t.Fatalf("-20%% within 15+12 noise-widened speedup gate failed: %+v", res.Deltas)
	}
	// Noise never widens non-timing gates: error_rate stays exact.
	oldRep = mkRep("s", 100, "", map[string]float64{"error_rate": 0})
	newRep = mkRep("s", 100, "", map[string]float64{"error_rate": 0.3})
	oldRep.Noise = map[string]float64{"error_rate": 0.5}
	newRep.Noise = map[string]float64{"error_rate": 0.5}
	if res := diffOne(t, oldRep, newRep, 15); !res.Regressed() {
		t.Fatal("noise widened an absolute gate")
	}
}

// TestDiffLatencyFloor: a relative latency blow-up that moves less than 1ms
// in absolute terms is scheduler jitter, not a regression.
func TestDiffLatencyFloor(t *testing.T) {
	oldRep := mkRep("s", 100, "", map[string]float64{"p50_ms": 0.20})
	newRep := mkRep("s", 100, "", map[string]float64{"p50_ms": 0.35})
	if res := diffOne(t, oldRep, newRep, 15); res.Regressed() {
		t.Fatalf("+0.15ms of jitter failed the gate: %+v", res.Deltas)
	}
	// The same +75%% at millisecond scale is real.
	oldRep.Metrics["p50_ms"] = 2.0
	newRep.Metrics["p50_ms"] = 3.5
	if res := diffOne(t, oldRep, newRep, 15); !res.Regressed() {
		t.Fatal("+1.5ms latency regression passed")
	}
}

func TestDiffSpeedupIsNotCalibrated(t *testing.T) {
	// speedup is a same-host ratio; a calib difference must not rescale it.
	oldRep := mkRep("s", 200, "", map[string]float64{"speedup": 2.0})
	newRep := mkRep("s", 100, "", map[string]float64{"speedup": 1.5})
	if res := diffOne(t, oldRep, newRep, 15); !res.Regressed() {
		t.Fatal("25%% speedup drop passed a 15%% gate")
	}
}

func TestDiffErrorRateIsAbsolute(t *testing.T) {
	oldRep := mkRep("s", 100, "", map[string]float64{"error_rate": 0.05})
	// +20 points regresses a 15-point budget...
	if res := diffOne(t, oldRep, mkRep("s", 100, "", map[string]float64{"error_rate": 0.25}), 15); !res.Regressed() {
		t.Fatal("+20pt error rate passed a 15pt gate")
	}
	// ...but +10 points does not, even though it is a 200% relative change.
	if res := diffOne(t, oldRep, mkRep("s", 100, "", map[string]float64{"error_rate": 0.15}), 15); res.Regressed() {
		t.Fatal("+10pt error rate failed a 15pt gate (relative gating leaked in)")
	}
}

// TestDiffOverloadErrorRateUngated: an overload run's shed fraction swings
// with scheduler timing, so the differ reports it without gating it — but
// only when provenance says the pattern was overload.
func TestDiffOverloadErrorRateUngated(t *testing.T) {
	oldRep := mkRep("s", 100, "", map[string]float64{"error_rate": 0.55})
	newRep := mkRep("s", 100, "", map[string]float64{"error_rate": 0.90})
	oldRep.Provenance.Pattern = PatternOverload
	newRep.Provenance.Pattern = PatternOverload
	if res := diffOne(t, oldRep, newRep, 15); res.Regressed() {
		t.Fatalf("overload shed-fraction noise failed the gate: %+v", res.Deltas)
	}
	// The same movement under a no-shed pattern is a real regression.
	oldRep.Provenance.Pattern = PatternSteady
	newRep.Provenance.Pattern = PatternSteady
	if res := diffOne(t, oldRep, newRep, 15); !res.Regressed() {
		t.Fatal("+35pt error rate under steady load passed the gate")
	}
}

func TestDiffAccuracyGatedAbsolute(t *testing.T) {
	oldRep := mkRep("s", 100, "", map[string]float64{"acc_remap_d1": 0.90, "baseline_acc": 0.92})
	newRep := mkRep("s", 100, "", map[string]float64{"acc_remap_d1": 0.70, "baseline_acc": 0.92})
	if res := diffOne(t, oldRep, newRep, 15); !res.Regressed() {
		t.Fatal("-20pt accuracy passed a 15pt gate")
	}
}

func TestDiffUngatedMetricIsInformational(t *testing.T) {
	oldRep := mkRep("s", 100, "", map[string]float64{"queue_depth_peak": 3})
	newRep := mkRep("s", 100, "", map[string]float64{"queue_depth_peak": 300})
	res := diffOne(t, oldRep, newRep, 15)
	if res.Regressed() {
		t.Fatal("an ungated metric failed the gate")
	}
	if len(res.Deltas) != 1 || res.Deltas[0].Gated {
		t.Fatalf("deltas = %+v, want one ungated delta", res.Deltas)
	}
}

func TestDiffGatedMetricVanished(t *testing.T) {
	oldRep := mkRep("s", 100, "", map[string]float64{"rps": 100, "note": 1})
	newRep := mkRep("s", 100, "", map[string]float64{"note": 1})
	res := diffOne(t, oldRep, newRep, 15)
	if !res.Regressed() {
		t.Fatal("losing a gated metric passed the gate")
	}
	if len(res.Problems) != 1 || !strings.Contains(res.Problems[0], "vanished") {
		t.Fatalf("problems = %v, want a vanished-metric problem", res.Problems)
	}
}

func TestDiffDigestChangeIsRegression(t *testing.T) {
	oldRep := mkRep("s", 100, "aaaa", map[string]float64{"rps": 100})
	newRep := mkRep("s", 100, "bbbb", map[string]float64{"rps": 100})
	res := diffOne(t, oldRep, newRep, 15)
	if !res.Regressed() || len(res.Problems) != 1 {
		t.Fatalf("digest change did not fail the gate: %+v", res)
	}
}

func TestDiffScenarioCoverage(t *testing.T) {
	a := mkRep("alpha", 100, "", map[string]float64{"rps": 1})
	b := mkRep("beta", 100, "", map[string]float64{"rps": 1})
	// Scenario lost from the new run.
	res, err := Diff([]Report{a, b}, []Report{a}, DiffOptions{ThresholdPct: 15})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed() || !strings.Contains(strings.Join(res.Problems, "\n"), "coverage lost") {
		t.Fatalf("losing scenario beta passed: %+v", res)
	}
	// Scenario with no baseline.
	res, err = Diff([]Report{a}, []Report{a, b}, DiffOptions{ThresholdPct: 15})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed() || !strings.Contains(strings.Join(res.Problems, "\n"), "refresh the baseline") {
		t.Fatalf("unbaselined scenario beta passed silently: %+v", res)
	}
}

func TestDiffRefusesIncompatibleProvenance(t *testing.T) {
	oldRep := mkRep("s", 100, "", map[string]float64{"rps": 100})
	newRep := mkRep("s", 100, "", map[string]float64{"rps": 100})
	newRep.Provenance.Seed = 999
	if _, err := Diff([]Report{oldRep}, []Report{newRep}, DiffOptions{ThresholdPct: 15}); err == nil || !strings.Contains(err.Error(), "provenance mismatch") {
		t.Fatalf("Diff() = %v, want provenance-mismatch refusal", err)
	}
	// Build info differing is fine — that is the whole point of a diff.
	newRep.Provenance.Seed = oldRep.Provenance.Seed
	newRep.Provenance.Commit = "deadbeef"
	if _, err := Diff([]Report{oldRep}, []Report{newRep}, DiffOptions{ThresholdPct: 15}); err != nil {
		t.Fatalf("Diff() refused a commit change: %v", err)
	}
}

func TestDiffRefusesBadInputs(t *testing.T) {
	r := mkRep("s", 100, "", map[string]float64{"rps": 1})
	if _, err := Diff([]Report{r}, []Report{r}, DiffOptions{ThresholdPct: -1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	stale := r
	stale.SchemaVersion = SchemaVersion + 1
	if _, err := Diff([]Report{stale}, []Report{r}, DiffOptions{ThresholdPct: 15}); err == nil {
		t.Fatal("schema-version mismatch accepted")
	}
	if _, err := Diff([]Report{r, r}, []Report{r}, DiffOptions{ThresholdPct: 15}); err == nil {
		t.Fatal("duplicate scenario reports accepted")
	}
}

func TestReadReportsRoundTrip(t *testing.T) {
	dir := t.TempDir()

	suite := Suite{SchemaVersion: SchemaVersion, Reports: []Report{
		mkRep("alpha", 100, "aa", map[string]float64{"rps": 1}),
		mkRep("beta", 100, "bb", map[string]float64{"rps": 2}),
	}}
	suitePath := filepath.Join(dir, "suite.json")
	if err := suite.WriteFile(suitePath); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReports(suitePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Provenance.Scenario != "alpha" || got[1].Digest != "bb" {
		t.Fatalf("ReadReports(suite) = %+v", got)
	}

	// A single report file works too (per-scenario report.json).
	repPath := filepath.Join(dir, "report.json")
	if err := suite.Reports[0].WriteFile(repPath); err != nil {
		t.Fatal(err)
	}
	got, err = ReadReports(repPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Provenance.Scenario != "alpha" {
		t.Fatalf("ReadReports(report) = %+v", got)
	}

	// Future schema versions are refused, not misread.
	future := suite
	future.SchemaVersion = SchemaVersion + 1
	if err := future.WriteFile(suitePath); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReports(suitePath); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("ReadReports(future schema) = %v, want schema refusal", err)
	}
}
