package benchscenario

import (
	"strings"
	"testing"
)

// microServe is a scenario small enough to train and load-test in well under
// a second, with compare_serial on so every serve metric is exercised.
func microServe() Scenario {
	return Scenario{
		Name: "micro-serve", Kind: KindServe, Network: "tiny-mlp",
		Seed: 7, Workers: 1,
		Train: TrainSpec{Images: 24, TestImages: 8, Epochs: 1, Batch: 8, LR: 0.1},
		Serve: &ServeSpec{Replicas: 2, MaxBatch: 4, Queue: 64, CompareSerial: true},
		Load:  &LoadSpec{Pattern: PatternSteady, Requests: 24, Concurrency: 6},
	}
}

// testEnv skips the ~30ms calibration burn per Run.
func testEnv() *Env {
	return &Env{CalibMFLOPS: 1}
}

func TestRunServeScenarioDeterministic(t *testing.T) {
	sc := microServe()
	rep1, err := Run(t.Context(), sc, Options{Env: testEnv()})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(t.Context(), sc, Options{Env: testEnv()})
	if err != nil {
		t.Fatal(err)
	}

	if rep1.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d, want %d", rep1.SchemaVersion, SchemaVersion)
	}
	if rep1.Digest == "" {
		t.Fatal("no-shed serve run emitted no digest")
	}
	if rep1.Digest != rep2.Digest {
		t.Fatalf("same scenario, different digests: %s vs %s — determinism broke", rep1.Digest, rep2.Digest)
	}
	for _, m := range []string{"rps", "serial_rps", "speedup", "error_rate", "p50_ms", "p90_ms", "p99_ms"} {
		if _, ok := rep1.Metrics[m]; !ok {
			t.Fatalf("metric %s missing from report: %v", m, rep1.Metrics)
		}
	}
	if rep1.Metrics["error_rate"] != 0 {
		t.Fatalf("steady pattern shed requests: error_rate = %v", rep1.Metrics["error_rate"])
	}
	if rep1.Metrics["rps"] <= 0 || rep1.Metrics["p99_ms"] <= 0 {
		t.Fatalf("degenerate timings: %v", rep1.Metrics)
	}

	p := rep1.Provenance
	if p.Scenario != "micro-serve" || p.Kind != KindServe || p.Seed != 7 || p.Workers != 1 {
		t.Fatalf("provenance = %+v", p)
	}
	// Effective (defaulted) serving shape, not the raw spec.
	if p.Replicas != 2 || p.MaxBatch != 4 {
		t.Fatalf("provenance serving shape = replicas=%d max_batch=%d", p.Replicas, p.MaxBatch)
	}
	if len(rep1.Telemetry) == 0 {
		t.Fatal("no serve_* telemetry scraped")
	}
	for name := range rep1.Telemetry {
		if !strings.HasPrefix(name, "serve_") {
			t.Fatalf("non-serve counter %q leaked into the report", name)
		}
	}
}

// TestRunServeDigestStableAcrossWorkers pins the repo's core contract into
// the benchmark harness: the output digest must be bit-identical at any
// worker-pool size, so only the provenance (which records the pool) differs.
func TestRunServeDigestStableAcrossWorkers(t *testing.T) {
	sc := microServe()
	sc.Serve.CompareSerial = false // halve the runtime; digest is the point here

	sc.Workers = 1
	rep1, err := Run(t.Context(), sc, Options{Env: testEnv()})
	if err != nil {
		t.Fatal(err)
	}
	sc.Workers = 2
	rep2, err := Run(t.Context(), sc, Options{Env: testEnv()})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Digest != rep2.Digest {
		t.Fatalf("digest differs across worker counts: %s (w=1) vs %s (w=2)", rep1.Digest, rep2.Digest)
	}
	if rep1.Provenance.Workers != 1 || rep2.Provenance.Workers != 2 {
		t.Fatalf("provenance workers = %d, %d; want 1, 2", rep1.Provenance.Workers, rep2.Provenance.Workers)
	}
}

func TestRunOverloadScenario(t *testing.T) {
	sc := microServe()
	sc.Name = "micro-overload"
	sc.Serve.CompareSerial = false
	// Structurally saturating: 64 lanes against ~6 slots of effective
	// capacity, so shedding is certain, not a scheduler coin flip. Workers
	// must be >1: a pool of 1 on a single-core host round-robins so politely
	// that the queue never fills (same reason the checked-in scenario pins 2).
	sc.Workers = 2
	sc.Serve = &ServeSpec{Replicas: 1, MaxBatch: 2, Queue: 2}
	sc.Load = &LoadSpec{Pattern: PatternOverload, Requests: 512, Concurrency: 64}

	rep, err := Run(t.Context(), sc, Options{Env: testEnv()})
	if err != nil {
		t.Fatal(err)
	}
	// Shedding is the scenario's purpose; the shed fraction is reported, not
	// fatal. The shed subset is timing-dependent, so no digest is emitted.
	if rep.Digest != "" {
		t.Fatalf("overload run emitted digest %s; shed subsets are not comparable", rep.Digest)
	}
	er, ok := rep.Metrics["error_rate"]
	if !ok {
		t.Fatal("overload report missing error_rate")
	}
	if !(er > 0 && er < 1) {
		t.Fatalf("error_rate = %v, want (0,1): overload must shed some and accept some", er)
	}
	if rep.Provenance.Pattern != PatternOverload {
		t.Fatalf("provenance pattern = %q, want %q", rep.Provenance.Pattern, PatternOverload)
	}
}

func TestRunFaultScenario(t *testing.T) {
	sc := Scenario{
		Name: "micro-fault", Kind: KindFault, Network: "tiny-mlp",
		Seed: 11, Workers: 1,
		Train:  TrainSpec{Images: 16, TestImages: 8, Epochs: 1, Batch: 8, LR: 0.08},
		Faults: &FaultSpec{Densities: []float64{0, 0.001}, Spares: 4},
	}
	rep, err := Run(t.Context(), sc, Options{Env: testEnv()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Digest == "" {
		t.Fatal("fault sweep is deterministic but emitted no digest")
	}
	if _, ok := rep.Metrics["baseline_acc"]; !ok {
		t.Fatalf("no baseline_acc in %v", rep.Metrics)
	}
	// 3 tolerance modes × 2 densities, each flattened to acc_<mode>_d<i>.
	for _, m := range []string{"acc_none_d0", "acc_remap_d1", "acc_remap_degrade_d0"} {
		if _, ok := rep.Metrics[m]; !ok {
			t.Fatalf("metric %s missing from %v", m, rep.Metrics)
		}
	}
	// Density 0 with the injector attached must equal the injector-free
	// baseline bit-for-bit — the fault path is inert at density 0.
	if rep.Metrics["acc_none_d0"] != rep.Metrics["baseline_acc"] {
		t.Fatalf("density-0 accuracy %v != baseline %v", rep.Metrics["acc_none_d0"], rep.Metrics["baseline_acc"])
	}
	if rep.Provenance.Kind != KindFault || rep.Provenance.Replicas != 0 {
		t.Fatalf("provenance = %+v", rep.Provenance)
	}
}

// TestRunOnlineScenario drives the train-while-serve kind end to end: the
// run must reach its promotion target, shed nothing, verify every response
// against its weight version, and emit no digest (version attribution is
// timing, not determinism).
func TestRunOnlineScenario(t *testing.T) {
	sc := Scenario{
		Name: "micro-online", Kind: KindOnline, Network: "tiny-mlp",
		Seed: 7, Workers: 1,
		Train:  TrainSpec{Images: 16, TestImages: 16, Epochs: 1, Batch: 8, LR: 0.1},
		Serve:  &ServeSpec{Replicas: 2, MaxBatch: 4, Queue: 64},
		Online: &OnlineSpec{Promotions: 2, Concurrency: 4},
	}
	rep, err := Run(t.Context(), sc, Options{Env: testEnv()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Digest != "" {
		t.Fatalf("online run emitted digest %q; version attribution is timing-dependent", rep.Digest)
	}
	for _, m := range []string{"rps", "error_rate", "promotions", "rounds", "versions_observed", "p50_ms", "p90_ms", "p99_ms"} {
		if _, ok := rep.Metrics[m]; !ok {
			t.Fatalf("metric %s missing from report: %v", m, rep.Metrics)
		}
	}
	if got := rep.Metrics["promotions"]; got < 2 {
		t.Fatalf("promotions = %v, want >= 2", got)
	}
	if rep.Metrics["error_rate"] != 0 {
		t.Fatalf("online run shed requests: error_rate = %v", rep.Metrics["error_rate"])
	}
	if rep.Metrics["rps"] <= 0 {
		t.Fatalf("degenerate timings: %v", rep.Metrics)
	}
	p := rep.Provenance
	if p.Kind != KindOnline || p.Pattern != KindOnline || p.Replicas != 2 || p.MaxBatch != 4 {
		t.Fatalf("provenance = %+v", p)
	}
}

func TestRunRejectsInvalidScenario(t *testing.T) {
	sc := microServe()
	sc.Kind = "turbo"
	if _, err := Run(t.Context(), sc, Options{Env: testEnv()}); err == nil {
		t.Fatal("Run() accepted an invalid scenario")
	}
}
