package benchscenario

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// latencyFloorMS is the minimum absolute latency movement (after host
// normalization) that can count as a regression: relative thresholds alone
// turn sub-millisecond scheduler jitter into CI failures.
const latencyFloorMS = 1.0

// noiseWidenCapPct bounds how far measured noise can widen a timing gate
// (in percentage points over the configured threshold).
const noiseWidenCapPct = 30.0

// DiffOptions tunes the regression gate.
type DiffOptions struct {
	// ThresholdPct is the allowed change in percent. Relative-gated
	// metrics (throughput, latency) regress when they move more than this
	// far in the bad direction after host normalization; absolute-gated
	// metrics (accuracies, error rate — already in [0,1]) regress when
	// they move more than ThresholdPct/100 in the bad direction.
	ThresholdPct float64
}

// gate describes how the differ treats one metric, keyed by name shape.
type gate struct {
	higherBetter bool
	// absolute compares new-old directly (rate/accuracy points) instead of
	// relatively; relative gating of a number near zero is meaningless.
	absolute bool
	// timing metrics are divided by the report's CalibMFLOPS before the
	// relative comparison, so a slower host is not mistaken for a slower
	// commit.
	timing bool
	// gated metrics fail the diff on regression; ungated ones are
	// reported for the record only.
	gated bool
}

// metricGate classifies a metric by its name. Unknown names are reported
// but not gated — but a *gated* metric that disappears between reports is a
// hard failure (see Diff), so coverage cannot silently erode.
func metricGate(name string) gate {
	switch {
	case name == "error_rate":
		return gate{higherBetter: false, absolute: true, gated: true}
	case name == "speedup":
		// A ratio of two same-host timings: dimensionless, no calibration.
		return gate{higherBetter: true, gated: true}
	case name == "rps" || strings.HasSuffix(name, "_rps"):
		return gate{higherBetter: true, timing: true, gated: true}
	case name == "p99_ms":
		// The tail percentile of a short run is its sample max — reported
		// (and calibrated) for the record, but chaos, not signal.
		return gate{higherBetter: false, timing: true}
	case strings.HasSuffix(name, "_ms"):
		return gate{higherBetter: false, timing: true, gated: true}
	case strings.HasSuffix(name, "_acc") || strings.HasPrefix(name, "acc_"):
		return gate{higherBetter: true, absolute: true, gated: true}
	}
	return gate{}
}

// MetricDelta is one compared field.
type MetricDelta struct {
	Scenario string
	Metric   string
	Old, New float64
	// ChangePct is the signed change after host normalization: positive
	// means the metric increased. For absolute-gated metrics it is the raw
	// delta ×100 (points).
	ChangePct float64
	Gated     bool
	Regressed bool
}

// DiffResult is the full field-by-field comparison.
type DiffResult struct {
	Deltas []MetricDelta
	// Problems are failures that are not a single metric's movement:
	// incompatible provenance, digest changes, vanished scenarios or
	// metrics.
	Problems []string
}

// Regressed reports whether the diff must fail the gate.
func (d DiffResult) Regressed() bool {
	if len(d.Problems) > 0 {
		return true
	}
	for _, m := range d.Deltas {
		if m.Regressed {
			return true
		}
	}
	return false
}

// Diff compares two report sets field by field. Reports pair by scenario
// id; a pair whose provenance describes incompatible configurations is
// refused with an error (not a regression — the comparison itself is
// invalid). A scenario or gated metric present in old but missing in new is
// a problem: coverage loss must not look like a pass.
func Diff(oldReps, newReps []Report, opt DiffOptions) (DiffResult, error) {
	if opt.ThresholdPct < 0 {
		return DiffResult{}, fmt.Errorf("benchscenario: diff threshold %v must be >= 0", opt.ThresholdPct)
	}
	oldBy, err := indexReports(oldReps)
	if err != nil {
		return DiffResult{}, fmt.Errorf("benchscenario: old reports: %w", err)
	}
	newBy, err := indexReports(newReps)
	if err != nil {
		return DiffResult{}, fmt.Errorf("benchscenario: new reports: %w", err)
	}

	var res DiffResult
	for _, name := range sortedScenarioNames(oldBy, newBy) {
		o, haveOld := oldBy[name]
		n, haveNew := newBy[name]
		switch {
		case !haveNew:
			res.Problems = append(res.Problems, fmt.Sprintf("scenario %s: present in old report but missing from new — coverage lost", name))
			continue
		case !haveOld:
			res.Problems = append(res.Problems, fmt.Sprintf("scenario %s: new scenario with no baseline — refresh the baseline to cover it", name))
			continue
		}
		if err := o.Provenance.CompatibleWith(n.Provenance); err != nil {
			return DiffResult{}, fmt.Errorf("benchscenario: scenario %s: refusing to compare: %w", name, err)
		}
		if o.Digest != "" && n.Digest != "" && o.Digest != n.Digest {
			res.Problems = append(res.Problems, fmt.Sprintf(
				"scenario %s: output digest changed %s → %s — bit-identity broke (if intentional, refresh the baseline)",
				name, o.Digest, n.Digest))
		}
		diffMetrics(name, o, n, opt, &res)
	}
	return res, nil
}

func diffMetrics(scenario string, o, n Report, opt DiffOptions, res *DiffResult) {
	// The calibration ratio rescales the old report's timing metrics into
	// the new host's units. Missing calibration (hand-written fixtures, old
	// artifacts) degrades to raw comparison.
	calib := 1.0
	if o.Provenance.CalibMFLOPS > 0 && n.Provenance.CalibMFLOPS > 0 {
		calib = n.Provenance.CalibMFLOPS / o.Provenance.CalibMFLOPS
	}
	for _, metric := range sortedMetricNames(o.Metrics, n.Metrics) {
		ov, haveOld := o.Metrics[metric]
		nv, haveNew := n.Metrics[metric]
		g := metricGate(metric)
		// An overload run's shed fraction depends on scheduler timing, not
		// code quality; the pattern is in provenance precisely so the differ
		// can report it without flaking the gate on it.
		if metric == "error_rate" && o.Provenance.Pattern == PatternOverload {
			g.gated = false
		}
		switch {
		case !haveNew:
			if g.gated {
				res.Problems = append(res.Problems, fmt.Sprintf("scenario %s: gated metric %s vanished from the new report", scenario, metric))
			}
			continue
		case !haveOld:
			res.Deltas = append(res.Deltas, MetricDelta{Scenario: scenario, Metric: metric, New: nv})
			continue
		}
		d := MetricDelta{Scenario: scenario, Metric: metric, Old: ov, New: nv, Gated: g.gated}
		base := ov
		if g.timing {
			// Normalize: what the old value "would have measured" on the
			// new host. Throughput scales with host speed; latency
			// inversely.
			if g.higherBetter {
				base = ov * calib
			} else {
				base = ov / calib
			}
		}
		if g.absolute {
			d.ChangePct = (nv - ov) * 100
		} else if base != 0 {
			d.ChangePct = (nv - base) / base * 100
		} else if nv != 0 {
			d.ChangePct = 100
		}
		if g.gated {
			bad := d.ChangePct
			if g.higherBetter {
				bad = -bad
			}
			eff := opt.ThresholdPct
			if !g.absolute {
				// Each run measured its own repeat spread; the comparison
				// cannot resolve changes finer than the noisier side. For
				// throughput the widening is capped so the gate still
				// catches a catastrophic regression on a junk host; for
				// latency it is not — a real regression shifts every
				// repeat, so it clears even a wide noise band, while a
				// contended host's tail chaos does not.
				widen := math.Max(o.Noise[metric], n.Noise[metric]) * 100
				if g.higherBetter && widen > noiseWidenCapPct {
					widen = noiseWidenCapPct
				}
				eff += widen
			}
			d.Regressed = bad > eff
			if d.Regressed && g.timing && !g.higherBetter && strings.HasSuffix(metric, "_ms") {
				// Sub-millisecond latency jitter is below what a shared host
				// can measure; a latency regression must also be one a human
				// could notice.
				d.Regressed = nv-base > latencyFloorMS
			}
		}
		res.Deltas = append(res.Deltas, d)
	}
}

func indexReports(reports []Report) (map[string]Report, error) {
	by := map[string]Report{}
	for _, r := range reports {
		if r.SchemaVersion != SchemaVersion {
			return nil, fmt.Errorf("report %q has schema v%d, this tool speaks v%d", r.Provenance.Scenario, r.SchemaVersion, SchemaVersion)
		}
		if r.Provenance.Scenario == "" {
			return nil, fmt.Errorf("report without provenance.scenario")
		}
		if _, dup := by[r.Provenance.Scenario]; dup {
			return nil, fmt.Errorf("duplicate report for scenario %q", r.Provenance.Scenario)
		}
		by[r.Provenance.Scenario] = r
	}
	return by, nil
}

func sortedScenarioNames(a, b map[string]Report) []string {
	seen := map[string]bool{}
	var names []string
	collect := func(m map[string]Report) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	collect(a)
	collect(b)
	sort.Strings(names)
	return names
}

func sortedMetricNames(a, b map[string]float64) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	names := make([]string, 0, len(seen))
	for k := range seen {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Render formats the diff as an aligned, deterministic listing — the
// CI job's log output.
func (d DiffResult) Render() string {
	var sb strings.Builder
	last := ""
	for _, m := range d.Deltas {
		if m.Scenario != last {
			fmt.Fprintf(&sb, "%s\n", m.Scenario)
			last = m.Scenario
		}
		verdict := ""
		switch {
		case m.Regressed:
			verdict = "REGRESSED"
		case !m.Gated:
			verdict = "(info)"
		}
		fmt.Fprintf(&sb, "  %-24s %14.4f -> %14.4f  %+8.2f%%  %s\n", m.Metric, m.Old, m.New, m.ChangePct, verdict)
	}
	for _, p := range d.Problems {
		fmt.Fprintf(&sb, "PROBLEM: %s\n", p)
	}
	return sb.String()
}
