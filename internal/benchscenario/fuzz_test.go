package benchscenario

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse throws arbitrary bytes at the scenario parser. The invariants:
// never panic, and anything that parses must survive its own validation —
// Parse is the only gate between a file and the runner, so an inconsistency
// here would let a hostile scenario reach real compute.
func FuzzParse(f *testing.F) {
	f.Add([]byte(validServeJSON))
	f.Add([]byte(validFaultJSON))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"name":`))
	f.Add([]byte(`{"name": "x", "kind": "serve", "unknown": 1}`))
	f.Add([]byte(`{"name": "x", "seed": -9223372036854775808, "workers": 1e9}`))
	f.Add([]byte(`{"faults": {"densities": [1e308, -1e308]}}`))
	f.Add([]byte(validServeJSON + validFaultJSON))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever Parse accepts must be idempotently valid and name-safe.
		if err := sc.Validate(); err != nil {
			t.Fatalf("Parse accepted a scenario that Validate rejects: %v", err)
		}
		if strings.ContainsAny(sc.Name, "/\\.") {
			t.Fatalf("validated name %q contains path characters", sc.Name)
		}
	})
}
