package checkpoint

import (
	"bytes"
	"math/rand"
	"testing"

	"pipelayer/internal/networks"
)

// FuzzLoad feeds arbitrary bytes to the checkpoint parser: it must reject
// them with an error, never panic — the robustness contract of a
// deserializer that reads files from disk.
func FuzzLoad(f *testing.F) {
	// Seed with a valid checkpoint and simple corruptions of it.
	net := networks.BuildTrainable(networks.MnistA(), rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x4b, 0x4c, 0x50}) // magic bytes reversed
	truncated := append([]byte(nil), valid[:16]...)
	f.Add(truncated)
	huge := append([]byte(nil), valid...)
	huge[16] = 0xFF // implausible string length field
	f.Add(huge)
	// Mid-write crash artifacts: a torn write can cut the stream anywhere,
	// including inside the header, a shape, or the float data.
	for _, cut := range []int{3, 7, 11, 15, 21, len(valid) - 5, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:cut]...))
	}
	// Bit rot: single-bit flips in the header, the payload middle, and the
	// CRC trailer itself must all be rejected by the checksum.
	for _, pos := range []int{5, len(valid) / 2, len(valid) - 2} {
		flipped := append([]byte(nil), valid...)
		flipped[pos] ^= 0x10
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		target := networks.BuildTrainable(networks.MnistA(), rand.New(rand.NewSource(2)))
		// Must never panic; errors are expected for almost all inputs.
		_ = Load(bytes.NewReader(data), target)
	})
}
