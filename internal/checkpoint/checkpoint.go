// Package checkpoint serializes trained network weights — the host-side
// counterpart of the paper's Weight_load API (Section 5.2): weights trained
// once (on the accelerator or in software) are persisted and later loaded
// into a freshly assembled network of the same topology.
//
// The format is a small self-describing binary container (magic, version,
// epoch, parameter count, then per parameter: name, shape, float64 data;
// finally a CRC32-IEEE trailer over everything before it), written with
// encoding/binary in little-endian order. The checksum makes torn writes
// and bit rot detectable, which is what lets training auto-resume trust a
// checkpoint found on disk after a crash.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"pipelayer/internal/nn"
)

// magic identifies checkpoint streams; version gates format changes.
// Version 2 added the epoch field and the CRC32 trailer.
const (
	magic   = 0x504c4b50 // "PLKP"
	version = 2
)

// ErrChecksum reports a checkpoint whose CRC32 trailer does not match its
// payload — a torn write or on-disk corruption.
var ErrChecksum = errors.New("checkpoint: checksum mismatch")

// Save writes every parameter of the network to w (at epoch 0).
func Save(w io.Writer, net *nn.Network) error { return SaveState(w, net, 0) }

// SaveState writes the network parameters plus the training epoch they were
// captured at, followed by a CRC32-IEEE trailer of the whole payload.
func SaveState(w io.Writer, net *nn.Network, epoch int) error {
	if epoch < 0 {
		return fmt.Errorf("checkpoint: negative epoch %d", epoch)
	}
	// Build the payload in memory so the checksum covers exactly the bytes
	// written; checkpoints are a few MB at most.
	var buf bytes.Buffer
	params := net.Params()
	if err := writeU32(&buf, magic); err != nil {
		return err
	}
	if err := writeU32(&buf, version); err != nil {
		return err
	}
	if err := writeU32(&buf, uint32(epoch)); err != nil {
		return err
	}
	if err := writeU32(&buf, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(&buf, p.Name); err != nil {
			return err
		}
		shape := p.Value.Shape()
		if err := writeU32(&buf, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := writeU32(&buf, uint32(d)); err != nil {
				return err
			}
		}
		for _, v := range p.Value.Data() {
			if err := writeU64(&buf, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}
	return writeU32(w, crc32.ChecksumIEEE(buf.Bytes()))
}

// Load reads a checkpoint from r into the network's parameters, discarding
// the stored epoch. The network must have the same parameter names and
// shapes the checkpoint was saved from (i.e. the same topology and layer
// names).
func Load(r io.Reader, net *nn.Network) error {
	_, err := LoadState(r, net)
	return err
}

// LoadState reads a checkpoint from r, validates the CRC32 trailer, and
// restores the network parameters; it returns the epoch the checkpoint was
// saved at. On any error — including a checksum mismatch (ErrChecksum) —
// the network is left untouched: values are staged and committed only after
// the whole stream validates.
func LoadState(r io.Reader, net *nn.Network) (int, error) {
	raw, err := io.ReadAll(io.LimitReader(r, 1<<31))
	if err != nil {
		return 0, fmt.Errorf("checkpoint: reading stream: %w", err)
	}
	if len(raw) < 4 {
		return 0, fmt.Errorf("checkpoint: truncated stream (%d bytes)", len(raw))
	}
	payload, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, fmt.Errorf("%w (file %#x, computed %#x)", ErrChecksum, want, got)
	}
	return loadPayload(bytes.NewReader(payload), net)
}

// loadPayload parses the checksummed payload and commits it into net.
func loadPayload(r *bytes.Reader, net *nn.Network) (int, error) {
	m, err := readU32(r)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if m != magic {
		return 0, fmt.Errorf("checkpoint: bad magic %#x", m)
	}
	v, err := readU32(r)
	if err != nil {
		return 0, err
	}
	if v != version {
		return 0, fmt.Errorf("checkpoint: unsupported version %d", v)
	}
	epoch, err := readU32(r)
	if err != nil {
		return 0, err
	}
	count, err := readU32(r)
	if err != nil {
		return 0, err
	}
	params := net.Params()
	if int(count) != len(params) {
		return 0, fmt.Errorf("checkpoint: has %d params, network has %d", count, len(params))
	}
	// Stage every tensor first so a mismatch mid-stream cannot leave the
	// network half-restored.
	staged := make([][]float64, len(params))
	for pi, p := range params {
		name, err := readString(r)
		if err != nil {
			return 0, err
		}
		if name != p.Name {
			return 0, fmt.Errorf("checkpoint: parameter %q does not match network parameter %q", name, p.Name)
		}
		rank, err := readU32(r)
		if err != nil {
			return 0, err
		}
		wantShape := p.Value.Shape()
		if int(rank) != len(wantShape) {
			return 0, fmt.Errorf("checkpoint: %s has rank %d, want %d", name, rank, len(wantShape))
		}
		for i := 0; i < int(rank); i++ {
			d, err := readU32(r)
			if err != nil {
				return 0, err
			}
			if int(d) != wantShape[i] {
				return 0, fmt.Errorf("checkpoint: %s dim %d is %d, want %d", name, i, d, wantShape[i])
			}
		}
		data := make([]float64, p.Value.Size())
		for i := range data {
			bits, err := readU64(r)
			if err != nil {
				return 0, fmt.Errorf("checkpoint: %s data: %w", name, err)
			}
			data[i] = math.Float64frombits(bits)
		}
		staged[pi] = data
	}
	if r.Len() != 0 {
		return 0, fmt.Errorf("checkpoint: %d trailing bytes after last parameter", r.Len())
	}
	for pi, p := range params {
		copy(p.Value.Data(), staged[pi])
	}
	return int(epoch), nil
}

func writeU32(w io.Writer, v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
func writeU64(w io.Writer, v uint64) error { return binary.Write(w, binary.LittleEndian, v) }

func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readU64(r io.Reader) (uint64, error) {
	var v uint64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("checkpoint: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
