// Package checkpoint serializes trained network weights — the host-side
// counterpart of the paper's Weight_load API (Section 5.2): weights trained
// once (on the accelerator or in software) are persisted and later loaded
// into a freshly assembled network of the same topology.
//
// The format is a small self-describing binary container (magic, version,
// parameter count, then per parameter: name, shape, float64 data), written
// with encoding/binary in little-endian order.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"pipelayer/internal/nn"
)

// magic identifies checkpoint streams; version gates format changes.
const (
	magic   = 0x504c4b50 // "PLKP"
	version = 1
)

// Save writes every parameter of the network to w.
func Save(w io.Writer, net *nn.Network) error {
	params := net.Params()
	if err := writeU32(w, magic); err != nil {
		return err
	}
	if err := writeU32(w, version); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(w, p.Name); err != nil {
			return err
		}
		shape := p.Value.Shape()
		if err := writeU32(w, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := writeU32(w, uint32(d)); err != nil {
				return err
			}
		}
		for _, v := range p.Value.Data() {
			if err := writeU64(w, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load reads a checkpoint from r into the network's parameters. The network
// must have the same parameter names and shapes the checkpoint was saved
// from (i.e. the same topology and layer names).
func Load(r io.Reader, net *nn.Network) error {
	m, err := readU32(r)
	if err != nil {
		return fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if m != magic {
		return fmt.Errorf("checkpoint: bad magic %#x", m)
	}
	v, err := readU32(r)
	if err != nil {
		return err
	}
	if v != version {
		return fmt.Errorf("checkpoint: unsupported version %d", v)
	}
	count, err := readU32(r)
	if err != nil {
		return err
	}
	params := net.Params()
	if int(count) != len(params) {
		return fmt.Errorf("checkpoint: has %d params, network has %d", count, len(params))
	}
	for _, p := range params {
		name, err := readString(r)
		if err != nil {
			return err
		}
		if name != p.Name {
			return fmt.Errorf("checkpoint: parameter %q does not match network parameter %q", name, p.Name)
		}
		rank, err := readU32(r)
		if err != nil {
			return err
		}
		wantShape := p.Value.Shape()
		if int(rank) != len(wantShape) {
			return fmt.Errorf("checkpoint: %s has rank %d, want %d", name, rank, len(wantShape))
		}
		for i := 0; i < int(rank); i++ {
			d, err := readU32(r)
			if err != nil {
				return err
			}
			if int(d) != wantShape[i] {
				return fmt.Errorf("checkpoint: %s dim %d is %d, want %d", name, i, d, wantShape[i])
			}
		}
		data := p.Value.Data()
		for i := range data {
			bits, err := readU64(r)
			if err != nil {
				return fmt.Errorf("checkpoint: %s data: %w", name, err)
			}
			data[i] = math.Float64frombits(bits)
		}
	}
	return nil
}

func writeU32(w io.Writer, v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
func writeU64(w io.Writer, v uint64) error { return binary.Write(w, binary.LittleEndian, v) }

func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readU64(r io.Reader) (uint64, error) {
	var v uint64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("checkpoint: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
