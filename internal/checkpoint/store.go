package checkpoint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"pipelayer/internal/nn"
)

// Store manages a directory of versioned checkpoints for online training:
// each weight snapshot is written (atomically, via SaveFile) to its own
// ckpt-v%08d.plkp file, and a manifest.json records the lifecycle state of
// every version (candidate → promoted / rolled-back).
//
// The manifest is advisory: crash-safe resume never trusts it. Discovery
// (LatestValid) rescans the directory and validates each file's CRC trailer,
// newest version first, so a torn or bit-rotted checkpoint — or a corrupt
// manifest — is skipped rather than resumed from.
//
// All methods are safe for concurrent use.
type Store struct {
	dir string

	mu  sync.Mutex
	man Manifest
}

// VersionState is the lifecycle state of one checkpoint version.
type VersionState string

const (
	// StateCandidate marks a snapshot written but not yet evaluated.
	StateCandidate VersionState = "candidate"
	// StatePromoted marks a snapshot that passed eval gating and was
	// swapped into serving.
	StatePromoted VersionState = "promoted"
	// StateRolledBack marks a snapshot rejected by eval gating (or whose
	// swap failed); the trainer was restored to the prior promoted version.
	StateRolledBack VersionState = "rolled-back"
)

// ManifestSchemaVersion gates manifest format changes.
const ManifestSchemaVersion = 1

const manifestName = "manifest.json"

// ManifestEntry records one version's file and lifecycle state.
type ManifestEntry struct {
	Version uint64       `json:"version"`
	Epoch   int          `json:"epoch"`
	File    string       `json:"file"`
	State   VersionState `json:"state"`
}

// Manifest is the on-disk version ledger, entries ascending by version.
type Manifest struct {
	SchemaVersion int             `json:"schema_version"`
	Entries       []ManifestEntry `json:"entries"`
}

// ParseManifest decodes a manifest strictly: unknown fields, trailing data,
// a wrong schema version, or unordered/duplicate entries are errors. A
// truncated manifest must error here, never panic — the store treats that as
// "no manifest" and rebuilds from the directory scan.
func ParseManifest(raw []byte) (Manifest, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("checkpoint: parsing manifest: %w", err)
	}
	if dec.More() {
		return Manifest{}, fmt.Errorf("checkpoint: manifest has trailing data")
	}
	if m.SchemaVersion != ManifestSchemaVersion {
		return Manifest{}, fmt.Errorf("checkpoint: manifest schema v%d, this tool speaks v%d", m.SchemaVersion, ManifestSchemaVersion)
	}
	var last uint64
	for i, e := range m.Entries {
		if e.Version == 0 {
			return Manifest{}, fmt.Errorf("checkpoint: manifest entry %d has version 0", i)
		}
		if i > 0 && e.Version <= last {
			return Manifest{}, fmt.Errorf("checkpoint: manifest entries not strictly ascending at version %d", e.Version)
		}
		switch e.State {
		case StateCandidate, StatePromoted, StateRolledBack:
		default:
			return Manifest{}, fmt.Errorf("checkpoint: manifest version %d has unknown state %q", e.Version, e.State)
		}
		last = e.Version
	}
	return m, nil
}

// OpenStore opens (creating if needed) a versioned checkpoint directory.
// A missing or corrupt manifest is not fatal: lifecycle history is rebuilt
// from the checkpoint files themselves (as candidates), because resume
// correctness rests on per-file CRC validation, not on the manifest.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: store directory must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating store directory: %w", err)
	}
	s := &Store{dir: dir}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		if man, perr := ParseManifest(raw); perr == nil {
			s.man = man
			return s, nil
		}
	case !os.IsNotExist(err):
		return nil, fmt.Errorf("checkpoint: reading manifest: %w", err)
	}
	// No usable manifest: rebuild from the version files on disk.
	versions, err := s.scanVersions()
	if err != nil {
		return nil, err
	}
	s.man = Manifest{SchemaVersion: ManifestSchemaVersion}
	for _, v := range versions {
		s.man.Entries = append(s.man.Entries, ManifestEntry{
			Version: v, File: versionFileName(v), State: StateCandidate,
		})
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the checkpoint file path for a version.
func (s *Store) Path(version uint64) string {
	return filepath.Join(s.dir, versionFileName(version))
}

func versionFileName(version uint64) string {
	return fmt.Sprintf("ckpt-v%08d.plkp", version)
}

// parseVersionFile extracts the version from a store file name.
func parseVersionFile(name string) (uint64, bool) {
	var v uint64
	n, err := fmt.Sscanf(name, "ckpt-v%d.plkp", &v)
	if err != nil || n != 1 || v == 0 || name != versionFileName(v) {
		return 0, false
	}
	return v, true
}

// scanVersions lists the versions present on disk, ascending. Presence only
// — files are not validated here.
func (s *Store) scanVersions() ([]uint64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: scanning store: %w", err)
	}
	var versions []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if v, ok := parseVersionFile(e.Name()); ok {
			versions = append(versions, v)
		}
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	return versions, nil
}

// Save writes net as the given version (atomic temp+fsync+rename, like
// SaveFile) and upserts its manifest entry with the given state. Saving an
// existing version replaces its file and entry — that is how a resume
// overwrites a torn file left by a crash mid-save.
func (s *Store) Save(net *nn.Network, epoch int, version uint64, state VersionState) error {
	if version == 0 {
		return fmt.Errorf("checkpoint: version must be >= 1")
	}
	if err := SaveFile(s.Path(version), net, epoch); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.upsertLocked(ManifestEntry{Version: version, Epoch: epoch, File: versionFileName(version), State: state})
	return s.writeManifestLocked()
}

// SetState updates a version's lifecycle state in the manifest.
func (s *Store) SetState(version uint64, state VersionState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.man.Entries {
		if s.man.Entries[i].Version == version {
			s.man.Entries[i].State = state
			return s.writeManifestLocked()
		}
	}
	return fmt.Errorf("checkpoint: version %d not in manifest", version)
}

// Load restores the given version into net, returning its stored epoch.
func (s *Store) Load(version uint64, net *nn.Network) (int, error) {
	return LoadFile(s.Path(version), net)
}

// Manifest returns a copy of the current manifest.
func (s *Store) Manifest() Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := s.man
	cp.Entries = append([]ManifestEntry(nil), s.man.Entries...)
	return cp
}

// LatestValid finds the newest checkpoint in the store that loads cleanly
// and restores it into net: versions are tried newest-first and any file
// that fails to load — truncated, bit-rotted (ErrChecksum), or topology
// mismatch — is skipped, as is any version the manifest marks rolled_back
// (those weights failed the accuracy gate; resuming onto them would undo
// the rollback). ok is false when no valid checkpoint exists (the
// cold-start case). The error return is reserved for directory-level
// failures; per-file corruption is never fatal.
func (s *Store) LatestValid(net *nn.Network) (version uint64, epoch int, ok bool, err error) {
	versions, err := s.scanVersions()
	if err != nil {
		return 0, 0, false, err
	}
	rolledBack := make(map[uint64]bool)
	s.mu.Lock()
	for _, e := range s.man.Entries {
		if e.State == StateRolledBack {
			rolledBack[e.Version] = true
		}
	}
	s.mu.Unlock()
	for i := len(versions) - 1; i >= 0; i-- {
		v := versions[i]
		if rolledBack[v] {
			continue
		}
		if e, lerr := LoadFile(s.Path(v), net); lerr == nil {
			return v, e, true, nil
		}
	}
	return 0, 0, false, nil
}

// Prune deletes version files beyond the newest keep, never touching
// protected versions (e.g. the currently promoted one). keep <= 0 keeps
// everything. Manifest entries for deleted files are dropped.
func (s *Store) Prune(keep int, protect ...uint64) error {
	if keep <= 0 {
		return nil
	}
	versions, err := s.scanVersions()
	if err != nil {
		return err
	}
	if len(versions) <= keep {
		return nil
	}
	protected := make(map[uint64]bool, len(protect))
	for _, v := range protect {
		protected[v] = true
	}
	doomed := map[uint64]bool{}
	for _, v := range versions[:len(versions)-keep] {
		if protected[v] {
			continue
		}
		if err := os.Remove(s.Path(v)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("checkpoint: pruning version %d: %w", v, err)
		}
		doomed[v] = true
	}
	if len(doomed) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.man.Entries[:0]
	for _, e := range s.man.Entries {
		if !doomed[e.Version] {
			kept = append(kept, e)
		}
	}
	s.man.Entries = kept
	return s.writeManifestLocked()
}

// upsertLocked inserts or replaces an entry, keeping ascending order.
func (s *Store) upsertLocked(e ManifestEntry) {
	for i := range s.man.Entries {
		if s.man.Entries[i].Version == e.Version {
			s.man.Entries[i] = e
			return
		}
	}
	s.man.Entries = append(s.man.Entries, e)
	sort.Slice(s.man.Entries, func(i, j int) bool {
		return s.man.Entries[i].Version < s.man.Entries[j].Version
	})
}

// writeManifestLocked publishes the manifest atomically (temp+fsync+rename),
// mirroring SaveFile so a crash leaves either the old or the new manifest.
func (s *Store) writeManifestLocked() (err error) {
	s.man.SchemaVersion = ManifestSchemaVersion
	raw, err := json.MarshalIndent(s.man, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encoding manifest: %w", err)
	}
	raw = append(raw, '\n')
	tmp, err := os.CreateTemp(s.dir, manifestName+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating manifest temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(raw); err != nil {
		return fmt.Errorf("checkpoint: writing manifest: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing manifest: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing manifest temp file: %w", err)
	}
	if err = os.Rename(tmp.Name(), filepath.Join(s.dir, manifestName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: publishing manifest: %w", err)
	}
	return nil
}
