package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"pipelayer/internal/nn"
)

// SaveFile atomically writes a checkpoint to path: the payload goes to a
// temp file in the same directory, is flushed to stable storage, and only
// then renamed over the target. A crash at any point leaves either the old
// checkpoint or the new one — never a torn file — which is what makes
// auto-resume after a kill safe.
func SaveFile(path string, net *nn.Network, epoch int) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = SaveState(tmp, net, epoch); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing temp file: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing temp file: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: publishing checkpoint: %w", err)
	}
	return nil
}

// LoadFile reads and validates the checkpoint at path into net, returning
// the epoch it was saved at.
func LoadFile(path string, net *nn.Network) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return LoadState(f, net)
}

// Resume restores training state from path if a checkpoint exists there:
// ok reports whether one was loaded. A missing file is the normal cold-start
// case (0, false, nil); a present-but-corrupt file is a hard error so a
// damaged checkpoint is never silently ignored and overwritten.
func Resume(path string, net *nn.Network) (epoch int, ok bool, err error) {
	epoch, err = LoadFile(path, net)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return epoch, true, nil
}
