package checkpoint

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pipelayer/internal/networks"
	"pipelayer/internal/nn"
	"pipelayer/internal/tensor"
)

func storeNet(seed int64) *nn.Network {
	return networks.BuildTrainable(networks.MnistA(), rand.New(rand.NewSource(seed)))
}

func scramble(net *nn.Network, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, p := range net.Params() {
		p.Value.RandNormal(rng, 0, 0.3)
	}
}

func sameParams(t *testing.T, a, b *nn.Network, msg string) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if !tensor.Equal(pa[i].Value, pb[i].Value, 0) {
			t.Fatalf("%s: param %s differs", msg, pa[i].Name)
		}
	}
}

func TestStoreSaveLoadManifest(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	v1 := storeNet(1)
	if err := st.Save(v1, 3, 1, StatePromoted); err != nil {
		t.Fatal(err)
	}
	v2 := storeNet(2)
	scramble(v2, 20)
	if err := st.Save(v2, 9, 2, StateCandidate); err != nil {
		t.Fatal(err)
	}
	if err := st.SetState(2, StateRolledBack); err != nil {
		t.Fatal(err)
	}
	if err := st.SetState(99, StatePromoted); err == nil {
		t.Fatal("SetState on unknown version must error")
	}

	got := storeNet(3)
	epoch, err := st.Load(2, got)
	if err != nil || epoch != 9 {
		t.Fatalf("Load(2): epoch=%d err=%v, want 9, nil", epoch, err)
	}
	sameParams(t, v2, got, "Load(2)")

	// Reopening must see the same manifest, states intact.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	man := st2.Manifest()
	if len(man.Entries) != 2 {
		t.Fatalf("manifest has %d entries, want 2", len(man.Entries))
	}
	if man.Entries[0].Version != 1 || man.Entries[0].State != StatePromoted {
		t.Fatalf("entry 0 = %+v, want version 1 promoted", man.Entries[0])
	}
	if man.Entries[1].Version != 2 || man.Entries[1].State != StateRolledBack {
		t.Fatalf("entry 1 = %+v, want version 2 rolled-back", man.Entries[1])
	}
	// Atomic writes must leave no temp litter.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestStoreLatestValidSkipsCorrupt is the crash-safe resume contract: torn
// and bit-rotted checkpoint files are skipped via the CRC path and the
// newest file that validates wins.
func TestStoreLatestValidSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Empty store: cold start, not an error.
	if _, _, ok, err := st.LatestValid(storeNet(0)); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v, want false, nil", ok, err)
	}

	nets := map[uint64]*nn.Network{}
	for v := uint64(1); v <= 3; v++ {
		n := storeNet(int64(v))
		scramble(n, int64(100+v))
		if err := st.Save(n, int(v)*10, v, StateCandidate); err != nil {
			t.Fatal(err)
		}
		nets[v] = n
	}

	// Tear v3 (truncate mid-file) and bit-rot v2.
	raw3, err := os.ReadFile(st.Path(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.Path(3), raw3[:len(raw3)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	raw2, err := os.ReadFile(st.Path(2))
	if err != nil {
		t.Fatal(err)
	}
	raw2[len(raw2)/3] ^= 0x04
	if err := os.WriteFile(st.Path(2), raw2, 0o644); err != nil {
		t.Fatal(err)
	}

	got := storeNet(9)
	version, epoch, ok, err := st.LatestValid(got)
	if err != nil || !ok {
		t.Fatalf("LatestValid: ok=%v err=%v, want true, nil", ok, err)
	}
	if version != 1 || epoch != 10 {
		t.Fatalf("LatestValid = (v%d, epoch %d), want (v1, epoch 10)", version, epoch)
	}
	sameParams(t, nets[1], got, "resumed weights")

	// All corrupt: back to cold start, net untouched by the failed attempts.
	raw1, err := os.ReadFile(st.Path(1))
	if err != nil {
		t.Fatal(err)
	}
	raw1[8] ^= 0xFF
	if err := os.WriteFile(st.Path(1), raw1, 0o644); err != nil {
		t.Fatal(err)
	}
	before := got.Params()[0].Value.Clone()
	if _, _, ok, err := st.LatestValid(got); err != nil || ok {
		t.Fatalf("all-corrupt store: ok=%v err=%v, want false, nil", ok, err)
	}
	if !tensor.Equal(got.Params()[0].Value, before, 0) {
		t.Fatal("failed discovery mutated the network")
	}
}

// LatestValid must skip versions the manifest marks rolled_back: those
// weights failed the accuracy gate, and a restart must not undo the
// rollback by resuming onto them.
func TestStoreLatestValidSkipsRolledBack(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	promoted := storeNet(1)
	scramble(promoted, 11)
	if err := st.Save(promoted, 10, 1, StatePromoted); err != nil {
		t.Fatal(err)
	}
	rejected := storeNet(2)
	scramble(rejected, 22)
	if err := st.Save(rejected, 20, 2, StateRolledBack); err != nil {
		t.Fatal(err)
	}

	got := storeNet(9)
	version, epoch, ok, err := st.LatestValid(got)
	if err != nil || !ok {
		t.Fatalf("LatestValid: ok=%v err=%v, want true, nil", ok, err)
	}
	if version != 1 || epoch != 10 {
		t.Fatalf("LatestValid = (v%d, epoch %d), want the promoted (v1, epoch 10)", version, epoch)
	}
	sameParams(t, promoted, got, "resumed weights")

	// Same answer through a fresh open: the rolled_back state survives the
	// manifest round-trip.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if version, _, ok, err := st2.LatestValid(storeNet(9)); err != nil || !ok || version != 1 {
		t.Fatalf("reopened LatestValid = (v%d, ok=%v, err=%v), want v1", version, ok, err)
	}
}

// A corrupt manifest must not block opening the store: lifecycle history is
// advisory and gets rebuilt from the version files on disk.
func TestStoreCorruptManifestRebuilds(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(storeNet(1), 1, 1, StatePromoted); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the manifest mid-stream — the torn-write shape.
	if err := os.WriteFile(filepath.Join(dir, manifestName), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	man := st2.Manifest()
	if len(man.Entries) != 1 || man.Entries[0].Version != 1 || man.Entries[0].State != StateCandidate {
		t.Fatalf("rebuilt manifest = %+v, want one candidate entry for v1", man.Entries)
	}
	// And discovery still works off the files.
	if _, _, ok, err := st2.LatestValid(storeNet(2)); err != nil || !ok {
		t.Fatalf("LatestValid after manifest loss: ok=%v err=%v", ok, err)
	}
}

func TestStorePruneKeepsProtected(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 5; v++ {
		if err := st.Save(storeNet(int64(v)), int(v), v, StateCandidate); err != nil {
			t.Fatal(err)
		}
	}
	// Keep the newest 2, but version 2 is promoted and must survive.
	if err := st.Prune(2, 2); err != nil {
		t.Fatal(err)
	}
	want := map[uint64]bool{2: true, 4: true, 5: true}
	versions, err := st.scanVersions()
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != len(want) {
		t.Fatalf("after prune versions = %v, want {2,4,5}", versions)
	}
	for _, v := range versions {
		if !want[v] {
			t.Fatalf("after prune versions = %v, want {2,4,5}", versions)
		}
	}
	man := st.Manifest()
	if len(man.Entries) != 3 {
		t.Fatalf("manifest entries = %+v, want 3", man.Entries)
	}
}

// TestResumeRacesSaveFile covers the satellite requirement: Resume racing a
// concurrent SaveFile into the same path must never observe a partial write
// (SaveFile publishes by atomic rename), and once the writer finishes the
// newest checkpoint wins.
func TestResumeRacesSaveFile(t *testing.T) {
	const rounds = 25
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.plkp")

	writer := storeNet(1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := 1; e <= rounds; e++ {
			scramble(writer, int64(e))
			if err := SaveFile(path, writer, e); err != nil {
				t.Errorf("SaveFile epoch %d: %v", e, err)
				return
			}
		}
	}()

	reader := storeNet(2)
	maxSeen := 0
	for i := 0; i < 4*rounds; i++ {
		epoch, ok, err := Resume(path, reader)
		if err != nil {
			t.Fatalf("Resume observed a partial write: %v", err)
		}
		if !ok {
			continue // before the first save landed
		}
		if epoch < 1 || epoch > rounds {
			t.Fatalf("Resume returned epoch %d outside [1, %d]", epoch, rounds)
		}
		if epoch < maxSeen {
			t.Fatalf("Resume went backwards: epoch %d after %d", epoch, maxSeen)
		}
		maxSeen = epoch
	}
	wg.Wait()

	// Newest-valid-wins once the dust settles.
	final := storeNet(3)
	epoch, ok, err := Resume(path, final)
	if err != nil || !ok || epoch != rounds {
		t.Fatalf("final Resume: (%d, %v, %v), want (%d, true, nil)", epoch, ok, err, rounds)
	}
	sameParams(t, writer, final, "final resume")
}

// TestStoreConcurrentSaveAndDiscover exercises the store under the race
// detector: one goroutine publishes new versions while another repeatedly
// discovers the newest valid one.
func TestStoreConcurrentSaveAndDiscover(t *testing.T) {
	const versions = 12
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := storeNet(1)
		for v := uint64(1); v <= versions; v++ {
			scramble(n, int64(v))
			if err := st.Save(n, int(v), v, StateCandidate); err != nil {
				t.Errorf("Save v%d: %v", v, err)
				return
			}
		}
	}()
	probe := storeNet(2)
	var lastV uint64
	for i := 0; i < 3*versions; i++ {
		v, _, ok, err := st.LatestValid(probe)
		if err != nil {
			t.Fatalf("LatestValid: %v", err)
		}
		if ok && v < lastV {
			t.Fatalf("discovery went backwards: v%d after v%d", v, lastV)
		}
		if ok {
			lastV = v
		}
	}
	wg.Wait()
	v, _, ok, err := st.LatestValid(probe)
	if err != nil || !ok || v != versions {
		t.Fatalf("final LatestValid = (v%d, %v, %v), want (v%d, true, nil)", v, ok, err, uint64(versions))
	}
}

// FuzzManifest feeds arbitrary bytes to the manifest parser: errors are
// expected, panics are not. Includes the satellite-required truncated
// manifest among the seeds.
func FuzzManifest(f *testing.F) {
	valid, err := json.MarshalIndent(Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Entries: []ManifestEntry{
			{Version: 1, Epoch: 3, File: versionFileName(1), State: StatePromoted},
			{Version: 2, Epoch: 6, File: versionFileName(2), State: StateCandidate},
		},
	}, "", "  ")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated manifest — the torn-write shape
	f.Add([]byte{})
	f.Add([]byte("{"))
	f.Add([]byte("null"))
	f.Add(append(append([]byte(nil), valid...), []byte("{}")...)) // trailing data
	f.Add([]byte(`{"schema_version":1,"entries":[{"version":0}]}`))
	f.Add([]byte(`{"schema_version":1,"entries":[{"version":2,"state":"promoted"},{"version":1,"state":"candidate"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			return
		}
		var last uint64
		for i, e := range m.Entries {
			if e.Version == 0 || (i > 0 && e.Version <= last) {
				t.Fatalf("accepted manifest with invalid version ordering: %+v", m.Entries)
			}
			last = e.Version
		}
	})
}
