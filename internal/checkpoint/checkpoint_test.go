package checkpoint

import (
	"bytes"
	"math/rand"
	"testing"

	"pipelayer/internal/dataset"
	"pipelayer/internal/networks"
	"pipelayer/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := networks.BuildTrainable(networks.Mnist0(), rng)
	// Perturb weights so the round trip carries real data.
	for _, p := range net.Params() {
		p.Value.RandNormal(rng, 0, 0.3)
	}
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	net2 := networks.BuildTrainable(networks.Mnist0(), rand.New(rand.NewSource(99)))
	if err := Load(&buf, net2); err != nil {
		t.Fatal(err)
	}
	p1, p2 := net.Params(), net2.Params()
	for i := range p1 {
		if !tensor.Equal(p1[i].Value, p2[i].Value, 0) {
			t.Fatalf("param %s differs after round trip", p1[i].Name)
		}
	}
}

func TestLoadedNetworkBehavesIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := networks.BuildTrainable(networks.MnistA(), rng)
	train, test := dataset.TrainTest(200, 80, dataset.DefaultOptions(true), 4)
	for e := 0; e < 3; e++ {
		net.TrainEpoch(train, 10, 0.1)
	}
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	net2 := networks.BuildTrainable(networks.MnistA(), rand.New(rand.NewSource(77)))
	if err := Load(&buf, net2); err != nil {
		t.Fatal(err)
	}
	for _, s := range test {
		if net.Predict(s.Input) != net2.Predict(s.Input) {
			t.Fatal("restored network predicts differently")
		}
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	net := networks.BuildTrainable(networks.MnistA(), rand.New(rand.NewSource(1)))
	if err := Load(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}), net); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestLoadRejectsTopologyMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	netA := networks.BuildTrainable(networks.MnistA(), rng)
	var buf bytes.Buffer
	if err := Save(&buf, netA); err != nil {
		t.Fatal(err)
	}
	netB := networks.BuildTrainable(networks.MnistB(), rng)
	if err := Load(&buf, netB); err == nil {
		t.Fatal("expected shape/name mismatch error")
	}
}

func TestLoadRejectsTruncatedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := networks.BuildTrainable(networks.MnistA(), rng)
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	net2 := networks.BuildTrainable(networks.MnistA(), rng)
	if err := Load(bytes.NewReader(trunc), net2); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := networks.BuildTrainable(networks.MnistA(), rng)
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 0xFF // corrupt version field
	if err := Load(bytes.NewReader(raw), net); err == nil {
		t.Fatal("expected version error")
	}
}
