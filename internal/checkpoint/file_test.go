package checkpoint

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pipelayer/internal/dataset"
	"pipelayer/internal/networks"
	"pipelayer/internal/tensor"
)

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.plkp")
	rng := rand.New(rand.NewSource(1))
	net := networks.BuildTrainable(networks.Mnist0(), rng)
	for _, p := range net.Params() {
		p.Value.RandNormal(rng, 0, 0.3)
	}
	if err := SaveFile(path, net, 7); err != nil {
		t.Fatal(err)
	}
	net2 := networks.BuildTrainable(networks.Mnist0(), rand.New(rand.NewSource(9)))
	epoch, err := LoadFile(path, net2)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 {
		t.Fatalf("epoch = %d, want 7", epoch)
	}
	p1, p2 := net.Params(), net2.Params()
	for i := range p1 {
		if !tensor.Equal(p1[i].Value, p2[i].Value, 0) {
			t.Fatalf("param %s differs after file round trip", p1[i].Name)
		}
	}
	// The atomic write must leave no temp-file litter behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestLoadRejectsBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := networks.BuildTrainable(networks.MnistA(), rng)
	var buf bytes.Buffer
	if err := SaveState(&buf, net, 3); err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{4, buf.Len() / 2, buf.Len() - 1} {
		raw := append([]byte(nil), buf.Bytes()...)
		raw[pos] ^= 0x01
		target := networks.BuildTrainable(networks.MnistA(), rand.New(rand.NewSource(3)))
		before := target.Params()[0].Value.Clone()
		_, err := LoadState(bytes.NewReader(raw), target)
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: err = %v, want ErrChecksum", pos, err)
		}
		// A rejected load must leave the network untouched.
		if !tensor.Equal(target.Params()[0].Value, before, 0) {
			t.Fatalf("flip at %d: rejected load mutated the network", pos)
		}
	}
}

func TestLoadRejectsMidWriteTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := networks.BuildTrainable(networks.MnistA(), rng)
	var buf bytes.Buffer
	if err := SaveState(&buf, net, 1); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, 16, buf.Len() / 3, buf.Len() - 4, buf.Len() - 1} {
		target := networks.BuildTrainable(networks.MnistA(), rng)
		if _, err := LoadState(bytes.NewReader(buf.Bytes()[:cut]), target); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.plkp")
	net := networks.BuildTrainable(networks.Mnist0(), rand.New(rand.NewSource(5)))

	// Cold start: no checkpoint is the normal case, not an error.
	epoch, ok, err := Resume(path, net)
	if err != nil || ok || epoch != 0 {
		t.Fatalf("cold start: (%d, %v, %v), want (0, false, nil)", epoch, ok, err)
	}

	if err := SaveFile(path, net, 4); err != nil {
		t.Fatal(err)
	}
	epoch, ok, err = Resume(path, net)
	if err != nil || !ok || epoch != 4 {
		t.Fatalf("warm start: (%d, %v, %v), want (4, true, nil)", epoch, ok, err)
	}

	// A corrupt checkpoint is a hard error — never silently ignored.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(path, net); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt resume: err = %v, want ErrChecksum", err)
	}
}

// TestResumeEquivalence is the crash-recovery acceptance criterion: training
// N epochs straight produces bit-identical weights to training k epochs,
// checkpointing, restoring into a fresh network, and training the remaining
// N−k epochs. The plain-SGD trainer is deterministic (no shuffling), so the
// comparison is exact.
func TestResumeEquivalence(t *testing.T) {
	const total, split = 5, 2
	train := dataset.Generate(40, dataset.DefaultOptions(true), 6)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.plkp")

	straight := networks.BuildTrainable(networks.MnistA(), rand.New(rand.NewSource(8)))
	for e := 0; e < total; e++ {
		straight.TrainEpoch(train, 10, 0.1)
	}

	first := networks.BuildTrainable(networks.MnistA(), rand.New(rand.NewSource(8)))
	for e := 0; e < split; e++ {
		first.TrainEpoch(train, 10, 0.1)
	}
	if err := SaveFile(path, first, split); err != nil {
		t.Fatal(err)
	}

	resumed := networks.BuildTrainable(networks.MnistA(), rand.New(rand.NewSource(99)))
	epoch, ok, err := Resume(path, resumed)
	if err != nil || !ok || epoch != split {
		t.Fatalf("resume: (%d, %v, %v), want (%d, true, nil)", epoch, ok, err, split)
	}
	for e := epoch; e < total; e++ {
		resumed.TrainEpoch(train, 10, 0.1)
	}

	ps, pr := straight.Params(), resumed.Params()
	for i := range ps {
		if !tensor.Equal(ps[i].Value, pr[i].Value, 0) {
			t.Fatalf("param %s: resumed training diverged from uninterrupted run", ps[i].Name)
		}
	}
}
