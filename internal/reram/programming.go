package reram

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"pipelayer/internal/fault"
)

// Iterative program-and-verify: real ReRAM cells cannot be set to a target
// conductance in one pulse — the spike driver (doubling as write driver,
// Section 4.2.1) applies a pulse, the readout path verifies, and the loop
// repeats until the conductance lands within tolerance. The pulse count
// feeds the energy model (each pulse costs one write-spike energy).

// MaxProgramPulses is the hard ceiling on the pulses any single
// program-and-verify operation may spend, whatever budget the caller passes.
// Without it a pathological noise draw (or a stuck cell) would keep the write
// driver looping forever; with it the loop provably terminates and the
// failure surfaces as Converged=false / ErrWriteFailed instead.
const MaxProgramPulses = 4096

// ErrWriteFailed is the sentinel for a cell that could not be brought within
// tolerance: the verify loop exhausted its (capped) pulse budget. Callers
// match it with errors.Is.
var ErrWriteFailed = errors.New("reram: write-verify failed to converge")

// ProgramVerifyResult summarizes one program-and-verify operation.
type ProgramVerifyResult struct {
	// Pulses is the number of write pulses applied.
	Pulses int
	// FinalError is the remaining |conductance − target| in level units.
	FinalError float64
	// Converged reports whether the tolerance was met within the budget.
	Converged bool
}

// ProgramVerify programs the cell to the target code using the iterative
// write-verify loop: each pulse moves the conductance toward the target
// with multiplicative noise of the given relative sigma; the loop stops
// when the error is within tolerance (in level units) or maxPulses is
// exhausted. rng may be nil when sigma is 0 (then one pulse suffices).
// The budget is clamped to MaxProgramPulses, so the loop always terminates.
func (c *Cell) ProgramVerify(code uint8, tolerance float64, maxPulses int, sigma float64, rng *rand.Rand) ProgramVerifyResult {
	if code > MaxCellCode {
		panic(fmt.Sprintf("reram: cell code %d exceeds %d", code, MaxCellCode))
	}
	if tolerance <= 0 || maxPulses <= 0 {
		panic("reram: ProgramVerify needs positive tolerance and pulse budget")
	}
	if maxPulses > MaxProgramPulses {
		maxPulses = MaxProgramPulses
	}
	if sigma > 0 && rng == nil {
		panic("reram: ProgramVerify with noise requires rng")
	}
	target := float64(code)
	res := ProgramVerifyResult{}
	for res.Pulses < maxPulses {
		res.Pulses++
		// One pulse moves the conductance most of the way to the target,
		// with per-pulse multiplicative noise (SET/RESET asymmetry and
		// cycle-to-cycle variation folded into one sigma).
		step := target - c.conductance
		noise := 0.0
		if sigma > 0 {
			noise = sigma * target * rng.NormFloat64()
		}
		c.conductance += step + noise
		if c.conductance < 0 {
			c.conductance = 0
		}
		res.FinalError = math.Abs(c.conductance - target)
		if res.FinalError <= tolerance {
			res.Converged = true
			break
		}
	}
	c.code = code
	return res
}

// ProgramVerifyChecked is ProgramVerify with an error return: a cell that
// stays outside tolerance after the (capped) budget yields ErrWriteFailed.
func (c *Cell) ProgramVerifyChecked(code uint8, tolerance float64, maxPulses int, sigma float64, rng *rand.Rand) (ProgramVerifyResult, error) {
	res := c.ProgramVerify(code, tolerance, maxPulses, sigma, rng)
	if !res.Converged {
		return res, fmt.Errorf("reram: cell still %.3g levels off target %d after %d pulses: %w",
			res.FinalError, code, res.Pulses, ErrWriteFailed)
	}
	return res, nil
}

// ProgramVerifyCodes programs a whole crossbar with the verify loop and
// returns the total pulse count (for write-energy accounting) and the
// number of cells that failed to converge within the budget.
//
// With a fault injector attached, each cell's write goes through the full
// tolerance path: stuck and dead cells fail immediately; a transient write
// failure or non-convergence is retried up to the configured bound, doubling
// the pulse budget each time (exponential backoff, capped at
// MaxProgramPulses); a cell that exhausts its retries or its endurance budget
// is frozen at its current conductance, counted in the fault telemetry, and
// reported as a failure here.
func (x *Crossbar) ProgramVerifyCodes(codes []uint8, tolerance float64, maxPulses int, sigma float64, rng *rand.Rand) (pulses, failures int) {
	if len(codes) != x.Rows*x.Cols {
		panic(fmt.Sprintf("reram: ProgramVerifyCodes got %d codes for %dx%d array", len(codes), x.Rows, x.Cols))
	}
	f := x.faults
	if f == nil {
		for i, code := range codes {
			res := x.cells[i].ProgramVerify(code, tolerance, maxPulses, sigma, rng)
			pulses += res.Pulses
			if !res.Converged {
				failures++
			}
		}
		x.stats.CellWrites += pulses
		return pulses, failures
	}
	cfg := f.inj.Config()
	budget0 := min(maxPulses, MaxProgramPulses)
	for i, code := range codes {
		// Known-dead cells still cost the verify readout one pulse.
		if f.stuck[i] != fault.None {
			pulses++
			failures++
			continue
		}
		if _, dead := f.frozen[i]; dead {
			pulses++
			failures++
			continue
		}
		budget := budget0
		for attempt := 1; ; attempt++ {
			res := x.cells[i].ProgramVerify(code, tolerance, budget, sigma, rng)
			pulses += res.Pulses
			f.writes[i] += int64(res.Pulses)
			if cfg.Endurance > 0 && f.writes[i] > cfg.Endurance {
				f.frozen[i] = x.cells[i].conductance
				f.inj.NoteWornOut(1)
				failures++
				break
			}
			if res.Converged && !f.inj.WriteFails(f.id, i, f.writes[i]) {
				break
			}
			if attempt > cfg.Retries {
				f.frozen[i] = x.cells[i].conductance
				f.inj.NoteWriteFailed(1)
				failures++
				break
			}
			f.inj.NoteRetried(1)
			budget = min(budget*2, MaxProgramPulses)
		}
	}
	x.stats.CellWrites += pulses
	x.faults.resetDrift()
	return pulses, failures
}

// ExpectedPulses estimates the mean pulses per cell for a given noise level
// and tolerance by Monte-Carlo over all 16 codes — the constant a deployment
// would fold into its write-energy budget.
func ExpectedPulses(tolerance float64, maxPulses int, sigma float64, trials int, seed int64) float64 {
	if trials <= 0 {
		panic("reram: trials must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	total := 0
	n := 0
	for t := 0; t < trials; t++ {
		for code := 0; code <= MaxCellCode; code++ {
			var c Cell
			res := c.ProgramVerify(uint8(code), tolerance, maxPulses, sigma, rng)
			total += res.Pulses
			n++
		}
	}
	return float64(total) / float64(n)
}
