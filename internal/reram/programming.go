package reram

import (
	"fmt"
	"math"
	"math/rand"
)

// Iterative program-and-verify: real ReRAM cells cannot be set to a target
// conductance in one pulse — the spike driver (doubling as write driver,
// Section 4.2.1) applies a pulse, the readout path verifies, and the loop
// repeats until the conductance lands within tolerance. The pulse count
// feeds the energy model (each pulse costs one write-spike energy).

// ProgramVerifyResult summarizes one program-and-verify operation.
type ProgramVerifyResult struct {
	// Pulses is the number of write pulses applied.
	Pulses int
	// FinalError is the remaining |conductance − target| in level units.
	FinalError float64
	// Converged reports whether the tolerance was met within the budget.
	Converged bool
}

// ProgramVerify programs the cell to the target code using the iterative
// write-verify loop: each pulse moves the conductance toward the target
// with multiplicative noise of the given relative sigma; the loop stops
// when the error is within tolerance (in level units) or maxPulses is
// exhausted. rng may be nil when sigma is 0 (then one pulse suffices).
func (c *Cell) ProgramVerify(code uint8, tolerance float64, maxPulses int, sigma float64, rng *rand.Rand) ProgramVerifyResult {
	if code > MaxCellCode {
		panic(fmt.Sprintf("reram: cell code %d exceeds %d", code, MaxCellCode))
	}
	if tolerance <= 0 || maxPulses <= 0 {
		panic("reram: ProgramVerify needs positive tolerance and pulse budget")
	}
	if sigma > 0 && rng == nil {
		panic("reram: ProgramVerify with noise requires rng")
	}
	target := float64(code)
	res := ProgramVerifyResult{}
	for res.Pulses < maxPulses {
		res.Pulses++
		// One pulse moves the conductance most of the way to the target,
		// with per-pulse multiplicative noise (SET/RESET asymmetry and
		// cycle-to-cycle variation folded into one sigma).
		step := target - c.conductance
		noise := 0.0
		if sigma > 0 {
			noise = sigma * target * rng.NormFloat64()
		}
		c.conductance += step + noise
		if c.conductance < 0 {
			c.conductance = 0
		}
		res.FinalError = math.Abs(c.conductance - target)
		if res.FinalError <= tolerance {
			res.Converged = true
			break
		}
	}
	c.code = code
	return res
}

// ProgramVerifyCodes programs a whole crossbar with the verify loop and
// returns the total pulse count (for write-energy accounting) and the
// number of cells that failed to converge within the budget.
func (x *Crossbar) ProgramVerifyCodes(codes []uint8, tolerance float64, maxPulses int, sigma float64, rng *rand.Rand) (pulses, failures int) {
	if len(codes) != x.Rows*x.Cols {
		panic(fmt.Sprintf("reram: ProgramVerifyCodes got %d codes for %dx%d array", len(codes), x.Rows, x.Cols))
	}
	for i, code := range codes {
		res := x.cells[i].ProgramVerify(code, tolerance, maxPulses, sigma, rng)
		pulses += res.Pulses
		if !res.Converged {
			failures++
		}
	}
	x.stats.CellWrites += pulses
	return pulses, failures
}

// ExpectedPulses estimates the mean pulses per cell for a given noise level
// and tolerance by Monte-Carlo over all 16 codes — the constant a deployment
// would fold into its write-energy budget.
func ExpectedPulses(tolerance float64, maxPulses int, sigma float64, trials int, seed int64) float64 {
	if trials <= 0 {
		panic("reram: trials must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	total := 0
	n := 0
	for t := 0; t < trials; t++ {
		for code := 0; code <= MaxCellCode; code++ {
			var c Cell
			res := c.ProgramVerify(uint8(code), tolerance, maxPulses, sigma, rng)
			total += res.Pulses
			n++
		}
	}
	return float64(total) / float64(n)
}
