package reram

import (
	"fmt"

	"pipelayer/internal/tensor"
)

// Mode distinguishes the two configurations of a morphable subarray
// (Section 3): computation (analog matrix–vector multiplication) and memory
// (conventional data storage).
type Mode int

const (
	// ModeCompute configures the subarray for in-situ computation.
	ModeCompute Mode = iota
	// ModeMemory configures the subarray as conventional storage.
	ModeMemory
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeCompute:
		return "compute"
	case ModeMemory:
		return "memory"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Morphable is a morphable subarray: it can be configured either as a
// compute array (holding weights and performing multiplications) or as plain
// memory. PipeLayer morphs storage arrays into compute arrays during
// training (Section 6.6) to compute partial derivatives from buffered d
// values.
type Morphable struct {
	mode  Mode
	array *ResolutionArray
	store *tensor.Tensor
}

// NewMorphable creates a subarray in memory mode.
func NewMorphable() *Morphable { return &Morphable{mode: ModeMemory} }

// Mode returns the current configuration.
func (m *Morphable) Mode() Mode { return m.mode }

// ConfigureCompute morphs the subarray into compute mode with the given
// programmed array. Any stored memory contents are released.
func (m *Morphable) ConfigureCompute(array *ResolutionArray) {
	if array == nil {
		panic("reram: ConfigureCompute requires an array")
	}
	m.mode = ModeCompute
	m.array = array
	m.store = nil
}

// ConfigureMemory morphs the subarray into memory mode.
func (m *Morphable) ConfigureMemory() {
	m.mode = ModeMemory
	m.array = nil
}

// Array returns the compute array; it panics in memory mode.
func (m *Morphable) Array() *ResolutionArray {
	if m.mode != ModeCompute {
		panic("reram: subarray is not in compute mode")
	}
	return m.array
}

// Store writes a tensor into the subarray; it panics in compute mode.
func (m *Morphable) Store(t *tensor.Tensor) {
	if m.mode != ModeMemory {
		panic("reram: cannot store into a compute-mode subarray")
	}
	m.store = t.Clone()
}

// Load reads back the stored tensor (nil if nothing stored).
func (m *Morphable) Load() *tensor.Tensor {
	if m.mode != ModeMemory {
		panic("reram: cannot load from a compute-mode subarray")
	}
	if m.store == nil {
		return nil
	}
	return m.store.Clone()
}

// MemoryBank is a set of memory subarrays addressed by name — the circles of
// the paper's Figure 3 that hold intermediate d and δ values between layers.
type MemoryBank struct {
	slots map[string]*tensor.Tensor
	// Writes and Reads count accesses for the energy model.
	Writes, Reads int
}

// NewMemoryBank creates an empty bank.
func NewMemoryBank() *MemoryBank {
	return &MemoryBank{slots: make(map[string]*tensor.Tensor)}
}

// Write stores a copy of t under key.
func (b *MemoryBank) Write(key string, t *tensor.Tensor) {
	b.slots[key] = t.Clone()
	b.Writes++
}

// Read returns a copy of the tensor under key, or an error if absent.
func (b *MemoryBank) Read(key string) (*tensor.Tensor, error) {
	t, ok := b.slots[key]
	if !ok {
		return nil, fmt.Errorf("reram: memory bank has no entry %q", key)
	}
	b.Reads++
	return t.Clone(), nil
}

// MustRead is Read that panics on a missing key (programming error).
func (b *MemoryBank) MustRead(key string) *tensor.Tensor {
	t, err := b.Read(key)
	if err != nil {
		panic(err)
	}
	return t
}

// Has reports whether key is present.
func (b *MemoryBank) Has(key string) bool {
	_, ok := b.slots[key]
	return ok
}

// Len returns the number of stored entries.
func (b *MemoryBank) Len() int { return len(b.slots) }
