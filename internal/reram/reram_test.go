package reram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipelayer/internal/tensor"
)

func TestCellProgramAndRead(t *testing.T) {
	var c Cell
	c.Program(9, 0, nil)
	if c.Code() != 9 || c.Conductance() != 9 {
		t.Fatalf("cell: code=%d g=%g", c.Code(), c.Conductance())
	}
}

func TestCellProgramOutOfRangePanics(t *testing.T) {
	var c Cell
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Program(16, 0, nil)
}

func TestCellVariationPerturbsConductance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var c Cell
	c.Program(8, 0.1, rng)
	if c.Conductance() == 8 {
		t.Fatal("variation should perturb conductance (vanishingly unlikely to be exact)")
	}
	if c.Conductance() < 0 {
		t.Fatal("conductance must be non-negative")
	}
}

func TestCrossbarMatVecSpikeExact(t *testing.T) {
	x := NewCrossbar(3, 2)
	// G = [[1,2],[3,4],[5,6]]
	x.ProgramCodes([]uint8{1, 2, 3, 4, 5, 6})
	out := x.MatVecSpike([]uint64{1, 2, 3}, 4)
	// col0: 1*1+2*3+3*5 = 22 ; col1: 1*2+2*4+3*6 = 28
	if out[0] != 22 || out[1] != 28 {
		t.Fatalf("MatVecSpike = %v", out)
	}
}

func TestCrossbarStatsCounting(t *testing.T) {
	x := NewCrossbar(2, 3)
	x.ProgramCodes([]uint8{1, 1, 1, 1, 1, 1})
	if x.Stats().CellWrites != 6 {
		t.Fatalf("writes = %d", x.Stats().CellWrites)
	}
	x.MatVecSpike([]uint64{3, 1}, 2) // 2+1 = 3 input spikes, shared across columns
	if got := x.Stats().InputSpikes; got != 3 {
		t.Fatalf("input spikes = %d, want 3", got)
	}
	if x.Stats().OutputSpikes != (3+1)*3 {
		t.Fatalf("output spikes = %d", x.Stats().OutputSpikes)
	}
	x.ResetStats()
	if x.Stats() != (Stats{}) {
		t.Fatal("ResetStats must clear counters")
	}
}

func TestSignedPairSubtraction(t *testing.T) {
	p := NewSignedPair(2, 1)
	p.Pos.ProgramCodes([]uint8{5, 0})
	p.Neg.ProgramCodes([]uint8{0, 3})
	out := p.MatVecSpike([]uint64{1, 1}, 1)
	if out[0] != 5-3 {
		t.Fatalf("signed result = %d, want 2", out[0])
	}
}

func TestResolutionArrayExactCodes(t *testing.T) {
	// Weight +1.0 maps to code 65535; input code 3 → product 3*65535.
	w := tensor.FromSlice([]float64{1.0}, 1)
	ra := NewResolutionArray(w, 1, 1, 0, nil)
	out := ra.MatVecCodes([]uint64{3}, 4)
	if out[0] != 3*65535 {
		t.Fatalf("MatVecCodes = %d, want %d", out[0], 3*65535)
	}
}

func TestResolutionArrayMatVecFloatAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows, cols := 32, 8
	w := tensor.New(rows*cols).RandNormal(rng, 0, 1)
	ra := NewResolutionArray(w, rows, cols, 0, nil)
	x := tensor.New(rows).RandUniform(rng, 0, 1)
	got := ra.MatVecFloat(x, 16)
	// Reference: out_j = Σ_i x_i · w_ij with w row-major (rows, cols).
	ref := tensor.New(cols)
	for j := 0; j < cols; j++ {
		s := 0.0
		for i := 0; i < rows; i++ {
			s += x.At(i) * w.Data()[i*cols+j]
		}
		ref.Data()[j] = s
	}
	for j := 0; j < cols; j++ {
		if math.Abs(got.At(j)-ref.At(j)) > 1e-3*(1+math.Abs(ref.At(j))) {
			t.Fatalf("col %d: analog %g vs exact %g", j, got.At(j), ref.At(j))
		}
	}
}

func TestResolutionArraySignedInputs(t *testing.T) {
	// Backward-phase error vectors are signed; two-pass input must work.
	rng := rand.New(rand.NewSource(3))
	rows, cols := 16, 4
	w := tensor.New(rows*cols).RandNormal(rng, 0, 1)
	ra := NewResolutionArray(w, rows, cols, 0, nil)
	x := tensor.New(rows).RandNormal(rng, 0, 1) // signed
	got := ra.MatVecFloat(x, 16)
	for j := 0; j < cols; j++ {
		s := 0.0
		for i := 0; i < rows; i++ {
			s += x.At(i) * w.Data()[i*cols+j]
		}
		if math.Abs(got.At(j)-s) > 1e-3*(1+math.Abs(s)) {
			t.Fatalf("col %d: analog %g vs exact %g", j, got.At(j), s)
		}
	}
}

func TestResolutionArrayZeroInput(t *testing.T) {
	w := tensor.FromSlice([]float64{1, -1}, 2)
	ra := NewResolutionArray(w, 2, 1, 0, nil)
	out := ra.MatVecFloat(tensor.New(2), 8)
	if out.At(0) != 0 {
		t.Fatalf("zero input must give zero output, got %g", out.At(0))
	}
}

func TestResolutionArrayReprogram(t *testing.T) {
	w1 := tensor.FromSlice([]float64{0.5}, 1)
	ra := NewResolutionArray(w1, 1, 1, 0, nil)
	before := ra.MatVecFloat(tensor.FromSlice([]float64{1}, 1), 8).At(0)
	ra.Program(tensor.FromSlice([]float64{-0.5}, 1))
	after := ra.MatVecFloat(tensor.FromSlice([]float64{1}, 1), 8).At(0)
	if math.Abs(before-0.5) > 1e-2 || math.Abs(after+0.5) > 1e-2 {
		t.Fatalf("reprogram failed: before %g after %g", before, after)
	}
}

// Property: the resolution-compensated array computes the exact integer
// product for arbitrary 16-bit weight codes and small inputs.
func TestPropertyResolutionShiftAdd(t *testing.T) {
	f := func(wcode uint16, xraw uint8) bool {
		// A second weight of exactly 1.0 pins the scale so the first weight's
		// code is wcode itself; its input is held at zero.
		w := tensor.FromSlice([]float64{float64(wcode) / 65535.0, 1.0}, 2)
		ra := NewResolutionArray(w, 2, 1, 0, nil)
		x := uint64(xraw % 16)
		out := ra.MatVecCodes([]uint64{x, 0}, 4)
		return out[0] == int64(x)*int64(wcode)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestActivationUnitReLU(t *testing.T) {
	a := NewActivationUnit(ReLULUT())
	if got := a.Process(5, 2); got != 3 {
		t.Fatalf("Process(5,2) = %g, want 3", got)
	}
	if got := a.Process(1, 4); got != 0 {
		t.Fatalf("Process(1,4) = %g, want 0 (ReLU)", got)
	}
}

func TestActivationUnitMaxRegister(t *testing.T) {
	a := NewActivationUnit(ReLULUT())
	a.Process(2, 0)
	a.Process(7, 0)
	a.Process(4, 0)
	if m := a.MaxAndReset(); m != 7 {
		t.Fatalf("max register = %g, want 7", m)
	}
	a.Process(1, 0)
	if m := a.MaxAndReset(); m != 1 {
		t.Fatalf("max register after reset = %g, want 1", m)
	}
}

func TestActivationUnitBypass(t *testing.T) {
	a := NewActivationUnit(nil)
	if got := a.Process(1, 5); got != -4 {
		t.Fatalf("bypass Process = %g, want -4", got)
	}
}

func TestSigmoidLUTAccuracy(t *testing.T) {
	l := SigmoidLUT(1024)
	for _, x := range []float64{-5, -1, 0, 0.3, 2, 6} {
		want := 1 / (1 + math.Exp(-x))
		if math.Abs(l.Lookup(x)-want) > 0.01 {
			t.Fatalf("sigmoid LUT at %g: %g vs %g", x, l.Lookup(x), want)
		}
	}
	if l.Lookup(-100) > 0.001 || l.Lookup(100) < 0.999 {
		t.Fatal("LUT must clamp outside its domain")
	}
}

func TestLUTValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLUT(math.Abs, 0, 1, 1) },
		func() { NewLUT(math.Abs, 1, 0, 16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMorphableModes(t *testing.T) {
	m := NewMorphable()
	if m.Mode() != ModeMemory {
		t.Fatal("new subarray must be in memory mode")
	}
	m.Store(tensor.FromSlice([]float64{1, 2}, 2))
	if got := m.Load(); got.At(1) != 2 {
		t.Fatalf("Load = %v", got.Data())
	}
	w := tensor.FromSlice([]float64{0.5}, 1)
	m.ConfigureCompute(NewResolutionArray(w, 1, 1, 0, nil))
	if m.Mode() != ModeCompute {
		t.Fatal("mode should be compute")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Store in compute mode must panic")
		}
	}()
	m.Store(tensor.New(1))
}

func TestMorphableLoadEmptyIsNil(t *testing.T) {
	m := NewMorphable()
	if m.Load() != nil {
		t.Fatal("empty subarray must load nil")
	}
}

func TestModeString(t *testing.T) {
	if ModeCompute.String() != "compute" || ModeMemory.String() != "memory" {
		t.Fatal("Mode.String broken")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must still render")
	}
}

func TestMemoryBank(t *testing.T) {
	b := NewMemoryBank()
	x := tensor.FromSlice([]float64{3}, 1)
	b.Write("d1", x)
	x.Set(99, 0) // bank must have copied
	got, err := b.Read("d1")
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0) != 3 {
		t.Fatalf("bank returned %g, want 3 (no aliasing)", got.At(0))
	}
	if _, err := b.Read("missing"); err == nil {
		t.Fatal("expected error for missing key")
	}
	if !b.Has("d1") || b.Has("nope") || b.Len() != 1 {
		t.Fatal("Has/Len wrong")
	}
	if b.Writes != 1 || b.Reads != 1 {
		t.Fatalf("access counts: %d writes, %d reads", b.Writes, b.Reads)
	}
}

func TestMemoryBankMustReadPanics(t *testing.T) {
	b := NewMemoryBank()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.MustRead("absent")
}

func TestNoisyArrayStillApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows, cols := 64, 4
	w := tensor.New(rows*cols).RandNormal(rng, 0, 1)
	ra := NewResolutionArray(w, rows, cols, 0.02, rng)
	x := tensor.New(rows).RandUniform(rng, 0, 1)
	got := ra.MatVecFloat(x, 16)
	for j := 0; j < cols; j++ {
		s := 0.0
		for i := 0; i < rows; i++ {
			s += x.At(i) * w.Data()[i*cols+j]
		}
		if math.Abs(got.At(j)-s) > 0.25*(1+math.Abs(s)) {
			t.Fatalf("noisy col %d too far off: %g vs %g", j, got.At(j), s)
		}
	}
}
