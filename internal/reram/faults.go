package reram

import (
	"pipelayer/internal/fault"
)

// Fault support for the device model. A Crossbar with an attached
// fault.Injector overrides its readout with the injector's stuck-at map,
// freezes cells that wear out or exhaust their write retries, decays every
// programmed conductance by the array's drift factor, and spends extra write
// pulses on retried programs. All fault state mutates only inside program
// calls and Tick — both serial in every execution path — so the parallel
// MatVecSpike readout stays race-free and bit-identical across worker counts.

// xbarFaults is the per-array fault state.
type xbarFaults struct {
	inj   *fault.Injector
	id    uint64
	stuck []fault.Stuck
	// frozen pins a cell at the conductance it died with (wear-out or
	// retry exhaustion); keyed by cell index.
	frozen map[int]float64
	// writes counts cumulative program pulses per cell for endurance and
	// for indexing transient write-failure draws.
	writes []int64
	// age is the array's compute-cycle age since its last full reprogram;
	// drift caches DriftFactor(age).
	age   int64
	drift float64
}

// conductance returns the effective readout conductance of cell i: stuck
// cells pin to the rail codes, dead cells to their frozen value, and healthy
// programmed cells decay by the drift factor.
func (f *xbarFaults) conductance(x *Crossbar, i int) float64 {
	switch f.stuck[i] {
	case fault.StuckOff:
		return 0
	case fault.StuckOn:
		return float64(MaxCellCode)
	}
	if g, ok := f.frozen[i]; ok {
		return g
	}
	return x.cells[i].conductance * f.drift
}

// resetDrift marks the array freshly programmed.
func (f *xbarFaults) resetDrift() {
	if f != nil {
		f.age, f.drift = 0, 1
	}
}

// AttachFaults wires the injector's fault model into the array and builds its
// static stuck-at map (reported via the injected-cells counter). Returns the
// number of stuck cells. A nil injector detaches. Callers must pick a unique
// id per crossbar — the id keys every deterministic draw.
func (x *Crossbar) AttachFaults(inj *fault.Injector, id uint64) int {
	if inj == nil {
		x.faults = nil
		return 0
	}
	f := &xbarFaults{
		inj:    inj,
		id:     id,
		stuck:  make([]fault.Stuck, len(x.cells)),
		frozen: make(map[int]float64),
		writes: make([]int64, len(x.cells)),
		drift:  1,
	}
	n := 0
	for i := range f.stuck {
		if f.stuck[i] = inj.StuckAt(id, i); f.stuck[i] != fault.None {
			n++
		}
	}
	inj.NoteInjected(int64(n))
	x.faults = f
	return n
}

// Faulty reports whether a fault injector is attached.
func (x *Crossbar) Faulty() bool { return x.faults != nil }

// Tick advances the array's drift age by n compute cycles. Call only from
// serial sections (between MatVec passes), never concurrently with readout.
func (x *Crossbar) Tick(n int64) {
	if f := x.faults; f != nil && f.inj.Config().Drift > 0 && n > 0 {
		f.age += n
		f.drift = f.inj.DriftFactor(f.age)
	}
}

// columnFaulty reports whether any cell of the physical column is stuck or
// frozen — the repair trigger for spare-column remapping.
func (x *Crossbar) columnFaulty(col int) bool {
	f := x.faults
	if f == nil {
		return false
	}
	for r := 0; r < x.Rows; r++ {
		i := r*x.Cols + col
		if f.stuck[i] != fault.None {
			return true
		}
		if _, ok := f.frozen[i]; ok {
			return true
		}
	}
	return false
}

// programCell writes one cell through the fault model: stuck and dead cells
// absorb the pulse without changing, transient failures are retried up to the
// configured bound with exponentially growing pulse cost, and endurance
// exhaustion or retry give-up freezes the cell at its current conductance.
func (x *Crossbar) programCell(i int, code uint8) {
	f := x.faults
	if f == nil {
		x.cells[i].Program(code, x.variation, x.rng)
		x.stats.CellWrites++
		return
	}
	// The write driver always fires at least one pulse; it learns the cell
	// is unprogrammable only from the verify readout.
	x.stats.CellWrites++
	if f.stuck[i] != fault.None {
		return
	}
	if _, dead := f.frozen[i]; dead {
		return
	}
	cfg := f.inj.Config()
	for attempt := 1; ; attempt++ {
		f.writes[i]++
		if cfg.Endurance > 0 && f.writes[i] > cfg.Endurance {
			f.frozen[i] = x.cells[i].conductance
			f.inj.NoteWornOut(1)
			return
		}
		if !f.inj.WriteFails(f.id, i, f.writes[i]) {
			x.cells[i].Program(code, x.variation, x.rng)
			return
		}
		if attempt > cfg.Retries {
			f.frozen[i] = x.cells[i].conductance
			f.inj.NoteWriteFailed(1)
			return
		}
		f.inj.NoteRetried(1)
		// Exponential pulse backoff: retry k drives 2^k pulses (capped) to
		// force the cell, and the energy model pays for every one.
		x.stats.CellWrites += 1 << uint(min(attempt, 12))
	}
}
