// Package reram models the ReRAM substrate of PipeLayer: metal-oxide
// resistive cells with 4-bit programmable conductance, crossbar arrays that
// perform analog matrix–vector multiplication driven by the spike package,
// the positive/negative array pairs and four-group resolution compensation of
// Sections 4.2.3 and 5.1, the activation component (subtractor + LUT + max
// register), and the morphable/memory subarray abstraction of Section 3.
package reram

import (
	"fmt"
	"math/rand"
)

// CellLevels is the number of programmable conductance levels of one cell
// (4-bit cells, the paper's default).
const CellLevels = 16

// MaxCellCode is the largest programmable conductance code.
const MaxCellCode = CellLevels - 1

// Cell is one ReRAM cross-point device. Its conductance is a 4-bit code plus
// optional static device variation (programming inaccuracy), fixed at
// program time as in real arrays.
type Cell struct {
	code        uint8
	conductance float64
}

// Program sets the cell's conductance code (0..15). variation is the
// relative standard deviation of the programmed conductance (0 for ideal
// devices); rng supplies the randomness and may be nil when variation is 0.
func (c *Cell) Program(code uint8, variation float64, rng *rand.Rand) {
	if code > MaxCellCode {
		panic(fmt.Sprintf("reram: cell code %d exceeds %d", code, MaxCellCode))
	}
	c.code = code
	g := float64(code)
	if variation > 0 {
		if rng == nil {
			panic("reram: variation requires rng")
		}
		g *= 1 + variation*rng.NormFloat64()
		if g < 0 {
			g = 0
		}
	}
	c.conductance = g
}

// Code returns the programmed 4-bit code.
func (c *Cell) Code() uint8 { return c.code }

// Conductance returns the effective (possibly variation-perturbed) analog
// conductance in units of the per-level conductance step.
func (c *Cell) Conductance() float64 { return c.conductance }
