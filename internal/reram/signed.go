package reram

import (
	"fmt"
	"math"
	"math/rand"

	"pipelayer/internal/fixed"
	"pipelayer/internal/tensor"
)

// SignedPair is the positive/negative crossbar pair of Section 4.2.3:
// positive weight magnitudes are programmed into the positive array,
// negative magnitudes into the negative array, and the activation
// component's subtractor computes D_P − D_N.
type SignedPair struct {
	Pos, Neg *Crossbar
}

// NewSignedPair allocates an ideal pair of rows×cols arrays.
func NewSignedPair(rows, cols int) *SignedPair {
	return &SignedPair{Pos: NewCrossbar(rows, cols), Neg: NewCrossbar(rows, cols)}
}

// NewNoisySignedPair allocates a pair with device variation.
func NewNoisySignedPair(rows, cols int, variation float64, rng *rand.Rand) *SignedPair {
	return &SignedPair{
		Pos: NewNoisyCrossbar(rows, cols, variation, rng),
		Neg: NewNoisyCrossbar(rows, cols, variation, rng),
	}
}

// MatVecSpike runs both arrays on the same spike-coded input and returns the
// signed per-column counts D_P − D_N.
func (p *SignedPair) MatVecSpike(inputCodes []uint64, inBits int) []int {
	dp := p.Pos.MatVecSpike(inputCodes, inBits)
	dn := p.Neg.MatVecSpike(inputCodes, inBits)
	out := make([]int, len(dp))
	for i := range dp {
		out[i] = dp[i] - dn[i]
	}
	return out
}

// Stats returns the combined event counts of both arrays.
func (p *SignedPair) Stats() Stats {
	s := p.Pos.Stats()
	s.Add(p.Neg.Stats())
	return s
}

// ResetStats clears both arrays' counters.
func (p *SignedPair) ResetStats() {
	p.Pos.ResetStats()
	p.Neg.ResetStats()
}

// ResolutionArray stores a signed weight matrix at full WeightBits (16-bit)
// resolution using fixed.Groups (4) signed pairs of 4-bit cells — the
// resolution-compensation scheme of Figure 14. Group g stores bit slice
// [4g+3 .. 4g] of every weight magnitude; group outputs are combined as
// Σ_g count_g << 4g.
type ResolutionArray struct {
	Rows, Cols int
	groups     [fixed.Groups]*SignedPair
	// scale maps weight code 65535 back to the analog magnitude wMax.
	scale float64
}

// NewResolutionArray programs a (rows×cols) float weight matrix W (tensor
// with rows*cols elements, row-major, rows = input dim, cols = output dim)
// into 4 signed pairs. variation/rng model programming noise (0/nil = ideal).
func NewResolutionArray(w *tensor.Tensor, rows, cols int, variation float64, rng *rand.Rand) *ResolutionArray {
	if w.Size() != rows*cols {
		panic(fmt.Sprintf("reram: weight tensor has %d elems for %dx%d array", w.Size(), rows, cols))
	}
	ra := &ResolutionArray{Rows: rows, Cols: cols, scale: w.AbsMax()}
	for g := range ra.groups {
		ra.groups[g] = NewNoisySignedPair(rows, cols, variation, rng)
	}
	ra.Program(w)
	return ra
}

// Program (re)writes the full weight matrix, refreshing the scale.
func (ra *ResolutionArray) Program(w *tensor.Tensor) {
	if w.Size() != ra.Rows*ra.Cols {
		panic(fmt.Sprintf("reram: Program got %d elems for %dx%d array", w.Size(), ra.Rows, ra.Cols))
	}
	ra.scale = w.AbsMax()
	if ra.scale == 0 {
		ra.scale = 1
	}
	n := ra.Rows * ra.Cols
	var posCodes, negCodes [fixed.Groups][]uint8
	for g := 0; g < fixed.Groups; g++ {
		posCodes[g] = make([]uint8, n)
		negCodes[g] = make([]uint8, n)
	}
	maxCode := float64(math.MaxUint16)
	for i, v := range w.Data() {
		mag := uint16(math.Round(math.Abs(v) / ra.scale * maxCode))
		segs := fixed.Decompose16(mag)
		for g := 0; g < fixed.Groups; g++ {
			if v >= 0 {
				posCodes[g][i] = segs[g]
			} else {
				negCodes[g][i] = segs[g]
			}
		}
	}
	for g := 0; g < fixed.Groups; g++ {
		ra.groups[g].Pos.ProgramCodes(posCodes[g])
		ra.groups[g].Neg.ProgramCodes(negCodes[g])
	}
}

// Scale returns the analog magnitude corresponding to the all-ones code.
func (ra *ResolutionArray) Scale() float64 { return ra.scale }

// MatVecCodes computes the signed integer result Σ_i code_i·wcode_ij for
// every column j, where wcode is the signed 16-bit weight code. Exact for
// ideal devices: the four group counts are shift-added per Figure 14(a).
func (ra *ResolutionArray) MatVecCodes(inputCodes []uint64, inBits int) []int64 {
	out := make([]int64, ra.Cols)
	for g := 0; g < fixed.Groups; g++ {
		counts := ra.groups[g].MatVecSpike(inputCodes, inBits)
		shift := uint(fixed.CellBits * g)
		for j, c := range counts {
			out[j] += int64(c) << shift
		}
	}
	return out
}

// MatVecFloat runs the full analog pipeline on a float input vector: inputs
// are quantized to inBits-bit codes (signed inputs are handled by two passes,
// one for the positive part and one for the negative part — the same
// mechanism the backward phase uses for error vectors δ), driven through the
// arrays, and rescaled to floats.
func (ra *ResolutionArray) MatVecFloat(x *tensor.Tensor, inBits int) *tensor.Tensor {
	if x.Size() != ra.Rows {
		panic(fmt.Sprintf("reram: MatVecFloat input has %d elems for %d rows", x.Size(), ra.Rows))
	}
	xScale := x.AbsMax()
	out := tensor.New(ra.Cols)
	if xScale == 0 {
		return out
	}
	maxIn := float64(uint64(1)<<uint(inBits) - 1)

	posCodes := make([]uint64, ra.Rows)
	negCodes := make([]uint64, ra.Rows)
	hasNeg := false
	for i, v := range x.Data() {
		code := uint64(math.Round(math.Abs(v) / xScale * maxIn))
		if v >= 0 {
			posCodes[i] = code
		} else {
			negCodes[i] = code
			hasNeg = true
		}
	}
	acc := ra.MatVecCodes(posCodes, inBits)
	if hasNeg {
		negAcc := ra.MatVecCodes(negCodes, inBits)
		for j := range acc {
			acc[j] -= negAcc[j]
		}
	}
	// Rescale: value = count · (xScale/maxIn) · (wScale/65535).
	k := xScale / maxIn * ra.scale / float64(math.MaxUint16)
	for j, c := range acc {
		out.Data()[j] = float64(c) * k
	}
	return out
}

// Stats returns combined event counts across all groups and signs.
func (ra *ResolutionArray) Stats() Stats {
	var s Stats
	for _, g := range ra.groups {
		s.Add(g.Stats())
	}
	return s
}

// ResetStats clears all counters.
func (ra *ResolutionArray) ResetStats() {
	for _, g := range ra.groups {
		g.ResetStats()
	}
}
