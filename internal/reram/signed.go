package reram

import (
	"fmt"
	"math"
	"math/rand"

	"pipelayer/internal/fault"
	"pipelayer/internal/fixed"
	"pipelayer/internal/tensor"
)

// ColumnState classifies one logical column of a fault-tolerant SignedPair.
type ColumnState uint8

const (
	// ColHealthy computes on its original physical column.
	ColHealthy ColumnState = iota
	// ColRemapped computes on a spare physical column.
	ColRemapped
	// ColDegraded is emulated digitally (exact ideal result) because every
	// spare was exhausted and graceful degradation is enabled.
	ColDegraded
	// ColCorrupt keeps computing on faulty cells: no spare was available
	// and degradation is disabled, so its outputs are wrong.
	ColCorrupt
)

// SignedPair is the positive/negative crossbar pair of Section 4.2.3:
// positive weight magnitudes are programmed into the positive array,
// negative magnitudes into the negative array, and the activation
// component's subtractor computes D_P − D_N.
//
// A pair built with NewFaultySignedPair additionally carries spare columns
// and a remap table: after every program the pair re-checks its physical
// columns against the fault state, reroutes faulty logical columns to healthy
// spares, and — once spares run out — either degrades a column to exact
// digital emulation of its intended codes or leaves it corrupt, per the
// injector's config. All repair decisions happen inside Program calls
// (serial), never during readout.
type SignedPair struct {
	Pos, Neg *Crossbar

	// Fault-tolerance state; remap == nil means a plain pair.
	logical   int
	inj       *fault.Injector
	remap     []int         // logical column → physical column
	class     []ColumnState // per logical column
	nextSpare int           // next never-tried spare index
	// Intended logical code matrices (row-major, rows×logical), kept for
	// spare reprogramming and digital emulation of degraded columns.
	posCodes, negCodes []uint8
}

// NewSignedPair allocates an ideal pair of rows×cols arrays.
func NewSignedPair(rows, cols int) *SignedPair {
	return &SignedPair{Pos: NewCrossbar(rows, cols), Neg: NewCrossbar(rows, cols)}
}

// NewNoisySignedPair allocates a pair with device variation.
func NewNoisySignedPair(rows, cols int, variation float64, rng *rand.Rand) *SignedPair {
	return &SignedPair{
		Pos: NewNoisyCrossbar(rows, cols, variation, rng),
		Neg: NewNoisyCrossbar(rows, cols, variation, rng),
	}
}

// NewFaultySignedPair allocates a fault-tolerant pair: rows×(cols+spares)
// physical arrays serving cols logical columns, with the injector's stuck-at
// maps attached under crossbar ids 2·id (positive) and 2·id+1 (negative).
// A nil injector yields a plain ideal pair.
func NewFaultySignedPair(rows, cols int, inj *fault.Injector, id uint64) *SignedPair {
	if inj == nil {
		return NewSignedPair(rows, cols)
	}
	spares := inj.Config().Spares
	p := &SignedPair{
		Pos:     NewCrossbar(rows, cols+spares),
		Neg:     NewCrossbar(rows, cols+spares),
		logical: cols,
		inj:     inj,
		remap:   make([]int, cols),
		class:   make([]ColumnState, cols),
	}
	p.Pos.AttachFaults(inj, 2*id)
	p.Neg.AttachFaults(inj, 2*id+1)
	for j := range p.remap {
		p.remap[j] = j
	}
	return p
}

// LogicalCols returns the number of logical columns the pair serves (the
// physical arrays of a faulty pair are wider by the spare count).
func (p *SignedPair) LogicalCols() int {
	if p.remap != nil {
		return p.logical
	}
	return p.Pos.Cols
}

// State returns the fault classification of one logical column.
func (p *SignedPair) State(j int) ColumnState {
	if p.remap == nil {
		return ColHealthy
	}
	return p.class[j]
}

// ProgramCodes writes the row-major positive and negative logical code
// matrices into the pair. On a plain pair this programs both arrays directly;
// on a faulty pair each logical column is written to its currently mapped
// physical column and the remap/degrade state is re-evaluated afterwards.
func (p *SignedPair) ProgramCodes(pos, neg []uint8) {
	if p.remap == nil {
		p.Pos.ProgramCodes(pos)
		p.Neg.ProgramCodes(neg)
		return
	}
	if want := p.Pos.Rows * p.logical; len(pos) != want || len(neg) != want {
		panic(fmt.Sprintf("reram: ProgramCodes got %d/%d codes for %dx%d pair", len(pos), len(neg), p.Pos.Rows, p.logical))
	}
	p.posCodes = append(p.posCodes[:0], pos...)
	p.negCodes = append(p.negCodes[:0], neg...)
	for j := 0; j < p.logical; j++ {
		if p.class[j] == ColDegraded {
			continue // emulated digitally; no point wearing dead silicon
		}
		p.writeColumn(j, p.remap[j])
	}
	p.Pos.faults.resetDrift()
	p.Neg.faults.resetDrift()
	p.reclassify()
}

// writeColumn programs logical column j into physical column phys on both
// arrays, through the fault model.
func (p *SignedPair) writeColumn(j, phys int) {
	for r := 0; r < p.Pos.Rows; r++ {
		i := r*p.logical + j
		p.Pos.programCell(r*p.Pos.Cols+phys, p.posCodes[i])
		p.Neg.programCell(r*p.Neg.Cols+phys, p.negCodes[i])
	}
}

// columnFaulty reports whether the physical column is damaged on either array.
func (p *SignedPair) columnFaulty(phys int) bool {
	return p.Pos.columnFaulty(phys) || p.Neg.columnFaulty(phys)
}

// reclassify walks the logical columns after a program: any column whose
// physical column is damaged (stuck cells, wear-out, abandoned writes) is
// rerouted to the next healthy spare and reprogrammed there; once spares are
// exhausted the column degrades to digital emulation (if enabled) or is left
// corrupt. Degraded and corrupt states are terminal; a remapped column whose
// spare later dies is rerouted again.
func (p *SignedPair) reclassify() {
	spares := p.Pos.Cols - p.logical
	for j := 0; j < p.logical; j++ {
		if p.class[j] == ColDegraded || p.class[j] == ColCorrupt {
			continue
		}
		if !p.columnFaulty(p.remap[j]) {
			continue
		}
		remapped := false
		for p.nextSpare < spares {
			phys := p.logical + p.nextSpare
			p.nextSpare++
			if p.columnFaulty(phys) {
				continue // spare born bad — skip it for good
			}
			p.remap[j] = phys
			p.class[j] = ColRemapped
			p.inj.NoteRemapped(1)
			p.writeColumn(j, phys)
			remapped = true
			break
		}
		if remapped {
			continue
		}
		if p.inj.Config().Degrade {
			p.class[j] = ColDegraded
			p.inj.NoteDegraded(1)
		} else {
			p.class[j] = ColCorrupt
			p.inj.NoteCorrupted(1)
		}
	}
}

// digitalColumn is the graceful-degradation fallback: the exact integer
// result Σ_i input_i·(pos_ij − neg_ij) the analog column would produce with
// ideal devices (the spike readout is exact for integer conductances).
func (p *SignedPair) digitalColumn(j int, inputCodes []uint64) int {
	s := 0
	for r := 0; r < p.Pos.Rows; r++ {
		i := r*p.logical + j
		s += int(inputCodes[r]) * (int(p.posCodes[i]) - int(p.negCodes[i]))
	}
	return s
}

// Tick advances the drift age of both arrays by n compute cycles.
func (p *SignedPair) Tick(n int64) {
	p.Pos.Tick(n)
	p.Neg.Tick(n)
}

// MatVecSpike runs both arrays on the same spike-coded input and returns the
// signed per-column counts D_P − D_N. On a faulty pair, outputs are gathered
// through the remap table and degraded columns are emulated digitally.
func (p *SignedPair) MatVecSpike(inputCodes []uint64, inBits int) []int {
	dp := p.Pos.MatVecSpike(inputCodes, inBits)
	dn := p.Neg.MatVecSpike(inputCodes, inBits)
	if p.remap == nil {
		out := make([]int, len(dp))
		for i := range dp {
			out[i] = dp[i] - dn[i]
		}
		return out
	}
	out := make([]int, p.logical)
	for j := range out {
		if p.class[j] == ColDegraded {
			out[j] = p.digitalColumn(j, inputCodes)
			continue
		}
		phys := p.remap[j]
		out[j] = dp[phys] - dn[phys]
	}
	return out
}

// Stats returns the combined event counts of both arrays.
func (p *SignedPair) Stats() Stats {
	s := p.Pos.Stats()
	s.Add(p.Neg.Stats())
	return s
}

// ResetStats clears both arrays' counters.
func (p *SignedPair) ResetStats() {
	p.Pos.ResetStats()
	p.Neg.ResetStats()
}

// ResolutionArray stores a signed weight matrix at full WeightBits (16-bit)
// resolution using fixed.Groups (4) signed pairs of 4-bit cells — the
// resolution-compensation scheme of Figure 14. Group g stores bit slice
// [4g+3 .. 4g] of every weight magnitude; group outputs are combined as
// Σ_g count_g << 4g.
type ResolutionArray struct {
	Rows, Cols int
	groups     [fixed.Groups]*SignedPair
	// scale maps weight code 65535 back to the analog magnitude wMax.
	scale float64
	// inj/master support drift refresh on fault-tolerant arrays: master is
	// a copy of the last programmed weights, so Refresh can rewrite the
	// (drifted) cells without the caller re-supplying them.
	inj    *fault.Injector
	master *tensor.Tensor
}

// NewResolutionArray programs a (rows×cols) float weight matrix W (tensor
// with rows*cols elements, row-major, rows = input dim, cols = output dim)
// into 4 signed pairs. variation/rng model programming noise (0/nil = ideal).
func NewResolutionArray(w *tensor.Tensor, rows, cols int, variation float64, rng *rand.Rand) *ResolutionArray {
	if w.Size() != rows*cols {
		panic(fmt.Sprintf("reram: weight tensor has %d elems for %dx%d array", w.Size(), rows, cols))
	}
	ra := &ResolutionArray{Rows: rows, Cols: cols, scale: w.AbsMax()}
	for g := range ra.groups {
		ra.groups[g] = NewNoisySignedPair(rows, cols, variation, rng)
	}
	ra.Program(w)
	return ra
}

// NewFaultyResolutionArray programs the weight matrix into four
// fault-tolerant signed pairs wired to the injector. baseID namespaces the
// array's eight crossbars in the injector's deterministic draw space, so
// callers must pick a distinct baseID per ResolutionArray. A nil injector
// yields an ideal array.
func NewFaultyResolutionArray(w *tensor.Tensor, rows, cols int, inj *fault.Injector, baseID uint64) *ResolutionArray {
	if inj == nil {
		return NewResolutionArray(w, rows, cols, 0, nil)
	}
	if w.Size() != rows*cols {
		panic(fmt.Sprintf("reram: weight tensor has %d elems for %dx%d array", w.Size(), rows, cols))
	}
	ra := &ResolutionArray{Rows: rows, Cols: cols, scale: w.AbsMax(), inj: inj}
	for g := range ra.groups {
		ra.groups[g] = NewFaultySignedPair(rows, cols, inj, baseID*fixed.Groups+uint64(g))
	}
	ra.Program(w)
	return ra
}

// Program (re)writes the full weight matrix, refreshing the scale.
func (ra *ResolutionArray) Program(w *tensor.Tensor) {
	if w.Size() != ra.Rows*ra.Cols {
		panic(fmt.Sprintf("reram: Program got %d elems for %dx%d array", w.Size(), ra.Rows, ra.Cols))
	}
	ra.scale = w.AbsMax()
	if ra.scale == 0 {
		ra.scale = 1
	}
	n := ra.Rows * ra.Cols
	var posCodes, negCodes [fixed.Groups][]uint8
	for g := 0; g < fixed.Groups; g++ {
		posCodes[g] = make([]uint8, n)
		negCodes[g] = make([]uint8, n)
	}
	maxCode := float64(math.MaxUint16)
	for i, v := range w.Data() {
		mag := uint16(math.Round(math.Abs(v) / ra.scale * maxCode))
		segs := fixed.Decompose16(mag)
		for g := 0; g < fixed.Groups; g++ {
			if v >= 0 {
				posCodes[g][i] = segs[g]
			} else {
				negCodes[g][i] = segs[g]
			}
		}
	}
	for g := 0; g < fixed.Groups; g++ {
		ra.groups[g].ProgramCodes(posCodes[g], negCodes[g])
	}
	if ra.inj != nil {
		ra.master = w.Clone()
	}
}

// Refresh reprograms the array from its master weights, restoring every
// drifted conductance — the periodic tolerance mechanism against log-time
// drift. No-op on arrays without fault state.
func (ra *ResolutionArray) Refresh() {
	if ra.master != nil {
		ra.Program(ra.master)
		ra.inj.NoteRefresh()
	}
}

// Tick advances the drift age of every crossbar by n compute cycles.
func (ra *ResolutionArray) Tick(n int64) {
	for _, g := range ra.groups {
		g.Tick(n)
	}
}

// ColumnStates returns, per logical column, the worst fault classification
// across the four resolution groups (a column is only as healthy as its most
// degraded bit slice).
func (ra *ResolutionArray) ColumnStates() []ColumnState {
	out := make([]ColumnState, ra.Cols)
	for _, g := range ra.groups {
		for j := range out {
			if s := g.State(j); s > out[j] {
				out[j] = s
			}
		}
	}
	return out
}

// Scale returns the analog magnitude corresponding to the all-ones code.
func (ra *ResolutionArray) Scale() float64 { return ra.scale }

// MatVecCodes computes the signed integer result Σ_i code_i·wcode_ij for
// every column j, where wcode is the signed 16-bit weight code. Exact for
// ideal devices: the four group counts are shift-added per Figure 14(a).
func (ra *ResolutionArray) MatVecCodes(inputCodes []uint64, inBits int) []int64 {
	out := make([]int64, ra.Cols)
	for g := 0; g < fixed.Groups; g++ {
		counts := ra.groups[g].MatVecSpike(inputCodes, inBits)
		shift := uint(fixed.CellBits * g)
		for j, c := range counts {
			out[j] += int64(c) << shift
		}
	}
	return out
}

// MatVecFloat runs the full analog pipeline on a float input vector: inputs
// are quantized to inBits-bit codes (signed inputs are handled by two passes,
// one for the positive part and one for the negative part — the same
// mechanism the backward phase uses for error vectors δ), driven through the
// arrays, and rescaled to floats.
func (ra *ResolutionArray) MatVecFloat(x *tensor.Tensor, inBits int) *tensor.Tensor {
	if x.Size() != ra.Rows {
		panic(fmt.Sprintf("reram: MatVecFloat input has %d elems for %d rows", x.Size(), ra.Rows))
	}
	xScale := x.AbsMax()
	out := tensor.New(ra.Cols)
	if xScale == 0 {
		return out
	}
	maxIn := float64(uint64(1)<<uint(inBits) - 1)

	posCodes := make([]uint64, ra.Rows)
	negCodes := make([]uint64, ra.Rows)
	hasNeg := false
	for i, v := range x.Data() {
		code := uint64(math.Round(math.Abs(v) / xScale * maxIn))
		if v >= 0 {
			posCodes[i] = code
		} else {
			negCodes[i] = code
			hasNeg = true
		}
	}
	acc := ra.MatVecCodes(posCodes, inBits)
	if hasNeg {
		negAcc := ra.MatVecCodes(negCodes, inBits)
		for j := range acc {
			acc[j] -= negAcc[j]
		}
	}
	// Rescale: value = count · (xScale/maxIn) · (wScale/65535).
	k := xScale / maxIn * ra.scale / float64(math.MaxUint16)
	for j, c := range acc {
		out.Data()[j] = float64(c) * k
	}
	return out
}

// Stats returns combined event counts across all groups and signs.
func (ra *ResolutionArray) Stats() Stats {
	var s Stats
	for _, g := range ra.groups {
		s.Add(g.Stats())
	}
	return s
}

// ResetStats clears all counters.
func (ra *ResolutionArray) ResetStats() {
	for _, g := range ra.groups {
		g.ResetStats()
	}
}
