package reram

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"pipelayer/internal/fault"
	"pipelayer/internal/parallel"
	"pipelayer/internal/tensor"
)

func randWeights(n int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	w := tensor.New(n)
	for i := range w.Data() {
		w.Data()[i] = rng.NormFloat64()
	}
	return w
}

// TestFaultyPairZeroDensityIdentical: a faulty pair under a zero-density
// injector computes bit-identically to a plain pair — the regression gate
// for the whole fault layer.
func TestFaultyPairZeroDensityIdentical(t *testing.T) {
	const rows, cols, bits = 19, 7, 4
	rng := rand.New(rand.NewSource(2))
	pos := make([]uint8, rows*cols)
	neg := make([]uint8, rows*cols)
	in := make([]uint64, rows)
	for i := range pos {
		pos[i], neg[i] = uint8(rng.Intn(16)), uint8(rng.Intn(16))
	}
	for i := range in {
		in[i] = uint64(rng.Intn(16))
	}

	plain := NewSignedPair(rows, cols)
	plain.ProgramCodes(pos, neg)

	inj := fault.MustNew(fault.Config{Seed: 1, Spares: 3, Degrade: true})
	faulty := NewFaultySignedPair(rows, cols, inj, 5)
	faulty.ProgramCodes(pos, neg)

	want := plain.MatVecSpike(in, bits)
	got := faulty.MatVecSpike(in, bits)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("col %d: faulty=%d plain=%d", j, got[j], want[j])
		}
	}
	if plain.Stats() != faulty.Stats() {
		t.Errorf("stats diverge: plain=%+v faulty=%+v", plain.Stats(), faulty.Stats())
	}
	if c := inj.Counters(); c != (fault.Counters{}) {
		t.Errorf("zero-density injector counted events: %+v", c)
	}
}

// TestRemapRestoresExactResult: with enough spares, stuck-at faults are fully
// repaired — the remapped array computes the exact ideal result.
func TestRemapRestoresExactResult(t *testing.T) {
	const rows, cols, bits = 8, 6, 4
	w := randWeights(rows*cols, 3)
	ideal := NewResolutionArray(w, rows, cols, 0, nil)

	inj := fault.MustNew(fault.Config{Seed: 7, StuckOff: 0.01, StuckOn: 0.005, Spares: cols, Degrade: true})
	faulty := NewFaultyResolutionArray(w, rows, cols, inj, 1)
	c := inj.Counters()
	if c.Injected == 0 {
		t.Fatal("no cells injected at density 0.03; the stuck map is not wired in")
	}
	if c.Remapped == 0 {
		t.Fatal("no columns remapped despite stuck cells")
	}
	if c.Degraded != 0 || c.Corrupted != 0 {
		t.Fatalf("spares should have covered every faulty column: %+v", c)
	}

	in := make([]uint64, rows)
	rng := rand.New(rand.NewSource(4))
	for i := range in {
		in[i] = uint64(rng.Intn(16))
	}
	want := ideal.MatVecCodes(in, bits)
	got := faulty.MatVecCodes(in, bits)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("col %d: remapped=%d ideal=%d", j, got[j], want[j])
		}
	}
}

// TestDegradeFallbackExact: with zero spares and degrade enabled, faulty
// columns fall back to digital emulation and still produce the exact ideal
// result.
func TestDegradeFallbackExact(t *testing.T) {
	const rows, cols, bits = 16, 6, 4
	w := randWeights(rows*cols, 5)
	ideal := NewResolutionArray(w, rows, cols, 0, nil)

	inj := fault.MustNew(fault.Config{Seed: 7, StuckOff: 0.03, StuckOn: 0.02, Spares: 0, Degrade: true})
	faulty := NewFaultyResolutionArray(w, rows, cols, inj, 1)
	c := inj.Counters()
	if c.Degraded == 0 {
		t.Fatal("no columns degraded despite zero spares and stuck cells")
	}
	if c.Remapped != 0 || c.Corrupted != 0 {
		t.Fatalf("unexpected repair path taken: %+v", c)
	}

	in := make([]uint64, rows)
	rng := rand.New(rand.NewSource(6))
	for i := range in {
		in[i] = uint64(rng.Intn(16))
	}
	want := ideal.MatVecCodes(in, bits)
	got := faulty.MatVecCodes(in, bits)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("col %d: degraded=%d ideal=%d", j, got[j], want[j])
		}
	}
}

// TestCorruptColumnsDiverge: no spares, no degrade — stuck cells corrupt the
// output, which is exactly the failure mode the tolerance layer exists to
// prevent.
func TestCorruptColumnsDiverge(t *testing.T) {
	const rows, cols, bits = 16, 6, 4
	w := randWeights(rows*cols, 5)
	ideal := NewResolutionArray(w, rows, cols, 0, nil)

	inj := fault.MustNew(fault.Config{Seed: 7, StuckOff: 0.03, StuckOn: 0.02})
	faulty := NewFaultyResolutionArray(w, rows, cols, inj, 1)
	if c := inj.Counters(); c.Corrupted == 0 {
		t.Fatalf("no columns marked corrupt: %+v", c)
	}

	in := make([]uint64, rows)
	for i := range in {
		in[i] = 15
	}
	want := ideal.MatVecCodes(in, bits)
	got := faulty.MatVecCodes(in, bits)
	diverged := false
	for j := range want {
		if got[j] != want[j] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("corrupt columns computed the ideal result; faults are not reaching the readout")
	}
}

// TestFaultyPairDeterministicAcrossWorkers: fault maps, remap decisions and
// readout are bit-identical across worker-pool sizes — the PR-2 determinism
// contract extended to the fault layer.
func TestFaultyPairDeterministicAcrossWorkers(t *testing.T) {
	const rows, cols, bits = 24, 9, 4
	w := randWeights(rows*cols, 8)
	in := make([]uint64, rows)
	rng := rand.New(rand.NewSource(9))
	for i := range in {
		in[i] = uint64(rng.Intn(16))
	}

	run := func(workers int) ([]int64, []ColumnState, fault.Counters) {
		old := parallel.Workers()
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		inj := fault.MustNew(fault.Config{Seed: 13, StuckOff: 0.03, StuckOn: 0.01, Spares: 2, Degrade: true})
		ra := NewFaultyResolutionArray(w, rows, cols, inj, 3)
		return ra.MatVecCodes(in, bits), ra.ColumnStates(), inj.Counters()
	}

	refOut, refStates, refCounts := run(1)
	for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		out, states, counts := run(workers)
		for j := range refOut {
			if out[j] != refOut[j] {
				t.Fatalf("workers=%d col %d: %d != %d", workers, j, out[j], refOut[j])
			}
			if states[j] != refStates[j] {
				t.Fatalf("workers=%d col %d: state %d != %d", workers, j, states[j], refStates[j])
			}
		}
		if counts != refCounts {
			t.Fatalf("workers=%d counters %+v != %+v", workers, counts, refCounts)
		}
	}
}

// TestProgramVerifyHardCap: the pulse budget is clamped to MaxProgramPulses
// and a hopeless cell surfaces as ErrWriteFailed instead of spinning forever.
func TestProgramVerifyHardCap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var c Cell
	res := c.ProgramVerify(15, 1e-12, 1<<30, 5, rng)
	if res.Converged {
		t.Skip("absurd-noise program converged; seed produced a miracle draw")
	}
	if res.Pulses != MaxProgramPulses {
		t.Errorf("pulses = %d, want the hard cap %d", res.Pulses, MaxProgramPulses)
	}
	var c2 Cell
	_, err := c2.ProgramVerifyChecked(15, 1e-12, 1<<30, 5, rng)
	if !errors.Is(err, ErrWriteFailed) {
		t.Errorf("ProgramVerifyChecked error = %v, want ErrWriteFailed", err)
	}
	var c3 Cell
	if _, err := c3.ProgramVerifyChecked(7, 0.5, 100, 0, nil); err != nil {
		t.Errorf("clean program errored: %v", err)
	}
}

// TestTransientWriteFailureRetryAndGiveUp: transient failures burn retries
// and pulses; cells that never succeed are frozen and counted.
func TestTransientWriteFailureRetryAndGiveUp(t *testing.T) {
	inj := fault.MustNew(fault.Config{Seed: 21, WriteFail: 0.9, Retries: 2})
	x := NewCrossbar(8, 8)
	x.AttachFaults(inj, 1)
	codes := make([]uint8, 64)
	for i := range codes {
		codes[i] = uint8(i % 16)
	}
	x.ProgramCodes(codes)
	c := inj.Counters()
	if c.Retried == 0 {
		t.Error("p=0.9 transient failures never retried")
	}
	if c.WriteFailed == 0 {
		t.Error("p=0.9 with 2 retries never gave a cell up")
	}
	if x.Stats().CellWrites <= 64 {
		t.Errorf("retries cost no extra pulses: writes=%d", x.Stats().CellWrites)
	}
}

// TestEnduranceWearOut: cells exceeding their write budget freeze at their
// last conductance and stop following new programs.
func TestEnduranceWearOut(t *testing.T) {
	inj := fault.MustNew(fault.Config{Seed: 1, Endurance: 3})
	x := NewCrossbar(4, 4)
	x.AttachFaults(inj, 1)
	codes := make([]uint8, 16)
	for round := 0; round < 5; round++ {
		for i := range codes {
			codes[i] = uint8((round + i) % 16)
		}
		x.ProgramCodes(codes)
	}
	c := inj.Counters()
	if c.WornOut != 16 {
		t.Fatalf("worn-out cells = %d, want all 16 after 5 rounds at budget 3", c.WornOut)
	}
	// Frozen cells hold the conductance of their last successful write
	// (round 2, codes (2+i)%16), not the latest program (round 4).
	out := x.MatVecSpike([]uint64{1, 0, 0, 0}, 4)
	for j := 0; j < 4; j++ {
		if want := (2 + j) % 16; out[j] != want {
			t.Errorf("col %d reads %d, want frozen code %d", j, out[j], want)
		}
	}
}

// TestDriftDecayAndRefresh: readout decays with ticks and is restored by a
// reprogram.
func TestDriftDecayAndRefresh(t *testing.T) {
	const rows, cols, bits = 8, 3, 4
	w := randWeights(rows*cols, 12)
	inj := fault.MustNew(fault.Config{Seed: 1, Drift: 0.3, Spares: 0, Degrade: false})
	ra := NewFaultyResolutionArray(w, rows, cols, inj, 2)
	in := make([]uint64, rows)
	for i := range in {
		in[i] = 15
	}
	fresh := ra.MatVecCodes(in, bits)
	ra.Tick(1000)
	drifted := ra.MatVecCodes(in, bits)
	decayed := false
	for j := range fresh {
		if abs64(drifted[j]) > abs64(fresh[j]) {
			t.Fatalf("col %d: drift grew the count %d → %d", j, fresh[j], drifted[j])
		}
		if drifted[j] != fresh[j] {
			decayed = true
		}
	}
	if !decayed {
		t.Fatal("1000 cycles at ν=0.3 changed nothing")
	}
	ra.Refresh()
	if inj.Counters().Refreshes != 1 {
		t.Errorf("refreshes = %d, want 1", inj.Counters().Refreshes)
	}
	restored := ra.MatVecCodes(in, bits)
	for j := range fresh {
		if restored[j] != fresh[j] {
			t.Fatalf("col %d after refresh: %d != fresh %d", j, restored[j], fresh[j])
		}
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
