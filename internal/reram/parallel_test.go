package reram

import (
	"math/rand"
	"runtime"
	"testing"

	"pipelayer/internal/parallel"
)

// TestParallelDeterminismSpikeReadout asserts the per-column spike
// integration of MatVecSpike returns identical counts — and accumulates
// identical energy stats — across worker counts {1, 2, 7, GOMAXPROCS}.
func TestParallelDeterminismSpikeReadout(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const rows, cols, bits = 37, 23, 8
	codes := make([]uint8, rows*cols)
	for i := range codes {
		codes[i] = uint8(rng.Intn(16))
	}
	inputs := make([]uint64, rows)
	for i := range inputs {
		inputs[i] = uint64(rng.Intn(1 << bits))
	}

	run := func(workers int) ([]int, Stats) {
		old := parallel.Workers()
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		xb := NewCrossbar(rows, cols)
		xb.ProgramCodes(codes)
		xb.ResetStats()
		out := xb.MatVecSpike(inputs, bits)
		return out, xb.Stats()
	}

	refOut, refStats := run(1)
	for _, w := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		out, stats := run(w)
		if len(out) != len(refOut) {
			t.Fatalf("%d workers: %d columns, want %d", w, len(out), len(refOut))
		}
		for j := range out {
			if out[j] != refOut[j] {
				t.Errorf("%d workers: column %d count %d, serial %d", w, j, out[j], refOut[j])
			}
		}
		if stats != refStats {
			t.Errorf("%d workers: stats %+v, serial %+v", w, stats, refStats)
		}
	}
}
