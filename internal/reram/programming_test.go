package reram

import (
	"math/rand"
	"testing"
)

func TestProgramVerifyIdealOnePulse(t *testing.T) {
	var c Cell
	res := c.ProgramVerify(9, 0.1, 10, 0, nil)
	if res.Pulses != 1 || !res.Converged {
		t.Fatalf("ideal device should converge in one pulse: %+v", res)
	}
	if c.Code() != 9 || c.Conductance() != 9 {
		t.Fatalf("cell state: code=%d g=%g", c.Code(), c.Conductance())
	}
}

func TestProgramVerifyNoisyConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var c Cell
	res := c.ProgramVerify(15, 0.25, 100, 0.05, rng)
	if !res.Converged {
		t.Fatalf("noisy programming did not converge: %+v", res)
	}
	if res.FinalError > 0.25 {
		t.Fatalf("final error %g above tolerance", res.FinalError)
	}
}

func TestProgramVerifyMorePulsesWithNoise(t *testing.T) {
	// Mean pulses must grow with noise and shrink with looser tolerance.
	tight := ExpectedPulses(0.05, 200, 0.08, 30, 2)
	loose := ExpectedPulses(0.5, 200, 0.08, 30, 2)
	ideal := ExpectedPulses(0.05, 200, 0, 1, 2)
	if ideal != 1 {
		t.Fatalf("ideal expected pulses = %g, want 1", ideal)
	}
	if tight <= loose {
		t.Fatalf("tight tolerance (%g pulses) should need more than loose (%g)", tight, loose)
	}
	if tight <= 1 {
		t.Fatalf("noisy tight programming should need > 1 pulse, got %g", tight)
	}
}

func TestProgramVerifyBudgetExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var c Cell
	// Impossible tolerance with heavy noise and tiny budget.
	res := c.ProgramVerify(15, 1e-9, 3, 0.3, rng)
	if res.Converged {
		t.Fatal("should not converge under these conditions")
	}
	if res.Pulses != 3 {
		t.Fatalf("pulses = %d, want budget 3", res.Pulses)
	}
}

func TestProgramVerifyCodesAccounting(t *testing.T) {
	x := NewCrossbar(2, 2)
	pulses, failures := x.ProgramVerifyCodes([]uint8{1, 5, 9, 15}, 0.1, 10, 0, nil)
	if pulses != 4 || failures != 0 {
		t.Fatalf("ideal array: pulses=%d failures=%d", pulses, failures)
	}
	if x.Stats().CellWrites != 4 {
		t.Fatalf("stats writes = %d", x.Stats().CellWrites)
	}
	// Programmed values must be exact for ideal devices.
	out := x.MatVecSpike([]uint64{1, 1}, 1)
	if out[0] != 1+9 || out[1] != 5+15 {
		t.Fatalf("post-program readout = %v", out)
	}
}

func TestProgramVerifyValidation(t *testing.T) {
	var c Cell
	for _, fn := range []func(){
		func() { c.ProgramVerify(16, 0.1, 10, 0, nil) },
		func() { c.ProgramVerify(3, 0, 10, 0, nil) },
		func() { c.ProgramVerify(3, 0.1, 0, 0, nil) },
		func() { c.ProgramVerify(3, 0.1, 10, 0.1, nil) }, // noise without rng
		func() { ExpectedPulses(0.1, 10, 0, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
