package reram

import (
	"fmt"
	"math/rand"

	"pipelayer/internal/parallel"
	"pipelayer/internal/spike"
)

// Stats accumulates the device-level event counts the energy model consumes.
type Stats struct {
	// InputSpikes is the number of spikes driven into word lines (reads).
	InputSpikes int
	// OutputSpikes is the number of spikes fired by Integration-and-Fire units.
	OutputSpikes int
	// CellWrites is the number of cell programming operations.
	CellWrites int
}

// Add accumulates another Stats into s.
func (s *Stats) Add(o Stats) {
	s.InputSpikes += o.InputSpikes
	s.OutputSpikes += o.OutputSpikes
	s.CellWrites += o.CellWrites
}

// Crossbar is a Rows×Cols ReRAM array. Word lines (rows) carry the
// spike-coded input vector; each bit line (column) sums the currents of its
// cells, so one analog pass computes inputᵀ·G for all columns — the paper's
// in-situ matrix–vector multiplication.
type Crossbar struct {
	Rows, Cols int
	cells      []Cell // row-major
	variation  float64
	rng        *rand.Rand
	stats      Stats
	// faults is the optional fault-injection state (see faults.go); nil
	// means the ideal device model with zero overhead on the read path.
	faults *xbarFaults
}

// NewCrossbar allocates an ideal crossbar; use NewNoisyCrossbar for device
// variation.
func NewCrossbar(rows, cols int) *Crossbar {
	return NewNoisyCrossbar(rows, cols, 0, nil)
}

// NewNoisyCrossbar allocates a crossbar whose cells are programmed with the
// given relative conductance variation drawn from rng.
func NewNoisyCrossbar(rows, cols int, variation float64, rng *rand.Rand) *Crossbar {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("reram: invalid crossbar size %dx%d", rows, cols))
	}
	return &Crossbar{
		Rows: rows, Cols: cols,
		cells:     make([]Cell, rows*cols),
		variation: variation,
		rng:       rng,
	}
}

// ProgramCodes writes a full row-major code matrix into the array. Each cell
// write is counted for the energy model (the paper's spike driver doubles as
// the write driver, Section 4.2.1).
func (x *Crossbar) ProgramCodes(codes []uint8) {
	if len(codes) != x.Rows*x.Cols {
		panic(fmt.Sprintf("reram: ProgramCodes got %d codes for %dx%d array", len(codes), x.Rows, x.Cols))
	}
	if x.faults == nil {
		for i, c := range codes {
			x.cells[i].Program(c, x.variation, x.rng)
		}
		x.stats.CellWrites += len(codes)
		return
	}
	for i, c := range codes {
		x.programCell(i, c)
	}
	// A full-array reprogram restores every drifted conductance.
	x.faults.resetDrift()
}

// ProgramCell writes a single cell (through the fault model when attached).
func (x *Crossbar) ProgramCell(row, col int, code uint8) {
	x.programCell(row*x.Cols+col, code)
}

// Code returns the programmed code of one cell.
func (x *Crossbar) Code(row, col int) uint8 { return x.cells[row*x.Cols+col].Code() }

// MatVecSpike performs the spike-domain matrix–vector multiplication: the
// input codes (one per row, inBits wide) are encoded as weighted spike
// trains, driven through the word lines, and each column's current is
// integrated and fired into a digital count. Returns one count per column.
func (x *Crossbar) MatVecSpike(inputCodes []uint64, inBits int) []int {
	if len(inputCodes) != x.Rows {
		panic(fmt.Sprintf("reram: MatVecSpike got %d inputs for %d rows", len(inputCodes), x.Rows))
	}
	trains := spike.EncodeVector(inputCodes, inBits)
	out := make([]int, x.Cols)
	inSpikes := make([]int, x.Cols)
	// Bit lines integrate independently — exactly the hardware's column
	// parallelism — so columns chunk across the worker pool, each chunk with
	// its own conductance buffer and IF units. The stats counters accumulate
	// serially afterwards so they match the serial path exactly.
	f := x.faults
	parallel.Default().For(x.Cols, parallel.Grain(x.Rows*inBits), func(lo, hi int) {
		col := make([]float64, x.Rows)
		for j := lo; j < hi; j++ {
			if f == nil {
				for i := 0; i < x.Rows; i++ {
					col[i] = x.cells[i*x.Cols+j].Conductance()
				}
			} else {
				for i := 0; i < x.Rows; i++ {
					col[i] = f.conductance(x, i*x.Cols+j)
				}
			}
			f := spike.NewIntegrateFire(1)
			out[j], inSpikes[j] = spike.DotProduct(trains, col, f)
		}
	})
	for j, count := range out {
		// Input spikes are physically shared across all bit lines of the
		// array; charge them once (for j == 0) rather than per column.
		if j == 0 {
			x.stats.InputSpikes += inSpikes[0]
		}
		x.stats.OutputSpikes += count
	}
	return out
}

// Stats returns the accumulated event counts.
func (x *Crossbar) Stats() Stats { return x.stats }

// ResetStats clears the event counters.
func (x *Crossbar) ResetStats() { x.stats = Stats{} }
