package reram

import (
	"fmt"
	"math"
)

// ActivationUnit models the activation component of Figure 9(c): a
// subtractor combining the positive-array result D_P and negative-array
// result D_N, a configurable look-up table realizing the algorithm's
// activation function, and a register that keeps the running maximum of a
// sequence to realize max pooling.
type ActivationUnit struct {
	lut    *LUT
	maxReg float64
	maxSet bool
}

// NewActivationUnit creates an activation unit with the given LUT.
// A nil LUT bypasses the function (used when subarrays are read as plain
// memory, and during the weight-update read path of Section 4.4.2).
func NewActivationUnit(lut *LUT) *ActivationUnit { return &ActivationUnit{lut: lut} }

// Clone returns an activation unit sharing the (read-only) LUT with a
// cleared max register — the per-worker peripheral copy that lets window
// chunks stream through the same configured function concurrently.
func (a *ActivationUnit) Clone() *ActivationUnit { return &ActivationUnit{lut: a.lut} }

// Subtract is the subtractor stage: D_P − D_N.
func (a *ActivationUnit) Subtract(dp, dn float64) float64 { return dp - dn }

// Activate applies the configured LUT (or identity when bypassed).
func (a *ActivationUnit) Activate(x float64) float64 {
	if a.lut == nil {
		return x
	}
	return a.lut.Lookup(x)
}

// Process runs the full path: subtract, activate, and update the max
// register. It returns the activated value.
func (a *ActivationUnit) Process(dp, dn float64) float64 {
	v := a.Activate(a.Subtract(dp, dn))
	if !a.maxSet || v > a.maxReg {
		a.maxReg = v
		a.maxSet = true
	}
	return v
}

// MaxAndReset returns the running maximum (for max pooling) and clears the
// register for the next window.
func (a *ActivationUnit) MaxAndReset() float64 {
	v := a.maxReg
	a.maxReg = 0
	a.maxSet = false
	return v
}

// LUT is a sampled look-up table over a bounded input domain, the hardware
// realization of the activation function. Inputs outside [Lo, Hi] clamp to
// the boundary entries.
type LUT struct {
	Lo, Hi    float64
	entries   []float64
	exactReLU bool
}

// NewLUT samples f at n uniformly spaced points on [lo, hi].
func NewLUT(f func(float64) float64, lo, hi float64, n int) *LUT {
	if n < 2 {
		panic(fmt.Sprintf("reram: LUT needs at least 2 entries, got %d", n))
	}
	if hi <= lo {
		panic("reram: LUT requires hi > lo")
	}
	l := &LUT{Lo: lo, Hi: hi, entries: make([]float64, n)}
	for i := range l.entries {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		l.entries[i] = f(x)
	}
	return l
}

// Lookup returns the nearest-entry approximation of the sampled function.
// The rectifier (ReLULUT) is exact: hardware realizes it as a sign check.
func (l *LUT) Lookup(x float64) float64 {
	if v, ok := l.lookupExact(x); ok {
		return v
	}
	if x <= l.Lo {
		return l.entries[0]
	}
	if x >= l.Hi {
		return l.entries[len(l.entries)-1]
	}
	i := int(math.Round((x - l.Lo) / (l.Hi - l.Lo) * float64(len(l.entries)-1)))
	return l.entries[i]
}

// Size returns the number of LUT entries.
func (l *LUT) Size() int { return len(l.entries) }

// ReLULUT builds the rectifier LUT used by default in PipeLayer. Because
// ReLU is piecewise linear, the LUT realizes it exactly on its grid; the
// implementation special-cases it to be exact everywhere.
func ReLULUT() *LUT {
	// ReLU is exact: represent it with a two-entry marker LUT and handle it
	// in Lookup via the exactReLU flag.
	l := NewLUT(func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	}, -1, 1, 2)
	l.exactReLU = true
	return l
}

// exactReLU marks the hardware rectifier, which is exact (a sign check)
// rather than table-sampled.
func (l *LUT) lookupExact(x float64) (float64, bool) {
	if l.exactReLU {
		if x > 0 {
			return x, true
		}
		return 0, true
	}
	return 0, false
}

// SigmoidLUT builds a sampled sigmoid over [-8, 8] with n entries.
func SigmoidLUT(n int) *LUT {
	return NewLUT(func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }, -8, 8, n)
}
