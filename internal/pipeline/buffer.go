// Package pipeline is the cycle-level simulator of PipeLayer's intra- and
// inter-layer pipelined execution (paper Sections 3.1 and 3.3): it plays out
// the training schedule of Figure 6 cycle by cycle, models the circular
// inter-layer buffers of Figure 8 with liveness checking, and validates the
// closed-form cycle counts of Table 2 (implemented in internal/mapping).
package pipeline

import "fmt"

// entry is one slot of a circular buffer.
type entry struct {
	valid bool
	image int  // which image's data occupies the slot
	live  bool // not yet consumed by its final reader
}

// CircularBuffer models one inter-layer memory-subarray buffer (Figure 8):
// a fixed ring of entries with a write pointer that wraps. Writing over an
// entry that is still live (its reader has not consumed it) is a scheduling
// bug; the buffer panics, which is how the simulator enforces the
// 2(L−l)+1 depth rule of Section 3.3.
type CircularBuffer struct {
	name    string
	entries []entry
	wp      int
	// MaxOccupancy tracks the peak number of simultaneously-live entries.
	MaxOccupancy int
}

// NewCircularBuffer creates a buffer with the given depth.
func NewCircularBuffer(name string, depth int) *CircularBuffer {
	if depth <= 0 {
		panic(fmt.Sprintf("pipeline: buffer %q depth must be positive", name))
	}
	return &CircularBuffer{name: name, entries: make([]entry, depth)}
}

// Depth returns the number of slots.
func (b *CircularBuffer) Depth() int { return len(b.entries) }

// Write stores image's data in the next slot, advancing the pointer. It
// panics if the slot it would overwrite is still live.
func (b *CircularBuffer) Write(image int) {
	e := &b.entries[b.wp]
	if e.valid && e.live {
		panic(fmt.Sprintf("pipeline: buffer %q overwrites live data of image %d with image %d (depth %d too small)",
			b.name, e.image, image, len(b.entries)))
	}
	*e = entry{valid: true, image: image, live: true}
	b.wp = (b.wp + 1) % len(b.entries)
	if occ := b.Occupancy(); occ > b.MaxOccupancy {
		b.MaxOccupancy = occ
	}
}

// Occupancy returns the number of currently-live entries.
func (b *CircularBuffer) Occupancy() int {
	occ := 0
	for _, x := range b.entries {
		if x.valid && x.live {
			occ++
		}
	}
	return occ
}

// Consume marks image's entry as dead (its final reader has used it). It
// panics if the image's data is not present — reading data that was never
// written or already overwritten.
func (b *CircularBuffer) Consume(image int) {
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid && e.live && e.image == image {
			e.live = false
			return
		}
	}
	panic(fmt.Sprintf("pipeline: buffer %q has no live entry for image %d", b.name, image))
}

// Peek reports whether image's data is currently live in the buffer.
func (b *CircularBuffer) Peek(image int) bool {
	for _, e := range b.entries {
		if e.valid && e.live && e.image == image {
			return true
		}
	}
	return false
}
