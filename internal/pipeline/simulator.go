package pipeline

import (
	"fmt"

	"pipelayer/internal/mapping"
	"pipelayer/internal/telemetry"
)

// Config describes one simulated run.
type Config struct {
	// L is the number of weighted layers.
	L int
	// B is the batch size (training only; must divide N).
	B int
	// N is the total number of input images.
	N int
	// Pipelined selects the inter-layer pipelined schedule (Figure 6) or the
	// sequential baseline (Figure 7a).
	Pipelined bool
	// Training selects the full forward+backward+update flow; false
	// simulates testing (forward only).
	Training bool
}

// Result summarizes a simulated run.
type Result struct {
	// Cycles is the total number of logical cycles.
	Cycles int
	// BufferDepth maps buffer names to their configured depth.
	BufferDepth map[string]int
	// PeakOccupancy maps buffer names to the peak number of live entries.
	PeakOccupancy map[string]int
	// MeanOccupancy maps buffer names to the mean number of live entries,
	// sampled at the end of every cycle of the run.
	MeanOccupancy map[string]float64
	// MaxUnitUsePerCycle is the maximum number of times any single hardware
	// unit was used in one cycle (must be 1 for a legal schedule).
	MaxUnitUsePerCycle int
	// Units is the number of distinct hardware units the schedule touched
	// (forward arrays A_l, output-error unit, error arrays A_lE, derivative
	// arrays A_lD, and the update unit).
	Units int
	// UnitBusyCycles is the total number of unit·cycle slots in which some
	// unit performed an operation — the schedule's busy work.
	UnitBusyCycles int
}

// Utilization returns busy-unit-cycles / total-unit-cycles — the fraction
// of the schedule's unit·cycle grid that did useful work (the per-unit
// utilization view behind the paper's Figure 6 discussion). Zero when the
// run is empty.
func (r Result) Utilization() float64 {
	total := r.Units * r.Cycles
	if total == 0 {
		return 0
	}
	return float64(r.UnitBusyCycles) / float64(total)
}

// Record publishes the run's statistics into a telemetry registry:
// pipeline_cycles, pipeline_units, pipeline_unit_utilization, and per-buffer
// depth / peak / mean occupancy gauges labeled by buffer name.
func (r Result) Record(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("pipeline_cycles").Set(float64(r.Cycles))
	reg.Gauge("pipeline_units").Set(float64(r.Units))
	reg.Gauge("pipeline_unit_busy_cycles").Set(float64(r.UnitBusyCycles))
	reg.Gauge("pipeline_unit_utilization").Set(r.Utilization())
	for name, depth := range r.BufferDepth {
		reg.Gauge(telemetry.Name("pipeline_buffer_depth", map[string]string{"buffer": name})).Set(float64(depth))
	}
	for name, peak := range r.PeakOccupancy {
		reg.Gauge(telemetry.Name("pipeline_buffer_peak_occupancy", map[string]string{"buffer": name})).Set(float64(peak))
	}
	for name, mean := range r.MeanOccupancy {
		reg.Gauge(telemetry.Name("pipeline_buffer_mean_occupancy", map[string]string{"buffer": name})).Set(mean)
	}
}

// event is one scheduled hardware operation.
type event struct {
	cycle int
	unit  string // hardware unit, used ≤ 1×/cycle
	// consume lists (buffer, image) pairs read-and-retired this cycle.
	consume []bufRef
	// write lists (buffer, image) pairs written this cycle.
	write []bufRef
}

type bufRef struct {
	buf   string
	image int
}

// Simulate plays the schedule cycle by cycle through liveness-checked
// circular buffers, panicking on any overwrite of live data or double-booked
// unit, and returns the cycle count and buffer statistics.
//
// The returned cycle counts are validated against the Table 2 closed forms
// by the package tests (see mapping.NonPipelinedTrainingCycles etc.).
func Simulate(cfg Config) Result {
	if cfg.L <= 0 || cfg.N <= 0 {
		panic("pipeline: L and N must be positive")
	}
	if cfg.Training {
		if cfg.B <= 0 || cfg.N%cfg.B != 0 {
			panic(fmt.Sprintf("pipeline: batch %d must divide N %d", cfg.B, cfg.N))
		}
	}

	events := buildSchedule(cfg)

	// Build buffers with the Section 3.3 depths.
	buffers := map[string]*CircularBuffer{}
	mkbuf := func(name string, depth int) {
		buffers[name] = NewCircularBuffer(name, depth)
	}
	L := cfg.L
	if cfg.Training {
		for l := 1; l < L; l++ {
			depth := mapping.BufferDepth(L, l)
			if !cfg.Pipelined {
				depth = 1 // sequential processing reuses a single entry
			}
			mkbuf(fmt.Sprintf("d%d", l), depth)
		}
		mkbuf(fmt.Sprintf("d%d", L), 2) // duplicated: same-cycle read+write
		for l := 1; l <= L; l++ {
			mkbuf(fmt.Sprintf("delta%d", l), 2)
		}
	} else {
		for l := 1; l < L; l++ {
			depth := 2
			if !cfg.Pipelined {
				depth = 1
			}
			mkbuf(fmt.Sprintf("d%d", l), depth)
		}
	}

	// Bucket events by cycle.
	byCycle := map[int][]event{}
	last := 0
	for _, e := range events {
		byCycle[e.cycle] = append(byCycle[e.cycle], e)
		if e.cycle > last {
			last = e.cycle
		}
	}

	maxUnitUse := 0
	allUnits := map[string]struct{}{}
	busy := 0
	occSum := map[string]int{}
	for c := 1; c <= last; c++ {
		evs := byCycle[c]
		// Consumes happen before writes within a cycle: the reader drains
		// the slot the writer may immediately reuse (Section 3.3).
		units := map[string]int{}
		for _, e := range evs {
			units[e.unit]++
			allUnits[e.unit] = struct{}{}
			for _, r := range e.consume {
				buffers[r.buf].Consume(r.image)
			}
		}
		for _, e := range evs {
			for _, w := range e.write {
				buffers[w.buf].Write(w.image)
			}
		}
		busy += len(evs)
		for u, n := range units {
			if n > maxUnitUse {
				maxUnitUse = n
			}
			if n > 1 {
				panic(fmt.Sprintf("pipeline: unit %s double-booked at cycle %d (%d uses)", u, c, n))
			}
		}
		// End-of-cycle occupancy sample for the mean-occupancy gauges.
		for name, b := range buffers {
			occSum[name] += b.Occupancy()
		}
	}

	res := Result{
		Cycles:             last,
		BufferDepth:        map[string]int{},
		PeakOccupancy:      map[string]int{},
		MeanOccupancy:      map[string]float64{},
		MaxUnitUsePerCycle: maxUnitUse,
		Units:              len(allUnits),
		UnitBusyCycles:     busy,
	}
	for name, b := range buffers {
		res.BufferDepth[name] = b.Depth()
		res.PeakOccupancy[name] = b.MaxOccupancy
		if last > 0 {
			res.MeanOccupancy[name] = float64(occSum[name]) / float64(last)
		}
	}
	return res
}

// buildSchedule expands the Figure 6 (pipelined) or Figure 7a (sequential)
// schedule into per-image events.
//
// Per-image offsets within the training flow (entry cycle e, layers 1..L):
//
//	forward layer l:   e + l − 1        (writes d_l)
//	error δ_L:         e + L            (reads d_L, writes δ_L)
//	error δ_l:         e + 2L − l       (reads δ_{l+1}, writes δ_l), l < L
//	derivative ∂W_l:   e + 2L − l + 1   (reads d_{l−1} and δ_l)
//
// so an image occupies cycles e .. e+2L, i.e. 2L+1 cycles, matching
// Figure 3's T1..T7 for L = 3.
func buildSchedule(cfg Config) []event {
	var events []event
	L := cfg.L

	entryCycle := func(g int) int {
		if cfg.Training {
			if cfg.Pipelined {
				b, i := g/cfg.B, g%cfg.B
				return b*(2*L+cfg.B+1) + i + 1
			}
			return g*(2*L+1) + g/cfg.B + 1
		}
		if cfg.Pipelined {
			return g + 1
		}
		return g*L + 1
	}

	for g := 0; g < cfg.N; g++ {
		e := entryCycle(g)
		// Forward pass.
		for l := 1; l <= L; l++ {
			ev := event{cycle: e + l - 1, unit: fmt.Sprintf("A%d", l)}
			if l > 1 {
				// Reads d_{l-1}; in testing this is the final consumption,
				// in training the derivative unit consumes it later.
				if !cfg.Training {
					ev.consume = append(ev.consume, bufRef{fmt.Sprintf("d%d", l-1), g})
				}
			}
			if l < L || cfg.Training {
				ev.write = append(ev.write, bufRef{fmt.Sprintf("d%d", l), g})
			}
			events = append(events, ev)
		}
		if !cfg.Training {
			continue
		}
		// Error for the output layer: δ_L = f'(u_L) ∘ (y − t) — consumes d_L.
		events = append(events, event{
			cycle:   e + L,
			unit:    "ErrL",
			consume: []bufRef{{fmt.Sprintf("d%d", L), g}},
			write:   []bufRef{{fmt.Sprintf("delta%d", L), g}},
		})
		// Errors for inner layers: δ_l from δ_{l+1} via (W^{l+1})*.
		for l := L - 1; l >= 1; l-- {
			events = append(events, event{
				cycle: e + 2*L - l,
				unit:  fmt.Sprintf("A%dE", l+1),
				write: []bufRef{{fmt.Sprintf("delta%d", l), g}},
			})
		}
		// Partial derivatives: ∂W_l from d_{l−1} and δ_l, one cycle after
		// δ_l is available; this is the final consumer of both.
		for l := L; l >= 1; l-- {
			ev := event{
				cycle:   e + 2*L - l + 1,
				unit:    fmt.Sprintf("A%dD", l),
				consume: []bufRef{{fmt.Sprintf("delta%d", l), g}},
			}
			if l > 1 {
				ev.consume = append(ev.consume, bufRef{fmt.Sprintf("d%d", l-1), g})
			}
			events = append(events, ev)
		}
		// The weight-update cycle at the end of each batch.
		if (g+1)%cfg.B == 0 {
			events = append(events, event{cycle: e + 2*L + 1, unit: "Update"})
		}
	}
	return events
}
