package pipeline

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipelayer/internal/mapping"
	"pipelayer/internal/telemetry"
)

func TestSimulatePipelinedTrainingMatchesTable2(t *testing.T) {
	for _, c := range []struct{ L, B, N int }{
		{3, 4, 8}, {3, 64, 128}, {5, 8, 32}, {11, 16, 64}, {19, 32, 64}, {2, 1, 6},
	} {
		res := Simulate(Config{L: c.L, B: c.B, N: c.N, Pipelined: true, Training: true})
		want := mapping.PipelinedTrainingCycles(c.L, c.B, c.N)
		if res.Cycles != want {
			t.Errorf("L=%d B=%d N=%d: simulated %d cycles, formula %d", c.L, c.B, c.N, res.Cycles, want)
		}
	}
}

func TestSimulateNonPipelinedTrainingMatchesTable2(t *testing.T) {
	for _, c := range []struct{ L, B, N int }{
		{3, 4, 8}, {5, 8, 16}, {8, 2, 10}, {19, 4, 8},
	} {
		res := Simulate(Config{L: c.L, B: c.B, N: c.N, Pipelined: false, Training: true})
		want := mapping.NonPipelinedTrainingCycles(c.L, c.B, c.N)
		if res.Cycles != want {
			t.Errorf("L=%d B=%d N=%d: simulated %d cycles, formula %d", c.L, c.B, c.N, res.Cycles, want)
		}
	}
}

func TestSimulateTestingMatchesFormulas(t *testing.T) {
	for _, c := range []struct{ L, N int }{{3, 10}, {8, 100}, {19, 64}, {1, 5}} {
		p := Simulate(Config{L: c.L, N: c.N, Pipelined: true})
		if p.Cycles != mapping.PipelinedTestingCycles(c.L, c.N) {
			t.Errorf("pipelined testing L=%d N=%d: %d cycles", c.L, c.N, p.Cycles)
		}
		np := Simulate(Config{L: c.L, N: c.N, Pipelined: false})
		if np.Cycles != mapping.NonPipelinedTestingCycles(c.L, c.N) {
			t.Errorf("non-pipelined testing L=%d N=%d: %d cycles", c.L, c.N, np.Cycles)
		}
	}
}

// Property: for random configurations the event simulation always agrees
// with the closed forms and never double-books a unit.
func TestPropertySimulationMatchesFormulas(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		L := 1 + rng.Intn(12)
		B := 1 + rng.Intn(16)
		N := B * (1 + rng.Intn(6))
		pip := rng.Intn(2) == 0
		res := Simulate(Config{L: L, B: B, N: N, Pipelined: pip, Training: true})
		var want int
		if pip {
			want = mapping.PipelinedTrainingCycles(L, B, N)
		} else {
			want = mapping.NonPipelinedTrainingCycles(L, B, N)
		}
		return res.Cycles == want && res.MaxUnitUsePerCycle == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateBufferDepthsFollowRule(t *testing.T) {
	// B must exceed the largest buffer depth (2(L−1)+1 = 9) for the pipeline
	// to fill the deepest buffer completely.
	L, B, N := 5, 16, 32
	res := Simulate(Config{L: L, B: B, N: N, Pipelined: true, Training: true})
	for l := 1; l < L; l++ {
		name := fmt.Sprintf("d%d", l)
		want := mapping.BufferDepth(L, l)
		if res.BufferDepth[name] != want {
			t.Errorf("buffer %s depth %d, want %d", name, res.BufferDepth[name], want)
		}
		// The schedule must actually exercise the buffer close to its depth:
		// peak occupancy equals the depth (the rule is tight).
		if res.PeakOccupancy[name] != want {
			t.Errorf("buffer %s peak occupancy %d, want %d (depth rule must be tight)",
				name, res.PeakOccupancy[name], want)
		}
	}
}

func TestBufferDepthRuleIsMinimal(t *testing.T) {
	// Replaying the pipelined write/consume pattern of layer l: writes every
	// cycle, consumption 2(L−l)+1 cycles after the write. The paper's depth
	// 2(L−l)+1 must succeed and any smaller ring must panic.
	replay := func(depth, gap, n int) (panicked bool) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		b := NewCircularBuffer("replay", depth)
		for t := 0; t < n; t++ {
			if t >= gap {
				b.Consume(t - gap) // consume-before-write within the cycle
			}
			b.Write(t)
		}
		return false
	}
	for _, Ll := range []struct{ L, l int }{{3, 1}, {5, 2}, {8, 1}, {8, 7}} {
		gap := 2*(Ll.L-Ll.l) + 1
		depth := mapping.BufferDepth(Ll.L, Ll.l)
		if replay(depth, gap, 4*gap) {
			t.Errorf("L=%d l=%d: depth %d should suffice for gap %d", Ll.L, Ll.l, depth, gap)
		}
		if depth > 1 && !replay(depth-1, gap, 4*gap) {
			t.Errorf("L=%d l=%d: depth %d should overflow for gap %d", Ll.L, Ll.l, depth-1, gap)
		}
	}
}

func TestCircularBufferLivenessPanic(t *testing.T) {
	b := NewCircularBuffer("x", 1)
	b.Write(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected overwrite panic")
		}
	}()
	b.Write(1)
}

func TestCircularBufferConsumeMissingPanics(t *testing.T) {
	b := NewCircularBuffer("x", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing entry")
		}
	}()
	b.Consume(7)
}

func TestCircularBufferPeek(t *testing.T) {
	b := NewCircularBuffer("x", 2)
	b.Write(3)
	if !b.Peek(3) || b.Peek(4) {
		t.Fatal("Peek wrong")
	}
	b.Consume(3)
	if b.Peek(3) {
		t.Fatal("consumed entry must not be live")
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{L: 0, N: 4, B: 2, Training: true},
		{L: 3, N: 5, B: 2, Training: true}, // batch does not divide N
		{L: 3, N: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			Simulate(cfg)
		}()
	}
}

func TestUtilizationFigure6Schedule(t *testing.T) {
	// The paper's Figure 6 window: L=3 weighted layers, one batch of B=4.
	// The schedule touches 10 units (A1..A3, ErrL, A2E/A3E, A1D..A3D,
	// Update). Each image occupies 9 unit·cycles (3 forward + 1 output
	// error + 2 chained errors + 3 derivatives) and the batch adds one
	// update cycle: 4·9 + 1 = 37 busy unit·cycles. The run spans
	// (N/B)(2L+B+1) = 11 cycles, so utilization is 37 / (10·11).
	res := Simulate(Config{L: 3, B: 4, N: 4, Pipelined: true, Training: true})
	if res.Units != 10 {
		t.Fatalf("Units = %d, want 10", res.Units)
	}
	if res.UnitBusyCycles != 37 {
		t.Fatalf("UnitBusyCycles = %d, want 37", res.UnitBusyCycles)
	}
	want := 37.0 / 110.0
	if got := res.Utilization(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Utilization = %v, want %v", got, want)
	}
	// Utilization improves as the batch amortizes fill/drain.
	big := Simulate(Config{L: 3, B: 64, N: 64, Pipelined: true, Training: true})
	if big.Utilization() <= res.Utilization() {
		t.Fatalf("larger batch should raise utilization: %v !> %v", big.Utilization(), res.Utilization())
	}
}

func TestUtilizationZeroOnEmptyResult(t *testing.T) {
	if got := (Result{}).Utilization(); got != 0 {
		t.Fatalf("empty result utilization = %v", got)
	}
}

func TestMeanOccupancyBounded(t *testing.T) {
	res := Simulate(Config{L: 5, B: 16, N: 32, Pipelined: true, Training: true})
	for name, mean := range res.MeanOccupancy {
		if mean < 0 || mean > float64(res.PeakOccupancy[name]) {
			t.Errorf("buffer %s mean occupancy %v outside [0, peak=%d]", name, mean, res.PeakOccupancy[name])
		}
	}
	if res.MeanOccupancy["d1"] <= 0 {
		t.Fatal("d1 mean occupancy should be positive in a training run")
	}
}

func TestResultRecordPublishesGauges(t *testing.T) {
	res := Simulate(Config{L: 3, B: 4, N: 4, Pipelined: true, Training: true})
	reg := telemetry.NewRegistry()
	res.Record(reg)
	s := reg.Snapshot()
	if s.Gauges["pipeline_cycles"] != float64(res.Cycles) {
		t.Fatalf("pipeline_cycles gauge = %v, want %d", s.Gauges["pipeline_cycles"], res.Cycles)
	}
	if s.Gauges["pipeline_unit_utilization"] != res.Utilization() {
		t.Fatalf("utilization gauge = %v", s.Gauges["pipeline_unit_utilization"])
	}
	if s.Gauges[`pipeline_buffer_peak_occupancy{buffer="d1"}`] != float64(res.PeakOccupancy["d1"]) {
		t.Fatalf("peak occupancy gauge missing: %v", s.Gauges)
	}
	if _, ok := s.Gauges[`pipeline_buffer_mean_occupancy{buffer="d1"}`]; !ok {
		t.Fatalf("mean occupancy gauge missing: %v", s.Gauges)
	}
	// Recording into a nil registry is a no-op, not a crash.
	res.Record(nil)
}

func TestPipelinedBeatsNonPipelined(t *testing.T) {
	L, B, N := 6, 32, 128
	p := Simulate(Config{L: L, B: B, N: N, Pipelined: true, Training: true})
	np := Simulate(Config{L: L, B: B, N: N, Pipelined: false, Training: true})
	if p.Cycles >= np.Cycles {
		t.Fatalf("pipelined %d !< non-pipelined %d", p.Cycles, np.Cycles)
	}
	// The asymptotic advantage approaches (2L+1)/1 per image for large B.
	speedup := float64(np.Cycles) / float64(p.Cycles)
	if speedup < 5 {
		t.Fatalf("speedup %g too small for L=%d B=%d", speedup, L, B)
	}
}
