package fault

import (
	"flag"
	"math"
	"sync"
	"testing"

	"pipelayer/internal/telemetry"
)

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	for _, c := range []Config{
		{StuckOff: 0.01},
		{StuckOn: 0.01},
		{Drift: 0.1},
		{Endurance: 10},
		{WriteFail: 0.1},
	} {
		if !c.Enabled() {
			t.Errorf("config %+v reports disabled", c)
		}
	}
	// Tolerance-only knobs do not enable injection by themselves.
	if (Config{Spares: 4, Degrade: true, Retries: 3, Refresh: 100}).Enabled() {
		t.Error("tolerance-only config reports enabled")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{StuckOff: -0.1},
		{StuckOn: 1.5},
		{StuckOff: 0.6, StuckOn: 0.6},
		{WriteFail: -1},
		{WriteFail: 1},
		{Drift: -0.2},
		{Endurance: -1},
		{Retries: -1},
		{Spares: -1},
		{Refresh: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated", c)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New accepted config %+v", c)
		}
	}
	if err := (Config{Seed: 9, StuckOff: 0.3, StuckOn: 0.3, WriteFail: 0.5, Drift: 1, Endurance: 1e6, Retries: 8, Spares: 16, Refresh: 50}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestStuckMapDeterministic: the map is a pure function of (seed, array,
// slot) — repeated and concurrent queries agree exactly.
func TestStuckMapDeterministic(t *testing.T) {
	in := MustNew(Config{Seed: 42, StuckOff: 0.05, StuckOn: 0.02})
	const n = 20000
	ref := make([]Stuck, n)
	for s := 0; s < n; s++ {
		ref[s] = in.StuckAt(7, s)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < n; s++ {
				if got := in.StuckAt(7, s); got != ref[s] {
					t.Errorf("slot %d: concurrent query %d != %d", s, got, ref[s])
					return
				}
			}
		}()
	}
	wg.Wait()

	// A fresh injector with the same seed reproduces the map bit-for-bit.
	in2 := MustNew(Config{Seed: 42, StuckOff: 0.05, StuckOn: 0.02})
	for s := 0; s < n; s++ {
		if in2.StuckAt(7, s) != ref[s] {
			t.Fatalf("slot %d: fresh injector disagrees", s)
		}
	}
}

// TestStuckDensity: over many slots the realized densities match the
// configured ones to a few standard deviations.
func TestStuckDensity(t *testing.T) {
	cfg := Config{Seed: 3, StuckOff: 0.04, StuckOn: 0.01}
	in := MustNew(cfg)
	const n = 200000
	var off, on int
	for s := 0; s < n; s++ {
		switch in.StuckAt(1, s) {
		case StuckOff:
			off++
		case StuckOn:
			on++
		}
	}
	checkDensity := func(name string, count int, p float64) {
		got := float64(count) / n
		sigma := math.Sqrt(p * (1 - p) / n)
		if math.Abs(got-p) > 5*sigma {
			t.Errorf("%s density %.5f, want %.5f ± %.5f", name, got, p, 5*sigma)
		}
	}
	checkDensity("stuck-off", off, cfg.StuckOff)
	checkDensity("stuck-on", on, cfg.StuckOn)
}

// TestStuckGrowthMonotone: raising the stuck-off density never heals a cell —
// the fault set only grows, which is what makes density sweeps at one seed
// comparable point to point.
func TestStuckGrowthMonotone(t *testing.T) {
	lo := MustNew(Config{Seed: 5, StuckOff: 0.01})
	hi := MustNew(Config{Seed: 5, StuckOff: 0.05})
	for s := 0; s < 50000; s++ {
		if lo.StuckAt(2, s) == StuckOff && hi.StuckAt(2, s) != StuckOff {
			t.Fatalf("slot %d stuck at density 0.01 but healthy at 0.05", s)
		}
	}
}

func TestArraysIndependent(t *testing.T) {
	in := MustNew(Config{Seed: 11, StuckOff: 0.5})
	same := 0
	const n = 10000
	for s := 0; s < n; s++ {
		if (in.StuckAt(1, s) == StuckOff) == (in.StuckAt(2, s) == StuckOff) {
			same++
		}
	}
	// Independent fair-ish coins agree about half the time; perfectly
	// correlated maps would agree always.
	if same > n*6/10 || same < n*4/10 {
		t.Errorf("arrays 1 and 2 agree on %d/%d slots; maps look correlated", same, n)
	}
}

func TestWriteFailsDeterministicAndIndexed(t *testing.T) {
	in := MustNew(Config{Seed: 1, WriteFail: 0.5})
	// Same (array, slot, write) triple always answers the same.
	for i := 0; i < 1000; i++ {
		if in.WriteFails(3, i, 1) != in.WriteFails(3, i, 1) {
			t.Fatal("WriteFails is not deterministic")
		}
	}
	// Different write indices give fresh draws: a retried write eventually
	// succeeds somewhere in a long enough sequence.
	allFail := true
	for w := int64(1); w <= 20; w++ {
		if !in.WriteFails(3, 0, w) {
			allFail = false
			break
		}
	}
	if allFail {
		t.Error("20 consecutive draws at p=0.5 all failed; write index is not entering the hash")
	}
	var nilInj *Injector
	if nilInj.WriteFails(1, 1, 1) {
		t.Error("nil injector fails writes")
	}
}

func TestDriftFactor(t *testing.T) {
	in := MustNew(Config{Drift: 0.1})
	if got := in.DriftFactor(0); got != 1 {
		t.Errorf("age 0 drift = %g, want 1", got)
	}
	prev := 1.0
	for _, age := range []int64{1, 10, 100, 1000} {
		f := in.DriftFactor(age)
		if f >= prev || f <= 0 {
			t.Errorf("drift factor %g at age %d not strictly decaying below %g", f, age, prev)
		}
		prev = f
	}
	if want := math.Pow(101, -0.1); math.Abs(in.DriftFactor(100)-want) > 1e-15 {
		t.Errorf("drift factor at age 100 = %g, want %g", in.DriftFactor(100), want)
	}
	var nilInj *Injector
	if nilInj.DriftFactor(1000) != 1 {
		t.Error("nil injector drifts")
	}
}

// TestNilInjectorSafe: every query and note is a no-op on nil.
func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.StuckAt(1, 2) != None {
		t.Error("nil injector injects")
	}
	if in.Config() != (Config{}) {
		t.Error("nil injector has a config")
	}
	in.AttachMetrics(telemetry.NewRegistry())
	in.NoteInjected(1)
	in.NoteRetried(1)
	in.NoteWriteFailed(1)
	in.NoteWornOut(1)
	in.NoteRemapped(1)
	in.NoteDegraded(1)
	in.NoteCorrupted(1)
	in.NoteRefresh()
	if in.Counters() != (Counters{}) {
		t.Error("nil injector counts")
	}
}

func TestCountersAndMetrics(t *testing.T) {
	in := MustNew(Config{})
	reg := telemetry.NewRegistry()
	in.AttachMetrics(reg)
	in.NoteInjected(3)
	in.NoteRetried(2)
	in.NoteWriteFailed(1)
	in.NoteWornOut(4)
	in.NoteRemapped(5)
	in.NoteDegraded(6)
	in.NoteCorrupted(7)
	in.NoteRefresh()
	want := Counters{Injected: 3, Retried: 2, WriteFailed: 1, WornOut: 4, Remapped: 5, Degraded: 6, Corrupted: 7, Refreshes: 1}
	if got := in.Counters(); got != want {
		t.Errorf("counters = %+v, want %+v", got, want)
	}
	for name, want := range map[string]int64{
		"fault_cells_injected_total":    3,
		"fault_writes_retried_total":    2,
		"fault_writes_failed_total":     1,
		"fault_cells_worn_out_total":    4,
		"fault_columns_remapped_total":  5,
		"fault_columns_degraded_total":  6,
		"fault_columns_corrupted_total": 7,
		"fault_refreshes_total":         1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestRegisterFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	cfg := RegisterFlags(fs)
	err := fs.Parse([]string{
		"-fault-seed", "9", "-fault-stuck-off", "0.01", "-fault-stuck-on", "0.002",
		"-fault-drift", "0.05", "-fault-endurance", "1000", "-fault-write-fail", "0.1",
		"-fault-retries", "5", "-fault-spares", "8", "-fault-degrade=false", "-fault-refresh", "64",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 9, StuckOff: 0.01, StuckOn: 0.002, Drift: 0.05, Endurance: 1000,
		WriteFail: 0.1, Retries: 5, Spares: 8, Degrade: false, Refresh: 64}
	if *cfg != want {
		t.Errorf("parsed config %+v, want %+v", *cfg, want)
	}
	// Defaults: injection off, tolerance on.
	fs2 := flag.NewFlagSet("t2", flag.ContinueOnError)
	def := RegisterFlags(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if def.Enabled() {
		t.Error("default flag config injects faults")
	}
	if def.Retries != 3 || def.Spares != 4 || !def.Degrade {
		t.Errorf("default tolerance knobs = %+v", *def)
	}
}
