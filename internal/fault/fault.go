// Package fault is the deterministic fault-injection layer of the
// reproduction: real ReRAM arrays suffer stuck-at cells, conductance drift,
// finite write endurance and transient write failures — non-idealities the
// paper's evaluation abstracts away but a production simulator must survive
// and quantify. The package provides a seedable Injector whose every draw is
// a pure hash of (seed, array id, cell slot, event index), so fault maps,
// remap decisions and training trajectories are bit-identical across worker
// counts, process restarts and machines — the same determinism contract the
// parallel compute backend keeps (see internal/parallel).
//
// The injector itself only answers questions ("is this cell stuck?", "does
// this write fail?", "how much has conductance drifted after n cycles?") and
// counts events; the tolerance mechanisms that react to the answers live
// with the device models: write-verify retry in internal/reram, spare-column
// remapping and digital-emulation degrade in internal/reram and
// internal/arch, and periodic drift refresh in internal/core.
package fault

import (
	"flag"
	"fmt"
	"math"
	"sync/atomic"

	"pipelayer/internal/telemetry"
)

// Stuck is the permanent state of one ReRAM cell.
type Stuck uint8

const (
	// None marks a healthy, programmable cell.
	None Stuck = iota
	// StuckOff pins the cell at minimum conductance (code 0).
	StuckOff
	// StuckOn pins the cell at maximum conductance (code 15).
	StuckOn
)

// Config controls the fault model. The zero value disables every fault
// mechanism; Enabled reports whether any injection is active.
type Config struct {
	// Seed drives every deterministic draw.
	Seed int64
	// StuckOff / StuckOn are the per-cell densities of cells permanently
	// stuck at minimum / maximum conductance (manufacturing defects).
	StuckOff, StuckOn float64
	// Drift is the log-time conductance drift coefficient ν: after age
	// compute cycles a programmed conductance has decayed by the factor
	// (1+age)^(-ν). 0 disables drift.
	Drift float64
	// Endurance is the per-cell write budget; once a cell's write counter
	// exceeds it the cell wears out and freezes at its last conductance.
	// 0 means unlimited endurance.
	Endurance int64
	// WriteFail is the probability that one program-and-verify attempt
	// fails transiently (the cell refuses the target this attempt).
	WriteFail float64
	// Retries bounds the write-verify retry loop: a failing write is
	// retried up to Retries times with exponentially backed-off pulse
	// budgets before the cell is given up and marked stuck.
	Retries int
	// Spares is the number of redundant columns per crossbar available for
	// remapping faulty logical columns.
	Spares int
	// Degrade enables the graceful-degradation fallback: once spares are
	// exhausted, faulty columns are computed by exact digital emulation
	// instead of the corrupted analog array.
	Degrade bool
	// Refresh is the period, in compute cycles (pipelined trainer) or
	// images (sequential trainer), between drift-refresh reprograms of all
	// arrays from their master weights. 0 disables refresh.
	Refresh int
}

// Enabled reports whether any fault mechanism injects at this config.
func (c Config) Enabled() bool {
	return c.StuckOff > 0 || c.StuckOn > 0 || c.Drift > 0 || c.Endurance > 0 || c.WriteFail > 0
}

// Validate checks the config ranges.
func (c Config) Validate() error {
	if c.StuckOff < 0 || c.StuckOn < 0 || c.StuckOff+c.StuckOn > 1 {
		return fmt.Errorf("fault: stuck densities must be non-negative with sum ≤ 1 (got off=%g on=%g)", c.StuckOff, c.StuckOn)
	}
	if c.WriteFail < 0 || c.WriteFail >= 1 {
		return fmt.Errorf("fault: write-fail probability must be in [0,1) (got %g)", c.WriteFail)
	}
	if c.Drift < 0 {
		return fmt.Errorf("fault: drift coefficient must be non-negative (got %g)", c.Drift)
	}
	if c.Endurance < 0 {
		return fmt.Errorf("fault: endurance must be non-negative (got %d)", c.Endurance)
	}
	if c.Retries < 0 {
		return fmt.Errorf("fault: retries must be non-negative (got %d)", c.Retries)
	}
	if c.Spares < 0 {
		return fmt.Errorf("fault: spares must be non-negative (got %d)", c.Spares)
	}
	if c.Refresh < 0 {
		return fmt.Errorf("fault: refresh period must be non-negative (got %d)", c.Refresh)
	}
	return nil
}

// RegisterFlags registers the -fault-* flag set on fs and returns the Config
// the parsed flags fill in. All three cmds share this definition so the flag
// surface stays uniform.
func RegisterFlags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.Int64Var(&c.Seed, "fault-seed", 1, "seed for the deterministic fault injector")
	fs.Float64Var(&c.StuckOff, "fault-stuck-off", 0, "density of cells stuck at minimum conductance")
	fs.Float64Var(&c.StuckOn, "fault-stuck-on", 0, "density of cells stuck at maximum conductance")
	fs.Float64Var(&c.Drift, "fault-drift", 0, "log-time conductance drift coefficient ν ((1+age)^-ν per compute cycle)")
	fs.Int64Var(&c.Endurance, "fault-endurance", 0, "per-cell write budget before wear-out (0 = unlimited)")
	fs.Float64Var(&c.WriteFail, "fault-write-fail", 0, "transient write failure probability per program attempt")
	fs.IntVar(&c.Retries, "fault-retries", 3, "bounded write-verify retries (exponential pulse backoff) before a cell is marked stuck")
	fs.IntVar(&c.Spares, "fault-spares", 4, "spare columns per crossbar for remapping faulty columns")
	fs.BoolVar(&c.Degrade, "fault-degrade", true, "fall back to exact digital emulation once spares are exhausted")
	fs.IntVar(&c.Refresh, "fault-refresh", 0, "cycles between drift-refresh reprograms (0 = off)")
	return c
}

// Counters is a snapshot of the injector's event counts.
type Counters struct {
	// Injected is the number of stuck-at cells the static maps contain
	// across all attached arrays.
	Injected int64
	// Retried counts write attempts that failed transiently and were
	// retried with a backed-off pulse budget.
	Retried int64
	// WriteFailed counts cells given up on after exhausting retries (each
	// is marked permanently stuck).
	WriteFailed int64
	// WornOut counts cells frozen by endurance exhaustion.
	WornOut int64
	// Remapped counts logical columns rerouted to spare columns.
	Remapped int64
	// Degraded counts logical columns that fell back to digital emulation
	// after spare exhaustion.
	Degraded int64
	// Corrupted counts logical columns left running on faulty cells (no
	// spare available and degrade disabled).
	Corrupted int64
	// Refreshes counts drift-refresh reprogram sweeps.
	Refreshes int64
}

// Injector answers deterministic fault queries and accumulates tolerance
// telemetry. A nil *Injector is valid and means "no faults": every query
// returns the healthy answer and every counter bump is a no-op, so device
// models hold one nil-able pointer instead of branching on a config.
type Injector struct {
	cfg Config

	injected, retried, writeFailed, wornOut atomic.Int64
	remapped, degraded, corrupted, refresh  atomic.Int64

	// Cached telemetry handles (nil when no registry is attached). The
	// internal atomics count regardless so Counters() works without one.
	mInjected, mRetried, mWriteFailed, mWornOut *telemetry.Counter
	mRemapped, mDegraded, mCorrupted, mRefresh  *telemetry.Counter
}

// New creates an injector for the config. Disabled configs are fine — the
// injector simply never injects — but most callers gate on cfg.Enabled()
// and keep a nil injector instead.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg}, nil
}

// MustNew is New for deterministic test/example setup; it panics on an
// invalid config.
func MustNew(cfg Config) *Injector {
	in, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return in
}

// Config returns the injector's configuration (zero Config for nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// AttachMetrics publishes the fault_* counters into reg (nil detaches).
func (in *Injector) AttachMetrics(reg *telemetry.Registry) {
	if in == nil {
		return
	}
	if reg == nil {
		in.mInjected, in.mRetried, in.mWriteFailed, in.mWornOut = nil, nil, nil, nil
		in.mRemapped, in.mDegraded, in.mCorrupted, in.mRefresh = nil, nil, nil, nil
		return
	}
	in.mInjected = reg.Counter("fault_cells_injected_total")
	in.mRetried = reg.Counter("fault_writes_retried_total")
	in.mWriteFailed = reg.Counter("fault_writes_failed_total")
	in.mWornOut = reg.Counter("fault_cells_worn_out_total")
	in.mRemapped = reg.Counter("fault_columns_remapped_total")
	in.mDegraded = reg.Counter("fault_columns_degraded_total")
	in.mCorrupted = reg.Counter("fault_columns_corrupted_total")
	in.mRefresh = reg.Counter("fault_refreshes_total")
}

// Counters snapshots the event counts (zero for nil).
func (in *Injector) Counters() Counters {
	if in == nil {
		return Counters{}
	}
	return Counters{
		Injected:    in.injected.Load(),
		Retried:     in.retried.Load(),
		WriteFailed: in.writeFailed.Load(),
		WornOut:     in.wornOut.Load(),
		Remapped:    in.remapped.Load(),
		Degraded:    in.degraded.Load(),
		Corrupted:   in.corrupted.Load(),
		Refreshes:   in.refresh.Load(),
	}
}

// splitmix64 is the finalizer of the SplitMix64 generator — a full-avalanche
// 64-bit mixer, the standard choice for counter-indexed deterministic
// randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns a uniform value in [0,1) for the (array, slot, salt) triple.
func (in *Injector) draw(array uint64, slot int, salt uint64) float64 {
	h := splitmix64(uint64(in.cfg.Seed))
	h = splitmix64(h ^ array)
	h = splitmix64(h ^ uint64(slot))
	h = splitmix64(h ^ salt)
	return float64(h>>11) / (1 << 53)
}

// StuckAt returns the static stuck-at state of one cell slot of one array.
// The map is a pure function of (seed, array, slot), so every caller — any
// worker, any process — sees the same map, and a given cell's fate is stable
// as densities grow (the stuck-off region is a prefix of the unit interval).
func (in *Injector) StuckAt(array uint64, slot int) Stuck {
	if in == nil || (in.cfg.StuckOff == 0 && in.cfg.StuckOn == 0) {
		return None
	}
	u := in.draw(array, slot, 0x5ca1ab1e)
	if u < in.cfg.StuckOff {
		return StuckOff
	}
	if u < in.cfg.StuckOff+in.cfg.StuckOn {
		return StuckOn
	}
	return None
}

// WriteFails reports whether the write-th program attempt on the slot fails
// transiently. Indexing by the cell's cumulative write count makes the draw
// deterministic yet different on every retry.
func (in *Injector) WriteFails(array uint64, slot int, write int64) bool {
	if in == nil || in.cfg.WriteFail == 0 {
		return false
	}
	return in.draw(array, slot, 0xbad0c0de+uint64(write)) < in.cfg.WriteFail
}

// DriftFactor returns the multiplicative conductance decay after age compute
// cycles: (1+age)^(-ν), the standard log-time drift law. 1 for nil or ν=0.
func (in *Injector) DriftFactor(age int64) float64 {
	if in == nil || in.cfg.Drift == 0 || age <= 0 {
		return 1
	}
	return math.Pow(1+float64(age), -in.cfg.Drift)
}

// bump adds n to an internal counter and its telemetry mirror.
func bump(v *atomic.Int64, m *telemetry.Counter, n int64) {
	if n <= 0 {
		return
	}
	v.Add(n)
	if m != nil {
		m.Add(n)
	}
}

// NoteInjected records n stuck cells found while building a static map.
func (in *Injector) NoteInjected(n int64) {
	if in != nil {
		bump(&in.injected, in.mInjected, n)
	}
}

// NoteRetried records n transiently failed, retried write attempts.
func (in *Injector) NoteRetried(n int64) {
	if in != nil {
		bump(&in.retried, in.mRetried, n)
	}
}

// NoteWriteFailed records n cells abandoned after exhausting retries.
func (in *Injector) NoteWriteFailed(n int64) {
	if in != nil {
		bump(&in.writeFailed, in.mWriteFailed, n)
	}
}

// NoteWornOut records n cells frozen by endurance exhaustion.
func (in *Injector) NoteWornOut(n int64) {
	if in != nil {
		bump(&in.wornOut, in.mWornOut, n)
	}
}

// NoteRemapped records n logical columns rerouted to spares.
func (in *Injector) NoteRemapped(n int64) {
	if in != nil {
		bump(&in.remapped, in.mRemapped, n)
	}
}

// NoteDegraded records n logical columns degraded to digital emulation.
func (in *Injector) NoteDegraded(n int64) {
	if in != nil {
		bump(&in.degraded, in.mDegraded, n)
	}
}

// NoteCorrupted records n logical columns left corrupted (no spare, no
// degrade).
func (in *Injector) NoteCorrupted(n int64) {
	if in != nil {
		bump(&in.corrupted, in.mCorrupted, n)
	}
}

// NoteRefresh records one drift-refresh reprogram sweep.
func (in *Injector) NoteRefresh() {
	if in != nil {
		bump(&in.refresh, in.mRefresh, 1)
	}
}
