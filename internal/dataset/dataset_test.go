package dataset

import (
	"math/rand"
	"testing"

	"pipelayer/internal/tensor"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(50, DefaultOptions(true), 42)
	b := Generate(50, DefaultOptions(true), 42)
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatalf("label mismatch at %d", i)
		}
		if !tensor.Equal(a[i].Input, b[i].Input, 0) {
			t.Fatalf("pixel mismatch at %d", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := Generate(10, DefaultOptions(true), 1)
	b := Generate(10, DefaultOptions(true), 2)
	same := true
	for i := range a {
		if !tensor.Equal(a[i].Input, b[i].Input, 0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should produce different data")
	}
}

func TestGenerateBalancedClasses(t *testing.T) {
	samples := Generate(100, DefaultOptions(true), 3)
	counts := map[int]int{}
	for _, s := range samples {
		counts[s.Label]++
	}
	for d := 0; d < 10; d++ {
		if counts[d] != 10 {
			t.Fatalf("class %d has %d samples, want 10", d, counts[d])
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	flat := Generate(3, DefaultOptions(true), 4)
	if flat[0].Input.Rank() != 1 || flat[0].Input.Size() != 784 {
		t.Fatalf("flat shape = %v", flat[0].Input.Shape())
	}
	img := Generate(3, DefaultOptions(false), 4)
	sh := img[0].Input.Shape()
	if len(sh) != 3 || sh[0] != 1 || sh[1] != 28 || sh[2] != 28 {
		t.Fatalf("image shape = %v", sh)
	}
}

func TestRenderPixelRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	img := Render(8, 1.0, 2, -2, 0.3, rng)
	for i, v := range img {
		if v < 0 || v > 1 {
			t.Fatalf("pixel[%d] = %g outside [0,1]", i, v)
		}
	}
}

func TestRenderDigitsDistinct(t *testing.T) {
	// Clean renderings (no jitter/noise) of distinct digits must differ.
	rng := rand.New(rand.NewSource(6))
	imgs := make([][]float64, 10)
	for d := 0; d < 10; d++ {
		imgs[d] = Render(d, 1.0, 0, 0, 0, rng)
	}
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			diff := 0.0
			for i := range imgs[a] {
				d := imgs[a][i] - imgs[b][i]
				if d < 0 {
					d = -d
				}
				diff += d
			}
			if diff == 0 {
				t.Fatalf("digits %d and %d render identically", a, b)
			}
		}
	}
}

func TestRenderInvalidDigitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Render(10, 1, 0, 0, 0, rand.New(rand.NewSource(1)))
}

func TestRenderHasInk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for d := 0; d < 10; d++ {
		img := Render(d, 1.0, 0, 0, 0, rng)
		sum := 0.0
		for _, v := range img {
			sum += v
		}
		if sum < 10 {
			t.Fatalf("digit %d has almost no ink: sum=%g", d, sum)
		}
	}
}

func TestTrainTestDisjointStreams(t *testing.T) {
	train, test := TrainTest(20, 20, DefaultOptions(true), 11)
	if len(train) != 20 || len(test) != 20 {
		t.Fatalf("sizes: %d/%d", len(train), len(test))
	}
	// Streams are independent: first tensors should differ.
	if tensor.Equal(train[0].Input, test[0].Input, 0) && train[0].Label == test[0].Label {
		// Extremely unlikely unless streams are identical; check a second pair.
		if tensor.Equal(train[1].Input, test[1].Input, 0) {
			t.Fatal("train and test streams appear identical")
		}
	}
}
