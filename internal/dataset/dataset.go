// Package dataset provides the deterministic synthetic stand-in for MNIST
// used by the reproduction's accuracy experiments (paper Section 6.1 uses the
// real MNIST database, which is not available in this offline environment;
// the substitution is documented in DESIGN.md).
//
// Images are 28×28 grayscale renderings of the ten digits as seven-segment
// patterns with per-sample random translation, intensity scaling and pixel
// noise. The task is learnable by small MLPs/CNNs yet non-trivial, and its
// accuracy degrades under weight quantization — the property the paper's
// Figure 13 experiment depends on.
package dataset

import (
	"fmt"
	"math/rand"

	"pipelayer/internal/nn"
	"pipelayer/internal/tensor"
)

// Size is the side length of generated images (MNIST's 28).
const Size = 28

// segment identifiers of a seven-segment display.
const (
	segA = iota // top
	segB        // top-right
	segC        // bottom-right
	segD        // bottom
	segE        // bottom-left
	segF        // top-left
	segG        // middle
	numSegments
)

// digitSegments maps each digit class to its lit segments.
var digitSegments = [10][numSegments]bool{
	0: {segA: true, segB: true, segC: true, segD: true, segE: true, segF: true},
	1: {segB: true, segC: true},
	2: {segA: true, segB: true, segG: true, segE: true, segD: true},
	3: {segA: true, segB: true, segG: true, segC: true, segD: true},
	4: {segF: true, segG: true, segB: true, segC: true},
	5: {segA: true, segF: true, segG: true, segC: true, segD: true},
	6: {segA: true, segF: true, segG: true, segE: true, segC: true, segD: true},
	7: {segA: true, segB: true, segC: true},
	8: {segA: true, segB: true, segC: true, segD: true, segE: true, segF: true, segG: true},
	9: {segA: true, segB: true, segC: true, segD: true, segF: true, segG: true},
}

// glyph geometry on the 28×28 canvas (before jitter).
const (
	glyphLeft   = 8
	glyphRight  = 19
	glyphTop    = 4
	glyphMid    = 13
	glyphBottom = 23
	strokeWidth = 2
)

// drawSegment stamps one segment onto img with the given intensity and
// translation (dx, dy). Out-of-bounds pixels are clipped.
func drawSegment(img []float64, seg int, intensity float64, dx, dy int) {
	hline := func(y, x0, x1 int) {
		for t := 0; t < strokeWidth; t++ {
			yy := y + t + dy
			if yy < 0 || yy >= Size {
				continue
			}
			for x := x0 + dx; x <= x1+dx; x++ {
				if x >= 0 && x < Size {
					img[yy*Size+x] = intensity
				}
			}
		}
	}
	vline := func(x, y0, y1 int) {
		for t := 0; t < strokeWidth; t++ {
			xx := x + t + dx
			if xx < 0 || xx >= Size {
				continue
			}
			for y := y0 + dy; y <= y1+dy; y++ {
				if y >= 0 && y < Size {
					img[y*Size+xx] = intensity
				}
			}
		}
	}
	switch seg {
	case segA:
		hline(glyphTop, glyphLeft, glyphRight)
	case segB:
		vline(glyphRight, glyphTop, glyphMid)
	case segC:
		vline(glyphRight, glyphMid, glyphBottom)
	case segD:
		hline(glyphBottom, glyphLeft, glyphRight)
	case segE:
		vline(glyphLeft, glyphMid, glyphBottom)
	case segF:
		vline(glyphLeft, glyphTop, glyphMid)
	case segG:
		hline(glyphMid, glyphLeft, glyphRight)
	}
}

// Options controls sample generation.
type Options struct {
	// MaxShift is the maximum absolute per-sample translation in pixels.
	MaxShift int
	// Noise is the standard deviation of additive Gaussian pixel noise.
	Noise float64
	// Flat, when true, emits rank-1 tensors of 784 elements (MLP input);
	// otherwise rank-3 (1,28,28) tensors (CNN input).
	Flat bool
}

// DefaultOptions mirror the difficulty calibration used throughout the
// experiments: ±2 px jitter and σ=0.15 noise.
func DefaultOptions(flat bool) Options {
	return Options{MaxShift: 2, Noise: 0.15, Flat: flat}
}

// Render draws a single digit with the given jitter parameters into a new
// image slice of Size*Size float64 pixels in [roughly 0,1].
func Render(digit int, intensity float64, dx, dy int, noise float64, rng *rand.Rand) []float64 {
	if digit < 0 || digit > 9 {
		panic(fmt.Sprintf("dataset: digit %d out of range", digit))
	}
	img := make([]float64, Size*Size)
	for seg := 0; seg < numSegments; seg++ {
		if digitSegments[digit][seg] {
			drawSegment(img, seg, intensity, dx, dy)
		}
	}
	if noise > 0 {
		for i := range img {
			img[i] += noise * rng.NormFloat64()
			if img[i] < 0 {
				img[i] = 0
			} else if img[i] > 1 {
				img[i] = 1
			}
		}
	}
	return img
}

// Generate produces n labeled samples with balanced classes (class i appears
// ⌈n/10⌉ or ⌊n/10⌋ times, cycling), deterministically from seed.
func Generate(n int, opts Options, seed int64) []nn.Sample {
	rng := rand.New(rand.NewSource(seed))
	samples := make([]nn.Sample, n)
	for i := 0; i < n; i++ {
		digit := i % 10
		intensity := 0.7 + 0.3*rng.Float64()
		dx := rng.Intn(2*opts.MaxShift+1) - opts.MaxShift
		dy := rng.Intn(2*opts.MaxShift+1) - opts.MaxShift
		img := Render(digit, intensity, dx, dy, opts.Noise, rng)
		var x *tensor.Tensor
		if opts.Flat {
			x = tensor.FromSlice(img, Size*Size)
		} else {
			x = tensor.FromSlice(img, 1, Size, Size)
		}
		samples[i] = nn.Sample{Input: x, Label: digit}
	}
	// Shuffle deterministically so batches mix classes.
	rng.Shuffle(n, func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	return samples
}

// TrainTest generates disjoint train and test sets from independent streams.
func TrainTest(nTrain, nTest int, opts Options, seed int64) (train, test []nn.Sample) {
	return Generate(nTrain, opts, seed), Generate(nTest, opts, seed+1e9)
}
