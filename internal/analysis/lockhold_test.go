package analysis_test

import (
	"testing"

	"pipelayer/internal/analysis"
	"pipelayer/internal/analysis/analysistest"
)

// TestLockHold proves the CFG dataflow catches every blocking-op shape under
// a held lock (send, recv, select without default, WaitGroup/Cond waits,
// backend Forward* calls, range over a channel), keeps deferred unlocks held
// to function exit, exempts select-with-default, reports AB/BA lock-order
// cycles once, scopes function literals as their own activations, and
// enforces the reasoned escape hatch.
func TestLockHold(t *testing.T) {
	analysistest.Run(t, analysis.AnalyzerLockHold, "lockhold/a")
}
