package analysis_test

import (
	"testing"

	"pipelayer/internal/analysis"
	"pipelayer/internal/analysis/analysistest"
)

// TestErrDrop proves errors from sentinel-carrying callees cannot be
// discarded via `_ =` or a bare call statement, while handled/propagated/
// deferred calls and foreign-module callees (std's own ErrClosed) pass, and
// the escape hatch demands a reason.
func TestErrDrop(t *testing.T) {
	analysistest.Run(t, analysis.AnalyzerErrDrop, "errdrop/a")
}
