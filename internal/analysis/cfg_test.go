package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFuncBody type-checks one source file and returns the named function's
// body plus the type info, so CFG tests run on real checked syntax.
func parseFuncBody(t *testing.T, src, name string) (*ast.BlockStmt, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body, info, fset
		}
	}
	t.Fatalf("no function %s", name)
	return nil, nil, nil
}

func TestCFGStraightLine(t *testing.T) {
	body, _, _ := parseFuncBody(t, `package x
func f() int {
	a := 1
	b := a + 1
	return b
}`, "f")
	g := BuildCFG(body)
	if g.Entry() == nil {
		t.Fatal("no entry block")
	}
	reach := g.Reachable()
	if !reach[g.Entry()] {
		t.Fatal("entry not reachable")
	}
	if got := len(g.Entry().Nodes); got != 3 {
		t.Fatalf("entry block has %d nodes, want 3", got)
	}
}

func TestCFGDeadCodeUnreachable(t *testing.T) {
	body, _, _ := parseFuncBody(t, `package x
func f() int {
	return 1
	var dead int
	_ = dead
	return dead
}`, "f")
	g := BuildCFG(body)
	reach := g.Reachable()
	// The statements after the return land in a block, but an unlinked one.
	var deadBlocks int
	for _, b := range g.Blocks {
		if !reach[b] && len(b.Nodes) > 0 {
			deadBlocks++
		}
	}
	if deadBlocks == 0 {
		t.Fatal("dead code after return should occupy an unreachable block")
	}
}

func TestCFGBranchJoin(t *testing.T) {
	body, _, _ := parseFuncBody(t, `package x
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	g := BuildCFG(body)
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if len(b.Nodes) > 0 && !reach[b] {
			t.Fatalf("block %d with %d nodes unreachable in a branch-join CFG", b.Index, len(b.Nodes))
		}
	}
}

func TestCFGLoopBackedge(t *testing.T) {
	body, _, _ := parseFuncBody(t, `package x
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	g := BuildCFG(body)
	// Some block must have a successor with a smaller index: the backedge.
	hasBackedge := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index {
				hasBackedge = true
			}
		}
	}
	if !hasBackedge {
		t.Fatal("for loop produced no backedge")
	}
}

func TestCFGSelectMarksComms(t *testing.T) {
	body, _, _ := parseFuncBody(t, `package x
func f(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case ch <- 1:
		return 0
	default:
		return -1
	}
}`, "f")
	g := BuildCFG(body)
	if len(g.SelectComm) != 2 {
		t.Fatalf("SelectComm marked %d comm statements, want 2", len(g.SelectComm))
	}
}

func TestCFGRangeMarksHead(t *testing.T) {
	body, _, _ := parseFuncBody(t, `package x
func f(ch chan int) (s int) {
	for v := range ch {
		s += v
	}
	return
}`, "f")
	g := BuildCFG(body)
	if len(g.RangeX) != 1 {
		t.Fatalf("RangeX marked %d expressions, want 1", len(g.RangeX))
	}
}

// TestForwardMayLockFlow runs the exact transfer function shape lockhold
// uses and checks the may-held facts: held inside the critical section and
// on the deferred-unlock path, clear after an explicit unlock.
func TestForwardMayLockFlow(t *testing.T) {
	body, info, fset := parseFuncBody(t, `package x
import "sync"
type S struct{ mu sync.Mutex; ch chan int }
func (s *S) f(c bool) {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		s.ch <- 1
		return
	}
	s.mu.Unlock()
}`, "f")
	g := BuildCFG(body)
	classify := func(b *Block, in map[string]bool) map[string]bool {
		out := make(map[string]bool, len(in))
		for k := range in {
			out[k] = true
		}
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Lock":
					out[ExprKey(info, sel.X)] = true
				case "Unlock":
					delete(out, ExprKey(info, sel.X))
				}
				return true
			})
		}
		return out
	}
	ins := g.ForwardMay(classify)
	// Find the block containing the send and the one containing the final
	// Unlock: the send's in-set must be empty (unlocked on that path), the
	// final unlock's in-set must hold the lock.
	for b, in := range ins {
		for _, n := range b.Nodes {
			if send, ok := n.(*ast.SendStmt); ok {
				if len(classifyUpTo(b, in, classify, send.Pos())) != 0 {
					t.Errorf("lock may be held at the send on line %d; Unlock dominates it", fset.Position(send.Pos()).Line)
				}
			}
		}
	}
}

// classifyUpTo replays a block's transfer up to (not including) pos —
// mirroring how lockhold interleaves events within a block.
func classifyUpTo(b *Block, in map[string]bool, transfer func(*Block, map[string]bool) map[string]bool, pos token.Pos) map[string]bool {
	trimmed := &Block{Index: b.Index}
	for _, n := range b.Nodes {
		if n.Pos() < pos {
			trimmed.Nodes = append(trimmed.Nodes, n)
		}
	}
	return transfer(trimmed, in)
}

func TestExprKeyCanonicalAcrossReceivers(t *testing.T) {
	src := `package x
import "sync"
type S struct{ mu sync.Mutex }
func (s *S) a() { s.mu.Lock() }
func (q *S) b() { q.mu.Lock() }
func c() { var local sync.Mutex; local.Lock() }`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var keys []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Lock" {
			keys = append(keys, ExprKey(info, sel.X))
		}
		return true
	})
	if len(keys) != 3 {
		t.Fatalf("found %d Lock calls, want 3", len(keys))
	}
	if keys[0] != keys[1] {
		t.Errorf("s.mu and q.mu key differently: %q vs %q — receiver names must not matter", keys[0], keys[1])
	}
	if !strings.Contains(keys[0], "x.S#mu") {
		t.Errorf("field key %q does not canonicalize by named type", keys[0])
	}
	if keys[2] == keys[0] {
		t.Errorf("a local mutex shares the field's key %q", keys[2])
	}
	if !strings.HasPrefix(keys[2], "local@") {
		t.Errorf("local key %q not position-scoped", keys[2])
	}
}

func TestEscapesFrom(t *testing.T) {
	body, info, _ := parseFuncBody(t, `package x
func f() (func(), *int) {
	captured := 1
	addressed := 2
	clean := 3
	_ = clean
	return func() { captured++ }, &addressed
}`, "f")
	find := func(name string) types.Object {
		var obj types.Object
		ast.Inspect(body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name {
				if o := info.ObjectOf(id); o != nil && obj == nil {
					obj = o
				}
			}
			return true
		})
		return obj
	}
	if !escapesFrom(info, body, find("captured")) {
		t.Error("closure-captured variable reported as non-escaping")
	}
	if !escapesFrom(info, body, find("addressed")) {
		t.Error("address-taken variable reported as non-escaping")
	}
	if escapesFrom(info, body, find("clean")) {
		t.Error("plain local reported as escaping")
	}
}
