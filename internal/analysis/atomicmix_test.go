package analysis_test

import (
	"testing"

	"pipelayer/internal/analysis"
	"pipelayer/internal/analysis/analysistest"
)

// TestAtomicMix proves a field touched via sync/atomic is flagged at every
// plain access (across receiver names), untouched fields stay free, the
// atomic.Pointer accessor rule allows owner methods and constructor locals
// while catching free-function bypasses, and the escape hatch demands a
// reason.
func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysis.AnalyzerAtomicMix, "atomicmix/a")
}
