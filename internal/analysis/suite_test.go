package analysis_test

import (
	"testing"

	"pipelayer/internal/analysis"
)

// TestSuiteCleanOnRepo is the burn-in gate inside the ordinary test run:
// the full analyzer suite over the whole module must report nothing. A new
// violation anywhere in the tree fails `go test ./...` with the same
// message pipelayer-vet would print, so the invariant holds even for
// contributors who never run make analyze.
func TestSuiteCleanOnRepo(t *testing.T) {
	loader := &analysis.Loader{Dir: "../.."}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages for ./...")
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.PkgPath, terr)
		}
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.Suite())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

// TestSuiteHasElevenAnalyzers pins the suite's composition: each analyzer
// name doubles as its escape-hatch directive, so renames are breaking
// changes that must be deliberate.
func TestSuiteHasElevenAnalyzers(t *testing.T) {
	want := []string{
		"nondeterminism", "maporder", "floatreduce", "spawn", "sentinelcmp", "metricname",
		"ctxflow", "lockhold", "drainproto", "atomicmix", "errdrop",
	}
	suite := analysis.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing Doc or Run", a.Name)
		}
	}
}
