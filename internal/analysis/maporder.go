package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerMapOrder flags `range` over a map whose body performs
// order-sensitive work: writing through a slice index, appending to a slice
// declared outside the loop, accumulating floats into an outer variable, or
// sending on a channel. Go randomizes map iteration order per run, so any
// of these makes the result differ run to run and worker count to worker
// count — the exact pattern that broke cross-worker bit-identity before the
// deterministic pool landed.
//
// The one sanctioned shape — collect the keys, sort, iterate the sorted
// slice — is recognized: an append of loop variables into an outer slice is
// not flagged when a later statement in the same block passes that slice to
// sort or slices. Everything else needs //pipelayer:allow-maporder <reason>.
var AnalyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops whose body writes slices, accumulates floats, or sends " +
		"on channels; map order is randomized, so such loops break bit-identical replay " +
		"(collect keys and sort instead)",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		// Every statement lives in exactly one block / case / comm statement
		// list; visiting those lists hands each map-range loop its enclosing
		// list, which the collect-keys-then-sort recognizer needs.
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for _, s := range list {
				if ls, ok := s.(*ast.LabeledStmt); ok {
					s = ls.Stmt
				}
				if rs, ok := s.(*ast.RangeStmt); ok && isMapType(pass.TypeOf(rs.X)) {
					checkMapRangeBody(pass, rs, list)
				}
			}
			return true
		})
	}
	return nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody reports the order-sensitive writes inside one map-range
// body. enclosing is the statement list containing rs, used to recognize a
// subsequent sort of an appended-to slice.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, enclosing []ast.Stmt) {
	report := func(pos token.Pos, what string) {
		if !pass.Allowed(pos, "maporder") {
			pass.Reportf(pos, "%s inside range over map: map iteration order is randomized, so this is "+
				"order-dependent; iterate sorted keys instead, or annotate with //pipelayer:allow-maporder <reason>", what)
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n.Pos(), "channel send")
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok && isSliceType(pass.TypeOf(idx.X)) {
					report(n.Pos(), "write through a slice index")
				}
			}
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if isFloatType(pass.TypeOf(lhs)) && declaredOutside(pass, lhs, rs.Body) {
						report(n.Pos(), "float accumulation into an outer variable")
					}
				}
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
						continue
					}
					dst := n.Lhs[i]
					if declaredOutside(pass, dst, rs.Body) && !sortedAfter(pass, dst, rs, enclosing) {
						report(n.Pos(), "append to an outer slice")
					}
				}
			}
		}
		return true
	})
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if pass.TypesInfo == nil {
		return true
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// declaredOutside reports whether the root identifier of expr names a
// variable declared outside the given node (so writes to it survive the
// loop). Unresolvable expressions count as outside — better a false
// positive with an escape hatch than a silent miss.
func declaredOutside(pass *Pass, expr ast.Expr, within ast.Node) bool {
	id := rootIdent(expr)
	if id == nil || pass.TypesInfo == nil {
		return true
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return true
	}
	return obj.Pos() < within.Pos() || obj.Pos() > within.End()
}

// rootIdent digs the base identifier out of expr: s, s[i], s.f, *s.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether some statement after rs in the enclosing
// block passes dst to a function from package sort or slices — the
// collect-then-sort idiom that makes the append order irrelevant.
func sortedAfter(pass *Pass, dst ast.Expr, rs *ast.RangeStmt, enclosing []ast.Stmt) bool {
	dstID := rootIdent(dst)
	if dstID == nil || pass.TypesInfo == nil {
		return false
	}
	dstObj := pass.TypesInfo.ObjectOf(dstID)
	if dstObj == nil {
		return false
	}
	for _, stmt := range enclosing {
		if stmt.Pos() < rs.End() {
			continue // the loop itself and everything before it
		}
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch pass.PkgNameOf(pkgID) {
			case "sort", "slices":
			default:
				return true
			}
			for _, arg := range call.Args {
				if root := rootIdent(arg); root != nil && pass.TypesInfo.ObjectOf(root) == dstObj {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
