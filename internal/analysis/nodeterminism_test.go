package analysis_test

import (
	"testing"

	"pipelayer/internal/analysis"
	"pipelayer/internal/analysis/analysistest"
)

// TestNoDeterminism proves the analyzer fires on wall-clock reads and
// ambient randomness in hot-path packages, stays silent in cold packages,
// honors a reasoned //pipelayer:allow-nondeterminism, and rejects a bare
// one.
func TestNoDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.AnalyzerNoDeterminism, "nodet/internal/core", "nodet/cold")
}
