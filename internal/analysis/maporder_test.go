package analysis_test

import (
	"testing"

	"pipelayer/internal/analysis"
	"pipelayer/internal/analysis/analysistest"
)

// TestMapOrder proves the analyzer flags slice appends, slice index writes,
// float accumulation, and channel sends inside map-range bodies, while
// accepting the collect-keys-then-sort idiom, map-to-map copies, integer
// accumulation, and loop-local slices.
func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysis.AnalyzerMapOrder, "maporder")
}
