package analysis_test

import (
	"testing"

	"pipelayer/internal/analysis"
	"pipelayer/internal/analysis/analysistest"
)

// TestDrainProto proves spawn-allowlisted packages must still pair every go
// statement with a drain protocol: Add-before-go with a Done in the spawned
// function (literal, named method, or transitively), or a done-channel close
// that a Close/Wait method receives. The gospawn/internal/serve fixture pins
// the interaction with the spawn analyzer: a path gospawn exempts is exactly
// where drainproto takes over.
func TestDrainProto(t *testing.T) {
	analysistest.Run(t, analysis.AnalyzerDrainProto,
		"drainproto/internal/serve", "gospawn/internal/serve")
}
