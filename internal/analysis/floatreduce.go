package analysis

import (
	"go/ast"
	"go/token"
)

// AnalyzerFloatReduce flags floating-point accumulation into a captured
// variable inside a closure dispatched through internal/parallel. Float
// addition is not associative, so `sum += ...` across pool workers is both
// a data race and — even if locked — an order-dependent reduction that
// breaks bit-identity across worker counts. The sanctioned pattern is the
// one the hot paths already use: write per-chunk partials into disjoint
// slice slots and drain them in index order after the parallel section (or
// keep the arithmetic in the exact-integer domain where addition commutes).
// Escape hatch: //pipelayer:allow-floatreduce <reason>.
var AnalyzerFloatReduce = &Analyzer{
	Name: "floatreduce",
	Doc: "flag float accumulation into captured variables inside closures dispatched via " +
		"internal/parallel; use per-chunk partials drained in index order so reductions " +
		"stay bit-identical across worker counts",
	Run: runFloatReduce,
}

func runFloatReduce(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParallelDispatch(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if lit, ok := m.(*ast.FuncLit); ok {
						checkClosureReduction(pass, lit)
						return false // nested closures are checked relative to the outermost
					}
					return true
				})
			}
			return true
		})
	}
	return nil
}

// isParallelDispatch reports whether the call invokes a function or method
// defined in internal/parallel (Pool.For, Pool.Run, ...), resolved through
// type information so receivers and import aliases don't matter.
func isParallelDispatch(pass *Pass, call *ast.CallExpr) bool {
	if pass.TypesInfo == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return pathHasSuffixSegment(obj.Pkg().Path(), "internal/parallel")
}

// checkClosureReduction reports float accumulation into variables the
// closure captures from its environment.
func checkClosureReduction(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				if isFloatType(pass.TypeOf(lhs)) && capturedScalar(pass, lhs, lit) {
					reportFloatReduce(pass, as.Pos(), lhs)
				}
			}
		case token.ASSIGN:
			// x = x + y spelled out long-hand.
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) || !isFloatType(pass.TypeOf(lhs)) || !capturedScalar(pass, lhs, lit) {
					continue
				}
				if bin, ok := as.Rhs[i].(*ast.BinaryExpr); ok && sameVar(pass, lhs, bin.X) {
					switch bin.Op {
					case token.ADD, token.SUB, token.MUL, token.QUO:
						reportFloatReduce(pass, as.Pos(), lhs)
					}
				}
			}
		}
		return true
	})
}

func reportFloatReduce(pass *Pass, pos token.Pos, lhs ast.Expr) {
	if pass.Allowed(pos, "floatreduce") {
		return
	}
	name := "variable"
	if id := rootIdent(lhs); id != nil {
		name = id.Name
	}
	pass.Reportf(pos, "float accumulation into captured %s inside a closure dispatched via internal/parallel "+
		"is an order-dependent (and racy) reduction; write per-chunk partials into disjoint slots and drain "+
		"them in index order, or annotate with //pipelayer:allow-floatreduce <reason>", name)
}

// capturedScalar reports whether expr's root variable is declared outside
// the closure — i.e. shared state the workers would race on. Writes through
// a slice or map index (partials[w] += x) keep the root identifier's slots
// disjoint per worker, so only plain identifiers and field selectors count.
func capturedScalar(pass *Pass, expr ast.Expr, lit *ast.FuncLit) bool {
	switch expr.(type) {
	case *ast.IndexExpr:
		return false // per-slot write: the sanctioned partials pattern
	}
	return declaredOutside(pass, expr, lit)
}

func sameVar(pass *Pass, a, b ast.Expr) bool {
	ida, idb := rootIdent(a), rootIdent(b)
	if ida == nil || idb == nil || pass.TypesInfo == nil {
		return false
	}
	oa, ob := pass.TypesInfo.ObjectOf(ida), pass.TypesInfo.ObjectOf(idb)
	return oa != nil && oa == ob
}
