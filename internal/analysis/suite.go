package analysis

// Suite returns the full pipelayer analyzer suite in reporting order. One
// RunAnalyzers call over one package set is one consistent repo-wide view
// (the metricname duplicate index spans packages within a call).
func Suite() []*Analyzer {
	return []*Analyzer{
		AnalyzerNoDeterminism,
		AnalyzerMapOrder,
		AnalyzerFloatReduce,
		AnalyzerGoSpawn,
		AnalyzerSentinelCmp,
		AnalyzerMetricName,
	}
}
