package analysis

// Suite returns the full pipelayer analyzer suite in reporting order. One
// RunAnalyzers call over one package set is one consistent repo-wide view
// (the metricname duplicate index spans packages within a call). The first
// six are the determinism/telemetry generation; the last five are the
// concurrency-protocol generation built on the cfg.go dataflow core.
func Suite() []*Analyzer {
	return []*Analyzer{
		AnalyzerNoDeterminism,
		AnalyzerMapOrder,
		AnalyzerFloatReduce,
		AnalyzerGoSpawn,
		AnalyzerSentinelCmp,
		AnalyzerMetricName,
		AnalyzerCtxFlow,
		AnalyzerLockHold,
		AnalyzerDrainProto,
		AnalyzerAtomicMix,
		AnalyzerErrDrop,
	}
}
