package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerAtomicMix enforces the all-or-nothing rule of sync/atomic: a
// variable or field accessed through the atomic functions anywhere in a
// package may never be read or written non-atomically elsewhere in it. A
// single plain load racing atomic.AddUint64 is undefined behavior the race
// detector only catches when the interleaving happens to fire; the analyzer
// catches it on every run. It also guards the serving tier's rollover slots:
// a field of type atomic.Pointer[T] may only be touched through methods of
// the type that declares it, so Swap/Load discipline cannot be bypassed from
// free functions. Escape hatch: //pipelayer:allow-atomicmix <reason>.
var AnalyzerAtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "a field accessed via sync/atomic anywhere in a package must never be accessed non-atomically " +
		"elsewhere in it, and atomic.Pointer fields may only be used inside methods of their declaring type",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	atomicAt := make(map[string]token.Pos) // alias key → first atomic access site
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if target := atomicCallTarget(pass, call); target != nil {
				if k := ExprKey(pass.TypesInfo, target); k != "" {
					if _, seen := atomicAt[k]; !seen {
						atomicAt[k] = call.Pos()
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMixedAccess(pass, fd.Body, atomicAt)
			checkPointerSlots(pass, fd)
		}
	}
	return nil
}

// atomicCallTarget returns the expression whose address is passed to a
// sync/atomic function (atomic.AddUint64(&s.count, 1) → s.count), or nil if
// the call is not a sync/atomic function call.
func atomicCallTarget(pass *Pass, call *ast.CallExpr) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || pass.TypesInfo == nil {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil // atomic-typed methods are type-safe; the function API is the mixable one
	}
	if len(call.Args) == 0 {
		return nil
	}
	if addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && addr.Op == token.AND {
		return addr.X
	}
	return nil
}

// checkMixedAccess flags every plain (non-atomic) occurrence of an
// atomically-accessed key inside one function body. The arguments of atomic
// calls themselves are skipped.
func checkMixedAccess(pass *Pass, body *ast.BlockStmt, atomicAt map[string]token.Pos) {
	if len(atomicAt) == 0 {
		return
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && atomicCallTarget(pass, call) != nil {
				for _, arg := range call.Args[1:] {
					walk(arg) // later args (deltas, new values) are plain expressions
				}
				return false
			}
			expr, ok := m.(ast.Expr)
			if !ok {
				return true
			}
			switch expr.(type) {
			case *ast.SelectorExpr, *ast.Ident:
			default:
				return true
			}
			k := ExprKey(pass.TypesInfo, expr)
			if k == "" {
				return true
			}
			first, isAtomic := atomicAt[k]
			if !isAtomic {
				return true
			}
			if pass.Allowed(expr.Pos(), "atomicmix") {
				return false
			}
			pass.Reportf(expr.Pos(), "non-atomic access to %s, which is accessed via sync/atomic at %s: mixing plain and "+
				"atomic access is a data race the race detector only sees when the interleaving fires; use the atomic "+
				"API here too, or annotate with //pipelayer:allow-atomicmix <reason>",
				renderExpr(pass.Fset, expr), pass.Fset.Position(first))
			return false
		})
	}
	walk(body)
}

// checkPointerSlots enforces that method calls on an atomic.Pointer-typed
// field (s.slots[i].Load(), s.slot.Store(p)) only appear inside methods of
// the named type that owns the field.
func checkPointerSlots(pass *Pass, fd *ast.FuncDecl) {
	recvType := receiverNamed(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || pass.TypesInfo == nil {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !atomicRecvIsPointer(sig.Recv().Type()) {
			return true
		}
		owner := fieldOwnerNamed(pass, sel.X)
		if owner == nil || owner == recvType {
			return true
		}
		// Pre-publication exception: a chain rooted at a local the function
		// itself declared (a constructor's `s := &Server{...}`) has no
		// concurrent observers yet, so direct slot initialization is fine.
		if root := rootObject(pass.TypesInfo, sel.X); root != nil &&
			fd.Body.Pos() <= root.Pos() && root.Pos() <= fd.Body.End() {
			return true
		}
		if pass.Allowed(call.Pos(), "atomicmix") {
			return true
		}
		where := "a free function"
		if recvType != nil {
			where = "a method of " + recvType.Obj().Name()
		}
		pass.Reportf(call.Pos(), "atomic.Pointer slot %s touched from %s: rollover slots may only be accessed through "+
			"methods of %s so the Swap/Load discipline stays in one place, "+
			"or annotate with //pipelayer:allow-atomicmix <reason>",
			renderExpr(pass.Fset, sel.X), where, owner.Obj().Name())
		return true
	})
}

// receiverNamed returns the named type of fd's receiver, or nil for free
// functions.
func receiverNamed(pass *Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || pass.TypesInfo == nil {
		return nil
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// fieldOwnerNamed returns the named type at the root of a field chain
// (s.slots[i] → Server), or nil when the chain is rooted at a plain local —
// a local copy of a slice of slots is still backed by the owner's array, but
// attribution is the method that made the copy, which the analyzer already
// checked at the copy site.
func fieldOwnerNamed(pass *Pass, expr ast.Expr) *types.Named {
	if _, isSel := indexFree(expr).(*ast.SelectorExpr); !isSel {
		return nil // bare local (or copy): no field owner to attribute
	}
	obj := rootObject(pass.TypesInfo, expr)
	if obj == nil {
		return nil
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// indexFree strips index and paren layers so s.slots[i] exposes s.slots.
func indexFree(expr ast.Expr) ast.Expr {
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return expr
		}
	}
}

// atomicRecvIsPointer reports whether a sync/atomic method receiver is the
// generic Pointer type.
func atomicRecvIsPointer(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Pointer"
}
