package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerDrainProto requires every `go` statement in the spawn-allowlisted
// packages (internal/parallel, internal/serve, internal/shard,
// internal/online — the same list gospawn exempts) to be tracked by a drain
// protocol: either a sync.WaitGroup.Add call before the spawn whose Done runs
// in the spawned function, or a done-channel the goroutine closes/sends on
// that some Close/Wait method in the package receives from. An untracked
// goroutine is exactly how drain regresses silently — Close returns while a
// worker is still touching the backend, and the next Swap races it. The
// spawned function is searched transitively (three call levels deep, same
// package) so `go c.run(k)` patterns where run carries the defer wg.Done()
// are recognized. Escape hatch: //pipelayer:allow-drainproto <reason>.
var AnalyzerDrainProto = &Analyzer{
	Name: "drainproto",
	Doc: "every go statement in the spawn-allowlisted packages must be tracked by a WaitGroup.Add/Done " +
		"pair or a done-channel received from in a Close/Wait method, so drain protocols cannot silently regress",
	Run: runDrainProto,
}

func runDrainProto(pass *Pass) error {
	inScope := false
	for _, s := range spawnExemptPkgs {
		if pathHasSuffixSegment(pass.PkgPath, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	bodies := packageFuncBodies(pass)
	closeRecvKeys := drainCloseRecvKeys(pass)
	pkgDoneKeys := packageDoneKeys(pass)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if drainTracked(pass, fd, g, bodies, closeRecvKeys, pkgDoneKeys) {
					return true
				}
				if !pass.Allowed(g.Pos(), "drainproto") {
					pass.Reportf(g.Pos(), "untracked goroutine: no WaitGroup.Add before this go statement with a matching "+
						"Done in the spawned function, and no done-channel close/send received by a Close or Wait method; "+
						"an untracked goroutine outlives Close and races the next rollover — add the drain protocol "+
						"or annotate with //pipelayer:allow-drainproto <reason>")
				}
				return true
			})
		}
	}
	return nil
}

// packageFuncBodies indexes every function/method body in the package by its
// types.Func, so spawn targets like `go c.run(k)` can be searched.
func packageFuncBodies(pass *Pass) map[*types.Func]*ast.BlockStmt {
	bodies := make(map[*types.Func]*ast.BlockStmt)
	if pass.TypesInfo == nil {
		return bodies
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd.Body
			}
		}
	}
	return bodies
}

// drainCloseRecvKeys collects the alias keys of channels that a Close or Wait
// method in this package receives from (`<-x.done`, `range x.done`): closing
// or sending on one of these from a goroutine makes the goroutine's exit
// observable to the drain path.
func drainCloseRecvKeys(pass *Pass) map[string]bool {
	keys := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Close" && fd.Name.Name != "Wait" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						if k := ExprKey(pass.TypesInfo, n.X); k != "" {
							keys[k] = true
						}
					}
				case *ast.RangeStmt:
					if isChanType(pass.TypeOf(n.X)) {
						if k := ExprKey(pass.TypesInfo, n.X); k != "" {
							keys[k] = true
						}
					}
				}
				return true
			})
		}
	}
	return keys
}

// packageDoneKeys collects the alias keys of every WaitGroup that has a
// Done() call anywhere in the package — the fallback pairing check when a
// spawn target's body is outside the package.
func packageDoneKeys(pass *Pass) map[string]bool {
	keys := make(map[string]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, name, ok := waitGroupCall(pass, call); ok && name == "Done" {
				keys[key] = true
			}
			return true
		})
	}
	return keys
}

// waitGroupCall recognizes a sync.WaitGroup method call and returns the
// receiver's alias key and the method name.
func waitGroupCall(pass *Pass, call *ast.CallExpr) (key, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || pass.TypesInfo == nil {
		return "", "", false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	base := recv.Type()
	if p, isPtr := base.(*types.Pointer); isPtr {
		base = p.Elem()
	}
	named, isNamed := base.(*types.Named)
	if !isNamed || named.Obj().Name() != "WaitGroup" {
		return "", "", false
	}
	k := ExprKey(pass.TypesInfo, sel.X)
	if k == "" {
		return "", "", false
	}
	return k, fn.Name(), true
}

// drainTracked decides whether one go statement carries a recognizable drain
// protocol.
func drainTracked(pass *Pass, fd *ast.FuncDecl, g *ast.GoStmt, bodies map[*types.Func]*ast.BlockStmt,
	closeRecvKeys, pkgDoneKeys map[string]bool) bool {
	// WaitGroup keys Add'ed in the enclosing function before the spawn. The
	// positional check matches the mandatory idiom: Add must happen-before
	// the go statement, never inside the goroutine (that ordering is the
	// classic lost-Add race).
	addKeys := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, name, ok := waitGroupCall(pass, call); ok && name == "Add" && call.Pos() < g.Pos() {
			addKeys[key] = true
		}
		return true
	})

	target := spawnTargetBody(pass, g, bodies)
	if target == nil {
		// Spawn target outside the package (or dynamic): accept the spawn if
		// some Add'ed WaitGroup has a Done anywhere in the package.
		for k := range addKeys {
			if pkgDoneKeys[k] {
				return true
			}
		}
		return false
	}
	return drainSignalIn(pass, target, addKeys, closeRecvKeys, bodies, make(map[*ast.BlockStmt]bool), 3)
}

// spawnTargetBody resolves the body the spawned goroutine executes: a
// function literal's own body, or the body of a same-package function/method.
func spawnTargetBody(pass *Pass, g *ast.GoStmt, bodies map[*types.Func]*ast.BlockStmt) *ast.BlockStmt {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return bodies[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return bodies[fn]
		}
	}
	return nil
}

// drainSignalIn searches body (and, transitively, same-package callees up to
// the given depth) for a completion signal: Done() on an Add'ed WaitGroup, or
// close/send on a channel a Close/Wait method receives from.
func drainSignalIn(pass *Pass, body *ast.BlockStmt, addKeys, closeRecvKeys map[string]bool,
	bodies map[*types.Func]*ast.BlockStmt, visited map[*ast.BlockStmt]bool, depth int) bool {
	if body == nil || visited[body] {
		return false
	}
	visited[body] = true
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if k := ExprKey(pass.TypesInfo, n.Chan); k != "" && closeRecvKeys[k] {
				found = true
			}
		case *ast.CallExpr:
			if key, name, ok := waitGroupCall(pass, n); ok && name == "Done" && addKeys[key] {
				found = true
				return false
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					if k := ExprKey(pass.TypesInfo, n.Args[0]); k != "" && closeRecvKeys[k] {
						found = true
						return false
					}
				}
			}
			if depth > 0 {
				var fn *types.Func
				switch f := ast.Unparen(n.Fun).(type) {
				case *ast.Ident:
					fn, _ = pass.TypesInfo.Uses[f].(*types.Func)
				case *ast.SelectorExpr:
					fn, _ = pass.TypesInfo.Uses[f.Sel].(*types.Func)
				}
				if fn != nil {
					if callee := bodies[fn]; callee != nil &&
						drainSignalIn(pass, callee, addKeys, closeRecvKeys, bodies, visited, depth-1) {
						found = true
						return false
					}
				}
			}
		}
		return !found
	})
	return found
}
