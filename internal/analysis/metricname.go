package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"sync"
)

// metricNameRE is the telemetry namespace grammar: lower_snake_case, no
// leading digit or underscore. Labels are appended at runtime by
// telemetry.Name, so only the base name is constrained.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// registryInstruments maps the telemetry.Registry constructor methods to
// the instrument kind they register under a name.
var registryInstruments = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"Histogram": "histogram",
	"Span":      "span",
}

// flightEventMethods are the flight.Recorder methods that mint event names
// (the name is the first argument on both). Event names share the telemetry
// grammar so traces, histograms, and grep agree on one namespace, but they
// do not join the instrument-kind index: an event is not an instrument.
var flightEventMethods = map[string]bool{
	"Record":   true,
	"RecordAt": true,
}

// metricSeen is the repo-wide duplicate index: one RunAnalyzers call sees
// every package, so a name registered as two different instrument kinds
// anywhere in the tree is caught even across package boundaries.
var metricSeen struct {
	mu     sync.Mutex
	byName map[string]metricUse
}

type metricUse struct {
	kind string
	site string // "file:line" of the first registration
}

// resetSuiteState clears cross-package analyzer state; RunAnalyzers calls
// it so each run is one consistent repo-wide view.
func resetSuiteState() {
	metricSeen.mu.Lock()
	metricSeen.byName = make(map[string]metricUse)
	metricSeen.mu.Unlock()
}

// AnalyzerMetricName enforces the telemetry namespace at every call site:
// metric/span names must be compile-time string constants matching
// ^[a-z][a-z0-9_]*$ (so dashboards, the Prometheus exporter, and grep all
// agree on the universe of names), and one name must not be registered as
// two different instrument kinds anywhere in the repo. The same constant
// lower_snake_case rule covers flight-recorder event sites
// (Recorder.Record / Recorder.RecordAt): variable detail belongs in the
// event's Arg, never in its name. Names may be passed through
// telemetry.Name(base, labels); the base is checked at the Name call site.
// Escape hatch for deliberate indirection (a helper forwarding a name
// parameter): //pipelayer:allow-metricname <reason>.
var AnalyzerMetricName = &Analyzer{
	Name: "metricname",
	Doc: "telemetry metric/span and flight-recorder event names must be " +
		"^[a-z][a-z0-9_]*$ compile-time string constants at the call site, and a metric " +
		"name must not be registered as two different instrument kinds anywhere in the repo",
	Run: runMetricName,
}

func runMetricName(pass *Pass) error {
	// The registry's and recorder's own internals (reporters, exporters,
	// name plumbing) pass names through variables by design; the invariant
	// governs the call sites that *mint* names, not the packages that
	// store them.
	if pathHasSuffixSegment(pass.PkgPath, "internal/telemetry") ||
		pathHasSuffixSegment(pass.PkgPath, "internal/telemetry/flight") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			kind, isName := telemetryCallKind(pass, call)
			if kind == "" && !isName && !isFlightEventCall(pass, call) {
				return true
			}
			arg := call.Args[0]
			name, isConst := constantString(pass, arg)
			switch {
			case isConst:
				if !metricNameRE.MatchString(name) {
					if !pass.Allowed(arg.Pos(), "metricname") {
						pass.Reportf(arg.Pos(), "telemetry name %q does not match ^[a-z][a-z0-9_]*$ "+
							"(lower_snake_case, no leading digit)", name)
					}
					return true
				}
				if kind != "" {
					recordMetricUse(pass, arg, name, kind)
				}
			case isTelemetryNameCall(pass, arg):
				// telemetry.Name(base, labels): the base constant is checked
				// when the walker reaches the inner call.
			default:
				if !pass.Allowed(arg.Pos(), "metricname") {
					pass.Reportf(arg.Pos(), "telemetry name is not a compile-time constant, so the metric "+
						"namespace can't be audited statically; pass a string literal (optionally via "+
						"telemetry.Name) or annotate with //pipelayer:allow-metricname <reason>")
				}
			}
			return true
		})
	}
	return nil
}

// telemetryCallKind classifies a call: an instrument-registering Registry
// method returns its kind, a telemetry.Name call returns isName.
func telemetryCallKind(pass *Pass, call *ast.CallExpr) (kind string, isName bool) {
	if pass.TypesInfo == nil {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !pathHasSuffixSegment(fn.Pkg().Path(), "internal/telemetry") {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() != nil {
		k, ok := registryInstruments[fn.Name()]
		if !ok {
			return "", false
		}
		return k, false
	}
	return "", fn.Name() == "Name"
}

// isFlightEventCall reports whether call is a flight.Recorder event site
// (Record/RecordAt), whose first argument is an event name bound by the
// same constant lower_snake_case rule as metric names.
func isFlightEventCall(pass *Pass, call *ast.CallExpr) bool {
	if pass.TypesInfo == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !pathHasSuffixSegment(fn.Pkg().Path(), "internal/telemetry/flight") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return flightEventMethods[fn.Name()]
}

func isTelemetryNameCall(pass *Pass, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	_, isName := telemetryCallKind(pass, call)
	return isName
}

// constantString returns the compile-time string value of expr (literal,
// named constant, or constant expression) if it has one.
func constantString(pass *Pass, expr ast.Expr) (string, bool) {
	if pass.TypesInfo == nil {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// recordMetricUse checks the repo-wide kind index: registering one name as
// two different instrument kinds corrupts the exported namespace (the
// Prometheus reporter would emit conflicting series).
func recordMetricUse(pass *Pass, arg ast.Expr, name, kind string) {
	site := pass.Fset.Position(arg.Pos()).String()
	metricSeen.mu.Lock()
	defer metricSeen.mu.Unlock()
	if metricSeen.byName == nil {
		metricSeen.byName = make(map[string]metricUse)
	}
	prev, ok := metricSeen.byName[name]
	if !ok {
		metricSeen.byName[name] = metricUse{kind: kind, site: site}
		return
	}
	if prev.kind != kind {
		pass.Reportf(arg.Pos(), "telemetry name %q registered as %s here but as %s at %s; "+
			"one name must map to one instrument kind repo-wide", name, kind, prev.kind, prev.site)
	}
}
