package analysis_test

import (
	"testing"

	"pipelayer/internal/analysis"
	"pipelayer/internal/analysis/analysistest"
)

// TestFloatReduce proves the analyzer flags shared-float accumulation
// (compound and long-hand) inside closures dispatched through the real
// internal/parallel pool, while accepting the per-chunk-partials pattern
// and closure-local accumulators.
func TestFloatReduce(t *testing.T) {
	analysistest.Run(t, analysis.AnalyzerFloatReduce, "floatreduce")
}
