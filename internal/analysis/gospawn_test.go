package analysis_test

import (
	"testing"

	"pipelayer/internal/analysis"
	"pipelayer/internal/analysis/analysistest"
)

// TestGoSpawn proves the analyzer forbids raw go statements in ordinary
// packages, exempts internal/parallel-shaped and cmd/-shaped import paths,
// and enforces the reason on //pipelayer:allow-spawn.
func TestGoSpawn(t *testing.T) {
	analysistest.Run(t, analysis.AnalyzerGoSpawn,
		"gospawn/app", "gospawn/internal/parallel", "gospawn/cmd/app")
}
