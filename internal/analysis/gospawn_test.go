package analysis_test

import (
	"testing"

	"pipelayer/internal/analysis"
	"pipelayer/internal/analysis/analysistest"
)

// TestGoSpawn proves the analyzer forbids raw go statements in ordinary
// packages, exempts internal/parallel-, internal/shard- and cmd/-shaped
// import paths, enforces the reason on //pipelayer:allow-spawn, and still
// flags a package merely *named* shard outside internal/ (the exemption
// matches path segments, not package names).
func TestGoSpawn(t *testing.T) {
	analysistest.Run(t, analysis.AnalyzerGoSpawn,
		"gospawn/app", "gospawn/internal/parallel", "gospawn/internal/shard",
		"gospawn/shard", "gospawn/cmd/app")
}
