package analysis_test

import (
	"testing"

	"pipelayer/internal/analysis"
	"pipelayer/internal/analysis/analysistest"
)

// TestCtxFlow proves the analyzer flags context.Background()/TODO() in
// request-path-shaped packages (with the add-a-parameter vs thread-the-
// parameter hints), honors the reasoned escape hatch, rejects a bare
// directive, and stays silent in ordinary packages.
func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysis.AnalyzerCtxFlow,
		"ctxflow/internal/serve", "ctxflow/app")
}
