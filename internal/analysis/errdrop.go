package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// errdropSentinels names the backpressure/lifecycle sentinels whose loss
// breaks the serving tier end-to-end: a dropped ErrOverloaded means the load
// shedder upstream never learns the queue is full; a dropped ErrClosed means
// a caller keeps submitting into a drained server; a dropped ErrWriteFailed
// means a ReRAM write fault vanishes instead of triggering remap. Any
// function whose package declares one of these is treated as a carrier.
var errdropSentinels = []string{"ErrOverloaded", "ErrClosed", "ErrWriteFailed"}

// AnalyzerErrDrop forbids discarding the error from a sentinel-carrying call
// — `_ = srv.Predict(...)` or a bare `c.Close()` expression statement — when
// the callee's package declares ErrOverloaded, ErrClosed, or ErrWriteFailed.
// Backpressure only works if every hop propagates it; one `_ =` turns bounded
// admission into silent loss. Deferred calls are exempt (defer cannot
// propagate anyway; cleanup-path errors are reported through the primary
// return). Escape hatch: //pipelayer:allow-errdrop <reason>.
var AnalyzerErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "forbid discarding errors (`_ =` or bare call statement) from calls whose package declares the " +
		"ErrOverloaded/ErrClosed/ErrWriteFailed sentinels; backpressure must propagate, not vanish",
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, ok := ast.Unparen(n.X).(*ast.CallExpr)
					if !ok {
						return true
					}
					fn, sentinels := carrierCallee(pass, call)
					if fn == nil {
						return true
					}
					if pass.Allowed(call.Pos(), "errdrop") {
						return true
					}
					pass.Reportf(call.Pos(), "result of %s discarded: it can return %s, and dropping it breaks "+
						"backpressure propagation; handle or return the error, "+
						"or annotate with //pipelayer:allow-errdrop <reason>",
						fn.Name(), strings.Join(sentinels, "/"))
				case *ast.AssignStmt:
					checkAssignDrop(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

// checkAssignDrop flags `_` in the error position of a carrier call's
// results: `_ = c.Close()` and `out, _ := c.Forward(xs)` both lose the
// sentinel.
func checkAssignDrop(pass *Pass, as *ast.AssignStmt) {
	report := func(call *ast.CallExpr, fn *types.Func, sentinels []string) {
		if pass.Allowed(call.Pos(), "errdrop") {
			return
		}
		pass.Reportf(call.Pos(), "error from %s assigned to _: it can return %s, and dropping it breaks "+
			"backpressure propagation; handle or return the error, "+
			"or annotate with //pipelayer:allow-errdrop <reason>",
			fn.Name(), strings.Join(sentinels, "/"))
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// out, err := f(): one call, results map positionally to the Lhs.
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn, sentinels := carrierCallee(pass, call)
		if fn == nil {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Results().Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && isErrorType(sig.Results().At(i).Type()) {
				report(call, fn, sentinels)
				return
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn, sentinels := carrierCallee(pass, call)
		if fn == nil {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type()) {
			report(call, fn, sentinels)
		}
	}
}

// carrierCallee resolves call's static callee and, when the callee returns an
// error and its package declares one of the errdrop sentinels as a
// package-level error variable, returns the callee and the sorted sentinel
// names. Otherwise (nil, nil). Only same-module packages count as carriers:
// the standard library also declares an ErrClosed (os, net, io/fs), but those
// are ordinary cleanup errors, not the serving tier's backpressure signals.
func carrierCallee(pass *Pass, call *ast.CallExpr) (*types.Func, []string) {
	if pass.TypesInfo == nil {
		return nil, nil
	}
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return nil, nil
	}
	if firstPathSegment(fn.Pkg().Path()) != firstPathSegment(pass.PkgPath) {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !signatureReturnsError(sig) {
		return nil, nil
	}
	scope := fn.Pkg().Scope()
	var found []string
	for _, name := range errdropSentinels {
		if v, ok := scope.Lookup(name).(*types.Var); ok && isErrorType(v.Type()) {
			found = append(found, name)
		}
	}
	if len(found) == 0 {
		return nil, nil
	}
	sort.Strings(found)
	return fn, found
}

func signatureReturnsError(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// firstPathSegment returns the import path's leading segment ("pipelayer" for
// pipelayer/internal/serve), the cheap same-module test that works for both
// the repo and fixture package trees.
func firstPathSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}
