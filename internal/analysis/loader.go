package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked compilation unit ready for analysis.
// Only the production (non-test) files are loaded: the suite's invariants
// govern hot-path and library code, while the test tree is exercised by the
// race detector and `go test -shuffle=on` instead.
type Package struct {
	PkgPath    string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	TypeErrors []error

	directives map[string]map[int][]directive
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` for the given patterns in dir
// and returns the decoded package stream. -export compiles (from the build
// cache when warm) and records export data for every listed package, which
// is what lets the type checker resolve imports without golang.org/x/tools
// and without network access.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		q := p
		pkgs = append(pkgs, &q)
	}
	return pkgs, nil
}

// exportResolver maps import paths to toolchain export-data files and lazily
// runs `go list` for paths it has not seen yet (fixture packages import
// std and module packages that the initial pattern load may not cover).
type exportResolver struct {
	dir     string // module directory go list runs in
	mu      sync.Mutex
	exports map[string]string
}

func newExportResolver(dir string) *exportResolver {
	return &exportResolver{dir: dir, exports: make(map[string]string)}
}

func (r *exportResolver) add(pkgs []*listedPackage) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			r.exports[p.ImportPath] = p.Export
		}
	}
}

// lookup implements the go/importer lookup contract: return a reader for
// the export data of path.
func (r *exportResolver) lookup(path string) (io.ReadCloser, error) {
	r.mu.Lock()
	file, ok := r.exports[path]
	r.mu.Unlock()
	if !ok {
		pkgs, err := goList(r.dir, path)
		if err != nil {
			return nil, fmt.Errorf("resolving import %q: %v", path, err)
		}
		r.add(pkgs)
		r.mu.Lock()
		file, ok = r.exports[path]
		r.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(file)
}

// A Loader loads and type-checks packages for analysis. One Loader shares a
// FileSet and an export-data cache across every package it loads.
type Loader struct {
	Dir string // module root (where go list runs); "" means "."
	// CacheDir, when non-empty, persists the `go list -deps -export` output
	// between runs, keyed on go.mod/go.sum content plus the toolchain
	// version and the patterns. The list step dominates a warm analyze run
	// (it walks the whole module graph), so CI points this at a cached
	// directory. A cache entry is only trusted while every export-data file
	// it references still exists; a pruned build cache is a miss, never a
	// wrong answer.
	CacheDir string
	fset     *token.FileSet
	resolver *exportResolver
	imp      types.Importer
	once     sync.Once
}

func (l *Loader) init() {
	l.once.Do(func() {
		if l.Dir == "" {
			l.Dir = "."
		}
		l.fset = token.NewFileSet()
		l.resolver = newExportResolver(l.Dir)
		l.imp = importer.ForCompiler(l.fset, "gc", l.resolver.lookup)
	})
}

// Load loads the module packages matching the go list patterns (for example
// "./..."), type-checks each against toolchain export data, and returns
// them sorted by import path. Packages that fail to list (for example
// syntax errors) surface as an error; type errors inside an otherwise
// loadable package are recorded on the Package so analyzers can still run.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.init()
	listed, err := l.listPackages(patterns...)
	if err != nil {
		return nil, err
	}
	l.resolver.add(listed)
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s uses cgo, which pipelayer-vet does not analyze", lp.ImportPath)
		}
		var files []string
		for _, g := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, g))
		}
		pkg, err := l.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// listPackages is goList behind the optional on-disk cache.
func (l *Loader) listPackages(patterns ...string) ([]*listedPackage, error) {
	if l.CacheDir == "" {
		return goList(l.Dir, patterns...)
	}
	key, err := l.cacheKey(patterns)
	if err != nil {
		// An unkeyable module (unreadable go.mod) falls back to a live list.
		return goList(l.Dir, patterns...)
	}
	path := filepath.Join(l.CacheDir, key+".json")
	if cached, err := readListCache(path); err == nil {
		return cached, nil
	}
	listed, err := goList(l.Dir, patterns...)
	if err != nil {
		return nil, err
	}
	if err := writeListCache(path, listed); err != nil {
		return listed, nil // cache write failure is not a load failure
	}
	return listed, nil
}

// cacheKey hashes everything that can change the list result: module files
// (go.mod, and go.sum when present — a zero-dependency module has none),
// toolchain version, module dir, the patterns, and a stat fingerprint
// (path, mtime, size) of every .go file in the module — an edited source
// must change the key, or importers would type-check against its stale
// export data. Stat-ing the tree is microseconds against the seconds a cold
// `go list -export` compile costs.
func (l *Loader) cacheKey(patterns []string) (string, error) {
	h := sha256.New()
	mod, err := os.ReadFile(filepath.Join(l.Dir, "go.mod"))
	if err != nil {
		return "", err
	}
	h.Write(mod)
	if sum, err := os.ReadFile(filepath.Join(l.Dir, "go.sum")); err == nil {
		h.Write(sum)
	}
	abs, err := filepath.Abs(l.Dir)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(h, "|%s|%s|%s", runtime.Version(), abs, strings.Join(patterns, "\x00"))
	err = filepath.WalkDir(l.Dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		fmt.Fprintf(h, "|%s:%d:%d", path, info.ModTime().UnixNano(), info.Size())
		return nil
	})
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil))[:32], nil
}

// readListCache loads a cached listing and validates it: every referenced
// file (sources and export data) must still exist, otherwise the entry is a
// miss. Source staleness is covered by the key (go.mod/go.sum) plus the
// export-data paths: `go list -export` names content-addressed build-cache
// entries, so an edited source file lists to a different Export path, and
// the old entry's paths stay valid only while the build cache retains them.
func readListCache(path string) ([]*listedPackage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var pkgs []*listedPackage
	if err := json.Unmarshal(data, &pkgs); err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Export != "" {
			if _, err := os.Stat(p.Export); err != nil {
				return nil, fmt.Errorf("stale cache: %s gone", p.Export)
			}
		}
		if !p.Standard && !p.DepOnly {
			for _, g := range p.GoFiles {
				if _, err := os.Stat(filepath.Join(p.Dir, g)); err != nil {
					return nil, fmt.Errorf("stale cache: %s gone", g)
				}
			}
		}
	}
	return pkgs, nil
}

func writeListCache(path string, pkgs []*listedPackage) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(pkgs)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadDir loads a single directory as the package with the given import
// path, ignoring _test.go files. It is the entry point the analysistest
// fixture runner uses: fixture directories live under testdata and are
// invisible to go list, but their imports still resolve through the shared
// export-data cache.
func (l *Loader) LoadDir(pkgPath, dir string) (*Package, error) {
	l.init()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(pkgPath, dir, files)
}

// check parses and type-checks one package from source. Type errors are
// collected rather than fatal: an analyzer sees whatever type information
// survived, which keeps the suite useful on a tree that is mid-refactor.
func (l *Loader) check(pkgPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", fn, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		TypesInfo: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
		directives: parseDirectives(l.fset, files),
	}
	if len(files) > 0 {
		pkg.Name = files[0].Name.Name
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkgPath, l.fset, files, pkg.TypesInfo)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
