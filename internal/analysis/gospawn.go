package analysis

import (
	"go/ast"
)

// spawnExemptPkgs may use raw go statements: the worker pool, the serving
// layer, the shard-chain pipeline, and the online-training supervisor are
// the sanctioned concurrency owners, and cmd binaries own their process
// lifetime.
var spawnExemptPkgs = []string{
	"internal/parallel",
	"internal/serve",
	"internal/shard",
	"internal/online",
}

// AnalyzerGoSpawn forbids raw `go` statements outside internal/parallel,
// internal/serve, internal/shard, internal/online, and cmd/. Everything else
// must dispatch through the pool so fan-out stays bounded, deterministic
// where required, and leak-checked. Escape hatch:
// //pipelayer:allow-spawn <reason>.
var AnalyzerGoSpawn = &Analyzer{
	Name: "spawn",
	Doc: "forbid raw go statements outside internal/parallel, internal/serve, internal/shard, internal/online, and cmd/ " +
		"so all fan-out stays pool-governed and leak-checked",
	Run: runGoSpawn,
}

func runGoSpawn(pass *Pass) error {
	for _, s := range spawnExemptPkgs {
		if pathHasSuffixSegment(pass.PkgPath, s) {
			return nil
		}
	}
	if pathHasSegment(pass.PkgPath, "cmd") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !pass.Allowed(g.Pos(), "spawn") {
				pass.Reportf(g.Pos(), "raw go statement outside internal/parallel, internal/serve, internal/shard, internal/online, and cmd/; "+
					"dispatch through parallel.Pool so fan-out stays bounded and leak-checked, "+
					"or annotate with //pipelayer:allow-spawn <reason>")
			}
			return true
		})
	}
	return nil
}
