package analysis_test

import (
	"testing"

	"pipelayer/internal/analysis"
	"pipelayer/internal/analysis/analysistest"
)

// TestMetricName proves the analyzer validates the lower_snake_case
// grammar on literals, named constants, and telemetry.Name bases, flags
// non-constant names, enforces the annotation reason, and catches one name
// registered as two instrument kinds.
func TestMetricName(t *testing.T) {
	analysistest.Run(t, analysis.AnalyzerMetricName, "metricname")
}

// TestMetricNameFlight proves the analyzer extends the same constant
// lower_snake_case rule to flight-recorder event sites (Record/RecordAt)
// while leaving display-only methods like SetTrackName unconstrained.
func TestMetricNameFlight(t *testing.T) {
	analysistest.Run(t, analysis.AnalyzerMetricName, "flightname")
}
