// Package analysis is pipelayer's static-analysis framework: a small,
// dependency-free core modeled on golang.org/x/tools/go/analysis plus the
// project-specific analyzers that machine-enforce the repo's determinism,
// telemetry, and error-handling invariants.
//
// The repo's correctness story rests on invariants no stock linter checks:
// bit-identical results across worker counts, seedable fault draws with no
// ambient randomness, ordered float reductions, pool-governed goroutine
// fan-out, errors.Is sentinel flow, and a disciplined telemetry namespace.
// The analyzers here enforce them at analysis time so later refactors cannot
// silently break them.
//
// Why not depend on golang.org/x/tools directly? The module is deliberately
// zero-dependency and must build hermetically (no module proxy at build
// time), so this package reimplements the thin slice of the go/analysis API
// the suite needs — Analyzer, Pass, Diagnostic, an analysistest-style
// fixture runner — on the standard library's go/ast + go/types, with
// imports resolved from toolchain export data (see loader.go). The API
// mirrors go/analysis closely enough that migrating to the real framework
// is mechanical should the dependency policy change.
//
// Escape hatch: a finding on line N is suppressed by a directive comment on
// line N or line N-1 of the form
//
//	//pipelayer:allow-<check> <reason>
//
// where <check> is the analyzer name (e.g. allow-nondeterminism,
// allow-spawn for gospawn) and <reason> is mandatory free text. A directive
// without a reason suppresses nothing and is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass and how to run it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the
	// //pipelayer:allow-<name> escape-hatch directive. It must be a valid
	// lower-case identifier.
	Name string

	// Doc is the one-paragraph help text shown by pipelayer-vet -list.
	Doc string

	// Run applies the analyzer to one package and reports findings via
	// pass.Report / pass.Reportf.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass provides one analyzer run over one package: the syntax trees, the
// type information, and the sink for diagnostics. It mirrors
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the package's import path (types.Package.Path may be
	// empty for fixture packages loaded outside the module graph).
	PkgPath string

	pkg      *Package
	report   func(Diagnostic)
	reported map[token.Pos]bool // missing-reason directives already reported
}

// Report emits one diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if not available (for
// example when the expression did not type-check).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// PkgNameOf resolves an identifier to the import path of the package it
// names, or "" if the identifier is not a package name. This is how the
// analyzers see through import aliases (`import r "math/rand"`).
func (p *Pass) PkgNameOf(id *ast.Ident) string {
	if p.TypesInfo == nil {
		return ""
	}
	if pn, ok := p.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// directive is one parsed //pipelayer:allow-<check> comment.
type directive struct {
	check  string
	reason string
	pos    token.Pos
}

var directiveRE = regexp.MustCompile(`^//pipelayer:allow-([a-z]+)(?:[ \t]+(.*))?$`)

// parseDirectives builds the file → line → directives index for a package.
// A directive suppresses findings on its own line and on the line below it
// (the usual "annotation above the statement" style).
func parseDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]directive {
	idx := make(map[string]map[int][]directive)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]directive)
					idx[pos.Filename] = byLine
				}
				reason := strings.TrimSpace(m[2])
				// In analysistest fixtures a directive and a `// want`
				// expectation share one line comment; the expectation is
				// not part of the reason.
				if i := strings.Index(reason, "// want"); i >= 0 {
					reason = strings.TrimSpace(reason[:i])
				}
				d := directive{check: m[1], reason: reason, pos: c.Pos()}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
	return idx
}

// Allowed reports whether a finding of the named check at pos is suppressed
// by an escape-hatch directive on the same line or the line above. A
// directive with an empty reason never suppresses; instead it is reported
// once as its own finding, so the escape hatch stays auditable.
func (p *Pass) Allowed(pos token.Pos, check string) bool {
	if p.pkg == nil {
		return false
	}
	position := p.Fset.Position(pos)
	byLine := p.pkg.directives[position.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{position.Line, position.Line - 1} {
		for _, d := range byLine[line] {
			if d.check != check {
				continue
			}
			if d.reason == "" {
				if !p.reported[d.pos] {
					p.reported[d.pos] = true
					p.Reportf(d.pos, "//pipelayer:allow-%s directive needs a reason (\"//pipelayer:allow-%s <why>\")", check, check)
				}
				continue
			}
			return true
		}
	}
	return false
}

// RunAnalyzers applies each analyzer to each package and returns the merged
// diagnostics sorted by position then analyzer name. Package-spanning state
// (the metricname duplicate index) is reset at the start of every call, so
// one RunAnalyzers call is one consistent repo-wide view.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	resetSuiteState()
	var diags []Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				PkgPath:   pkg.PkgPath,
				pkg:       pkg,
				reported:  make(map[token.Pos]bool),
			}
			pass.report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	if fset != nil {
		sort.SliceStable(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			if pi.Column != pj.Column {
				return pi.Column < pj.Column
			}
			return diags[i].Analyzer < diags[j].Analyzer
		})
	}
	return diags, nil
}

// pathHasSuffixSegment reports whether path ends with the given
// slash-separated suffix on a segment boundary: "pipelayer/internal/core"
// matches "internal/core" but "internal/score" does not.
func pathHasSuffixSegment(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// pathHasSegment reports whether any single path segment equals seg.
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
