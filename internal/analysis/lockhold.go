package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerLockHold forbids blocking operations while a sync.Mutex/RWMutex is
// held, and requires a consistent two-lock acquisition order within each
// package. It is CFG-based: per function (and function literal) it computes,
// by forward may-analysis over the control-flow graph, the set of locks that
// may be held at every program point, then flags any blocking operation —
// channel send/receive, range over a channel, select without a default,
// WaitGroup.Wait, Cond.Wait, or a backend Forward* call — reachable with a
// non-empty held set. A blocked goroutine that holds a lock stalls every
// other goroutine contending for it: in the serving tier that turns bounded
// backpressure (a full inbox) into a deadlock (Close waiting on a lock a
// wedged Forward holds). Deferred unlocks keep the lock held to function
// exit, exactly as at runtime. Escape hatch: //pipelayer:allow-lockhold
// <reason>.
var AnalyzerLockHold = &Analyzer{
	Name: "lockhold",
	Doc: "forbid blocking operations (channel ops, select without default, WaitGroup.Wait, Cond.Wait, " +
		"backend Forward* calls) while a sync.Mutex/RWMutex is held, and require one consistent " +
		"two-lock acquisition order per package",
	Run: runLockHold,
}

// lockEvent is one lock-relevant operation inside a block, in source order.
type lockEvent struct {
	pos     token.Pos
	kind    lockEventKind
	key     string // canonical lock key (acquire/release) — "" for blocking ops
	display string // source text for diagnostics
	what    string // blocking-op description
}

type lockEventKind int

const (
	evAcquire lockEventKind = iota
	evRelease
	evBlocking
)

// lockOrderEdge records "b was acquired while a was held" for the
// package-wide acquisition-order consistency check.
type lockOrderEdge struct {
	held, acquired string
}

func runLockHold(pass *Pass) error {
	orderSites := make(map[lockOrderEdge]token.Pos)
	display := make(map[string]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lockHoldFunc(pass, fd.Body, orderSites, display)
			// Each function literal runs on its own goroutine's stack (or at
			// least its own activation): analyze its body independently.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lockHoldFunc(pass, lit.Body, orderSites, display)
				}
				return true
			})
		}
	}
	reportLockOrderCycles(pass, orderSites, display)
	return nil
}

// lockHoldFunc runs the may-held dataflow over one function body and reports
// blocking operations under a held lock plus the acquisition-order edges.
func lockHoldFunc(pass *Pass, body *ast.BlockStmt, orderSites map[lockOrderEdge]token.Pos, display map[string]string) {
	g := BuildCFG(body)
	events := make(map[*Block][]lockEvent)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			events[b] = append(events[b], collectLockEvents(pass, g, n)...)
		}
		sort.SliceStable(events[b], func(i, j int) bool { return events[b][i].pos < events[b][j].pos })
	}
	transfer := func(b *Block, in map[string]bool) map[string]bool {
		out := make(map[string]bool, len(in))
		for k := range in {
			out[k] = true
		}
		for _, ev := range events[b] {
			switch ev.kind {
			case evAcquire:
				out[ev.key] = true
			case evRelease:
				delete(out, ev.key)
			}
		}
		return out
	}
	ins := g.ForwardMay(transfer)
	for b, in := range ins {
		held := make(map[string]bool, len(in))
		for k := range in {
			held[k] = true
		}
		for _, ev := range events[b] {
			switch ev.kind {
			case evAcquire:
				for h := range held {
					if h == ev.key {
						continue // same protocol key: re-entry across instances, not an order edge
					}
					edge := lockOrderEdge{held: h, acquired: ev.key}
					if _, ok := orderSites[edge]; !ok {
						orderSites[edge] = ev.pos
					}
				}
				held[ev.key] = true
				if _, ok := display[ev.key]; !ok {
					display[ev.key] = ev.display
				}
			case evRelease:
				delete(held, ev.key)
			case evBlocking:
				if len(held) == 0 {
					continue
				}
				if pass.Allowed(ev.pos, "lockhold") {
					continue
				}
				names := make([]string, 0, len(held))
				for k := range held {
					d := display[k]
					if d == "" {
						d = k
					}
					names = append(names, d)
				}
				sort.Strings(names)
				pass.Reportf(ev.pos, "%s while holding %s: a blocked goroutine that holds a lock turns backpressure "+
					"into deadlock; release the lock before blocking, or annotate with //pipelayer:allow-lockhold <reason>",
					ev.what, strings.Join(names, ", "))
			}
		}
	}
}

// collectLockEvents extracts the lock acquisitions/releases and blocking
// operations from one block node, in source order. Function literals are
// skipped (analyzed as their own functions), deferred calls are skipped
// (they run at return; a deferred Unlock therefore never releases mid-body,
// which is exactly the runtime semantics the dataflow wants), and select
// comm clauses are skipped (the select head owns their blocking behavior).
func collectLockEvents(pass *Pass, g *CFG, node ast.Node) []lockEvent {
	var evs []lockEvent
	if g.SelectComm[node] {
		return nil
	}
	if expr, ok := node.(ast.Expr); ok && g.RangeX[expr] {
		if isChanType(pass.TypeOf(expr)) {
			evs = append(evs, lockEvent{pos: expr.Pos(), kind: evBlocking, what: "range over a channel"})
		}
		return evs
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				evs = append(evs, lockEvent{pos: n.Pos(), kind: evBlocking, what: "select without a default case"})
			}
			return false // clause internals belong to other blocks
		case *ast.SendStmt:
			evs = append(evs, lockEvent{pos: n.Pos(), kind: evBlocking, what: "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				evs = append(evs, lockEvent{pos: n.Pos(), kind: evBlocking, what: "channel receive"})
			}
		case *ast.CallExpr:
			if ev, ok := classifyLockCall(pass, n); ok {
				evs = append(evs, ev)
			}
		}
		return true
	})
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// classifyLockCall recognizes mutex acquire/release and the blocking calls
// (WaitGroup.Wait, Cond.Wait, backend Forward*).
func classifyLockCall(pass *Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || pass.TypesInfo == nil {
		return lockEvent{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return lockEvent{}, false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		switch fn.Name() {
		case "Lock", "RLock":
			key := ExprKey(pass.TypesInfo, sel.X)
			if key == "" {
				return lockEvent{}, false
			}
			return lockEvent{pos: call.Pos(), kind: evAcquire, key: key, display: renderExpr(pass.Fset, sel.X)}, true
		case "Unlock", "RUnlock":
			key := ExprKey(pass.TypesInfo, sel.X)
			if key == "" {
				return lockEvent{}, false
			}
			return lockEvent{pos: call.Pos(), kind: evRelease, key: key, display: renderExpr(pass.Fset, sel.X)}, true
		case "Wait":
			recv := fn.Type().(*types.Signature).Recv()
			if recv != nil {
				t := recv.Type().String()
				switch {
				case strings.HasSuffix(t, "sync.WaitGroup"):
					return lockEvent{pos: call.Pos(), kind: evBlocking, what: "sync.WaitGroup.Wait"}, true
				case strings.HasSuffix(t, "sync.Cond"):
					return lockEvent{pos: call.Pos(), kind: evBlocking, what: "sync.Cond.Wait"}, true
				}
			}
		}
		return lockEvent{}, false
	}
	// Backend forward calls block for as long as the pipeline takes (or until
	// backpressure clears): Forward / ForwardContext / the batch-compute
	// entry points must never run under a lock.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && strings.HasPrefix(fn.Name(), "Forward") {
		return lockEvent{pos: call.Pos(), kind: evBlocking, what: "backend " + fn.Name() + " call"}, true
	}
	return lockEvent{}, false
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// reportLockOrderCycles reports every pair of locks the package acquires in
// both orders: with A→B in one function and B→A in another, two goroutines
// can each hold one lock and wait forever for the other.
func reportLockOrderCycles(pass *Pass, orderSites map[lockOrderEdge]token.Pos, display map[string]string) {
	edges := make([]lockOrderEdge, 0, len(orderSites))
	for e := range orderSites {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].held != edges[j].held {
			return edges[i].held < edges[j].held
		}
		return edges[i].acquired < edges[j].acquired
	})
	for _, e := range edges {
		rev := lockOrderEdge{held: e.acquired, acquired: e.held}
		revPos, ok := orderSites[rev]
		if !ok || e.held >= e.acquired {
			continue // report each cycle once, at the lexicographically first edge
		}
		pos := orderSites[e]
		if pass.Allowed(pos, "lockhold") || pass.Allowed(revPos, "lockhold") {
			continue
		}
		a, b := display[e.held], display[e.acquired]
		if a == "" {
			a = e.held
		}
		if b == "" {
			b = e.acquired
		}
		pass.Reportf(pos, "inconsistent lock order: %s acquired while %s held here, but %s is also acquired while %s held at %s; "+
			"pick one order package-wide or annotate with //pipelayer:allow-lockhold <reason>",
			b, a, a, b, pass.Fset.Position(revPos))
	}
}
