// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest on the in-repo
// framework.
//
// A fixture line expects diagnostics with trailing comments of the form
//
//	code() // want "regexp" "another regexp"
//
// Each quoted pattern must match (regexp search, not full match) exactly
// one diagnostic reported on that line, and every diagnostic must be
// matched by some pattern. Fixture packages live in
// testdata/src/<pkgpath>/ and may import standard-library and module
// packages; imports resolve through the same export-data loader the
// pipelayer-vet binary uses.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pipelayer/internal/analysis"
)

// moduleRoot is where go list runs for import resolution. Fixture tests
// run with the package directory as cwd (internal/analysis), so the module
// root is two levels up.
const moduleRoot = "../.."

var wantRE = regexp.MustCompile(`//[ \t]*want[ \t]+(.*)$`)

// Run loads each fixture package (a directory under testdata/src) with the
// shared loader, applies the analyzer, and reports mismatches between the
// emitted diagnostics and the fixtures' want comments on t.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := &analysis.Loader{Dir: moduleRoot}
	var pkgs []*analysis.Package
	for _, path := range pkgPaths {
		dir := filepath.Join("testdata", "src", filepath.FromSlash(path))
		pkg, err := loader.LoadDir(path, dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s: type error: %v", path, terr)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, pkg := range pkgs {
		checkWants(t, pkg, diags)
	}
}

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// checkWants compares the diagnostics that landed in pkg's files against
// the want comments in those files.
func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string]map[int][]*expectation) // file -> line -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				exps, err := parseWantPatterns(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				if wants[pos.Filename] == nil {
					wants[pos.Filename] = make(map[int][]*expectation)
				}
				wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], exps...)
			}
		}
	}
	inPkg := func(pos token.Position) bool {
		for _, f := range pkg.Files {
			if pkg.Fset.Position(f.Pos()).Filename == pos.Filename {
				return true
			}
		}
		return false
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !inPkg(pos) {
			continue
		}
		if match := findMatch(wants[pos.Filename][pos.Line], d.Message); match != nil {
			match.matched = true
			continue
		}
		t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
	}
	for file, byLine := range wants {
		for line, exps := range byLine {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, e.raw)
				}
			}
		}
	}
}

func findMatch(exps []*expectation, msg string) *expectation {
	for _, e := range exps {
		if !e.matched && e.re.MatchString(msg) {
			return e
		}
	}
	return nil
}

// parseWantPatterns splits `"a" "b"` into compiled expectations.
func parseWantPatterns(s string) ([]*expectation, error) {
	var exps []*expectation
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		if strings.HasPrefix(s, "//") {
			break // trailing comment after the patterns
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		// Find the end of this Go-quoted (or raw) string.
		end := -1
		for i := 1; i < len(s); i++ {
			if quote == '"' && s[i] == '\\' {
				i++
				continue
			}
			if s[i] == quote {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		raw, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", s[:end+1], err)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, fmt.Errorf("compiling pattern %q: %v", raw, err)
		}
		exps = append(exps, &expectation{re: re, raw: raw})
		s = strings.TrimSpace(s[end+1:])
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return exps, nil
}
