package analysis

// Control-flow / dataflow core shared by the concurrency-protocol analyzers
// (lockhold, drainproto). Like the rest of the framework it is a deliberately
// thin, stdlib-only slice of what golang.org/x/tools provides: a per-function
// CFG built from go/ast, block-level reachability, an iterative forward
// may-analysis, and a small alias/escape helper over go/types. The builder
// covers every statement shape the module uses; `goto` is treated as a
// terminator (the tree has none, and a conservative terminator can only lose
// findings inside dead code, never invent them).

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// A Block is one straight-line run of AST nodes: statements in source order,
// with condition/range expressions of the owning control statement inlined at
// the position they evaluate. Succs are the possible control-flow successors.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// A CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block; block order follows construction order, which tracks source
// order closely enough for deterministic diagnostics.
type CFG struct {
	Blocks []*Block

	// SelectComm marks the comm statements (sends/receives) that belong to a
	// select's case clauses: their blocking behavior is owned by the select
	// head (which may have a default), so analyzers must not treat them as
	// standalone blocking operations.
	SelectComm map[ast.Node]bool

	// RangeX marks range-head expressions, so an analyzer seeing a bare
	// channel-typed expression in a block can tell "range over channel"
	// (blocking) apart from an ordinary operand.
	RangeX map[ast.Expr]bool
}

// Entry returns the function's entry block (nil for an empty CFG).
func (g *CFG) Entry() *Block {
	if len(g.Blocks) == 0 {
		return nil
	}
	return g.Blocks[0]
}

// Reachable returns the set of blocks reachable from the entry.
func (g *CFG) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool)
	entry := g.Entry()
	if entry == nil {
		return seen
	}
	stack := []*Block{entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return seen
}

// ForwardMay runs an iterative union-based forward dataflow to fixpoint: a
// fact holds at a block's entry when it MAY hold on some path there. transfer
// maps a block's in-set to its out-set and must not mutate in. The returned
// map gives each reachable block's in-set.
func (g *CFG) ForwardMay(transfer func(b *Block, in map[string]bool) map[string]bool) map[*Block]map[string]bool {
	reach := g.Reachable()
	ins := make(map[*Block]map[string]bool, len(reach))
	outs := make(map[*Block]map[string]bool, len(reach))
	for b := range reach {
		ins[b] = map[string]bool{}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range g.Blocks {
			if !reach[b] {
				continue
			}
			out := transfer(b, ins[b])
			if !sameSet(out, outs[b]) {
				outs[b] = out
				changed = true
			}
			for _, s := range b.Succs {
				if !reach[s] {
					continue
				}
				for k := range out {
					if !ins[s][k] {
						ins[s][k] = true
						changed = true
					}
				}
			}
		}
	}
	return ins
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// cfgBuilder threads the current break/continue targets through the
// statement walk.
type cfgBuilder struct {
	g      *CFG
	breaks []*Block // innermost-last break targets (loops, switch, select)
	conts  []*Block // innermost-last continue targets (loops only)
	labels map[string][2]*Block
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g: &CFG{
			SelectComm: make(map[ast.Node]bool),
			RangeX:     make(map[ast.Expr]bool),
		},
		labels: make(map[string][2]*Block),
	}
	entry := b.newBlock()
	b.stmtList(body.List, entry)
	return b.g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// stmtList appends list to cur, splitting blocks at control flow, and
// returns the block control falls out of (nil when every path terminates).
func (b *cfgBuilder) stmtList(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable statements after a terminator still get a block so
			// analyzers can choose to inspect dead code; it stays unlinked.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.LabeledStmt:
		// Pre-register the label's break/continue targets for loops.
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			head := b.newBlock()
			exit := b.newBlock()
			link(cur, head)
			b.labels[s.Label.Name] = [2]*Block{exit, head}
			return b.loopAt(inner, head, exit)
		default:
			return b.stmt(s.Stmt, cur)
		}

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		return nil

	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if t, ok := b.labels[s.Label.Name]; ok {
					link(cur, t[0])
				}
			} else if n := len(b.breaks); n > 0 {
				link(cur, b.breaks[n-1])
			}
		case token.CONTINUE:
			if s.Label != nil {
				if t, ok := b.labels[s.Label.Name]; ok {
					link(cur, t[1])
				}
			} else if n := len(b.conts); n > 0 {
				link(cur, b.conts[n-1])
			}
		case token.GOTO:
			// Conservative: treated as a terminator (see package comment).
		}
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		thenB := b.newBlock()
		link(cur, thenB)
		thenOut := b.stmtList(s.Body.List, thenB)
		exit := b.newBlock()
		link(thenOut, exit)
		if s.Else != nil {
			elseB := b.newBlock()
			link(cur, elseB)
			link(b.stmt(s.Else, elseB), exit)
		} else {
			link(cur, exit)
		}
		return exit

	case *ast.ForStmt, *ast.RangeStmt:
		head := b.newBlock()
		exit := b.newBlock()
		link(cur, head)
		return b.loopAt(s, head, exit)

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.caseClauses(s.Body, cur, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.caseClauses(s.Body, cur, true)

	case *ast.SelectStmt:
		// The select head owns the SelectStmt node itself, so analyzers can
		// ask "does this select block?" (no default clause) in one place.
		cur.Nodes = append(cur.Nodes, s)
		exit := b.newBlock()
		b.breaks = append(b.breaks, exit)
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			clB := b.newBlock()
			link(cur, clB)
			if comm.Comm != nil {
				b.g.SelectComm[comm.Comm] = true
				clB = b.stmt(comm.Comm, clB)
			}
			link(b.stmtList(comm.Body, clB), exit)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if len(s.Body.List) == 0 {
			return nil // empty select blocks forever
		}
		return exit

	default:
		// Plain statements: expressions, assignments, sends, declarations,
		// defer/go, inc/dec, empty. All straight-line.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// loopAt builds a for/range loop whose head and exit blocks were already
// created (so labeled loops can pre-register them as branch targets).
func (b *cfgBuilder) loopAt(s ast.Stmt, head, exit *Block) *Block {
	b.breaks = append(b.breaks, exit)
	b.conts = append(b.conts, head)
	defer func() {
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
	}()
	switch s := s.(type) {
	case *ast.ForStmt:
		if s.Init != nil {
			// Init runs once; it belongs before the head, but the head is
			// already linked — fold it into the head (it dominates the cond).
			head = b.stmt(s.Init, head)
		}
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			link(head, exit)
		}
		body := b.newBlock()
		link(head, body)
		out := b.stmtList(s.Body.List, body)
		if s.Post != nil {
			out = b.stmt(s.Post, out)
		}
		link(out, head)
		if s.Cond == nil && len(exit.Succs) == 0 {
			// `for {}` with no break reaching exit: exit stays unlinked and
			// unreachable, which is exactly right.
			return exit
		}
		return exit
	case *ast.RangeStmt:
		head.Nodes = append(head.Nodes, s.X)
		b.g.RangeX[s.X] = true
		link(head, exit) // a range loop may run zero times
		body := b.newBlock()
		link(head, body)
		link(b.stmtList(s.Body.List, body), head)
		return exit
	}
	return exit
}

// caseClauses builds switch/type-switch clause blocks joining at one exit.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, cur *Block, hasImplicitExit bool) *Block {
	exit := b.newBlock()
	b.breaks = append(b.breaks, exit)
	defaulted := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaulted = true
		}
		clB := b.newBlock()
		link(cur, clB)
		for _, e := range cc.List {
			clB.Nodes = append(clB.Nodes, e)
		}
		link(b.stmtList(cc.Body, clB), exit)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if !defaulted && hasImplicitExit {
		link(cur, exit) // no case matched
	}
	return exit
}

// --- alias / escape helpers -------------------------------------------------

// rootObject returns the types.Object of the base identifier of a selector
// chain (s, s.mu, s.srv.mu → object of s), or nil.
func rootObject(info *types.Info, expr ast.Expr) types.Object {
	id := rootIdent(expr)
	if id == nil || info == nil {
		return nil
	}
	return info.ObjectOf(id)
}

// ExprKey canonicalizes a selector chain into a stable alias key so that the
// same lock reached through different receivers compares equal. A chain
// rooted at a variable of (pointer-to-) named type keys by the type's
// fully-qualified name plus the field path — `s.mu` in two methods of Server
// is one lock protocol, whatever the receiver is called. A chain rooted at an
// ordinary local keys by the local's declaration position, which is unique
// within a run. Returns "" when the expression has no stable root (calls,
// index expressions with computed bases, missing type info).
func ExprKey(info *types.Info, expr ast.Expr) string {
	path := selectorPath(expr)
	if path == "" {
		return ""
	}
	obj := rootObject(info, expr)
	if obj == nil {
		return ""
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	// Type-canonical keys only for genuine field chains: a bare local named
	// `mu` in two functions is two locks, but `s.mu` and `q.mu` on the same
	// named type are one protocol.
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil && path != obj.Name() {
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "#" + path
	}
	return fmt.Sprintf("local@%d#%s", obj.Pos(), path)
}

// selectorPath renders the field path of a selector chain without the root
// ("mu" for s.mu, "srv.mu" for s.srv.mu); "" for non-selector shapes.
func selectorPath(expr ast.Expr) string {
	var parts []string
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if len(parts) == 0 {
				return e.Name // a bare local: path is its own name
			}
			out := ""
			for i := len(parts) - 1; i >= 0; i-- {
				if out != "" {
					out += "."
				}
				out += parts[i]
			}
			return out
		case *ast.SelectorExpr:
			parts = append(parts, e.Sel.Name)
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return ""
		}
	}
}

// renderExpr prints an expression as source text for diagnostics.
func renderExpr(fset *token.FileSet, expr ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, expr); err != nil {
		return "?"
	}
	return buf.String()
}

// escapesFrom reports whether obj's address is taken or obj is captured by a
// function literal anywhere inside within — the cheap escape test analyzers
// use to stay conservative about aliasing locals.
func escapesFrom(info *types.Info, within ast.Node, obj types.Object) bool {
	if info == nil || obj == nil {
		return true
	}
	escapes := false
	ast.Inspect(within, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if root := rootObject(info, n.X); root == obj {
					escapes = true
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == obj {
					escapes = true
				}
				return !escapes
			})
			return false
		}
		return !escapes
	})
	return escapes
}
