package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerSentinelCmp requires errors.Is for comparisons against typed
// error sentinels (package-level `ErrXxx` variables such as
// reram.ErrWriteFailed or serve.ErrOverloaded). The serving and
// fault-tolerance layers wrap sentinels with %w to carry context — a plain
// ==/!= silently stops matching the moment a wrap is added, which is
// exactly the refactor this suite exists to make safe.
var AnalyzerSentinelCmp = &Analyzer{
	Name: "sentinelcmp",
	Doc: "require errors.Is instead of ==/!= when comparing errors against typed sentinels " +
		"(ErrWriteFailed, ErrOverloaded, ...) so wrapped errors keep matching",
	Run: runSentinelCmp,
}

func runSentinelCmp(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			sentinel := sentinelName(pass, bin.X)
			if sentinel == "" {
				sentinel = sentinelName(pass, bin.Y)
			}
			if sentinel == "" || pass.Allowed(bin.Pos(), "sentinelcmp") {
				return true
			}
			verb := "errors.Is(err, " + sentinel + ")"
			if bin.Op == token.NEQ {
				verb = "!" + verb
			}
			pass.Reportf(bin.Pos(), "comparing against sentinel %s with %s misses wrapped errors; use %s",
				sentinel, bin.Op, verb)
			return true
		})
	}
	return nil
}

// sentinelName returns the name of the typed error sentinel expr refers to,
// or "" if expr is not one. A sentinel is a package-level variable named
// Err<Upper>... whose type implements error.
func sentinelName(pass *Pass, expr ast.Expr) string {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	name := id.Name
	if !strings.HasPrefix(name, "Err") || len(name) < 4 || !isUpperOrDigit(name[3]) {
		return ""
	}
	if pass.TypesInfo == nil {
		return ""
	}
	obj, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	if !types.Implements(obj.Type(), errorInterface()) {
		return ""
	}
	if sel, ok := expr.(*ast.SelectorExpr); ok {
		if pkgID, ok := sel.X.(*ast.Ident); ok {
			return pkgID.Name + "." + name
		}
	}
	return name
}

func isUpperOrDigit(b byte) bool {
	return (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}
