package analysis

import (
	"go/ast"
	"go/types"
)

// hotPathPkgs are the packages whose results must be bit-identical across
// worker counts and runs: everything a training or inference pass touches.
// nodeterminism applies only to these; colder layers (telemetry, serve,
// cmd) legitimately read the wall clock.
var hotPathPkgs = []string{
	"internal/tensor",
	"internal/arch",
	"internal/reram",
	"internal/spike",
	"internal/core",
	"internal/fault",
	"internal/parallel",
}

func isHotPathPkg(path string) bool {
	for _, s := range hotPathPkgs {
		if pathHasSuffixSegment(path, s) {
			return true
		}
	}
	return false
}

// forbiddenTimeFuncs are the wall-clock reads and timer constructors that
// make a hot-path result depend on when (or how fast) it ran.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// allowedRandFuncs are the math/rand (and v2) constructors that build an
// explicitly seeded generator. Everything else on the package — the ambient
// top-level draws and Seed — is forbidden: every stochastic choice in the
// hot path must flow from a *rand.Rand the caller seeded.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// AnalyzerNoDeterminism forbids wall-clock reads and ambient randomness in
// the hot-path packages. Escape hatch: //pipelayer:allow-nondeterminism
// <reason> (used for telemetry/trace timestamps that never feed a result).
var AnalyzerNoDeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc: "forbid time.Now/time.Since-style wall-clock reads and ambient math/rand draws " +
		"in the hot-path packages (tensor, arch, reram, spike, core, fault, parallel); " +
		"stochastic behavior must flow from an explicitly seeded *rand.Rand",
	Run: runNoDeterminism,
}

func runNoDeterminism(pass *Pass) error {
	if !isHotPathPkg(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		// A dot-import of time or math/rand would let the forbidden calls
		// appear as bare identifiers, invisible to the selector walk below.
		for _, imp := range f.Imports {
			if imp.Name != nil && imp.Name.Name == "." {
				path := importPath(imp)
				switch path {
				case "time", "math/rand", "math/rand/v2", "crypto/rand":
					pass.Reportf(imp.Pos(), "dot-import of %q defeats the nondeterminism check; use a named import", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch pass.PkgNameOf(id) {
			case "time":
				if forbiddenTimeFuncs[sel.Sel.Name] && !pass.Allowed(sel.Pos(), "nondeterminism") {
					pass.Reportf(sel.Pos(), "wall-clock read time.%s in hot-path package %s breaks run-to-run determinism; "+
						"pass timestamps in from the cold path or annotate with //pipelayer:allow-nondeterminism <reason>",
						sel.Sel.Name, pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				// Referring to the types (rand.Rand in a signature) is the
				// sanctioned dependency-injection pattern; only the ambient
				// package-level draw functions are forbidden.
				if !isFuncRef(pass, sel.Sel) {
					return true
				}
				if !allowedRandFuncs[sel.Sel.Name] && !pass.Allowed(sel.Pos(), "nondeterminism") {
					pass.Reportf(sel.Pos(), "ambient randomness rand.%s in hot-path package %s; "+
						"draw from an explicitly seeded *rand.Rand (rand.New(rand.NewSource(seed))) so fault and "+
						"variation experiments replay bit-identically", sel.Sel.Name, pass.Pkg.Name())
				}
			case "crypto/rand":
				if !pass.Allowed(sel.Pos(), "nondeterminism") {
					pass.Reportf(sel.Pos(), "crypto/rand in hot-path package %s is unseedable; "+
						"use an explicitly seeded math/rand *rand.Rand", pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}

func isFuncRef(pass *Pass, id *ast.Ident) bool {
	if pass.TypesInfo == nil {
		return true // be conservative: report when type info is missing
	}
	_, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return ok
}

func importPath(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	if len(p) >= 2 {
		return p[1 : len(p)-1]
	}
	return p
}
