package analysis

import (
	"go/ast"
	"go/types"
)

// ctxflowPkgs are the request-path packages: every call made on behalf of a
// serving request must observe that request's deadline and cancellation, so
// minting a fresh root context mid-path silently detaches the work from the
// caller that is waiting on it.
var ctxflowPkgs = []string{
	"internal/serve",
	"internal/shard",
	"internal/online",
	"internal/benchscenario",
}

func isCtxflowPkg(path string) bool {
	for _, s := range ctxflowPkgs {
		if pathHasSuffixSegment(path, s) {
			return true
		}
	}
	return false
}

// AnalyzerCtxFlow forbids context.Background() and context.TODO() in the
// request-path packages (serve, shard, online, benchscenario): a function on
// the request path must thread the context it was handed, otherwise deadlines
// and cancellation stop composing end-to-end — a canceled request would keep
// computing, and a drain would wait on work nobody wants. Root contexts
// belong in cmd/ binaries and tests (test files are not loaded by the suite).
// Escape hatch: //pipelayer:allow-ctxflow <reason>.
var AnalyzerCtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "request-path packages (serve, shard, online, benchscenario) must thread their incoming " +
		"context.Context; context.Background()/TODO() only in cmd/, test files, or annotated sites",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if !isCtxflowPkg(pass.PkgPath) || pathHasSegment(pass.PkgPath, "cmd") {
		return nil
	}
	for _, f := range pass.Files {
		// A dot-import of context would make Background() a bare call,
		// invisible to the selector walk below.
		for _, imp := range f.Imports {
			if imp.Name != nil && imp.Name.Name == "." && importPath(imp) == "context" {
				pass.Reportf(imp.Pos(), "dot-import of \"context\" defeats the ctxflow check; use a named import")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || pass.PkgNameOf(id) != "context" {
				return true
			}
			name := sel.Sel.Name
			if name != "Background" && name != "TODO" {
				return true
			}
			if pass.Allowed(call.Pos(), "ctxflow") {
				return true
			}
			hint := "thread the incoming request context instead"
			if fn := enclosingFuncWithoutCtxParam(pass, f, call); fn != "" {
				hint = "add a context.Context parameter to " + fn + " and thread the caller's context through"
			}
			pass.Reportf(call.Pos(), "context.%s() in request-path package %s detaches this call from the request's "+
				"deadline and cancellation; %s, or annotate with //pipelayer:allow-ctxflow <reason>",
				name, pass.Pkg.Name(), hint)
			return true
		})
	}
	return nil
}

// enclosingFuncWithoutCtxParam names the function declaration containing pos
// when that function has no context.Context parameter (the usual fix is to
// add one); "" when the enclosing function already receives a context or
// cannot be determined.
func enclosingFuncWithoutCtxParam(pass *Pass, f *ast.File, n ast.Node) string {
	var fn *ast.FuncDecl
	ast.Inspect(f, func(m ast.Node) bool {
		d, ok := m.(*ast.FuncDecl)
		if ok && d.Pos() <= n.Pos() && n.End() <= d.End() {
			fn = d
		}
		return true
	})
	if fn == nil || fn.Type.Params == nil {
		return ""
	}
	for _, field := range fn.Type.Params.List {
		if isContextType(pass.TypeOf(field.Type)) {
			return "" // a context is already in scope; threading it is the fix
		}
	}
	return fn.Name.Name
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
