// Package maporder is a fixture for the maporder analyzer: order-sensitive
// work inside range-over-map loops.
package maporder

import "sort"

// appendUnsorted leaks map order into a slice.
func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to an outer slice inside range over map"
	}
	return keys
}

// collectThenSort is the sanctioned idiom: append then sort, so the
// iteration order is irrelevant.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// floatAccumulate sums floats in map order: not associative, not stable.
func floatAccumulate(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "float accumulation into an outer variable inside range over map"
	}
	return total
}

// intAccumulate is exact arithmetic: integer addition commutes, allowed.
func intAccumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sliceIndexWrite stores values at map-order-dependent slots.
func sliceIndexWrite(m map[int]float64, out []float64) {
	i := 0
	for _, v := range m {
		out[i] = v // want "write through a slice index inside range over map"
		i++
	}
}

// channelSend streams map entries in randomized order.
func channelSend(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "channel send inside range over map"
	}
}

// loopLocalSlice appends to a slice scoped inside the body: each iteration
// sees a fresh slice, so no order leaks out.
func loopLocalSlice(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		n += len(doubled)
	}
	return n
}

// mapToMap copies between maps: writes keyed by the element, order-free.
func mapToMap(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// annotated shows the escape hatch with and without a reason.
func annotated(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v //pipelayer:allow-maporder order-insensitive: checksummed downstream with a tolerance
	}
	sub := 0.0
	for _, v := range m {
		sub += v //pipelayer:allow-maporder // want "float accumulation" "needs a reason"
	}
	return total + sub
}
