// Package floatreduce is a fixture for the floatreduce analyzer: float
// accumulation into captured variables inside closures dispatched through
// the internal/parallel pool.
package floatreduce

import "pipelayer/internal/parallel"

// sharedAccumulator races pool workers on one float: order-dependent.
func sharedAccumulator(p *parallel.Pool, xs []float64) float64 {
	sum := 0.0
	p.For(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want "float accumulation into captured sum"
		}
	})
	return sum
}

// longhandAccumulator spells the same reduction as x = x + y.
func longhandAccumulator(p *parallel.Pool, xs []float64) float64 {
	total := 0.0
	p.For(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total = total + xs[i] // want "float accumulation into captured total"
		}
	})
	return total
}

// chunkPartials is the sanctioned pattern: disjoint per-chunk slots,
// drained in index order after the parallel section.
func chunkPartials(p *parallel.Pool, xs []float64) float64 {
	grain := parallel.Grain(64)
	nchunks := (len(xs) + grain - 1) / grain
	if nchunks == 0 {
		return 0
	}
	partials := make([]float64, nchunks)
	p.For(len(xs), grain, func(lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		partials[lo/grain] = s
	})
	sum := 0.0
	for _, s := range partials {
		sum += s
	}
	return sum
}

// closureLocal accumulates into a variable declared inside the closure:
// private per invocation, nothing shared.
func closureLocal(p *parallel.Pool, xs []float64, out []float64) {
	p.For(len(xs), 1, func(lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		out[lo] = s
	})
}

// serialAccumulation outside any parallel dispatch is fine.
func serialAccumulation(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// annotated shows the escape hatch with and without a reason.
func annotated(p *parallel.Pool, xs []float64) float64 {
	sum := 0.0
	p.For(len(xs), 1, func(lo, hi int) {
		sum += 1 //pipelayer:allow-floatreduce single-worker pool proven by construction
	})
	p.For(len(xs), 1, func(lo, hi int) {
		sum += 1 //pipelayer:allow-floatreduce // want "float accumulation into captured sum" "needs a reason"
	})
	return sum
}
