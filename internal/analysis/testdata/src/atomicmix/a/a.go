// Package a is the atomicmix fixture: fields touched via sync/atomic must
// never be accessed plainly, and atomic.Pointer slots stay behind their
// owner's methods.
package a

import "sync/atomic"

type counter struct {
	hits  int64 // atomic everywhere
	plain int64 // never atomic: free to use directly
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1)
	c.plain++
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.hits)
}

// mixedRead is the bug: a plain load racing the atomic adds above.
func (c *counter) mixedRead() int64 {
	return c.hits // want "non-atomic access to c.hits"
}

// mixedWrite through a different receiver name still unifies on the field.
func reset(k *counter) {
	k.hits = 0 // want "non-atomic access to k.hits"
	k.plain = 0
}

// annotated shows the escape hatch with and without a reason.
func (c *counter) annotated() int64 {
	//pipelayer:allow-atomicmix read under the registry mutex that all writers also hold
	a := c.hits
	b := c.hits //pipelayer:allow-atomicmix // want "non-atomic access" "needs a reason"
	return a + b
}

type slots struct {
	cur atomic.Pointer[counter]
}

// Load is the accessor: methods of the owning type may touch the slot.
func (s *slots) Load() *counter {
	return s.cur.Load()
}

// bypass reaches around the accessors from a free function.
func bypass(s *slots) {
	s.cur.Store(nil) // want "atomic.Pointer slot s.cur touched from a free function"
}

// newSlots initializes a slot on a local the function itself declared:
// pre-publication, no concurrent observers, allowed.
func newSlots(c *counter) *slots {
	s := &slots{}
	s.cur.Store(c)
	return s
}
