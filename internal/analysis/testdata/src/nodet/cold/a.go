// Package cold is a nodeterminism fixture for a non-hot-path package:
// wall-clock reads and ambient randomness are allowed here, so the
// analyzer must stay silent.
package cold

import (
	"math/rand"
	"time"
)

func clockAndDice() (time.Time, float64) {
	return time.Now(), rand.Float64()
}
