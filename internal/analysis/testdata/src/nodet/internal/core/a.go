// Package core is a nodeterminism fixture standing in for a hot-path
// package (its import path ends in internal/core, so the analyzer applies).
package core

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	t0 := time.Now()            // want "wall-clock read time.Now in hot-path package core"
	d := time.Since(t0)         // want "wall-clock read time.Since in hot-path package core"
	time.Sleep(time.Second)     // want "wall-clock read time.Sleep in hot-path package core"
	<-time.After(d)             // want "wall-clock read time.After in hot-path package core"
	_ = time.Until(time.Time{}) // want "wall-clock read time.Until in hot-path package core"
	return d
}

func ambientRandomness() float64 {
	x := rand.Float64()                // want "ambient randomness rand.Float64 in hot-path package core"
	rand.Shuffle(3, func(i, j int) {}) // want "ambient randomness rand.Shuffle in hot-path package core"
	var buf [8]byte
	crand.Read(buf[:]) // want "crypto/rand in hot-path package core is unseedable"
	return x
}

// seededRandomness is the sanctioned pattern: every draw flows from an
// explicitly seeded generator, and *rand.Rand flows through signatures
// (type references are not ambient randomness).
func seededRandomness(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return draw(rng)
}

func draw(rng *rand.Rand) float64 { return rng.Float64() }

// annotated shows the escape hatch: a reasoned directive suppresses, a
// bare one suppresses nothing and is itself reported.
func annotated() {
	_ = time.Now() //pipelayer:allow-nondeterminism telemetry timestamp, never feeds a result
	//pipelayer:allow-nondeterminism span timestamp
	_ = time.Now()
	_ = time.Now() //pipelayer:allow-nondeterminism // want "wall-clock read time.Now" "needs a reason"
}

// timeValuesAreFine: only clock reads are forbidden, not the time package.
func timeValuesAreFine(d time.Duration) time.Duration { return 2 * d }
