// Package app is the ctxflow negative control: an ordinary package outside
// the request path may mint root contexts freely.
package app

import "context"

func rootHere() context.Context {
	return context.Background()
}
