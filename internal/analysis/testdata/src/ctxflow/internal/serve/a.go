// Package serve is a ctxflow fixture shaped like a request-path package:
// the import path ends in internal/serve, so fresh root contexts are
// forbidden outside annotated sites.
package serve

import (
	ctxpkg "context"
	"time"
)

// noCtxParam has no context parameter: the diagnostic suggests adding one.
func noCtxParam() error {
	ctx := ctxpkg.Background() // want "context.Background\\(\\) in request-path package serve"
	_ = ctx
	return nil
}

// hasCtxParam already receives a context; minting a new root anyway is the
// classic detach bug, and the hint says to thread the parameter.
func hasCtxParam(ctx ctxpkg.Context) {
	c, cancel := ctxpkg.WithTimeout(ctxpkg.TODO(), time.Second) // want "context.TODO\\(\\) in request-path package serve"
	defer cancel()
	_ = c
	_ = ctx
}

// threaded is the clean shape: derive from the incoming context.
func threaded(ctx ctxpkg.Context) {
	c, cancel := ctxpkg.WithTimeout(ctx, time.Second)
	defer cancel()
	_ = c
}

// annotated shows the escape hatch with and without a reason.
func annotated() {
	//pipelayer:allow-ctxflow lifecycle root for the background drain loop, joined by Close
	a := ctxpkg.Background()
	b := ctxpkg.Background() //pipelayer:allow-ctxflow // want "context.Background\\(\\)" "needs a reason"
	_, _ = a, b
}
