// Package flightname is a fixture for the metricname analyzer's
// flight-recorder extension: event names at Record/RecordAt sites must be
// lower_snake_case compile-time constants; variable detail belongs in the
// event's Arg, not its name.
package flightname

import "pipelayer/internal/telemetry/flight"

const goodEvent = "core_stage_forward"

func events(rec *flight.Recorder, dynamic string, stage int64) {
	t0 := rec.Now()
	rec.Record("serve_queue_wait", 1, flight.TrackRequests, t0, 0)
	rec.Record(goodEvent, 0, 3, t0, stage)
	rec.RecordAt("serve_compute", 1, flight.TrackRequests, t0, t0+1, 0)

	rec.Record("BadEvent", 0, 0, t0, 0)                 // want `telemetry name "BadEvent" does not match`
	rec.RecordAt("has-dashes", 0, 0, t0, t0, 0)         // want `telemetry name "has-dashes" does not match`
	rec.Record("stage_"+string(rune('0')), 0, 0, t0, 0) // constant expression: fine

	rec.Record(dynamic, 0, 0, t0, 0) // want "telemetry name is not a compile-time constant"

	//pipelayer:allow-metricname test helper forwards literal names from its call sites
	rec.Record(dynamic, 0, 0, t0, 0)

	// Non-name methods on the recorder stay unconstrained: track labels are
	// human-facing display strings, not namespace entries.
	rec.SetTrackName(2, "Replica #2")
}
