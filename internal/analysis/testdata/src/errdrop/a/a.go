// Package a is the errdrop fixture: it declares the backpressure sentinels
// itself, so every error-returning function in it is a carrier, and dropping
// a carrier's error via `_ =` or a bare call statement is flagged. Calls
// into foreign modules (here: the standard library, which has its own
// os.ErrClosed) are not carriers.
package a

import (
	"errors"
	"os"
)

var (
	ErrOverloaded = errors.New("overloaded")
	ErrClosed     = errors.New("closed")
)

type Srv struct{}

func (s *Srv) Close() error               { return ErrClosed }
func (s *Srv) Predict(x int) (int, error) { return x, nil }

// bareCall discards the only result of a carrier call.
func bareCall(s *Srv) {
	s.Close() // want "result of Close discarded"
}

// blankAssign and blankSecond lose the sentinel through `_`.
func blankAssign(s *Srv) {
	_ = s.Close() // want "error from Close assigned to _"
}

func blankSecond(s *Srv) int {
	v, _ := s.Predict(1) // want "error from Predict assigned to _"
	return v
}

// handled and propagated are the clean shapes.
func handled(s *Srv) {
	if err := s.Close(); err != nil && !errors.Is(err, ErrClosed) {
		panic(err)
	}
}

func propagated(s *Srv) (int, error) {
	return s.Predict(2)
}

// deferred cleanup cannot propagate; defers are exempt by design.
func deferred(s *Srv) error {
	defer s.Close()
	_, err := s.Predict(3)
	return err
}

// foreignModule: os declares ErrClosed too, but it is not this module's
// backpressure signal — no finding.
func foreignModule() {
	os.Remove("nonexistent")
}

// annotated shows the escape hatch with and without a reason.
func annotated(s *Srv) {
	//pipelayer:allow-errdrop second close on the error path; the first close's error was already returned
	s.Close()
	s.Close() //pipelayer:allow-errdrop // want "result of Close discarded" "needs a reason"
}
