// Package serve is the drainproto fixture: an import path gospawn exempts,
// where every go statement must still carry a drain protocol — an
// Add-before-go WaitGroup pair or a done-channel a Close/Wait method
// receives from.
package serve

import "sync"

type C struct {
	wg   sync.WaitGroup
	done chan struct{}
	work chan int
}

// trackedLit: Add before the spawn, Done in the literal.
func (c *C) trackedLit() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
	}()
}

// trackedMethod: Add before the spawn, Done inside the named method the
// goroutine runs.
func (c *C) trackedMethod() {
	c.wg.Add(1)
	go c.run()
}

func (c *C) run() {
	defer c.wg.Done()
	for range c.work {
	}
}

// trackedDoneChan: the goroutine closes the channel Close receives from.
func (c *C) trackedDoneChan() {
	go func() {
		close(c.done)
	}()
}

// trackedTransitive: the literal only calls loop; loop closes the done
// channel. The search follows same-package calls.
func (c *C) trackedTransitive() {
	go func() {
		c.loop()
	}()
}

func (c *C) loop() {
	defer close(c.done)
	for range c.work {
	}
}

func (c *C) Close() {
	close(c.work)
	<-c.done
	c.wg.Wait()
}

// untrackedLit has no Add and signals nothing Close observes.
func (c *C) untrackedLit() {
	go func() { // want "untracked goroutine"
		c.work <- 1
	}()
}

// addAfterGo is the lost-Add race: the WaitGroup must be incremented before
// the spawn, not inside the goroutine.
func (c *C) addAfterGo() {
	go func() { // want "untracked goroutine"
		c.wg.Add(1)
		defer c.wg.Done()
	}()
}

// annotated shows the escape hatch with and without a reason.
func (c *C) annotated(f func()) {
	//pipelayer:allow-drainproto process-lifetime watchdog, reaped at exit by design
	go f()
	go f() //pipelayer:allow-drainproto // want "untracked goroutine" "needs a reason"
}
