// Package shard (NOT under internal/) is the gospawn reject twin of the
// internal/shard fixture: the exemption matches the internal/shard path
// segment pair, so a package merely named shard is still flagged.
package shard

func sneaky(f func()) {
	go f() // want "raw go statement outside internal/parallel, internal/serve, internal/shard, internal/online, and cmd/"
}
