// Package shard is a gospawn fixture standing in for the shard-chain
// pipeline (its import path ends in internal/shard): per-shard worker
// goroutines are sanctioned there, like the serve and parallel packages.
package shard

func chain(stages int, f func(int)) {
	for k := 0; k < stages; k++ {
		go f(k)
	}
}
