// Package parallel is a gospawn fixture standing in for the pool package
// itself (its import path ends in internal/parallel): the one place raw
// goroutine fan-out is sanctioned.
package parallel

func workers(n int, f func()) {
	for i := 0; i < n; i++ {
		go f()
	}
}
