// Package serve extends the gospawn fixture tree with the drainproto
// interaction: this import path is exactly the shape gospawn exempts from
// the raw-go ban, which is why drainproto must pick up there — an exempt
// package may spawn, but only under a drain protocol. Loaded by the
// drainproto test only (its want comments describe drainproto findings, so
// running gospawn over it would see zero diagnostics).
package serve

import "sync"

type pool struct {
	wg sync.WaitGroup
}

// spawnTracked is what the exemption is for: gospawn stays silent and
// drainproto is satisfied by the Add/Done pair.
func (p *pool) spawnTracked(f func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		f()
	}()
}

// spawnLeaked is the regression drainproto exists to catch: gospawn's
// path exemption would wave it through.
func (p *pool) spawnLeaked(f func()) {
	go f() // want "untracked goroutine"
}
