// Package app is a gospawn fixture for an ordinary library package: raw go
// statements must go through the pool.
package app

import "sync"

func rawSpawn() {
	done := make(chan struct{})
	go func() { close(done) }() // want "raw go statement outside internal/parallel, internal/serve, internal/shard, internal/online, and cmd/"
	<-done
}

func spawnNamed(wg *sync.WaitGroup, f func()) {
	wg.Add(1)
	go f() // want "raw go statement outside internal/parallel, internal/serve, internal/shard, internal/online, and cmd/"
}

// annotated shows the escape hatch with and without a reason.
func annotated(f func()) {
	//pipelayer:allow-spawn fire-and-forget shutdown hook, joined by process exit
	go f()
	go f() //pipelayer:allow-spawn // want "raw go statement" "needs a reason"
}
