// Package main is a gospawn fixture for a cmd/ binary: commands own their
// process lifetime and may spawn directly.
package main

func main() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
