// Package sentinelcmp is a fixture for the sentinelcmp analyzer: typed
// sentinel errors must be matched with errors.Is, never ==/!=.
package sentinelcmp

import (
	"errors"
	"fmt"
)

// ErrBoom is a package-level typed sentinel, the kind ProgramVerify and the
// serving layer export.
var ErrBoom = errors.New("boom")

// ErrTyped is a sentinel with a concrete error type.
var ErrTyped error = &permanentError{}

type permanentError struct{}

func (*permanentError) Error() string { return "permanent" }

// notASentinel has the naming shape but function scope; == is legal there
// only because nothing can wrap it, still we stay quiet by scope rule.
func equalityComparisons(err error) bool {
	if err == ErrBoom { // want `comparing against sentinel ErrBoom with == misses wrapped errors; use errors.Is\(err, ErrBoom\)`
		return true
	}
	if err != ErrTyped { // want `comparing against sentinel ErrTyped with != misses wrapped errors; use !errors.Is\(err, ErrTyped\)`
		return false
	}
	return false
}

func sanctioned(err error) bool {
	if err == nil { // nil check, not a sentinel comparison
		return false
	}
	if errors.Is(err, ErrBoom) { // the sanctioned form
		return true
	}
	wrapped := fmt.Errorf("context: %w", ErrBoom)
	return errors.Is(wrapped, ErrBoom)
}

func localShadow() bool {
	ErrLocal := errors.New("local")
	var err error
	return err == ErrLocal // function-scoped, nothing exports or wraps it
}

func nonErrorErrPrefix() bool {
	// A package-level Err-named non-error value must not trip the check.
	return ErrRate == 0.5
}

// ErrRate is Err-prefixed but not an error.
var ErrRate = 0.25
