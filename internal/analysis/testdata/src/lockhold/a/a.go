// Package a is the lockhold fixture: blocking operations under a held
// sync.Mutex/RWMutex, deferred-unlock flows, the select-with-default
// exemption, backend Forward* calls, and the package-wide two-lock
// acquisition order.
package a

import "sync"

type S struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	ch  chan int
	wg  sync.WaitGroup
	c   *sync.Cond
	mu1 sync.Mutex
	mu2 sync.Mutex
}

type backend struct{}

func (b *backend) Forward(x int) int { return x }

// sendUnderLock blocks on a channel send with the mutex held.
func (s *S) sendUnderLock() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while holding s.mu"
	s.mu.Unlock()
}

// recvUnderDeferredUnlock: the deferred unlock runs at return, so the lock
// is still held at the receive.
func (s *S) recvUnderDeferredUnlock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-s.ch // want "channel receive while holding s.rw"
}

// releaseFirst is the clean shape: unlock before blocking.
func (s *S) releaseFirst() {
	s.mu.Lock()
	v := len(s.ch)
	s.mu.Unlock()
	s.ch <- v
}

// selectNoDefault blocks; selectWithDefault cannot.
func (s *S) selectNoDefault() {
	s.mu.Lock()
	select { // want "select without a default case while holding s.mu"
	case s.ch <- 1:
	case <-s.ch:
	}
	s.mu.Unlock()
}

func (s *S) selectWithDefault() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
		return true
	default:
		return false
	}
}

// waitsUnderLock: WaitGroup.Wait and Cond.Wait both park the goroutine.
func (s *S) waitsUnderLock() {
	s.mu.Lock()
	s.wg.Wait() // want "sync.WaitGroup.Wait while holding s.mu"
	s.mu.Unlock()
}

func (s *S) condWait() {
	s.mu.Lock()
	s.c.Wait() // want "sync.Cond.Wait while holding s.mu"
	s.mu.Unlock()
}

// forwardUnderLock: a backend call blocks for a whole pipeline pass.
func (s *S) forwardUnderLock(b *backend) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return b.Forward(1) // want "backend Forward call while holding s.mu"
}

// rangeUnderLock: draining a channel under the lock blocks on every recv.
func (s *S) rangeUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for range s.ch { // want "range over a channel while holding s.mu"
	}
}

// orderAB and orderBA acquire mu1/mu2 in both orders: classic AB-BA
// deadlock, reported once at the lexicographically first edge.
func (s *S) orderAB() {
	s.mu1.Lock()
	s.mu2.Lock() // want "inconsistent lock order"
	s.mu2.Unlock()
	s.mu1.Unlock()
}

func (s *S) orderBA() {
	s.mu2.Lock()
	s.mu1.Lock()
	s.mu1.Unlock()
	s.mu2.Unlock()
}

// annotated shows the escape hatch with and without a reason.
func (s *S) annotated() {
	s.mu.Lock()
	//pipelayer:allow-lockhold the channel is buffered to queue capacity and drained by this goroutine only
	s.ch <- 1
	s.ch <- 2 //pipelayer:allow-lockhold // want "channel send" "needs a reason"
	s.mu.Unlock()
}

// litBody: a function literal is its own activation — the lock the outer
// function holds is not charged to it, but its own lock is.
func (s *S) litBody() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() {
		s.mu1.Lock()
		s.ch <- 3 // want "channel send while holding s.mu1"
		s.mu1.Unlock()
	}
}
