// Package metricname is a fixture for the metricname analyzer: telemetry
// names must be lower_snake_case compile-time constants, one instrument
// kind per name repo-wide.
package metricname

import "pipelayer/internal/telemetry"

const goodConst = "requests_total"

func names(reg *telemetry.Registry, dynamic string) {
	reg.Counter("images_seen_total")
	reg.Counter(goodConst)
	reg.Gauge(telemetry.Name("queue_depth", map[string]string{"shard": "0"}))
	reg.Histogram("batch_size", nil)
	reg.Span("train_epoch_seconds")

	reg.Counter("BadName")                       // want `telemetry name "BadName" does not match`
	reg.Gauge("9starts")                         // want `telemetry name "9starts" does not match`
	reg.Span("has-dashes")                       // want `telemetry name "has-dashes" does not match`
	reg.Counter("_leading")                      // want `telemetry name "_leading" does not match`
	reg.Gauge(telemetry.Name("Mixed_Case", nil)) // want `telemetry name "Mixed_Case" does not match`

	reg.Counter(dynamic) // want "telemetry name is not a compile-time constant"

	//pipelayer:allow-metricname helper forwards literal names from its call sites
	reg.Counter(dynamic)
	reg.Counter(dynamic) //pipelayer:allow-metricname // want "not a compile-time constant" "needs a reason"
}

func kinds(reg *telemetry.Registry) {
	reg.Counter("dup_series")
	reg.Counter("dup_series") // same kind again: fine
	reg.Gauge("dup_series")   // want `telemetry name "dup_series" registered as gauge here but as counter at`
}
