package analysis_test

import (
	"testing"

	"pipelayer/internal/analysis"
	"pipelayer/internal/analysis/analysistest"
)

// TestSentinelCmp proves the analyzer rewrites ==/!= sentinel comparisons
// to errors.Is while leaving nil checks, errors.Is itself, function-scoped
// variables, and Err-named non-errors alone.
func TestSentinelCmp(t *testing.T) {
	analysistest.Run(t, analysis.AnalyzerSentinelCmp, "sentinelcmp")
}
