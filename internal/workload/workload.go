// Package workload counts the arithmetic operations of each network layer —
// the multiply/add counts of the paper's Section 2.1 (Equations 1–3) — and
// aggregates them into per-image forward and training operation totals.
// These feed both the GPU baseline model and the GOPS/s/mm² efficiency
// numbers of Section 6.6.
package workload

import (
	"pipelayer/internal/mapping"
	"pipelayer/internal/networks"
)

// Ops is a multiply/add operation count.
type Ops struct {
	Muls, Adds int64
}

// Total returns muls + adds (the "operations" of GOPS metrics).
func (o Ops) Total() int64 { return o.Muls + o.Adds }

// Add accumulates another count.
func (o *Ops) Add(p Ops) {
	o.Muls += p.Muls
	o.Adds += p.Adds
}

// Scale returns the count multiplied by k.
func (o Ops) Scale(k int64) Ops { return Ops{Muls: o.Muls * k, Adds: o.Adds * k} }

// ForwardOps counts the forward-pass operations of one layer for one image.
//
//	conv (Eq. 1): X·Y·C_out multiplications and additions per kernel window
//	pool (Eq. 2): K·K−1 additions + 1 multiplication per window (average);
//	              max pooling is counted identically (comparisons as adds)
//	fc  (Eq. 3): n·m multiplications, n·(m−1)+n additions (bias)
func ForwardOps(l mapping.Layer) Ops {
	switch l.Kind {
	case mapping.KindConv:
		outs := int64(l.OutH()) * int64(l.OutW()) * int64(l.OutC)
		k := int64(l.InC) * int64(l.K) * int64(l.K)
		return Ops{Muls: outs * k, Adds: outs * k} // k−1 sums + 1 bias add ≈ k
	case mapping.KindPool:
		outs := int64(l.OutH()) * int64(l.OutW()) * int64(l.OutC)
		kk := int64(l.K) * int64(l.K)
		return Ops{Muls: outs, Adds: outs * (kk - 1)}
	case mapping.KindFC:
		n, m := int64(l.FCOut), int64(l.FCIn)
		return Ops{Muls: n * m, Adds: n*(m-1) + n}
	default:
		return Ops{}
	}
}

// BackwardOps counts the backward-pass operations of one layer for one
// image: the error propagation (δ_{l-1} = Wᵀδ_l, same cost as forward) plus
// the gradient computation (∂W = d·δᵀ, again the same matrix volume). Layers
// without weights only route errors.
func BackwardOps(l mapping.Layer) Ops {
	f := ForwardOps(l)
	if !l.UsesArrays() {
		return f // pooling error routing ≈ one pass over the data
	}
	return Ops{Muls: 2 * f.Muls, Adds: 2 * f.Adds}
}

// NetworkForwardOps sums the forward op counts over every layer.
func NetworkForwardOps(s networks.Spec) Ops {
	var total Ops
	for _, l := range s.Layers {
		total.Add(ForwardOps(l))
	}
	return total
}

// NetworkTrainingOps sums forward plus backward op counts per image (the
// weight-update itself is one additional pass over the weights per batch and
// is charged separately by the timing models).
func NetworkTrainingOps(s networks.Spec) Ops {
	var total Ops
	for _, l := range s.Layers {
		total.Add(ForwardOps(l))
		total.Add(BackwardOps(l))
	}
	return total
}

// GOPs converts an op count to giga-operations.
func GOPs(o Ops) float64 { return float64(o.Total()) / 1e9 }

// WeightBytes returns the parameter footprint in bytes at the given
// per-weight width (4 for the GPU's float32 weights).
func WeightBytes(s networks.Spec, bytesPerWeight int) int64 {
	return int64(s.TotalWeights()) * int64(bytesPerWeight)
}

// ActivationBytes estimates the per-image activation traffic in bytes: every
// layer output is written once and read once at the given element width.
func ActivationBytes(s networks.Spec, bytesPerValue int) int64 {
	var vals int64
	for _, l := range s.Layers {
		switch l.Kind {
		case mapping.KindConv, mapping.KindPool:
			vals += int64(l.OutC) * int64(l.OutH()) * int64(l.OutW())
		case mapping.KindFC:
			vals += int64(l.FCOut)
		}
	}
	return 2 * vals * int64(bytesPerValue)
}
