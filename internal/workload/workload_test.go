package workload

import (
	"testing"

	"pipelayer/internal/mapping"
	"pipelayer/internal/networks"
)

func TestConvOpsMatchEquation1(t *testing.T) {
	// Equation (1): X_{l+1}·Y_{l+1}·C_{l+1}·C_l·Kx·Ky multiplications.
	l := mapping.Conv("c", 128, 14, 14, 256, 2, 1, 0) // 13×13 out
	ops := ForwardOps(l)
	wantMuls := int64(13 * 13 * 256 * 128 * 2 * 2)
	if ops.Muls != wantMuls {
		t.Fatalf("conv muls = %d, want %d", ops.Muls, wantMuls)
	}
	if ops.Adds != wantMuls {
		t.Fatalf("conv adds = %d, want ≈ %d", ops.Adds, wantMuls)
	}
}

func TestPoolOpsMatchEquation2(t *testing.T) {
	// Equation (2): X·Y·C·(KxKy) additions and X·Y·C multiplications.
	l := mapping.Pool("p", 64, 8, 8, 2)
	ops := ForwardOps(l)
	outs := int64(64 * 4 * 4)
	if ops.Muls != outs {
		t.Fatalf("pool muls = %d, want %d", ops.Muls, outs)
	}
	if ops.Adds != outs*3 {
		t.Fatalf("pool adds = %d, want %d", ops.Adds, outs*3)
	}
}

func TestFCOpsMatchEquation3(t *testing.T) {
	// Equation (3): n·m multiplications and n·(m−1) additions (+ bias).
	l := mapping.FC("f", 784, 100)
	ops := ForwardOps(l)
	if ops.Muls != 78400 {
		t.Fatalf("fc muls = %d", ops.Muls)
	}
	if ops.Adds != 100*783+100 {
		t.Fatalf("fc adds = %d", ops.Adds)
	}
}

func TestBackwardIsTwiceForwardForWeighted(t *testing.T) {
	l := mapping.FC("f", 100, 10)
	f, b := ForwardOps(l), BackwardOps(l)
	if b.Muls != 2*f.Muls || b.Adds != 2*f.Adds {
		t.Fatal("weighted backward must be 2× forward")
	}
	p := mapping.Pool("p", 4, 4, 4, 2)
	if BackwardOps(p) != ForwardOps(p) {
		t.Fatal("pool backward equals forward (routing pass)")
	}
}

func TestAlexNetForwardGOPs(t *testing.T) {
	// The paper's Section 1: AlexNet performs ~10⁹ operations per image
	// (the usual figure is ≈ 1.4 GMACs ≈ 3 GOPs with adds).
	g := GOPs(NetworkForwardOps(networks.AlexNet()))
	if g < 1 || g > 5 {
		t.Fatalf("AlexNet forward = %g GOPs, expected O(10⁹) ops", g)
	}
}

func TestVGGOrdering(t *testing.T) {
	// Deeper VGGs perform strictly more work.
	prev := 0.0
	for _, v := range networks.VGGVariants {
		g := GOPs(NetworkForwardOps(networks.VGG(v)))
		if g < prev {
			t.Fatalf("VGG-%s GOPs %g < previous %g", v, g, prev)
		}
		prev = g
	}
	// VGG-16 (D) forward is famously ≈ 31 GOPs (15.5 GMACs).
	d := GOPs(NetworkForwardOps(networks.VGG("D")))
	if d < 25 || d > 40 {
		t.Fatalf("VGG-D forward = %g GOPs, want ≈ 31", d)
	}
}

func TestTrainingOpsExceedForward(t *testing.T) {
	for _, s := range networks.EvaluationNetworks() {
		f := NetworkForwardOps(s).Total()
		tr := NetworkTrainingOps(s).Total()
		if tr <= 2*f {
			t.Errorf("%s: training ops %d not > 2× forward %d", s.Name, tr, f)
		}
	}
}

func TestOpsHelpers(t *testing.T) {
	o := Ops{Muls: 2, Adds: 3}
	if o.Total() != 5 {
		t.Fatal("Total")
	}
	o.Add(Ops{Muls: 1, Adds: 1})
	if o.Muls != 3 || o.Adds != 4 {
		t.Fatal("Add")
	}
	if o.Scale(2).Total() != 14 {
		t.Fatal("Scale")
	}
}

func TestWeightAndActivationBytes(t *testing.T) {
	s := networks.MnistA()
	if WeightBytes(s, 4) != int64(s.TotalWeights())*4 {
		t.Fatal("WeightBytes")
	}
	// Mnist-A: outputs 100 + 10 values, ×2 (write+read) ×4 bytes.
	if got := ActivationBytes(s, 4); got != 2*110*4 {
		t.Fatalf("ActivationBytes = %d", got)
	}
}
