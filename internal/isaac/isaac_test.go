package isaac

import (
	"testing"
	"testing/quick"

	"pipelayer/internal/mapping"
	"pipelayer/internal/networks"
)

func TestDepth(t *testing.T) {
	c := DefaultConfig()
	if got := c.Depth(networks.AlexNet()); got != 22*8 {
		t.Fatalf("AlexNet depth = %d", got)
	}
}

func TestTestingCyclesFormula(t *testing.T) {
	c := DefaultConfig()
	s := networks.MnistA() // L = 2 → depth 44
	if got := c.TestingCycles(s, 1000); got != 1000+44-1 {
		t.Fatalf("testing cycles = %d", got)
	}
}

func TestTrainingCyclesPenalizeDeepPipeline(t *testing.T) {
	c := DefaultConfig()
	s := networks.AlexNet()
	L, B, N := s.WeightedLayers(), 64, 6400
	isaacCycles := c.TrainingCycles(s, B, N)
	pipeCycles := mapping.PipelinedTrainingCycles(L, B, N)
	if isaacCycles <= pipeCycles {
		t.Fatalf("deep pipeline (%d) must cost more training cycles than PipeLayer (%d)",
			isaacCycles, pipeCycles)
	}
	// The paper's point: the gap grows as the batch shrinks.
	gapSmallB := float64(c.TrainingCycles(s, 8, N)) / float64(mapping.PipelinedTrainingCycles(L, 8, N))
	gapLargeB := float64(c.TrainingCycles(s, 256, N)) / float64(mapping.PipelinedTrainingCycles(L, 256, N))
	if gapSmallB <= gapLargeB {
		t.Fatalf("deep-pipeline penalty must grow for small batches: %g vs %g", gapSmallB, gapLargeB)
	}
}

func TestStreamingInferenceISAACCompetitive(t *testing.T) {
	// For long uninterrupted streams both pipelines approach 1 result/cycle;
	// ISAAC's depth only matters in the fill phase.
	c := DefaultConfig()
	s := networks.VGG("E")
	n := 1_000_000
	isaacCycles := c.TestingCycles(s, n)
	pipeCycles := mapping.PipelinedTestingCycles(s.WeightedLayers(), n)
	ratio := float64(isaacCycles) / float64(pipeCycles)
	if ratio > 1.001 {
		t.Fatalf("streaming inference ratio %g should approach 1", ratio)
	}
}

func TestSimulateStallsNoStallMatchesFormula(t *testing.T) {
	f := func(rawN, rawD uint8) bool {
		n := 1 + int(rawN)%200
		d := 1 + int(rawD)%64
		return SimulateStalls(n, d, 0, 1) == n+d-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateStallsSlowdownGrowsWithProbability(t *testing.T) {
	n, d := 500, 40
	base := SimulateStalls(n, d, 0, 7)
	mild := SimulateStalls(n, d, 0.02, 7)
	heavy := SimulateStalls(n, d, 0.10, 7)
	if !(base < mild && mild < heavy) {
		t.Fatalf("stall cycles not increasing: %d, %d, %d", base, mild, heavy)
	}
}

func TestSimulateStallsDeepPipelineSuffersMore(t *testing.T) {
	// At the same per-stage stall probability, the deep (ISAAC-style)
	// pipeline loses more throughput than the shallow (PipeLayer) one.
	n, p := 2000, 0.05
	shallow := SimulateStalls(n, 9, p, 3) // 2L+1 for L=4
	deep := SimulateStalls(n, 9*22, p, 3) // 22 stages per layer
	shallowOverhead := float64(shallow) / float64(n+9-1)
	deepOverhead := float64(deep) / float64(n+9*22-1)
	if deepOverhead <= shallowOverhead {
		t.Fatalf("deep pipeline overhead %.3f should exceed shallow %.3f", deepOverhead, shallowOverhead)
	}
}

func TestDependencyFanInPaperExample(t *testing.T) {
	// Section 3.2.2: with 2×2 kernels one point in layer l5 depends on
	// 4 + 16 + 64 + 256 = 340 points in layers l4..l1.
	if got := DependencyFanIn(2, 4); got != 340 {
		t.Fatalf("fan-in = %d, want 340", got)
	}
}

func TestDependencyFanInValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DependencyFanIn(1, 4)
}

func TestTrainingCyclesValidation(t *testing.T) {
	c := DefaultConfig()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.TrainingCycles(networks.MnistA(), 7, 100)
}

func TestSimulateStallsValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { SimulateStalls(0, 4, 0, 1) },
		func() { SimulateStalls(4, 0, 0, 1) },
		func() { SimulateStalls(4, 4, 1.0, 1) },
		func() { SimulateStalls(4, 4, -0.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
