// Package isaac models the ISAAC-style deep intra-layer pipeline that
// PipeLayer argues against (paper Sections 1 and 3.2.2): a very deep
// pipeline that computes small tiles of a layer and forwards partial
// outputs, giving one result per cycle on long uninterrupted input streams
// but suffering (a) long fill/drain around every batch boundary in training
// and (b) stalls when any of a point's many upstream dependencies is
// delayed ("one point in layer l5 depends on 340 points upstream").
//
// The package provides closed-form cycle counts, a Monte-Carlo stall
// simulator, and the dependency fan-in computation behind the paper's
// 340-point example, so the experiments can reproduce the comparison
// quantitatively.
package isaac

import (
	"fmt"
	"math/rand"

	"pipelayer/internal/networks"
)

// Config parameterizes the ISAAC-style pipeline model.
type Config struct {
	// StagesPerLayer is the number of pipeline stages one weighted layer
	// contributes (ISAAC's IMA datapath is itself deeply pipelined; the tile
	// forwarding adds more). PipeLayer's coarse pipeline has exactly one
	// stage per weighted layer.
	StagesPerLayer int
	// StallProb is the per-stage, per-cycle probability that a tile's
	// dependencies are not ready (pipeline imbalance / bubbles).
	StallProb float64
	// Seed drives the Monte-Carlo stall simulation.
	Seed int64
}

// DefaultConfig uses a 22-stage per-layer pipeline (the depth class of
// ISAAC's in-situ multiply-accumulate datapath) and no stalls.
func DefaultConfig() Config {
	return Config{StagesPerLayer: 22, StallProb: 0, Seed: 1}
}

// Depth returns the total pipeline depth for a network.
func (c Config) Depth(s networks.Spec) int {
	return c.StagesPerLayer * s.WeightedLayers()
}

// TestingCycles is the streaming-inference cycle count: after D−1 fill
// cycles one result per cycle — the regime ISAAC is designed for.
func (c Config) TestingCycles(s networks.Spec, n int) int {
	mustPositive(n)
	return n + c.Depth(s) - 1
}

// TrainingCycles models training on the deep pipeline: the batch boundary
// forces the whole depth to fill and drain every batch (forward and backward
// both traverse the pipeline, and the next batch cannot enter until the
// update lands), so each batch costs B + 2D cycles plus the update cycle.
func (c Config) TrainingCycles(s networks.Spec, batch, n int) int {
	mustPositive(n)
	if batch <= 0 || n%batch != 0 {
		panic(fmt.Sprintf("isaac: batch %d must divide n %d", batch, n))
	}
	d := c.Depth(s)
	return (n / batch) * (batch + 2*d + 1)
}

// SimulateStalls plays n items through a depth-d pipeline where every stage
// independently stalls with probability p each cycle (a stalled stage holds
// the whole upstream — the paper's bubble propagation). It returns the total
// cycle count; with p = 0 it equals n + d − 1.
func SimulateStalls(n, d int, p float64, seed int64) int {
	mustPositive(n)
	if d <= 0 {
		panic("isaac: depth must be positive")
	}
	if p < 0 || p >= 1 {
		panic("isaac: stall probability must be in [0,1)")
	}
	rng := rand.New(rand.NewSource(seed))
	// stages[i] = id of the item occupying stage i (0 = empty slot/bubble).
	stages := make([]int, d)
	move := make([]bool, d)
	nextIn := 1
	done := 0
	cycles := 0
	for done < n {
		cycles++
		// Inject at the start of the cycle: the new item occupies stage 0
		// during this cycle.
		if stages[0] == 0 && nextIn <= n {
			stages[0] = nextIn
			nextIn++
		}
		// A stage advances iff it holds an item, does not stall, and its
		// downstream neighbour is empty or advancing (rigid pipeline, no
		// skid buffers — a stall backs up everything behind it).
		for i := d - 1; i >= 0; i-- {
			if stages[i] == 0 {
				move[i] = false
				continue
			}
			if p > 0 && rng.Float64() < p {
				move[i] = false
				continue
			}
			if i == d-1 {
				move[i] = true
			} else {
				move[i] = stages[i+1] == 0 || move[i+1]
			}
		}
		if move[d-1] {
			done++
			stages[d-1] = 0
		}
		for i := d - 2; i >= 0; i-- {
			if move[i] {
				stages[i+1] = stages[i]
				stages[i] = 0
			}
		}
		if cycles > 1000*(n+d)+10000 {
			panic("isaac: stall simulation diverged")
		}
	}
	return cycles
}

// DependencyFanIn reproduces the paper's Section 3.2.2 count: with all
// kernels of size k×k (stride 1, no pooling), one point in layer l+depth
// depends on fanIn(depth) = Σ_{i=1..depth} (1+(k-1)·i)² points... the paper
// counts the per-layer receptive fields 4, 16, 64, 256 for k=2 over four
// upstream layers, i.e. (k²)^i, totaling 340. We implement the paper's
// geometric counting.
func DependencyFanIn(k, depth int) int {
	if k <= 1 || depth <= 0 {
		panic("isaac: DependencyFanIn requires k ≥ 2, depth ≥ 1")
	}
	total := 0
	term := 1
	for i := 0; i < depth; i++ {
		term *= k * k
		total += term
	}
	return total
}

func mustPositive(n int) {
	if n <= 0 {
		panic("isaac: n must be positive")
	}
}
