package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"pipelayer/internal/telemetry/flight"
	"pipelayer/internal/tensor"
)

// PredictRequest is the JSON body of POST /predict: a flat input vector
// matching the served network's input size (e.g. 784 values for a 28×28
// model).
type PredictRequest struct {
	Input []float64 `json:"input"`
}

// PredictResponse is the JSON reply: the per-class scores and their argmax.
type PredictResponse struct {
	Scores []float64 `json:"scores"`
	Class  int       `json:"class"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// DecodePredictRequest parses and validates a predict body against the
// expected input size. It rejects malformed JSON, unknown fields, wrong
// lengths, and non-finite values (NaN/±Inf would poison the quantization
// scale), and it never panics on any input — the fuzz-tested contract.
func DecodePredictRequest(body []byte, wantSize int) (*tensor.Tensor, error) {
	var req PredictRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: bad request body: %w", err)
	}
	if dec.More() {
		return nil, errors.New("serve: trailing data after request body")
	}
	if len(req.Input) == 0 {
		return nil, errors.New("serve: missing input")
	}
	if len(req.Input) != wantSize {
		return nil, fmt.Errorf("serve: input has %d elements, want %d", len(req.Input), wantSize)
	}
	for i, v := range req.Input {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("serve: input[%d] is not finite", i)
		}
	}
	return tensor.FromSlice(req.Input, wantSize), nil
}

// FlightTraceHeader carries a request's flight-recorder trace id: send it to
// attribute the request's spans to a caller-chosen id, and read it off the
// response to find the span tree a prediction produced (e.g. in the
// /debug/flight/trace.json download). Absent when tracing is disabled.
const FlightTraceHeader = "X-Flight-Trace"

// WeightVersionHeader echoes, on every successful prediction, the weight
// version that computed the response — the HTTP face of Result.Version.
const WeightVersionHeader = "X-Weight-Version"

// HealthResponse is the GET /healthz body: the readiness state ("ok",
// "lagging", "pinned" with a 200, or "draining" with a 503) and the weight
// version currently being served.
type HealthResponse struct {
	Status        string `json:"status"`
	WeightVersion uint64 `json:"weight_version"`
}

// Handler returns the server's HTTP interface:
//
//	POST /predict  — PredictRequest in, PredictResponse out
//	GET  /healthz  — HealthResponse: 200 while serving (status ok, lagging,
//	                 or pinned — see Readiness), 503 once draining
//
// timeout, when positive, bounds each request's time in the queue and
// readout via its context. Overload maps to 503 (retryable, with a
// Retry-After estimate from the current queue depth), a deadline to 504,
// and any validation failure to 400. See FlightTraceHeader for trace
// correlation and WeightVersionHeader for version attribution.
func (s *Server) Handler(timeout time.Duration) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Closed() {
			writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining", WeightVersion: s.Version()})
			return
		}
		writeJSON(w, http.StatusOK, HealthResponse{Status: s.Readiness().String(), WeightVersion: s.Version()})
	})
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
			return
		}
		body := http.MaxBytesReader(w, r.Body, 1<<22) // 4 MiB: far above any sane input
		defer body.Close()
		buf, err := io.ReadAll(body)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		x, err := DecodePredictRequest(buf, s.in)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		ctx := r.Context()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		if h := r.Header.Get(FlightTraceHeader); h != "" {
			if id, perr := strconv.ParseUint(h, 10, 64); perr == nil && id != 0 {
				ctx = flight.WithTrace(ctx, id)
			}
		}
		res, err := s.Predict(ctx, x)
		switch {
		case err == nil:
			if res.Trace != 0 {
				w.Header().Set(FlightTraceHeader, strconv.FormatUint(res.Trace, 10))
			}
			w.Header().Set(WeightVersionHeader, strconv.FormatUint(res.Version, 10))
			writeJSON(w, http.StatusOK, PredictResponse{Scores: res.Scores.Data(), Class: res.Class})
		case errors.Is(err, ErrOverloaded):
			w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfter()))
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		case errors.Is(err, ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		case errors.Is(err, context.DeadlineExceeded):
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
