package serve

import (
	"math"
	"strings"
	"testing"
)

// FuzzDecodePredictRequest pins the decoder's contract: for any byte string
// it must either return a well-formed tensor of exactly the requested size
// with finite values, or an error — and it must never panic. The seed corpus
// (here and in testdata/fuzz) covers malformed JSON, wrong shapes, type
// confusion, huge numbers, and deep nesting.
func FuzzDecodePredictRequest(f *testing.F) {
	f.Add([]byte(`{"input":[1,2,3,4]}`))
	f.Add([]byte(`{"input":[1,2`))
	f.Add([]byte(`{"input":[]}`))
	f.Add([]byte(`{"input":"abc"}`))
	f.Add([]byte(`{"Input":[0.5,0.5,0.5,0.5]}`))
	f.Add([]byte(`{"input":[1e999,0,0,0]}`))
	f.Add([]byte(`{"input":[1,2,3,4]} trailing`))
	f.Add([]byte(`{"unknown":true,"input":[1,2,3,4]}`))
	f.Add([]byte(`[[[[[[[[[[[[[[[[1]]]]]]]]]]]]]]]]`))
	f.Add([]byte(strings.Repeat(`{"input":`, 64)))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Add([]byte(``))

	const wantSize = 4
	f.Fuzz(func(t *testing.T, body []byte) {
		x, err := DecodePredictRequest(body, wantSize)
		if err != nil {
			if x != nil {
				t.Fatalf("error %v with non-nil tensor", err)
			}
			return
		}
		if x.Size() != wantSize {
			t.Fatalf("accepted input has %d elements, want %d", x.Size(), wantSize)
		}
		for i, v := range x.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted non-finite value %v at %d", v, i)
			}
		}
	})
}
