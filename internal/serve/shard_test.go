package serve

// Backpressure and cancellation tests for the layer-sharded backend: a
// stalled tail shard must surface as ErrOverloaded at admission — bounded
// inter-shard buffers, a blocked worker, a stalled batcher, a full queue —
// and canceled in-flight requests must never wedge the chain.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pipelayer/internal/core"
	"pipelayer/internal/energy"
	"pipelayer/internal/testutil"
)

// loadedAccelSeed is loadedAccel with a caller-chosen weight seed: a second
// "weight version" of the same topology for swap tests.
func loadedAccelSeed(t testing.TB, seed int64) *core.Accelerator {
	t.Helper()
	a := core.New(energy.DefaultModel())
	if err := a.TopologySet(testutil.TinyMLP("serve-mlp"), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(seed))); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestShardedStalledTailSurfacesOverload: stall the tail shard and keep
// submitting. The stall propagates backwards — bounded shard inboxes, the
// worker blocked in the chain, the unbuffered dispatch, the batcher — until
// the intake queue fills and Predict fails fast with ErrOverloaded. After
// the stall clears, everything admitted completes bit-identically.
func TestShardedStalledTailSurfacesOverload(t *testing.T) {
	base := runtime.NumGoroutine()
	a := loadedAccel(t, nil)
	xs := inputs(t, 1)
	want := serialReference(t, a, xs)

	gate := make(chan struct{})
	var stalled atomic.Bool
	s, err := New(a, Config{
		Shards:   2, // TinyMLP: fc1 | fc2
		Replicas: 1,
		MaxBatch: 2,
		MaxWait:  100 * time.Microsecond,
		QueueCap: 4,
		testHookBeforeShard: func(k int) {
			if k == 1 && stalled.Load() {
				<-gate
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stalled.Store(true)

	// More submitters than the whole pipeline can hold: queue(4) + batcher +
	// worker + chain inboxes. The surplus must be shed, not buffered.
	const submitters = 24
	errs := make([]error, submitters)
	scores := make([][]float64, submitters)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Predict(context.Background(), xs[0])
			errs[i] = err
			if err == nil {
				scores[i] = res.Scores.Data()
			}
		}(i)
	}

	// Within the deadline, a fresh Predict must fail fast with ErrOverloaded:
	// the stalled shard's backpressure has reached admission. Probes that
	// sneak into remaining queue slots get a short deadline so the poll
	// never blocks on the stalled pipeline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		_, err := s.Predict(ctx, xs[0])
		cancel()
		if errors.Is(err, ErrOverloaded) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled tail shard never surfaced ErrOverloaded at admission (last err: %v)", err)
		}
		time.Sleep(time.Millisecond)
	}

	close(gate)
	stalled.Store(false)
	wg.Wait()
	completed := 0
	for i := 0; i < submitters; i++ {
		switch {
		case errs[i] == nil:
			completed++
			for j, v := range scores[i] {
				if v != want[0].Data()[j] {
					t.Fatalf("submitter %d score %d: %v != %v", i, j, v, want[0].Data()[j])
				}
			}
		case errors.Is(errs[i], ErrOverloaded):
			// shed at admission: the correct fate for the surplus
		default:
			t.Fatalf("submitter %d: unexpected error %v", i, errs[i])
		}
	}
	if completed == 0 {
		t.Fatal("no submitter completed after the stall cleared")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoGoroutineLeaks(t, base)
}

// TestShardedCancellationDoesNotWedge: requests whose deadlines expire while
// the chain is stalled return their context error; once the stall clears the
// chain serves new requests as if nothing happened, and Close drains clean.
func TestShardedCancellationDoesNotWedge(t *testing.T) {
	base := runtime.NumGoroutine()
	a := loadedAccel(t, nil)
	xs := inputs(t, 2)
	want := serialReference(t, a, xs)

	gate := make(chan struct{})
	var stalled atomic.Bool
	s, err := New(a, Config{
		Shards:   2,
		Replicas: 2,
		MaxBatch: 4,
		MaxWait:  100 * time.Microsecond,
		QueueCap: 16,
		testHookBeforeShard: func(k int) {
			if k == 1 && stalled.Load() {
				<-gate
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stalled.Store(true)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			_, err := s.Predict(ctx, xs[0])
			if err == nil || errors.Is(err, ErrOverloaded) {
				return // raced ahead of the stall or was shed — both fine
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("stalled request returned %v, want deadline exceeded", err)
			}
		}()
	}
	wg.Wait() // every caller got its context error despite the stall

	close(gate)
	stalled.Store(false)
	res, err := s.Predict(context.Background(), xs[1])
	if err != nil {
		t.Fatalf("chain wedged after cancellations: %v", err)
	}
	for j, v := range res.Scores.Data() {
		if v != want[1].Data()[j] {
			t.Fatalf("post-cancel score %d: %v != %v", j, v, want[1].Data()[j])
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoGoroutineLeaks(t, base)
}

// TestShardedSwapBasic: a hot swap onto a sharded server retires the old
// chain and installs the new weights; the next response reports the new
// version and bit-matches the new machine's serial path.
func TestShardedSwapBasic(t *testing.T) {
	base := runtime.NumGoroutine()
	a := loadedAccel(t, nil)
	b := loadedAccelSeed(t, 123)
	xs := inputs(t, 2)
	wantA := serialReference(t, a, xs)
	wantB := serialReference(t, b, xs)

	s, err := New(a, Config{Shards: 2, MaxBatch: 4, MaxWait: 100 * time.Microsecond, QueueCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Predict(context.Background(), xs[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 {
		t.Fatalf("pre-swap version %d, want 1", res.Version)
	}
	for j, v := range res.Scores.Data() {
		if v != wantA[0].Data()[j] {
			t.Fatalf("pre-swap score %d: %v != %v", j, v, wantA[0].Data()[j])
		}
	}

	reps, err := b.ReplicaSet(s.cfg.Replicas)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Swap(reps, 2); err != nil {
		t.Fatal(err)
	}
	res, err = s.Predict(context.Background(), xs[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 {
		t.Fatalf("post-swap version %d, want 2", res.Version)
	}
	for j, v := range res.Scores.Data() {
		if v != wantB[1].Data()[j] {
			t.Fatalf("post-swap score %d: %v != %v", j, v, wantB[1].Data()[j])
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoGoroutineLeaks(t, base)
}
