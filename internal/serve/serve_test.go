package serve

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"pipelayer/internal/core"
	"pipelayer/internal/energy"
	"pipelayer/internal/fault"
	"pipelayer/internal/parallel"
	"pipelayer/internal/telemetry"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

// loadedAccel builds a weight-loaded tiny MLP, optionally with faults.
func loadedAccel(t testing.TB, inj *fault.Injector) *core.Accelerator {
	t.Helper()
	a := core.New(energy.DefaultModel())
	if inj != nil {
		if err := a.SetFaults(inj); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.TopologySet(testutil.TinyMLP("serve-mlp"), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(77))); err != nil {
		t.Fatal(err)
	}
	return a
}

func inputs(t testing.TB, n int) []*tensor.Tensor {
	t.Helper()
	samples := testutil.FlatSamples(n, 9)
	xs := make([]*tensor.Tensor, n)
	for i, s := range samples {
		xs[i] = s.Input
	}
	return xs
}

// serialReference computes the expected scores for each input through the
// serial single-request path on a fresh replica of the same machine.
func serialReference(t testing.TB, a *core.Accelerator, xs []*tensor.Tensor) []*tensor.Tensor {
	t.Helper()
	rep, err := a.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*tensor.Tensor, len(xs))
	for i, x := range xs {
		out[i] = rep.Infer(x)
	}
	return out
}

// assertNoGoroutineLeaks polls until the goroutine count returns to the
// baseline — the hand-rolled goleak check. The parallel pool uses transient
// goroutines and the server joins everything in Close, so the count must
// settle.
func assertNoGoroutineLeaks(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeLoad is the load harness of the acceptance criteria: 200
// concurrent requests with mixed deadlines against a multi-replica server.
// Every request gets exactly one response; every successful response is
// bit-identical to the serial single-request path; the drain leaks nothing.
func TestServeLoad(t *testing.T) {
	const n = 200
	base := runtime.NumGoroutine()
	a := loadedAccel(t, nil)
	xs := inputs(t, n)
	want := serialReference(t, a, xs)

	reg := telemetry.NewRegistry()
	s, err := New(a, Config{Replicas: 3, MaxBatch: 16, MaxWait: 200 * time.Microsecond, QueueCap: n, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	type reply struct {
		res Result
		err error
	}
	replies := make([]reply, n)
	var answered [n]int32 // per-request response count: exactly one each
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			switch i % 3 {
			case 1: // generous deadline: must succeed
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Minute)
				defer cancel()
			case 2: // already-expired deadline: must fail fast, never hang
				var cancel context.CancelFunc
				ctx, cancel = context.WithDeadline(ctx, time.Now().Add(-time.Second))
				defer cancel()
			}
			res, err := s.Predict(ctx, xs[i])
			replies[i] = reply{res: res, err: err}
			answered[i]++
		}(i)
	}
	wg.Wait()

	for i, r := range replies {
		if answered[i] != 1 {
			t.Fatalf("request %d answered %d times", i, answered[i])
		}
		if i%3 == 2 {
			if !errors.Is(r.err, context.DeadlineExceeded) {
				t.Fatalf("request %d with expired deadline: got %v, want deadline exceeded", i, r.err)
			}
			continue
		}
		if r.err != nil {
			t.Fatalf("request %d failed: %v", i, r.err)
		}
		if !tensor.Equal(r.res.Scores, want[i], 0) {
			t.Fatalf("request %d: batched scores diverged from serial reference", i)
		}
		if _, idx := want[i].Max(); idx != r.res.Class {
			t.Fatalf("request %d: class %d, want %d", i, r.res.Class, idx)
		}
	}

	// Two of every three requests enqueue; the expired third fails in
	// Predict's context precheck. Require plausible motion rather than
	// pinning scheduler-dependent exact counts.
	if got := reg.Counter("serve_requests_total").Value(); got < int64(n)/2 || got > int64(n) {
		t.Fatalf("serve_requests_total = %d, outside [%d, %d]", got, n/2, n)
	}
	if reg.Histogram("serve_batch_size", nil).Count() == 0 {
		t.Fatal("batch-size histogram never observed a batch")
	}
	if reg.Span("serve_request_seconds").Count() == 0 {
		t.Fatal("latency span never recorded a request")
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Predict(context.Background(), xs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Predict after Close: %v, want ErrClosed", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close: %v, want ErrClosed", err)
	}
	assertNoGoroutineLeaks(t, base)
}

// TestServeDeterminism is the property test: for every worker count in
// {1, 2, 7, GOMAXPROCS} and replica count in {1, 3}, concurrent batched
// serving returns bit-identical scores to the serial single-request path.
func TestServeDeterminism(t *testing.T) {
	const n = 48
	a := loadedAccel(t, nil)
	xs := inputs(t, n)
	want := serialReference(t, a, xs)

	saved := parallel.Workers()
	defer parallel.SetWorkers(saved)

	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		for _, replicas := range []int{1, 3} {
			parallel.SetWorkers(workers)
			s, err := New(a, Config{Replicas: replicas, MaxBatch: 16, MaxWait: 100 * time.Microsecond, QueueCap: n})
			if err != nil {
				t.Fatal(err)
			}
			results := make([]Result, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					res, err := s.Predict(context.Background(), xs[i])
					if err != nil {
						t.Errorf("workers=%d replicas=%d: request %d: %v", workers, replicas, i, err)
						return
					}
					results[i] = res
				}(i)
			}
			wg.Wait()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if t.Failed() {
				return
			}
			for i := range results {
				if !tensor.Equal(results[i].Scores, want[i], 0) {
					t.Fatalf("workers=%d replicas=%d: request %d diverged from serial", workers, replicas, i)
				}
			}
		}
	}
}

// TestServeWithFaultsDeterministic proves serving composes with SetFaults:
// a faulty machine serves batched results bit-identical to its own serial
// path (and distinct fault state does not race under concurrent replicas).
func TestServeWithFaultsDeterministic(t *testing.T) {
	const n = 32
	inj := fault.MustNew(fault.Config{
		Seed: 3, StuckOff: 2e-4, StuckOn: 1e-4, Drift: 0.05, Spares: 4, Degrade: true,
	})
	a := loadedAccel(t, inj)
	if inj.Counters().Injected == 0 {
		t.Fatal("no faults injected")
	}
	xs := inputs(t, n)
	want := serialReference(t, a, xs)

	s, err := New(a, Config{Replicas: 2, MaxBatch: 8, MaxWait: 100 * time.Microsecond, QueueCap: n})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Predict(context.Background(), xs[i])
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if !tensor.Equal(res.Scores, want[i], 0) {
				t.Errorf("request %d: faulty serving diverged from faulty serial path", i)
			}
		}(i)
	}
	wg.Wait()
}

// TestServeOverload stalls the workers behind a gate so the queue fills
// deterministically: with total pipeline capacity bounded, surplus requests
// must fail fast with ErrOverloaded, and every admitted request must still
// complete once the gate lifts.
func TestServeOverload(t *testing.T) {
	const attempts = 80
	a := loadedAccel(t, nil)
	xs := inputs(t, 1)
	gate := make(chan struct{})
	s, err := New(a, Config{
		Replicas: 1, MaxBatch: 4, MaxWait: 50 * time.Millisecond, QueueCap: 4,
		testHookBeforeBatch: func() { <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	overloaded, completed := 0, 0
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Predict(context.Background(), xs[0])
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				completed++
			case errors.Is(err, ErrOverloaded):
				overloaded++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	// The pipeline holds at most QueueCap + 2×MaxBatch requests while gated
	// (queue, the batcher's forming batch, the worker's stalled batch), so
	// with attempts well above that the overflow must be rejected. Wait for
	// the rejections before lifting the gate.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		got := overloaded
		mu.Unlock()
		if got >= attempts-(4+2*4+1) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d overloads after 5s", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if overloaded == 0 {
		t.Fatal("no request was rejected with ErrOverloaded")
	}
	if completed+overloaded != attempts {
		t.Fatalf("%d completed + %d overloaded != %d attempts (lost or duplicated requests)", completed, overloaded, attempts)
	}
	if completed == 0 {
		t.Fatal("every request was rejected; admitted requests must complete")
	}
}

// TestServeCloseDrains: requests in flight when Close begins are all
// answered before Close returns — the graceful-drain contract.
func TestServeCloseDrains(t *testing.T) {
	const n = 12
	base := runtime.NumGoroutine()
	a := loadedAccel(t, nil)
	xs := inputs(t, n)
	want := serialReference(t, a, xs)

	gate := make(chan struct{})
	s, err := New(a, Config{
		Replicas: 1, MaxBatch: 4, MaxWait: time.Millisecond, QueueCap: n,
		testHookBeforeBatch: func() { <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	results := make([]Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Predict(context.Background(), xs[i])
		}(i)
	}
	// Let requests reach the queue, then begin the drain while the worker is
	// still gated; release the gate after Close has started.
	time.Sleep(50 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	time.Sleep(20 * time.Millisecond)
	close(gate)
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d lost in drain: %v", i, errs[i])
		}
		if !tensor.Equal(results[i].Scores, want[i], 0) {
			t.Fatalf("request %d: drained result diverged", i)
		}
	}
	assertNoGoroutineLeaks(t, base)
}

// TestServeValidatesInput: nil and wrong-size inputs fail fast without
// touching the queue.
func TestServeValidatesInput(t *testing.T) {
	a := loadedAccel(t, nil)
	s, err := New(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Predict(context.Background(), nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := s.Predict(context.Background(), tensor.New(3)); err == nil {
		t.Fatal("wrong-size input accepted")
	}
}

// TestNewServerRequiresLoadedMachine: the server refuses an unloaded
// accelerator (NewReplica's precondition surfaces at construction).
func TestNewServerRequiresLoadedMachine(t *testing.T) {
	a := core.New(energy.DefaultModel())
	if _, err := New(a, Config{}); err == nil {
		t.Fatal("New accepted an accelerator without weights")
	}
}
