package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pipelayer/internal/core"
	"pipelayer/internal/energy"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

// machineWithSeed builds a weight-loaded tiny MLP whose weights depend on
// the seed — each seed acts as a distinct "weight version" for swap tests.
func machineWithSeed(t testing.TB, seed int64) *core.Accelerator {
	t.Helper()
	a := core.New(energy.DefaultModel())
	if err := a.TopologySet(testutil.TinyMLP("serve-mlp"), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(seed))); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestSwapZeroDowntimeUnderLoad drives continuous concurrent load across
// three hot swaps: no request may fail, and every response must carry
// exactly one weight version whose reference outputs it matches bit for bit
// — the no-torn-response contract.
func TestSwapZeroDowntimeUnderLoad(t *testing.T) {
	const lanes = 8
	base := runtime.NumGoroutine()
	xs := inputs(t, 16)
	machines := map[uint64]*core.Accelerator{}
	refs := map[uint64][]*tensor.Tensor{}
	for v := uint64(1); v <= 4; v++ {
		machines[v] = machineWithSeed(t, 100+int64(v))
		refs[v] = serialReference(t, machines[v], xs)
	}

	s, err := New(machines[1], Config{
		Replicas: 2, MaxBatch: 8, MaxWait: 200 * time.Microsecond, QueueCap: 256,
	})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var seen [5]atomic.Int64 // responses per version
	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for i := l; !stop.Load(); i++ {
				idx := i % len(xs)
				res, err := s.Predict(context.Background(), xs[idx])
				if err != nil {
					t.Errorf("lane %d: predict failed during swap: %v", l, err)
					return
				}
				if res.Version < 1 || res.Version > 4 {
					t.Errorf("lane %d: response version %d out of range", l, res.Version)
					return
				}
				if !tensor.Equal(res.Scores, refs[res.Version][idx], 0) {
					t.Errorf("lane %d: torn response: scores do not match version %d reference", l, res.Version)
					return
				}
				seen[res.Version].Add(1)
			}
		}(l)
	}

	for v := uint64(2); v <= 4; v++ {
		time.Sleep(3 * time.Millisecond)
		reps, err := machines[v].ReplicaSet(2)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Swap(reps, v); err != nil {
			t.Fatalf("swap to v%d: %v", v, err)
		}
		// A post-swap request is served by the new version: workers load
		// their slot at the next batch boundary.
		res, err := s.Predict(context.Background(), xs[0])
		if err != nil {
			t.Fatal(err)
		}
		if res.Version != v {
			t.Fatalf("after swap to v%d, got version %d", v, res.Version)
		}
		seen[res.Version].Add(1)
	}
	stop.Store(true)
	wg.Wait()

	if got := s.Version(); got != 4 {
		t.Fatalf("Version() = %d, want 4", got)
	}
	for v := 1; v <= 4; v++ {
		if seen[v].Load() == 0 {
			t.Fatalf("version %d never served a response", v)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoGoroutineLeaks(t, base)
}

func TestSwapValidation(t *testing.T) {
	a := machineWithSeed(t, 1)
	s, err := New(a, Config{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	good, err := machineWithSeed(t, 2).ReplicaSet(2)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Swap(good[:1], 2); err == nil {
		t.Fatal("swap with wrong replica count must error")
	}
	if err := s.Swap([]*core.Replica{good[0], nil}, 2); err == nil {
		t.Fatal("swap with nil replica must error")
	}
	if err := s.Swap(good, 0); err == nil {
		t.Fatal("swap to version 0 must error")
	}

	// Wrong input geometry: an image network cannot replace a flat one.
	cnn := core.New(energy.DefaultModel())
	if err := cnn.TopologySet(testutil.TinyDeepCNN("serve-swap-cnn"), 1); err != nil {
		t.Fatal(err)
	}
	if err := cnn.WeightLoad(nil, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	wrong, err := cnn.ReplicaSet(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Swap(wrong, 2); err == nil {
		t.Fatal("swap with mismatched input size must error")
	}

	if err := s.Swap(good, 2); err != nil {
		t.Fatalf("valid swap refused: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Swap(good, 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("swap after close: err = %v, want ErrClosed", err)
	}
}

// TestOverloadPreservedMidSwap: backpressure must survive a hot swap — a
// full queue keeps shedding with ErrOverloaded while the swap lands, and
// admitted requests complete afterwards on a single consistent version each.
func TestOverloadPreservedMidSwap(t *testing.T) {
	m1, m2 := machineWithSeed(t, 11), machineWithSeed(t, 12)
	xs := inputs(t, 1)
	refs := map[uint64]*tensor.Tensor{
		1: serialReference(t, m1, xs)[0],
		2: serialReference(t, m2, xs)[0],
	}
	gate := make(chan struct{})
	s, err := New(m1, Config{
		Replicas: 1, MaxBatch: 1, MaxWait: 50 * time.Millisecond, QueueCap: 2,
		testHookBeforeBatch: func() { <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Saturate the pipeline: workers are gated, so admissions are bounded
	// and surplus calls fail fast.
	const attempts = 20
	var wg sync.WaitGroup
	var mu sync.Mutex
	var completed []Result
	overloadedBefore := 0
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Predict(context.Background(), xs[0])
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				completed = append(completed, res)
			case errors.Is(err, ErrOverloaded):
				overloadedBefore++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	// Wait until the queue is demonstrably full.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := overloadedBefore
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// Swap while saturated: it must succeed without touching the queue…
	reps, err := m2.ReplicaSet(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Swap(reps, 2); err != nil {
		t.Fatalf("swap under overload: %v", err)
	}
	// …and backpressure still holds mid-swap.
	if _, err := s.Predict(context.Background(), xs[0]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("post-swap predict on full queue: err = %v, want ErrOverloaded", err)
	}
	if ra := s.RetryAfter(); ra < 1 {
		t.Fatalf("RetryAfter() = %d, want >= 1", ra)
	}

	close(gate)
	wg.Wait()
	for i, res := range completed {
		want, ok := refs[res.Version]
		if !ok {
			t.Fatalf("response %d carries unknown version %d", i, res.Version)
		}
		if !tensor.Equal(res.Scores, want, 0) {
			t.Fatalf("response %d does not match its version %d reference", i, res.Version)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPHealthzStates covers the readiness satellite: ok / lagging /
// pinned report 200 with the state in the body; draining reports 503.
func TestHTTPHealthzStates(t *testing.T) {
	s, err := New(machineWithSeed(t, 21), Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler(time.Second)
	get := func() (int, HealthResponse) {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		var hr HealthResponse
		if err := json.Unmarshal(w.Body.Bytes(), &hr); err != nil {
			t.Fatalf("healthz body %q: %v", w.Body, err)
		}
		return w.Code, hr
	}

	if code, hr := get(); code != http.StatusOK || hr.Status != "ok" || hr.WeightVersion != 1 {
		t.Fatalf("fresh server healthz = %d %+v, want 200 ok v1", code, hr)
	}
	s.SetReadiness(ReadinessLagging)
	if code, hr := get(); code != http.StatusOK || hr.Status != "lagging" {
		t.Fatalf("lagging healthz = %d %+v", code, hr)
	}
	s.SetReadiness(ReadinessPinned)
	if code, hr := get(); code != http.StatusOK || hr.Status != "pinned" {
		t.Fatalf("pinned healthz = %d %+v", code, hr)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if code, hr := get(); code != http.StatusServiceUnavailable || hr.Status != "draining" {
		t.Fatalf("draining healthz = %d %+v, want 503 draining", code, hr)
	}
}

// TestHTTPWeightVersionHeader: every successful prediction echoes the
// version that computed it, before and after a swap.
func TestHTTPWeightVersionHeader(t *testing.T) {
	m1, m2 := machineWithSeed(t, 31), machineWithSeed(t, 32)
	s, err := New(m1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler(time.Second)
	body := validBody(t, s)

	w := postJSON(t, h, "/predict", body)
	if w.Code != http.StatusOK {
		t.Fatalf("predict: status %d", w.Code)
	}
	if got := w.Header().Get(WeightVersionHeader); got != "1" {
		t.Fatalf("%s = %q, want 1", WeightVersionHeader, got)
	}
	reps, err := m2.ReplicaSet(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Swap(reps, 7); err != nil {
		t.Fatal(err)
	}
	w = postJSON(t, h, "/predict", body)
	if w.Code != http.StatusOK {
		t.Fatalf("post-swap predict: status %d", w.Code)
	}
	if got := w.Header().Get(WeightVersionHeader); got != "7" {
		t.Fatalf("post-swap %s = %q, want 7", WeightVersionHeader, got)
	}
}

// TestHTTPRetryAfterOnOverload covers the Retry-After satellite: a 503 shed
// by the full queue must carry a parseable positive Retry-After.
func TestHTTPRetryAfterOnOverload(t *testing.T) {
	gate := make(chan struct{})
	s, err := New(machineWithSeed(t, 41), Config{
		Replicas: 1, MaxBatch: 1, MaxWait: 50 * time.Millisecond, QueueCap: 1,
		testHookBeforeBatch: func() { <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler(time.Minute)
	xs := inputs(t, 1)

	// Fill the pipeline with direct calls until the intake queue is full.
	// With the workers gated nothing drains, so the fullness is stable and
	// the synchronous HTTP post below must shed.
	var wg sync.WaitGroup
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) < cap(s.queue) {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.Predict(context.Background(), xs[0])
		}()
		time.Sleep(time.Millisecond)
	}

	w := postJSON(t, h, "/predict", validBody(t, s))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("overloaded predict: status %d, want 503", w.Code)
	}
	ra := w.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("503 without Retry-After header")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q is not a positive integer: %v", ra, err)
	}

	close(gate)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
