package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"pipelayer/internal/telemetry"
	"pipelayer/internal/telemetry/flight"
)

// spansByTrace groups the request-track events of one trace by name.
func spansByTrace(rec *flight.Recorder) map[uint64]map[string]flight.Event {
	out := map[uint64]map[string]flight.Event{}
	for _, e := range rec.Events() {
		if e.Trace == 0 {
			continue
		}
		m := out[e.Trace]
		if m == nil {
			m = map[string]flight.Event{}
			out[e.Trace] = m
		}
		m[e.Name] = e
	}
	return out
}

// TestFlightDecompositionSumsExactly is the acceptance criterion made strict:
// for every traced request, queue-wait + batch-wait + compute must equal the
// recorded end-to-end latency EXACTLY, because adjacent spans share boundary
// timestamps by construction — not merely within the 5% tolerance.
func TestFlightDecompositionSumsExactly(t *testing.T) {
	a := loadedAccel(t, nil)
	rec := flight.New(flight.Config{Capacity: 4096})
	reg := telemetry.NewRegistry()
	s, err := New(a, Config{
		Replicas: 2, MaxBatch: 4, MaxWait: time.Millisecond, QueueCap: 64,
		Metrics: reg, Flight: rec, TraceDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 32
	xs := inputs(t, n)
	var wg sync.WaitGroup
	traces := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		//pipelayer:allow-spawn load-test clients, joined below
		go func(i int) {
			defer wg.Done()
			res, err := s.Predict(context.Background(), xs[i])
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			traces[i] = res.Trace
		}(i)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	byTrace := spansByTrace(rec)
	for i, tr := range traces {
		if tr == 0 {
			t.Fatalf("request %d got trace 0 with tracing on", i)
		}
		m := byTrace[tr]
		q, okQ := m["serve_queue_wait"]
		b, okB := m["serve_batch_wait"]
		c, okC := m["serve_compute"]
		e2e, okE := m["serve_request"]
		if !okQ || !okB || !okC || !okE {
			t.Fatalf("trace %d missing stages: %v", tr, m)
		}
		// Boundaries tile: queue.End == batch.Start, batch.End == compute.Start,
		// and the stage durations sum to the end-to-end span exactly.
		if q.End != b.Start || b.End != c.Start {
			t.Fatalf("trace %d: stage boundaries do not tile: q=%+v b=%+v c=%+v", tr, q, b, c)
		}
		if q.Start != e2e.Start || c.End != e2e.End {
			t.Fatalf("trace %d: stages do not bound the request: %+v vs %+v..%+v", tr, e2e, q, c)
		}
		if sum := q.Dur() + b.Dur() + c.Dur(); sum != e2e.Dur() {
			t.Fatalf("trace %d: stage sum %d != e2e %d", tr, sum, e2e.Dur())
		}
	}

	// Depth 2 reaches the replicas: layer spans and crossbar readouts appear
	// on worker tracks (>= 1).
	var layerSpans, archSpans, batchSpans int
	for _, e := range rec.Events() {
		switch e.Name {
		case "core_layer_forward":
			layerSpans++
		case "arch_readout", "arch_readout_cols":
			archSpans++
		case "serve_batch":
			batchSpans++
		}
		if (e.Name == "core_layer_forward" || e.Name == "serve_batch") && e.Track == flight.TrackRequests {
			t.Fatalf("worker span on the request track: %+v", e)
		}
	}
	if layerSpans == 0 || archSpans == 0 || batchSpans == 0 {
		t.Fatalf("depth-2 worker spans missing: layers=%d arch=%d batches=%d",
			layerSpans, archSpans, batchSpans)
	}

	// The derived attribution histograms observed every request from the
	// same boundary timestamps.
	snap := reg.Snapshot()
	for _, name := range []string{
		"serve_queue_wait_seconds", "serve_batch_wait_seconds",
		"serve_compute_seconds", "serve_request_latency_seconds",
	} {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Fatalf("histogram %s not registered", name)
		}
		if h.Count != n {
			t.Fatalf("%s observed %d requests, want %d", name, h.Count, n)
		}
	}
}

// TestFlightDisabledHasNoSideEffects: a nil recorder keeps every trace id at
// zero, registers no attribution histograms, and emits no header material.
func TestFlightDisabledHasNoSideEffects(t *testing.T) {
	a := loadedAccel(t, nil)
	reg := telemetry.NewRegistry()
	s, err := New(a, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Predict(context.Background(), inputs(t, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != 0 {
		t.Fatalf("trace id %d with tracing disabled", res.Trace)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{"serve_queue_wait_seconds", "serve_batch_wait_seconds", "serve_compute_seconds"} {
		if _, ok := snap.Histograms[name]; ok {
			t.Fatalf("attribution histogram %s registered without a recorder", name)
		}
	}
	// The plain latency histogram is a Metrics feature, not a Flight one.
	if h := snap.Histograms["serve_request_latency_seconds"]; h.Count != 1 {
		t.Fatalf("serve_request_latency_seconds observed %d, want 1", h.Count)
	}
}

// TestFlightPropagatedTraceID: a caller-chosen id rides the context into the
// span attribution, and the result echoes it.
func TestFlightPropagatedTraceID(t *testing.T) {
	a := loadedAccel(t, nil)
	rec := flight.New(flight.Config{Capacity: 256})
	s, err := New(a, Config{Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	const want = uint64(424242)
	ctx := flight.WithTrace(context.Background(), want)
	res, err := s.Predict(ctx, inputs(t, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != want {
		t.Fatalf("result trace %d, want propagated %d", res.Trace, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if m := spansByTrace(rec)[want]; len(m) == 0 {
		t.Fatalf("no spans attributed to propagated trace %d", want)
	}
}
