// Package serve is the embeddable inference server for a trained PipeLayer
// machine: the software analogue of the paper's throughput pipelining. Many
// concurrent single-sample requests coalesce into the large effective batches
// the batched crossbar readout (arch.MatVecCols) is fastest at, while every
// response stays bit-identical to the serial single-request path — the
// determinism contract the rest of the repo pins.
//
// Architecture: Predict enqueues onto a bounded queue (backpressure surfaces
// as ErrOverloaded, never blocking the caller); a single batcher goroutine
// drains the queue and flushes a batch when it reaches MaxBatch or the oldest
// request has waited MaxWait; replica workers — each owning a core.Replica
// cloned from the trained machine — take whole batches from an unbuffered
// dispatch channel and run one multi-column readout per weighted stage.
// Close stops intake, flushes everything in flight, and joins every
// goroutine: a clean drain, by construction.
package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"pipelayer/internal/core"
	"pipelayer/internal/mapping"
	"pipelayer/internal/networks"
	"pipelayer/internal/shard"
	"pipelayer/internal/telemetry"
	"pipelayer/internal/telemetry/flight"
	"pipelayer/internal/tensor"
)

// Typed failures a caller can branch on.
var (
	// ErrOverloaded: the bounded queue is full; shed load or retry later.
	ErrOverloaded = errors.New("serve: queue full")
	// ErrClosed: the server is draining or closed.
	ErrClosed = errors.New("serve: server closed")
)

// Config tunes the batching scheduler. The zero value serves with one
// replica, batches of up to 16, a 2 ms batching window, and a 64-deep queue.
type Config struct {
	// Replicas is the number of inference clones serving batches
	// concurrently. Each replica shares the trained machine's programmed
	// arrays but owns its activation state. In sharded mode (see Shards)
	// there is a single shared shard chain instead of per-worker replicas;
	// Replicas then sets the number of workers — the number of batches kept
	// in flight, i.e. the pipeline fill — and defaults to Shards.
	Replicas int
	// Shards, when >= 2, serves through a pipelined chain of contiguous
	// layer-range shards (internal/shard) instead of whole-model replicas:
	// shard k computes batch i+1 while shard k+1 computes batch i — the
	// paper's Figure 6 inter-layer pipeline on the serving path. The layer
	// partition is balanced automatically by per-layer compute cost
	// (measured trainer telemetry in Metrics when complete, analytic MAC
	// counts otherwise) and stays fixed across hot swaps. Outputs remain
	// bit-identical to the unsharded path.
	Shards int
	// ShardRanges assigns the layer partition explicitly (must tile the
	// engine stack); non-empty ShardRanges enables sharded mode and
	// overrides Shards.
	ShardRanges []shard.Range
	// ShardDepth bounds each shard's inbox (default 1): how many batches a
	// shard may hold waiting beyond the one it is computing. Small values
	// keep backpressure tight — a stalled shard stalls its upstream within
	// one batch and the stall propagates to ErrOverloaded at admission.
	ShardDepth int
	// MaxBatch is the largest coalesced batch; a full batch flushes
	// immediately.
	MaxBatch int
	// MaxWait bounds how long the oldest queued request waits for its batch
	// to fill before the batcher flushes a partial batch.
	MaxWait time.Duration
	// QueueCap bounds the intake queue; a full queue fails fast with
	// ErrOverloaded.
	QueueCap int
	// Metrics, when non-nil, receives serve_* instruments: queue depth
	// gauge, batch-size histogram, request latency span + histogram, and
	// outcome counters.
	Metrics *telemetry.Registry

	// Flight, when non-nil, records every request's per-stage decomposition:
	// serve_queue_wait (enqueue → batcher dequeue), serve_batch_wait
	// (dequeue → worker batch start) and serve_compute (batch start →
	// result) spans on the request track, plus a serve_batch span per
	// executed batch on the owning replica's track. Adjacent spans share
	// their boundary timestamps, so the three stages sum to the recorded
	// end-to-end latency exactly. The serve_queue_wait_seconds /
	// serve_batch_wait_seconds / serve_compute_seconds histograms in Metrics
	// are observed from the same boundary instants — aggregate metrics and
	// traces can never disagree.
	Flight *flight.Recorder

	// TraceDepth selects how deep the tracing reaches when Flight is set:
	// 0 records request-stage spans only, 1 adds a core_layer_forward span
	// per layer per batch, 2 additionally traces each crossbar readout
	// (arch_readout_cols) on the replica's track.
	TraceDepth int

	// InitialVersion is the weight version the initial replicas serve as
	// (defaults to 1). Every response is attributed to exactly one version:
	// the one its batch's worker held when the batch started computing. Hot
	// swaps install later versions via Swap.
	InitialVersion uint64

	// testHookBeforeBatch, settable only from this package's tests, runs in
	// each worker before it processes a batch — letting a test stall the
	// pipeline deterministically to fill the queue.
	testHookBeforeBatch func()

	// testHookBeforeShard, settable only from this package's tests, is
	// threaded into the shard chain's BeforeStage hook — letting a test
	// stall a chosen shard and watch the backpressure cascade reach
	// admission.
	testHookBeforeShard func(int)
}

// Sharded reports whether the config selects the layer-sharded backend.
func (c Config) Sharded() bool { return c.Shards >= 2 || len(c.ShardRanges) >= 1 }

// WithDefaults returns the config with every zero field replaced by its
// documented default (one replica, batches of 16, 2 ms window, 64-deep
// queue). New applies it automatically; external callers — the scenario
// benchmark runner in particular — use it to record the *effective*
// configuration in report provenance instead of zeros.
func (c Config) WithDefaults() Config {
	if len(c.ShardRanges) > 0 {
		c.Shards = len(c.ShardRanges)
	}
	if c.Sharded() && c.Replicas <= 0 {
		// A pipeline only overlaps when several batches are in flight; one
		// worker per shard is the natural fill.
		c.Replicas = c.Shards
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.InitialVersion == 0 {
		c.InitialVersion = 1
	}
	return c
}

// Readiness is the health state /healthz reports while the server accepts
// traffic. The online supervisor drives transitions: Lagging after an eval
// regression rolled a candidate back, Pinned once rollover is disabled
// (repeated regressions or a trainer fault) and serving is frozen on the
// last good version. Draining is implied by Close and not settable.
type Readiness int32

const (
	ReadinessOK Readiness = iota
	ReadinessLagging
	ReadinessPinned
)

// String returns the wire form used by /healthz.
func (r Readiness) String() string {
	switch r {
	case ReadinessLagging:
		return "lagging"
	case ReadinessPinned:
		return "pinned"
	default:
		return "ok"
	}
}

// Result is one completed prediction: the class scores and their argmax.
// Trace is the flight-recorder trace id the request's spans are attributed
// to (0 when tracing is off), for correlating a response with its span tree.
// Version is the weight version that computed the scores — exactly one per
// response, taken from the worker's replica snapshot at batch start, so a
// response can never mix weights from two versions.
type Result struct {
	Scores  *tensor.Tensor
	Class   int
	Trace   uint64
	Version uint64
}

// Backend computes whole batches for the workers. Two implementations:
// *core.Replica (whole-model, one private backend per worker) and
// *shard.Chain (layer-sharded pipeline, one backend shared by all workers —
// safe because the chain is concurrent by design and pipelines the workers'
// batches across its shards). Both produce bit-identical outputs to the
// serial single-request path.
type Backend interface {
	Spec() networks.Spec
	Forward(xs []*tensor.Tensor) ([]*tensor.Tensor, error)
}

// backendState pairs a backend with the weight version it was built from.
// Workers load their slot's pointer once per batch, so a swap lands between
// batches, never inside one.
type backendState struct {
	be      Backend
	version uint64
}

type request struct {
	ctx      context.Context
	x        *tensor.Tensor
	enqueued time.Time
	done     chan outcome // buffered(1): a worker send never blocks on an abandoned caller

	// Flight attribution: the trace id and the stage-boundary timestamps
	// (recorder-clock ns). Each boundary is written by exactly one goroutine
	// before the request crosses a channel to the next, so later stages read
	// them race-free. tEnq → tDeq is queue wait, tDeq → worker batch start
	// is batch-formation wait, batch start → finish is compute.
	trace uint64
	tEnq  int64
	tDeq  int64
}

type outcome struct {
	res Result
	err error
}

// Server batches concurrent Predict calls across inference replicas. Create
// one with New; it serves until Close.
type Server struct {
	cfg   Config
	in    int           // expected input size (elements)
	spec  networks.Spec // served geometry; Swap requires an identical spec
	queue chan *request

	// slots holds one atomically swappable backend+version per worker (in
	// sharded mode every slot points at the same shared chain state);
	// version mirrors the most recently installed version for reporting.
	// readiness is the /healthz state (Readiness values).
	slots     []atomic.Pointer[backendState]
	version   atomic.Uint64
	readiness atomic.Int32

	// chainCfg is the pinned shard-chain construction recipe (resolved
	// ranges included) so every hot swap rebuilds an identically
	// partitioned chain; zero when unsharded.
	chainCfg shard.Config
	sharded  bool

	mu     sync.RWMutex // guards closed against the queue close in Close
	closed bool

	wg sync.WaitGroup

	beforeBatch func() // Config.testHookBeforeBatch, fixed at construction

	flight *flight.Recorder

	queueDepth  *telemetry.Gauge
	batchSize   *telemetry.Histogram
	latency     *telemetry.Span
	latencyHist *telemetry.Histogram
	queueWait   *telemetry.Histogram
	batchWait   *telemetry.Histogram
	computeTime *telemetry.Histogram
	requests    *telemetry.Counter
	overloads   *telemetry.Counter
	canceled    *telemetry.Counter
	batches     *telemetry.Counter
	swaps       *telemetry.Counter
	weightVer   *telemetry.Gauge
}

// latencyBuckets spans 100 µs – 2.5 s: the sub-millisecond single-sample path
// through saturated multi-batch queueing, for every serve_*_seconds histogram
// so stage quantiles compare bucket-for-bucket.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// New builds the serving backend from the trained accelerator and starts the
// scheduler. Unsharded, each worker owns a whole-model replica; with
// cfg.Shards >= 2 (or explicit ShardRanges) one layer-sharded chain is built
// and shared by every worker. The accelerator must have weights loaded
// (NewReplica's requirement); it is not otherwise touched, so training-side
// state stays where it was.
func New(a *core.Accelerator, cfg Config) (*Server, error) {
	cfg = cfg.WithDefaults()
	var (
		replicas []*core.Replica
		chain    *shard.Chain
		chainCfg shard.Config
	)
	if cfg.Sharded() {
		rep, err := a.NewReplica()
		if err != nil {
			return nil, err
		}
		chainCfg = shard.Config{
			Shards:      cfg.Shards,
			Ranges:      cfg.ShardRanges,
			Depth:       cfg.ShardDepth,
			Metrics:     cfg.Metrics,
			Flight:      cfg.Flight,
			TrackBase:   1, // track 0 is the request lane
			TraceDepth:  cfg.TraceDepth,
			BeforeStage: cfg.testHookBeforeShard,
		}
		// Resolve the partition once and pin it: hot swaps rebuild the
		// chain for new weights, and the shard boundaries must not drift
		// with whatever telemetry has accumulated by then.
		ranges, err := shard.ResolveRanges(rep, chainCfg)
		if err != nil {
			return nil, err
		}
		chainCfg.Ranges = ranges
		chainCfg.Shards = len(ranges)
		if chain, err = shard.New(rep, chainCfg); err != nil {
			return nil, err
		}
	} else {
		replicas = make([]*core.Replica, cfg.Replicas)
		for i := range replicas {
			r, err := a.NewReplica()
			if err != nil {
				return nil, err
			}
			replicas[i] = r
		}
	}
	spec := a.Spec()
	s := &Server{
		cfg:         cfg,
		in:          spec.InC * spec.InH * spec.InW,
		spec:        spec,
		queue:       make(chan *request, cfg.QueueCap),
		beforeBatch: cfg.testHookBeforeBatch,
		flight:      cfg.Flight,
		chainCfg:    chainCfg,
		sharded:     chain != nil,
	}
	if reg := cfg.Metrics; reg != nil {
		s.queueDepth = reg.Gauge("serve_queue_depth")
		s.batchSize = reg.Histogram("serve_batch_size", []float64{1, 2, 4, 8, 16, 32, 64})
		s.latency = reg.Span("serve_request_seconds")
		s.latencyHist = reg.Histogram("serve_request_latency_seconds", latencyBuckets)
		s.requests = reg.Counter("serve_requests_total")
		s.overloads = reg.Counter("serve_overloaded_total")
		s.canceled = reg.Counter("serve_canceled_total")
		s.batches = reg.Counter("serve_batches_total")
		s.swaps = reg.Counter("serve_swaps_total")
		s.weightVer = reg.Gauge("serve_weight_version")
		if s.flight.Enabled() {
			// Attribution histograms are derived from the flight recorder's
			// boundary timestamps (see finish), so they only exist when the
			// recorder does — and can never disagree with the trace.
			s.queueWait = reg.Histogram("serve_queue_wait_seconds", latencyBuckets)
			s.batchWait = reg.Histogram("serve_batch_wait_seconds", latencyBuckets)
			s.computeTime = reg.Histogram("serve_compute_seconds", latencyBuckets)
		}
	}
	if s.flight.Enabled() {
		s.flight.SetTrackName(flight.TrackRequests, "requests")
	}
	s.version.Store(cfg.InitialVersion)
	s.gauge(s.weightVer, float64(cfg.InitialVersion))

	dispatch := make(chan []*request) // unbuffered: the batcher feels worker backpressure
	s.wg.Add(1)
	go s.batcher(dispatch)
	s.slots = make([]atomic.Pointer[backendState], cfg.Replicas)
	if s.sharded {
		// One shared chain state behind every slot. The chain owns tracks
		// 1..S; worker i records its serve_batch spans on track S+1+i so
		// per-shard and per-worker timelines stay distinct in the export.
		st := &backendState{be: chain, version: cfg.InitialVersion}
		for i := range s.slots {
			track := uint64(chain.Shards()) + uint64(i) + 1
			if s.flight.Enabled() {
				s.flight.SetTrackName(track, fmt.Sprintf("worker %d", i))
			}
			s.slots[i].Store(st)
			s.wg.Add(1)
			go s.worker(i, track, dispatch)
		}
		return s, nil
	}
	for i, r := range replicas {
		// Track 0 is the request lane; replica i owns track i+1.
		track := uint64(i) + 1
		if s.flight.Enabled() {
			s.flight.SetTrackName(track, fmt.Sprintf("replica %d", i))
			r.AttachFlight(s.flight, track, cfg.TraceDepth)
		}
		s.slots[i].Store(&backendState{be: r, version: cfg.InitialVersion})
		s.wg.Add(1)
		go s.worker(i, track, dispatch)
	}
	return s, nil
}

// Swap atomically installs a new replica set as the given weight version:
// each worker slot's pointer is replaced, so batches already computing
// finish on their old replica (and report its version) while every
// subsequent batch runs the new one. No request is dropped, delayed, or
// torn — the queue and batcher are untouched. The replicas must serve the
// same network spec and match the slot count (one per worker); they should be
// freshly built from a weight snapshot (core.NewFromSnapshot + ReplicaSet),
// not clones of a machine still training.
func (s *Server) Swap(replicas []*core.Replica, version uint64) error {
	if len(replicas) != len(s.slots) {
		return fmt.Errorf("serve: swap with %d replicas, server has %d worker slots", len(replicas), len(s.slots))
	}
	if version == 0 {
		return errors.New("serve: swap to version 0")
	}
	for i, r := range replicas {
		if r == nil {
			return fmt.Errorf("serve: swap replica %d is nil", i)
		}
		if !reflect.DeepEqual(r.Spec(), s.spec) {
			return fmt.Errorf("serve: swap replica %d serves spec %q, server serves %q — the topology must not change across versions",
				i, r.Spec().Name, s.spec.Name)
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if s.sharded {
		// Rebuild the chain from the first replica using the pinned
		// partition, point every slot at it, then retire the old chain.
		// Retiring drains: batches already inside the old chain finish and
		// report their old version; a worker that loaded the old state just
		// before the swap gets ErrClosed from the retired chain and retries
		// on the freshly loaded slot. No request is dropped or torn.
		chain, err := shard.New(replicas[0], s.chainCfg)
		if err != nil {
			return err
		}
		old := s.slots[0].Load()
		st := &backendState{be: chain, version: version}
		for i := range s.slots {
			s.slots[i].Store(st)
		}
		s.version.Store(version)
		s.gauge(s.weightVer, float64(version))
		s.count(s.swaps)
		if c, ok := old.be.(*shard.Chain); ok {
			//pipelayer:allow-errdrop retiring the replaced chain after the swap committed; Close on a quiesced chain only errors on double-close, and failing the successful Swap for it would un-publish weights already serving
			c.Close()
		}
		return nil
	}
	for i, r := range replicas {
		track := uint64(i) + 1
		if s.flight.Enabled() {
			r.AttachFlight(s.flight, track, s.cfg.TraceDepth)
		}
		s.slots[i].Store(&backendState{be: r, version: version})
	}
	s.version.Store(version)
	s.gauge(s.weightVer, float64(version))
	s.count(s.swaps)
	return nil
}

// Version returns the most recently installed weight version.
func (s *Server) Version() uint64 { return s.version.Load() }

// SetReadiness publishes the health state /healthz reports; the online
// supervisor calls this on Lagging/Pinned transitions.
func (s *Server) SetReadiness(r Readiness) { s.readiness.Store(int32(r)) }

// Readiness returns the current published health state.
func (s *Server) Readiness() Readiness { return Readiness(s.readiness.Load()) }

// Predict submits one input and waits for its result, the request context's
// cancellation, or its deadline — whichever comes first. A canceled request
// already in the queue is skipped by the workers; its slot costs nothing but
// queue depth until its batch flushes.
func (s *Server) Predict(ctx context.Context, x *tensor.Tensor) (Result, error) {
	if x == nil {
		return Result{}, errors.New("serve: nil input")
	}
	if x.Size() != s.in {
		return Result{}, fmt.Errorf("serve: input has %d elements, want %d", x.Size(), s.in)
	}
	if x.Rank() == 1 && len(s.spec.Layers) > 0 && s.spec.Layers[0].Kind != mapping.KindFC {
		// HTTP clients send flat vectors; a conv front layer needs the
		// (C,H,W) image. Reshape is a view — no copy.
		x = x.Reshape(s.spec.InC, s.spec.InH, s.spec.InW)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// Trace attribution: reuse an id propagated via the context (the HTTP
	// handler's X-Flight-Trace) or allocate a fresh one. With tracing off
	// both are 0 and every span call below is a nil no-op.
	ctx, trace := s.flight.EnsureTrace(ctx)
	r := &request{
		ctx: ctx, x: x, enqueued: time.Now(), done: make(chan outcome, 1),
		trace: trace, tEnq: s.flight.Now(),
	}

	// The read lock pairs with Close's write lock: the queue can only be
	// closed while no sender holds the read side, so a send never races a
	// close. The send itself never blocks — a full queue is an overload.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Result{}, ErrClosed
	}
	select {
	case s.queue <- r:
		s.count(s.requests)
		s.gauge(s.queueDepth, float64(len(s.queue)))
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.count(s.overloads)
		return Result{}, ErrOverloaded
	}

	select {
	case out := <-r.done:
		return out.res, out.err
	case <-ctx.Done():
		s.count(s.canceled)
		return Result{}, ctx.Err()
	}
}

// batcher coalesces queued requests into batches of up to MaxBatch, flushing
// early once the oldest member has waited MaxWait. When Close closes the
// queue it flushes the tail and closes dispatch, releasing the workers.
func (s *Server) batcher(dispatch chan<- []*request) {
	defer s.wg.Done()
	defer close(dispatch)
	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	var batch []*request
	flush := func() {
		if len(batch) > 0 {
			dispatch <- batch
			batch = nil
		}
	}
	for {
		if len(batch) == 0 {
			r, ok := <-s.queue
			if !ok {
				return
			}
			s.gauge(s.queueDepth, float64(len(s.queue)))
			s.noteDequeued(r)
			batch = append(batch, r)
			if len(batch) >= s.cfg.MaxBatch {
				flush()
				continue
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(s.cfg.MaxWait)
			continue
		}
		select {
		case r, ok := <-s.queue:
			if !ok {
				flush()
				return
			}
			s.gauge(s.queueDepth, float64(len(s.queue)))
			s.noteDequeued(r)
			batch = append(batch, r)
			if len(batch) >= s.cfg.MaxBatch {
				flush()
			}
		case <-timer.C:
			flush()
		}
	}
}

// noteDequeued closes a request's queue-wait stage: the batcher has pulled it
// off the intake queue, so enqueue → now was time spent waiting for the
// batcher, and now becomes the start of the batch-formation stage.
func (s *Server) noteDequeued(r *request) {
	if !s.flight.Enabled() {
		return
	}
	r.tDeq = s.flight.Now()
	s.flight.RecordAt("serve_queue_wait", r.trace, flight.TrackRequests, r.tEnq, r.tDeq, 0)
}

// worker serves whole batches on its slot's replica. The slot pointer is
// read once per batch, so a concurrent Swap takes effect at the next batch
// boundary: every request in a batch is computed by, and attributed to,
// exactly one weight version. Requests whose context died in the queue are
// answered with their context error and excluded from the readout; a batch
// that shrinks to one request takes the serial single-request path
// (identical bits, no packing overhead).
func (s *Server) worker(slot int, track uint64, dispatch <-chan []*request) {
	defer s.wg.Done()
	for batch := range dispatch {
		st := s.slots[slot].Load()
		if s.beforeBatch != nil {
			s.beforeBatch()
		}
		live := batch[:0]
		for _, r := range batch {
			if err := r.ctx.Err(); err != nil {
				r.done <- outcome{err: err}
				continue
			}
			live = append(live, r)
		}
		if len(live) == 0 {
			continue
		}
		// The batch starts computing now: every member's batch-formation wait
		// ends at this shared instant, which is also where its compute stage
		// begins — the boundaries tile with no gap.
		tBatch := s.flight.Now()
		for _, r := range live {
			s.flight.RecordAt("serve_batch_wait", r.trace, flight.TrackRequests, r.tDeq, tBatch, 0)
		}
		s.count(s.batches)
		if s.batchSize != nil {
			s.batchSize.Observe(float64(len(live)))
		}
		xs := make([]*tensor.Tensor, len(live))
		for i, r := range live {
			xs[i] = r.x
		}
		ys, err := st.be.Forward(xs)
		// ErrClosed from a retired shard chain means a hot swap landed
		// between loading the slot and the call: reload the slot — the swap
		// installed the replacement before retiring the old chain — and
		// recompute on the new version. Bounded, because only a swap can
		// retire a chain out from under a live worker.
		for attempt := 0; err != nil && errors.Is(err, shard.ErrClosed) && attempt < 4; attempt++ {
			st = s.slots[slot].Load()
			ys, err = st.be.Forward(xs)
		}
		if err != nil {
			for _, r := range live {
				r.done <- outcome{err: err}
			}
			continue
		}
		for i, y := range ys {
			s.finish(live[i], y, tBatch, st.version)
		}
		s.flight.Record("serve_batch", 0, track, tBatch, int64(len(live)))
	}
}

func (s *Server) finish(r *request, y *tensor.Tensor, tBatch int64, version uint64) {
	_, class := y.Max()
	if s.flight.Enabled() {
		tDone := s.flight.Now()
		// The request span's arg carries the weight version that computed
		// the response, so a trace is attributable to its version too.
		s.flight.RecordAt("serve_compute", r.trace, flight.TrackRequests, tBatch, tDone, 0)
		s.flight.RecordAt("serve_request", r.trace, flight.TrackRequests, r.tEnq, tDone, int64(version))
		// The attribution histograms observe the very same boundary
		// timestamps the spans hold, so a trace and its aggregate can never
		// tell different stories.
		s.observeSeconds(s.queueWait, r.tDeq-r.tEnq)
		s.observeSeconds(s.batchWait, tBatch-r.tDeq)
		s.observeSeconds(s.computeTime, tDone-tBatch)
	}
	r.done <- outcome{res: Result{Scores: y, Class: class, Trace: r.trace, Version: version}}
	if s.latency != nil {
		s.latency.Add(time.Since(r.enqueued))
	}
	if s.latencyHist != nil {
		s.latencyHist.Observe(time.Since(r.enqueued).Seconds())
	}
}

func (s *Server) observeSeconds(h *telemetry.Histogram, ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.Observe(float64(ns) / 1e9)
}

// Close drains the server: no new requests are accepted, every queued
// request is served (or answered with its context error), and all scheduler
// goroutines exit before Close returns. A second Close reports ErrClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	// In sharded mode the workers share one chain; retire it after they all
	// exited so its shard goroutines are joined too. Chains replaced by
	// earlier swaps were already retired by Swap.
	if st := s.slots[0].Load(); st != nil {
		if c, ok := st.be.(*shard.Chain); ok {
			//pipelayer:allow-errdrop the workers are already joined, so the chain is idle and its Close can only report double-close; Server.Close's contract is that the first close returns nil once the drain finished
			c.Close()
		}
	}
	return nil
}

// Closed reports whether Close has begun.
func (s *Server) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// InputSize returns the expected number of input elements per request.
func (s *Server) InputSize() int { return s.in }

// RetryAfter estimates how long an overloaded caller should back off before
// retrying: the current queue depth divided into MaxBatch-sized batches,
// each taking at most one MaxWait window to form — rounded up to whole
// seconds (the Retry-After header's unit), never less than 1.
func (s *Server) RetryAfter() int {
	batches := len(s.queue)/s.cfg.MaxBatch + 1
	d := time.Duration(batches) * s.cfg.MaxWait
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) count(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (s *Server) gauge(g *telemetry.Gauge, v float64) {
	if g != nil {
		g.Set(v)
	}
}
