// Package serve is the embeddable inference server for a trained PipeLayer
// machine: the software analogue of the paper's throughput pipelining. Many
// concurrent single-sample requests coalesce into the large effective batches
// the batched crossbar readout (arch.MatVecCols) is fastest at, while every
// response stays bit-identical to the serial single-request path — the
// determinism contract the rest of the repo pins.
//
// Architecture: Predict enqueues onto a bounded queue (backpressure surfaces
// as ErrOverloaded, never blocking the caller); a single batcher goroutine
// drains the queue and flushes a batch when it reaches MaxBatch or the oldest
// request has waited MaxWait; replica workers — each owning a core.Replica
// cloned from the trained machine — take whole batches from an unbuffered
// dispatch channel and run one multi-column readout per weighted stage.
// Close stops intake, flushes everything in flight, and joins every
// goroutine: a clean drain, by construction.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pipelayer/internal/core"
	"pipelayer/internal/telemetry"
	"pipelayer/internal/telemetry/flight"
	"pipelayer/internal/tensor"
)

// Typed failures a caller can branch on.
var (
	// ErrOverloaded: the bounded queue is full; shed load or retry later.
	ErrOverloaded = errors.New("serve: queue full")
	// ErrClosed: the server is draining or closed.
	ErrClosed = errors.New("serve: server closed")
)

// Config tunes the batching scheduler. The zero value serves with one
// replica, batches of up to 16, a 2 ms batching window, and a 64-deep queue.
type Config struct {
	// Replicas is the number of inference clones serving batches
	// concurrently. Each replica shares the trained machine's programmed
	// arrays but owns its activation state.
	Replicas int
	// MaxBatch is the largest coalesced batch; a full batch flushes
	// immediately.
	MaxBatch int
	// MaxWait bounds how long the oldest queued request waits for its batch
	// to fill before the batcher flushes a partial batch.
	MaxWait time.Duration
	// QueueCap bounds the intake queue; a full queue fails fast with
	// ErrOverloaded.
	QueueCap int
	// Metrics, when non-nil, receives serve_* instruments: queue depth
	// gauge, batch-size histogram, request latency span + histogram, and
	// outcome counters.
	Metrics *telemetry.Registry

	// Flight, when non-nil, records every request's per-stage decomposition:
	// serve_queue_wait (enqueue → batcher dequeue), serve_batch_wait
	// (dequeue → worker batch start) and serve_compute (batch start →
	// result) spans on the request track, plus a serve_batch span per
	// executed batch on the owning replica's track. Adjacent spans share
	// their boundary timestamps, so the three stages sum to the recorded
	// end-to-end latency exactly. The serve_queue_wait_seconds /
	// serve_batch_wait_seconds / serve_compute_seconds histograms in Metrics
	// are observed from the same boundary instants — aggregate metrics and
	// traces can never disagree.
	Flight *flight.Recorder

	// TraceDepth selects how deep the tracing reaches when Flight is set:
	// 0 records request-stage spans only, 1 adds a core_layer_forward span
	// per layer per batch, 2 additionally traces each crossbar readout
	// (arch_readout_cols) on the replica's track.
	TraceDepth int

	// testHookBeforeBatch, settable only from this package's tests, runs in
	// each worker before it processes a batch — letting a test stall the
	// pipeline deterministically to fill the queue.
	testHookBeforeBatch func()
}

// WithDefaults returns the config with every zero field replaced by its
// documented default (one replica, batches of 16, 2 ms window, 64-deep
// queue). New applies it automatically; external callers — the scenario
// benchmark runner in particular — use it to record the *effective*
// configuration in report provenance instead of zeros.
func (c Config) WithDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	return c
}

// Result is one completed prediction: the class scores and their argmax.
// Trace is the flight-recorder trace id the request's spans are attributed
// to (0 when tracing is off), for correlating a response with its span tree.
type Result struct {
	Scores *tensor.Tensor
	Class  int
	Trace  uint64
}

type request struct {
	ctx      context.Context
	x        *tensor.Tensor
	enqueued time.Time
	done     chan outcome // buffered(1): a worker send never blocks on an abandoned caller

	// Flight attribution: the trace id and the stage-boundary timestamps
	// (recorder-clock ns). Each boundary is written by exactly one goroutine
	// before the request crosses a channel to the next, so later stages read
	// them race-free. tEnq → tDeq is queue wait, tDeq → worker batch start
	// is batch-formation wait, batch start → finish is compute.
	trace uint64
	tEnq  int64
	tDeq  int64
}

type outcome struct {
	res Result
	err error
}

// Server batches concurrent Predict calls across inference replicas. Create
// one with New; it serves until Close.
type Server struct {
	cfg   Config
	in    int // expected input size (elements)
	queue chan *request

	mu     sync.RWMutex // guards closed against the queue close in Close
	closed bool

	wg sync.WaitGroup

	beforeBatch func() // Config.testHookBeforeBatch, fixed at construction

	flight *flight.Recorder

	queueDepth  *telemetry.Gauge
	batchSize   *telemetry.Histogram
	latency     *telemetry.Span
	latencyHist *telemetry.Histogram
	queueWait   *telemetry.Histogram
	batchWait   *telemetry.Histogram
	computeTime *telemetry.Histogram
	requests    *telemetry.Counter
	overloads   *telemetry.Counter
	canceled    *telemetry.Counter
	batches     *telemetry.Counter
}

// latencyBuckets spans 100 µs – 2.5 s: the sub-millisecond single-sample path
// through saturated multi-batch queueing, for every serve_*_seconds histogram
// so stage quantiles compare bucket-for-bucket.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// New builds replicas from the trained accelerator and starts the scheduler.
// The accelerator must have weights loaded (NewReplica's requirement); it is
// not otherwise touched, so training-side state stays where it was.
func New(a *core.Accelerator, cfg Config) (*Server, error) {
	cfg = cfg.WithDefaults()
	replicas := make([]*core.Replica, cfg.Replicas)
	for i := range replicas {
		r, err := a.NewReplica()
		if err != nil {
			return nil, err
		}
		replicas[i] = r
	}
	spec := replicas[0].Spec()
	s := &Server{
		cfg:         cfg,
		in:          spec.InC * spec.InH * spec.InW,
		queue:       make(chan *request, cfg.QueueCap),
		beforeBatch: cfg.testHookBeforeBatch,
		flight:      cfg.Flight,
	}
	if reg := cfg.Metrics; reg != nil {
		s.queueDepth = reg.Gauge("serve_queue_depth")
		s.batchSize = reg.Histogram("serve_batch_size", []float64{1, 2, 4, 8, 16, 32, 64})
		s.latency = reg.Span("serve_request_seconds")
		s.latencyHist = reg.Histogram("serve_request_latency_seconds", latencyBuckets)
		s.requests = reg.Counter("serve_requests_total")
		s.overloads = reg.Counter("serve_overloaded_total")
		s.canceled = reg.Counter("serve_canceled_total")
		s.batches = reg.Counter("serve_batches_total")
		if s.flight.Enabled() {
			// Attribution histograms are derived from the flight recorder's
			// boundary timestamps (see finish), so they only exist when the
			// recorder does — and can never disagree with the trace.
			s.queueWait = reg.Histogram("serve_queue_wait_seconds", latencyBuckets)
			s.batchWait = reg.Histogram("serve_batch_wait_seconds", latencyBuckets)
			s.computeTime = reg.Histogram("serve_compute_seconds", latencyBuckets)
		}
	}
	if s.flight.Enabled() {
		s.flight.SetTrackName(flight.TrackRequests, "requests")
	}

	dispatch := make(chan []*request) // unbuffered: the batcher feels worker backpressure
	s.wg.Add(1)
	go s.batcher(dispatch)
	for i, r := range replicas {
		// Track 0 is the request lane; replica i owns track i+1.
		track := uint64(i) + 1
		if s.flight.Enabled() {
			s.flight.SetTrackName(track, fmt.Sprintf("replica %d", i))
			r.AttachFlight(s.flight, track, cfg.TraceDepth)
		}
		s.wg.Add(1)
		go s.worker(r, track, dispatch)
	}
	return s, nil
}

// Predict submits one input and waits for its result, the request context's
// cancellation, or its deadline — whichever comes first. A canceled request
// already in the queue is skipped by the workers; its slot costs nothing but
// queue depth until its batch flushes.
func (s *Server) Predict(ctx context.Context, x *tensor.Tensor) (Result, error) {
	if x == nil {
		return Result{}, errors.New("serve: nil input")
	}
	if x.Size() != s.in {
		return Result{}, fmt.Errorf("serve: input has %d elements, want %d", x.Size(), s.in)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// Trace attribution: reuse an id propagated via the context (the HTTP
	// handler's X-Flight-Trace) or allocate a fresh one. With tracing off
	// both are 0 and every span call below is a nil no-op.
	ctx, trace := s.flight.EnsureTrace(ctx)
	r := &request{
		ctx: ctx, x: x, enqueued: time.Now(), done: make(chan outcome, 1),
		trace: trace, tEnq: s.flight.Now(),
	}

	// The read lock pairs with Close's write lock: the queue can only be
	// closed while no sender holds the read side, so a send never races a
	// close. The send itself never blocks — a full queue is an overload.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Result{}, ErrClosed
	}
	select {
	case s.queue <- r:
		s.count(s.requests)
		s.gauge(s.queueDepth, float64(len(s.queue)))
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.count(s.overloads)
		return Result{}, ErrOverloaded
	}

	select {
	case out := <-r.done:
		return out.res, out.err
	case <-ctx.Done():
		s.count(s.canceled)
		return Result{}, ctx.Err()
	}
}

// batcher coalesces queued requests into batches of up to MaxBatch, flushing
// early once the oldest member has waited MaxWait. When Close closes the
// queue it flushes the tail and closes dispatch, releasing the workers.
func (s *Server) batcher(dispatch chan<- []*request) {
	defer s.wg.Done()
	defer close(dispatch)
	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	var batch []*request
	flush := func() {
		if len(batch) > 0 {
			dispatch <- batch
			batch = nil
		}
	}
	for {
		if len(batch) == 0 {
			r, ok := <-s.queue
			if !ok {
				return
			}
			s.gauge(s.queueDepth, float64(len(s.queue)))
			s.noteDequeued(r)
			batch = append(batch, r)
			if len(batch) >= s.cfg.MaxBatch {
				flush()
				continue
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(s.cfg.MaxWait)
			continue
		}
		select {
		case r, ok := <-s.queue:
			if !ok {
				flush()
				return
			}
			s.gauge(s.queueDepth, float64(len(s.queue)))
			s.noteDequeued(r)
			batch = append(batch, r)
			if len(batch) >= s.cfg.MaxBatch {
				flush()
			}
		case <-timer.C:
			flush()
		}
	}
}

// noteDequeued closes a request's queue-wait stage: the batcher has pulled it
// off the intake queue, so enqueue → now was time spent waiting for the
// batcher, and now becomes the start of the batch-formation stage.
func (s *Server) noteDequeued(r *request) {
	if !s.flight.Enabled() {
		return
	}
	r.tDeq = s.flight.Now()
	s.flight.RecordAt("serve_queue_wait", r.trace, flight.TrackRequests, r.tEnq, r.tDeq, 0)
}

// worker serves whole batches on one replica. Requests whose context died in
// the queue are answered with their context error and excluded from the
// readout; a batch that shrinks to one request takes the serial
// single-request path (identical bits, no packing overhead).
func (s *Server) worker(rep *core.Replica, track uint64, dispatch <-chan []*request) {
	defer s.wg.Done()
	for batch := range dispatch {
		if s.beforeBatch != nil {
			s.beforeBatch()
		}
		live := batch[:0]
		for _, r := range batch {
			if err := r.ctx.Err(); err != nil {
				r.done <- outcome{err: err}
				continue
			}
			live = append(live, r)
		}
		if len(live) == 0 {
			continue
		}
		// The batch starts computing now: every member's batch-formation wait
		// ends at this shared instant, which is also where its compute stage
		// begins — the boundaries tile with no gap.
		tBatch := s.flight.Now()
		for _, r := range live {
			s.flight.RecordAt("serve_batch_wait", r.trace, flight.TrackRequests, r.tDeq, tBatch, 0)
		}
		s.count(s.batches)
		if s.batchSize != nil {
			s.batchSize.Observe(float64(len(live)))
		}
		if len(live) == 1 {
			s.finish(live[0], rep.Infer(live[0].x), tBatch)
		} else {
			xs := make([]*tensor.Tensor, len(live))
			for i, r := range live {
				xs[i] = r.x
			}
			for i, y := range rep.InferBatch(xs) {
				s.finish(live[i], y, tBatch)
			}
		}
		s.flight.Record("serve_batch", 0, track, tBatch, int64(len(live)))
	}
}

func (s *Server) finish(r *request, y *tensor.Tensor, tBatch int64) {
	_, class := y.Max()
	if s.flight.Enabled() {
		tDone := s.flight.Now()
		s.flight.RecordAt("serve_compute", r.trace, flight.TrackRequests, tBatch, tDone, 0)
		s.flight.RecordAt("serve_request", r.trace, flight.TrackRequests, r.tEnq, tDone, 0)
		// The attribution histograms observe the very same boundary
		// timestamps the spans hold, so a trace and its aggregate can never
		// tell different stories.
		s.observeSeconds(s.queueWait, r.tDeq-r.tEnq)
		s.observeSeconds(s.batchWait, tBatch-r.tDeq)
		s.observeSeconds(s.computeTime, tDone-tBatch)
	}
	r.done <- outcome{res: Result{Scores: y, Class: class, Trace: r.trace}}
	if s.latency != nil {
		s.latency.Add(time.Since(r.enqueued))
	}
	if s.latencyHist != nil {
		s.latencyHist.Observe(time.Since(r.enqueued).Seconds())
	}
}

func (s *Server) observeSeconds(h *telemetry.Histogram, ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.Observe(float64(ns) / 1e9)
}

// Close drains the server: no new requests are accepted, every queued
// request is served (or answered with its context error), and all scheduler
// goroutines exit before Close returns. A second Close reports ErrClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Closed reports whether Close has begun.
func (s *Server) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// InputSize returns the expected number of input elements per request.
func (s *Server) InputSize() int { return s.in }

func (s *Server) count(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (s *Server) gauge(g *telemetry.Gauge, v float64) {
	if g != nil {
		g.Set(v)
	}
}
