// Package serve is the embeddable inference server for a trained PipeLayer
// machine: the software analogue of the paper's throughput pipelining. Many
// concurrent single-sample requests coalesce into the large effective batches
// the batched crossbar readout (arch.MatVecCols) is fastest at, while every
// response stays bit-identical to the serial single-request path — the
// determinism contract the rest of the repo pins.
//
// Architecture: Predict enqueues onto a bounded queue (backpressure surfaces
// as ErrOverloaded, never blocking the caller); a single batcher goroutine
// drains the queue and flushes a batch when it reaches MaxBatch or the oldest
// request has waited MaxWait; replica workers — each owning a core.Replica
// cloned from the trained machine — take whole batches from an unbuffered
// dispatch channel and run one multi-column readout per weighted stage.
// Close stops intake, flushes everything in flight, and joins every
// goroutine: a clean drain, by construction.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pipelayer/internal/core"
	"pipelayer/internal/telemetry"
	"pipelayer/internal/tensor"
)

// Typed failures a caller can branch on.
var (
	// ErrOverloaded: the bounded queue is full; shed load or retry later.
	ErrOverloaded = errors.New("serve: queue full")
	// ErrClosed: the server is draining or closed.
	ErrClosed = errors.New("serve: server closed")
)

// Config tunes the batching scheduler. The zero value serves with one
// replica, batches of up to 16, a 2 ms batching window, and a 64-deep queue.
type Config struct {
	// Replicas is the number of inference clones serving batches
	// concurrently. Each replica shares the trained machine's programmed
	// arrays but owns its activation state.
	Replicas int
	// MaxBatch is the largest coalesced batch; a full batch flushes
	// immediately.
	MaxBatch int
	// MaxWait bounds how long the oldest queued request waits for its batch
	// to fill before the batcher flushes a partial batch.
	MaxWait time.Duration
	// QueueCap bounds the intake queue; a full queue fails fast with
	// ErrOverloaded.
	QueueCap int
	// Metrics, when non-nil, receives serve_* instruments: queue depth
	// gauge, batch-size histogram, request latency span, and outcome
	// counters.
	Metrics *telemetry.Registry

	// testHookBeforeBatch, settable only from this package's tests, runs in
	// each worker before it processes a batch — letting a test stall the
	// pipeline deterministically to fill the queue.
	testHookBeforeBatch func()
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	return c
}

// Result is one completed prediction: the class scores and their argmax.
type Result struct {
	Scores *tensor.Tensor
	Class  int
}

type request struct {
	ctx      context.Context
	x        *tensor.Tensor
	enqueued time.Time
	done     chan outcome // buffered(1): a worker send never blocks on an abandoned caller
}

type outcome struct {
	res Result
	err error
}

// Server batches concurrent Predict calls across inference replicas. Create
// one with New; it serves until Close.
type Server struct {
	cfg   Config
	in    int // expected input size (elements)
	queue chan *request

	mu     sync.RWMutex // guards closed against the queue close in Close
	closed bool

	wg sync.WaitGroup

	beforeBatch func() // Config.testHookBeforeBatch, fixed at construction

	queueDepth *telemetry.Gauge
	batchSize  *telemetry.Histogram
	latency    *telemetry.Span
	requests   *telemetry.Counter
	overloads  *telemetry.Counter
	canceled   *telemetry.Counter
	batches    *telemetry.Counter
}

// New builds replicas from the trained accelerator and starts the scheduler.
// The accelerator must have weights loaded (NewReplica's requirement); it is
// not otherwise touched, so training-side state stays where it was.
func New(a *core.Accelerator, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	replicas := make([]*core.Replica, cfg.Replicas)
	for i := range replicas {
		r, err := a.NewReplica()
		if err != nil {
			return nil, err
		}
		replicas[i] = r
	}
	spec := replicas[0].Spec()
	s := &Server{
		cfg:         cfg,
		in:          spec.InC * spec.InH * spec.InW,
		queue:       make(chan *request, cfg.QueueCap),
		beforeBatch: cfg.testHookBeforeBatch,
	}
	if reg := cfg.Metrics; reg != nil {
		s.queueDepth = reg.Gauge("serve_queue_depth")
		s.batchSize = reg.Histogram("serve_batch_size", []float64{1, 2, 4, 8, 16, 32, 64})
		s.latency = reg.Span("serve_request_seconds")
		s.requests = reg.Counter("serve_requests_total")
		s.overloads = reg.Counter("serve_overloaded_total")
		s.canceled = reg.Counter("serve_canceled_total")
		s.batches = reg.Counter("serve_batches_total")
	}

	dispatch := make(chan []*request) // unbuffered: the batcher feels worker backpressure
	s.wg.Add(1)
	go s.batcher(dispatch)
	for _, r := range replicas {
		s.wg.Add(1)
		go s.worker(r, dispatch)
	}
	return s, nil
}

// Predict submits one input and waits for its result, the request context's
// cancellation, or its deadline — whichever comes first. A canceled request
// already in the queue is skipped by the workers; its slot costs nothing but
// queue depth until its batch flushes.
func (s *Server) Predict(ctx context.Context, x *tensor.Tensor) (Result, error) {
	if x == nil {
		return Result{}, errors.New("serve: nil input")
	}
	if x.Size() != s.in {
		return Result{}, fmt.Errorf("serve: input has %d elements, want %d", x.Size(), s.in)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	r := &request{ctx: ctx, x: x, enqueued: time.Now(), done: make(chan outcome, 1)}

	// The read lock pairs with Close's write lock: the queue can only be
	// closed while no sender holds the read side, so a send never races a
	// close. The send itself never blocks — a full queue is an overload.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Result{}, ErrClosed
	}
	select {
	case s.queue <- r:
		s.count(s.requests)
		s.gauge(s.queueDepth, float64(len(s.queue)))
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.count(s.overloads)
		return Result{}, ErrOverloaded
	}

	select {
	case out := <-r.done:
		return out.res, out.err
	case <-ctx.Done():
		s.count(s.canceled)
		return Result{}, ctx.Err()
	}
}

// batcher coalesces queued requests into batches of up to MaxBatch, flushing
// early once the oldest member has waited MaxWait. When Close closes the
// queue it flushes the tail and closes dispatch, releasing the workers.
func (s *Server) batcher(dispatch chan<- []*request) {
	defer s.wg.Done()
	defer close(dispatch)
	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	var batch []*request
	flush := func() {
		if len(batch) > 0 {
			dispatch <- batch
			batch = nil
		}
	}
	for {
		if len(batch) == 0 {
			r, ok := <-s.queue
			if !ok {
				return
			}
			s.gauge(s.queueDepth, float64(len(s.queue)))
			batch = append(batch, r)
			if len(batch) >= s.cfg.MaxBatch {
				flush()
				continue
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(s.cfg.MaxWait)
			continue
		}
		select {
		case r, ok := <-s.queue:
			if !ok {
				flush()
				return
			}
			s.gauge(s.queueDepth, float64(len(s.queue)))
			batch = append(batch, r)
			if len(batch) >= s.cfg.MaxBatch {
				flush()
			}
		case <-timer.C:
			flush()
		}
	}
}

// worker serves whole batches on one replica. Requests whose context died in
// the queue are answered with their context error and excluded from the
// readout; a batch that shrinks to one request takes the serial
// single-request path (identical bits, no packing overhead).
func (s *Server) worker(rep *core.Replica, dispatch <-chan []*request) {
	defer s.wg.Done()
	for batch := range dispatch {
		if s.beforeBatch != nil {
			s.beforeBatch()
		}
		live := batch[:0]
		for _, r := range batch {
			if err := r.ctx.Err(); err != nil {
				r.done <- outcome{err: err}
				continue
			}
			live = append(live, r)
		}
		if len(live) == 0 {
			continue
		}
		s.count(s.batches)
		if s.batchSize != nil {
			s.batchSize.Observe(float64(len(live)))
		}
		if len(live) == 1 {
			s.finish(live[0], rep.Infer(live[0].x))
			continue
		}
		xs := make([]*tensor.Tensor, len(live))
		for i, r := range live {
			xs[i] = r.x
		}
		for i, y := range rep.InferBatch(xs) {
			s.finish(live[i], y)
		}
	}
}

func (s *Server) finish(r *request, y *tensor.Tensor) {
	_, class := y.Max()
	r.done <- outcome{res: Result{Scores: y, Class: class}}
	if s.latency != nil {
		s.latency.Add(time.Since(r.enqueued))
	}
}

// Close drains the server: no new requests are accepted, every queued
// request is served (or answered with its context error), and all scheduler
// goroutines exit before Close returns. A second Close reports ErrClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Closed reports whether Close has begun.
func (s *Server) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// InputSize returns the expected number of input elements per request.
func (s *Server) InputSize() int { return s.in }

func (s *Server) count(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (s *Server) gauge(g *telemetry.Gauge, v float64) {
	if g != nil {
		g.Set(v)
	}
}
