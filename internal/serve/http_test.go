package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pipelayer/internal/core"
	"pipelayer/internal/energy"
	"pipelayer/internal/telemetry/flight"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func validBody(t *testing.T, s *Server) string {
	t.Helper()
	xs := inputs(t, 1)
	b, err := json.Marshal(PredictRequest{Input: xs[0].Data()})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestHTTPPredict(t *testing.T) {
	a := loadedAccel(t, nil)
	xs := inputs(t, 1)
	want := serialReference(t, a, xs)[0]
	s, err := New(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler(time.Second)

	w := postJSON(t, h, "/predict", validBody(t, s))
	if w.Code != http.StatusOK {
		t.Fatalf("predict: status %d, body %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var resp PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Scores) != 10 {
		t.Fatalf("scores length %d", len(resp.Scores))
	}
	for i, v := range resp.Scores {
		if v != want.At(i) {
			t.Fatalf("score %d = %v, serial path %v", i, v, want.At(i))
		}
	}
	if _, idx := want.Max(); resp.Class != idx {
		t.Fatalf("class %d, want %d", resp.Class, idx)
	}
}

// TestHTTPPredictFlatInputConvNetwork: HTTP clients always send a flat
// vector, but a conv front layer consumes (C,H,W) images — the server must
// reshape, not hand the flat tensor to Im2Col (which panics the worker, or
// with shards the whole chain). Scores must bit-match the serial path on the
// shaped image, unsharded and sharded alike.
func TestHTTPPredictFlatInputConvNetwork(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"unsharded", 0},
		{"sharded", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := core.New(energy.DefaultModel())
			if err := a.TopologySet(testutil.TinyDeepCNN("serve-cnn"), 1); err != nil {
				t.Fatal(err)
			}
			if err := a.WeightLoad(nil, rand.New(rand.NewSource(77))); err != nil {
				t.Fatal(err)
			}
			img := testutil.ImageSamples(1, 9)[0].Input
			want := serialReference(t, a, []*tensor.Tensor{img})[0]

			s, err := New(a, Config{Shards: tc.shards})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			h := s.Handler(5 * time.Second)

			body, err := json.Marshal(PredictRequest{Input: img.Data()})
			if err != nil {
				t.Fatal(err)
			}
			w := postJSON(t, h, "/predict", string(body))
			if w.Code != http.StatusOK {
				t.Fatalf("flat predict against conv net: status %d, body %s", w.Code, w.Body)
			}
			var resp PredictResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			if len(resp.Scores) != want.Size() {
				t.Fatalf("scores length %d, want %d", len(resp.Scores), want.Size())
			}
			for i, v := range resp.Scores {
				if v != want.At(i) {
					t.Fatalf("score %d = %v, serial path %v", i, v, want.At(i))
				}
			}
		})
	}
}

// TestHTTPFlightTraceHeader: the handler attributes spans to a caller-sent
// X-Flight-Trace id, allocates one otherwise, and echoes the id on the
// response; with tracing off the header never appears.
func TestHTTPFlightTraceHeader(t *testing.T) {
	a := loadedAccel(t, nil)
	rec := flight.New(flight.Config{Capacity: 256})
	s, err := New(a, Config{Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler(time.Second)

	// Caller-chosen id round-trips.
	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(validBody(t, s)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(FlightTraceHeader, "777")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body)
	}
	if got := w.Header().Get(FlightTraceHeader); got != "777" {
		t.Fatalf("response trace header %q, want 777", got)
	}
	if m := spansByTrace(rec)[777]; len(m) == 0 {
		t.Fatal("no spans attributed to the propagated header id")
	}

	// Without the header the server allocates an id and reports it.
	w = postJSON(t, h, "/predict", validBody(t, s))
	if got := w.Header().Get(FlightTraceHeader); got == "" || got == "0" {
		t.Fatalf("allocated trace header %q", got)
	}

	// Tracing off: no header.
	sOff, err := New(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sOff.Close()
	w = postJSON(t, sOff.Handler(time.Second), "/predict", validBody(t, sOff))
	if got := w.Header().Get(FlightTraceHeader); got != "" {
		t.Fatalf("trace header %q with tracing disabled", got)
	}
}

func TestHTTPPredictRejectsBadRequests(t *testing.T) {
	a := loadedAccel(t, nil)
	s, err := New(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler(time.Second)

	cases := []struct {
		name, body string
	}{
		{"malformed json", `{"input":[1,2`},
		{"wrong shape", `{"input":[1,2,3]}`},
		{"empty input", `{"input":[]}`},
		{"missing input", `{}`},
		{"wrong type", `{"input":"abc"}`},
		{"unknown field", `{"data":[1]}`},
		{"trailing garbage", `{"input":[1]} []`},
		{"overflow number", fmt.Sprintf(`{"input":[1e999%s]}`, strings.Repeat(",0", 783))},
	}
	for _, tc := range cases {
		if w := postJSON(t, h, "/predict", tc.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, w.Code, w.Body)
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/predict", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict: status %d", w.Code)
	}
}

func TestHTTPHealthzAndDrain(t *testing.T) {
	a := loadedAccel(t, nil)
	s, err := New(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler(time.Second)
	body := validBody(t, s)

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz while serving: %d", w.Code)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close: %d, want 503", w.Code)
	}
	if w := postJSON(t, h, "/predict", body); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("predict after Close: %d, want 503", w.Code)
	}
}

func TestHTTPDeadlineMapsTo504(t *testing.T) {
	a := loadedAccel(t, nil)
	gate := make(chan struct{})
	s, err := New(a, Config{
		Replicas: 1, MaxBatch: 1, QueueCap: 4,
		testHookBeforeBatch: func() { <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler(20 * time.Millisecond)
	w := postJSON(t, h, "/predict", validBody(t, s))
	close(gate)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("gated predict: status %d, want 504 (body %s)", w.Code, w.Body)
	}
}

func TestHTTPOverloadMapsTo503(t *testing.T) {
	a := loadedAccel(t, nil)
	gate := make(chan struct{})
	s, err := New(a, Config{
		Replicas: 1, MaxBatch: 1, QueueCap: 1,
		testHookBeforeBatch: func() { <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler(5 * time.Second)
	body := validBody(t, s)

	// Saturate: worker gated, one batch in the batcher, one slot in the
	// queue. Requests run in goroutines since successful ones block.
	done := make(chan *httptest.ResponseRecorder, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- postJSON(t, h, "/predict", body) }()
	}
	var saw503 bool
	var release sync.Once
	deadline := time.After(5 * time.Second)
	got := 0
	var pending []*httptest.ResponseRecorder
	for got < 8 {
		select {
		case w := <-done:
			got++
			if w.Code == http.StatusServiceUnavailable {
				saw503 = true
			} else {
				pending = append(pending, w)
			}
			if saw503 {
				release.Do(func() { close(gate) })
			}
		case <-deadline:
			t.Fatalf("requests stuck: %d of 8 done (saw503=%v)", got, saw503)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !saw503 {
		t.Fatal("no request was shed with 503")
	}
	for _, w := range pending {
		if w.Code != http.StatusOK {
			t.Fatalf("admitted request finished %d, body %s", w.Code, w.Body)
		}
		if !bytes.Contains(w.Body.Bytes(), []byte("scores")) {
			t.Fatalf("admitted request missing scores: %s", w.Body)
		}
	}
}
