// Package memsys models the memory-subarray banks and the connection
// component of Figure 9(d): the substrate behind the energy model's
// aggregate MoveBandwidth. Memory subarrays are organized as interleaved
// banks with open-row buffers; the connection component streams layer
// outputs into them (and streams buffered d/δ values back out) with
// bank-level parallelism. The package provides both closed-form peak
// bandwidth and a request-level simulator that exposes row-buffer locality
// and bank contention — and a consistency check ties its achievable
// bandwidth to the constant the energy model assumes.
package memsys

import (
	"fmt"
	"math/rand"
)

// Config describes the banked memory organization.
type Config struct {
	// Banks is the number of independently operating memory subarrays.
	Banks int
	// RowSize is the number of data values per row (one activation burst).
	RowSize int
	// ActivateLatency is the cost of opening a row (seconds) — the ReRAM
	// read latency class of the paper's Section 6.2 constants.
	ActivateLatency float64
	// BurstLatency is the per-value streaming cost once a row is open.
	BurstLatency float64
	// WriteActivateLatency is the cost of opening a row for writing.
	WriteActivateLatency float64
}

// DefaultConfig matches the paper's device constants: activations at the
// 29.31 ns read / 50.88 ns write latencies, 128-value rows (the crossbar
// width), and 1024 banks — a mid-size PIM memory region.
func DefaultConfig() Config {
	return Config{
		Banks:                1024,
		RowSize:              128,
		ActivateLatency:      29.31e-9,
		BurstLatency:         0.5e-9,
		WriteActivateLatency: 50.88e-9,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.RowSize <= 0 {
		return fmt.Errorf("memsys: banks (%d) and row size (%d) must be positive", c.Banks, c.RowSize)
	}
	if c.ActivateLatency <= 0 || c.BurstLatency <= 0 || c.WriteActivateLatency <= 0 {
		return fmt.Errorf("memsys: latencies must be positive")
	}
	return nil
}

// PeakReadBandwidth is the closed-form streaming read bandwidth in values
// per second: every bank pipelines row activations with bursts.
func (c Config) PeakReadBandwidth() float64 {
	perRow := c.ActivateLatency + float64(c.RowSize)*c.BurstLatency
	return float64(c.Banks) * float64(c.RowSize) / perRow
}

// PeakWriteBandwidth is the closed-form streaming write bandwidth.
func (c Config) PeakWriteBandwidth() float64 {
	perRow := c.WriteActivateLatency + float64(c.RowSize)*c.BurstLatency
	return float64(c.Banks) * float64(c.RowSize) / perRow
}

// System is a request-level simulator of the banked memory.
type System struct {
	cfg   Config
	banks []bank
	now   float64
	// Hits and Misses count row-buffer outcomes for locality accounting.
	Hits, Misses int64
}

type bank struct {
	openRow   int
	hasOpen   bool
	busyUntil float64
}

// NewSystem creates a simulator in the all-rows-closed state at time 0.
func NewSystem(cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &System{cfg: cfg, banks: make([]bank, cfg.Banks)}
}

// bankOf maps a value address to its bank (row-interleaved).
func (s *System) bankOf(addr int) int { return (addr / s.cfg.RowSize) % s.cfg.Banks }

// rowOf maps a value address to its row within the bank.
func (s *System) rowOf(addr int) int { return addr / (s.cfg.RowSize * s.cfg.Banks) }

// access issues one value access at the current time and returns its
// completion time. write selects the write activation latency.
func (s *System) access(addr int, write bool) float64 {
	b := &s.banks[s.bankOf(addr)]
	row := s.rowOf(addr)
	start := s.now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	var lat float64
	if b.hasOpen && b.openRow == row {
		s.Hits++
		lat = s.cfg.BurstLatency
	} else {
		s.Misses++
		if write {
			lat = s.cfg.WriteActivateLatency + s.cfg.BurstLatency
		} else {
			lat = s.cfg.ActivateLatency + s.cfg.BurstLatency
		}
		b.hasOpen = true
		b.openRow = row
	}
	b.busyUntil = start + lat
	return b.busyUntil
}

// StreamTransfer simulates moving count sequential values starting at base
// (a layer output being written to its memory subarray buffer, or a
// buffered tensor being read back) and returns the elapsed time.
func (s *System) StreamTransfer(base, count int, write bool) float64 {
	if count <= 0 {
		panic("memsys: count must be positive")
	}
	end := s.now
	for i := 0; i < count; i++ {
		if t := s.access(base+i, write); t > end {
			end = t
		}
	}
	elapsed := end - s.now
	s.now = end
	return elapsed
}

// RandomTransfer simulates count accesses at uniformly random addresses in
// [0, span) — the pathological no-locality pattern — and returns the
// elapsed time.
func (s *System) RandomTransfer(span, count int, write bool, rng *rand.Rand) float64 {
	if count <= 0 || span <= 0 {
		panic("memsys: count and span must be positive")
	}
	end := s.now
	for i := 0; i < count; i++ {
		if t := s.access(rng.Intn(span), write); t > end {
			end = t
		}
	}
	elapsed := end - s.now
	s.now = end
	return elapsed
}

// AchievedBandwidth converts (values, seconds) to values/second.
func AchievedBandwidth(values int, seconds float64) float64 {
	if seconds <= 0 {
		panic("memsys: elapsed time must be positive")
	}
	return float64(values) / seconds
}

// Reset returns the simulator to time 0 with all rows closed.
func (s *System) Reset() {
	for i := range s.banks {
		s.banks[i] = bank{}
	}
	s.now = 0
	s.Hits, s.Misses = 0, 0
}
