package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pipelayer/internal/energy"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Banks: 0, RowSize: 128, ActivateLatency: 1e-9, BurstLatency: 1e-9, WriteActivateLatency: 1e-9},
		{Banks: 4, RowSize: 0, ActivateLatency: 1e-9, BurstLatency: 1e-9, WriteActivateLatency: 1e-9},
		{Banks: 4, RowSize: 8, ActivateLatency: 0, BurstLatency: 1e-9, WriteActivateLatency: 1e-9},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestPeakBandwidthFormulas(t *testing.T) {
	c := Config{Banks: 2, RowSize: 4, ActivateLatency: 8e-9, BurstLatency: 1e-9, WriteActivateLatency: 12e-9}
	// Per row: 8 + 4 = 12 ns for 4 values → 1/3 value/ns per bank → 2/3 total.
	want := 2.0 * 4 / 12e-9 / 2 // = 0.666e9 values/s... computed directly below
	got := c.PeakReadBandwidth()
	if diff := got - 2*4/12e-9; diff > 1 || diff < -1 {
		t.Fatalf("read bandwidth = %g", got)
	}
	_ = want
	if c.PeakWriteBandwidth() >= c.PeakReadBandwidth() {
		t.Fatal("writes are slower than reads")
	}
}

func TestStreamTransferApproachesPeak(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSystem(cfg)
	values := cfg.Banks * cfg.RowSize * 4 // four full rows per bank
	elapsed := s.StreamTransfer(0, values, false)
	achieved := AchievedBandwidth(values, elapsed)
	peak := cfg.PeakReadBandwidth()
	if achieved > peak*1.001 {
		t.Fatalf("achieved %g exceeds peak %g", achieved, peak)
	}
	if achieved < peak*0.9 {
		t.Fatalf("streaming achieved only %g of peak %g", achieved, peak)
	}
}

func TestRowBufferLocality(t *testing.T) {
	cfg := Config{Banks: 4, RowSize: 16, ActivateLatency: 10e-9, BurstLatency: 1e-9, WriteActivateLatency: 10e-9}
	s := NewSystem(cfg)
	s.StreamTransfer(0, 4*16, false) // one row per bank
	if s.Misses != 4 {
		t.Fatalf("misses = %d, want 4 (one activation per bank)", s.Misses)
	}
	if s.Hits != 4*15 {
		t.Fatalf("hits = %d, want 60", s.Hits)
	}
}

func TestRandomSlowerThanSequential(t *testing.T) {
	cfg := DefaultConfig()
	span := cfg.Banks * cfg.RowSize * 64
	count := 50_000
	seq := NewSystem(cfg)
	tSeq := seq.StreamTransfer(0, count, false)
	rnd := NewSystem(cfg)
	tRnd := rnd.RandomTransfer(span, count, false, rand.New(rand.NewSource(1)))
	if tRnd <= tSeq {
		t.Fatalf("random (%g) must be slower than sequential (%g)", tRnd, tSeq)
	}
}

func TestMoreBanksMoreBandwidth(t *testing.T) {
	small := DefaultConfig()
	small.Banks = 64
	big := DefaultConfig()
	big.Banks = 2048
	if big.PeakReadBandwidth() <= small.PeakReadBandwidth() {
		t.Fatal("bandwidth must grow with banks")
	}
}

func TestEnergyModelBandwidthIsAchievable(t *testing.T) {
	// The energy model assumes an aggregate MoveBandwidth; the default
	// memory organization must be able to deliver it (with headroom, since
	// the model's number is a sustained, contention-inclusive figure).
	cfg := DefaultConfig()
	assumed := energy.DefaultModel().MoveBandwidth
	// The binding constraint is the write side (layer outputs are written
	// every cycle).
	if cfg.PeakWriteBandwidth() < assumed {
		t.Fatalf("memory system peak write bandwidth %g below the energy model's assumed %g",
			cfg.PeakWriteBandwidth(), assumed)
	}
}

func TestResetClearsState(t *testing.T) {
	s := NewSystem(DefaultConfig())
	s.StreamTransfer(0, 1000, true)
	s.Reset()
	if s.Hits != 0 || s.Misses != 0 || s.now != 0 {
		t.Fatal("Reset must clear state")
	}
}

func TestTransferValidation(t *testing.T) {
	s := NewSystem(DefaultConfig())
	for _, fn := range []func(){
		func() { s.StreamTransfer(0, 0, false) },
		func() { s.RandomTransfer(0, 5, false, rand.New(rand.NewSource(1))) },
		func() { AchievedBandwidth(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: elapsed time is monotone in the transfer size.
func TestPropertyTransferMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1 := 1 + rng.Intn(5000)
		n2 := n1 + 1 + rng.Intn(5000)
		a := NewSystem(DefaultConfig())
		t1 := a.StreamTransfer(0, n1, false)
		b := NewSystem(DefaultConfig())
		t2 := b.StreamTransfer(0, n2, false)
		// Non-strict: bank parallelism can finish a slightly larger
		// transfer in the same max-over-banks time.
		return t2 >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
