package parallel

import (
	"os"
	"runtime"
	"sync/atomic"
	"testing"

	"pipelayer/internal/telemetry"
)

// TestForCoversRange checks that For visits every index exactly once for a
// sweep of sizes, grains and worker counts.
func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 3, 15, 16, 17, 100, 1023} {
			for _, grain := range []int{0, 1, 4, 64} {
				hits := make([]int32, n)
				p.For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("workers=%d n=%d grain=%d: bad range [%d,%d)", workers, n, grain, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, h)
					}
				}
			}
		}
	}
}

// TestChunkBoundariesFixed checks that the chunk decomposition is a pure
// function of (n, grain, workers): two runs see identical boundaries.
func TestChunkBoundariesFixed(t *testing.T) {
	p := NewPool(4)
	collect := func() map[[2]int]bool {
		set := make(map[[2]int]bool)
		m := make(chan [2]int, 64)
		p.For(103, 8, func(lo, hi int) { m <- [2]int{lo, hi} })
		close(m)
		for r := range m {
			set[r] = true
		}
		return set
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("chunk count changed between runs: %d vs %d", len(a), len(b))
	}
	for r := range a {
		if !b[r] {
			t.Fatalf("chunk %v present in first run, absent in second", r)
		}
	}
	// Every chunk except the remainder must be a multiple of the grain.
	for r := range a {
		if r[1] != 103 && (r[1]-r[0])%8 != 0 {
			t.Fatalf("interior chunk %v is not a grain multiple", r)
		}
	}
}

// TestGrainForcesSerial checks that loops smaller than one grain run inline.
func TestGrainForcesSerial(t *testing.T) {
	p := NewPool(8)
	calls := 0
	p.For(100, 100, func(lo, hi int) { calls++ }) // no atomics: must be inline
	if calls != 1 {
		t.Fatalf("expected 1 inline chunk, got %d", calls)
	}
	pf, sf, _ := p.Stats()
	if pf != 0 || sf != 1 {
		t.Fatalf("expected (0 parallel, 1 serial) For, got (%d, %d)", pf, sf)
	}
}

func TestSerialPool(t *testing.T) {
	if Serial().Workers() != 1 {
		t.Fatalf("Serial() pool has %d workers", Serial().Workers())
	}
	sum := 0
	Serial().For(10, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i // safe: always inline
		}
	})
	if sum != 45 {
		t.Fatalf("serial For sum = %d, want 45", sum)
	}
}

func TestNestedFor(t *testing.T) {
	p := NewPool(4)
	var total atomic.Int64
	p.For(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.For(16, 1, func(l, h int) {
				total.Add(int64(h - l))
			})
		}
	})
	if total.Load() != 8*16 {
		t.Fatalf("nested For executed %d iterations, want %d", total.Load(), 8*16)
	}
}

func TestRun(t *testing.T) {
	p := NewPool(3)
	var done [7]atomic.Bool
	tasks := make([]func(), len(done))
	for i := range tasks {
		i := i
		tasks[i] = func() { done[i].Store(true) }
	}
	p.Run(tasks)
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("task %d did not run", i)
		}
	}
}

func TestDefaultWorkersEnv(t *testing.T) {
	t.Setenv(EnvWorkers, "7")
	if got := DefaultWorkers(); got != 7 {
		t.Fatalf("DefaultWorkers with %s=7 = %d", EnvWorkers, got)
	}
	t.Setenv(EnvWorkers, "not-a-number")
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers with invalid env = %d, want GOMAXPROCS", got)
	}
	os.Unsetenv(EnvWorkers)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers unset = %d, want GOMAXPROCS", got)
	}
}

func TestSetWorkers(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	if got := SetWorkers(5); got != 5 || Workers() != 5 {
		t.Fatalf("SetWorkers(5) = %d, Workers() = %d", got, Workers())
	}
	if got := SetWorkers(0); got != DefaultWorkers() {
		t.Fatalf("SetWorkers(0) = %d, want default %d", got, DefaultWorkers())
	}
}

func TestAttachMetrics(t *testing.T) {
	p := NewPool(3)
	p.For(10, 1, func(lo, hi int) {}) // counted before attach
	reg := telemetry.NewRegistry()
	p.AttachMetrics(reg)
	if got := reg.Gauge("parallel_pool_workers").Value(); got != 3 {
		t.Fatalf("parallel_pool_workers = %v, want 3", got)
	}
	pf, sf, ch := p.Stats()
	if got := reg.Counter("parallel_pool_parallel_for_total").Value(); got != pf {
		t.Fatalf("parallel_for_total = %d, want %d", got, pf)
	}
	if got := reg.Counter("parallel_pool_serial_for_total").Value(); got != sf {
		t.Fatalf("serial_for_total = %d, want %d", got, sf)
	}
	if got := reg.Counter("parallel_pool_chunks_total").Value(); got != ch {
		t.Fatalf("chunks_total = %d, want %d", got, ch)
	}
	p.For(100, 1, func(lo, hi int) {})
	if got := reg.Gauge("parallel_pool_active_chunks").Value(); got != 0 {
		t.Fatalf("active_chunks after quiescence = %v, want 0", got)
	}
	if p.Occupancy() != 0 {
		t.Fatalf("Occupancy after quiescence = %d, want 0", p.Occupancy())
	}
}
