// Package parallel provides the shared worker pool behind every data-parallel
// hot path in the reproduction: the tensor matmul/im2col kernels, the
// quantized crossbar readout, the per-column spike integration, and the
// batch-level fan-out of the executors. It is the software analogue of the
// paper's intra-layer parallelism (Section 3.2.3): the same weights replicated
// across crossbar groups so independent slices of work proceed concurrently.
//
// Determinism contract: For splits [0,n) into chunks whose boundaries are a
// pure function of (n, grain, workers) — no work stealing, no dynamic
// rebalancing — and every caller routes work so that chunks either write
// disjoint output ranges or preserve the serial per-element accumulation
// order. Under that discipline results are bit-identical to the serial path
// for every worker count, which TestParallelDeterminism asserts across
// workers {1, 2, 7, GOMAXPROCS}.
//
// Sizing: pools default to GOMAXPROCS, overridable per pool via NewPool and
// process-wide via the PIPELAYER_WORKERS environment variable or SetWorkers
// (the -workers flag on the commands). Serial() is the escape hatch: a pool
// that always runs inline.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"pipelayer/internal/telemetry"
)

// EnvWorkers is the environment variable that overrides the default pool
// size (a positive integer; invalid or unset values fall back to GOMAXPROCS).
const EnvWorkers = "PIPELAYER_WORKERS"

// MinChunkWork is the minimum number of elementary operations (multiply-adds,
// element copies) a chunk should amortize before a loop is worth fanning out;
// below it the goroutine hand-off costs more than it buys.
const MinChunkWork = 1 << 15

// Grain converts a per-iteration operation count into the minimum iterations
// per chunk that keeps every chunk above MinChunkWork — the standard grain
// argument for For over rows/columns/channels of known unit cost.
func Grain(perItem int) int {
	if perItem <= 0 {
		perItem = 1
	}
	g := MinChunkWork / perItem
	if g < 1 {
		g = 1
	}
	return g
}

// Pool is a deterministic fork-join worker pool. The zero value is not
// usable; create pools with NewPool or use the process-wide Default pool.
// All methods are safe for concurrent use.
type Pool struct {
	workers int

	// active tracks chunks executing right now (pool occupancy).
	active atomic.Int64
	// parallelFors / serialFors / chunks count For invocations that fanned
	// out, For invocations that ran inline, and total chunks executed.
	parallelFors atomic.Int64
	serialFors   atomic.Int64
	chunks       atomic.Int64

	// occupancy is the optional telemetry gauge mirroring active, and the
	// tel* counters are its companions; all are set by AttachMetrics and
	// updated live from For.
	occupancy   atomic.Pointer[telemetry.Gauge]
	telParallel atomic.Pointer[telemetry.Counter]
	telSerial   atomic.Pointer[telemetry.Counter]
	telChunks   atomic.Pointer[telemetry.Counter]
}

// DefaultWorkers returns the process-wide default pool size: the value of
// PIPELAYER_WORKERS when it parses to a positive integer, else GOMAXPROCS.
func DefaultWorkers() int {
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// NewPool creates a pool with the given worker count; workers <= 0 selects
// DefaultWorkers().
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Occupancy returns the number of chunks executing at this instant.
func (p *Pool) Occupancy() int { return int(p.active.Load()) }

// Stats returns cumulative scheduling counters: For calls that fanned out,
// For calls that ran inline, and total chunks executed.
func (p *Pool) Stats() (parallelFors, serialFors, chunks int64) {
	return p.parallelFors.Load(), p.serialFors.Load(), p.chunks.Load()
}

// AttachMetrics publishes the pool's occupancy gauge and scheduling counters
// into reg under the parallel_pool_* names and keeps them updated live from
// every subsequent For; nil detaches. Counts recorded before attachment are
// carried over on attach.
func (p *Pool) AttachMetrics(reg *telemetry.Registry) {
	if reg == nil {
		p.occupancy.Store(nil)
		p.telParallel.Store(nil)
		p.telSerial.Store(nil)
		p.telChunks.Store(nil)
		return
	}
	reg.Gauge("parallel_pool_workers").Set(float64(p.workers))
	g := reg.Gauge("parallel_pool_active_chunks")
	g.Set(float64(p.active.Load()))
	cp := reg.Counter("parallel_pool_parallel_for_total")
	cs := reg.Counter("parallel_pool_serial_for_total")
	cc := reg.Counter("parallel_pool_chunks_total")
	cp.Add(p.parallelFors.Load() - cp.Value())
	cs.Add(p.serialFors.Load() - cs.Value())
	cc.Add(p.chunks.Load() - cc.Value())
	p.telParallel.Store(cp)
	p.telSerial.Store(cs)
	p.telChunks.Store(cc)
	p.occupancy.Store(g)
}

// count bumps an internal counter and its attached telemetry twin.
func count(internal *atomic.Int64, tel *atomic.Pointer[telemetry.Counter], n int64) {
	internal.Add(n)
	if c := tel.Load(); c != nil {
		c.Add(n)
	}
}

// chunkSize returns the fixed chunk size for a loop of n iterations with the
// given minimum grain: the smallest grain multiple that needs at most
// p.workers chunks. It depends only on (n, grain, workers).
func (p *Pool) chunkSize(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	c := (n + p.workers - 1) / p.workers
	return (c + grain - 1) / grain * grain
}

// For executes fn over contiguous index ranges covering [0, n) using up to
// Workers() concurrent chunks, each at least grain iterations (except the
// final remainder chunk). fn(lo, hi) must handle the half-open range [lo, hi)
// and must not depend on which chunk it runs in. For returns when every chunk
// has finished. Loops smaller than one chunk (or on a 1-worker pool) run
// inline on the caller's goroutine — the serial path and the parallel path
// execute the same per-element operation order, so results are identical.
func (p *Pool) For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunk := p.chunkSize(n, grain)
	if p.workers == 1 || chunk >= n {
		count(&p.serialFors, &p.telSerial, 1)
		count(&p.chunks, &p.telChunks, 1)
		p.enter()
		fn(0, n)
		p.leave()
		return
	}
	nchunks := (n + chunk - 1) / chunk
	count(&p.parallelFors, &p.telParallel, 1)
	count(&p.chunks, &p.telChunks, int64(nchunks))
	// A panic in any chunk is captured (first one wins) and re-raised on the
	// caller's goroutine after all chunks finish, matching the serial path's
	// behaviour of panicking out of For rather than crashing the process.
	var panicOnce sync.Once
	var panicVal any
	run := func(lo, hi int) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicVal = r })
			}
		}()
		p.enter()
		defer p.leave()
		fn(lo, hi)
	}
	var wg sync.WaitGroup
	wg.Add(nchunks - 1)
	for c := 1; c < nchunks; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	// The caller's goroutine participates as the first worker.
	run(0, chunk)
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// Run executes the given independent tasks concurrently on up to Workers()
// goroutines (the caller's included) and returns when all have finished.
// Tasks are assigned to workers in fixed contiguous blocks, so scheduling is
// deterministic in the same sense as For.
func (p *Pool) Run(tasks []func()) {
	p.For(len(tasks), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tasks[i]()
		}
	})
}

func (p *Pool) enter() {
	v := p.active.Add(1)
	if g := p.occupancy.Load(); g != nil {
		g.Set(float64(v))
	}
}

func (p *Pool) leave() {
	v := p.active.Add(-1)
	if g := p.occupancy.Load(); g != nil {
		g.Set(float64(v))
	}
}

// defaultPool is the shared process-wide pool; serialPool always runs inline.
var (
	defaultPool atomic.Pointer[Pool]
	serialPool  = &Pool{workers: 1}
)

func init() {
	defaultPool.Store(NewPool(0))
}

// Default returns the process-wide shared pool.
func Default() *Pool { return defaultPool.Load() }

// Serial returns the escape-hatch pool that always runs inline on the
// caller's goroutine.
func Serial() *Pool { return serialPool }

// SetWorkers replaces the process-wide pool with one of the given size
// (n <= 0 restores the environment/GOMAXPROCS default) and returns the new
// size. In-flight For calls on the previous pool finish undisturbed.
func SetWorkers(n int) int {
	p := NewPool(n)
	defaultPool.Store(p)
	return p.workers
}

// Workers returns the process-wide pool's worker count.
func Workers() int { return Default().workers }
