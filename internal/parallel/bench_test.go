package parallel

import "testing"

// BenchmarkForOverhead measures the fixed cost of a fan-out over a trivial
// body — the floor under which a grain should keep loops inline.
func BenchmarkForOverhead(b *testing.B) {
	p := NewPool(0)
	sink := make([]float64, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.For(len(sink), 1, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				sink[j] += 1
			}
		})
	}
}

// BenchmarkForSerialBaseline is the inline loop BenchmarkForOverhead pays a
// scheduling premium over.
func BenchmarkForSerialBaseline(b *testing.B) {
	sink := make([]float64, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range sink {
			sink[j] += 1
		}
	}
}
