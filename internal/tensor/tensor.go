// Package tensor provides the dense numeric substrate used throughout the
// PipeLayer reproduction: an n-dimensional float64 tensor with row-major
// layout, plus the linear-algebra and convolution primitives (matmul, im2col,
// rotation, padding) that the CNN framework in internal/nn builds on.
//
// The package is deliberately self-contained and allocation-conscious:
// everything the paper's software baseline (a Caffe-like framework) needs is
// implemented here from scratch on the standard library.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major n-dimensional array of float64.
// A Tensor value is cheap to copy; the underlying data is shared.
type Tensor struct {
	shape  []int
	stride []int
	data   []float64
}

// New creates a zero-filled tensor with the given shape.
// New() with no dimensions creates a scalar (rank-0) tensor holding one value.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float64, n),
	}
	t.stride = computeStrides(t.shape)
	return t
}

// FromSlice creates a tensor with the given shape, adopting data as backing
// storage (no copy). len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)", len(data), shape, n))
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  data,
	}
	t.stride = computeStrides(t.shape)
	return t
}

func computeStrides(shape []int) []int {
	stride := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		stride[i] = acc
		acc *= shape[i]
	}
	return stride
}

// Shape returns a copy of the tensor's dimensions.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice (shared, row-major).
func (t *Tensor) Data() []float64 { return t.data }

// offset computes the flat index for the given coordinates.
func (t *Tensor) offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: got %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.shape[i], i))
		}
		off += x * t.stride[i]
	}
	return off
}

// At returns the element at the given coordinates.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx...)] }

// Set stores v at the given coordinates.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx...)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view with a new shape sharing the same data.
// The element count must be unchanged.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return FromSlice(t.data, shape...)
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Apply replaces each element x with f(x), in place, and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Map returns a new tensor whose elements are f applied elementwise.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	return t.Clone().Apply(f)
}

// AddInPlace adds o elementwise into t and returns t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	mustSameSize(t, o, "AddInPlace")
	for i := range t.data {
		t.data[i] += o.data[i]
	}
	return t
}

// SubInPlace subtracts o elementwise from t and returns t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	mustSameSize(t, o, "SubInPlace")
	for i := range t.data {
		t.data[i] -= o.data[i]
	}
	return t
}

// MulInPlace multiplies t by o elementwise (Hadamard product) and returns t.
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	mustSameSize(t, o, "MulInPlace")
	for i := range t.data {
		t.data[i] *= o.data[i]
	}
	return t
}

// ScaleInPlace multiplies every element by s and returns t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AxpyInPlace computes t += a*o elementwise and returns t.
func (t *Tensor) AxpyInPlace(a float64, o *Tensor) *Tensor {
	mustSameSize(t, o, "AxpyInPlace")
	for i := range t.data {
		t.data[i] += a * o.data[i]
	}
	return t
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) *Tensor { return t.Clone().AddInPlace(o) }

// Sub returns t - o as a new tensor.
func Sub(t, o *Tensor) *Tensor { return t.Clone().SubInPlace(o) }

// Hadamard returns the elementwise product as a new tensor.
func Hadamard(t, o *Tensor) *Tensor { return t.Clone().MulInPlace(o) }

func mustSameSize(a, b *Tensor, op string) {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: %s size mismatch: %v vs %v", op, a.shape, b.shape))
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element and its flat index.
// It panics on an empty tensor.
func (t *Tensor) Max() (float64, int) {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return best, bi
}

// Min returns the minimum element and its flat index.
func (t *Tensor) Min() (float64, int) {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data {
		if v < best {
			best, bi = v, i
		}
	}
	return best, bi
}

// AbsMax returns the maximum absolute value of any element (0 for empty).
func (t *Tensor) AbsMax() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the L2 norm of the tensor viewed as a flat vector.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of t and o viewed as flat vectors.
func Dot(t, o *Tensor) float64 {
	mustSameSize(t, o, "Dot")
	s := 0.0
	for i := range t.data {
		s += t.data[i] * o.data[i]
	}
	return s
}

// Equal reports whether two tensors have identical shape and elements within
// tolerance eps.
func Equal(a, b *Tensor, eps float64) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > eps {
			return false
		}
	}
	return true
}

// String renders small tensors for debugging; large tensors are summarized.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g ... %g] (%d elems)", t.data[0], t.data[1], t.data[len(t.data)-1], len(t.data))
	}
	return b.String()
}
