package tensor

import (
	"fmt"

	"pipelayer/internal/parallel"
)

// rowGrain converts a per-row operation count into the minimum number of rows
// per chunk that keeps every chunk above parallel.MinChunkWork.
func rowGrain(perRow int) int { return parallel.Grain(perRow) }

// MatMul computes the matrix product C = A·B for rank-2 tensors.
// A is (m×k), B is (k×n); the result is (m×n). Rows of C are computed in
// parallel chunks on the shared worker pool; each output element accumulates
// in the same order as the serial loop, so the result is bit-identical for
// every worker count.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims differ: (%d×%d)·(%d×%d) needs %d == %d", m, k, k2, n, k, k2))
	}
	c := New(m, n)
	parallel.Default().For(m, rowGrain(k*n), func(lo, hi int) {
		matmulInto(c.data[lo*n:hi*n], a.data[lo*k:hi*k], b.data, hi-lo, k, n)
	})
	return c
}

// matmulInto computes dst = A·B with the ikj loop ordering, which keeps the
// inner loop streaming over contiguous rows of B and dst.
func matmulInto(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := dst[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatVec computes y = A·x for a rank-2 A (m×k) and rank-1 x (k).
func MatVec(a, x *Tensor) *Tensor {
	if a.Rank() != 2 || x.Rank() != 1 {
		panic(fmt.Sprintf("tensor: MatVec requires (matrix, vector), got %v and %v", a.shape, x.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if k != x.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec dims differ: %v vs %v (matrix has %d cols, vector %d elems)", a.shape, x.shape, k, x.shape[0]))
	}
	y := New(m)
	parallel.Default().For(m, rowGrain(k), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.data[i*k : (i+1)*k]
			s := 0.0
			for j, v := range row {
				s += v * x.data[j]
			}
			y.data[i] = s
		}
	})
	return y
}

// MatMulTransA computes C = Aᵀ·B where A is (k×m) and B is (k×n).
// Useful for weight-gradient computation without materializing Aᵀ. The loop
// nest iterates output rows outermost (each reduces over p in ascending
// order, exactly the element-wise order of the classical p-outer nest), so
// rows parallelize with bit-identical results.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims differ: Aᵀ is (%d×%d), B is (%d×%d), needs %d == %d", m, k, k2, n, k, k2))
	}
	c := New(m, n)
	parallel.Default().For(m, rowGrain(k*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := c.data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.data[p*m+i]
				if av == 0 {
					continue
				}
				brow := b.data[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
	return c
}

// MatMulTransB computes C = A·Bᵀ where A is (m×k) and B is (n×k).
// Useful for error backpropagation δ_{l-1} = Wᵀ δ_l expressed row-wise.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims differ: A is (%d×%d), Bᵀ is (%d×%d), needs %d == %d", m, k, k2, n, k, k2))
	}
	c := New(m, n)
	parallel.Default().For(m, rowGrain(k*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			crow := c.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.data[j*k : (j+1)*k]
				s := 0.0
				for p, av := range arow {
					s += av * brow[p]
				}
				crow[j] = s
			}
		}
	})
	return c
}

// Transpose returns the transpose of a rank-2 tensor as a new tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank-2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	t := New(n, m)
	parallel.Default().For(m, rowGrain(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				t.data[j*m+i] = a.data[i*n+j]
			}
		}
	})
	return t
}

// Outer computes the outer product x·yᵀ of two vectors as an (len(x)×len(y))
// matrix. It is the shape of the inner-product weight gradient ∂J/∂W = d δᵀ.
func Outer(x, y *Tensor) *Tensor {
	if x.Rank() != 1 || y.Rank() != 1 {
		panic(fmt.Sprintf("tensor: Outer requires rank-1 operands, got %v and %v", x.shape, y.shape))
	}
	m, n := x.shape[0], y.shape[0]
	c := New(m, n)
	parallel.Default().For(m, rowGrain(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xv := x.data[i]
			row := c.data[i*n : (i+1)*n]
			for j, yv := range y.data {
				row[j] = xv * yv
			}
		}
	})
	return c
}
