package tensor

import (
	"fmt"

	"pipelayer/internal/parallel"
)

// Convolution helpers. Images are rank-3 tensors in (C, H, W) layout; kernel
// banks are rank-4 in (OutC, InC, KH, KW) layout, matching the paper's
// four-dimensional kernel K[kx, ky, c_l, c_{l+1}] up to index ordering.

// ConvOutDim returns the output spatial size for input size in, kernel size k,
// stride s and symmetric zero padding p.
func ConvOutDim(in, k, s, p int) int {
	if s <= 0 {
		panic("tensor: stride must be positive")
	}
	return (in+2*p-k)/s + 1
}

// Pad2D zero-pads each channel of a (C,H,W) tensor by p on every side.
func Pad2D(x *Tensor, p int) *Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Pad2D requires rank-3 (C,H,W), got %v", x.shape))
	}
	if p == 0 {
		return x.Clone()
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	out := New(c, h+2*p, w+2*p)
	oh, ow := h+2*p, w+2*p
	for ci := 0; ci < c; ci++ {
		for i := 0; i < h; i++ {
			src := x.data[ci*h*w+i*w : ci*h*w+(i+1)*w]
			dstOff := ci*oh*ow + (i+p)*ow + p
			copy(out.data[dstOff:dstOff+w], src)
		}
	}
	return out
}

// Crop2D removes p rows/columns of border from each channel of a (C,H,W)
// tensor; the inverse of Pad2D.
func Crop2D(x *Tensor, p int) *Tensor {
	if x.Rank() != 3 {
		panic("tensor: Crop2D requires rank-3 (C,H,W)")
	}
	if p == 0 {
		return x.Clone()
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	if h <= 2*p || w <= 2*p {
		panic(fmt.Sprintf("tensor: Crop2D(%d) too large for %v", p, x.shape))
	}
	out := New(c, h-2*p, w-2*p)
	nh, nw := h-2*p, w-2*p
	for ci := 0; ci < c; ci++ {
		for i := 0; i < nh; i++ {
			srcOff := ci*h*w + (i+p)*w + p
			dstOff := ci*nh*nw + i*nw
			copy(out.data[dstOff:dstOff+nw], x.data[srcOff:srcOff+nw])
		}
	}
	return out
}

// Rot180 rotates every (KH,KW) plane of a rank-4 kernel bank by 180 degrees,
// implementing the paper's rot180(K) used for error backward through a
// convolution layer (Section 4.3, Figure 11).
func Rot180(k *Tensor) *Tensor {
	if k.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Rot180 requires rank-4 kernels, got %v", k.shape))
	}
	oc, ic, kh, kw := k.shape[0], k.shape[1], k.shape[2], k.shape[3]
	out := New(oc, ic, kh, kw)
	for o := 0; o < oc; o++ {
		for i := 0; i < ic; i++ {
			base := (o*ic + i) * kh * kw
			for y := 0; y < kh; y++ {
				for x := 0; x < kw; x++ {
					out.data[base+y*kw+x] = k.data[base+(kh-1-y)*kw+(kw-1-x)]
				}
			}
		}
	}
	return out
}

// Im2Col unrolls the sliding windows of a (C,H,W) image into a matrix of
// shape (C*KH*KW, OH*OW): each column is one flattened receptive field.
// This is exactly the "yellow bar" input-vector construction of the paper's
// Figure 4 — each column is the vector fed to a ReRAM array in one step.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Im2Col requires rank-3 (C,H,W), got %v", x.shape))
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh := ConvOutDim(h, kh, stride, pad)
	ow := ConvOutDim(w, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for %v kernel (%d,%d) stride %d pad %d", x.shape, kh, kw, stride, pad))
	}
	cols := New(c*kh*kw, oh*ow)
	ncols := oh * ow
	// Each flat (ci,ky,kx) triple fills exactly one row of cols, so the
	// triples parallelize with disjoint writes.
	parallel.Default().For(c*kh*kw, rowGrain(ncols), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			ci, ky, kx := r/(kh*kw), (r/kw)%kh, r%kw
			row := r * ncols
			for oy := 0; oy < oh; oy++ {
				iy := oy*stride + ky - pad
				if iy < 0 || iy >= h {
					continue // padding region stays zero
				}
				for ox := 0; ox < ow; ox++ {
					ix := ox*stride + kx - pad
					if ix < 0 || ix >= w {
						continue
					}
					cols.data[row+oy*ow+ox] = x.data[ci*h*w+iy*w+ix]
				}
			}
		}
	})
	return cols
}

// Col2Im scatters a (C*KH*KW, OH*OW) column matrix back into a (C,H,W) image,
// accumulating overlapping contributions; the adjoint of Im2Col and the core
// of the convolution input-gradient computation.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh := ConvOutDim(h, kh, stride, pad)
	ow := ConvOutDim(w, kw, stride, pad)
	if cols.Rank() != 2 || cols.shape[0] != c*kh*kw || cols.shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im shape mismatch: cols %v vs expected (%d,%d)", cols.shape, c*kh*kw, oh*ow))
	}
	x := New(c, h, w)
	ncols := oh * ow
	// Overlapping windows of the same channel accumulate into shared pixels,
	// so the safe parallel unit is the channel: each channel's (ky,kx,oy,ox)
	// scatter order is exactly the serial order, and channels write disjoint
	// planes — bit-identical for every worker count.
	parallel.Default().For(c, rowGrain(kh*kw*ncols), func(clo, chi int) {
		for ci := clo; ci < chi; ci++ {
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					row := ((ci*kh+ky)*kw + kx) * ncols
					for oy := 0; oy < oh; oy++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for ox := 0; ox < ow; ox++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							x.data[ci*h*w+iy*w+ix] += cols.data[row+oy*ow+ox]
						}
					}
				}
			}
		}
	})
	return x
}

// Conv2D computes the convolution (cross-correlation, Caffe convention) of a
// (C,H,W) input with an (OC,C,KH,KW) kernel bank and per-output-channel bias,
// implementing the paper's Equation (1). bias may be nil.
// The result is (OC, OH, OW).
func Conv2D(x, kernels, bias *Tensor, stride, pad int) *Tensor {
	if x.Rank() != 3 || kernels.Rank() != 4 {
		panic("tensor: Conv2D requires (C,H,W) input and (OC,C,KH,KW) kernels")
	}
	c := x.shape[0]
	oc, ic, kh, kw := kernels.shape[0], kernels.shape[1], kernels.shape[2], kernels.shape[3]
	if ic != c {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch: input %d, kernels expect %d", c, ic))
	}
	oh := ConvOutDim(x.shape[1], kh, stride, pad)
	ow := ConvOutDim(x.shape[2], kw, stride, pad)

	cols := Im2Col(x, kh, kw, stride, pad)        // (C*KH*KW, OH*OW)
	wmat := FromSlice(kernels.data, oc, c*kh*kw)  // (OC, C*KH*KW) view
	out := MatMul(wmat, cols).Reshape(oc, oh, ow) // (OC, OH*OW) -> (OC,OH,OW)
	if bias != nil {
		if bias.Size() != oc {
			panic(fmt.Sprintf("tensor: Conv2D bias size %d != out channels %d", bias.Size(), oc))
		}
		plane := oh * ow
		parallel.Default().For(oc, rowGrain(plane), func(lo, hi int) {
			for o := lo; o < hi; o++ {
				b := bias.data[o]
				seg := out.data[o*plane : (o+1)*plane]
				for i := range seg {
					seg[i] += b
				}
			}
		})
	}
	return out
}

// Conv2DDirect is a loop-nest reference implementation of Conv2D used by
// tests (and the BenchmarkAblationConv ablation) to validate the im2col path.
func Conv2DDirect(x, kernels, bias *Tensor, stride, pad int) *Tensor {
	if x.Rank() != 3 || kernels.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2DDirect requires (C,H,W) input and (OC,C,KH,KW) kernels, got %v and %v", x.shape, kernels.shape))
	}
	if kernels.shape[1] != x.shape[0] {
		panic(fmt.Sprintf("tensor: Conv2DDirect channel mismatch: input has %d channels, kernels expect %d", x.shape[0], kernels.shape[1]))
	}
	if bias != nil && bias.Size() != kernels.shape[0] {
		panic(fmt.Sprintf("tensor: Conv2DDirect bias size %d != out channels %d", bias.Size(), kernels.shape[0]))
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oc, _, kh, kw := kernels.shape[0], kernels.shape[1], kernels.shape[2], kernels.shape[3]
	oh := ConvOutDim(h, kh, stride, pad)
	ow := ConvOutDim(w, kw, stride, pad)
	out := New(oc, oh, ow)
	for o := 0; o < oc; o++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for ci := 0; ci < c; ci++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							s += x.At(ci, iy, ix) * kernels.At(o, ci, ky, kx)
						}
					}
				}
				if bias != nil {
					s += bias.data[o]
				}
				out.Set(s, o, oy, ox)
			}
		}
	}
	return out
}
