package tensor

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"pipelayer/internal/parallel"
)

// benchWorkers is the serial-vs-parallel sweep every paired benchmark runs:
// the serial baseline, then power-of-two pools up to the machine width (4 is
// always included so the ≥2x-at-4-workers acceptance shape is present).
func benchWorkers() []int {
	ws := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		ws = append(ws, n)
	}
	return ws
}

func withPoolB(b *testing.B, workers int, f func()) {
	old := parallel.Workers()
	parallel.SetWorkers(workers)
	defer parallel.SetWorkers(old)
	f()
}

// BenchmarkMatMul runs the (256×256)·(256×256) product serially and on
// growing pools — the paired benchmark behind the ≥2x-at-4-workers
// acceptance criterion.
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := New(256, 256).RandNormal(rng, 0, 1)
	c := New(256, 256).RandNormal(rng, 0, 1)
	for _, w := range benchWorkers() {
		name := "serial"
		if w > 1 {
			name = fmt.Sprintf("workers-%d", w)
		}
		b.Run(name, func(b *testing.B) {
			withPoolB(b, w, func() {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMul(a, c)
				}
			})
		})
	}
}

// BenchmarkMatMulTransA benchmarks the weight-gradient product Aᵀ·B.
func BenchmarkMatMulTransA(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := New(256, 256).RandNormal(rng, 0, 1)
	c := New(256, 256).RandNormal(rng, 0, 1)
	for _, w := range benchWorkers() {
		name := "serial"
		if w > 1 {
			name = fmt.Sprintf("workers-%d", w)
		}
		b.Run(name, func(b *testing.B) {
			withPoolB(b, w, func() {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMulTransA(a, c)
				}
			})
		})
	}
}

// BenchmarkConv2D benchmarks the im2col+matmul convolution on the VGG-ish
// bench shape across pool sizes.
func BenchmarkConv2D(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := New(16, 28, 28).RandNormal(rng, 0, 1)
	k := New(32, 16, 3, 3).RandNormal(rng, 0, 1)
	bias := New(32).RandNormal(rng, 0, 1)
	for _, w := range benchWorkers() {
		name := "serial"
		if w > 1 {
			name = fmt.Sprintf("workers-%d", w)
		}
		b.Run(name, func(b *testing.B) {
			withPoolB(b, w, func() {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					Conv2D(x, k, bias, 1, 1)
				}
			})
		})
	}
}

// TestMatMulParallelSpeedup asserts the headline acceptance number — the
// 4-worker MatMul at least doubles serial throughput on the bench shape —
// whenever the host has the cores to show it. Wall-clock assertions are
// meaningless on narrower machines (this repo's CI bench job runs on ≥4
// vCPUs), so the test skips rather than lies there, and the bit-identical
// determinism tests carry the correctness half unconditionally.
func TestMatMulParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 CPUs to demonstrate 4-worker scaling, have %d", runtime.GOMAXPROCS(0))
	}
	rng := rand.New(rand.NewSource(4))
	a := New(384, 384).RandNormal(rng, 0, 1)
	c := New(384, 384).RandNormal(rng, 0, 1)

	measure := func(workers int) time.Duration {
		old := parallel.Workers()
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		MatMul(a, c) // warm up
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			for i := 0; i < 4; i++ {
				MatMul(a, c)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	serial := measure(1)
	par := measure(4)
	speedup := float64(serial) / float64(par)
	t.Logf("MatMul 384³: serial %v, 4 workers %v (%.2fx)", serial, par, speedup)
	if speedup < 2 {
		t.Errorf("4-worker MatMul speedup %.2fx < 2x (serial %v, parallel %v)", speedup, serial, par)
	}
}
