package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvOutDim(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{32, 3, 1, 0, 30},
		{32, 3, 1, 1, 32},
		{28, 5, 1, 0, 24},
		{224, 11, 4, 0, 54},
		{224, 3, 1, 1, 224},
		{2, 2, 2, 0, 1},
	}
	for _, c := range cases {
		if got := ConvOutDim(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutDim(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestPad2DAndCrop2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := New(3, 5, 4).RandNormal(rng, 0, 1)
	p := Pad2D(x, 2)
	if p.Dim(1) != 9 || p.Dim(2) != 8 {
		t.Fatalf("Pad2D shape = %v", p.Shape())
	}
	if p.At(0, 0, 0) != 0 || p.At(2, 8, 7) != 0 {
		t.Fatal("padding region must be zero")
	}
	if !Equal(Crop2D(p, 2), x, 0) {
		t.Fatal("Crop2D(Pad2D(x)) != x")
	}
}

func TestPad2DZeroIsCopy(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	p := Pad2D(x, 0)
	p.Set(99, 0, 0, 0)
	if x.At(0, 0, 0) != 1 {
		t.Fatal("Pad2D(0) must not alias input")
	}
}

func TestRot180(t *testing.T) {
	k := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	r := Rot180(k)
	want := FromSlice([]float64{
		9, 8, 7,
		6, 5, 4,
		3, 2, 1,
	}, 1, 1, 3, 3)
	if !Equal(r, want, 0) {
		t.Fatalf("Rot180 = %v", r.Data())
	}
	if !Equal(Rot180(r), k, 0) {
		t.Fatal("Rot180 must be an involution")
	}
}

func TestIm2ColSingleWindow(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	cols := Im2Col(x, 2, 2, 1, 0)
	if cols.Dim(0) != 4 || cols.Dim(1) != 1 {
		t.Fatalf("Im2Col shape = %v", cols.Shape())
	}
	want := []float64{1, 2, 3, 4}
	for i, v := range want {
		if cols.At(i, 0) != v {
			t.Fatalf("col[%d] = %g, want %g", i, cols.At(i, 0), v)
		}
	}
}

func TestIm2ColPaperExampleDims(t *testing.T) {
	// The paper's Figure 4: layer l is 14×14×128 with 2×2 kernels producing
	// 13×13 windows; each input vector ("yellow bar") has 2*2*128 = 512
	// entries and there are 169 windows per output row-scan... the paper
	// quotes 52? Use exact arithmetic: windows = 13*13 = 169.
	x := New(128, 14, 14)
	cols := Im2Col(x, 2, 2, 1, 0)
	if cols.Dim(0) != 512 {
		t.Fatalf("input vector length = %d, want 512", cols.Dim(0))
	}
	if cols.Dim(1) != 169 {
		t.Fatalf("window count = %d, want 169", cols.Dim(1))
	}
}

func TestConv2DMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		c := 1 + rng.Intn(4)
		h := 4 + rng.Intn(6)
		w := 4 + rng.Intn(6)
		oc := 1 + rng.Intn(4)
		k := 1 + rng.Intn(3)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		if ConvOutDim(h, k, stride, pad) <= 0 || ConvOutDim(w, k, stride, pad) <= 0 {
			continue
		}
		x := New(c, h, w).RandNormal(rng, 0, 1)
		kern := New(oc, c, k, k).RandNormal(rng, 0, 1)
		bias := New(oc).RandNormal(rng, 0, 1)
		a := Conv2D(x, kern, bias, stride, pad)
		b := Conv2DDirect(x, kern, bias, stride, pad)
		if !Equal(a, b, 1e-9) {
			t.Fatalf("trial %d: im2col conv != direct conv (c=%d h=%d w=%d oc=%d k=%d s=%d p=%d)",
				trial, c, h, w, oc, k, stride, pad)
		}
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 1-channel 3x3 input, single 2x2 kernel of ones => each output is the
	// window sum.
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	k := FromSlice([]float64{1, 1, 1, 1}, 1, 1, 2, 2)
	y := Conv2D(x, k, nil, 1, 0)
	want := FromSlice([]float64{12, 16, 24, 28}, 1, 2, 2)
	if !Equal(y, want, 1e-12) {
		t.Fatalf("Conv2D = %v, want %v", y.Data(), want.Data())
	}
}

func TestConv2DBias(t *testing.T) {
	x := New(1, 2, 2)
	k := New(2, 1, 1, 1)
	bias := FromSlice([]float64{1.5, -2}, 2)
	y := Conv2D(x, k, bias, 1, 0)
	if y.At(0, 0, 0) != 1.5 || y.At(1, 1, 1) != -2 {
		t.Fatalf("bias not applied: %v", y.Data())
	}
}

func TestConv2DChannelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Conv2D(New(3, 4, 4), New(2, 2, 3, 3), nil, 1, 0)
}

// Property: Col2Im is the adjoint of Im2Col:
// <Im2Col(x), y> == <x, Col2Im(y)> for all x, y.
func TestPropertyIm2ColAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(3)
		h := 3 + rng.Intn(4)
		w := 3 + rng.Intn(4)
		k := 1 + rng.Intn(3)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		if ConvOutDim(h, k, stride, pad) <= 0 || ConvOutDim(w, k, stride, pad) <= 0 {
			return true
		}
		x := New(c, h, w).RandNormal(rng, 0, 1)
		cols := Im2Col(x, k, k, stride, pad)
		y := New(cols.Dim(0), cols.Dim(1)).RandNormal(rng, 0, 1)
		lhs := Dot(cols, y)
		rhs := Dot(x, Col2Im(y, c, h, w, k, k, stride, pad))
		return absf(lhs-rhs) < 1e-8*(1+absf(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: convolution is linear in the input.
func TestPropertyConvLinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x1 := New(2, 5, 5).RandNormal(rng, 0, 1)
		x2 := New(2, 5, 5).RandNormal(rng, 0, 1)
		k := New(3, 2, 3, 3).RandNormal(rng, 0, 1)
		lhs := Conv2D(Add(x1, x2), k, nil, 1, 1)
		rhs := Add(Conv2D(x1, k, nil, 1, 1), Conv2D(x2, k, nil, 1, 1))
		return Equal(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
