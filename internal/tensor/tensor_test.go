package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if got := x.Size(); got != 24 {
		t.Fatalf("Size = %d, want 24", got)
	}
	if x.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", x.Rank())
	}
	sh := x.Shape()
	sh[0] = 99 // must not alias internal state
	if x.Dim(0) != 2 {
		t.Fatal("Shape() leaked internal slice")
	}
}

func TestScalarTensor(t *testing.T) {
	s := New()
	if s.Size() != 1 || s.Rank() != 0 {
		t.Fatalf("scalar tensor: size=%d rank=%d", s.Size(), s.Rank())
	}
	s.Set(3.5)
	if s.At() != 3.5 {
		t.Fatalf("scalar At = %g", s.At())
	}
}

func TestAtSetRowMajor(t *testing.T) {
	x := New(2, 3)
	x.Set(1, 0, 0)
	x.Set(2, 0, 2)
	x.Set(3, 1, 1)
	want := []float64{1, 0, 2, 0, 3, 0}
	for i, v := range want {
		if x.Data()[i] != v {
			t.Fatalf("data[%d] = %g, want %g", i, x.Data()[i], v)
		}
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Fatal("Reshape must share backing data")
	}
	if y.At(2, 1) != 6 {
		t.Fatalf("reshaped layout wrong: %g", y.At(2, 1))
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Set(9, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Add(a, b).Data(); got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Hadamard(a, b).Data(); got[1] != 10 {
		t.Fatalf("Hadamard = %v", got)
	}
	c := a.Clone().ScaleInPlace(2)
	if c.At(2) != 6 {
		t.Fatalf("Scale = %v", c.Data())
	}
	d := a.Clone().AxpyInPlace(10, b)
	if d.At(0) != 41 {
		t.Fatalf("Axpy = %v", d.Data())
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{3, -7, 5, 1}, 4)
	if x.Sum() != 2 {
		t.Fatalf("Sum = %g", x.Sum())
	}
	if x.Mean() != 0.5 {
		t.Fatalf("Mean = %g", x.Mean())
	}
	if v, i := x.Max(); v != 5 || i != 2 {
		t.Fatalf("Max = %g@%d", v, i)
	}
	if v, i := x.Min(); v != -7 || i != 1 {
		t.Fatalf("Min = %g@%d", v, i)
	}
	if x.AbsMax() != 7 {
		t.Fatalf("AbsMax = %g", x.AbsMax())
	}
	want := math.Sqrt(9 + 49 + 25 + 1)
	if math.Abs(x.Norm2()-want) > 1e-12 {
		t.Fatalf("Norm2 = %g, want %g", x.Norm2(), want)
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %g", got)
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1, 2.0000001}, 2)
	if !Equal(a, b, 1e-3) {
		t.Fatal("Equal with tolerance should hold")
	}
	if Equal(a, b, 1e-9) {
		t.Fatal("Equal with tight tolerance should fail")
	}
	c := FromSlice([]float64{1, 2}, 1, 2)
	if Equal(a, c, 1) {
		t.Fatal("Equal must compare shapes")
	}
}

func TestApplyAndMap(t *testing.T) {
	x := FromSlice([]float64{-1, 2}, 2)
	y := x.Map(math.Abs)
	if x.At(0) != -1 {
		t.Fatal("Map must not mutate receiver")
	}
	if y.At(0) != 1 {
		t.Fatalf("Map result = %v", y.Data())
	}
	x.Apply(func(v float64) float64 { return v * v })
	if x.At(0) != 1 || x.At(1) != 4 {
		t.Fatalf("Apply result = %v", x.Data())
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if s := small.String(); s == "" {
		t.Fatal("empty String")
	}
	large := New(100)
	if s := large.String(); s == "" {
		t.Fatal("empty String for large tensor")
	}
}

// Property: Sum is linear — Sum(a+b) == Sum(a)+Sum(b).
func TestPropertySumLinear(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		a := FromSlice(append([]float64(nil), vals...), len(vals))
		b := a.Map(func(v float64) float64 { return 2 * v })
		lhs := Add(a, b).Sum()
		rhs := a.Sum() + b.Sum()
		return math.Abs(lhs-rhs) <= 1e-6*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Hadamard with all-ones is identity.
func TestPropertyHadamardIdentity(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		a := FromSlice(append([]float64(nil), vals...), len(vals))
		ones := New(len(vals))
		ones.Fill(1)
		return Equal(Hadamard(a, ones), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a := New(16).RandNormal(rand.New(rand.NewSource(7)), 0, 1)
	b := New(16).RandNormal(rand.New(rand.NewSource(7)), 0, 1)
	if !Equal(a, b, 0) {
		t.Fatal("same seed must give identical tensors")
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := New(1000).XavierInit(rng, 100, 50)
	limit := math.Sqrt(6.0 / 150.0)
	for _, v := range x.Data() {
		if v < -limit || v > limit {
			t.Fatalf("Xavier sample %g outside ±%g", v, limit)
		}
	}
	if x.AbsMax() < limit/2 {
		t.Fatal("Xavier samples suspiciously small; distribution looks wrong")
	}
}

func TestXavierInitBadFanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4).XavierInit(rand.New(rand.NewSource(1)), 0, 5)
}
