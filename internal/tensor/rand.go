package tensor

import (
	"math"
	"math/rand"
)

// Random initialization helpers. All randomness in the repository flows
// through explicitly seeded *rand.Rand values so that every experiment is
// reproducible bit-for-bit.

// RandUniform fills t with samples from U(lo, hi) and returns t.
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) *Tensor {
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*rng.Float64()
	}
	return t
}

// RandNormal fills t with samples from N(mean, std²) and returns t.
func (t *Tensor) RandNormal(rng *rand.Rand, mean, std float64) *Tensor {
	for i := range t.data {
		t.data[i] = mean + std*rng.NormFloat64()
	}
	return t
}

// XavierInit fills t with the Glorot/Xavier uniform distribution for the
// given fan-in and fan-out, the standard initialization for the nets in the
// paper's accuracy study, and returns t.
func (t *Tensor) XavierInit(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	if fanIn <= 0 || fanOut <= 0 {
		panic("tensor: XavierInit requires positive fan-in/fan-out")
	}
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return t.RandUniform(rng, -limit, limit)
}
