package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !Equal(c, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", c, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(5, 5).RandNormal(rng, 0, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(1, i, i)
	}
	if !Equal(MatMul(a, id), a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !Equal(MatMul(id, a), a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, 0, -1}, 3)
	y := MatVec(a, x)
	if y.At(0) != -2 || y.At(1) != -2 {
		t.Fatalf("MatVec = %v", y.Data())
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := New(3, 7).RandNormal(rng, 0, 1)
	if !Equal(Transpose(Transpose(a)), a, 0) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestMatMulTransAMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := New(4, 3).RandNormal(rng, 0, 1)
	b := New(4, 5).RandNormal(rng, 0, 1)
	got := MatMulTransA(a, b)
	want := MatMul(Transpose(a), b)
	if !Equal(got, want, 1e-10) {
		t.Fatal("MatMulTransA mismatch vs explicit transpose")
	}
}

func TestMatMulTransBMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := New(4, 3).RandNormal(rng, 0, 1)
	b := New(5, 3).RandNormal(rng, 0, 1)
	got := MatMulTransB(a, b)
	want := MatMul(a, Transpose(b))
	if !Equal(got, want, 1e-10) {
		t.Fatal("MatMulTransB mismatch vs explicit transpose")
	}
}

func TestOuter(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := FromSlice([]float64{3, 4, 5}, 3)
	c := Outer(x, y)
	want := FromSlice([]float64{3, 4, 5, 6, 8, 10}, 2, 3)
	if !Equal(c, want, 0) {
		t.Fatalf("Outer = %v", c)
	}
}

// Property: matmul distributes over addition, A(B+C) == AB + AC.
func TestPropertyMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := New(m, k).RandNormal(rng, 0, 1)
		b := New(k, n).RandNormal(rng, 0, 1)
		c := New(k, n).RandNormal(rng, 0, 1)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		return Equal(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ == BᵀAᵀ.
func TestPropertyMatMulTransposeRule(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := New(m, k).RandNormal(rng, 0, 1)
		b := New(k, n).RandNormal(rng, 0, 1)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return Equal(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatVec agrees with MatMul against a column matrix.
func TestPropertyMatVecConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k := 1+rng.Intn(8), 1+rng.Intn(8)
		a := New(m, k).RandNormal(rng, 0, 1)
		x := New(k).RandNormal(rng, 0, 1)
		y := MatVec(a, x)
		y2 := MatMul(a, x.Reshape(k, 1)).Reshape(m)
		return Equal(y, y2, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOuterIsGradientShape(t *testing.T) {
	// ∂J/∂W for y = W d with J = δᵀy has dW[i][j] = δ[i]*d[j]; Outer(δ, d)
	// must match a finite-difference probe on one coordinate.
	d := FromSlice([]float64{0.5, -1.5, 2}, 3)
	delta := FromSlice([]float64{1, -2}, 2)
	g := Outer(delta, d)
	if math.Abs(g.At(1, 2)-(-2*2)) > 1e-12 {
		t.Fatalf("Outer gradient wrong: %g", g.At(1, 2))
	}
}
