package tensor

import (
	"math/rand"
	"runtime"
	"testing"

	"pipelayer/internal/parallel"
)

// withWorkers runs f with the process-wide pool set to n workers, restoring
// the previous size afterwards.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	old := parallel.Workers()
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(old)
	f()
}

// bitIdentical reports whether two tensors agree in shape and exact bits.
func bitIdentical(a, b *Tensor) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for i := 0; i < a.Rank(); i++ {
		if a.Dim(i) != b.Dim(i) {
			return false
		}
	}
	for i, v := range a.Data() {
		if v != b.Data()[i] {
			return false
		}
	}
	return true
}

// workerSweep is the property-test sweep of the issue: serial, two, an odd
// count that never divides the shapes evenly, and the machine's own width.
func workerSweep() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// TestParallelDeterminismMatMulFamily asserts that every matmul-family
// primitive is bit-identical to its serial result across worker counts and
// odd (non-chunk-aligned) shapes.
func TestParallelDeterminismMatMulFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{{1, 1, 1}, {3, 5, 7}, {17, 31, 13}, {64, 64, 64}, {129, 67, 251}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := New(m, k).RandNormal(rng, 0, 1)
		b := New(k, n).RandNormal(rng, 0, 1)
		at := New(k, m).RandNormal(rng, 0, 1)
		bt := New(n, k).RandNormal(rng, 0, 1)
		x := New(k).RandNormal(rng, 0, 1)
		// Inject exact zeros so the sparse skip paths are exercised.
		a.Data()[0], b.Data()[len(b.Data())-1] = 0, 0

		var refMM, refTA, refTB, refMV, refOut, refTr *Tensor
		withWorkers(t, 1, func() {
			refMM = MatMul(a, b)
			refTA = MatMulTransA(at, b)
			refTB = MatMulTransB(a, bt)
			refMV = MatVec(a, x)
			refOut = Outer(x, New(n).RandNormal(rand.New(rand.NewSource(7)), 0, 1))
			refTr = Transpose(a)
		})
		for _, w := range workerSweep() {
			withWorkers(t, w, func() {
				if got := MatMul(a, b); !bitIdentical(got, refMM) {
					t.Errorf("MatMul (%d×%d)·(%d×%d) differs at %d workers", m, k, k, n, w)
				}
				if got := MatMulTransA(at, b); !bitIdentical(got, refTA) {
					t.Errorf("MatMulTransA differs at %d workers (shape %v)", w, s)
				}
				if got := MatMulTransB(a, bt); !bitIdentical(got, refTB) {
					t.Errorf("MatMulTransB differs at %d workers (shape %v)", w, s)
				}
				if got := MatVec(a, x); !bitIdentical(got, refMV) {
					t.Errorf("MatVec differs at %d workers (shape %v)", w, s)
				}
				if got := Outer(x, New(n).RandNormal(rand.New(rand.NewSource(7)), 0, 1)); !bitIdentical(got, refOut) {
					t.Errorf("Outer differs at %d workers (shape %v)", w, s)
				}
				if got := Transpose(a); !bitIdentical(got, refTr) {
					t.Errorf("Transpose differs at %d workers (shape %v)", w, s)
				}
			})
		}
	}
}

// TestParallelDeterminismConv asserts Conv2D, Im2Col and Col2Im are
// bit-identical to serial across worker counts on odd geometries.
func TestParallelDeterminismConv(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cases := []struct{ c, h, w, oc, k, stride, pad int }{
		{1, 5, 5, 1, 3, 1, 0},
		{3, 13, 11, 5, 3, 1, 1},
		{7, 17, 17, 3, 5, 2, 2},
		{16, 28, 28, 32, 3, 1, 1},
	}
	for _, cs := range cases {
		x := New(cs.c, cs.h, cs.w).RandNormal(rng, 0, 1)
		kern := New(cs.oc, cs.c, cs.k, cs.k).RandNormal(rng, 0, 1)
		bias := New(cs.oc).RandNormal(rng, 0, 1)
		oh := ConvOutDim(cs.h, cs.k, cs.stride, cs.pad)
		ow := ConvOutDim(cs.w, cs.k, cs.stride, cs.pad)
		cols := New(cs.c*cs.k*cs.k, oh*ow).RandNormal(rng, 0, 1)

		var refConv, refIm, refCol *Tensor
		withWorkers(t, 1, func() {
			refConv = Conv2D(x, kern, bias, cs.stride, cs.pad)
			refIm = Im2Col(x, cs.k, cs.k, cs.stride, cs.pad)
			refCol = Col2Im(cols, cs.c, cs.h, cs.w, cs.k, cs.k, cs.stride, cs.pad)
		})
		for _, w := range workerSweep() {
			withWorkers(t, w, func() {
				if got := Conv2D(x, kern, bias, cs.stride, cs.pad); !bitIdentical(got, refConv) {
					t.Errorf("Conv2D differs at %d workers (case %+v)", w, cs)
				}
				if got := Im2Col(x, cs.k, cs.k, cs.stride, cs.pad); !bitIdentical(got, refIm) {
					t.Errorf("Im2Col differs at %d workers (case %+v)", w, cs)
				}
				if got := Col2Im(cols, cs.c, cs.h, cs.w, cs.k, cs.k, cs.stride, cs.pad); !bitIdentical(got, refCol) {
					t.Errorf("Col2Im differs at %d workers (case %+v)", w, cs)
				}
			})
		}
	}
}

// TestMatMulShapePanics asserts that the matmul family rejects mismatched
// shapes with messages that name the offending dims, rather than letting an
// index-out-of-range escape from the inner loops.
func TestMatMulShapePanics(t *testing.T) {
	mustPanic := func(name, wantSub string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: expected panic", name)
				return
			}
			msg, ok := r.(string)
			if !ok {
				t.Errorf("%s: panic value %v (%T) is not a descriptive message", name, r, r)
				return
			}
			if !containsAll(msg, "tensor:", wantSub) {
				t.Errorf("%s: panic %q does not name the offending dims (want substring %q)", name, msg, wantSub)
			}
		}()
		f()
	}
	a23 := New(2, 3)
	b45 := New(4, 5)
	v4 := New(4)
	r3 := New(3)
	mustPanic("MatMul inner dims", "3 == 4", func() { MatMul(a23, b45) })
	mustPanic("MatMul rank", "[4]", func() { MatMul(a23, v4) })
	mustPanic("MatMulTransA rank", "[4]", func() { MatMulTransA(v4, b45) })
	mustPanic("MatMulTransA inner dims", "2 == 4", func() { MatMulTransA(a23, b45) })
	mustPanic("MatMulTransB rank", "[4]", func() { MatMulTransB(a23, v4) })
	mustPanic("MatMulTransB inner dims", "3 == 5", func() { MatMulTransB(a23, b45) })
	mustPanic("MatVec dims", "3 cols, vector 4", func() { MatVec(a23, v4) })
	mustPanic("Outer rank", "[2 3]", func() { Outer(a23, v4) })
	mustPanic("Transpose rank", "[4]", func() { Transpose(v4) })
	mustPanic("Conv2DDirect rank", "[2 3]", func() { Conv2DDirect(a23, New(1, 1, 2, 2), nil, 1, 0) })
	mustPanic("Conv2DDirect channels", "2 channels", func() {
		Conv2DDirect(New(2, 5, 5), New(1, 3, 2, 2), nil, 1, 0)
	})
	mustPanic("Conv2DDirect bias", "bias size 2", func() {
		Conv2DDirect(New(1, 5, 5), New(3, 1, 2, 2), New(2), 1, 0)
	})
	_ = r3
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
