// Package gpu is the analytic baseline model standing in for the paper's
// measured GPU platform (Table 4: GTX 1080 + Caffe). The real testbed is not
// available in this environment, so per-layer execution is modeled with a
// roofline: time = max(compute, memory) with per-layer-kind utilization
// factors plus a fixed per-kernel launch overhead, and energy = time × board
// power. The constants are calibrated once, here, and shared by every
// experiment; DESIGN.md documents the substitution.
package gpu

import (
	"pipelayer/internal/mapping"
	"pipelayer/internal/networks"
	"pipelayer/internal/workload"
)

// Platform holds the baseline hardware/software parameters (Table 4).
type Platform struct {
	// PeakFLOPS is the peak single-precision throughput (GTX 1080:
	// 2560 CUDA cores × 1607 MHz × 2 ≈ 8.87 TFLOP/s).
	PeakFLOPS float64
	// MemBandwidth is bytes/second (GDDR5X: 320 GB/s).
	MemBandwidth float64
	// Power is the sustained board power in watts under Caffe load.
	Power float64
	// ConvUtil / FCUtil / PoolUtil are the achieved fractions of peak for
	// each layer kind under cuDNN-era Caffe kernels.
	ConvUtil, FCUtil, PoolUtil float64
	// LaunchOverhead is the fixed per-kernel host latency in seconds.
	LaunchOverhead float64
	// HostPerBatch is the fixed per-iteration framework overhead in seconds
	// (Caffe data layer, solver bookkeeping, host–device synchronization) —
	// the component that dominates the tiny MNIST networks and gives them
	// the paper's largest speedups.
	HostPerBatch float64
}

// Default returns the GTX 1080 parameters used throughout the evaluation.
func Default() Platform {
	return Platform{
		PeakFLOPS:      8.87e12,
		MemBandwidth:   320e9,
		Power:          180,
		ConvUtil:       0.55,
		FCUtil:         0.25,
		PoolUtil:       0.10,
		LaunchOverhead: 8e-6,
		HostPerBatch:   1.5e-3,
	}
}

// layerForwardTime models one layer's forward pass for one image within a
// batch of b (weights amortize over the batch; activations do not).
func (p Platform) layerForwardTime(l mapping.Layer, b int) float64 {
	ops := workload.ForwardOps(l)
	var util float64
	switch l.Kind {
	case mapping.KindConv:
		util = p.ConvUtil
	case mapping.KindFC:
		util = p.FCUtil
	default:
		util = p.PoolUtil
	}
	compute := float64(ops.Total()) / (p.PeakFLOPS * util)
	weightBytes := float64(l.Weights()) * 4 / float64(b)
	actBytes := activationBytes(l)
	memory := (weightBytes + actBytes) / p.MemBandwidth
	t := compute
	if memory > t {
		t = memory
	}
	return t + p.LaunchOverhead/float64(b)
}

func activationBytes(l mapping.Layer) float64 {
	var vals float64
	switch l.Kind {
	case mapping.KindConv, mapping.KindPool:
		vals = float64(l.OutC) * float64(l.OutH()) * float64(l.OutW())
	case mapping.KindFC:
		vals = float64(l.FCOut)
	}
	return 2 * vals * 4 // write + read at float32
}

// TestingTime returns the wall-clock seconds to infer n images with the
// given batch size.
func (p Platform) TestingTime(s networks.Spec, n, batch int) float64 {
	per := p.HostPerBatch / float64(batch)
	for _, l := range s.Layers {
		per += p.layerForwardTime(l, batch)
	}
	return per * float64(n)
}

// TrainingTime returns the wall-clock seconds to train on n images with
// batch size b: forward + backward (2× forward volume for weighted layers)
// + the per-batch weight update traffic (read grad, read weight, write
// weight at float32).
func (p Platform) TrainingTime(s networks.Spec, n, b int) float64 {
	per := 0.0
	for _, l := range s.Layers {
		f := p.layerForwardTime(l, b)
		per += f
		if l.UsesArrays() {
			per += 2 * f // error backward + gradient computation
		} else {
			per += f // routing pass
		}
	}
	update := 3 * float64(s.TotalWeights()) * 4 / p.MemBandwidth / float64(b)
	host := 2 * p.HostPerBatch / float64(b) // solver iterations cost roughly 2× a test pass
	return (per + update + host) * float64(n)
}

// TestingEnergy returns joules for inferring n images.
func (p Platform) TestingEnergy(s networks.Spec, n, batch int) float64 {
	return p.TestingTime(s, n, batch) * p.Power
}

// TrainingEnergy returns joules for training on n images.
func (p Platform) TrainingEnergy(s networks.Spec, n, b int) float64 {
	return p.TrainingTime(s, n, b) * p.Power
}
