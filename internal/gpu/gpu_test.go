package gpu

import (
	"math"
	"testing"

	"pipelayer/internal/networks"
)

func TestTrainingSlowerThanTesting(t *testing.T) {
	p := Default()
	for _, s := range networks.EvaluationNetworks() {
		te := p.TestingTime(s, 100, 64)
		tr := p.TrainingTime(s, 100, 64)
		if tr <= te {
			t.Errorf("%s: training %g not > testing %g", s.Name, tr, te)
		}
		if tr > 10*te {
			t.Errorf("%s: training %g implausibly slower than testing %g", s.Name, tr, te)
		}
	}
}

func TestDeeperNetworksAreSlower(t *testing.T) {
	p := Default()
	prev := 0.0
	for _, v := range networks.VGGVariants {
		tt := p.TestingTime(networks.VGG(v), 100, 64)
		if tt < prev {
			t.Fatalf("VGG-%s faster than shallower variant", v)
		}
		prev = tt
	}
}

func TestTimesLinearInN(t *testing.T) {
	p := Default()
	s := networks.AlexNet()
	t1 := p.TestingTime(s, 100, 64)
	t2 := p.TestingTime(s, 200, 64)
	if math.Abs(t2/t1-2) > 1e-9 {
		t.Fatal("testing time must be linear in N")
	}
}

func TestBatchAmortizesOverheads(t *testing.T) {
	p := Default()
	s := networks.MnistA()
	small := p.TestingTime(s, 100, 1)
	large := p.TestingTime(s, 100, 64)
	if large >= small {
		t.Fatal("larger batches must amortize host overheads")
	}
}

func TestVGG16InferencePlausible(t *testing.T) {
	// GTX 1080 Caffe-era VGG-16 inference is a handful of ms per image.
	p := Default()
	per := p.TestingTime(networks.VGG("D"), 1, 64)
	if per < 1e-3 || per > 50e-3 {
		t.Fatalf("VGG-D inference = %g s/image, want O(ms)", per)
	}
}

func TestMnistInferenceDominatedByHost(t *testing.T) {
	// MNIST MLPs are tiny: per-image time must be within 2× of the pure
	// host overhead share, which is what PipeLayer's speedup exploits.
	p := Default()
	per := p.TestingTime(networks.MnistA(), 1, 64)
	host := p.HostPerBatch / 64
	if per < host || per > 3*host {
		t.Fatalf("Mnist-A per-image %g not host-dominated (host share %g)", per, host)
	}
}

func TestEnergyIsTimeTimesPower(t *testing.T) {
	p := Default()
	s := networks.MnistB()
	if math.Abs(p.TestingEnergy(s, 10, 64)-p.TestingTime(s, 10, 64)*p.Power) > 1e-12 {
		t.Fatal("testing energy must equal time × power")
	}
	if math.Abs(p.TrainingEnergy(s, 10, 64)-p.TrainingTime(s, 10, 64)*p.Power) > 1e-12 {
		t.Fatal("training energy must equal time × power")
	}
}

func TestAlexNetTrainingThroughputPlausible(t *testing.T) {
	// GTX 1080 Caffe AlexNet training runs on the order of 400–1500 img/s.
	p := Default()
	per := p.TrainingTime(networks.AlexNet(), 1, 64)
	throughput := 1 / per
	if throughput < 100 || throughput > 5000 {
		t.Fatalf("AlexNet training throughput = %g img/s, implausible", throughput)
	}
}
