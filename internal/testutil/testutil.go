// Package testutil holds the tiny network specs and synthetic datasets that
// the core, arch, and serve test suites share. Every builder is deterministic
// — a given (shape, seed) pair always produces the same spec or samples — so
// tests in different packages can assert bit-identical results against the
// same fixtures without copy-pasting the definitions.
package testutil

import (
	"pipelayer/internal/dataset"
	"pipelayer/internal/mapping"
	"pipelayer/internal/networks"
	"pipelayer/internal/nn"
)

// TinyMLP is the two-layer 784-48-10 perceptron used by the determinism,
// fault, and serving suites: big enough to exercise the quantized readout on
// a full 28×28 input, small enough to train in milliseconds.
func TinyMLP(name string) networks.Spec {
	return networks.Spec{
		Name: name, InC: 1, InH: 28, InW: 28, Classes: 10,
		Layers: []mapping.Layer{
			mapping.FC("fc1", 784, 48),
			mapping.FC("fc2", 48, 10),
		},
	}
}

// TinyDeepMLP is the three-layer 784-64-32-10 perceptron used where a test
// needs more than two pipeline stages (e.g. the Figure 6 ring-depth checks).
func TinyDeepMLP(name string) networks.Spec {
	return networks.Spec{
		Name: name, InC: 1, InH: 28, InW: 28, Classes: 10,
		Layers: []mapping.Layer{
			mapping.FC("fc1", 784, 64),
			mapping.FC("fc2", 64, 32),
			mapping.FC("fc3", 32, 10),
		},
	}
}

// TinyDeepCNN is the conv-pool-conv-pool-fc stack used to cover the conv and
// pool engines end to end at 28×28 scale.
func TinyDeepCNN(name string) networks.Spec {
	return networks.Spec{
		Name: name, InC: 1, InH: 28, InW: 28, Classes: 10,
		Layers: []mapping.Layer{
			mapping.Conv("conv1", 1, 28, 28, 4, 3, 1, 1),
			mapping.Pool("pool1", 4, 28, 28, 2),
			mapping.Conv("conv2", 4, 14, 14, 8, 3, 1, 1),
			mapping.Pool("pool2", 8, 14, 14, 2),
			mapping.FC("fc", 8*7*7, 10),
		},
	}
}

// FlatSamples generates n synthetic digit samples with flattened 784-element
// inputs — the form the MLP specs consume.
func FlatSamples(n int, seed int64) []nn.Sample {
	return dataset.Generate(n, dataset.DefaultOptions(true), seed)
}

// ImageSamples generates n synthetic digit samples with 1×28×28 image inputs
// — the form the CNN specs consume.
func ImageSamples(n int, seed int64) []nn.Sample {
	return dataset.Generate(n, dataset.DefaultOptions(false), seed)
}
