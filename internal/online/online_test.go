package online

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"pipelayer/internal/checkpoint"
	"pipelayer/internal/core"
	"pipelayer/internal/energy"
	"pipelayer/internal/networks"
	"pipelayer/internal/serve"
	"pipelayer/internal/telemetry"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

// testConfig is the shared baseline: a TinyMLP trained on the flat synthetic
// task, snapshotting every round so promotions happen quickly.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Spec:      testutil.TinyMLP("online-mlp"),
		Seed:      7,
		Dir:       t.TempDir(),
		Eval:      testutil.FlatSamples(32, 101),
		Batch:     8,
		LR:        0.05,
		Metrics:   telemetry.NewRegistry(),
		Tolerance: 1, // accuracy is in [0,1]: never a regression unless a hook injects one
	}
}

func newSupervisor(t *testing.T, cfg Config) *Supervisor {
	t.Helper()
	s, err := New(NewSyntheticFeed(true, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// refScores rebuilds version v from the checkpoint store and runs xs through
// a fresh replica — the bit-exact ground truth for that version's responses.
func refScores(t *testing.T, dir string, spec networks.Spec, v uint64, xs []*tensor.Tensor) []*tensor.Tensor {
	t.Helper()
	store, err := checkpoint.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	net := networks.BuildTrainable(spec, rand.New(rand.NewSource(0)))
	if _, err := store.Load(v, net); err != nil {
		t.Fatalf("load v%d: %v", v, err)
	}
	machine, err := core.NewFromSnapshot(energy.DefaultModel(), spec, 1, net)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := machine.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*tensor.Tensor, len(xs))
	for i, x := range xs {
		out[i] = rep.Infer(x)
	}
	return out
}

func sameScores(a, b *tensor.Tensor) bool {
	da, db := a.Data(), b.Data()
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

func evalInputs(t *testing.T, n int) []*tensor.Tensor {
	t.Helper()
	samples := testutil.FlatSamples(n, 55)
	xs := make([]*tensor.Tensor, n)
	for i, s := range samples {
		xs[i] = s.Input
	}
	return xs
}

// TestOnlineColdStartPromotes: from a cold start the supervisor saves v1,
// serves it, and each Step promotes the next version; responses carry the
// promoted version and bit-match the checkpointed weights of that version.
func TestOnlineColdStartPromotes(t *testing.T) {
	cfg := testConfig(t)
	s := newSupervisor(t, cfg)
	defer s.Close()

	if s.Resumed() {
		t.Fatal("cold start must not report resumed")
	}
	if got := s.Version(); got != 1 {
		t.Fatalf("cold start version = %d, want 1", got)
	}
	if got := s.Server().Version(); got != 1 {
		t.Fatalf("server version = %d, want 1", got)
	}

	xs := evalInputs(t, 4)
	for step := 0; step < 3; step++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Promotions(); got != 3 {
		t.Fatalf("promotions = %d, want 3", got)
	}
	if got := s.Version(); got != 4 {
		t.Fatalf("after 3 promotions version = %d, want 4", got)
	}
	if s.Health() != Healthy {
		t.Fatalf("health = %v, want Healthy", s.Health())
	}

	want := refScores(t, cfg.Dir, cfg.Spec, 4, xs)
	for i, x := range xs {
		res, err := s.Server().Predict(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		if res.Version != 4 {
			t.Fatalf("response version = %d, want 4", res.Version)
		}
		if !sameScores(res.Scores, want[i]) {
			t.Fatalf("input %d: served scores differ from checkpoint v4 weights", i)
		}
	}

	// The manifest must record every version, all promoted.
	store, err := checkpoint.OpenStore(cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	man := store.Manifest()
	if len(man.Entries) != 4 {
		t.Fatalf("manifest has %d entries, want 4", len(man.Entries))
	}
	for _, e := range man.Entries {
		if e.State != checkpoint.StatePromoted {
			t.Fatalf("v%d state = %q, want promoted", e.Version, e.State)
		}
	}
}

// TestOnlineRegressionRollsBack: an injected eval regression must leave
// serving on the old version, mark the candidate rolled_back, restore the
// trainer to the promoted weights bit-identically, and degrade health.
func TestOnlineRegressionRollsBack(t *testing.T) {
	cfg := testConfig(t)
	cfg.evalHook = func(v uint64, acc float64) float64 {
		if v == 3 {
			return -1 // guaranteed regression: below any baseline minus tolerance
		}
		return acc
	}
	s := newSupervisor(t, cfg)
	defer s.Close()

	xs := evalInputs(t, 4)
	if err := s.Step(); err != nil { // promotes v2
		t.Fatal(err)
	}
	if err := s.Step(); err != nil { // candidate v3 regresses → rollback
		t.Fatal(err)
	}
	if got := s.Version(); got != 2 {
		t.Fatalf("after rollback version = %d, want 2", got)
	}
	if got := s.Rollbacks(); got != 1 {
		t.Fatalf("rollbacks = %d, want 1", got)
	}
	if s.Health() != Lagging {
		t.Fatalf("health = %v, want Lagging", s.Health())
	}

	// Serving still answers with v2's exact weights.
	want := refScores(t, cfg.Dir, cfg.Spec, 2, xs)
	for i, x := range xs {
		res, err := s.Server().Predict(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		if res.Version != 2 || !sameScores(res.Scores, want[i]) {
			t.Fatalf("input %d: response not pinned to v2's weights (version %d)", i, res.Version)
		}
	}

	// The candidate is recorded rolled_back; the trainer was restored to v2
	// bit-identically, so its next export equals the v2 checkpoint.
	store, err := checkpoint.OpenStore(cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range store.Manifest().Entries {
		if e.Version == 3 && e.State != checkpoint.StateRolledBack {
			t.Fatalf("v3 state = %q, want rolled_back", e.State)
		}
	}
	restored := networks.BuildTrainable(cfg.Spec, rand.New(rand.NewSource(0)))
	if err := s.trainer.ExportWeights(restored); err != nil {
		t.Fatal(err)
	}
	promoted := networks.BuildTrainable(cfg.Spec, rand.New(rand.NewSource(0)))
	if _, err := store.Load(2, promoted); err != nil {
		t.Fatal(err)
	}
	rp, pp := restored.Params(), promoted.Params()
	for i := range rp {
		if rp[i] == nil {
			continue
		}
		for j := range rp[i].Value.Data() {
			if rp[i].Value.Data()[j] != pp[i].Value.Data()[j] {
				t.Fatalf("trainer weights differ from promoted checkpoint at param %d[%d]", i, j)
			}
		}
	}

	// Recovery: the next clean candidate promotes and health returns to Healthy.
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if got := s.Version(); got != 4 {
		t.Fatalf("after recovery version = %d, want 4", got)
	}
	if s.Health() != Healthy {
		t.Fatalf("health after recovery = %v, want Healthy", s.Health())
	}
}

// TestOnlinePinsAfterMaxRegressions: repeated regressions must pin the
// supervisor — promotion stops, serving stays on the last good version, and
// training rounds keep running without snapshotting.
func TestOnlinePinsAfterMaxRegressions(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxRegressions = 2
	cfg.evalHook = func(v uint64, acc float64) float64 {
		if v >= 3 {
			return -1
		}
		return acc
	}
	s := newSupervisor(t, cfg)
	defer s.Close()

	if err := s.Step(); err != nil { // promotes v2
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // two regressions → pinned
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Health() != Pinned {
		t.Fatalf("health = %v, want Pinned", s.Health())
	}
	snapsBefore := s.Snapshots()
	if err := s.Step(); err != nil { // pinned: trains but must not snapshot
		t.Fatal(err)
	}
	if got := s.Snapshots(); got != snapsBefore {
		t.Fatalf("pinned supervisor took a snapshot (%d -> %d)", snapsBefore, got)
	}
	if got := s.Version(); got != 2 {
		t.Fatalf("pinned version = %d, want 2", got)
	}
	if got := s.Rounds(); got != 4 {
		t.Fatalf("rounds = %d, want 4 (training continues while pinned)", got)
	}
}

// TestOnlineResumeAfterCrash: kill the supervisor, corrupt the newest
// checkpoint (a torn write), and reopen — the supervisor must resume from
// the newest version that validates, serving it bit-identically, and keep
// numbering past the torn file.
func TestOnlineResumeAfterCrash(t *testing.T) {
	cfg := testConfig(t)
	s := newSupervisor(t, cfg)
	for i := 0; i < 3; i++ { // versions 2, 3, 4
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the newest checkpoint: truncate v4 mid-file.
	store, err := checkpoint.OpenStore(cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	p4 := store.Path(4)
	info, err := os.Stat(p4)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(p4, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	xs := evalInputs(t, 4)
	want := refScores(t, cfg.Dir, cfg.Spec, 3, xs)

	s2 := newSupervisor(t, cfg)
	defer s2.Close()
	if !s2.Resumed() {
		t.Fatal("expected resumed supervisor")
	}
	if got := s2.Version(); got != 3 {
		t.Fatalf("resumed version = %d, want 3 (v4 is torn)", got)
	}
	for i, x := range xs {
		res, err := s2.Server().Predict(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		if res.Version != 3 || !sameScores(res.Scores, want[i]) {
			t.Fatalf("input %d: resumed serving not bit-identical to v3", i)
		}
	}

	// Numbering continues past the torn version: next promotion is v4 again
	// (overwriting the torn file with a valid one).
	if err := s2.Step(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Version(); got != 4 {
		t.Fatalf("post-resume promotion version = %d, want 4", got)
	}
}

// TestOnlineConfigValidation covers the required-field errors.
func TestOnlineConfigValidation(t *testing.T) {
	base := testConfig(t)
	if _, err := New(nil, base); err == nil {
		t.Fatal("nil feed must error")
	}
	noDir := base
	noDir.Dir = ""
	if _, err := New(NewSyntheticFeed(true, 1), noDir); err == nil {
		t.Fatal("missing Dir must error")
	}
	noEval := base
	noEval.Eval = nil
	if _, err := New(NewSyntheticFeed(true, 1), noEval); err == nil {
		t.Fatal("missing Eval must error")
	}
}

// TestOnlineRunLifecycle: Start/Close joins the loop cleanly, Run refuses a
// second caller, and no goroutines leak.
func TestOnlineRunLifecycle(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := testConfig(t)
	s := newSupervisor(t, cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("second Start must error")
	}
	deadline := time.Now().Add(30 * time.Second)
	for s.Promotions() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no promotion within deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("loop error: %v", err)
	}
	assertNoGoroutineLeaks(t, base)
}

// TestOnlinePruneKeepsPromoted: with KeepCheckpoints set, old versions are
// pruned but the promoted one always survives on disk.
func TestOnlinePruneKeepsPromoted(t *testing.T) {
	cfg := testConfig(t)
	cfg.KeepCheckpoints = 2
	s := newSupervisor(t, cfg)
	defer s.Close()
	for i := 0; i < 4; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	store, err := checkpoint.OpenStore(cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	man := store.Manifest()
	if len(man.Entries) > 2 {
		t.Fatalf("prune kept %d entries, want <= 2", len(man.Entries))
	}
	found := false
	for _, e := range man.Entries {
		if e.Version == s.Version() {
			found = true
			if _, err := os.Stat(filepath.Join(cfg.Dir, e.File)); err != nil {
				t.Fatalf("promoted checkpoint file missing: %v", err)
			}
		}
	}
	if !found {
		t.Fatal("promoted version pruned from manifest")
	}
}

func assertNoGoroutineLeaks(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestOnlineShardedSwapSurvives: the supervisor's hot rollover works
// unchanged when the serving layer runs the layer-sharded backend. Each
// promotion goes through serve.Swap, which in sharded mode rebuilds the
// shard chain from the candidate's weights and retires the old chain; every
// response afterwards reports the promoted version and bit-matches that
// version's checkpointed weights through the serial reference.
func TestOnlineShardedSwapSurvives(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := testConfig(t)
	cfg.Serve = serve.Config{Shards: 2, MaxBatch: 8, QueueCap: 64} // TinyMLP: fc1 | fc2
	s := newSupervisor(t, cfg)

	xs := evalInputs(t, 4)
	for step := 0; step < 2; step++ { // promotes v2, then v3
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Promotions(); got != 2 {
		t.Fatalf("promotions = %d, want 2", got)
	}
	srv := s.Server()
	version := srv.Version()
	if version != 3 {
		t.Fatalf("served version = %d, want 3", version)
	}
	refs := refScores(t, cfg.Dir, cfg.Spec, version, xs)
	for i, x := range xs {
		res, err := srv.Predict(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		if res.Version != version {
			t.Fatalf("response version = %d, want %d", res.Version, version)
		}
		if !sameScores(res.Scores, refs[i]) {
			t.Fatalf("response %d does not bit-match version %d's weights", i, version)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoGoroutineLeaks(t, base)
}
