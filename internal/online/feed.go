package online

import (
	"pipelayer/internal/dataset"
	"pipelayer/internal/nn"
)

// Feed is a streaming source of labelled training samples — the online
// supervisor pulls one round's worth at a time. Implementations need not be
// safe for concurrent use: only the training loop calls Next.
type Feed interface {
	// Next returns the next n samples from the stream.
	Next(n int) []nn.Sample
}

// SyntheticFeed streams the synthetic digit task deterministically: call i
// draws from seed+i, so the sequence of batches is reproducible for a given
// seed yet every round sees fresh data.
type SyntheticFeed struct {
	opts  dataset.Options
	seed  int64
	calls int64
}

// NewSyntheticFeed returns a deterministic synthetic stream; flat selects
// rank-1 784-element inputs (MLP) over 1×28×28 images (CNN).
func NewSyntheticFeed(flat bool, seed int64) *SyntheticFeed {
	return &SyntheticFeed{opts: dataset.DefaultOptions(flat), seed: seed}
}

// Next returns the stream's next n samples.
func (f *SyntheticFeed) Next(n int) []nn.Sample {
	f.calls++
	return dataset.Generate(n, f.opts, f.seed+f.calls)
}
