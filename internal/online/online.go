// Package online is the train-while-serve supervisor: the same logical
// machine learns from a streaming feed and serves predictions, realizing the
// paper's premise that one crossbar fabric both trains and serves — here as
// a trainer accelerator and a serving replica set that hot-swaps to each
// promoted weight version with zero dropped or torn requests.
//
// The lifecycle per candidate version is candidate → evaluated →
// promoted / rolled-back:
//
//   - the trainer consumes RoundImages samples per round; every
//     SnapshotEvery rounds the float masters are exported and persisted as a
//     candidate version via checkpoint v2 (CRC-trailed, atomically renamed);
//   - a fresh serving machine is rebuilt from the snapshot (never cloned
//     from the live trainer, whose arrays keep mutating) and scored on the
//     held-out eval set;
//   - if accuracy has not regressed more than Tolerance below the promoted
//     baseline, the serving replicas atomically swap to the candidate;
//     otherwise the candidate is rolled back and the trainer reloads the
//     last promoted weights.
//
// Robustness: crash-safe resume restores the newest checkpoint that passes
// its CRC (torn files are skipped); repeated regressions or a trainer fault
// degrade health Healthy→Lagging→Pinned while serving continues on the last
// good version; backpressure and drain semantics of the serving layer are
// untouched by swaps.
package online

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"math/rand"

	"pipelayer/internal/checkpoint"
	"pipelayer/internal/core"
	"pipelayer/internal/energy"
	"pipelayer/internal/fault"
	"pipelayer/internal/networks"
	"pipelayer/internal/nn"
	"pipelayer/internal/serve"
	"pipelayer/internal/telemetry"
	"pipelayer/internal/telemetry/flight"
)

// ErrTrainerFault reports that the background trainer hit a hard error; the
// supervisor pins serving to the last good version and stops training.
var ErrTrainerFault = errors.New("online: trainer faulted; serving pinned on last good version")

// Health is the supervisor's degradation state.
type Health int32

const (
	// Healthy: training and promotion proceed normally.
	Healthy Health = iota
	// Lagging: the last candidate regressed and was rolled back; serving
	// continues on the promoted version while training catches up.
	Lagging
	// Pinned: promotion is disabled (MaxRegressions consecutive rollbacks,
	// or a trainer fault); serving is frozen on the last good version.
	Pinned
)

// String returns the telemetry/reporting form.
func (h Health) String() string {
	switch h {
	case Lagging:
		return "lagging"
	case Pinned:
		return "pinned"
	default:
		return "healthy"
	}
}

// flightTrackOnline is the flight-recorder track the supervisor's round /
// eval / swap spans land on — clear of the request track (0), the replica
// tracks (1..N) and the training-stage tracks (100+).
const flightTrackOnline = 90

// Config tunes the supervisor. Spec, Dir, and Eval are required; every
// numeric zero value means its documented default.
type Config struct {
	// Spec is the served (and trained) network geometry.
	Spec networks.Spec
	// Model is the device model (zero value: energy.DefaultModel()).
	Model energy.Model
	// Lambda is the array-granularity scale (0 → 1).
	Lambda float64
	// Seed derives the cold-start weight initialization.
	Seed int64
	// Dir is the versioned checkpoint directory (checkpoint.Store).
	Dir string
	// Eval is the held-out eval set candidates are scored on.
	Eval []nn.Sample
	// Serve tunes the serving layer (replicas, batching, queue).
	Serve serve.Config

	// Batch is the training batch size (default 8).
	Batch int
	// RoundImages is how many samples one training round consumes (default
	// 4×Batch; rounded up to a multiple of Batch).
	RoundImages int
	// LR is the learning rate (default 0.05).
	LR float64
	// SnapshotEvery snapshots a candidate every N rounds (default 1).
	SnapshotEvery int
	// Tolerance is the allowed eval-accuracy drop below the promoted
	// baseline before a candidate is rolled back (default 0.02).
	Tolerance float64
	// MaxRegressions pins the supervisor after N consecutive rollbacks
	// (default 3).
	MaxRegressions int
	// KeepCheckpoints prunes the store to the newest N versions (the
	// promoted one always survives); 0 keeps everything.
	KeepCheckpoints int

	// Metrics receives online_* instruments (and serve_* ones when
	// Serve.Metrics is unset).
	Metrics *telemetry.Registry
	// Flight records online_round / online_eval / online_swap spans (and is
	// handed to the serving layer when Serve.Flight is unset).
	Flight *flight.Recorder
	// Faults, when non-nil, wires the fault injector into the trainer's
	// arrays — serving machines are always rebuilt on ideal arrays from the
	// snapshot, so faults degrade candidates' learned weights, not the
	// readout of promoted versions.
	Faults *fault.Injector

	// evalHook, settable only from this package's tests, rewrites a
	// candidate's measured eval accuracy — the injected-regression lever.
	evalHook func(version uint64, acc float64) float64
}

// withDefaults resolves every defaulted field.
func (c Config) withDefaults() Config {
	if c.Model.SpikeBits == 0 {
		c.Model = energy.DefaultModel()
	}
	if c.Lambda <= 0 {
		c.Lambda = 1
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if c.RoundImages <= 0 {
		c.RoundImages = 4 * c.Batch
	}
	if rem := c.RoundImages % c.Batch; rem != 0 {
		c.RoundImages += c.Batch - rem
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 1
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.02
	}
	if c.MaxRegressions <= 0 {
		c.MaxRegressions = 3
	}
	return c
}

// Supervisor owns a training accelerator, a versioned checkpoint store, and
// a serving server. Construct with New, then either call Step from one
// goroutine (deterministic, test- and benchmark-friendly) or Start/Run the
// background loop. Step is not safe for concurrent use — Run owns it.
type Supervisor struct {
	cfg      Config
	serveCfg serve.Config // effective (defaulted) serving config
	feed     Feed
	store    *checkpoint.Store
	trainer  *core.Accelerator
	staging  *nn.Network // host network reused for export/save/load
	srv      *serve.Server

	// Training-loop state, owned by the goroutine driving Step.
	baselineAcc float64
	epochImages int
	regressions int
	trainerDead bool
	next        uint64 // next candidate version number

	// Cross-goroutine observables.
	version    atomic.Uint64 // promoted (serving) version
	health     atomic.Int32
	rounds     atomic.Int64
	snapshots  atomic.Int64
	promotions atomic.Int64
	rollbacks  atomic.Int64
	resumed    bool

	started  atomic.Bool
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	runErr   atomic.Value // error from the background loop, if any

	flight *flight.Recorder

	mRounds, mSnapshots, mPromotions     *telemetry.Counter
	mRollbacks, mSwapFails, mTrainFaults *telemetry.Counter
	gHealth, gVersion, gAcc, gLoss       *telemetry.Gauge
}

// New builds the supervisor: it opens (or resumes from) the checkpoint
// store, assembles the trainer, scores the starting version on the eval
// set, and starts the serving layer on a machine rebuilt from that version.
// On a cold start the initial weights are saved as version 1; after a crash
// the newest checkpoint that validates wins and numbering continues past it.
// The training loop is NOT started — call Start (or Run) for that, or drive
// Step directly.
func New(feed Feed, cfg Config) (*Supervisor, error) {
	if feed == nil {
		return nil, errors.New("online: nil feed")
	}
	if cfg.Dir == "" {
		return nil, errors.New("online: Config.Dir (checkpoint directory) is required")
	}
	if len(cfg.Eval) == 0 {
		return nil, errors.New("online: Config.Eval (held-out eval set) is required")
	}
	cfg = cfg.withDefaults()

	store, err := checkpoint.OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Supervisor{
		cfg:    cfg,
		feed:   feed,
		store:  store,
		flight: cfg.Flight,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	s.initTelemetry(cfg.Metrics)

	// Weight discovery: newest valid checkpoint, else cold-start init.
	s.staging = networks.BuildTrainable(cfg.Spec, rand.New(rand.NewSource(cfg.Seed)))
	version, epoch, ok, err := store.LatestValid(s.staging)
	if err != nil {
		return nil, err
	}
	if ok {
		s.resumed = true
		s.epochImages = epoch
		s.next = version + 1
	} else {
		version = 1
		s.next = 2
		if err := store.Save(s.staging, 0, 1, checkpoint.StatePromoted); err != nil {
			return nil, err
		}
	}
	s.version.Store(version)

	// Trainer: faults (if any) wire in before Weight_load.
	s.trainer = core.New(cfg.Model)
	if cfg.Metrics != nil {
		s.trainer.SetMetrics(cfg.Metrics)
	}
	if cfg.Faults != nil {
		if err := s.trainer.SetFaults(cfg.Faults); err != nil {
			return nil, err
		}
	}
	if err := s.trainer.TopologySet(cfg.Spec, cfg.Lambda); err != nil {
		return nil, err
	}
	if err := s.trainer.WeightLoad(s.staging, nil); err != nil {
		return nil, err
	}
	if cfg.Flight.Enabled() {
		s.trainer.SetFlight(cfg.Flight)
		cfg.Flight.SetTrackName(flightTrackOnline, "online supervisor")
	}

	// Serving machine: rebuilt from the snapshot on ideal arrays, scored
	// for the promotion baseline, then handed to the serving layer.
	machine, err := core.NewFromSnapshot(cfg.Model, cfg.Spec, cfg.Lambda, s.staging)
	if err != nil {
		return nil, err
	}
	rep, err := machine.Test(cfg.Eval)
	if err != nil {
		return nil, err
	}
	s.baselineAcc = rep.Accuracy

	s.serveCfg = cfg.Serve
	if s.serveCfg.Metrics == nil {
		s.serveCfg.Metrics = cfg.Metrics
	}
	if s.serveCfg.Flight == nil {
		s.serveCfg.Flight = cfg.Flight
	}
	s.serveCfg.InitialVersion = version
	s.serveCfg = s.serveCfg.WithDefaults()
	s.srv, err = serve.New(machine, s.serveCfg)
	if err != nil {
		return nil, err
	}
	if s.resumed {
		// The resumed version is what we serve: record it promoted even if
		// a crash left its manifest entry behind (or as candidate).
		if serr := store.SetState(version, checkpoint.StatePromoted); serr != nil {
			if serr = store.Save(s.staging, s.epochImages, version, checkpoint.StatePromoted); serr != nil {
				return nil, serr
			}
		}
	}
	s.gauge(s.gVersion, float64(version))
	s.gauge(s.gAcc, s.baselineAcc)
	s.gauge(s.gHealth, float64(Healthy))
	return s, nil
}

func (s *Supervisor) initTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.mRounds = reg.Counter("online_rounds_total")
	s.mSnapshots = reg.Counter("online_snapshots_total")
	s.mPromotions = reg.Counter("online_promotions_total")
	s.mRollbacks = reg.Counter("online_rollbacks_total")
	s.mSwapFails = reg.Counter("online_swap_failures_total")
	s.mTrainFaults = reg.Counter("online_trainer_faults_total")
	s.gHealth = reg.Gauge("online_health")
	s.gVersion = reg.Gauge("online_weight_version")
	s.gAcc = reg.Gauge("online_eval_accuracy")
	s.gLoss = reg.Gauge("online_train_loss")
}

// Server returns the serving layer (for Predict / Handler / Close-free
// inspection). It remains valid until Close.
func (s *Supervisor) Server() *serve.Server { return s.srv }

// Version returns the promoted weight version currently serving.
func (s *Supervisor) Version() uint64 { return s.version.Load() }

// Health returns the supervisor's degradation state.
func (s *Supervisor) Health() Health { return Health(s.health.Load()) }

// Resumed reports whether New restored weights from an existing checkpoint.
func (s *Supervisor) Resumed() bool { return s.resumed }

// BaselineAccuracy returns the promoted version's eval accuracy. Only
// meaningful from the goroutine driving Step (or after the loop stopped).
func (s *Supervisor) BaselineAccuracy() float64 { return s.baselineAcc }

// Rounds, Snapshots, Promotions, Rollbacks return lifetime counts; safe to
// poll while the loop runs.
func (s *Supervisor) Rounds() int64     { return s.rounds.Load() }
func (s *Supervisor) Snapshots() int64  { return s.snapshots.Load() }
func (s *Supervisor) Promotions() int64 { return s.promotions.Load() }
func (s *Supervisor) Rollbacks() int64  { return s.rollbacks.Load() }

// Err returns the terminal error of the background loop, if it has one.
func (s *Supervisor) Err() error {
	if e, ok := s.runErr.Load().(error); ok {
		return e
	}
	return nil
}

// setHealth publishes the state to telemetry and the serving /healthz.
func (s *Supervisor) setHealth(h Health) {
	s.health.Store(int32(h))
	s.gauge(s.gHealth, float64(h))
	switch h {
	case Lagging:
		s.srv.SetReadiness(serve.ReadinessLagging)
	case Pinned:
		s.srv.SetReadiness(serve.ReadinessPinned)
	default:
		s.srv.SetReadiness(serve.ReadinessOK)
	}
}

// noteTrainerFault pins serving on the last good version and stops training.
func (s *Supervisor) noteTrainerFault(err error) error {
	s.trainerDead = true
	s.count(s.mTrainFaults)
	s.setHealth(Pinned)
	return fmt.Errorf("%w: %v", ErrTrainerFault, err)
}

// Step runs one training round; every SnapshotEvery rounds it snapshots,
// evaluates, and promotes (or rolls back) a candidate version. Serving is
// never interrupted: a promoted candidate lands as an atomic replica swap,
// a rejected one leaves the old version serving. Returns ErrTrainerFault
// (wrapped) on a hard trainer error; after that Step refuses to run and
// serving stays pinned.
func (s *Supervisor) Step() error {
	if s.trainerDead {
		return ErrTrainerFault
	}
	t0 := s.flight.Now()
	samples := s.feed.Next(s.cfg.RoundImages)
	if len(samples) == 0 || len(samples)%s.cfg.Batch != 0 {
		return s.noteTrainerFault(fmt.Errorf("online: feed returned %d samples, need a positive multiple of batch %d", len(samples), s.cfg.Batch))
	}
	rep, err := s.trainer.Train(samples, s.cfg.Batch, s.cfg.LR)
	if err != nil {
		return s.noteTrainerFault(err)
	}
	round := s.rounds.Add(1)
	s.epochImages += len(samples)
	s.count(s.mRounds)
	s.gauge(s.gLoss, rep.MeanLoss)
	s.flight.Record("online_round", 0, flightTrackOnline, t0, round)
	if round%int64(s.cfg.SnapshotEvery) != 0 {
		return nil
	}
	if s.Health() == Pinned {
		// Promotion disabled: keep training (drift and endurance keep
		// accumulating, per the online-learning motivation) but never swap.
		return nil
	}
	return s.promoteCandidate()
}

// promoteCandidate snapshots the trainer as the next version, scores it,
// and either swaps serving to it or rolls it back.
func (s *Supervisor) promoteCandidate() error {
	v := s.next
	if err := s.trainer.ExportWeights(s.staging); err != nil {
		return s.noteTrainerFault(err)
	}
	if err := s.store.Save(s.staging, s.epochImages, v, checkpoint.StateCandidate); err != nil {
		return s.noteTrainerFault(err)
	}
	s.next++
	s.snapshots.Add(1)
	s.count(s.mSnapshots)

	tEval := s.flight.Now()
	candidate, err := core.NewFromSnapshot(s.cfg.Model, s.cfg.Spec, s.cfg.Lambda, s.staging)
	if err != nil {
		return s.noteTrainerFault(err)
	}
	rep, err := candidate.Test(s.cfg.Eval)
	if err != nil {
		return s.noteTrainerFault(err)
	}
	acc := rep.Accuracy
	if s.cfg.evalHook != nil {
		acc = s.cfg.evalHook(v, acc)
	}
	s.flight.Record("online_eval", 0, flightTrackOnline, tEval, int64(v))

	if acc+s.cfg.Tolerance < s.baselineAcc {
		s.rollback(v)
		return nil
	}

	replicas, err := candidate.ReplicaSet(s.serveCfg.Replicas)
	if err != nil {
		s.count(s.mSwapFails)
		s.rollback(v)
		return nil
	}
	tSwap := s.flight.Now()
	if err := s.srv.Swap(replicas, v); err != nil {
		s.count(s.mSwapFails)
		s.rollback(v)
		return nil
	}
	s.flight.Record("online_swap", 0, flightTrackOnline, tSwap, int64(v))

	// Promoted: the candidate is the new baseline.
	if err := s.store.SetState(v, checkpoint.StatePromoted); err != nil {
		return s.noteTrainerFault(err)
	}
	s.version.Store(v)
	s.baselineAcc = acc
	s.regressions = 0
	s.promotions.Add(1)
	s.count(s.mPromotions)
	s.gauge(s.gVersion, float64(v))
	s.gauge(s.gAcc, acc)
	s.setHealth(Healthy)
	if s.cfg.KeepCheckpoints > 0 {
		if err := s.store.Prune(s.cfg.KeepCheckpoints, v); err != nil {
			return s.noteTrainerFault(err)
		}
	}
	return nil
}

// rollback restores the trainer to the promoted version after a rejected
// candidate (eval regression or swap failure) and degrades health.
func (s *Supervisor) rollback(candidate uint64) {
	promoted := s.version.Load()
	if _, err := s.store.Load(promoted, s.staging); err != nil {
		_ = s.noteTrainerFault(err)
		return
	}
	if err := s.trainer.WeightLoad(s.staging, nil); err != nil {
		_ = s.noteTrainerFault(err)
		return
	}
	_ = s.store.SetState(candidate, checkpoint.StateRolledBack)
	s.rollbacks.Add(1)
	s.count(s.mRollbacks)
	s.regressions++
	if s.regressions >= s.cfg.MaxRegressions {
		s.setHealth(Pinned)
	} else {
		s.setHealth(Lagging)
	}
}

// Run drives Step until ctx is canceled, Close is called, or the trainer
// faults. It may be called at most once (Start counts).
func (s *Supervisor) Run(ctx context.Context) error {
	if !s.started.CompareAndSwap(false, true) {
		return errors.New("online: Run called twice")
	}
	return s.loop(ctx)
}

// Start launches Run in the background; the loop's terminal error, if any,
// is available via Err. Safe to call once.
func (s *Supervisor) Start() error {
	if !s.started.CompareAndSwap(false, true) {
		return errors.New("online: already running")
	}
	go func() {
		//pipelayer:allow-ctxflow the background training loop outlives any one request by design; its lifetime is owned by Close (which closes s.stop and joins s.done), not by a caller's context
		if err := s.loop(context.Background()); err != nil && !errors.Is(err, context.Canceled) {
			s.runErr.Store(err)
		}
	}()
	return nil
}

func (s *Supervisor) loop(ctx context.Context) error {
	defer close(s.done)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.stop:
			return nil
		default:
		}
		if err := s.Step(); err != nil {
			return err
		}
	}
}

// Close stops the training loop (waiting for it to finish its current
// round) and then drains the serving layer: queued requests are answered,
// new ones refused, all goroutines joined.
func (s *Supervisor) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.started.Load() {
		<-s.done
	}
	return s.srv.Close()
}

func (s *Supervisor) count(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (s *Supervisor) gauge(g *telemetry.Gauge, v float64) {
	if g != nil {
		g.Set(v)
	}
}
