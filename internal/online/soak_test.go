package online

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"pipelayer/internal/serve"
	"pipelayer/internal/tensor"
)

// TestOnlineSoak is the acceptance load test: 200 concurrent requesters
// hammer the server while the trainer promotes at least 3 new versions
// underneath them. Every response must be attributable to exactly one weight
// version and bit-identical to that version's checkpointed weights — no
// dropped, duplicated, or torn responses — and the drain leaks nothing.
// Run it under -race (make race-online) for the full soak.
func TestOnlineSoak(t *testing.T) {
	const (
		lanes      = 200
		promotions = 3
	)
	base := runtime.NumGoroutine()
	cfg := testConfig(t)
	cfg.Serve = serve.Config{Replicas: 2, MaxBatch: 4, QueueCap: 512, MaxWait: time.Millisecond}
	s := newSupervisor(t, cfg)

	xs := evalInputs(t, 16)
	type obs struct {
		input   int
		version uint64
		scores  []float64
	}
	var (
		stop   = make(chan struct{})
		wg     sync.WaitGroup
		perLn  = make([][]obs, lanes)
		failMu sync.Mutex
		fail   error
	)
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				in := (lane + i) % len(xs)
				res, err := s.Server().Predict(context.Background(), xs[in])
				if errors.Is(err, serve.ErrOverloaded) {
					continue // fail-fast backpressure is working as designed; retry
				}
				if err != nil {
					failMu.Lock()
					if fail == nil {
						fail = err
					}
					failMu.Unlock()
					return
				}
				if res.Version == 0 {
					failMu.Lock()
					if fail == nil {
						fail = errors.New("response without a weight version")
					}
					failMu.Unlock()
					return
				}
				perLn[lane] = append(perLn[lane], obs{in, res.Version, res.Scores.Data()})
			}
		}(lane)
	}

	// The trainer runs on its own lane and halts once enough versions have
	// been promoted, so the version set stays small enough to verify fully.
	trainErr := make(chan error, 1)
	go func() {
		for s.Promotions() < promotions {
			if err := s.Step(); err != nil {
				trainErr <- err
				return
			}
		}
		trainErr <- nil
	}()
	select {
	case err := <-trainErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("trainer did not reach the promotion target in time")
	}
	// Let the requesters observe the final version before stopping them.
	final := s.Version()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if res, err := s.Server().Predict(context.Background(), xs[0]); err == nil && res.Version == final {
			break
		}
	}
	close(stop)
	wg.Wait()

	if fail != nil {
		t.Fatal(fail)
	}
	if got := s.Promotions(); got < promotions {
		t.Fatalf("promotions = %d, want >= %d", got, promotions)
	}

	// Every observed version must match its checkpoint bit-for-bit.
	refs := make(map[uint64][]*tensor.Tensor)
	seen := make(map[uint64]int)
	total := 0
	for _, lane := range perLn {
		for _, o := range lane {
			ref, ok := refs[o.version]
			if !ok {
				ref = refScores(t, cfg.Dir, cfg.Spec, o.version, xs)
				refs[o.version] = ref
			}
			want := ref[o.input].Data()
			if len(o.scores) != len(want) {
				t.Fatalf("v%d input %d: score length %d, want %d", o.version, o.input, len(o.scores), len(want))
			}
			for j := range want {
				if o.scores[j] != want[j] {
					t.Fatalf("v%d input %d: torn response (score[%d] %v != %v)",
						o.version, o.input, j, o.scores[j], want[j])
				}
			}
			seen[o.version]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no responses observed during the soak")
	}
	if len(seen) < 2 {
		t.Fatalf("soak observed %d distinct versions, want >= 2 (swaps must have happened under load)", len(seen))
	}
	t.Logf("soak: %d responses across %d versions (final v%d)", total, len(seen), final)

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// After the drain, new requests are refused and nothing leaks.
	if _, err := s.Server().Predict(context.Background(), xs[0]); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("predict after close = %v, want ErrClosed", err)
	}
	assertNoGoroutineLeaks(t, base)
}
