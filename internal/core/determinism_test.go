package core

import (
	"math/rand"
	"runtime"
	"testing"

	"pipelayer/internal/parallel"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

// TestExecutorParallelDeterminism is the end-to-end half of the determinism
// property: full sequential training, pipelined training, and Test produce
// bit-identical weights, losses, and accuracy across worker counts
// {1, 2, 7, GOMAXPROCS}.
func TestExecutorParallelDeterminism(t *testing.T) {
	spec := testutil.TinyMLP("det-mlp")
	train := testutil.FlatSamples(16, 8)
	test := testutil.FlatSamples(24, 9)

	type result struct {
		loss, acc float64
		weights   []*tensor.Tensor
	}
	run := func(workers int) result {
		old := parallel.Workers()
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		a := newAccel()
		if err := a.TopologySet(spec, 1); err != nil {
			t.Fatal(err)
		}
		if err := a.WeightLoad(nil, rand.New(rand.NewSource(77))); err != nil {
			t.Fatal(err)
		}
		seqRep, err := a.Train(train, 8, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		pipeRep, err := a.TrainPipelined(train, 8, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		testRep, err := a.Test(test)
		if err != nil {
			t.Fatal(err)
		}
		return result{loss: seqRep.MeanLoss + pipeRep.MeanLoss, acc: testRep.Accuracy, weights: a.WeightsSnapshot()}
	}

	ref := run(1)
	for _, w := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		got := run(w)
		if got.loss != ref.loss {
			t.Errorf("%d workers: training loss %.17g differs from serial %.17g", w, got.loss, ref.loss)
		}
		if got.acc != ref.acc {
			t.Errorf("%d workers: test accuracy %g differs from serial %g", w, got.acc, ref.acc)
		}
		if len(got.weights) != len(ref.weights) {
			t.Fatalf("%d workers: %d weight tensors, want %d", w, len(got.weights), len(ref.weights))
		}
		for i := range ref.weights {
			if !tensor.Equal(got.weights[i], ref.weights[i], 0) {
				t.Errorf("%d workers: weight tensor %d differs from serial", w, i)
			}
		}
	}
}
