package core

import (
	"errors"
	"fmt"

	"pipelayer/internal/arch"
	"pipelayer/internal/networks"
	"pipelayer/internal/telemetry/flight"
	"pipelayer/internal/tensor"
)

// Replica is a read-only inference clone of a loaded accelerator: it shares
// the programmed crossbar arrays and master weights (the Section 3.2.3 weight
// replication, as Test's fan-out does) but owns its activation buffers, so
// independent replicas serve requests concurrently. A single Replica is not
// safe for concurrent use — give each serving goroutine its own.
type Replica struct {
	engines []layerEngine
	spec    networks.Spec

	// flightRec/flightTrack attribute per-layer forward spans to this
	// replica's timeline row (see AttachFlight); nil means no tracing.
	flightRec   *flight.Recorder
	flightTrack uint64
}

// NewReplica clones the accelerator's engine stack for inference. The
// accelerator must have weights loaded; faults, if attached, stay wired into
// the shared arrays, so replicas see exactly the device the trainer saw.
func (a *Accelerator) NewReplica() (*Replica, error) {
	if !a.loaded {
		return nil, errors.New("core: NewReplica before Weight_load")
	}
	engines := make([]layerEngine, len(a.engines))
	for i, e := range a.engines {
		engines[i] = e.cloneForInference()
	}
	return &Replica{engines: engines, spec: a.spec}, nil
}

// Spec returns the network geometry the replica serves.
func (r *Replica) Spec() networks.Spec { return r.spec }

// Engines returns the number of layer engines in the replica's stack —
// the granularity shard planning partitions over.
func (r *Replica) Engines() int { return len(r.engines) }

// ForwardCosts returns the analytic forward cost (MAC-equivalents) of each
// layer engine, in stack order. Shard planning uses these weights to balance
// contiguous layer ranges when no measured telemetry is available.
func (r *Replica) ForwardCosts() []float64 {
	costs := make([]float64, len(r.engines))
	for i, e := range r.engines {
		costs[i] = e.forwardCost()
	}
	return costs
}

// Sub returns a replica covering only engines [lo, hi): the building block
// for layer-range sharding. Each engine is a fresh inference clone, so the
// sub-replica shares the programmed crossbar arrays (and any attached fault
// state) with its parent but owns private activation buffers — independent
// sub-replicas over disjoint ranges may run concurrently. The sub-replica
// keeps the full network spec; its Infer/InferBatch accept the output shape
// of engine lo-1 and produce the output of engine hi-1.
func (r *Replica) Sub(lo, hi int) (*Replica, error) {
	if lo < 0 || hi > len(r.engines) || lo >= hi {
		return nil, fmt.Errorf("core: Sub range [%d,%d) outside engine stack of %d", lo, hi, len(r.engines))
	}
	engines := make([]layerEngine, hi-lo)
	for i, e := range r.engines[lo:hi] {
		engines[i] = e.cloneForInference()
	}
	return &Replica{engines: engines, spec: r.spec}, nil
}

// Forward runs a batch through the replica and never errors; it exists so a
// bare Replica satisfies the serving backend contract alongside the sharded
// chain. A single-element batch takes the serial Infer path — bit-identical
// to InferBatch by the batched kernel's contract, and cheaper.
func (r *Replica) Forward(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(xs) == 1 {
		return []*tensor.Tensor{r.Infer(xs[0])}, nil
	}
	return r.InferBatch(xs), nil
}

// Spec returns the configured network geometry (zero value before
// Topology_set).
func (a *Accelerator) Spec() networks.Spec { return a.spec }

// Infer runs one input through the serial single-request path — the same
// per-stage forward the training executors and Test use.
func (r *Replica) Infer(x *tensor.Tensor) *tensor.Tensor {
	for i, e := range r.engines {
		t0 := r.flightRec.Now()
		x = e.forward(x)
		r.flightRec.Record("core_layer_forward", 0, r.flightTrack, t0, int64(i))
	}
	return x
}

// InferBatch runs a batch of independent inputs through the batched readout
// path: each weighted stage performs one multi-column crossbar readout for
// the whole batch instead of a readout per sample. Element i of the result
// is bit-identical to Infer(xs[i]) — the batched kernel's contract — so
// callers may freely mix the two paths.
func (r *Replica) InferBatch(xs []*tensor.Tensor) []*tensor.Tensor {
	if len(xs) == 0 {
		return nil
	}
	for i, e := range r.engines {
		t0 := r.flightRec.Now()
		xs = e.forwardBatch(xs)
		r.flightRec.Record("core_layer_forward", 0, r.flightTrack, t0, int64(i))
	}
	return xs
}

func (e *denseEngine) forwardBatch(xs []*tensor.Tensor) []*tensor.Tensor {
	n := len(xs)
	y := e.fwd.MatVecCols(arch.PackCols(xs)) // (out × n)
	yd := y.Data()
	bias := e.bias.Data()
	outs := make([]*tensor.Tensor, n)
	for c := range outs {
		o := tensor.New(e.out)
		od := o.Data()
		for j := 0; j < e.out; j++ {
			v := yd[j*n+c] + bias[j]
			// Same clamp as forward's Apply: v for v > 0, else literal 0.
			if e.relu && !(v > 0) {
				v = 0
			}
			od[j] = v
		}
		outs[c] = o
	}
	return outs
}

func (e *convEngine) forwardBatch(xs []*tensor.Tensor) []*tensor.Tensor {
	oh, ow := e.outShape()
	nwin := oh * ow
	outs := make([]*tensor.Tensor, len(xs))
	for idx, x := range xs {
		// Im2Col already lays the windows out as columns with the shape
		// MatVecCols wants, and each window quantizes against its own
		// absolute maximum — exactly what the per-window MatVec loop in
		// forward does — so one batched readout covers the whole plane.
		cols := tensor.Im2Col(x, e.k, e.k, e.stride, e.pad)
		y := e.fwd.MatVecCols(cols) // (outC × nwin)
		yd := y.Data()
		out := tensor.New(e.outC, oh, ow)
		od := out.Data()
		for c := 0; c < e.outC; c++ {
			b := e.bias.At(c)
			for wdx := 0; wdx < nwin; wdx++ {
				v := yd[c*nwin+wdx] + b
				if e.relu && v < 0 {
					v = 0
				}
				od[c*nwin+wdx] = v
			}
		}
		outs[idx] = out
	}
	return outs
}

func (e *poolEngine) forwardBatch(xs []*tensor.Tensor) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(xs))
	for idx, x := range xs {
		outs[idx] = e.pool(x)
	}
	return outs
}
