package core

import (
	"math/rand"
	"testing"

	"pipelayer/internal/dataset"
	"pipelayer/internal/energy"
	"pipelayer/internal/mapping"
	"pipelayer/internal/networks"
	"pipelayer/internal/tensor"
)

func newAccel() *Accelerator { return New(energy.DefaultModel()) }

func TestAPICallOrderEnforced(t *testing.T) {
	a := newAccel()
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("Weight_load before Topology_set must fail")
	}
	if err := a.PipelineSet(true); err == nil {
		t.Fatal("Pipeline_set before Weight_load must fail")
	}
	if _, err := a.Test(nil); err == nil {
		t.Fatal("Test before Weight_load must fail")
	}
	if err := a.TopologySet(networks.MnistA(), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if err := a.PipelineSet(true); err != nil {
		t.Fatal(err)
	}
	if !a.Pipelined() {
		t.Fatal("pipeline should be on")
	}
}

func TestTopologySetRejectsBadSpec(t *testing.T) {
	a := newAccel()
	bad := networks.MnistA()
	bad.Classes = 3
	if err := a.TopologySet(bad, 1); err == nil {
		t.Fatal("invalid spec must be rejected")
	}
}

func TestWeightLoadWithoutRNGFails(t *testing.T) {
	a := newAccel()
	if err := a.TopologySet(networks.MnistA(), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, nil); err == nil {
		t.Fatal("initial Weight_load without rng must fail")
	}
}

func TestAnalogTrainingLearnsMLP(t *testing.T) {
	if testing.Short() {
		t.Skip("analog training skipped in -short mode")
	}
	a := newAccel()
	if err := a.TopologySet(networks.MnistA(), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
	if err := a.PipelineSet(true); err != nil {
		t.Fatal(err)
	}
	train, test := dataset.TrainTest(600, 200, dataset.DefaultOptions(true), 9)
	train = a.CopyToPL(train)

	before, err := a.Test(test)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	for epoch := 0; epoch < 6; epoch++ {
		rep, err = a.Train(train, 10, 0.1)
		if err != nil {
			t.Fatal(err)
		}
	}
	after, err := a.Test(test)
	if err != nil {
		t.Fatal(err)
	}
	if after.Accuracy < 0.85 {
		t.Fatalf("analog-trained accuracy %.3f < 0.85 (started at %.3f)", after.Accuracy, before.Accuracy)
	}
	if after.Accuracy <= before.Accuracy {
		t.Fatal("training must improve accuracy")
	}
	if rep.MeanLoss <= 0 {
		t.Fatalf("loss = %g", rep.MeanLoss)
	}
	if a.HostBytesIn != int64(600*784*4) {
		t.Fatalf("host transfer accounting = %d", a.HostBytesIn)
	}
}

func TestAnalogTrainingMatchesFloatTrainingMLP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	// Same seed, same data: the analog-trained network's accuracy must stay
	// close to the float-trained network's (quantized datapath fidelity
	// across a whole training run).
	seed := int64(13)
	train, test := dataset.TrainTest(500, 200, dataset.DefaultOptions(true), 21)

	fnet := networks.BuildTrainable(networks.MnistA(), rand.New(rand.NewSource(seed)))
	for e := 0; e < 5; e++ {
		fnet.TrainEpoch(train, 10, 0.1)
	}
	floatAcc := fnet.Accuracy(test)

	a := newAccel()
	if err := a.TopologySet(networks.MnistA(), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(seed))); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 5; e++ {
		if _, err := a.Train(train, 10, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := a.Test(test)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy < floatAcc-0.08 {
		t.Fatalf("analog training accuracy %.3f far below float %.3f", rep.Accuracy, floatAcc)
	}
}

func TestAnalogTrainingLearnsCNN(t *testing.T) {
	if testing.Short() {
		t.Skip("analog CNN training skipped in -short mode")
	}
	// A small CNN (C-4's first half) trained fully through the analog
	// datapath: conv error backward through reordered-kernel arrays.
	spec := networks.Spec{
		Name: "tiny-cnn", InC: 1, InH: 28, InW: 28, Classes: 10,
		Layers: []mapping.Layer{
			mapping.Conv("conv1", 1, 28, 28, 6, 3, 1, 1),
			mapping.Pool("pool1", 6, 28, 28, 2),
			mapping.FC("fc", 6*14*14, 10),
		},
	}
	a := newAccel()
	if err := a.TopologySet(spec, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	train, test := dataset.TrainTest(300, 120, dataset.DefaultOptions(false), 17)
	for e := 0; e < 3; e++ {
		if _, err := a.Train(train, 10, 0.08); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := a.Test(test)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy < 0.7 {
		t.Fatalf("analog CNN accuracy %.3f < 0.7", rep.Accuracy)
	}
}

func TestTrainValidatesBatch(t *testing.T) {
	a := newAccel()
	if err := a.TopologySet(networks.MnistA(), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	samples := dataset.Generate(10, dataset.DefaultOptions(true), 1)
	if _, err := a.Train(samples, 0, 0.1); err == nil {
		t.Fatal("batch 0 must fail")
	}
	if _, err := a.Train(samples, 3, 0.1); err == nil {
		t.Fatal("non-multiple sample count must fail")
	}
}

func TestReportsCarryModeledCost(t *testing.T) {
	a := newAccel()
	if err := a.TopologySet(networks.MnistB(), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	if err := a.PipelineSet(true); err != nil {
		t.Fatal(err)
	}
	samples := dataset.Generate(20, dataset.DefaultOptions(true), 2)
	rep, err := a.Train(samples, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	L := networks.MnistB().WeightedLayers()
	if rep.Cycles != mapping.PipelinedTrainingCycles(L, 10, 20) {
		t.Fatalf("cycles = %d", rep.Cycles)
	}
	if rep.Seconds <= 0 || rep.Energy.Total() <= 0 {
		t.Fatal("report must carry modeled time and energy")
	}
	trep, err := a.Test(samples)
	if err != nil {
		t.Fatal(err)
	}
	if trep.Cycles != mapping.PipelinedTestingCycles(L, 20) {
		t.Fatalf("testing cycles = %d", trep.Cycles)
	}
}

func TestCopyToCPUClones(t *testing.T) {
	a := newAccel()
	x := tensor.FromSlice([]float64{1, 2}, 2)
	y := a.CopyToCPU(x)
	y.Set(9, 0)
	if x.At(0) != 1 {
		t.Fatal("CopyToCPU must clone")
	}
	if a.HostBytesOut != 8 {
		t.Fatalf("host bytes out = %d", a.HostBytesOut)
	}
}

func TestWeightLoadPretrained(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := networks.BuildTrainable(networks.MnistA(), rng)
	train, test := dataset.TrainTest(300, 100, dataset.DefaultOptions(true), 6)
	for e := 0; e < 4; e++ {
		net.TrainEpoch(train, 10, 0.1)
	}
	a := newAccel()
	if err := a.TopologySet(networks.MnistA(), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(net, nil); err != nil {
		t.Fatal(err)
	}
	rep, err := a.Test(test)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy < net.Accuracy(test)-0.05 {
		t.Fatalf("pretrained analog accuracy %.3f far below float %.3f", rep.Accuracy, net.Accuracy(test))
	}
}
