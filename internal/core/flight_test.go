package core

import (
	"testing"

	"pipelayer/internal/telemetry/flight"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

// TestReplicaFlightDepths pins the -trace-depth contract: depth 1 emits one
// core_layer_forward span per engine per pass, depth 2 adds per-readout arch
// spans, and tracing never changes a bit of the output.
func TestReplicaFlightDepths(t *testing.T) {
	a := loadedAccel(t, testutil.TinyMLP("flight-depth"), 77, nil)
	samples := testutil.FlatSamples(4, 9)
	xs := make([]*tensor.Tensor, len(samples))
	for i, s := range samples {
		xs[i] = s.Input
	}

	plain, err := a.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	want := plain.InferBatch(xs)

	for _, depth := range []int{1, 2} {
		rec := flight.New(flight.Config{Capacity: 256})
		r, err := a.NewReplica()
		if err != nil {
			t.Fatal(err)
		}
		r.AttachFlight(rec, 3, depth)
		got := r.InferBatch(xs)
		for i := range want {
			if !tensor.Equal(got[i], want[i], 0) {
				t.Fatalf("depth %d: traced inference diverged at sample %d", depth, i)
			}
		}

		var layers, readouts int
		for _, e := range rec.Events() {
			if e.Track != 3 {
				t.Fatalf("depth %d: span on track %d, want replica track 3: %+v", depth, e.Track, e)
			}
			switch e.Name {
			case "core_layer_forward":
				layers++
			case "arch_readout", "arch_readout_cols":
				readouts++
			default:
				t.Fatalf("depth %d: unexpected span %q", depth, e.Name)
			}
		}
		if layers != len(a.engines) {
			t.Fatalf("depth %d: %d layer spans, want %d", depth, layers, len(a.engines))
		}
		if depth == 1 && readouts != 0 {
			t.Fatalf("depth 1 must not emit arch spans, got %d", readouts)
		}
		if depth == 2 && readouts == 0 {
			t.Fatal("depth 2 must emit arch readout spans")
		}
	}
}

// TestReplicaFlightDisabled: depth 0 and nil recorders leave the replica
// untraced and untouched.
func TestReplicaFlightDisabled(t *testing.T) {
	a := loadedAccel(t, testutil.TinyMLP("flight-off"), 77, nil)
	r, err := a.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New(flight.Config{Capacity: 16})
	r.AttachFlight(rec, 1, 0)
	r.AttachFlight(nil, 1, 2)
	r.Infer(testutil.FlatSamples(1, 9)[0].Input)
	if n := rec.Len(); n != 0 {
		t.Fatalf("disabled replica recorded %d spans", n)
	}
}

// TestTrainFlightSpans: the serial trainer replays its schedule into the
// recorder — forward/backward spans per stage per image, update spans per
// stage per batch — and tracing does not perturb training.
func TestTrainFlightSpans(t *testing.T) {
	samples := testutil.FlatSamples(4, 9)

	base := loadedAccel(t, testutil.TinyMLP("flight-train"), 11, nil)
	repWant, err := base.Train(samples, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}

	traced := loadedAccel(t, testutil.TinyMLP("flight-train"), 11, nil)
	rec := flight.New(flight.Config{Capacity: 1024})
	traced.SetFlight(rec)
	repGot, err := traced.Train(samples, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if repGot.MeanLoss != repWant.MeanLoss {
		t.Fatalf("tracing changed training: loss %g vs %g", repGot.MeanLoss, repWant.MeanLoss)
	}

	L := len(traced.engines)
	counts := map[string]int{}
	for _, e := range rec.Events() {
		counts[e.Name]++
		if e.Track < flightTrainTrackBase {
			t.Fatalf("training span on track %d, want >= %d: %+v", e.Track, flightTrainTrackBase, e)
		}
	}
	n := len(samples)
	if counts["core_stage_forward"] != n*L {
		t.Fatalf("%d forward spans, want %d", counts["core_stage_forward"], n*L)
	}
	if counts["core_stage_backward"] != n*L {
		t.Fatalf("%d backward spans, want %d", counts["core_stage_backward"], n*L)
	}
	if counts["core_stage_update"] != (n/2)*L {
		t.Fatalf("%d update spans, want %d", counts["core_stage_update"], (n/2)*L)
	}
}

// TestTrainPipelinedFlightSpans: the pipelined executor emits the same span
// census as the serial one — the Figure 6 schedule is fully attributed.
func TestTrainPipelinedFlightSpans(t *testing.T) {
	samples := testutil.FlatSamples(4, 9)
	a := loadedAccel(t, testutil.TinyMLP("flight-pipe"), 11, nil)
	rec := flight.New(flight.Config{Capacity: 1024})
	a.SetFlight(rec)
	if _, err := a.TrainPipelined(samples, 2, 0.05); err != nil {
		t.Fatal(err)
	}
	L := len(a.engines)
	counts := map[string]int{}
	for _, e := range rec.Events() {
		counts[e.Name]++
	}
	n := len(samples)
	if counts["core_stage_forward"] != n*L {
		t.Fatalf("%d forward spans, want %d", counts["core_stage_forward"], n*L)
	}
	// Backward decomposes into ErrLast + (L-1) chain ops + GradFirst = L+1
	// spans per image on an L-stage machine.
	if counts["core_stage_backward"] != n*(L+1) {
		t.Fatalf("%d backward spans, want %d", counts["core_stage_backward"], n*(L+1))
	}
	if counts["core_stage_update"] != (n/2)*L {
		t.Fatalf("%d update spans, want %d", counts["core_stage_update"], (n/2)*L)
	}
}
