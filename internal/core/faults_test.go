package core

import (
	"math/rand"
	"runtime"
	"testing"

	"pipelayer/internal/fault"
	"pipelayer/internal/networks"
	"pipelayer/internal/parallel"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

func faultSpec() networks.Spec {
	return testutil.TinyMLP("fault-mlp")
}

type trainResult struct {
	seqLoss, pipeLoss, acc float64
	weights                []*tensor.Tensor
}

// runFaultTraining drives the full call sequence with an optional injector:
// Train, TrainPipelined, Test — the same shape as the determinism test.
func runFaultTraining(t *testing.T, inj *fault.Injector) trainResult {
	t.Helper()
	a := newAccel()
	if inj != nil {
		if err := a.SetFaults(inj); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.TopologySet(faultSpec(), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(77))); err != nil {
		t.Fatal(err)
	}
	train := testutil.FlatSamples(16, 8)
	test := testutil.FlatSamples(24, 9)
	seqRep, err := a.Train(train, 8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pipeRep, err := a.TrainPipelined(train, 8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	testRep, err := a.Test(test)
	if err != nil {
		t.Fatal(err)
	}
	return trainResult{
		seqLoss: seqRep.MeanLoss, pipeLoss: pipeRep.MeanLoss,
		acc: testRep.Accuracy, weights: a.WeightsSnapshot(),
	}
}

func assertSameResult(t *testing.T, got, want trainResult, label string) {
	t.Helper()
	if got.seqLoss != want.seqLoss {
		t.Errorf("%s: sequential loss %.17g, want %.17g", label, got.seqLoss, want.seqLoss)
	}
	if got.pipeLoss != want.pipeLoss {
		t.Errorf("%s: pipelined loss %.17g, want %.17g", label, got.pipeLoss, want.pipeLoss)
	}
	if got.acc != want.acc {
		t.Errorf("%s: accuracy %g, want %g", label, got.acc, want.acc)
	}
	if len(got.weights) != len(want.weights) {
		t.Fatalf("%s: %d weight tensors, want %d", label, len(got.weights), len(want.weights))
	}
	for i := range want.weights {
		if !tensor.Equal(got.weights[i], want.weights[i], 0) {
			t.Errorf("%s: weight tensor %d diverged", label, i)
		}
	}
}

// TestTrainingZeroDensityIdentical is the acceptance gate: an attached
// zero-density injector leaves the full training/test pipeline bit-identical
// to the fault-free accelerator.
func TestTrainingZeroDensityIdentical(t *testing.T) {
	ideal := runFaultTraining(t, nil)
	inj := fault.MustNew(fault.Config{Seed: 5, Spares: 4, Degrade: true, Retries: 3})
	assertSameResult(t, runFaultTraining(t, inj), ideal, "zero-density")
	if c := inj.Counters(); c != (fault.Counters{}) {
		t.Errorf("zero-density run counted fault events: %+v", c)
	}
}

// TestTrainingRemapExactTrajectory: with sparse stuck cells and ample spares
// the remapped accelerator trains to the exact fault-free trajectory — spare
// columns fully hide the damage.
func TestTrainingRemapExactTrajectory(t *testing.T) {
	ideal := runFaultTraining(t, nil)
	inj := fault.MustNew(fault.Config{Seed: 13, StuckOff: 1e-5, StuckOn: 5e-6, Spares: 8, Degrade: true})
	got := runFaultTraining(t, inj)
	c := inj.Counters()
	if c.Injected == 0 {
		t.Fatal("no faults injected; the injector is not wired into the engines")
	}
	if c.Degraded != 0 || c.Corrupted != 0 {
		t.Fatalf("spares should have covered all faulty columns: %+v", c)
	}
	assertSameResult(t, got, ideal, "remap")
}

// TestTrainingFaultDeterminismAcrossWorkers: a faulty run (stuck cells, write
// failures, endurance, drift, refresh all active) is bit-identical — losses,
// weights, and fault counters — for any worker count.
func TestTrainingFaultDeterminismAcrossWorkers(t *testing.T) {
	cfg := fault.Config{
		Seed: 3, StuckOff: 2e-4, StuckOn: 1e-4, WriteFail: 1e-3,
		Endurance: 10_000, Drift: 0.05, Refresh: 5, Retries: 3, Spares: 4, Degrade: true,
	}
	run := func(workers int) (trainResult, fault.Counters) {
		old := parallel.Workers()
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		inj := fault.MustNew(cfg)
		return runFaultTraining(t, inj), inj.Counters()
	}
	ref, refC := run(1)
	if refC.Injected == 0 {
		t.Fatal("no faults injected")
	}
	for _, w := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		got, gotC := run(w)
		assertSameResult(t, got, ref, "workers")
		if gotC != refC {
			t.Errorf("%d workers: counters %+v differ from serial %+v", w, gotC, refC)
		}
	}
}

// TestTrainingDriftRefresh: with drift and a refresh period set, training
// runs refreshes (visible in the counters) and still produces finite losses.
func TestTrainingDriftRefresh(t *testing.T) {
	inj := fault.MustNew(fault.Config{Seed: 7, Drift: 0.1, Refresh: 4})
	res := runFaultTraining(t, inj)
	if c := inj.Counters(); c.Refreshes == 0 {
		t.Fatalf("no refreshes ran: %+v", c)
	}
	if res.seqLoss != res.seqLoss || res.pipeLoss != res.pipeLoss { // NaN guard
		t.Fatalf("drifted training produced NaN losses: %+v", res)
	}
}

// TestSetFaultsOrderEnforced: the injector must attach before Weight_load.
func TestSetFaultsOrderEnforced(t *testing.T) {
	a := newAccel()
	if err := a.TopologySet(faultSpec(), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if err := a.SetFaults(fault.MustNew(fault.Config{Seed: 1})); err == nil {
		t.Fatal("Set_faults after Weight_load must fail")
	}
	if a.Faults() != nil {
		t.Fatal("rejected injector must not attach")
	}
}
