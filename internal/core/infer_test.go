package core

import (
	"math/rand"
	"testing"

	"pipelayer/internal/fault"
	"pipelayer/internal/networks"
	"pipelayer/internal/nn"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

func loadedAccel(t *testing.T, spec networks.Spec, seed int64, inj *fault.Injector) *Accelerator {
	t.Helper()
	a := newAccel()
	if inj != nil {
		if err := a.SetFaults(inj); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.TopologySet(spec, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(seed))); err != nil {
		t.Fatal(err)
	}
	return a
}

func assertBatchMatchesSerial(t *testing.T, a *Accelerator, samples []nn.Sample, label string) {
	t.Helper()
	r, err := a.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*tensor.Tensor, len(samples))
	for i, s := range samples {
		xs[i] = s.Input
	}
	batched := r.InferBatch(xs)
	for i, x := range xs {
		want := r.Infer(x)
		if !tensor.Equal(batched[i], want, 0) {
			t.Fatalf("%s: sample %d: batched inference diverged from serial", label, i)
		}
	}
}

// TestReplicaBatchBitIdentical is the core of the serving determinism
// contract: InferBatch must produce, for every sample, exactly the bits the
// serial single-request path produces — across dense, conv, and pool stages.
func TestReplicaBatchBitIdentical(t *testing.T) {
	mlp := loadedAccel(t, testutil.TinyMLP("infer-mlp"), 77, nil)
	assertBatchMatchesSerial(t, mlp, testutil.FlatSamples(24, 9), "mlp")

	cnn := loadedAccel(t, testutil.TinyDeepCNN("infer-cnn"), 5, nil)
	assertBatchMatchesSerial(t, cnn, testutil.ImageSamples(6, 3), "cnn")
}

// TestReplicaBatchBitIdenticalWithFaults: the batched readout consumes the
// same effective conductances as the serial path, so serving composes with
// SetFaults without changing a bit.
func TestReplicaBatchBitIdenticalWithFaults(t *testing.T) {
	inj := fault.MustNew(fault.Config{
		Seed: 3, StuckOff: 2e-4, StuckOn: 1e-4, Drift: 0.05, Spares: 4, Degrade: true,
	})
	a := loadedAccel(t, testutil.TinyMLP("infer-fault"), 77, inj)
	if inj.Counters().Injected == 0 {
		t.Fatal("no faults injected; the config is not wired through")
	}
	assertBatchMatchesSerial(t, a, testutil.FlatSamples(16, 8), "faulty-mlp")
}

// TestReplicaMatchesTestAccuracy: replica inference agrees with the Test
// executor's verdicts on the same samples.
func TestReplicaMatchesTestAccuracy(t *testing.T) {
	a := loadedAccel(t, testutil.TinyMLP("infer-acc"), 77, nil)
	samples := testutil.FlatSamples(32, 9)
	rep, err := a.Test(samples)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*tensor.Tensor, len(samples))
	for i, s := range samples {
		xs[i] = s.Input
	}
	hits := 0
	for i, y := range r.InferBatch(xs) {
		if _, idx := y.Max(); idx == samples[i].Label {
			hits++
		}
	}
	if got := float64(hits) / float64(len(samples)); got != rep.Accuracy {
		t.Fatalf("replica accuracy %g, Test reported %g", got, rep.Accuracy)
	}
}

// TestNewReplicaRequiresWeights: replicas only exist for loaded machines.
func TestNewReplicaRequiresWeights(t *testing.T) {
	a := newAccel()
	if _, err := a.NewReplica(); err == nil {
		t.Fatal("NewReplica before Weight_load must fail")
	}
	if err := a.TopologySet(testutil.TinyMLP("infer-unloaded"), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.NewReplica(); err == nil {
		t.Fatal("NewReplica before Weight_load must fail even after Topology_set")
	}
}
