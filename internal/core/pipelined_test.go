package core

import (
	"math/rand"
	"testing"

	"pipelayer/internal/networks"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

// buildPair creates two identically initialized accelerators.
func buildPair(t *testing.T, spec networks.Spec, seed int64) (*Accelerator, *Accelerator) {
	t.Helper()
	mk := func() *Accelerator {
		a := newAccel()
		if err := a.TopologySet(spec, 1); err != nil {
			t.Fatal(err)
		}
		if err := a.WeightLoad(nil, rand.New(rand.NewSource(seed))); err != nil {
			t.Fatal(err)
		}
		return a
	}
	return mk(), mk()
}

// The central architectural claim, functionally verified: processing B
// images through the Figure 6 pipeline — with d values held in
// 2(L−l)+1-deep circular rings and every unit used once per cycle —
// computes exactly the same weights as processing them sequentially.
func TestPipelinedTrainMatchesSequential(t *testing.T) {
	spec := testutil.TinyDeepMLP("pipe-mlp")
	seq, pipe := buildPair(t, spec, 31)
	samples := testutil.FlatSamples(40, 8)

	repSeq, err := seq.Train(samples, 8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	repPipe, err := pipe.TrainPipelined(samples, 8, 0.1)
	if err != nil {
		t.Fatal(err)
	}

	if repSeq.MeanLoss != repPipe.MeanLoss {
		t.Fatalf("losses differ: sequential %.12f vs pipelined %.12f", repSeq.MeanLoss, repPipe.MeanLoss)
	}
	ws, wp := seq.WeightsSnapshot(), pipe.WeightsSnapshot()
	if len(ws) != len(wp) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(ws), len(wp))
	}
	for i := range ws {
		if !tensor.Equal(ws[i], wp[i], 0) {
			t.Fatalf("weight tensor %d differs between sequential and pipelined training", i)
		}
	}
}

func TestPipelinedTrainMatchesSequentialCNN(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	spec := testutil.TinyDeepCNN("pipe-cnn")
	seq, pipe := buildPair(t, spec, 5)
	samples := testutil.ImageSamples(12, 9)
	if _, err := seq.Train(samples, 4, 0.05); err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.TrainPipelined(samples, 4, 0.05); err != nil {
		t.Fatal(err)
	}
	ws, wp := seq.WeightsSnapshot(), pipe.WeightsSnapshot()
	for i := range ws {
		if !tensor.Equal(ws[i], wp[i], 0) {
			t.Fatalf("CNN weight tensor %d differs", i)
		}
	}
}

func TestPipelinedCycleCountMatchesStageFormula(t *testing.T) {
	// The pipelined executor's schedule spans (N/B)(2S+B+1) cycles where S
	// counts *all* stages (pooling included).
	spec := networks.Mnist0()
	a := newAccel()
	if err := a.TopologySet(spec, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	samples := testutil.ImageSamples(16, 3)
	rep, err := a.TrainPipelined(samples, 8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	stages := 6 // conv, pool, conv, pool, fc, fc
	want := (16 / 8) * (2*stages + 8 + 1)
	if rep.Cycles != want {
		t.Fatalf("pipelined executor cycles = %d, want %d", rep.Cycles, want)
	}
}

func TestPipelinedTrainValidation(t *testing.T) {
	a := newAccel()
	if _, err := a.TrainPipelined(nil, 4, 0.1); err == nil {
		t.Fatal("unloaded accelerator must fail")
	}
	if err := a.TopologySet(networks.MnistA(), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	samples := testutil.FlatSamples(10, 1)
	if _, err := a.TrainPipelined(samples, 3, 0.1); err == nil {
		t.Fatal("non-multiple sample count must fail")
	}
}

func TestRingLivenessAndDepth(t *testing.T) {
	r := newRing("x", 2)
	a := tensor.FromSlice([]float64{1}, 1)
	b := tensor.FromSlice([]float64{2}, 1)
	r.write(0, a)
	r.write(1, b)
	if got := r.peek(0); got.At(0) != 1 {
		t.Fatal("peek broken")
	}
	if got := r.consume(0); got.At(0) != 1 {
		t.Fatal("consume broken")
	}
	// Slot 0 drained: the third write must succeed.
	r.write(2, a)
	// Now both slots live: a fourth write must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected overwrite panic")
		}
	}()
	r.write(3, b)
}

func TestRingConsumeMissingPanics(t *testing.T) {
	r := newRing("x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.consume(7)
}
