// Package core is the integrated PipeLayer accelerator — the paper's primary
// contribution assembled from every substrate. It exposes the programming
// interface of Section 5.2 (Copy_to_PL / Copy_to_CPU, Topology_set,
// Weight_load, Pipeline_set, Train / Test) as a stateful Accelerator, and it
// executes *complete training* functionally through the analog datapaths:
//
//   - forward passes run through quantized crossbar models (the bit-exact
//     fast equivalent of the spike-domain simulation, see internal/arch);
//   - error backward runs through dedicated error arrays holding the
//     reordered kernels (W)* of Section 4.3;
//   - partial derivatives accumulate in buffers over the batch and the
//     weight update flows through the Section 4.4.2 read–modify–write with
//     1/B averaging spikes and 4-bit segment recomposition;
//
// while the timing/energy side of every run comes from the cycle-accurate
// pipeline simulation and the device model.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"pipelayer/internal/arch"
	"pipelayer/internal/energy"
	"pipelayer/internal/fault"
	"pipelayer/internal/mapping"
	"pipelayer/internal/networks"
	"pipelayer/internal/nn"
	"pipelayer/internal/parallel"
	"pipelayer/internal/pipeline"
	"pipelayer/internal/telemetry"
	"pipelayer/internal/telemetry/flight"
	"pipelayer/internal/tensor"
)

// Accelerator is a configured PipeLayer device. The zero value is unusable;
// create one with New and drive it through the Section 5.2 call sequence:
// TopologySet → WeightLoad → PipelineSet → Train/Test.
type Accelerator struct {
	model energy.Model

	spec   networks.Spec
	lambda float64
	plans  []mapping.Plan

	engines   []layerEngine
	loss      nn.Loss
	update    *arch.UpdateUnit
	pipelined bool

	// metrics is the optional telemetry registry (SetMetrics); stageTel is
	// the per-stage instrument cache rebuilt after every Weight_load.
	metrics  *telemetry.Registry
	stageTel []stageTelemetry

	// faults is the optional fault injector (SetFaults); it is wired into
	// every crossbar at the next Weight_load.
	faults *fault.Injector

	// flight is the optional flight recorder (SetFlight); flightImage is the
	// 1-based ordinal of the image the serial Train loop is processing, the
	// trace id its spans attribute to.
	flight      *flight.Recorder
	flightImage uint64

	topologySet bool
	loaded      bool

	// HostBytesIn / HostBytesOut count Copy_to_PL / Copy_to_CPU traffic.
	HostBytesIn, HostBytesOut int64
}

// Report summarizes one Train or Test run: functional results plus the
// modeled cycles, wall-clock time and energy.
type Report struct {
	Images   int
	Accuracy float64
	MeanLoss float64
	Cycles   int
	Seconds  float64
	Energy   energy.Breakdown
}

// New creates an unconfigured accelerator with the given device model.
func New(model energy.Model) *Accelerator {
	return &Accelerator{model: model, loss: nn.SoftmaxLoss{}, update: arch.NewUpdateUnit(model.SpikeBits)}
}

// TopologySet configures the layer connections and datapaths (the paper's
// Topology_set): the network geometry and the λ-scaled array granularity.
func (a *Accelerator) TopologySet(spec networks.Spec, lambda float64) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	a.spec = spec
	a.lambda = lambda
	a.plans = a.model.BalancedPlans(spec.Layers, mapping.DefaultArray, lambda)
	a.topologySet = true
	a.loaded = false
	a.pipelined = false
	return nil
}

// WeightLoad programs weights into the morphable subarrays (the paper's
// Weight_load): pretrained weights when net is non-nil, otherwise fresh
// initial weights drawn from rng for training from scratch.
func (a *Accelerator) WeightLoad(net *nn.Network, rng *rand.Rand) error {
	if !a.topologySet {
		return errors.New("core: Weight_load before Topology_set")
	}
	if net == nil {
		if rng == nil {
			return errors.New("core: initial Weight_load requires a random source")
		}
		net = networks.BuildTrainable(a.spec, rng)
	}
	engines, err := buildEngines(net, a.model.SpikeBits, a.faults)
	if err != nil {
		return err
	}
	a.engines = engines
	a.stageTel = nil // engine set changed; rebuild instruments on next run
	a.loaded = true
	return nil
}

// SetFaults attaches a fault injector; the fault model is wired into every
// crossbar at the next Weight_load, so the injector must be set before
// loading weights. A nil injector restores the ideal device. Attach the
// injector to the telemetry registry too when one is set (SetMetrics does
// this automatically for the current injector).
func (a *Accelerator) SetFaults(inj *fault.Injector) error {
	if a.loaded {
		return errors.New("core: Set_faults after Weight_load; attach the injector before loading weights")
	}
	a.faults = inj
	if a.metrics != nil {
		inj.AttachMetrics(a.metrics)
	}
	return nil
}

// Faults returns the attached fault injector (nil for the ideal device).
func (a *Accelerator) Faults() *fault.Injector { return a.faults }

// tickEngines ages every crossbar by n compute cycles — drift accumulation.
// Must only run from serial sections.
func (a *Accelerator) tickEngines(n int64) {
	if a.faults == nil || a.faults.Config().Drift == 0 {
		return
	}
	for _, e := range a.engines {
		e.tick(n)
	}
}

// refreshEngines reprograms every crossbar from the float masters — the
// periodic drift-refresh tolerance mechanism. The rewrite goes through the
// full fault path (wear, transient failures, remap), so refreshing is not
// free: it spends endurance to buy back accuracy.
func (a *Accelerator) refreshEngines() {
	if a.metrics != nil {
		t := a.metrics.Span("fault_refresh_seconds").Start()
		defer t.Stop()
	}
	for _, e := range a.engines {
		e.reprogram()
	}
	a.faults.NoteRefresh()
}

// maybeRefresh runs a refresh every cfg.Refresh units (images for the serial
// executor, cycles for the pipelined one); unit is the running count.
func (a *Accelerator) maybeRefresh(unit int64) {
	if a.faults == nil {
		return
	}
	if rp := a.faults.Config().Refresh; rp > 0 && unit%int64(rp) == 0 {
		a.refreshEngines()
	}
}

// PipelineSet enables or disables the inter-layer pipeline (the paper's
// Pipeline_set).
func (a *Accelerator) PipelineSet(on bool) error {
	if !a.loaded {
		return errors.New("core: Pipeline_set before Weight_load")
	}
	a.pipelined = on
	return nil
}

// CopyToPL models the host-to-accelerator transfer of input data and
// returns the same samples (the accelerator works in place); transfer bytes
// are accounted at float32 width.
func (a *Accelerator) CopyToPL(samples []nn.Sample) []nn.Sample {
	for _, s := range samples {
		a.HostBytesIn += int64(s.Input.Size()) * 4
	}
	return samples
}

// CopyToCPU models the accelerator-to-host readback of a result tensor.
func (a *Accelerator) CopyToCPU(t *tensor.Tensor) *tensor.Tensor {
	a.HostBytesOut += int64(t.Size()) * 4
	return t.Clone()
}

// forward runs one image through the analog datapath, timing each stage
// when telemetry is attached.
func (a *Accelerator) forward(x *tensor.Tensor) *tensor.Tensor {
	tel := a.stageTelemetrySlice()
	for i, e := range a.engines {
		ft := a.flight.Now()
		if tel != nil {
			t := tel[i].forward.Start()
			x = e.forward(x)
			t.Stop()
		} else {
			x = e.forward(x)
		}
		a.flight.Record("core_stage_forward", a.flightImage, flightTrainTrackBase+uint64(i), ft, int64(i))
	}
	return x
}

// Test runs inference over the samples (the paper's Test mode) and reports
// accuracy plus the modeled cycles/time/energy of the run.
func (a *Accelerator) Test(samples []nn.Sample) (Report, error) {
	if !a.loaded {
		return Report{}, errors.New("core: Test before Weight_load")
	}
	if len(samples) == 0 {
		return Report{}, errors.New("core: Test with no samples")
	}
	// Images fan out across engine clones that share the programmed arrays
	// (the weight replication of Section 3.2.3 applied to Test throughput);
	// each clone owns its activation buffers and a correct-prediction count
	// is order-independent, so the result matches the serial scan exactly.
	tel := a.stageTelemetrySlice()
	var correct atomic.Int64
	parallel.Default().For(len(samples), 1, func(lo, hi int) {
		engines := make([]layerEngine, len(a.engines))
		for i, e := range a.engines {
			engines[i] = e.cloneForInference()
		}
		hits := 0
		for _, s := range samples[lo:hi] {
			x := s.Input
			for i, e := range engines {
				if tel != nil {
					t := tel[i].forward.Start()
					x = e.forward(x)
					t.Stop()
				} else {
					x = e.forward(x)
				}
			}
			if _, idx := x.Max(); idx == s.Label {
				hits++
			}
		}
		correct.Add(int64(hits))
	})
	n := len(samples)
	a.countImages("core_test_images_total", n)
	L := a.spec.WeightedLayers()
	sim := pipeline.Simulate(pipeline.Config{L: L, N: n, Pipelined: a.pipelined})
	sim.Record(a.metrics)
	return Report{
		Images:   n,
		Accuracy: float64(correct.Load()) / float64(n),
		Cycles:   sim.Cycles,
		Seconds:  a.model.TestingTime(a.spec, a.plans, n, a.pipelined),
		Energy:   a.model.TestingEnergy(a.spec, a.plans, n, a.pipelined),
	}, nil
}

// Train runs the paper's Train mode over the samples with the given batch
// size and learning rate: weights are frozen within each batch, per-image
// partial derivatives accumulate in the gradient buffers, and the averaged
// update is applied through the hardware read–modify–write at each batch
// boundary. It returns the functional results plus the modeled run cost.
//
// The image loop itself stays serial: gradient buffers accumulate per image
// in a fixed order, and fanning images out would reassociate those floating-
// point sums, breaking the bit-identity with TrainPipelined. All parallelism
// comes from inside the per-image tensor and crossbar ops, which preserve
// the serial accumulation order (see internal/parallel).
func (a *Accelerator) Train(samples []nn.Sample, batch int, lr float64) (Report, error) {
	if !a.loaded {
		return Report{}, errors.New("core: Train before Weight_load")
	}
	if batch <= 0 {
		return Report{}, errors.New("core: batch must be positive")
	}
	if len(samples) == 0 || len(samples)%batch != 0 {
		return Report{}, fmt.Errorf("core: sample count %d must be a positive multiple of batch %d", len(samples), batch)
	}
	totalLoss := 0.0
	classes := a.spec.Classes
	tel := a.stageTelemetrySlice()
	images := int64(0)
	for start := 0; start < len(samples); start += batch {
		for _, s := range samples[start : start+batch] {
			a.flightImage = uint64(images) + 1
			y := a.forward(s.Input)
			t := nn.OneHot(s.Label, classes)
			totalLoss += a.loss.Loss(y, t)
			delta := a.loss.Grad(y, t)
			for i := len(a.engines) - 1; i >= 0; i-- {
				ft := a.flight.Now()
				if tel != nil {
					tm := tel[i].backward.Start()
					delta = a.engines[i].backward(delta)
					tm.Stop()
				} else {
					delta = a.engines[i].backward(delta)
				}
				a.flight.Record("core_stage_backward", a.flightImage, flightTrainTrackBase+uint64(i), ft, int64(i))
			}
			// One drift tick per processed image; periodic refresh rewrites
			// drifted conductances from the masters. (The per-batch update
			// below reprograms anyway, so drift only accumulates within a
			// batch — physically faithful: programming resets the filament.)
			a.tickEngines(1)
			images++
			a.maybeRefresh(images)
		}
		for i, e := range a.engines {
			ft := a.flight.Now()
			if tel != nil {
				tm := tel[i].update.Start()
				e.applyUpdate(lr, batch, a.update)
				tm.Stop()
				tel[i].updates.Inc()
				tel[i].cells.Add(tel[i].nCells)
			} else {
				e.applyUpdate(lr, batch, a.update)
			}
			a.flight.Record("core_stage_update", 0, flightTrainTrackBase+uint64(i), ft, int64(i))
		}
	}
	n := len(samples)
	a.countImages("core_train_images_total", n)
	L := a.spec.WeightedLayers()
	sim := pipeline.Simulate(pipeline.Config{L: L, B: batch, N: n, Pipelined: a.pipelined, Training: true})
	sim.Record(a.metrics)
	rep := Report{
		Images:   n,
		MeanLoss: totalLoss / float64(n),
		Cycles:   sim.Cycles,
		Seconds:  a.model.TrainingTime(a.spec, a.plans, n, batch, a.pipelined),
		Energy:   a.model.TrainingEnergy(a.spec, a.plans, n, batch, a.pipelined),
	}
	return rep, nil
}

// Plans returns the active mapping plans (nil before Topology_set).
func (a *Accelerator) Plans() []mapping.Plan { return a.plans }

// WeightsSnapshot returns deep copies of every stage's master parameters,
// for verification and checkpointing.
func (a *Accelerator) WeightsSnapshot() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, e := range a.engines {
		for _, w := range e.weights() {
			out = append(out, w.Clone())
		}
	}
	return out
}

// Pipelined reports whether the inter-layer pipeline is enabled.
func (a *Accelerator) Pipelined() bool { return a.pipelined }
