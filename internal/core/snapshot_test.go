package core

import (
	"math/rand"
	"testing"

	"pipelayer/internal/energy"
	"pipelayer/internal/networks"
	"pipelayer/internal/tensor"
	"pipelayer/internal/testutil"
)

// TestExportWeightsRoundTrip: masters exported to a host network must match
// WeightsSnapshot bit for bit, and a machine rebuilt from the snapshot must
// serve bit-identically to a replica of the original — the consistency
// contract a hot swap rests on.
func TestExportWeightsRoundTrip(t *testing.T) {
	spec := testutil.TinyMLP("snap-mlp")
	a := loadedAccel(t, spec, 11, nil)
	if _, err := a.Train(testutil.FlatSamples(20, 3), 5, 0.1); err != nil {
		t.Fatal(err)
	}

	snap := networks.BuildTrainable(spec, rand.New(rand.NewSource(999)))
	if err := a.ExportWeights(snap); err != nil {
		t.Fatal(err)
	}
	masters := a.WeightsSnapshot()
	params := snap.Params()
	if len(masters) != len(params) {
		t.Fatalf("exported %d params, accelerator has %d weight tensors", len(params), len(masters))
	}
	for i := range params {
		if !tensor.Equal(params[i].Value, masters[i], 0) {
			t.Fatalf("param %s differs from accelerator master", params[i].Name)
		}
	}

	rebuilt, err := NewFromSnapshot(energy.DefaultModel(), spec, 1, snap)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := a.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := rebuilt.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	inputs := testutil.FlatSamples(12, 7)
	for i, s := range inputs {
		if !tensor.Equal(fresh.Infer(s.Input), orig.Infer(s.Input), 0) {
			t.Fatalf("sample %d: rebuilt machine diverged from original", i)
		}
	}

	// The rebuilt machine is frozen: training the original further must not
	// change what the snapshot machine serves.
	before := make([]*tensor.Tensor, len(inputs))
	for i, s := range inputs {
		before[i] = fresh.Infer(s.Input)
	}
	if _, err := a.Train(testutil.FlatSamples(20, 5), 5, 0.1); err != nil {
		t.Fatal(err)
	}
	for i, s := range inputs {
		if !tensor.Equal(fresh.Infer(s.Input), before[i], 0) {
			t.Fatalf("sample %d: snapshot machine changed under continued training", i)
		}
	}
}

func TestExportWeightsValidates(t *testing.T) {
	a := newAccel()
	net := networks.BuildTrainable(testutil.TinyMLP("snap-v1"), rand.New(rand.NewSource(1)))
	if err := a.ExportWeights(net); err == nil {
		t.Fatal("ExportWeights before WeightLoad must error")
	}
	a = loadedAccel(t, testutil.TinyMLP("snap-v2"), 2, nil)
	if err := a.ExportWeights(nil); err == nil {
		t.Fatal("ExportWeights into nil network must error")
	}
	// Topology mismatch: different hidden width.
	other := networks.BuildTrainable(testutil.TinyDeepMLP("snap-v3"), rand.New(rand.NewSource(3)))
	if err := a.ExportWeights(other); err == nil {
		t.Fatal("ExportWeights into mismatched topology must error")
	}
	before := other.Params()[0].Value.Clone()
	_ = a.ExportWeights(other)
	if !tensor.Equal(other.Params()[0].Value, before, 0) {
		t.Fatal("failed export mutated the target network")
	}
}

func TestReplicaSet(t *testing.T) {
	a := loadedAccel(t, testutil.TinyMLP("snap-rs"), 4, nil)
	if _, err := a.ReplicaSet(0); err == nil {
		t.Fatal("ReplicaSet(0) must error")
	}
	reps, err := a.ReplicaSet(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("got %d replicas, want 3", len(reps))
	}
	x := testutil.FlatSamples(1, 8)[0].Input
	want := reps[0].Infer(x)
	for i, r := range reps[1:] {
		if !tensor.Equal(r.Infer(x), want, 0) {
			t.Fatalf("replica %d diverged", i+1)
		}
	}
}
