package core

import (
	"errors"
	"fmt"
	"sync"

	"pipelayer/internal/nn"
	"pipelayer/internal/parallel"
	"pipelayer/internal/telemetry"
	"pipelayer/internal/tensor"
)

// Functional pipelined execution: this file plays the Figure 6 schedule with
// real tensors. Up to B images are in flight simultaneously; every
// inter-stage d value lives in a circular ring of 2(L−l)+1 entries exactly
// as Section 3.3 prescribes; every unit performs at most one operation per
// logical cycle; and because the weights are frozen within a batch and the
// per-layer gradient accumulation order matches the sequential machine's,
// the result is bit-identical to sequential execution —
// TestPipelinedTrainMatchesSequential verifies it weight-for-weight.
//
// Per-image cycle offsets (entry cycle e, stages 1..L):
//
//	forward stage k:        e + k − 1        writes ring d_k, peeks d_{k−1}
//	output error (ErrL):    e + L            consumes d_L, writes δ_L
//	error+derivative C_l:   e + 2L − l       consumes δ_{l+1} and d_l,
//	  (l = L−1 .. 1)                         writes δ_l
//	first-stage gradient:   e + 2L           consumes δ_1
//	batch update:           e + 2L + 1       (last image of the batch)
//
// so d_l written at e+l−1 is last read at e+2L−l — a gap of 2(L−l)+1
// cycles, the paper's ring depth, with the consume-before-write ordering
// that lets the slot be rewritten in the very cycle it drains.
type ring struct {
	name string
	// mu serializes the live-flag scans against concurrent same-cycle ops:
	// different ops touch different entries, but peek's scan reads every
	// entry's live flag while consume clears another's.
	mu      sync.Mutex
	entries []ringEntry
	wp      int
}

type ringEntry struct {
	image int
	data  *tensor.Tensor
	live  bool
}

func newRing(name string, depth int) *ring {
	if depth <= 0 {
		panic("core: ring depth must be positive")
	}
	return &ring{name: name, entries: make([]ringEntry, depth)}
}

func (r *ring) write(image int, t *tensor.Tensor) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := &r.entries[r.wp]
	if e.live {
		panic(fmt.Sprintf("core: ring %s overwrites live data of image %d with image %d", r.name, e.image, image))
	}
	*e = ringEntry{image: image, data: t, live: true}
	r.wp = (r.wp + 1) % len(r.entries)
}

// peek returns image's live entry without retiring it.
func (r *ring) peek(image int) *tensor.Tensor {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.entries {
		e := &r.entries[i]
		if e.live && e.image == image {
			return e.data
		}
	}
	panic(fmt.Sprintf("core: ring %s has no live entry for image %d", r.name, image))
}

// consume retires image's entry and returns its tensor.
func (r *ring) consume(image int) *tensor.Tensor {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.entries {
		e := &r.entries[i]
		if e.live && e.image == image {
			e.live = false
			return e.data
		}
	}
	panic(fmt.Sprintf("core: ring %s has no live entry for image %d", r.name, image))
}

// pipelinedOp is one scheduled operation.
type pipelinedOp struct {
	cycle int
	kind  opKind
	image int
	stage int // 1-based stage index where applicable
}

type opKind int

const (
	opForward opKind = iota
	opErrLast
	opErrChain // C_l: error through stage l+1's arrays + stage l's mask
	opGradFirst
	opUpdate
)

// TrainPipelined runs the same training computation as Train but through
// the cycle-by-cycle pipelined schedule with ring-buffered intermediates.
func (a *Accelerator) TrainPipelined(samples []nn.Sample, batch int, lr float64) (Report, error) {
	if !a.loaded {
		return Report{}, errors.New("core: Train before Weight_load")
	}
	if batch <= 0 || len(samples) == 0 || len(samples)%batch != 0 {
		return Report{}, fmt.Errorf("core: sample count %d must be a positive multiple of batch %d", len(samples), batch)
	}
	L := len(a.engines)

	dRing := make([]*ring, L+1)
	for l := 1; l < L; l++ {
		dRing[l] = newRing(fmt.Sprintf("d%d", l), 2*(L-l)+1)
	}
	dRing[L] = newRing(fmt.Sprintf("d%d", L), 2)
	deltaRing := make([]*ring, L+1)
	for l := 1; l <= L; l++ {
		deltaRing[l] = newRing(fmt.Sprintf("delta%d", l), 2)
	}

	ops := buildPipelinedSchedule(len(samples), batch, L)
	byCycle := map[int][]pipelinedOp{}
	last := 0
	for _, op := range ops {
		byCycle[op.cycle] = append(byCycle[op.cycle], op)
		if op.cycle > last {
			last = op.cycle
		}
	}

	totalLoss := 0.0
	classes := a.spec.Classes
	// Per-stage spans: forward ops time against their stage; each combined
	// error op (opErrLast/opErrChain/opGradFirst) times against the stage
	// whose error arrays execute it.
	tel := a.stageTelemetrySlice()
	pool := parallel.Default()
	for c := 1; c <= last; c++ {
		// All reads/consumes execute during the cycle; the produced tensors
		// are written to the rings at the cycle boundary (consume-before-
		// write, Section 3.3).
		//
		// Within a cycle every op runs on a distinct unit — the schedule
		// places at most one op per engine stage per cycle, ops of one cycle
		// touch different ring entries, and per-engine gradient accumulation
		// stays ordered by the serial cycle loop — so a cycle's ops fan out
		// across the worker pool exactly like the hardware's concurrent
		// stages. Each op records its ring writes and loss term in its own
		// slot; the slots drain in op order at the cycle boundary, keeping
		// ring write-pointer order and loss summation order identical to the
		// serial schedule. Weight updates (always alone in their cycle) run
		// inline.
		type pendingWrite struct {
			ring  *ring
			image int
			data  *tensor.Tensor
		}
		ops := byCycle[c]
		writes := make([][]pendingWrite, len(ops))
		losses := make([]float64, len(ops))
		runOp := func(oi int) {
			op := ops[oi]
			ft := a.flight.Now()
			var tm telemetry.SpanTimer
			timed := false
			if tel != nil {
				switch op.kind {
				case opForward:
					tm, timed = tel[op.stage-1].forward.Start(), true
				case opErrLast:
					tm, timed = tel[L-1].backward.Start(), true
				case opErrChain:
					tm, timed = tel[op.stage].backward.Start(), true
				case opGradFirst:
					tm, timed = tel[0].backward.Start(), true
				}
			}
			switch op.kind {
			case opForward:
				var x *tensor.Tensor
				if op.stage == 1 {
					x = samples[op.image].Input
				} else {
					x = dRing[op.stage-1].peek(op.image)
				}
				y := a.engines[op.stage-1].forward(x)
				writes[oi] = append(writes[oi], pendingWrite{dRing[op.stage], op.image, y})
			case opErrLast:
				y := dRing[L].consume(op.image)
				t := nn.OneHot(samples[op.image].Label, classes)
				losses[oi] = a.loss.Loss(y, t)
				raw := a.loss.Grad(y, t)
				g := a.engines[L-1].maskError(raw, y)
				writes[oi] = append(writes[oi], pendingWrite{deltaRing[L], op.image, g})
			case opErrChain:
				l := op.stage // producing δ_l from δ_{l+1}
				delta := deltaRing[l+1].consume(op.image)
				dl := dRing[l].consume(op.image) // final user of d_l
				raw := a.engines[l].errorBackward(delta, dl)
				g := a.engines[l-1].maskError(raw, dl)
				writes[oi] = append(writes[oi], pendingWrite{deltaRing[l], op.image, g})
			case opGradFirst:
				delta := deltaRing[1].consume(op.image)
				a.engines[0].errorBackward(delta, samples[op.image].Input)
			case opUpdate:
				for i, e := range a.engines {
					ut0 := a.flight.Now()
					if tel != nil {
						ut := tel[i].update.Start()
						e.applyUpdate(lr, batch, a.update)
						ut.Stop()
						tel[i].updates.Inc()
						tel[i].cells.Add(tel[i].nCells)
					} else {
						e.applyUpdate(lr, batch, a.update)
					}
					a.flight.Record("core_stage_update", 0, flightTrainTrackBase+uint64(i), ut0, int64(i))
				}
			}
			if timed {
				tm.Stop()
			}
			// Flight spans replay the Figure 6 schedule from the live machine:
			// every op times against the stage whose arrays execute it,
			// attributed to its 1-based image ordinal.
			switch op.kind {
			case opForward:
				a.flight.Record("core_stage_forward", uint64(op.image)+1, flightTrainTrackBase+uint64(op.stage-1), ft, int64(op.stage-1))
			case opErrLast:
				a.flight.Record("core_stage_backward", uint64(op.image)+1, flightTrainTrackBase+uint64(L-1), ft, int64(L-1))
			case opErrChain:
				a.flight.Record("core_stage_backward", uint64(op.image)+1, flightTrainTrackBase+uint64(op.stage), ft, int64(op.stage))
			case opGradFirst:
				a.flight.Record("core_stage_backward", uint64(op.image)+1, flightTrainTrackBase, ft, 0)
			}
		}
		serial := len(ops) == 1
		for _, op := range ops {
			if op.kind == opUpdate {
				serial = true // updates mutate every engine; never overlap them
			}
		}
		if serial {
			for oi := range ops {
				runOp(oi)
			}
		} else {
			tasks := make([]func(), len(ops))
			for oi := range ops {
				oi := oi
				tasks[oi] = func() { runOp(oi) }
			}
			pool.Run(tasks)
		}
		for oi := range ops {
			for _, w := range writes[oi] {
				w.ring.write(w.image, w.data)
			}
			totalLoss += losses[oi]
		}
		// Cycle boundary — the only serial point: age every array by one
		// pipeline cycle and run the periodic drift refresh. The pipelined
		// machine ticks per cycle (its natural time base) where the serial
		// executor ticks per image, so drifted trajectories differ between
		// the two executors by design; at zero drift both are untouched.
		a.tickEngines(1)
		a.maybeRefresh(int64(c))
	}

	n := len(samples)
	a.countImages("core_train_images_total", n)
	return Report{
		Images:   n,
		MeanLoss: totalLoss / float64(n),
		Cycles:   last,
		Seconds:  a.model.TrainingTime(a.spec, a.plans, n, batch, true),
		Energy:   a.model.TrainingEnergy(a.spec, a.plans, n, batch, true),
	}, nil
}

// buildPipelinedSchedule expands the Figure 6 offsets over all images.
func buildPipelinedSchedule(n, batch, L int) []pipelinedOp {
	var ops []pipelinedOp
	period := 2*L + batch + 1
	for img := 0; img < n; img++ {
		b, i := img/batch, img%batch
		e := b*period + i + 1
		for k := 1; k <= L; k++ {
			ops = append(ops, pipelinedOp{cycle: e + k - 1, kind: opForward, image: img, stage: k})
		}
		ops = append(ops, pipelinedOp{cycle: e + L, kind: opErrLast, image: img, stage: L})
		for l := L - 1; l >= 1; l-- {
			ops = append(ops, pipelinedOp{cycle: e + 2*L - l, kind: opErrChain, image: img, stage: l})
		}
		ops = append(ops, pipelinedOp{cycle: e + 2*L, kind: opGradFirst, image: img, stage: 1})
		if (img+1)%batch == 0 {
			ops = append(ops, pipelinedOp{cycle: e + 2*L + 1, kind: opUpdate, image: img})
		}
	}
	return ops
}
