package core

import (
	"fmt"

	"pipelayer/internal/telemetry/flight"
)

// flightTrainTrackBase offsets the training-stage timeline rows so they
// never collide with the serving replicas' tracks (serving uses 0..R) when
// one process records both — pipelayer-serve trains its toy model before
// serving it.
const flightTrainTrackBase uint64 = 100

// SetFlight attaches a flight recorder to the accelerator's training
// executors: Train and TrainPipelined then emit one span per scheduled
// operation — forward/backward/update per stage, attributed to the image
// ordinal — which is the paper's Figure 6 schedule replayed from the live
// machine instead of the cycle simulator. A nil recorder (the default)
// disables tracing at the cost of one pointer test per operation.
//
// The accelerator never reads wall-clock time itself: timestamps come from
// the recorder's injected clock, keeping this package clean under the
// nondeterminism analyzer.
func (a *Accelerator) SetFlight(rec *flight.Recorder) {
	a.flight = rec
	if rec == nil {
		return
	}
	for i := range a.engines {
		rec.SetTrackName(flightTrainTrackBase+uint64(i), fmt.Sprintf("stage %d", i))
	}
}

// AttachFlight wires a flight recorder into the replica's inference path.
// track is the replica's timeline row (serving uses worker index + 1, since
// track 0 is reserved for request-scoped spans). depth selects how deep the
// instrumentation reaches:
//
//	depth <= 0: no spans (equivalent to a nil recorder)
//	depth == 1: one core_layer_forward span per layer per Infer/InferBatch
//	depth >= 2: additionally one arch_readout/arch_readout_cols span per
//	            crossbar readout, via traced shallow clones of the shared
//	            quantized arrays (programmed codes stay shared)
func (r *Replica) AttachFlight(rec *flight.Recorder, track uint64, depth int) {
	if rec == nil || depth <= 0 {
		return
	}
	r.flightRec = rec
	r.flightTrack = track
	if depth >= 2 {
		for i, e := range r.engines {
			r.engines[i] = e.withFlight(rec, track)
		}
	}
}
