package core

import (
	"strconv"

	"pipelayer/internal/telemetry"
)

// stageTelemetry caches one pipeline stage's instruments so the hot loops
// pay two atomic adds per timed region instead of a registry lookup and a
// label-formatting allocation per image.
type stageTelemetry struct {
	forward  *telemetry.Span
	backward *telemetry.Span
	update   *telemetry.Span
	updates  *telemetry.Counter // applyUpdate invocations
	cells    *telemetry.Counter // master parameter values rewritten
	nCells   int64              // parameter count of this stage (0 for pools)
}

// SetMetrics attaches a telemetry registry to the accelerator; nil detaches.
// While attached, every Train/TrainPipelined/Test run records per-stage
// forward/backward/update spans (core_stage_*_seconds{stage="l"}), per-stage
// weight-write counters, and run-level image counters. Attaching costs two
// time.Now calls per stage per image on the hot path — bounded well under
// the tensor math it brackets.
func (a *Accelerator) SetMetrics(reg *telemetry.Registry) {
	a.metrics = reg
	a.stageTel = nil
	if a.faults != nil {
		a.faults.AttachMetrics(reg)
	}
}

// Metrics returns the attached registry (nil when detached).
func (a *Accelerator) Metrics() *telemetry.Registry { return a.metrics }

// stageTelemetrySlice lazily (re)builds the per-stage instrument cache; it
// must be called after engines exist (Weight_load) and returns nil when no
// registry is attached so call sites can branch on one nil check.
func (a *Accelerator) stageTelemetrySlice() []stageTelemetry {
	if a.metrics == nil {
		return nil
	}
	if len(a.stageTel) == len(a.engines) {
		return a.stageTel
	}
	tel := make([]stageTelemetry, len(a.engines))
	for i, e := range a.engines {
		lbl := map[string]string{"stage": strconv.Itoa(i + 1)}
		cells := int64(0)
		for _, w := range e.weights() {
			cells += int64(w.Size())
		}
		tel[i] = stageTelemetry{
			forward:  a.metrics.Span(telemetry.Name("core_stage_forward_seconds", lbl)),
			backward: a.metrics.Span(telemetry.Name("core_stage_backward_seconds", lbl)),
			update:   a.metrics.Span(telemetry.Name("core_stage_update_seconds", lbl)),
			updates:  a.metrics.Counter(telemetry.Name("core_weight_updates_total", lbl)),
			cells:    a.metrics.Counter(telemetry.Name("core_weight_writes_total", lbl)),
			nCells:   cells,
		}
	}
	a.stageTel = tel
	return tel
}

// countImages bumps a run-level image counter when a registry is attached.
// The name parameter forwards the string literals its three call sites
// pass (core_train_images_total / core_test_images_total), which the
// metricname analyzer can't see through the indirection.
func (a *Accelerator) countImages(name string, n int) {
	if a.metrics != nil {
		//pipelayer:allow-metricname forwards literal names from Train/Test call sites
		a.metrics.Counter(name).Add(int64(n))
	}
}
