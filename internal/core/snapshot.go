package core

// Weight snapshot export and serving-machine rebuild — the host-side glue
// for train-while-serve. The trainer's crossbars mutate continuously, and
// inference replicas share the programmed arrays (cloneForInference), so a
// replica cloned from the trainer would see torn weights mid-update. The
// online supervisor instead exports the float masters to a host network,
// persists it via checkpoint v2, and rebuilds an immutable serving machine
// from that snapshot: candidate versions are frozen at export time by
// construction.

import (
	"errors"
	"fmt"

	"pipelayer/internal/energy"
	"pipelayer/internal/networks"
	"pipelayer/internal/nn"
	"pipelayer/internal/tensor"
)

// ExportWeights copies the accelerator's float master weights (the host
// shadow of the programmed arrays — the paper's Copy_to_CPU applied to
// weights) into net's parameters, which must match the loaded topology in
// order and shape. Shapes are validated before anything is written, so on
// error net is untouched.
func (a *Accelerator) ExportWeights(net *nn.Network) error {
	if !a.loaded {
		return errors.New("core: Export_weights before Weight_load")
	}
	if net == nil {
		return errors.New("core: Export_weights into a nil network")
	}
	var masters []*tensor.Tensor
	for _, e := range a.engines {
		masters = append(masters, e.weights()...)
	}
	params := net.Params()
	if len(masters) != len(params) {
		return fmt.Errorf("core: accelerator has %d weight tensors, network has %d parameters", len(masters), len(params))
	}
	for i, p := range params {
		want, got := p.Value.Shape(), masters[i].Shape()
		if len(want) != len(got) {
			return fmt.Errorf("core: parameter %s has rank %d, accelerator tensor has rank %d", p.Name, len(want), len(got))
		}
		for d := range want {
			if want[d] != got[d] {
				return fmt.Errorf("core: parameter %s dim %d is %d, accelerator tensor has %d", p.Name, d, want[d], got[d])
			}
		}
	}
	for i, p := range params {
		copy(p.Value.Data(), masters[i].Data())
	}
	return nil
}

// NewFromSnapshot assembles a ready-to-serve accelerator from a weight
// snapshot: Topology_set then Weight_load from net, on ideal (fault-free)
// arrays. The result shares nothing with the machine the snapshot was
// exported from, which is what makes hot-swapping onto it safe while the
// original keeps training.
func NewFromSnapshot(model energy.Model, spec networks.Spec, lambda float64, net *nn.Network) (*Accelerator, error) {
	if net == nil {
		return nil, errors.New("core: NewFromSnapshot requires a snapshot network")
	}
	a := New(model)
	if err := a.TopologySet(spec, lambda); err != nil {
		return nil, err
	}
	if err := a.WeightLoad(net, nil); err != nil {
		return nil, err
	}
	return a, nil
}

// ReplicaSet clones n inference replicas from the accelerator — the unit a
// hot swap installs into the serving layer, one replica per worker.
func (a *Accelerator) ReplicaSet(n int) ([]*Replica, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: replica set size %d must be >= 1", n)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		r, err := a.NewReplica()
		if err != nil {
			return nil, err
		}
		reps[i] = r
	}
	return reps, nil
}
