package core

import (
	"fmt"

	"pipelayer/internal/arch"
	"pipelayer/internal/fault"
	"pipelayer/internal/nn"
	"pipelayer/internal/telemetry/flight"
	"pipelayer/internal/tensor"
)

// layerEngine is one analog pipeline stage with full training support:
// forward through the quantized crossbar model, error backward through the
// reordered-kernel arrays, gradient accumulation in buffers, and the
// hardware weight update.
//
// The backward path is split the way the hardware splits it (Section 4.3):
// maskError is the activation component ANDing a raw error with this
// stage's f′ (computed from its buffered output d_l), and errorBackward is
// the error-array pass Wᵀδ that also accumulates this stage's partial
// derivatives from the buffered input d_{l-1}. The stateful backward —
// used by the sequential executor — is exactly
// errorBackward(maskError(δ, lastOut), lastIn).
type layerEngine interface {
	forward(x *tensor.Tensor) *tensor.Tensor
	backward(delta *tensor.Tensor) *tensor.Tensor
	// maskError applies this stage's activation derivative to a raw error,
	// using the buffered stage output.
	maskError(raw, output *tensor.Tensor) *tensor.Tensor
	// errorBackward accumulates this stage's gradients from (δ, buffered
	// input) and returns the raw upstream error Wᵀδ.
	errorBackward(delta, input *tensor.Tensor) *tensor.Tensor
	applyUpdate(lr float64, batch int, u *arch.UpdateUnit)
	// weights returns the stage's master parameter tensors (empty for
	// weight-free stages), for snapshotting and verification.
	weights() []*tensor.Tensor
	// cloneForInference returns an engine sharing the programmed arrays and
	// master weights but owning private activation buffers (lastIn/lastOut),
	// so independent images can stream through concurrently — the weight
	// replication of Section 3.2.3 applied to Test throughput. Clones must
	// only run forward.
	cloneForInference() layerEngine
	// forwardBatch runs a batch of independent inputs through the stage in
	// one readout pass. Element i of the result is bit-identical to
	// forward(xs[i]); unlike forward it never touches the lastIn/lastOut
	// training buffers, so it is safe on shared clones and needs no
	// per-request buffer copies.
	forwardBatch(xs []*tensor.Tensor) []*tensor.Tensor
	// tick advances the drift age of the stage's arrays by n compute
	// cycles; no-op without an attached fault injector. Serial callers only.
	tick(n int64)
	// reprogram rewrites the stage's arrays from the float masters — the
	// drift-refresh tolerance mechanism.
	reprogram()
	// withFlight returns an engine whose forward crossbar records its
	// readouts as flight spans on the given track (depth-2 tracing). The
	// programmed codes stay shared; weight-free stages return themselves.
	withFlight(rec *flight.Recorder, track uint64) layerEngine
	// forwardCost is the stage's analytic forward work in MAC-equivalents —
	// the balance weight shard planning falls back to when no measured
	// per-stage telemetry is available.
	forwardCost() float64
}

// buildEngines lowers a float network onto analog layer engines. Supported
// sequence: Conv(+ReLU), MaxPool, Dense(+ReLU) — the trainable zoo. A
// non-nil injector wires the fault model into every array: weighted stage s
// owns array ids 2s (forward) and 2s+1 (error-backward).
func buildEngines(net *nn.Network, bits int, inj *fault.Injector) ([]layerEngine, error) {
	var engines []layerEngine
	layers := net.Layers
	stage := uint64(0)
	for i := 0; i < len(layers); i++ {
		switch l := layers[i].(type) {
		case *nn.Dense:
			relu := false
			if i+1 < len(layers) {
				if _, ok := layers[i+1].(*nn.ReLU); ok {
					relu = true
					i++
				}
			}
			engines = append(engines, newDenseEngine(l, relu, bits, inj, stage))
			stage++
		case *nn.Conv:
			if _, _, _, _, _, stride, _ := l.Geometry(); stride != 1 {
				// The Figure 11 error-backward-as-convolution identity the
				// analog datapath implements holds for unit stride.
				return nil, fmt.Errorf("core: conv layer %s has stride %d; the analog backward path supports stride 1", l.Name(), stride)
			}
			relu := false
			if i+1 < len(layers) {
				if _, ok := layers[i+1].(*nn.ReLU); ok {
					relu = true
					i++
				}
			}
			engines = append(engines, newConvEngine(l, relu, bits, inj, stage))
			stage++
		case *nn.MaxPool:
			inC, inH, inW, k := l.Geometry()
			engines = append(engines, &poolEngine{inC: inC, inH: inH, inW: inW, k: k})
		default:
			return nil, fmt.Errorf("core: unsupported layer type %T", l)
		}
	}
	return engines, nil
}

// denseEngine is an inner-product stage: a forward array pair (in×out) and
// an error-backward array pair holding Wᵀ (out×in), per Section 4.3.
type denseEngine struct {
	in, out int
	relu    bool
	bits    int

	w    *tensor.Tensor // float master copy (host shadow of the arrays)
	bias *tensor.Tensor
	fwd  *arch.Quantized // rows=in, cols=out
	bwd  *arch.Quantized // rows=out, cols=in

	gradW *tensor.Tensor
	gradB *tensor.Tensor

	lastIn  *tensor.Tensor
	lastOut *tensor.Tensor
	inShape []int

	inj          *fault.Injector
	fwdID, bwdID uint64
}

func newDenseEngine(l *nn.Dense, relu bool, bits int, inj *fault.Injector, stage uint64) *denseEngine {
	e := &denseEngine{
		in: l.In(), out: l.Out(), relu: relu, bits: bits,
		w:     l.Weights().Value.Clone(), // (out, in)
		bias:  l.Bias().Value.Clone(),
		gradW: tensor.New(l.Out(), l.In()),
		gradB: tensor.New(l.Out()),
		inj:   inj, fwdID: 2 * stage, bwdID: 2*stage + 1,
	}
	e.program()
	return e
}

// program (re)writes both array pairs from the float master weights. The
// arrays are created once and reprogrammed in place thereafter, so fault
// state (stuck maps, wear counters, remap tables, drift age) persists across
// the per-batch updates exactly as physical silicon would.
func (e *denseEngine) program() {
	if e.fwd == nil {
		e.fwd = arch.NewQuantized(tensor.Transpose(e.w), e.in, e.out, e.bits)
		e.bwd = arch.NewQuantized(e.w, e.out, e.in, e.bits)
		if e.inj != nil {
			e.fwd.AttachFaults(e.inj, e.fwdID)
			e.bwd.AttachFaults(e.inj, e.bwdID)
		}
		return
	}
	e.fwd.Program(tensor.Transpose(e.w))
	e.bwd.Program(e.w)
}

func (e *denseEngine) tick(n int64) {
	if e.inj != nil {
		e.fwd.Tick(n)
		e.bwd.Tick(n)
	}
}

func (e *denseEngine) reprogram() { e.program() }

func (e *denseEngine) weights() []*tensor.Tensor { return []*tensor.Tensor{e.w, e.bias} }

func (e *denseEngine) cloneForInference() layerEngine { c := *e; return &c }

func (e *denseEngine) forwardCost() float64 { return float64(e.in) * float64(e.out) }

func (e *denseEngine) withFlight(rec *flight.Recorder, track uint64) layerEngine {
	c := *e
	c.fwd = e.fwd.WithFlight(rec, track)
	return &c
}

func (e *denseEngine) forward(x *tensor.Tensor) *tensor.Tensor {
	e.inShape = x.Shape()
	flat := x.Reshape(e.in)
	e.lastIn = flat.Clone()
	y := e.fwd.MatVec(flat)
	y.AddInPlace(e.bias)
	if e.relu {
		y.Apply(func(v float64) float64 {
			if v > 0 {
				return v
			}
			return 0
		})
	}
	e.lastOut = y.Clone()
	return y
}

func (e *denseEngine) backward(delta *tensor.Tensor) *tensor.Tensor {
	d := e.maskError(delta.Reshape(e.out), e.lastOut)
	return e.errorBackward(d, e.lastIn).Reshape(e.inShape...)
}

func (e *denseEngine) maskError(raw, output *tensor.Tensor) *tensor.Tensor {
	if !e.relu {
		return raw
	}
	return arch.ReluBackward(raw.Reshape(e.out), output.Reshape(e.out))
}

func (e *denseEngine) errorBackward(delta, input *tensor.Tensor) *tensor.Tensor {
	d := delta.Reshape(e.out)
	in := input.Reshape(e.in)
	// ∂W = δ·d_{l-1}ᵀ and ∂b = δ accumulate in the gradient buffers.
	e.gradW.AddInPlace(tensor.Outer(d, in))
	e.gradB.AddInPlace(d)
	// δ_{l-1} = Wᵀδ through the error array pair.
	return e.bwd.MatVec(d)
}

func (e *denseEngine) applyUpdate(lr float64, batch int, u *arch.UpdateUnit) {
	scale := e.w.AbsMax() * 2
	if scale == 0 {
		scale = 1
	}
	u.Apply(e.w, e.gradW, lr, batch, scale)
	// Bias registers update digitally (the paper keeps bias in the extra
	// word line; the averaged gradient applies the same way).
	e.bias.AxpyInPlace(-lr/float64(batch), e.gradB)
	e.gradW.Zero()
	e.gradB.Zero()
	e.program()
}

// convEngine is a convolution stage: a forward array pair holding the kernel
// matrix and an error array pair holding the reordered kernels (W)* of
// Figure 11; derivatives follow Figure 12 on the buffered d and δ.
type convEngine struct {
	inC, inH, inW, outC int
	k, stride, pad      int
	relu                bool
	bits                int

	w    *tensor.Tensor // (outC, inC, k, k) float master
	bias *tensor.Tensor
	fwd  *arch.Quantized // rows=inC·k·k, cols=outC
	bwd  *arch.Quantized // rows=outC·k·k, cols=inC (reordered kernels)

	gradW *tensor.Tensor
	gradB *tensor.Tensor

	lastIn  *tensor.Tensor
	lastOut *tensor.Tensor

	inj          *fault.Injector
	fwdID, bwdID uint64
}

func newConvEngine(l *nn.Conv, relu bool, bits int, inj *fault.Injector, stage uint64) *convEngine {
	inC, inH, inW, outC, k, stride, pad := l.Geometry()
	e := &convEngine{
		inC: inC, inH: inH, inW: inW, outC: outC,
		k: k, stride: stride, pad: pad, relu: relu, bits: bits,
		w:     l.Weights().Value.Clone(),
		bias:  l.Bias().Value.Clone(),
		gradW: tensor.New(outC, inC, k, k),
		gradB: tensor.New(outC),
		inj:   inj, fwdID: 2 * stage, bwdID: 2*stage + 1,
	}
	e.program()
	return e
}

// program (re)writes both array pairs; like denseEngine, the arrays persist
// across reprograms so the fault model sees every write.
func (e *convEngine) program() {
	wmat := e.w.Reshape(e.outC, e.inC*e.k*e.k)
	back := arch.BackwardKernels(e.w) // (inC, outC, k, k)
	bmat := back.Reshape(e.inC, e.outC*e.k*e.k)
	if e.fwd == nil {
		e.fwd = arch.NewQuantized(tensor.Transpose(wmat), e.inC*e.k*e.k, e.outC, e.bits)
		e.bwd = arch.NewQuantized(tensor.Transpose(bmat), e.outC*e.k*e.k, e.inC, e.bits)
		if e.inj != nil {
			e.fwd.AttachFaults(e.inj, e.fwdID)
			e.bwd.AttachFaults(e.inj, e.bwdID)
		}
		return
	}
	e.fwd.Program(tensor.Transpose(wmat))
	e.bwd.Program(tensor.Transpose(bmat))
}

func (e *convEngine) tick(n int64) {
	if e.inj != nil {
		e.fwd.Tick(n)
		e.bwd.Tick(n)
	}
}

func (e *convEngine) reprogram() { e.program() }

func (e *convEngine) weights() []*tensor.Tensor { return []*tensor.Tensor{e.w, e.bias} }

func (e *convEngine) cloneForInference() layerEngine { c := *e; return &c }

func (e *convEngine) forwardCost() float64 {
	oh, ow := e.outShape()
	return float64(e.outC) * float64(e.inC) * float64(e.k*e.k) * float64(oh*ow)
}

func (e *convEngine) withFlight(rec *flight.Recorder, track uint64) layerEngine {
	c := *e
	c.fwd = e.fwd.WithFlight(rec, track)
	return &c
}

func (e *convEngine) forward(x *tensor.Tensor) *tensor.Tensor {
	e.lastIn = x.Clone()
	cols := tensor.Im2Col(x, e.k, e.k, e.stride, e.pad)
	oh := tensor.ConvOutDim(e.inH, e.k, e.stride, e.pad)
	ow := tensor.ConvOutDim(e.inW, e.k, e.stride, e.pad)
	nwin := oh * ow
	out := tensor.New(e.outC, oh, ow)
	vec := tensor.New(cols.Dim(0))
	for wdx := 0; wdx < nwin; wdx++ {
		for i := 0; i < cols.Dim(0); i++ {
			vec.Data()[i] = cols.At(i, wdx)
		}
		y := e.fwd.MatVec(vec)
		for c := 0; c < e.outC; c++ {
			v := y.At(c) + e.bias.At(c)
			if e.relu && v < 0 {
				v = 0
			}
			out.Data()[c*nwin+wdx] = v
		}
	}
	e.lastOut = out.Clone()
	return out
}

func (e *convEngine) backward(delta *tensor.Tensor) *tensor.Tensor {
	d := e.maskError(delta, e.lastOut)
	return e.errorBackward(d, e.lastIn)
}

func (e *convEngine) outShape() (int, int) {
	return tensor.ConvOutDim(e.inH, e.k, e.stride, e.pad), tensor.ConvOutDim(e.inW, e.k, e.stride, e.pad)
}

func (e *convEngine) maskError(raw, output *tensor.Tensor) *tensor.Tensor {
	oh, ow := e.outShape()
	r := raw.Reshape(e.outC, oh, ow)
	if !e.relu {
		return r
	}
	return arch.ReluBackward(r, output.Reshape(e.outC, oh, ow))
}

func (e *convEngine) errorBackward(delta, input *tensor.Tensor) *tensor.Tensor {
	oh, ow := e.outShape()
	d := delta.Reshape(e.outC, oh, ow)
	in := input.Reshape(e.inC, e.inH, e.inW)
	// ∂b and ∂W accumulate (Figure 12 — the buffered d acts as the kernel).
	for c := 0; c < e.outC; c++ {
		s := 0.0
		plane := d.Data()[c*oh*ow : (c+1)*oh*ow]
		for _, v := range plane {
			s += v
		}
		e.gradB.Data()[c] += s
	}
	e.gradW.AddInPlace(arch.ConvDerivative(in, d, e.k, e.pad))

	// δ_{l-1} = conv2(δ, rot180(K), 'full') through the error arrays: the
	// padded error's im2col columns drive the reordered-kernel array pair.
	padded := tensor.Pad2D(d, e.k-1)
	cols := tensor.Im2Col(padded, e.k, e.k, 1, 0)
	fh := padded.Dim(1) - e.k + 1
	fw := padded.Dim(2) - e.k + 1
	nwin := fh * fw
	full := tensor.New(e.inC, fh, fw)
	vec := tensor.New(cols.Dim(0))
	for wdx := 0; wdx < nwin; wdx++ {
		for i := 0; i < cols.Dim(0); i++ {
			vec.Data()[i] = cols.At(i, wdx)
		}
		y := e.bwd.MatVec(vec)
		for c := 0; c < e.inC; c++ {
			full.Data()[c*nwin+wdx] = y.At(c)
		}
	}
	if e.pad > 0 {
		full = tensor.Crop2D(full, e.pad)
	}
	return full
}

func (e *convEngine) applyUpdate(lr float64, batch int, u *arch.UpdateUnit) {
	scale := e.w.AbsMax() * 2
	if scale == 0 {
		scale = 1
	}
	u.Apply(e.w, e.gradW, lr, batch, scale)
	e.bias.AxpyInPlace(-lr/float64(batch), e.gradB)
	e.gradW.Zero()
	e.gradB.Zero()
	e.program()
}

// poolEngine is a max-pooling stage; backward routes errors to the stored
// window maxima (Figure 10b).
type poolEngine struct {
	inC, inH, inW, k int
	lastIn           *tensor.Tensor
}

func (e *poolEngine) forward(x *tensor.Tensor) *tensor.Tensor {
	e.lastIn = x.Clone()
	return e.pool(x)
}

func (e *poolEngine) pool(x *tensor.Tensor) *tensor.Tensor {
	oh, ow := e.inH/e.k, e.inW/e.k
	out := tensor.New(e.inC, oh, ow)
	for c := 0; c < e.inC; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := x.At(c, oy*e.k, ox*e.k)
				for ky := 0; ky < e.k; ky++ {
					for kx := 0; kx < e.k; kx++ {
						if v := x.At(c, oy*e.k+ky, ox*e.k+kx); v > best {
							best = v
						}
					}
				}
				out.Set(best, c, oy, ox)
			}
		}
	}
	return out
}

func (e *poolEngine) backward(delta *tensor.Tensor) *tensor.Tensor {
	return e.errorBackward(delta, e.lastIn)
}

func (e *poolEngine) maskError(raw, _ *tensor.Tensor) *tensor.Tensor {
	return raw.Reshape(e.inC, e.inH/e.k, e.inW/e.k)
}

func (e *poolEngine) errorBackward(delta, input *tensor.Tensor) *tensor.Tensor {
	return arch.MaxPoolBackward(
		delta.Reshape(e.inC, e.inH/e.k, e.inW/e.k),
		input.Reshape(e.inC, e.inH, e.inW), e.k)
}

func (e *poolEngine) applyUpdate(float64, int, *arch.UpdateUnit) {}

func (e *poolEngine) tick(int64) {}

func (e *poolEngine) reprogram() {}

func (e *poolEngine) weights() []*tensor.Tensor { return nil }

func (e *poolEngine) cloneForInference() layerEngine { c := *e; return &c }

func (e *poolEngine) forwardCost() float64 { return float64(e.inC) * float64(e.inH) * float64(e.inW) }

func (e *poolEngine) withFlight(*flight.Recorder, uint64) layerEngine { return e }
