package core

import (
	"math/rand"
	"testing"

	"pipelayer/internal/dataset"
	"pipelayer/internal/networks"
	"pipelayer/internal/telemetry"
)

// metricsAccel builds a loaded Mnist-A accelerator (2 stages: 784→100 ReLU,
// 100→10) with a fresh registry attached.
func metricsAccel(t *testing.T) (*Accelerator, *telemetry.Registry) {
	t.Helper()
	a := newAccel()
	if err := a.TopologySet(networks.MnistA(), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.WeightLoad(nil, rand.New(rand.NewSource(11))); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	a.SetMetrics(reg)
	return a, reg
}

func TestTrainRecordsStageSpansAndWeightWrites(t *testing.T) {
	a, reg := metricsAccel(t)
	train, _ := dataset.TrainTest(8, 1, dataset.DefaultOptions(true), 21)
	if _, err := a.Train(train, 4, 0.05); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	// 8 images through 2 stages: 8 forward and 8 backward timings per
	// stage; 2 batches: 2 updates per stage.
	for _, stage := range []string{"1", "2"} {
		fwd := s.Spans[`core_stage_forward_seconds{stage="`+stage+`"}`]
		bwd := s.Spans[`core_stage_backward_seconds{stage="`+stage+`"}`]
		upd := s.Spans[`core_stage_update_seconds{stage="`+stage+`"}`]
		if fwd.Count != 8 || bwd.Count != 8 || upd.Count != 2 {
			t.Fatalf("stage %s spans: fwd=%d bwd=%d upd=%d, want 8/8/2", stage, fwd.Count, bwd.Count, upd.Count)
		}
		if fwd.TotalSeconds < 0 || upd.MeanSeconds < 0 {
			t.Fatalf("stage %s negative span totals: %+v %+v", stage, fwd, upd)
		}
	}
	// Weight-write counters: stage 1 is 784×100 + 100 cells per update,
	// stage 2 is 100×10 + 10, two updates each.
	if got := s.Counters[`core_weight_writes_total{stage="1"}`]; got != 2*(784*100+100) {
		t.Fatalf("stage 1 weight writes = %d", got)
	}
	if got := s.Counters[`core_weight_writes_total{stage="2"}`]; got != 2*(100*10+10) {
		t.Fatalf("stage 2 weight writes = %d", got)
	}
	if got := s.Counters[`core_weight_updates_total{stage="1"}`]; got != 2 {
		t.Fatalf("stage 1 updates = %d", got)
	}
	if s.Counters["core_train_images_total"] != 8 {
		t.Fatalf("train image counter = %d", s.Counters["core_train_images_total"])
	}
	// The embedded timing simulation published the pipeline gauges.
	if s.Gauges["pipeline_unit_utilization"] <= 0 {
		t.Fatalf("pipeline utilization gauge missing: %v", s.Gauges)
	}
}

func TestTrainPipelinedRecordsSameCounts(t *testing.T) {
	a, reg := metricsAccel(t)
	if err := a.PipelineSet(true); err != nil {
		t.Fatal(err)
	}
	train, _ := dataset.TrainTest(8, 1, dataset.DefaultOptions(true), 21)
	if _, err := a.TrainPipelined(train, 4, 0.05); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	// The pipelined executor runs 8 forward timings per stage and, per
	// image, L+1 = 3 error ops (ErrLast and the l=1 ErrChain both run on
	// stage 2's error arrays; GradFirst on stage 1's): 8 and 16 backward
	// timings, plus 2 updates per stage.
	if got := s.Spans[`core_stage_forward_seconds{stage="1"}`].Count; got != 8 {
		t.Fatalf("stage 1 forward count = %d", got)
	}
	if got := s.Spans[`core_stage_forward_seconds{stage="2"}`].Count; got != 8 {
		t.Fatalf("stage 2 forward count = %d", got)
	}
	if got := s.Spans[`core_stage_backward_seconds{stage="1"}`].Count; got != 8 {
		t.Fatalf("stage 1 backward count = %d, want 8 (GradFirst)", got)
	}
	if got := s.Spans[`core_stage_backward_seconds{stage="2"}`].Count; got != 16 {
		t.Fatalf("stage 2 backward count = %d, want 16 (ErrLast + ErrChain)", got)
	}
	if got := s.Counters[`core_weight_updates_total{stage="2"}`]; got != 2 {
		t.Fatalf("stage 2 updates = %d", got)
	}
}

func TestTestRecordsForwardSpans(t *testing.T) {
	a, reg := metricsAccel(t)
	_, test := dataset.TrainTest(1, 6, dataset.DefaultOptions(true), 5)
	if _, err := a.Test(test); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Spans[`core_stage_forward_seconds{stage="1"}`].Count; got != 6 {
		t.Fatalf("forward span count = %d, want 6", got)
	}
	if s.Counters["core_test_images_total"] != 6 {
		t.Fatalf("test image counter = %d", s.Counters["core_test_images_total"])
	}
}

func TestMetricsDetachedRunsClean(t *testing.T) {
	a, reg := metricsAccel(t)
	a.SetMetrics(nil)
	if a.Metrics() != nil {
		t.Fatal("registry should be detached")
	}
	train, _ := dataset.TrainTest(4, 1, dataset.DefaultOptions(true), 7)
	if _, err := a.Train(train, 4, 0.05); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot(); len(got.Spans) != 0 {
		t.Fatalf("detached registry gained spans: %v", got.Spans)
	}
}

// TestTelemetryDoesNotChangeTraining pins the no-observer-effect property:
// attaching a registry must not alter the numerical result of training.
func TestTelemetryDoesNotChangeTraining(t *testing.T) {
	run := func(attach bool) float64 {
		a := newAccel()
		if err := a.TopologySet(networks.MnistA(), 1); err != nil {
			t.Fatal(err)
		}
		if err := a.WeightLoad(nil, rand.New(rand.NewSource(11))); err != nil {
			t.Fatal(err)
		}
		if attach {
			a.SetMetrics(telemetry.NewRegistry())
		}
		train, _ := dataset.TrainTest(8, 1, dataset.DefaultOptions(true), 21)
		rep, err := a.Train(train, 4, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return rep.MeanLoss
	}
	if plain, instrumented := run(false), run(true); plain != instrumented {
		t.Fatalf("telemetry changed training: %v vs %v", plain, instrumented)
	}
}
