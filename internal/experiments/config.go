package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// SetupOverrides is the JSON schema for customizing an evaluation run:
// every field is optional and overlays the DefaultSetup. Example:
//
//	{
//	  "batch": 128,
//	  "images": 12800,
//	  "model": {"spikeBits": 8, "peripheralPower": 50},
//	  "gpu": {"power": 250, "hostPerBatch": 0.002}
//	}
type SetupOverrides struct {
	Batch  *int `json:"batch"`
	Images *int `json:"images"`
	Model  *struct {
		SpikeBits           *int     `json:"spikeBits"`
		ReadLatency         *float64 `json:"readLatency"`
		WriteLatency        *float64 `json:"writeLatency"`
		ReadEnergy          *float64 `json:"readEnergy"`
		WriteEnergy         *float64 `json:"writeEnergy"`
		Activity            *float64 `json:"activity"`
		ArrayArea           *float64 `json:"arrayArea"`
		MoveBandwidth       *float64 `json:"moveBandwidth"`
		BalanceRatio        *float64 `json:"balanceRatio"`
		TrainingCycleFactor *float64 `json:"trainingCycleFactor"`
		PeripheralPower     *float64 `json:"peripheralPower"`
	} `json:"model"`
	GPU *struct {
		PeakFLOPS      *float64 `json:"peakFLOPS"`
		MemBandwidth   *float64 `json:"memBandwidth"`
		Power          *float64 `json:"power"`
		ConvUtil       *float64 `json:"convUtil"`
		FCUtil         *float64 `json:"fcUtil"`
		LaunchOverhead *float64 `json:"launchOverhead"`
		HostPerBatch   *float64 `json:"hostPerBatch"`
	} `json:"gpu"`
}

// SetupFromJSON reads overrides from r and applies them to the default
// setup. Unknown fields are rejected so typos surface immediately.
func SetupFromJSON(r io.Reader) (Setup, error) {
	s := DefaultSetup()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var ov SetupOverrides
	if err := dec.Decode(&ov); err != nil {
		return Setup{}, fmt.Errorf("experiments: parsing setup: %w", err)
	}
	if ov.Batch != nil {
		if *ov.Batch <= 0 {
			return Setup{}, fmt.Errorf("experiments: batch must be positive, got %d", *ov.Batch)
		}
		s.Batch = *ov.Batch
	}
	if ov.Images != nil {
		if *ov.Images <= 0 {
			return Setup{}, fmt.Errorf("experiments: images must be positive, got %d", *ov.Images)
		}
		s.Images = *ov.Images
	}
	if s.Images%s.Batch != 0 {
		return Setup{}, fmt.Errorf("experiments: images (%d) must be a multiple of batch (%d)", s.Images, s.Batch)
	}
	if ov.Model != nil {
		m := ov.Model
		setInt(&s.Model.SpikeBits, m.SpikeBits)
		setF(&s.Model.ReadLatency, m.ReadLatency)
		setF(&s.Model.WriteLatency, m.WriteLatency)
		setF(&s.Model.ReadEnergy, m.ReadEnergy)
		setF(&s.Model.WriteEnergy, m.WriteEnergy)
		setF(&s.Model.Activity, m.Activity)
		setF(&s.Model.ArrayArea, m.ArrayArea)
		setF(&s.Model.MoveBandwidth, m.MoveBandwidth)
		setF(&s.Model.BalanceRatio, m.BalanceRatio)
		setF(&s.Model.TrainingCycleFactor, m.TrainingCycleFactor)
		setF(&s.Model.PeripheralPower, m.PeripheralPower)
	}
	if ov.GPU != nil {
		g := ov.GPU
		setF(&s.GPU.PeakFLOPS, g.PeakFLOPS)
		setF(&s.GPU.MemBandwidth, g.MemBandwidth)
		setF(&s.GPU.Power, g.Power)
		setF(&s.GPU.ConvUtil, g.ConvUtil)
		setF(&s.GPU.FCUtil, g.FCUtil)
		setF(&s.GPU.LaunchOverhead, g.LaunchOverhead)
		setF(&s.GPU.HostPerBatch, g.HostPerBatch)
	}
	return s, nil
}

func setF(dst *float64, src *float64) {
	if src != nil {
		*dst = *src
	}
}

func setInt(dst *int, src *int) {
	if src != nil {
		*dst = *src
	}
}
