package experiments

import (
	"fmt"
	"strings"

	"pipelayer/internal/arch"
	"pipelayer/internal/mapping"
	"pipelayer/internal/networks"
	"pipelayer/internal/pipeline"
)

// Table1Result reproduces Table 1: the break of operations in a cycle.
type Table1Result struct {
	Cases []arch.CycleCase
}

// Table1 regenerates the four cycle cases.
func Table1() Table1Result { return Table1Result{Cases: arch.Table1(3)} }

// Render formats the table.
func (r Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Break of Operations in a Cycle\n")
	for _, c := range r.Cases {
		ops := make([]string, len(c.Ops))
		for i, o := range c.Ops {
			ops[i] = string(o)
		}
		fmt.Fprintf(&b, "  %-14s reads %-28s writes %-22s ops: %s\n",
			c.Name, c.Reads, c.Writes, strings.Join(ops, " → "))
	}
	return b.String()
}

// Table2Row compares one configuration's closed-form costs against the
// event-driven simulation.
type Table2Row struct {
	G, L, B, N int
	// Formula vs simulated cycle counts.
	NonPipelinedCycles, PipelinedCycles       int
	SimNonPipelinedCycles, SimPipelinedCycles int
	// Array and buffer costs.
	NonPipelinedArrays, PipelinedArrays int
	NonPipelinedMem, PipelinedMem       int
}

// Table2Result reproduces Table 2 over a configuration sweep.
type Table2Result struct{ Rows []Table2Row }

// Table2 evaluates the Table 2 formulas and cross-checks each against the
// cycle-accurate simulation.
func Table2() Table2Result {
	var rows []Table2Row
	for _, c := range []struct{ G, L, B, N int }{
		{1, 3, 4, 16}, {4, 5, 16, 64}, {8, 8, 64, 128}, {16, 19, 32, 64},
	} {
		rows = append(rows, Table2Row{
			G: c.G, L: c.L, B: c.B, N: c.N,
			NonPipelinedCycles:    mapping.NonPipelinedTrainingCycles(c.L, c.B, c.N),
			PipelinedCycles:       mapping.PipelinedTrainingCycles(c.L, c.B, c.N),
			SimNonPipelinedCycles: pipeline.Simulate(pipeline.Config{L: c.L, B: c.B, N: c.N, Training: true}).Cycles,
			SimPipelinedCycles:    pipeline.Simulate(pipeline.Config{L: c.L, B: c.B, N: c.N, Training: true, Pipelined: true}).Cycles,
			NonPipelinedArrays:    mapping.NonPipelinedMorphArrays(c.G, c.L),
			PipelinedArrays:       mapping.PipelinedMorphArrays(c.G, c.L, c.B),
			NonPipelinedMem:       mapping.NonPipelinedMemBuffers(c.L),
			PipelinedMem:          mapping.PipelinedMemBuffers(c.L),
		})
	}
	return Table2Result{Rows: rows}
}

// Render formats the table.
func (r Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Cycle and Cost of PipeLayer Architecture (formula | simulated)\n")
	fmt.Fprintf(&b, "  %4s %4s %4s %5s | %18s %18s | %10s %10s | %6s %6s\n",
		"G", "L", "B", "N", "np-cycles", "pipe-cycles", "np-arrays", "p-arrays", "np-mem", "p-mem")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %4d %4d %4d %5d | %8d | %7d %8d | %7d | %10d %10d | %6d %6d\n",
			row.G, row.L, row.B, row.N,
			row.NonPipelinedCycles, row.SimNonPipelinedCycles,
			row.PipelinedCycles, row.SimPipelinedCycles,
			row.NonPipelinedArrays, row.PipelinedArrays,
			row.NonPipelinedMem, row.PipelinedMem)
	}
	return b.String()
}

// Verified reports whether every simulated count matched its formula.
func (r Table2Result) Verified() bool {
	for _, row := range r.Rows {
		if row.NonPipelinedCycles != row.SimNonPipelinedCycles ||
			row.PipelinedCycles != row.SimPipelinedCycles {
			return false
		}
	}
	return true
}

// Table3Result reproduces Table 3: the MNIST network hyper-parameters.
type Table3Result struct{ Specs []networks.Spec }

// Table3 returns the four MNIST networks.
func Table3() Table3Result {
	return Table3Result{Specs: []networks.Spec{
		networks.MnistA(), networks.MnistB(), networks.MnistC(), networks.Mnist0(),
	}}
}

// Render formats the table.
func (r Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Hyper Parameters of Networks on MNIST (reconstructed)\n")
	for _, s := range r.Specs {
		var parts []string
		for _, l := range s.Layers {
			switch l.Kind {
			case mapping.KindConv:
				parts = append(parts, fmt.Sprintf("conv%dx%d", l.K, l.OutC))
			case mapping.KindPool:
				parts = append(parts, fmt.Sprintf("pool%d", l.K))
			case mapping.KindFC:
				if len(parts) == 0 {
					parts = append(parts, fmt.Sprintf("%d", l.FCIn))
				}
				parts = append(parts, fmt.Sprintf("%d", l.FCOut))
			}
		}
		fmt.Fprintf(&b, "  %-8s %s (%d weights, %d weighted layers)\n",
			s.Name, strings.Join(parts, "-"), s.TotalWeights(), s.WeightedLayers())
	}
	return b.String()
}

// Table5Row is one convolution layer's default granularity across variants.
type Table5Row struct {
	Layer string
	// G maps VGG variant letter to the default granularity (0 = the variant
	// has no such layer).
	G map[string]int
}

// Table5Result reproduces Table 5: default parallelism granularity of every
// VGG convolution layer (derived by the balance rule; see DESIGN.md).
type Table5Result struct {
	Rows     []Table5Row
	Variants []string
}

// Table5 computes the per-layer balanced defaults.
func Table5(s Setup) Table5Result {
	res := Table5Result{Variants: networks.VGGVariants}
	byName := map[string]*Table5Row{}
	var order []string
	for _, v := range networks.VGGVariants {
		spec := networks.VGG(v)
		idx := 0
		for _, l := range spec.Layers {
			if l.Kind != mapping.KindConv {
				continue
			}
			idx++
			name := fmt.Sprintf("conv%d", idx)
			row, ok := byName[name]
			if !ok {
				row = &Table5Row{Layer: name, G: map[string]int{}}
				byName[name] = row
				order = append(order, name)
			}
			row.G[v] = s.Model.BalancedG(l)
		}
	}
	for _, name := range order {
		res.Rows = append(res.Rows, *byName[name])
	}
	return res
}

// Render formats the table.
func (r Table5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: Default Parallelism Granularity G per VGG Convolution Layer\n")
	fmt.Fprintf(&b, "  %-8s", "Layer")
	for _, v := range r.Variants {
		fmt.Fprintf(&b, " %8s", "VGG-"+v)
	}
	fmt.Fprintln(&b)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8s", row.Layer)
		for _, v := range r.Variants {
			if g, ok := row.G[v]; ok {
				fmt.Fprintf(&b, " %8d", g)
			} else {
				fmt.Fprintf(&b, " %8s", "-")
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
